(* ci_sync — keeps .github/workflows/ci.yml honest.

   `dune runtest` cannot execute the hosted pipeline, but it can pin the
   pipeline's contract: this golden test greps the workflow for the exact
   commands the repo's guarantees rest on, so nobody can silently drop the
   build+test step, the model-checking gate or the bench gate from CI
   without this test going red in the same change. *)

let required =
  [ ("tier-1 build and test", "dune build && dune runtest");
    ("model-checking gate", "check --quick");
    ( "symmetry-reduced exhaustive check",
      "check tail-unison --symmetry --family complete --max-n 6" );
    ("quick bench", "--quick");
    ("bench regression gate", "bench_gate");
    ("trace schema validation", "--check-trace");
    ("trace summary smoke", "trace summary");
    ("profiled run", "--prof-out");
    ("profile schema validation", "--check-prof");
    ("profile attribution check", "prof report --check");
    ("profile window smoke", "prof windows");
    ("wave reconstruction check", "trace waves --check");
    ("happens-before check", "trace critical-path --check");
    ("smt obligation emission", "smt emit -o smoke-smt");
    ("smt manifest validation", "--check-smt smoke-smt/manifest.json");
    ("smt well-formedness lint", "smt lint");
    ("conditional smt solving", "smt solve");
    ("trace artifacts on failure", "if: failure()");
    ("OCaml 5.1 in the matrix", "5.1");
    ("OCaml 5.2 in the matrix", "5.2");
    ("OCaml 5.3 in the matrix", "5.3");
    ("opam switch cache keyed on dune-project",
     "opam-${{ runner.os }}-${{ matrix.ocaml-compiler }}-${{ \
      hashFiles('dune-project') }}");
    ( "flat scale smoke, sequential",
      "run unison --engine flat -g ring -n 100000 --perturb 5000 -d \
       synchronous --parts 1 --digest" );
    ( "flat scale smoke, partitioned",
      "run unison --engine flat -g ring -n 100000 --perturb 5000 -d \
       synchronous --parts 2 --digest" );
    ( "partitioned digest byte-comparison",
      "cmp smoke-scale-p1.txt smoke-scale-p2.txt" );
    ( "flat scale smoke, observability attached",
      "--parts 2 --prof-out smoke-scale-prof.jsonl --prof-window 50 \
       --monitors --heartbeat 100 --digest" );
    ( "observability digest byte-comparison",
      "cmp smoke-scale-p1.txt smoke-scale-obs.txt" );
    ( "scale profile schema validation",
      "--check-prof smoke-scale-prof.jsonl" );
    ( "scale profile attribution check",
      "prof report --check smoke-scale-prof.jsonl" );
    ("pinned z3 install", "apt-get install -y --no-install-recommends z3=");
    ("ring obligations solved", "smt solve --family ring");
    ("unsat transcript artifact", "smt-ring-transcript.txt");
    ( "ranking + composition obligations solved",
      "smt solve --family ring --kind rank,composition --name \
       rank-decrease --timeout 120" );
    ("ranking transcript artifact", "smt-rank-transcript.txt");
    ("tail-unison ranking proved", "rank-decrease.TU-climb");
    ("composition ranking proved", "comp.rank-decrease.SDR-RF") ]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: ci_sync.exe PATH/TO/ci.yml";
        exit 2
  in
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let missing =
    List.filter (fun (_, needle) -> not (contains ~needle body)) required
  in
  List.iter
    (fun (what, needle) ->
      Printf.printf "FAIL  %s: %S not found in %s\n" what needle path)
    missing;
  if missing = [] then Printf.printf "ci.yml contract intact (%s)\n" path
  else exit 1

(* CI gate: run the quick lint + footprint + model-check suite over every
   registered algorithm (all must be clean) and over the toy fixtures (all
   must be flagged — the checker must have no false negatives).  Wired
   under `dune runtest` from tools/dune; exits non-zero on any
   discrepancy. *)

module Registry = Ssreset_check.Registry
module Report = Ssreset_check.Report
module Model = Ssreset_check.Model
module Footprint = Ssreset_check.Footprint

let () =
  let failures = ref 0 in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        incr failures;
        Printf.printf "FAIL %s\n" msg)
      fmt
  in
  let reports =
    List.map (fun e -> Registry.run ~mode:`Quick e) Registry.entries
  in
  List.iter
    (fun (r : Report.entry_report) ->
      let aborted =
        List.exists
          (fun (m : Report.model_item) -> m.Report.result.Model.aborted <> None)
          r.Report.models
      in
      if not (Report.entry_ok r) then
        fail "%s: findings or violations:@,%a" r.Report.name Report.pp [ r ]
      else
        Printf.printf "ok   %-14s lint clean (%d views), %d graphs verified%s\n"
          r.Report.name r.Report.lint_views
          (List.length r.Report.models)
          (if aborted then " (some runs aborted on budget)" else ""))
    reports;
  List.iter
    (fun e ->
      let r = Registry.run ~mode:`Quick e in
      let model_dirty =
        List.exists
          (fun (m : Report.model_item) ->
            m.Report.result.Model.violations <> [])
          r.Report.models
      and footprint_dirty =
        match r.Report.footprint with
        | None -> false
        | Some fp -> fp.Footprint.findings <> []
      and sym_dirty =
        match r.Report.sym with
        | None -> false
        | Some d -> not (Ssreset_check.Sym.diff_ok d)
      in
      let dirty =
        r.Report.lint <> [] || model_dirty || footprint_dirty || sym_dirty
      in
      if r.Report.name = "toy-badsym" && not sym_dirty then
        fail "toy-badsym: symbolic differential did NOT flag the lying IR";
      (* toy-badrank's IR is exact — only the ranking differential can see
         the stutter, so require a mismatch specifically tagged "rank". *)
      if r.Report.name = "toy-badrank" then begin
        let rank_dirty =
          match r.Report.sym with
          | None -> false
          | Some d ->
              List.exists
                (fun (m : Ssreset_check.Sym.mismatch) ->
                  m.Ssreset_check.Sym.where = "rank")
                d.Ssreset_check.Sym.mismatches
        in
        if not rank_dirty then
          fail
            "toy-badrank: ranking differential did NOT flag the stuttering \
             rank"
      end;
      if not dirty then
        fail "%s: fixture was NOT flagged (false negative)" r.Report.name
      else
        Printf.printf
          "ok   %-16s fixture flagged as expected (%d lint, model %s, \
           footprint %s, sym %s)\n"
          r.Report.name
          (List.length r.Report.lint)
          (if model_dirty then "dirty" else "clean")
          (if footprint_dirty then "dirty" else "clean")
          (if sym_dirty then "dirty" else "clean"))
    Registry.fixtures;
  if !failures > 0 then begin
    Printf.printf "check_all: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "check_all: all clean"

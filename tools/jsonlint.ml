(* Validate JSON / JSONL files produced by the telemetry layer.

   usage: jsonlint [--jsonl] [--require-keys k,...] [--require-types t,...] FILE

   Plain mode parses FILE as one JSON document; [--require-keys] then checks
   the top-level object has every listed key.  With [--jsonl] every nonempty
   line must parse on its own, and [--require-types] checks that the set of
   "type" field values seen across the lines covers every listed type (so a
   run trace can be required to contain a manifest, round records and a
   summary).  Exit status 0 iff the file is valid; used by the `dune runtest`
   smoke rules in bench/ and bin/. *)

module Json = Ssreset_obs.Json

let split_commas s = String.split_on_char ',' s |> List.filter (( <> ) "")

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let check_keys ~path keys = function
  | Json.Obj fields ->
      List.iter
        (fun k ->
          if not (List.mem_assoc k fields) then
            fail "%s: missing required key %S" path k)
        keys
  | _ -> if keys <> [] then fail "%s: top-level value is not an object" path

let () =
  let jsonl = ref false in
  let require_keys = ref [] in
  let require_types = ref [] in
  let files = ref [] in
  let argc = Array.length Sys.argv in
  let i = ref 1 in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--jsonl" -> jsonl := true
    | "--require-keys" when !i + 1 < argc ->
        incr i;
        require_keys := split_commas Sys.argv.(!i)
    | "--require-types" when !i + 1 < argc ->
        incr i;
        require_types := split_commas Sys.argv.(!i)
    | "--help" | "-h" ->
        print_endline
          "usage: jsonlint [--jsonl] [--require-keys k,...] \
           [--require-types t,...] FILE...";
        exit 0
    | arg when String.length arg > 0 && arg.[0] = '-' ->
        fail "unknown option %S" arg
    | file -> files := file :: !files);
    incr i
  done;
  if !files = [] then fail "jsonlint: no input file";
  List.iter
    (fun path ->
      let contents = read_file path in
      if !jsonl then begin
        let seen = Hashtbl.create 8 in
        let lines = String.split_on_char '\n' contents in
        List.iteri
          (fun lineno line ->
            if String.trim line <> "" then
              match Json.of_string line with
              | Error msg -> fail "%s:%d: %s" path (lineno + 1) msg
              | Ok json -> (
                  match Option.bind (Json.member "type" json) Json.to_string_opt with
                  | Some ty -> Hashtbl.replace seen ty ()
                  | None -> ()))
          lines;
        List.iter
          (fun ty ->
            if not (Hashtbl.mem seen ty) then
              fail "%s: no record of type %S" path ty)
          !require_types
      end
      else
        match Json.of_string contents with
        | Error msg -> fail "%s: %s" path msg
        | Ok json -> check_keys ~path !require_keys json)
    (List.rev !files)

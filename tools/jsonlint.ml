(* Validate JSON / JSONL files produced by the telemetry layer.

   usage: jsonlint [--jsonl] [--require-keys k,...] [--require-types t,...]
                   [--check-report] FILE

   Plain mode parses FILE as one JSON document; [--require-keys] then checks
   the top-level object has every listed key.  With [--jsonl] every nonempty
   line must parse on its own, and [--require-types] checks that the set of
   "type" field values seen across the lines covers every listed type (so a
   run trace can be required to contain a manifest, round records and a
   summary).  [--check-report] validates the ssreset-check-v3 findings
   report schema: schema_version >= 3, per-entry lint/footprint/sym/
   obligations/model sections, and per-graph model records carrying the
   automorphisms and certificate fields.  [--check-smt] validates an
   ssreset-smt-v2 obligation manifest: every referenced .smt2 file (in
   the manifest's directory) must re-parse through Ssreset_check.Smt's
   reader and lint clean.  [--check-trace] validates the ssreset-trace-v1
   schema (manifest first, strictly increasing step/round records,
   wave-tagged movers, one summary whose counters cross-check the step
   records) via Ssreset_obs.Tracefile.  [--check-prof] validates the
   ssreset-prof-v1 profile schema (manifest first, window records with
   strictly increasing indices and at_step, one summary whose window
   count and per-rule move counters cross-check the window records) via
   Ssreset_obs.Proffile.  Exit status 0 iff the file is valid; used by
   the `dune runtest` smoke rules in bench/ and bin/. *)

module Json = Ssreset_obs.Json

let split_commas s = String.split_on_char ',' s |> List.filter (( <> ) "")

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let check_keys ~path keys = function
  | Json.Obj fields ->
      List.iter
        (fun k ->
          if not (List.mem_assoc k fields) then
            fail "%s: missing required key %S" path k)
        keys
  | _ -> if keys <> [] then fail "%s: top-level value is not an object" path

(* --- ssreset-check-v3 report schema ---------------------------------- *)

let obj_keys ~path ~ctx keys json =
  match json with
  | Json.Obj fields ->
      List.iter
        (fun k ->
          if not (List.mem_assoc k fields) then
            fail "%s: %s: missing key %S" path ctx k)
        keys;
      fields
  | _ -> fail "%s: %s: not an object" path ctx

let as_list ~path ~ctx = function
  | Json.List l -> l
  | _ -> fail "%s: %s: not a list" path ctx

(* --- ssreset-smt-v2 obligation manifest ------------------------------- *)

(* Shape-checks the manifest object (also embedded per-entry in check-v3
   reports, where the referenced files need not exist on disk).  Returns
   the referenced file names for the on-disk mode. *)
let check_smt_manifest ~path ~ctx json =
  let top =
    obj_keys ~path ~ctx
      [ "schema"; "schema_version"; "count"; "obligations" ]
      json
  in
  (match Option.bind (Json.member "schema" json) Json.to_string_opt with
  | Some "ssreset-smt-v2" -> ()
  | Some other -> fail "%s: %s: unexpected schema %S" path ctx other
  | None -> fail "%s: %s: schema is not a string" path ctx);
  let obs = as_list ~path ~ctx:(ctx ^ " obligations")
      (List.assoc "obligations" top)
  in
  (match Option.bind (Json.member "count" json) Json.to_int_opt with
  | Some c when c = List.length obs -> ()
  | Some c ->
      fail "%s: %s: count %d but %d obligations" path ctx c (List.length obs)
  | None -> fail "%s: %s: count is not an int" path ctx);
  List.map
    (fun ob ->
      ignore
        (obj_keys ~path ~ctx:(ctx ^ " obligation")
           [ "file"; "algo"; "family"; "kind"; "name"; "expect"; "descr" ]
           ob);
      (match Option.bind (Json.member "expect" ob) Json.to_string_opt with
      | Some "unsat" -> ()
      | _ -> fail "%s: %s: obligation expects something besides unsat" path ctx);
      match Option.bind (Json.member "file" ob) Json.to_string_opt with
      | Some f -> f
      | None -> fail "%s: %s: obligation file is not a string" path ctx)
    obs

(* On-disk mode: the manifest's sibling .smt2 files must exist, re-parse
   through Smt's reader and lint clean. *)
let check_smt ~path json =
  let files = check_smt_manifest ~path ~ctx:"manifest" json in
  let dir = Filename.dirname path in
  List.iter
    (fun f ->
      let fpath = Filename.concat dir f in
      if not (Sys.file_exists fpath) then
        fail "%s: referenced file %s does not exist" path f;
      match Ssreset_check.Smt.parse_file fpath with
      | Error msg -> fail "%s: %s" fpath msg
      | Ok cmds -> (
          match Ssreset_check.Smt.lint_script cmds with
          | [] -> ()
          | findings ->
              fail "%s: lint findings:\n  %s" fpath
                (String.concat "\n  " findings)))
    files;
  Printf.printf "%s: %d obligation(s), all re-parse and lint clean\n" path
    (List.length files)

let check_report ~path json =
  let top =
    obj_keys ~path ~ctx:"report"
      [ "schema"; "schema_version"; "ok"; "entries" ]
      json
  in
  (match Option.bind (Json.member "schema" json) Json.to_string_opt with
  | Some "ssreset-check-v3" -> ()
  | Some other -> fail "%s: unexpected schema %S" path other
  | None -> fail "%s: schema is not a string" path);
  (match Option.bind (Json.member "schema_version" json) Json.to_int_opt with
  | Some v when v >= 3 -> ()
  | Some v -> fail "%s: schema_version %d < 3" path v
  | None -> fail "%s: schema_version is not an int" path);
  let entries =
    as_list ~path ~ctx:"entries" (List.assoc "entries" top)
  in
  List.iter
    (fun entry ->
      let name =
        match Option.bind (Json.member "name" entry) Json.to_string_opt with
        | Some n -> n
        | None -> fail "%s: entry without a name" path
      in
      let ctx = "entry " ^ name in
      ignore
        (obj_keys ~path ~ctx
           [ "name"; "description"; "lint"; "footprint"; "sym";
             "obligations"; "model"; "ok" ]
           entry);
      (match Json.member "lint" entry with
      | Some lint ->
          ignore (obj_keys ~path ~ctx:(ctx ^ " lint")
                    [ "ok"; "views"; "findings" ] lint)
      | None -> assert false);
      (match Json.member "footprint" entry with
      | Some Json.Null | None -> ()
      | Some fp ->
          let fields =
            obj_keys ~path ~ctx:(ctx ^ " footprint")
              [ "ok"; "composed"; "fields"; "views"; "rules"; "findings" ]
              fp
          in
          List.iter
            (fun rule ->
              ignore
                (obj_keys ~path ~ctx:(ctx ^ " footprint rule")
                   [ "rule"; "guard_self"; "guard_nbrs"; "action_self";
                     "action_nbrs"; "writes" ]
                   rule))
            (as_list ~path ~ctx:(ctx ^ " footprint rules")
               (List.assoc "rules" fields)));
      (match Json.member "sym" entry with
      | Some Json.Null | None -> ()
      | Some sym ->
          let fields =
            obj_keys ~path ~ctx:(ctx ^ " sym")
              [ "ok"; "views"; "steps"; "daemons"; "mismatches" ]
              sym
          in
          List.iter
            (fun m ->
              ignore
                (obj_keys ~path ~ctx:(ctx ^ " sym mismatch")
                   [ "where"; "rules"; "detail"; "count" ]
                   m))
            (as_list ~path ~ctx:(ctx ^ " sym mismatches")
               (List.assoc "mismatches" fields)));
      (match Json.member "obligations" entry with
      | Some Json.Null | None -> ()
      | Some obs ->
          ignore (check_smt_manifest ~path ~ctx:(ctx ^ " obligations") obs));
      match Json.member "model" entry with
      | None -> assert false
      | Some model ->
          let mfields =
            obj_keys ~path ~ctx:(ctx ^ " model") [ "ok"; "graphs" ] model
          in
          List.iter
            (fun g ->
              ignore
                (obj_keys ~path ~ctx:(ctx ^ " model graph")
                   [ "instance"; "n"; "m"; "configs"; "transitions";
                     "automorphisms"; "certificate"; "violations";
                     "aborted"; "worst_moves"; "worst_rounds" ]
                   g))
            (as_list ~path ~ctx:(ctx ^ " model graphs")
               (List.assoc "graphs" mfields)))
    entries

let () =
  let jsonl = ref false in
  let report = ref false in
  let smt = ref false in
  let trace = ref false in
  let prof = ref false in
  let require_keys = ref [] in
  let require_types = ref [] in
  let files = ref [] in
  let argc = Array.length Sys.argv in
  let i = ref 1 in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--jsonl" -> jsonl := true
    | "--check-report" -> report := true
    | "--check-smt" -> smt := true
    | "--check-trace" -> trace := true
    | "--check-prof" -> prof := true
    | "--require-keys" when !i + 1 < argc ->
        incr i;
        require_keys := split_commas Sys.argv.(!i)
    | "--require-types" when !i + 1 < argc ->
        incr i;
        require_types := split_commas Sys.argv.(!i)
    | "--help" | "-h" ->
        print_endline
          "usage: jsonlint [--jsonl] [--require-keys k,...] \
           [--require-types t,...] [--check-report] [--check-smt] \
           [--check-trace] [--check-prof] FILE...";
        exit 0
    | arg when String.length arg > 0 && arg.[0] = '-' ->
        fail "unknown option %S" arg
    | file -> files := file :: !files);
    incr i
  done;
  if !files = [] then fail "jsonlint: no input file";
  List.iter
    (fun path ->
      let contents = read_file path in
      if !trace then begin
        match Ssreset_obs.Tracefile.check_file path with
        | Ok () -> ()
        | Error msg -> fail "%s" msg
      end
      else if !prof then begin
        match Ssreset_obs.Proffile.check_file path with
        | Ok () -> ()
        | Error msg -> fail "%s" msg
      end
      else if !jsonl then begin
        let seen = Hashtbl.create 8 in
        let lines = String.split_on_char '\n' contents in
        List.iteri
          (fun lineno line ->
            if String.trim line <> "" then
              match Json.of_string line with
              | Error msg -> fail "%s:%d: %s" path (lineno + 1) msg
              | Ok json -> (
                  match Option.bind (Json.member "type" json) Json.to_string_opt with
                  | Some ty -> Hashtbl.replace seen ty ()
                  | None -> ()))
          lines;
        List.iter
          (fun ty ->
            if not (Hashtbl.mem seen ty) then
              fail "%s: no record of type %S" path ty)
          !require_types
      end
      else
        match Json.of_string contents with
        | Error msg -> fail "%s: %s" path msg
        | Ok json ->
            check_keys ~path !require_keys json;
            if !report then check_report ~path json;
            if !smt then check_smt ~path json)
    (List.rev !files)

; obligation: closure
; algorithm: toy
; family: ring (axiomatized superset, any n)
; a legitimate configuration stays legitimate under any covered step
; expected: unsat
(set-logic ALL)
(declare-sort Node 0)
(declare-const K Int)
(assert (>= K 2))
(declare-fun c (Node) Int)
(declare-fun E (Node Node) Bool)
(assert (forall ((u Node) (v Node)) (= (E u v) (E v u))))
(assert (forall ((u Node)) (not (E u u))))
(assert (forall ((u Node))
  (and (<= 0 (c u)) (< (c u) K))))
(assert (exists ((u Node) (v Node))
  (and (E u v) (not (= (c u) (c v))) (not (= (c u) (ite (= (c v) (- K 1)) 0 (+ (c v) 1)))))))
(assert (forall ((u Node) (v Node))
  (=> (E u v) (= (c u) (c v)))))
(check-sat)

; obligation: rank-decrease.T-down
; algorithm: toy
; family: ring (axiomatized superset, any n)
; a covered mover's rank tuple strictly decreases
; expected: unsat
(set-logic ALL)
(declare-sort Node 0)
(declare-fun c (Node) Int)
(assert (forall ((u Node)) (and (<= 0 (c u)) (< (c u) 4))))
(assert (exists ((u Node)) (and (< 0 (c u)) (not (< (- (c u) 1) (c u))))))
(check-sat)

; a deliberately ill-formed obligation: the state function c and the
; node u are never declared or bound (free symbols), and the declared
; sort Dead is never used — the lint must reject all of it.
(set-logic ALL)
(declare-sort Dead 0)
(assert (< (c u) 0))
(check-sat)

(* bench_gate — CI performance gate.

   Usage: bench_gate.exe BASELINE.json FRESH.json

   Compares a freshly generated `bench --quick` results file against the
   committed baseline (BENCH_results.json) and exits non-zero when:

     - the fresh run has failures > 0, or any experiment / check record
       with ok = false (correctness is never negotiable), or
     - an experiment's fresh wall_s exceeds the baseline's by more than the
       tolerance (default 25%) plus a fixed 0.1s of absolute slack — the
       slack keeps sub-100ms experiments, whose timings are dominated by
       scheduler noise, from flaking the gate — or
     - the fresh file is missing an experiment id present in the baseline.

   The tolerance is overridable via the BENCH_GATE_TOLERANCE environment
   variable (a fraction: 0.25 = +25%, 2.0 = +200%).  CI sets it high
   because hosted runners are noisy and unlike the machine that produced
   the committed baseline; locally the default is tight enough to catch a
   real regression in the engine or the experiment drivers.

   Experiments only present in the fresh file (newly added ones) pass the
   gate: the baseline learns them at the next refresh.  Bechamel timing and
   the engine throughput section are reported for information, not gated —
   single-run ns estimates on shared hardware are too noisy to fail a
   build on. *)

module Json = Ssreset_obs.Json

let tolerance =
  match Sys.getenv_opt "BENCH_GATE_TOLERANCE" with
  | None -> 0.25
  | Some s -> (
      match float_of_string_opt s with
      | Some t when t >= 0. -> t
      | _ ->
          Printf.eprintf
            "bench_gate: BENCH_GATE_TOLERANCE must be a non-negative \
             fraction, got %S\n"
            s;
          exit 2)

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  match Json.of_string body with
  | Ok json -> json
  | Error msg ->
      Printf.eprintf "bench_gate: %s: %s\n" path msg;
      exit 2

let str_field name json =
  match Option.bind (Json.member name json) Json.to_string_opt with
  | Some s -> s
  | None -> "?"

let float_field name json =
  Option.bind (Json.member name json) Json.to_float_opt

let bool_field name json =
  match Json.member name json with Some (Json.Bool b) -> Some b | _ -> None

let list_field name json =
  match Json.member name json with Some (Json.List l) -> l | _ -> []

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ ->
        Printf.eprintf "usage: %s BASELINE.json FRESH.json\n" Sys.argv.(0);
        exit 2
  in
  let baseline = load baseline_path and fresh = load fresh_path in
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.printf "FAIL  %s\n" msg)
      fmt
  in
  let info fmt = Printf.ksprintf (fun msg -> Printf.printf "ok    %s\n" msg) fmt in

  (* 1. Correctness of the fresh run. *)
  (match Option.bind (Json.member "failures" fresh) Json.to_int_opt with
  | Some 0 | None -> ()
  | Some k -> fail "fresh run reports %d bound violation(s)" k);
  List.iter
    (fun record ->
      match bool_field "ok" record with
      | Some false -> fail "experiment %s: ok = false" (str_field "id" record)
      | _ -> ())
    (list_field "experiments" fresh);
  List.iter
    (fun record ->
      match bool_field "ok" record with
      | Some false -> fail "check %s: ok = false" (str_field "name" record)
      | _ -> ())
    (list_field "check" fresh);

  (* 2. Per-experiment wall-clock vs the baseline. *)
  let fresh_by_id =
    List.filter_map
      (fun r ->
        match Option.bind (Json.member "id" r) Json.to_string_opt with
        | Some id -> Some (id, r)
        | None -> None)
      (list_field "experiments" fresh)
  in
  List.iter
    (fun base_record ->
      let id = str_field "id" base_record in
      match List.assoc_opt id fresh_by_id with
      | None -> fail "experiment %s present in baseline but not in fresh run" id
      | Some fresh_record -> (
          match
            (float_field "wall_s" base_record, float_field "wall_s" fresh_record)
          with
          | Some base_s, Some fresh_s when base_s > 0. ->
              let ratio = fresh_s /. base_s in
              if fresh_s > (base_s *. (1. +. tolerance)) +. 0.1 then
                fail "experiment %s: wall-clock %.3fs vs baseline %.3fs \
                      (%.0f%% > +%.0f%% tolerance)"
                  id fresh_s base_s
                  ((ratio -. 1.) *. 100.)
                  (tolerance *. 100.)
              else
                info "experiment %s: %.3fs vs baseline %.3fs (%+.0f%%)" id
                  fresh_s base_s
                  ((ratio -. 1.) *. 100.)
          | _ -> info "experiment %s: no comparable wall_s, skipped" id))
    (list_field "experiments" baseline);

  (* 3. trace-v1 observability overhead: with monitors disabled (no sink)
     the engine must run at full speed — a regression here means telemetry
     cost leaked into the hot path.  Throughput is noisier than wall-clock,
     so the gate never tightens below 5% even when the wall-clock tolerance
     is stricter. *)
  let trace_tolerance = Float.max 0.05 tolerance in
  let fresh_trace = list_field "trace_v1" fresh in
  if fresh_trace <> [] && list_field "trace_v1" baseline = [] then
    info "new-section trace_v1: no baseline section, learned at next refresh";
  List.iter
    (fun base_record ->
      match Option.bind (Json.member "n" base_record) Json.to_int_opt with
      | None -> ()
      | Some n -> (
          let same r =
            Option.bind (Json.member "n" r) Json.to_int_opt = Some n
          in
          match List.find_opt same fresh_trace with
          | None ->
              fail "trace_v1 n=%d present in baseline but not in fresh run" n
          | Some fresh_record -> (
              match
                ( float_field "monitors_off_steps_per_s" base_record,
                  float_field "monitors_off_steps_per_s" fresh_record )
              with
              | Some base_r, Some fresh_r when base_r > 0. ->
                  if fresh_r < base_r *. (1. -. trace_tolerance) then
                    fail
                      "trace_v1 n=%d: monitors-off throughput %.0f steps/s \
                       vs baseline %.0f (-%.0f%% > -%.0f%% tolerance)"
                      n fresh_r base_r
                      ((1. -. (fresh_r /. base_r)) *. 100.)
                      (trace_tolerance *. 100.)
                  else
                    info
                      "trace_v1 n=%d: monitors-off %.0f steps/s vs baseline \
                       %.0f (%+.0f%%)"
                      n fresh_r base_r
                      (((fresh_r /. base_r) -. 1.) *. 100.)
              | _ -> info "trace_v1 n=%d: no comparable throughput, skipped" n)))
    (list_field "trace_v1" baseline);

  (* 4. Engine profiling overhead: prof-off must run at full speed (the
     engine's pay-as-you-go contract — an attached profiler is opt-in),
     and the prof-on overhead itself stays capped.  Same noise floor as
     the trace gate: never tighter than 5%. *)
  let prof_tolerance = Float.max 0.05 tolerance in
  let fresh_prof = list_field "prof" fresh in
  if fresh_prof <> [] && list_field "prof" baseline = [] then
    info "new-section prof: no baseline section, learned at next refresh";
  List.iter
    (fun base_record ->
      match Option.bind (Json.member "n" base_record) Json.to_int_opt with
      | None -> ()
      | Some n -> (
          let same r =
            Option.bind (Json.member "n" r) Json.to_int_opt = Some n
          in
          match List.find_opt same fresh_prof with
          | None -> fail "prof n=%d present in baseline but not in fresh run" n
          | Some fresh_record ->
              (match
                 ( float_field "prof_off_steps_per_s" base_record,
                   float_field "prof_off_steps_per_s" fresh_record )
               with
              | Some base_r, Some fresh_r when base_r > 0. ->
                  if fresh_r < base_r *. (1. -. prof_tolerance) then
                    fail
                      "prof n=%d: prof-off throughput %.0f steps/s vs \
                       baseline %.0f (-%.0f%% > -%.0f%% tolerance)"
                      n fresh_r base_r
                      ((1. -. (fresh_r /. base_r)) *. 100.)
                      (prof_tolerance *. 100.)
                  else
                    info
                      "prof n=%d: prof-off %.0f steps/s vs baseline %.0f \
                       (%+.0f%%)"
                      n fresh_r base_r
                      (((fresh_r /. base_r) -. 1.) *. 100.)
              | _ -> info "prof n=%d: no comparable throughput, skipped" n);
              (match float_field "prof_overhead_pct" fresh_record with
              | Some pct when pct > prof_tolerance *. 100. ->
                  fail
                    "prof n=%d: prof-on overhead %.1f%% exceeds %.0f%% cap"
                    n pct (prof_tolerance *. 100.)
              | Some pct -> info "prof n=%d: prof-on overhead %.1f%%" n pct
              | None -> ())))
    (list_field "prof" baseline);

  (* 5. check-v3 SMT section: the fresh differential must agree (ok =
     true — correctness, never negotiable), and both throughputs hold to
     the baseline under the same noise floor as trace/prof. *)
  let smt_tolerance = Float.max 0.05 tolerance in
  (match Json.member "smt" fresh with
  | None -> ()
  | Some fresh_smt ->
      (match Json.member "differential" fresh_smt with
      | Some (Json.Obj _ as d) -> (
          (match bool_field "ok" d with
          | Some false -> fail "smt differential: IR/rules mismatch"
          | _ -> ());
          match Json.member "smt" baseline with
          | None -> info "smt: no baseline section, learned at next refresh"
          | Some base_smt ->
              let rate section field ctx =
                let get j =
                  Option.bind (Json.member section j) (float_field field)
                in
                match (get base_smt, get fresh_smt) with
                | Some base_r, Some fresh_r ->
                    if fresh_r < base_r *. (1. -. smt_tolerance) then
                      fail
                        "smt %s: %.0f %s vs baseline %.0f (-%.0f%% > \
                         -%.0f%% tolerance)"
                        ctx fresh_r field base_r
                        (100. *. (1. -. (fresh_r /. base_r)))
                        (smt_tolerance *. 100.)
                    else
                      info "smt %s: %.0f %s vs baseline %.0f" ctx fresh_r
                        field base_r
                | _ -> info "smt %s: no comparable throughput, skipped" ctx
              in
              rate "compile" "obligations_per_s" "compile";
              rate "differential" "views_per_s" "differential";
              rate "ranking" "obligations_per_s" "ranking";
              (* v4 input-layer differentials: correctness always, rate
                 only when the baseline knows the algo *)
              let base_inputs = list_field "differential_inputs" base_smt in
              List.iter
                (fun fr ->
                  let algo = str_field "algo" fr in
                  (match bool_field "ok" fr with
                  | Some false ->
                      fail "smt differential %s: IR/rules mismatch" algo
                  | _ -> ());
                  let same b = str_field "algo" b = algo in
                  match
                    ( Option.bind (List.find_opt same base_inputs)
                        (float_field "views_per_s"),
                      float_field "views_per_s" fr )
                  with
                  | Some base_r, Some fresh_r ->
                      if fresh_r < base_r *. (1. -. smt_tolerance) then
                        fail
                          "smt differential %s: %.0f views_per_s vs \
                           baseline %.0f (-%.0f%% > -%.0f%% tolerance)"
                          algo fresh_r base_r
                          (100. *. (1. -. (fresh_r /. base_r)))
                          (smt_tolerance *. 100.)
                      else
                        info "smt differential %s: %.0f views_per_s vs \
                              baseline %.0f"
                          algo fresh_r base_r
                  | _ ->
                      info
                        "smt differential %s: no baseline rate, learned at \
                         next refresh"
                        algo)
                (list_field "differential_inputs" fresh_smt))
      | _ -> ()));

  (* 6. Engine scheduler throughput — informational. *)
  List.iter
    (fun r ->
      match
        ( Option.bind (Json.member "n" r) Json.to_int_opt,
          float_field "speedup" r )
      with
      | Some n, Some s -> info "engine n=%d: incremental speedup %.1fx" n s
      | _ -> ())
    (list_field "engine" fresh);

  (* 7. engine_flat: the IR-compiled flat data path.  Digest agreement
     across domain counts is correctness (never negotiable).  Throughput
     holds to the baseline only when the baseline knows the section: a
     section present in the fresh results but absent from the committed
     baseline is a newly added bench — noted explicitly as `new-section`
     and learned at the next baseline refresh, never a failure (the old
     behaviour forced every new bench section into a same-PR baseline
     refresh). *)
  let flat_tolerance = Float.max 0.05 tolerance in
  (match Json.member "engine_flat" fresh with
  | None -> ()
  | Some fresh_flat -> (
      let digest_of r =
        Option.bind (Json.member "digest" r) Json.to_string_opt
      in
      (match List.filter_map digest_of (list_field "scale" fresh_flat) with
      | d :: rest when List.exists (fun d' -> not (String.equal d d')) rest ->
          fail "engine_flat: scale digests diverge across domain counts"
      | _ :: _ -> info "engine_flat: scale digests agree across domain counts"
      | [] -> ());
      List.iter
        (fun r ->
          match
            ( Option.bind (Json.member "n" r) Json.to_int_opt,
              float_field "speedup" r )
          with
          | Some n, Some s -> info "engine_flat n=%d: flat speedup %.1fx" n s
          | _ -> ())
        (list_field "head_to_head" fresh_flat);
      match Json.member "engine_flat" baseline with
      | None ->
          info
            "new-section engine_flat: no baseline section, learned at next \
             refresh"
      | Some base_flat ->
          let gate_rate ~section ~key ~field ctx =
            let find j r0 =
              List.find_opt
                (fun r ->
                  List.for_all
                    (fun k ->
                      Option.bind (Json.member k r) Json.to_int_opt
                      = Option.bind (Json.member k r0) Json.to_int_opt)
                    key)
                (list_field section j)
            in
            List.iter
              (fun base_r ->
                match find fresh_flat base_r with
                | None -> ()
                | Some fresh_r -> (
                    match
                      (float_field field base_r, float_field field fresh_r)
                    with
                    | Some b, Some f when b > 0. ->
                        if f < b *. (1. -. flat_tolerance) then
                          fail
                            "engine_flat %s: %.0f %s vs baseline %.0f \
                             (-%.0f%% > -%.0f%% tolerance)"
                            ctx f field b
                            (100. *. (1. -. (f /. b)))
                            (flat_tolerance *. 100.)
                        else
                          info "engine_flat %s: %.0f %s vs baseline %.0f" ctx
                            f field b
                    | _ -> ()))
              (list_field section base_flat)
          in
          gate_rate ~section:"head_to_head" ~key:[ "n" ]
            ~field:"flat_steps_per_s" "head-to-head";
          gate_rate ~section:"scale" ~key:[ "n"; "parts" ]
            ~field:"steps_per_s" "scale"));

  (* 8. flat_obs: observability on the flat data path.  Same contract as
     the prof gate, on the scale-tier workload: prof-off throughput holds
     to the baseline (noise floor 5%), and the measured prof-on overhead
     stays under a cap that never tightens below 10% — the flat hot loop
     is fast enough that per-step lap clocks cost proportionally more
     than on the classic engine.  Digest bit-identity between prof-off
     and prof-on runs is asserted inside the bench itself (the section
     would be absent, and the bench failed, had it diverged). *)
  let obs_tolerance = Float.max 0.05 tolerance in
  let obs_overhead_cap = Float.max 0.10 tolerance *. 100. in
  let fresh_obs = list_field "flat_obs" fresh in
  if fresh_obs <> [] && list_field "flat_obs" baseline = [] then
    info "new-section flat_obs: no baseline section, learned at next refresh";
  List.iter
    (fun fresh_record ->
      match Option.bind (Json.member "n" fresh_record) Json.to_int_opt with
      | None -> ()
      | Some n -> (
          (let same r =
             Option.bind (Json.member "n" r) Json.to_int_opt = Some n
           in
           match
             ( Option.bind
                 (List.find_opt same (list_field "flat_obs" baseline))
                 (float_field "prof_off_steps_per_s"),
               float_field "prof_off_steps_per_s" fresh_record )
           with
           | Some base_r, Some fresh_r when base_r > 0. ->
               if fresh_r < base_r *. (1. -. obs_tolerance) then
                 fail
                   "flat_obs n=%d: prof-off throughput %.0f steps/s vs \
                    baseline %.0f (-%.0f%% > -%.0f%% tolerance)"
                   n fresh_r base_r
                   ((1. -. (fresh_r /. base_r)) *. 100.)
                   (obs_tolerance *. 100.)
               else
                 info
                   "flat_obs n=%d: prof-off %.0f steps/s vs baseline %.0f \
                    (%+.0f%%)"
                   n fresh_r base_r
                   (((fresh_r /. base_r) -. 1.) *. 100.)
           | _ -> ());
          match float_field "prof_overhead_pct" fresh_record with
          | Some pct when pct > obs_overhead_cap ->
              fail "flat_obs n=%d: prof-on overhead %.1f%% exceeds %.0f%% cap"
                n pct obs_overhead_cap
          | Some pct -> info "flat_obs n=%d: prof-on overhead %.1f%%" n pct
          | None -> ()))
    fresh_obs;

  if !failures > 0 then begin
    Printf.printf
      "bench_gate: %d failure(s) (tolerance +%.0f%%; override with \
       BENCH_GATE_TOLERANCE)\n"
      !failures (tolerance *. 100.);
    exit 1
  end
  else
    Printf.printf "bench_gate: pass (tolerance +%.0f%%)\n" (tolerance *. 100.)

open Helpers
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Trace = Ssreset_sim.Trace
module Stats = Ssreset_sim.Stats

(* Toy algorithm 1: "max propagation" — copy the largest neighbor value when
   strictly larger.  Monotone, silent; stabilizes to the global max. *)
let max_prop : int Algorithm.t =
  let guard (v : int Algorithm.view) =
    Array.exists (fun x -> x > v.Algorithm.state) v.Algorithm.nbrs
  in
  let action (v : int Algorithm.view) =
    Array.fold_left max v.Algorithm.state v.Algorithm.nbrs
  in
  { Algorithm.name = "max-prop";
    rules = [ { Algorithm.rule_name = "copy"; guard; action } ];
    equal = Int.equal;
    pp = Fmt.int }

(* Toy algorithm 2: "sum of neighbors" — used to pin down composite
   atomicity (all activated processes read the pre-step configuration). *)
let sum_nbrs : int Algorithm.t =
  { Algorithm.name = "sum-nbrs";
    rules =
      [ { Algorithm.rule_name = "sum";
          guard = (fun _ -> true);
          action =
            (fun v -> Array.fold_left ( + ) 0 v.Algorithm.nbrs) } ];
    equal = Int.equal;
    pp = Fmt.int }

(* Toy algorithm 3: two rules with distinct guards for rule-accounting
   tests. *)
let two_rules : int Algorithm.t =
  { Algorithm.name = "two-rules";
    rules =
      [ { Algorithm.rule_name = "up";
          guard = (fun v -> v.Algorithm.state < 5);
          action = (fun v -> v.Algorithm.state + 1) };
        { Algorithm.rule_name = "wrap";
          guard = (fun v -> v.Algorithm.state >= 5);
          action = (fun _ -> 0) } ];
    equal = Int.equal;
    pp = Fmt.int }

(* ------------------------------ Algorithm ------------------------------ *)

let algorithm_tests =
  [ test "view exposes own state and neighbors by local label" (fun () ->
        let g = Gen.path 4 in
        let cfg = [| 10; 20; 30; 40 |] in
        let v = Algorithm.view g cfg 1 in
        check_int "self" 20 v.Algorithm.state;
        check (Alcotest.array Alcotest.int) "nbrs" [| 10; 30 |]
          v.Algorithm.nbrs);
    test "views covers every process" (fun () ->
        let g = Gen.ring 5 in
        let cfg = [| 0; 1; 2; 3; 4 |] in
        let vs = Algorithm.views g cfg in
        check_int "len" 5 (Array.length vs);
        check_int "state-3" 3 vs.(3).Algorithm.state);
    test "enabled_rule picks the first enabled rule in order" (fun () ->
        let g = Gen.path 2 in
        let v = Algorithm.view g [| 5; 0 |] 0 in
        (match Algorithm.enabled_rule two_rules v with
        | Some r -> check Alcotest.string "rule" "wrap" r.Algorithm.rule_name
        | None -> Alcotest.fail "expected an enabled rule"));
    test "enabled_processes and is_terminal" (fun () ->
        let g = Gen.path 3 in
        check
          (Alcotest.list Alcotest.int)
          "enabled" [ 0; 2 ]
          (Algorithm.enabled_processes max_prop g [| 0; 9; 3 |]);
        check_true "terminal"
          (Algorithm.is_terminal max_prop g [| 7; 7; 7 |]);
        check_false "not terminal"
          (Algorithm.is_terminal max_prop g [| 7; 7; 8 |]));
    test "for_all_views" (fun () ->
        let g = Gen.ring 4 in
        check_true "all"
          (Algorithm.for_all_views g [| 1; 1; 1; 1 |] ~f:(fun _ v ->
               v.Algorithm.state = 1));
        check_false "not all"
          (Algorithm.for_all_views g [| 1; 1; 2; 1 |] ~f:(fun _ v ->
               v.Algorithm.state = 1)));
    test "exclusive_rules reports every enabled rule" (fun () ->
        let g = Gen.path 2 in
        let v = Algorithm.view g [| 3; 0 |] 0 in
        check (Alcotest.list Alcotest.string) "one" [ "up" ]
          (Algorithm.exclusive_rules two_rules v)) ]

(* -------------------------------- Engine ------------------------------- *)

let engine_tests =
  [ test "composite atomicity: activated processes read the old config"
      (fun () ->
        let g = Gen.path 3 in
        let r =
          run ~algorithm:sum_nbrs ~graph:g ~daemon:Daemon.synchronous
            ~max_steps:1 [| 1; 10; 100 |]
        in
        (* p0 reads old p1=10; p1 reads old p0+p2=101; p2 reads old p1=10. *)
        check (Alcotest.array Alcotest.int) "next" [| 10; 101; 10 |]
          r.Engine.final);
    test "step returns None on terminal configurations" (fun () ->
        let g = Gen.ring 4 in
        check_true "terminal"
          (Engine.step ~algorithm:max_prop ~graph:g
             ~daemon:Daemon.synchronous ~step_index:0 [| 2; 2; 2; 2 |]
          = None));
    test "check_overlap rejects simultaneously enabled rules" (fun () ->
        let overlapping : int Algorithm.t =
          { Algorithm.name = "overlapping";
            rules =
              [ { Algorithm.rule_name = "a";
                  guard = (fun v -> v.Algorithm.state = 0);
                  action = (fun _ -> 1) };
                { Algorithm.rule_name = "b";
                  guard = (fun v -> v.Algorithm.state <= 0);
                  action = (fun _ -> 2) } ];
            equal = Int.equal;
            pp = Fmt.int }
        in
        let g = Gen.path 2 in
        let cfg = [| 0; 1 |] in
        (* default: silent first-match semantics *)
        (match
           Engine.step ~algorithm:overlapping ~graph:g
             ~daemon:Daemon.synchronous ~step_index:0 cfg
         with
        | Some (next, _) -> check_int "first match" 1 next.(0)
        | None -> Alcotest.fail "expected a step");
        check_true "flag raises"
          (match
             Engine.step ~check_overlap:true ~algorithm:overlapping ~graph:g
               ~daemon:Daemon.synchronous ~step_index:0 cfg
           with
          | exception Invalid_argument _ -> true
          | _ -> false);
        (* exclusive rule sets pass under the flag *)
        let r =
          Engine.run ~check_overlap:true ~algorithm:two_rules ~graph:g
            ~daemon:Daemon.synchronous ~max_steps:6 [| 0; 5 |]
        in
        check_true "exclusive ok" (r.Engine.steps = 6));
    test "max-prop reaches the global maximum under every daemon" (fun () ->
        List.iter
          (fun daemon ->
            let g = Gen.ring 6 in
            let r =
              run ~algorithm:max_prop ~graph:g ~daemon [| 3; 1; 4; 1; 5; 9 |]
            in
            check_true "terminal" (r.Engine.outcome = Engine.Terminal);
            check (Alcotest.array Alcotest.int) "all max"
              [| 9; 9; 9; 9; 9; 9 |] r.Engine.final)
          (daemons ()));
    test "move accounting: total, per process, per rule" (fun () ->
        let g = Gen.path 2 in
        let r =
          run ~algorithm:two_rules ~graph:g ~daemon:Daemon.synchronous
            ~max_steps:6 [| 0; 5 |]
        in
        check_int "moves" 12 r.Engine.moves;
        check_int "p0" 6 r.Engine.moves_per_process.(0);
        check_int "p1" 6 r.Engine.moves_per_process.(1);
        let up = List.assoc "up" r.Engine.moves_per_rule in
        let wrap = List.assoc "wrap" r.Engine.moves_per_rule in
        check_int "up+wrap" 12 (up + wrap);
        check_true "wrap happened" (wrap >= 1));
    test "moves_of_rules filters by prefix" (fun () ->
        check_int "sum" 7
          (Engine.moves_of_rules
             [ ("SDR-C", 3); ("SDR-R", 4); ("U-inc", 5) ]
             ~prefixes:[ "SDR-" ]));
    test "rounds equal propagation distance under the synchronous daemon"
      (fun () ->
        (* max value at one end of a path: sync round r fixes process r. *)
        let n = 7 in
        let g = Gen.path n in
        let cfg = Array.make n 0 in
        cfg.(0) <- 9;
        let r = run ~algorithm:max_prop ~graph:g ~daemon:Daemon.synchronous cfg in
        check_true "terminal" (r.Engine.outcome = Engine.Terminal);
        check_int "rounds" (n - 1) r.Engine.rounds;
        check_int "steps" (n - 1) r.Engine.steps);
    test "rounds under a central daemon still count fairness spans" (fun () ->
        let n = 5 in
        let g = Gen.path n in
        let cfg = Array.make n 0 in
        cfg.(0) <- 9;
        (* central-last always picks the largest enabled index: process 1 is
           enabled from the start but is served last, so the first round
           spans the whole execution except its final step. *)
        let r = run ~algorithm:max_prop ~graph:g ~daemon:Daemon.central_last cfg in
        check_true "terminal" (r.Engine.outcome = Engine.Terminal);
        check_true "rounds <= steps" (r.Engine.rounds <= r.Engine.steps);
        check_true "at least one round" (r.Engine.rounds >= 1));
    test "neutralization ends rounds without a move" (fun () ->
        (* Both endpoints of a 2-path are enabled; activating one disables
           the other (it reaches the max).  One step must close the round. *)
        let g = Gen.path 2 in
        let r =
          run ~algorithm:max_prop ~graph:g ~daemon:Daemon.central_first
            [| 1; 2 |]
        in
        check_int "steps" 1 r.Engine.steps;
        check_int "rounds" 1 r.Engine.rounds);
    test "stop predicate halts immediately when initially true" (fun () ->
        let g = Gen.ring 4 in
        let r =
          run ~algorithm:max_prop ~graph:g ~daemon:Daemon.synchronous
            ~stop:(fun _ -> true)
            [| 0; 1; 2; 3 |]
        in
        check_true "stabilized" (r.Engine.outcome = Engine.Stabilized);
        check_int "steps" 0 r.Engine.steps;
        check_int "rounds" 0 r.Engine.rounds);
    test "stop predicate halts mid-run" (fun () ->
        let g = Gen.path 6 in
        let cfg = [| 9; 0; 0; 0; 0; 0 |] in
        let r =
          run ~algorithm:max_prop ~graph:g ~daemon:Daemon.synchronous
            ~stop:(fun cfg -> cfg.(2) = 9)
            cfg
        in
        check_true "stabilized" (r.Engine.outcome = Engine.Stabilized);
        check_int "steps" 2 r.Engine.steps);
    test "max_steps exhaustion is reported" (fun () ->
        let g = Gen.ring 4 in
        let r =
          run ~algorithm:two_rules ~graph:g ~daemon:Daemon.synchronous
            ~max_steps:10 [| 0; 0; 0; 0 |]
        in
        check_true "limit" (r.Engine.outcome = Engine.Step_limit);
        check_int "steps" 10 r.Engine.steps);
    test "observer sees every step with the new configuration" (fun () ->
        let g = Gen.path 4 in
        let seen = ref [] in
        let observer ~step ~moved cfg =
          seen := (step, List.length moved, Array.copy cfg) :: !seen
        in
        let cfg = [| 9; 0; 0; 0 |] in
        let r =
          Engine.run ~observer ~algorithm:max_prop ~graph:g
            ~daemon:Daemon.synchronous cfg
        in
        check_int "entries" r.Engine.steps (List.length !seen);
        let last_step, _, last_cfg = List.hd !seen in
        check_int "last index" (r.Engine.steps - 1) last_step;
        check (Alcotest.array Alcotest.int) "final" r.Engine.final last_cfg) ]

(* -------------------------------- Daemons ------------------------------ *)

let mk_ctx g enabled =
  { Daemon.step = 0;
    graph = g;
    enabled;
    rule_name = (fun _ -> "r") }

let daemon_tests =
  [ test "synchronous selects everything" (fun () ->
        let g = Gen.ring 5 in
        let ctx = mk_ctx g [ 0; 2; 4 ] in
        check (Alcotest.list Alcotest.int) "all" [ 0; 2; 4 ]
          (Daemon.synchronous.Daemon.select (rng 1) ctx));
    test "central daemons select exactly one enabled process" (fun () ->
        let g = Gen.ring 5 in
        let ctx = mk_ctx g [ 1; 3 ] in
        List.iter
          (fun d ->
            match d.Daemon.select (rng 2) ctx with
            | [ u ] -> check_true "member" (List.mem u [ 1; 3 ])
            | other ->
                Alcotest.failf "%s selected %d processes" d.Daemon.daemon_name
                  (List.length other))
          [ Daemon.central_random; Daemon.central_first; Daemon.central_last;
            Daemon.round_robin () ]);
    test "central_first/last are deterministic extremes" (fun () ->
        let g = Gen.ring 7 in
        let ctx = mk_ctx g [ 2; 4; 6 ] in
        check (Alcotest.list Alcotest.int) "first" [ 2 ]
          (Daemon.central_first.Daemon.select (rng 3) ctx);
        check (Alcotest.list Alcotest.int) "last" [ 6 ]
          (Daemon.central_last.Daemon.select (rng 3) ctx));
    test "round_robin visits all processes over time" (fun () ->
        let g = Gen.ring 4 in
        let d = Daemon.round_robin () in
        let seen = Hashtbl.create 4 in
        for _ = 1 to 8 do
          match d.Daemon.select (rng 1) (mk_ctx g [ 0; 1; 2; 3 ]) with
          | [ u ] -> Hashtbl.replace seen u ()
          | _ -> Alcotest.fail "round robin must be central"
        done;
        check_int "coverage" 4 (Hashtbl.length seen));
    test "distributed_random never selects an empty set" (fun () ->
        let g = Gen.ring 6 in
        let d = Daemon.distributed_random 0.01 in
        for seed = 1 to 50 do
          let chosen = d.Daemon.select (rng seed) (mk_ctx g [ 0; 3 ]) in
          check_true "nonempty" (chosen <> []);
          List.iter (fun u -> check_true "subset" (List.mem u [ 0; 3 ])) chosen
        done);
    test "distributed_random validates p" (fun () ->
        check_true "p=0 rejected"
          (match Daemon.distributed_random 0.0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "locally_central never activates two neighbors" (fun () ->
        let g = Gen.ring 8 in
        let all = List.init 8 Fun.id in
        for seed = 1 to 30 do
          let chosen =
            Daemon.locally_central_random.Daemon.select (rng seed)
              (mk_ctx g all)
          in
          check_true "nonempty" (chosen <> []);
          List.iter
            (fun u ->
              List.iter
                (fun v ->
                  if u <> v then
                    check_false "independent" (Graph.has_edge g u v))
                chosen)
            chosen
        done);
    test "starve avoids its victim unless it is alone" (fun () ->
        let g = Gen.ring 4 in
        let d = Daemon.starve 0 in
        for seed = 1 to 20 do
          (match d.Daemon.select (rng seed) (mk_ctx g [ 0; 1; 2 ]) with
          | [ u ] -> check_true "not victim" (u <> 0)
          | _ -> Alcotest.fail "starve is central")
        done;
        check (Alcotest.list Alcotest.int) "alone" [ 0 ]
          (d.Daemon.select (rng 1) (mk_ctx g [ 0 ])));
    test "adversarial_rule prefers listed rules" (fun () ->
        let g = Gen.ring 4 in
        let ctx =
          { Daemon.step = 0;
            graph = g;
            enabled = [ 0; 1; 2 ];
            rule_name = (fun u -> if u = 1 then "special" else "other") }
        in
        let d = Daemon.adversarial_rule ~prefer:[ "special" ] in
        check (Alcotest.list Alcotest.int) "prefers" [ 1 ]
          (d.Daemon.select (rng 1) ctx));
    test "check_selection rejects bad selections" (fun () ->
        let g = Gen.ring 4 in
        let ctx = mk_ctx g [ 1; 2 ] in
        check_true "empty"
          (match Daemon.check_selection ctx [] with
          | exception Invalid_argument _ -> true
          | _ -> false);
        check_true "foreign"
          (match Daemon.check_selection ctx [ 3 ] with
          | exception Invalid_argument _ -> true
          | _ -> false)) ]

(* ------------------------------ Fault/Trace ---------------------------- *)

let fault_trace_tests =
  [ test "arbitrary draws one state per process" (fun () ->
        let g = Gen.ring 9 in
        let cfg = Fault.arbitrary (rng 4) (fun _ u -> u * 2) g in
        check_int "len" 9 (Array.length cfg);
        check_int "value" 10 cfg.(5));
    test "corrupt changes exactly k processes" (fun () ->
        let g = Gen.ring 10 in
        ignore g;
        let cfg = Array.make 10 0 in
        let next = Fault.corrupt (rng 5) (fun _ _ -> 99) ~k:4 cfg in
        let changed =
          Array.fold_left (fun acc x -> if x = 99 then acc + 1 else acc) 0 next
        in
        check_int "changed" 4 changed;
        check_int "original untouched" 0 cfg.(0));
    test "corrupt clamps k to n" (fun () ->
        let cfg = Array.make 3 0 in
        let next = Fault.corrupt (rng 6) (fun _ _ -> 7) ~k:50 cfg in
        check (Alcotest.array Alcotest.int) "all" [| 7; 7; 7 |] next);
    test "corrupt_processes targets exactly the victims" (fun () ->
        let cfg = [| 0; 0; 0; 0 |] in
        let next = Fault.corrupt_processes (rng 7) (fun _ _ -> 5) [ 1; 3 ] cfg in
        check (Alcotest.array Alcotest.int) "targets" [| 0; 5; 0; 5 |] next);
    test "trace records steps and final configurations" (fun () ->
        let g = Gen.path 5 in
        let cfg = [| 9; 0; 0; 0; 0 |] in
        let trace, r =
          Trace.record ~algorithm:max_prop ~graph:g ~daemon:Daemon.synchronous
            cfg
        in
        check_int "length" r.Engine.steps (Trace.length trace);
        check_int "configs" (r.Engine.steps + 1)
          (List.length (Trace.configs trace));
        let pairs = Trace.steps_pairs trace in
        check_int "pairs" r.Engine.steps (List.length pairs));
    test "rule_sequence extracts a process's rule names in order" (fun () ->
        let g = Gen.path 2 in
        let trace, _ =
          Trace.record ~algorithm:two_rules ~graph:g
            ~daemon:Daemon.central_first ~max_steps:12 [| 4; 9 |]
        in
        let seq = Trace.rule_sequence trace 0 in
        check_true "starts with up then wrap"
          (match seq with "up" :: "wrap" :: _ -> true | _ -> false));
    test "moved_processes lists exactly the movers" (fun () ->
        let g = Gen.path 3 in
        let trace, _ =
          Trace.record ~algorithm:max_prop ~graph:g ~daemon:Daemon.synchronous
            [| 0; 0; 9 |]
        in
        check (Alcotest.list Alcotest.int) "movers" [ 0; 1 ]
          (Trace.moved_processes trace)) ]

(* -------------------------------- Stats -------------------------------- *)

let stats_tests =
  [ test "summarize on a known sample" (fun () ->
        let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
        check_int "count" 4 s.Stats.count;
        check (Alcotest.float 0.0001) "mean" 2.5 s.Stats.mean;
        check (Alcotest.float 0.0001) "min" 1.0 s.Stats.min;
        check (Alcotest.float 0.0001) "max" 4.0 s.Stats.max;
        (* sample (Bessel-corrected) standard deviation *)
        check (Alcotest.float 0.0001) "sd" (sqrt (5. /. 3.)) s.Stats.stddev);
    test "stddev needs at least two samples" (fun () ->
        check (Alcotest.float 0.0) "singleton"
          0.0 (Stats.summarize [ 42.0 ]).Stats.stddev);
    test "median and percentile" (fun () ->
        check (Alcotest.float 0.0001) "odd median" 3.0
          (Stats.median [ 5.0; 1.0; 3.0 ]);
        check (Alcotest.float 0.0001) "even median" 2.5
          (Stats.median [ 4.0; 1.0; 3.0; 2.0 ]);
        check (Alcotest.float 0.0001) "p0" 1.0
          (Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] ~p:0.0);
        check (Alcotest.float 0.0001) "p100" 4.0
          (Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] ~p:100.0);
        (* type-7 linear interpolation: p75 of 1..4 is 3.25 *)
        check (Alcotest.float 0.0001) "p75" 3.25
          (Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] ~p:75.0);
        check (Alcotest.float 0.0) "empty" 0.0 (Stats.median []);
        check_true "out of range"
          (match Stats.percentile [ 1.0 ] ~p:150.0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "summarize of empty sample is all zeros" (fun () ->
        let s = Stats.summarize [] in
        check_int "count" 0 s.Stats.count;
        check (Alcotest.float 0.0) "mean" 0.0 s.Stats.mean);
    test "summarize_ints and max_int_list" (fun () ->
        let s = Stats.summarize_ints [ 2; 4; 6 ] in
        check (Alcotest.float 0.0001) "mean" 4.0 s.Stats.mean;
        check_int "max" 6 (Stats.max_int_list [ 2; 6; 4 ]);
        check_int "max empty" 0 (Stats.max_int_list []));
    test "ratio handles zero denominators" (fun () ->
        check (Alcotest.float 0.0001) "ratio" 2.5 (Stats.ratio 5 2);
        check (Alcotest.float 0.0001) "zero" 0.0 (Stats.ratio 5 0)) ]

let () =
  Alcotest.run "sim"
    [ ("algorithm", algorithm_tests);
      ("engine", engine_tests);
      ("daemon", daemon_tests);
      ("fault-trace", fault_trace_tests);
      ("stats", stats_tests) ]

open Helpers
module Gen = Ssreset_graph.Gen
module Algorithm = Ssreset_sim.Algorithm
module Sdr = Ssreset_core.Sdr
module Requirements = Ssreset_core.Requirements
module Spec = Ssreset_alliance.Spec

(* The four shipped input algorithms must satisfy the SDR requirements
   (§3.5); a deliberately broken input must be caught.  This validates both
   the inputs and the checker itself. *)

let graphs () =
  [ Gen.ring 8; Gen.star 7; Gen.erdos_renyi (rng 41) 10 0.35; Gen.path 6 ]

let no_violations name violations =
  if violations <> [] then
    Alcotest.failf "%s: %s" name
      (String.concat "; "
         (List.map (Fmt.str "%a" Requirements.pp_violation) violations))

let unison_test =
  test "unison input satisfies requirements 2a-2e" (fun () ->
      let module U = Ssreset_unison.Unison.Make (struct
        let k = 12
      end) in
      no_violations "unison"
        (Requirements.check
           (module U.Input)
           ~gen:U.clock_gen ~graphs:(graphs ()) ~seed:1 ~trials:20))

let fga_test =
  test "FGA input satisfies requirements 2a-2e (all named specs)" (fun () ->
      List.iter
        (fun g ->
          List.iter
            (fun spec ->
              if Spec.feasible spec g then begin
                let module F = Ssreset_alliance.Fga.Make (struct
                  let graph = g
                  let spec = spec
                  let ids = None
                end) in
                no_violations
                  ("fga-" ^ spec.Spec.spec_name)
                  (Requirements.check
                     (module F.Input)
                     ~gen:F.gen ~graphs:[ g ] ~seed:2 ~trials:15)
              end)
            [ Spec.dominating_set; Spec.global_offensive;
              Spec.global_defensive; Spec.global_powerful ])
        (graphs ()))

let coloring_test =
  test "coloring input satisfies requirements 2a-2e" (fun () ->
      List.iter
        (fun g ->
          let module C = Ssreset_coloring.Coloring.Make (struct
            let graph = g
            let ids = None
          end) in
          no_violations "coloring"
            (Requirements.check
               (module C.Input)
               ~gen:C.gen ~graphs:[ g ] ~seed:3 ~trials:20))
        (graphs ()))

let mis_test =
  test "MIS input satisfies requirements 2a-2e" (fun () ->
      List.iter
        (fun g ->
          let module M = Ssreset_mis.Mis.Make (struct
            let graph = g
            let ids = None
          end) in
          no_violations "mis"
            (Requirements.check
               (module M.Input)
               ~gen:M.gen ~graphs:[ g ] ~seed:4 ~trials:20))
        (graphs ()))

let matching_test =
  test "matching input satisfies requirements 2a-2e" (fun () ->
      List.iter
        (fun g ->
          let module M = Ssreset_matching.Matching.Make (struct
            let graph = g
            let ids = None
          end) in
          no_violations "matching"
            (Requirements.check
               (module M.Input)
               ~gen:M.gen ~graphs:[ g ] ~seed:7 ~trials:20))
        (graphs ()))

(* A broken input: reset does not reach a P_reset state (violates 2e), a
   rule fires on incorrect views (violates 2c), and P_ICorrect is not
   closed (violates 2a). *)
module Broken : Sdr.INPUT with type state = int = struct
  type state = int

  let name = "broken"
  let equal = Int.equal
  let pp = Fmt.int

  (* "correct" = even clock; incrementing by 1 flips parity, so a correct
     process becomes incorrect by its own move: not closed. *)
  let p_icorrect (v : int Algorithm.view) = v.Algorithm.state mod 2 = 0
  let p_reset c = c = 0
  let reset _ = 1 (* 2e violated: P_reset (reset s) is false *)

  let rules =
    [ { Algorithm.rule_name = "bump";
        guard = (fun _ -> true) (* 2c violated: fires when incorrect *);
        action = (fun v -> v.Algorithm.state + 1) } ]
end

let broken_test =
  test "the checker flags a broken input on every violated requirement"
    (fun () ->
      let violations =
        Requirements.check
          (module Broken)
          ~gen:(fun rng _ -> Random.State.int rng 6)
          ~graphs:[ Gen.ring 6 ]
          ~seed:5 ~trials:10
      in
      let has r =
        List.exists
          (fun v -> String.equal v.Requirements.requirement r)
          violations
      in
      check_true "2e flagged" (has "2e");
      check_true "2c flagged" (has "2c");
      check_true "2a flagged" (has "2a"))

(* An input violating only 2d: an all-reset neighborhood that is not
   locally correct. *)
module Broken2d : Sdr.INPUT with type state = int = struct
  type state = int

  let name = "broken-2d"
  let equal = Int.equal
  let pp = Fmt.int
  let p_icorrect (v : int Algorithm.view) = v.Algorithm.state > 0
  let p_reset c = c = 0
  let reset _ = 0
  let rules = []
end

let broken_2d_test =
  test "the checker isolates a requirement-2d violation" (fun () ->
      let violations =
        Requirements.check
          (module Broken2d)
          ~gen:(fun rng _ -> Random.State.int rng 4)
          ~graphs:[ Gen.path 4 ]
          ~seed:6 ~trials:5
      in
      check_true "2d flagged"
        (List.exists
           (fun v -> String.equal v.Requirements.requirement "2d")
           violations);
      check_false "2e not flagged"
        (List.exists
           (fun v -> String.equal v.Requirements.requirement "2e")
           violations))

(* An input violating only 2b: reset type-checks and always lands in
   P_reset, but a second reset keeps shifting the state — hidden progress
   a real reinitialization must not make (reset must be idempotent). *)
module Broken2b : Sdr.INPUT with type state = int = struct
  type state = int

  let name = "broken-2b"
  let equal = Int.equal
  let pp = Fmt.int
  let p_icorrect _ = true
  let p_reset c = c <= 0
  let reset s = if s > 0 then -s else if s < 0 then s + 1 else 0
  let rules = []
end

let broken_2b_test =
  test "the checker isolates a requirement-2b violation" (fun () ->
      let violations =
        Requirements.check
          (module Broken2b)
          ~gen:(fun rng _ -> Random.State.int rng 7 - 3)
          ~graphs:[ Gen.path 4 ]
          ~seed:8 ~trials:5
      in
      check_true "2b flagged"
        (List.exists
           (fun v -> String.equal v.Requirements.requirement "2b")
           violations);
      check_false "nothing but 2b"
        (List.exists
           (fun v -> not (String.equal v.Requirements.requirement "2b"))
           violations))

let () =
  Alcotest.run "requirements"
    [ ("shipped inputs",
       [ unison_test; fga_test; coloring_test; mis_test; matching_test ]);
      ("checker sensitivity",
       [ broken_test; broken_2d_test; broken_2b_test ]) ]

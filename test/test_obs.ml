open Helpers
module Json = Ssreset_obs.Json
module Metrics = Ssreset_obs.Metrics
module Obs = Ssreset_obs.Obs
module Sink = Ssreset_obs.Sink

(* --------------------------------- Json --------------------------------- *)

let roundtrip json =
  match Json.of_string (Json.to_string json) with
  | Ok j -> j
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg

let json_tests =
  [ test "scalars round-trip exactly" (fun () ->
        List.iter
          (fun j -> check_true (Json.to_string j) (Json.equal j (roundtrip j)))
          [ Json.Null; Json.Bool true; Json.Bool false; Json.Int 0;
            Json.Int (-42); Json.Int max_int; Json.Float 0.5;
            Json.Float 1e-9; Json.Float 123456789.25; Json.String "";
            Json.String "héllo \"world\"\n\t\\"; Json.List [];
            Json.Obj [] ]);
    test "ints stay ints, floats stay floats" (fun () ->
        check_true "int" (roundtrip (Json.Int 7) = Json.Int 7);
        check_true "float"
          (match roundtrip (Json.Float 7.5) with
          | Json.Float f -> f = 7.5
          | _ -> false);
        (* integral floats must not collapse into Int on re-parse *)
        check_true "integral float"
          (match roundtrip (Json.Float 3.0) with
          | Json.Float f -> f = 3.0
          | _ -> false));
    test "non-finite floats encode as null" (fun () ->
        check Alcotest.string "nan" "null" (Json.to_string (Json.Float nan));
        check Alcotest.string "inf" "null"
          (Json.to_string (Json.Float infinity)));
    test "nested structures round-trip with field order" (fun () ->
        let j =
          Json.Obj
            [ ("b", Json.List [ Json.Int 1; Json.Null; Json.String "x" ]);
              ("a", Json.Obj [ ("nested", Json.Bool false) ]) ]
        in
        check_true "equal" (Json.equal j (roundtrip j));
        check Alcotest.string "order"
          {|{"b":[1,null,"x"],"a":{"nested":false}}|} (Json.to_string j));
    test "parser accepts whitespace and escapes" (fun () ->
        let j = Json.of_string_exn {|  { "k" : [ 1 , 2.5, "A\n" ] }  |} in
        check Alcotest.(option string) "escape" (Some "A\n")
          (match Json.member "k" j with
          | Some (Json.List [ _; _; s ]) -> Json.to_string_opt s
          | _ -> None));
    test "parser rejects garbage" (fun () ->
        List.iter
          (fun s ->
            check_true s
              (match Json.of_string s with Error _ -> true | Ok _ -> false))
          [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]);
    test "to_string_hum parses back to the same value" (fun () ->
        let j =
          Json.Obj
            [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
              ("s", Json.String "v") ]
        in
        check_true "hum round-trip"
          (Json.equal j (Json.of_string_exn (Json.to_string_hum j))));
    test "accessors" (fun () ->
        let j = Json.Obj [ ("n", Json.Int 3); ("f", Json.Float 1.5) ] in
        check Alcotest.(option int) "int" (Some 3)
          (Option.bind (Json.member "n" j) Json.to_int_opt);
        check Alcotest.(option (float 0.0)) "widen" (Some 3.0)
          (Option.bind (Json.member "n" j) Json.to_float_opt);
        check Alcotest.(option int) "missing" None
          (Option.bind (Json.member "zz" j) Json.to_int_opt)) ]

(* -------------------------------- Metrics ------------------------------- *)

let metrics_tests =
  [ test "counters accumulate and re-register by name" (fun () ->
        let m = Metrics.create () in
        let c = Metrics.counter m "moves" in
        Metrics.incr c;
        Metrics.add c 4;
        let again = Metrics.counter m "moves" in
        Metrics.incr again;
        check_int "value" 6 (Metrics.counter_value c));
    test "gauges are last-write-wins" (fun () ->
        let m = Metrics.create () in
        let g = Metrics.gauge m "wall" in
        Metrics.set g 1.0;
        Metrics.set g 2.5;
        check (Alcotest.float 0.0) "value" 2.5 (Metrics.gauge_value g));
    test "histogram buckets, overflow and quantile" (fun () ->
        let m = Metrics.create () in
        let h = Metrics.histogram m "h" ~buckets:[| 1.; 2.; 4. |] in
        List.iter (Metrics.observe h) [ 1.; 1.; 2.; 3.; 100. ];
        check_int "count" 5 (Metrics.histogram_count h);
        check (Alcotest.float 0.0001) "sum" 107. (Metrics.histogram_sum h);
        check (Alcotest.float 0.0001) "median bucket" 2.
          (Metrics.histogram_quantile h ~p:50.);
        check_true "invalid buckets"
          (match Metrics.histogram m "bad" ~buckets:[| 2.; 1. |] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "pow2_buckets covers the limit" (fun () ->
        let b = Metrics.pow2_buckets ~limit:5. in
        check_true "starts at 1" (b.(0) = 1.);
        check_true "last >= limit" (b.(Array.length b - 1) >= 5.);
        check_true "strictly increasing"
          (Array.for_all (fun x -> x > 0.) b));
    test "to_json snapshot parses and keeps exact counters" (fun () ->
        let m = Metrics.create () in
        Metrics.add (Metrics.counter m "big") 1_000_000_007;
        Metrics.set (Metrics.gauge m "g") 0.25;
        ignore (Metrics.histogram m "h" ~buckets:[| 1.; 2. |]);
        let j = roundtrip (Metrics.to_json m) in
        check Alcotest.(option int) "counter exact" (Some 1_000_000_007)
          (Option.bind (Json.member "counters" j) (fun c ->
               Option.bind (Json.member "big" c) Json.to_int_opt))) ]

(* ---------------------------------- Obs --------------------------------- *)

let obs_tests =
  [ test "combine calls probes in list order on every step" (fun () ->
        let log = ref [] in
        let probe tag : int Obs.t =
         fun ~step ~moved:_ _cfg -> log := (tag, step) :: !log
        in
        let o = Obs.combine [ probe "a"; probe "b"; probe "c" ] in
        o ~step:0 ~moved:[] [||];
        o ~step:1 ~moved:[] [||];
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
          "order"
          [ ("a", 0); ("b", 0); ("c", 0); ("a", 1); ("b", 1); ("c", 1) ]
          (List.rev !log));
    test "combine [] is nop" (fun () ->
        (Obs.combine [] : int Obs.t) ~step:0 ~moved:[ (0, "r") ] [||]);
    test "move_counter filters by rule name" (fun () ->
        let total, o1 = Obs.move_counter () in
        let sdr, o2 =
          Obs.move_counter
            ~matches:(fun r -> String.length r >= 4 && String.sub r 0 4 = "SDR-")
            ()
        in
        let o = Obs.combine [ o1; o2 ] in
        o ~step:0 ~moved:[ (0, "SDR-C"); (1, "U-inc") ] [||];
        o ~step:1 ~moved:[ (2, "SDR-RF") ] [||];
        check_int "total" 3 !total;
        check_int "sdr" 2 !sdr);
    test "per_process_moves attributes moves" (fun () ->
        let counts, o = Obs.per_process_moves ~n:3 () in
        o ~step:0 ~moved:[ (0, "r"); (2, "r") ] [||];
        o ~step:1 ~moved:[ (2, "r") ] [||];
        check
          (Alcotest.array Alcotest.int)
          "counts" [| 1; 0; 2 |] counts);
    test "shrinking detects a growing set" (fun () ->
        let measure (cfg : int array) =
          Array.to_list (Array.mapi (fun i x -> (i, x)) cfg)
          |> List.filter_map (fun (i, x) -> if x > 0 then Some i else None)
        in
        let ok, o = Obs.shrinking ~measure ~init:(measure [| 1; 1; 0 |]) in
        o ~step:0 ~moved:[] [| 1; 0; 0 |];
        check_true "still monotone" !ok;
        o ~step:1 ~moved:[] [| 1; 0; 1 |];
        check_false "grew" !ok);
    test "sample thins the steps" (fun () ->
        let hits = ref 0 in
        let o =
          Obs.sample ~every:3 (fun ~step:_ ~moved:_ (_ : int array) ->
              incr hits)
        in
        for s = 0 to 8 do
          o ~step:s ~moved:[] [||]
        done;
        check_int "hits" 3 !hits) ]

(* --------------------------------- Sink --------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let sink_tests =
  [ test "manifest and summary round-trip through the parser" (fun () ->
        let m =
          Sink.manifest ~system:"unison" ~family:"ring" ~n:16 ~m:16 ~seed:3
            ~daemon:"synchronous" ()
        in
        let j = roundtrip m in
        check Alcotest.(option string) "type" (Some "manifest")
          (Option.bind (Json.member "type" j) Json.to_string_opt);
        check Alcotest.(option int) "schema" (Some Sink.schema_version)
          (Option.bind (Json.member "schema" j) Json.to_int_opt);
        check Alcotest.(option int) "n" (Some 16)
          (Option.bind (Json.member "n" j) Json.to_int_opt);
        let s =
          roundtrip
            (Sink.summary ~outcome:"stabilized" ~rounds:4 ~steps:100
               ~moves:250 ~wall_s:0.5 ())
        in
        check Alcotest.(option (float 0.0001)) "steps_per_s" (Some 200.)
          (Option.bind (Json.member "steps_per_s" s) Json.to_float_opt));
    test "file sink writes one parseable object per line" (fun () ->
        let path = Filename.temp_file "ssreset-sink" ".jsonl" in
        let sink = Sink.create path in
        Sink.write sink
          (Sink.manifest ~system:"s" ~family:"f" ~n:4 ~m:3 ~seed:1
             ~daemon:"d" ());
        Sink.write sink (Sink.round_record ~round:1 ~steps:2 ~moves:3 ());
        Sink.write sink
          (Sink.summary ~outcome:"terminal" ~rounds:1 ~steps:2 ~moves:3
             ~wall_s:0.0 ());
        Sink.close sink;
        let lines = read_lines path in
        Sys.remove path;
        check_int "three records" 3 (List.length lines);
        let types =
          List.map
            (fun line ->
              Option.bind
                (Json.member "type" (Json.of_string_exn line))
                Json.to_string_opt)
            lines
        in
        check
          Alcotest.(list (option string))
          "record types"
          [ Some "manifest"; Some "round"; Some "summary" ]
          types) ]

(* ------------------------- Runner integration --------------------------- *)

module Runner = Ssreset_expt.Runner
module Workload = Ssreset_expt.Workload

let integration_tests =
  [ test "a sunk run streams manifest-free rounds plus a summary" (fun () ->
        let path = Filename.temp_file "ssreset-run" ".jsonl" in
        let graph = Workload.ring.Workload.build ~seed:1 ~n:10 in
        let sink = Sink.create path in
        let obs =
          Runner.unison_composed ~sink ~graph
            ~daemon:(Runner.daemon_by_name "synchronous")
            ~seed:3 ()
        in
        Sink.close sink;
        let records = List.map Json.of_string_exn (read_lines path) in
        Sys.remove path;
        let of_type ty =
          List.filter
            (fun j ->
              Option.bind (Json.member "type" j) Json.to_string_opt = Some ty)
            records
        in
        check_int "one summary" 1 (List.length (of_type "summary"));
        check_true "has rounds" (List.length (of_type "round") > 0);
        let summary = List.hd (of_type "summary") in
        check Alcotest.(option int) "summary steps" (Some obs.Runner.steps)
          (Option.bind (Json.member "steps" summary) Json.to_int_opt);
        check Alcotest.(option int) "summary moves" (Some obs.Runner.moves)
          (Option.bind (Json.member "moves" summary) Json.to_int_opt));
    test "telemetry does not change the measured run" (fun () ->
        let graph = Workload.ring.Workload.build ~seed:1 ~n:10 in
        let run ?sink () =
          Runner.unison_composed ?sink ~graph
            ~daemon:(Runner.daemon_by_name "distributed-random")
            ~seed:9 ()
        in
        let bare = run () in
        let path = Filename.temp_file "ssreset-run" ".jsonl" in
        let sink = Sink.create path in
        let sunk = run ~sink () in
        Sink.close sink;
        Sys.remove path;
        check_int "moves" bare.Runner.moves sunk.Runner.moves;
        check_int "rounds" bare.Runner.rounds sunk.Runner.rounds;
        check_int "steps" bare.Runner.steps sunk.Runner.steps;
        check Alcotest.(option int) "segments" bare.Runner.segments
          sunk.Runner.segments);
    test "obs_json reports nulls for unmeasured fields" (fun () ->
        let graph = Workload.complete.Workload.build ~seed:1 ~n:6 in
        let obs =
          Runner.fga_bare ~spec:Ssreset_alliance.Spec.dominating_set ~graph
            ~daemon:(Runner.daemon_by_name "central-random")
            ~seed:2 ()
        in
        check Alcotest.(option bool) "bare segments unmeasured" None
          (Option.map (fun _ -> true) obs.Runner.segments);
        let j = roundtrip (Runner.obs_json obs) in
        check_true "segments null"
          (Json.member "segments" j = Some Json.Null)) ]

let () =
  Alcotest.run "obs"
    [ ("json", json_tests);
      ("metrics", metrics_tests);
      ("obs", obs_tests);
      ("sink", sink_tests);
      ("integration", integration_tests) ]

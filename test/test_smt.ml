(* check v4 — full-registry symbolic IRs + ranking/composition obligations.

   Four layers, no solver required for the first three:
   - differential: every registry-attached symbolic IR (all seven
     algorithms as of v4) must agree with its OCaml rules (enabled set +
     post-state, plus the rank differential where a spec carries one) on
     every connected graph up to n = 5, over strided view sweeps and under
     every registered daemon; the toy-badsym fixture's lying IR and the
     toy-badrank fixture's stuttering rank claim must both be caught.
   - printer/parser: Smt.to_string ∘ Smt.parse_string is the identity on
     the command list (modulo formatting), on every compiled obligation.
   - obligations: every compiled obligation (base families plus the
     comp.* composition family) for every spec × topology family must
     lint clean — no free symbols, no dead declarations, a check-sat —
     and the inventory must cover the acceptance floor (closure,
     climb-debt decrease, ≥ 3 §3.5 requirements, ranking and composition
     obligations on the ring; ≥ 100 obligations in total).
   - solving (skipped unless z3 is on PATH): the tail-unison climb-debt
     decrease, the tail-unison rank-decrease.TU-climb ranking obligation
     and the unison-sdr comp.rank-decrease.SDR-RF composition obligation
     on the ring must all come back unsat. *)

open Helpers
module Sym = Ssreset_check.Sym
module Smt = Ssreset_check.Smt
module Obligation = Ssreset_check.Obligation
module Registry = Ssreset_check.Registry
module Report = Ssreset_check.Report
module Toy = Ssreset_check.Toy

let entry name =
  match
    List.find_opt
      (fun (e : Registry.entry) -> e.Registry.name = name)
      (Registry.entries @ Registry.fixtures)
  with
  | Some e -> e
  | None -> Alcotest.failf "no registry entry %S" name

let sym_entries () =
  List.filter
    (fun (e : Registry.entry) -> e.Registry.sym <> None)
    Registry.entries

let spec_entries () =
  List.filter
    (fun (e : Registry.entry) ->
      e.Registry.smt_spec <> None || e.Registry.comp_spec <> None)
    (Registry.entries @ Registry.fixtures)

(* ----------------------------- differential ----------------------------- *)

let differential_tests =
  [ test "every registry IR agrees with its OCaml rules (all graphs n<=5)"
      (fun () ->
        let es = sym_entries () in
        check_true "all seven registry entries carry an IR"
          (List.length es >= 7);
        List.iter
          (fun (e : Registry.entry) ->
            let mk = Option.get e.Registry.sym in
            for n = e.Registry.min_n to 5 do
              List.iter
                (fun g ->
                  let d = Sym.check ~max_views_per_process:500 (mk g) in
                  if not (Sym.diff_ok d) then
                    Alcotest.failf "%s (n=%d): %a" e.Registry.name n
                      Fmt.(list ~sep:(any "; ") Sym.pp_mismatch)
                      d.Sym.mismatches;
                  check_true "probed views" (d.Sym.views > 0);
                  check_true "drove every daemon"
                    (d.Sym.daemons = List.length (Daemon.registry ())))
                (Gen.all_connected n)
            done)
          es) ]

let fixture_tests =
  [ test "toy-badsym: the lying IR is caught by the differential" (fun () ->
        let d = Sym.check (Toy.badsym_sym (Gen.path 2)) in
        check_false "mismatch found" (Sym.diff_ok d);
        check_true "a guard mismatch names T-up"
          (List.exists
             (fun (m : Sym.mismatch) -> List.mem "T-up" m.Sym.rules)
             d.Sym.mismatches));
    test "toy-badsym fails Registry.run but only via the sym pass" (fun () ->
        let r = Registry.run ~mode:`Quick (entry "toy-badsym") in
        check_false "entry not ok" (Report.entry_ok r);
        check_true "lint clean" (r.Report.lint = []);
        check_true "model clean"
          (List.for_all
             (fun (m : Report.model_item) ->
               m.Report.result.Ssreset_check.Model.violations = [])
             r.Report.models);
        match r.Report.sym with
        | None -> Alcotest.fail "sym pass did not run"
        | Some d -> check_false "sym dirty" (Sym.diff_ok d));
    test "toy-badrank: the stuttering rank claim is caught" (fun () ->
        let d = Sym.check (Toy.badrank_sym (Gen.path 2)) in
        check_false "mismatch found" (Sym.diff_ok d);
        check_true "a rank mismatch is reported"
          (List.exists
             (fun (m : Sym.mismatch) -> m.Sym.where = "rank")
             d.Sym.mismatches));
    test "toy-badrank fails Registry.run only via the rank differential"
      (fun () ->
        let r = Registry.run ~mode:`Quick (entry "toy-badrank") in
        check_false "entry not ok" (Report.entry_ok r);
        check_true "lint clean" (r.Report.lint = []);
        check_true "model clean"
          (List.for_all
             (fun (m : Report.model_item) ->
               m.Report.result.Ssreset_check.Model.violations = [])
             r.Report.models);
        match r.Report.sym with
        | None -> Alcotest.fail "sym pass did not run"
        | Some d ->
            check_false "sym dirty" (Sym.diff_ok d);
            check_true "every mismatch is a rank mismatch"
              (List.for_all
                 (fun (m : Sym.mismatch) -> m.Sym.where = "rank")
                 d.Sym.mismatches));
    test "well_formed rejects scoping errors" (fun () ->
        let ir =
          { Sym.ir_name = "bad";
            fields = [ ("c", Sym.TInt) ];
            params = [];
            ranges = [];
            rules =
              [ { Sym.rule = "R";
                  guard = Sym.Lt (Sym.Var (Sym.Nbr, "c"), Sym.Num 0);
                  assigns = [ ("d", Sym.Num 0) ] } ] }
        in
        let findings = Sym.well_formed ir in
        check_true "Nbr outside a quantifier flagged"
          (List.exists (fun f -> Astring_like.contains f "Nbr") findings);
        check_true "unknown assign target flagged"
          (List.exists (fun f -> Astring_like.contains f "d") findings)) ]

(* --------------------------- printer / parser --------------------------- *)

let all_obligations () =
  List.concat_map
    (fun (e : Registry.entry) ->
      (match e.Registry.smt_spec with
      | Some s -> Obligation.compile_all ~algo:e.Registry.name s
      | None -> [])
      @
      match e.Registry.comp_spec with
      | Some s -> Obligation.compile_composition_all ~algo:e.Registry.name s
      | None -> [])
    (spec_entries ())

let roundtrip_tests =
  [ test "print/parse round-trip is the identity on every obligation"
      (fun () ->
        let obs = all_obligations () in
        check_true "at least 100 obligations" (List.length obs >= 100);
        List.iter
          (fun (ob : Obligation.t) ->
            let printed = Smt.to_string ob.Obligation.ob_script in
            match Smt.parse_string printed with
            | Error msg ->
                Alcotest.failf "%s: re-parse failed: %s"
                  (Obligation.filename ob) msg
            | Ok cmds ->
                check_int
                  (Obligation.filename ob ^ ": command count")
                  (List.length ob.Obligation.ob_script.Smt.body)
                  (List.length cmds);
                (* second print must be byte-identical: the parse kept
                   every atom (incl. string/quoted delimiters) intact *)
                let reprinted =
                  Smt.to_string { Smt.header = []; body = cmds }
                in
                let stripped =
                  String.concat "\n"
                    (List.filter
                       (fun l ->
                         String.length l = 0 || l.[0] <> ';')
                       (String.split_on_char '\n' printed))
                in
                check Alcotest.string
                  (Obligation.filename ob ^ ": idempotent print")
                  stripped reprinted)
          obs);
    test "parser reports malformed input with a line number" (fun () ->
        (match Smt.parse_string "(assert (= a" with
        | Error msg ->
            check_true "mentions a line" (Astring_like.contains msg "1")
        | Ok _ -> Alcotest.fail "unbalanced parens accepted");
        match Smt.parse_string "(assert x))" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "stray close paren accepted") ]

(* ------------------------------ obligations ----------------------------- *)

let obligation_tests =
  [ test "every obligation lints clean (no free vars, no dead decls)"
      (fun () ->
        List.iter
          (fun (ob : Obligation.t) ->
            match Smt.lint_script ob.Obligation.ob_script.Smt.body with
            | [] -> ()
            | findings ->
                Alcotest.failf "%s: %s" (Obligation.filename ob)
                  (String.concat "; " findings))
          (all_obligations ()));
    test "inventory covers the acceptance floor on the ring" (fun () ->
        let ring_obs name =
          Obligation.compile ~algo:name
            (Option.get (entry name).Registry.smt_spec)
            Obligation.Ring
        in
        let kinds obs = List.map (fun ob -> ob.Obligation.ob_kind) obs in
        let tail = kinds (ring_obs "tail-unison") in
        check_true "tail-unison ring closure"
          (List.mem Obligation.Closure tail);
        check_true "tail-unison ring climb-debt decrease"
          (List.exists
             (function Obligation.Cert_decrease _ -> true | _ -> false)
             tail);
        let uni = kinds (ring_obs "unison-sdr") in
        check_true "unison-sdr ring closure" (List.mem Obligation.Closure uni);
        check_true ">=3 requirement obligations"
          (List.length
             (List.filter
                (function Obligation.Requirement _ -> true | _ -> false)
                uni)
          >= 3);
        check_true "tail-unison ring carries ranking obligations"
          (List.mem (Obligation.Rank "rank-decrease.TU-climb") tail
          && List.mem (Obligation.Rank "rank-bounded") tail
          && List.mem (Obligation.Rank "rank-step") tail);
        let comp =
          kinds
            (Obligation.compile_composition ~algo:"unison-sdr"
               (Option.get (entry "unison-sdr").Registry.comp_spec)
               Obligation.Ring)
        in
        check_true "unison-sdr ring carries composition obligations"
          (List.mem (Obligation.Composition "rank-decrease.SDR-RF") comp
          && List.mem (Obligation.Composition "rank-bounded") comp));
    test "filenames are unique across the full inventory" (fun () ->
        let names = List.map Obligation.filename (all_obligations ()) in
        check_int "no duplicates"
          (List.length names)
          (List.length (List.sort_uniq String.compare names)));
    test "manifest JSON round-trips through the Json reader" (fun () ->
        let obs = all_obligations () in
        let json = Ssreset_obs.Json.to_string (Obligation.to_json obs) in
        match Ssreset_obs.Json.of_string json with
        | Error msg -> Alcotest.failf "manifest re-parse: %s" msg
        | Ok j ->
            check_int "count field"
              (List.length obs)
              (Option.get
                 (Option.bind
                    (Ssreset_obs.Json.member "count" j)
                    Ssreset_obs.Json.to_int_opt))) ]

(* ------------------------------- solving -------------------------------- *)

let solver_tests =
  let solver = "z3" in
  if not (Smt.solver_available solver) then
    [ test "z3 not on PATH — end-to-end solving skipped" (fun () -> ()) ]
  else
    [ test "climb-debt decrease on the ring is unsat under z3" (fun () ->
          let obs =
            List.filter
              (fun ob ->
                match ob.Obligation.ob_kind with
                | Obligation.Cert_decrease _ -> true
                | _ -> false)
              (Obligation.compile ~algo:"tail-unison"
                 (Option.get (entry "tail-unison").Registry.smt_spec)
                 Obligation.Ring)
          in
          check_true "at least one decrease obligation" (obs <> []);
          List.iter
            (fun ob ->
              let path =
                Filename.temp_file "ssreset-test" ".smt2"
              in
              Smt.write_file path ob.Obligation.ob_script;
              let verdict = Smt.solve ~solver path in
              Sys.remove path;
              check Alcotest.string
                (Obligation.filename ob)
                "unsat"
                (Smt.verdict_to_string verdict))
            obs);
      test "ranking + composition obligations on the ring are unsat under z3"
        (fun () ->
          let solve_one ob =
            let path = Filename.temp_file "ssreset-test" ".smt2" in
            Smt.write_file path ob.Obligation.ob_script;
            let verdict = Smt.solve ~solver path in
            Sys.remove path;
            check Alcotest.string
              (Obligation.filename ob)
              "unsat"
              (Smt.verdict_to_string verdict)
          in
          let rank_ob =
            List.find
              (fun ob ->
                ob.Obligation.ob_kind
                = Obligation.Rank "rank-decrease.TU-climb")
              (Obligation.compile ~algo:"tail-unison"
                 (Option.get (entry "tail-unison").Registry.smt_spec)
                 Obligation.Ring)
          in
          solve_one rank_ob;
          let comp_ob =
            List.find
              (fun ob ->
                ob.Obligation.ob_kind
                = Obligation.Composition "rank-decrease.SDR-RF")
              (Obligation.compile_composition ~algo:"unison-sdr"
                 (Option.get (entry "unison-sdr").Registry.comp_spec)
                 Obligation.Ring)
          in
          solve_one comp_ob) ]

let () =
  Alcotest.run "smt"
    [ ("differential", differential_tests);
      ("fixtures", fixture_tests);
      ("roundtrip", roundtrip_tests);
      ("obligations", obligation_tests);
      ("solver", solver_tests) ]

open Helpers
module Algorithm = Ssreset_sim.Algorithm
module Finite = Ssreset_check.Finite
module Lint = Ssreset_check.Lint
module Model = Ssreset_check.Model
module Registry = Ssreset_check.Registry
module Report = Ssreset_check.Report
module Toy = Ssreset_check.Toy

(* ---------------------------- graph enumeration ------------------------- *)

let enumeration_tests =
  [ test "all_connected counts one representative per isomorphism class"
      (fun () ->
        List.iter
          (fun (n, expected) ->
            let gs = Gen.all_connected n in
            check_int (Fmt.str "count n=%d" n) expected (List.length gs);
            List.iter
              (fun g ->
                check_int "order" n (Graph.n g);
                check_true "connected" (Graph.is_connected g))
              gs)
          [ (1, 1); (2, 1); (3, 2); (4, 6); (5, 21) ]) ]

(* ------------------------------ lint pass ------------------------------- *)

(* An order-sensitive rule: the action copies the state of the *first*
   neighbor in the local array — meaningless in an anonymous network. *)
let order_sensitive g =
  let copy_first =
    { Algorithm.rule_name = "copy-first";
      guard =
        (fun (v : int Algorithm.view) ->
          Array.length v.Algorithm.nbrs > 0
          && v.Algorithm.nbrs.(0) <> v.Algorithm.state);
      action = (fun v -> v.Algorithm.nbrs.(0)) }
  in
  Finite.make ~name:"order-sensitive"
    ~algorithm:
      { Algorithm.name = "order-sensitive";
        rules = [ copy_first ];
        equal = Int.equal;
        pp = Fmt.int }
    ~graph:g
    ~domain:(fun _ -> [ 0; 1 ])
    ~legitimate:(fun _ cfg ->
      Array.for_all (fun s -> s = cfg.(0)) cfg)
    ()

let lint_tests =
  [ test "permutation lint flags neighbor-order dependence" (fun () ->
        let findings = Lint.run (order_sensitive (Gen.path 3)) in
        check_true "flagged"
          (List.exists
             (fun (f : Lint.finding) ->
               f.Lint.lint = "permutation"
               && List.mem "copy-first" f.Lint.rules)
             findings));
    test "overlap and silent-move lints flag the toy-overlap fixture"
      (fun () ->
        let findings = Lint.run (Toy.overlap (Gen.path 2)) in
        let lints = List.map (fun (f : Lint.finding) -> f.Lint.lint) findings in
        check_true "overlap" (List.mem "overlap" lints);
        check_true "silent-move" (List.mem "silent-move" lints));
    test "every paper algorithm lints clean (registry parity)" (fun () ->
        List.iter
          (fun (e : Registry.entry) ->
            List.iter
              (fun g ->
                let findings = Lint.run (e.Registry.instance g) in
                if findings <> [] then
                  Alcotest.failf "%s on n=%d: %a" e.Registry.name (Graph.n g)
                    Fmt.(list ~sep:(any "; ") Lint.pp_finding)
                    findings)
              (Gen.all_connected
                 (max e.Registry.min_n (min 3 e.Registry.max_n_quick))))
          Registry.entries) ]

(* ---------------------------- model checker ----------------------------- *)

(* Rules that walk straight out of the legitimate set and stop in an
   illegitimate terminal configuration: closure and dead-end violations. *)
let escaping g =
  let escape =
    { Algorithm.rule_name = "escape";
      guard = (fun (v : int Algorithm.view) -> v.Algorithm.state = 0);
      action = (fun _ -> 1) }
  in
  Finite.make ~name:"escaping"
    ~algorithm:
      { Algorithm.name = "escaping";
        rules = [ escape ];
        equal = Int.equal;
        pp = Fmt.int }
    ~graph:g
    ~domain:(fun _ -> [ 0; 1 ])
    ~legitimate:(fun _ cfg -> Array.for_all (fun s -> s = 0) cfg)
    ()

let properties (r : Model.t) =
  List.map (fun (v : Model.violation) -> v.Model.property) r.Model.violations

let model_tests =
  [ test "toy-livelock: the illegitimate cycle is found (no false negative)"
      (fun () ->
        let r = Model.check (Toy.livelock (Gen.ring 3)) in
        check_true "livelock" (List.mem "livelock" (properties r));
        check_true "no abort" (r.Model.aborted = None));
    test "toy-overlap: model-level violations are found" (fun () ->
        let r = Model.check (Toy.overlap (Gen.path 2)) in
        check_true "dirty" (r.Model.violations <> []));
    test "closure and dead-end violations are distinguished" (fun () ->
        let r = Model.check (escaping (Gen.path 2)) in
        let ps = properties r in
        check_true "closure" (List.mem "closure" ps);
        check_true "dead-end" (List.mem "dead-end" ps));
    test "exact worst case matches the paper bound on the single process"
      (fun () ->
        (* unison-sdr on n=1: worst recovery is exactly 3 moves and 3
           rounds (RB, RF, C), meeting the 3n bound with equality. *)
        let e =
          List.find (fun e -> e.Registry.name = "unison-sdr") Registry.entries
        in
        let g = List.hd (Gen.all_connected 1) in
        let r = Model.check (e.Registry.instance g) in
        check_true "clean" (r.Model.violations = []);
        check (Alcotest.option Alcotest.int) "moves" (Some 3)
          r.Model.worst_moves;
        check (Alcotest.option Alcotest.int) "rounds" (Some 3)
          r.Model.worst_rounds);
    test "min-unison has no livelock on any connected graph up to n = 4"
      (fun () ->
        (* regression: the first reconstruction (in-ring reset to 0)
           livelocked on C4 — a clock at 2 and its reset chased each other
           around the hole.  The corrected tail reconstruction must verify
           clean on every connected graph up to n = 4. *)
        let e =
          List.find (fun e -> e.Registry.name = "min-unison") Registry.entries
        in
        for n = 1 to 4 do
          List.iter
            (fun g ->
              let r = Model.check (e.Registry.instance g) in
              check_true
                (Fmt.str "no abort n=%d m=%d" n (Graph.m g))
                (r.Model.aborted = None);
              if r.Model.violations <> [] then
                Alcotest.failf "n=%d m=%d: %s" n (Graph.m g)
                  (String.concat "; " (properties r)))
            (Gen.all_connected n)
        done) ]

(* ------------------------------- registry ------------------------------- *)

let registry_tests =
  [ test "find matches case-insensitive substrings" (fun () ->
        check_int "unison" 3 (List.length (Registry.find "UNISON"));
        check_int "toy" 2 (List.length (Registry.find "toy"));
        check_int "none" 0 (List.length (Registry.find "zzz")));
    test "fixtures are reported dirty, entries clean (quick mode)" (fun () ->
        List.iter
          (fun e ->
            let r = Registry.run ~mode:`Quick e in
            check_false
              (Fmt.str "%s dirty" e.Registry.name)
              (Report.entry_ok r))
          Registry.fixtures;
        let e = List.hd Registry.entries in
        check_true "first entry clean"
          (Report.entry_ok (Registry.run ~mode:`Quick ~max_n:3 e))) ]

let () =
  Alcotest.run "check"
    [ ("enumeration", enumeration_tests);
      ("lint", lint_tests);
      ("model", model_tests);
      ("registry", registry_tests) ]

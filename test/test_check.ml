open Helpers
module Algorithm = Ssreset_sim.Algorithm
module Cert = Ssreset_check.Cert
module Finite = Ssreset_check.Finite
module Footprint = Ssreset_check.Footprint
module Lint = Ssreset_check.Lint
module Model = Ssreset_check.Model
module Registry = Ssreset_check.Registry
module Report = Ssreset_check.Report
module Symmetry = Ssreset_check.Symmetry
module Toy = Ssreset_check.Toy

(* ---------------------------- graph enumeration ------------------------- *)

let enumeration_tests =
  [ test "all_connected counts one representative per isomorphism class"
      (fun () ->
        List.iter
          (fun (n, expected) ->
            let gs = Gen.all_connected n in
            check_int (Fmt.str "count n=%d" n) expected (List.length gs);
            List.iter
              (fun g ->
                check_int "order" n (Graph.n g);
                check_true "connected" (Graph.is_connected g))
              gs)
          [ (1, 1); (2, 1); (3, 2); (4, 6); (5, 21) ]) ]

(* ------------------------------ lint pass ------------------------------- *)

(* An order-sensitive rule: the action copies the state of the *first*
   neighbor in the local array — meaningless in an anonymous network. *)
let order_sensitive g =
  let copy_first =
    { Algorithm.rule_name = "copy-first";
      guard =
        (fun (v : int Algorithm.view) ->
          Array.length v.Algorithm.nbrs > 0
          && v.Algorithm.nbrs.(0) <> v.Algorithm.state);
      action = (fun v -> v.Algorithm.nbrs.(0)) }
  in
  Finite.make ~name:"order-sensitive"
    ~algorithm:
      { Algorithm.name = "order-sensitive";
        rules = [ copy_first ];
        equal = Int.equal;
        pp = Fmt.int }
    ~graph:g
    ~domain:(fun _ -> [ 0; 1 ])
    ~legitimate:(fun _ cfg ->
      Array.for_all (fun s -> s = cfg.(0)) cfg)
    ()

let lint_tests =
  [ test "permutation lint flags neighbor-order dependence" (fun () ->
        let findings = Lint.run (order_sensitive (Gen.path 3)) in
        check_true "flagged"
          (List.exists
             (fun (f : Lint.finding) ->
               f.Lint.lint = "permutation"
               && List.mem "copy-first" f.Lint.rules)
             findings));
    test "overlap and silent-move lints flag the toy-overlap fixture"
      (fun () ->
        let findings = Lint.run (Toy.overlap (Gen.path 2)) in
        let lints = List.map (fun (f : Lint.finding) -> f.Lint.lint) findings in
        check_true "overlap" (List.mem "overlap" lints);
        check_true "silent-move" (List.mem "silent-move" lints));
    test "every paper algorithm lints clean (registry parity)" (fun () ->
        List.iter
          (fun (e : Registry.entry) ->
            List.iter
              (fun g ->
                let findings = Lint.run (e.Registry.instance g) in
                if findings <> [] then
                  Alcotest.failf "%s on n=%d: %a" e.Registry.name (Graph.n g)
                    Fmt.(list ~sep:(any "; ") Lint.pp_finding)
                    findings)
              (Gen.all_connected
                 (max e.Registry.min_n (min 3 e.Registry.max_n_quick))))
          Registry.entries) ]

(* ---------------------------- model checker ----------------------------- *)

(* Rules that walk straight out of the legitimate set and stop in an
   illegitimate terminal configuration: closure and dead-end violations. *)
let escaping g =
  let escape =
    { Algorithm.rule_name = "escape";
      guard = (fun (v : int Algorithm.view) -> v.Algorithm.state = 0);
      action = (fun _ -> 1) }
  in
  Finite.make ~name:"escaping"
    ~algorithm:
      { Algorithm.name = "escaping";
        rules = [ escape ];
        equal = Int.equal;
        pp = Fmt.int }
    ~graph:g
    ~domain:(fun _ -> [ 0; 1 ])
    ~legitimate:(fun _ cfg -> Array.for_all (fun s -> s = 0) cfg)
    ()

let properties (r : Model.t) =
  List.map (fun (v : Model.violation) -> v.Model.property) r.Model.violations

let model_tests =
  [ test "toy-livelock: the illegitimate cycle is found (no false negative)"
      (fun () ->
        let r = Model.check (Toy.livelock (Gen.ring 3)) in
        check_true "livelock" (List.mem "livelock" (properties r));
        check_true "no abort" (r.Model.aborted = None));
    test "toy-overlap: model-level violations are found" (fun () ->
        let r = Model.check (Toy.overlap (Gen.path 2)) in
        check_true "dirty" (r.Model.violations <> []));
    test "closure and dead-end violations are distinguished" (fun () ->
        let r = Model.check (escaping (Gen.path 2)) in
        let ps = properties r in
        check_true "closure" (List.mem "closure" ps);
        check_true "dead-end" (List.mem "dead-end" ps));
    test "exact worst case matches the paper bound on the single process"
      (fun () ->
        (* unison-sdr on n=1: worst recovery is exactly 3 moves and 3
           rounds (RB, RF, C), meeting the 3n bound with equality. *)
        let e =
          List.find (fun e -> e.Registry.name = "unison-sdr") Registry.entries
        in
        let g = List.hd (Gen.all_connected 1) in
        let r = Model.check (e.Registry.instance g) in
        check_true "clean" (r.Model.violations = []);
        check (Alcotest.option Alcotest.int) "moves" (Some 3)
          r.Model.worst_moves;
        check (Alcotest.option Alcotest.int) "rounds" (Some 3)
          r.Model.worst_rounds);
    test "min-unison has no livelock on any connected graph up to n = 4"
      (fun () ->
        (* regression: the first reconstruction (in-ring reset to 0)
           livelocked on C4 — a clock at 2 and its reset chased each other
           around the hole.  The corrected tail reconstruction must verify
           clean on every connected graph up to n = 4. *)
        let e =
          List.find (fun e -> e.Registry.name = "min-unison") Registry.entries
        in
        for n = 1 to 4 do
          List.iter
            (fun g ->
              let r = Model.check (e.Registry.instance g) in
              check_true
                (Fmt.str "no abort n=%d m=%d" n (Graph.m g))
                (r.Model.aborted = None);
              if r.Model.violations <> [] then
                Alcotest.failf "n=%d m=%d: %s" n (Graph.m g)
                  (String.concat "; " (properties r)))
            (Gen.all_connected n)
        done) ]

(* ------------------------------ symmetry -------------------------------- *)

let sorted_props r = List.sort compare (properties r)

(* The reduction must be invisible: same verdicts, same exact worst cases. *)
let check_reduction_parity name inst =
  let base = Model.check inst in
  let red =
    Model.check ~options:{ Model.default_options with symmetry = true } inst
  in
  check Alcotest.(list string) (name ^ " violations") (sorted_props base)
    (sorted_props red);
  check
    Alcotest.(option string)
    (name ^ " aborted") base.Model.aborted red.Model.aborted;
  check
    Alcotest.(option int)
    (name ^ " worst moves") base.Model.worst_moves red.Model.worst_moves;
  check
    Alcotest.(option int)
    (name ^ " worst rounds") base.Model.worst_rounds red.Model.worst_rounds

let entry name = List.find (fun e -> e.Registry.name = name) Registry.entries

let symmetry_tests =
  [ test "automorphism groups of the small zoo" (fun () ->
        List.iter
          (fun (name, g, expected) ->
            check_int name expected (Symmetry.order (Symmetry.of_graph g)))
          [ ("path3", Gen.path 3, 2);
            ("ring4", Gen.ring 4, 8);
            ("K4", Gen.complete 4, 24);
            ("star4", Gen.star 4, 6);
            ("ring5", Gen.ring 5, 10) ]);
    test "canonicalize picks one representative per orbit" (fun () ->
        let sym = Symmetry.of_graph (Gen.ring 4) in
        let rng = rng 42 in
        for _ = 1 to 100 do
          let cfg = Array.init 4 (fun _ -> Random.State.int rng 3) in
          let canon = Symmetry.canonicalize sym cfg in
          Array.iter
            (fun p ->
              let permuted = Array.init 4 (fun i -> cfg.(p.(i))) in
              check
                Alcotest.(array int)
                "orbit-invariant" canon
                (Symmetry.canonicalize sym permuted))
            (Symmetry.auts sym);
          (* the canonical form is itself a member of the orbit *)
          check_true "in orbit"
            (Array.exists
               (fun p -> Array.init 4 (fun i -> cfg.(p.(i))) = canon)
               (Symmetry.auts sym))
        done);
    test "iter_canonical agrees with canonicalizing the full product"
      (fun () ->
        let sym = Symmetry.of_graph (Gen.ring 4) in
        let seen = Hashtbl.create 64 in
        Symmetry.iter_canonical sym ~arity:3 (fun digits ->
            Hashtbl.replace seen (Array.to_list digits) ());
        let expected = Hashtbl.create 64 in
        for code = 0 to (3 * 3 * 3 * 3) - 1 do
          let cfg = Array.make 4 0 in
          let c = ref code in
          for i = 0 to 3 do
            cfg.(i) <- !c mod 3;
            c := !c / 3
          done;
          Hashtbl.replace expected
            (Array.to_list (Symmetry.canonicalize sym cfg))
            ()
        done;
        check_int "orbit count" (Hashtbl.length expected) (Hashtbl.length seen);
        Hashtbl.iter
          (fun k () -> check_true "canonical" (Hashtbl.mem expected k))
          seen);
    test "reduced verdicts and worst cases match the unreduced checker"
      (fun () ->
        for n = 1 to 3 do
          List.iter
            (fun g ->
              let tag e = Fmt.str "%s n=%d m=%d" e n (Graph.m g) in
              check_reduction_parity (tag "tail-unison")
                ((entry "tail-unison").Registry.instance g);
              check_reduction_parity (tag "min-unison")
                ((entry "min-unison").Registry.instance g))
            (Gen.all_connected n)
        done;
        check_reduction_parity "unison-sdr n=2"
          ((entry "unison-sdr").Registry.instance (Gen.path 2));
        check_reduction_parity "toy-livelock ring3"
          (Toy.livelock (Gen.ring 3)));
    test "orbit counts: tail-unison on K3 explores C(13,3) = 286 seeds"
      (fun () ->
        let r =
          Model.check
            ~options:{ Model.default_options with symmetry = true }
            ((entry "tail-unison").Registry.instance (Gen.complete 3))
        in
        check_int "configs" 286 r.Model.stats.Model.configs;
        check
          Alcotest.(option int)
          "automorphisms" (Some 6) r.Model.automorphisms);
    test "symmetry-reduced checking reproduces the C5 tail-unison livelock"
      (fun () ->
        (* Discovered by this pass: the homegrown tail-reset unison
           livelocks on the 5-cycle (a reset wave chases a clock at 2
           around the odd hole forever) — beyond the old exhaustive
           envelope (n <= 4).  Reduction makes the 17^5-configuration
           space fit the budget as 144,449 orbits; pin the verdict. *)
        let r =
          Model.check
            ~options:{ Model.default_options with symmetry = true }
            ((entry "tail-unison").Registry.instance (Gen.ring 5))
        in
        check_true "no abort" (r.Model.aborted = None);
        check_true "livelock" (List.mem "livelock" (properties r))) ]

(* ----------------------------- certificates ----------------------------- *)

let cert_tests =
  [ test "lex_lt is a strict lexicographic order" (fun () ->
        check_true "lt" (Cert.lex_lt [ 1; 9 ] [ 2; 0 ]);
        check_true "tie then lt" (Cert.lex_lt [ 2; 1 ] [ 2; 3 ]);
        check_false "eq" (Cert.lex_lt [ 2; 3 ] [ 2; 3 ]);
        check_false "gt" (Cert.lex_lt [ 3; 0 ] [ 2; 9 ]);
        (* length mismatch is never "less": it must surface as a
           violation rather than vacuously pass *)
        check_false "short" (Cert.lex_lt [ 1 ] [ 2; 3 ]);
        check_false "empty" (Cert.lex_lt [] [ 1 ]));
    test "toy-badcert: the bogus increasing potential is flagged" (fun () ->
        let r = Model.check (Toy.badcert (Gen.path 2)) in
        check
          Alcotest.(option string)
          "name" (Some "bogus-up") r.Model.certificate;
        check_true "violation" (List.mem "certificate" (properties r)));
    test "climb-debt certificate verifies on tail-unison" (fun () ->
        let r =
          Model.check ((entry "tail-unison").Registry.instance (Gen.path 2))
        in
        check
          Alcotest.(option string)
          "name" (Some "climb-debt") r.Model.certificate;
        check_true "clean" (r.Model.violations = []));
    test "certs:false disables the pass" (fun () ->
        let r =
          Model.check
            ~options:{ Model.default_options with certs = false }
            (Toy.badcert (Gen.path 2))
        in
        check Alcotest.(option string) "off" None r.Model.certificate;
        check_false "no certificate violation"
          (List.mem "certificate" (properties r))) ]

(* ------------------------------ footprint ------------------------------- *)

let footprint_tests =
  [ test "monolithic footprint of tail-unison reads self and neighbors"
      (fun () ->
        let fp =
          Footprint.analyze
            (Footprint.of_finite
               ((entry "tail-unison").Registry.instance (Gen.path 2)))
        in
        check_true "clean" (fp.Footprint.findings = []);
        check_false "not composed" fp.Footprint.composed;
        let tick =
          List.find
            (fun (r : Footprint.rule_footprint) ->
              r.Footprint.rule = Ssreset_unison.Tail_unison.rule_tick)
            fp.Footprint.rules
        in
        check
          Alcotest.(list string)
          "guard self" [ "state" ] tick.Footprint.guard_self;
        check
          Alcotest.(list string)
          "guard nbrs" [ "state" ] tick.Footprint.guard_nbrs;
        check
          Alcotest.(list string)
          "writes" [ "state" ] tick.Footprint.writes);
    test "composed unison-sdr passes every non-interference check" (fun () ->
        let fp =
          Footprint.analyze (Registry.footprint_target (entry "unison-sdr")
                               (Gen.path 2))
        in
        check_true "composed" fp.Footprint.composed;
        if fp.Footprint.findings <> [] then
          Alcotest.failf "findings: %a"
            Fmt.(list ~sep:(any "; ") Footprint.pp_finding)
            fp.Footprint.findings);
    test "toy-interference: the input-layer write to d is caught" (fun () ->
        let fp =
          Footprint.analyze (Toy.interference_footprint (Gen.path 2))
        in
        check_true "write-escape"
          (List.exists
             (fun (f : Footprint.finding) ->
               f.Footprint.check = "write-escape"
               && List.mem "TI-poke" f.Footprint.rules)
             fp.Footprint.findings));
    test "merge accumulates views and unions findings" (fun () ->
        let t g = Toy.interference_footprint g in
        let a = Footprint.analyze (t (Gen.path 2))
        and b = Footprint.analyze (t (Gen.path 3)) in
        let m = Footprint.merge [ a; b ] in
        check_int "views" (a.Footprint.views + b.Footprint.views)
          m.Footprint.views;
        check_true "findings survive" (m.Footprint.findings <> []));
    test "recorded footprints survive randomized differential probing"
      (fun () ->
        (* Soundness: at n = 2 the analyzer covers the whole view space,
           so no random probe may exhibit a read outside the recorded
           footprint — for all seven paper algorithms, composed targets
           included. *)
        List.iter
          (fun (e : Registry.entry) ->
            let n = max 2 e.Registry.min_n in
            let g = Gen.path n in
            let target = Registry.footprint_target e g in
            let fp =
              Footprint.analyze ~max_views_per_process:200_000 target
            in
            List.iter
              (fun seed ->
                match Footprint.differential ~trials:200 ~seed target fp with
                | None -> ()
                | Some d ->
                    Alcotest.failf "%s (seed %d): %s" e.Registry.name seed d)
              [ 1; 7; 23 ])
          Registry.entries) ]

(* ------------------------------- registry ------------------------------- *)

let registry_tests =
  [ test "find matches case-insensitive substrings" (fun () ->
        check_int "unison" 3 (List.length (Registry.find "UNISON"));
        check_int "toy" 6 (List.length (Registry.find "toy"));
        check_int "none" 0 (List.length (Registry.find "zzz")));
    test "fixtures are reported dirty, entries clean (quick mode)" (fun () ->
        List.iter
          (fun e ->
            let r = Registry.run ~mode:`Quick e in
            check_false
              (Fmt.str "%s dirty" e.Registry.name)
              (Report.entry_ok r))
          Registry.fixtures;
        let e = List.hd Registry.entries in
        check_true "first entry clean"
          (Report.entry_ok (Registry.run ~mode:`Quick ~max_n:3 e)));
    test "footprint:false skips the pass; graphs restricts the sweep"
      (fun () ->
        let e = entry "tail-unison" in
        let r =
          Registry.run ~mode:`Quick ~max_n:3 ~footprint:false
            ~graphs:(fun n -> [ Gen.complete n ])
            e
        in
        check_true "no footprint" (r.Report.footprint = None);
        check_int "one graph per size" 3 (List.length r.Report.models)) ]

let () =
  Alcotest.run "check"
    [ ("enumeration", enumeration_tests);
      ("lint", lint_tests);
      ("model", model_tests);
      ("symmetry", symmetry_tests);
      ("cert", cert_tests);
      ("footprint", footprint_tests);
      ("registry", registry_tests) ]

open Helpers
module Graph = Ssreset_graph.Graph
module Daemon = Ssreset_sim.Daemon
module Table = Ssreset_expt.Table
module Workload = Ssreset_expt.Workload
module Runner = Ssreset_expt.Runner
module Experiments = Ssreset_expt.Experiments
module Spec = Ssreset_alliance.Spec

(* -------------------------------- Table -------------------------------- *)

let table_tests =
  [ test "make validates row widths" (fun () ->
        check_true "raises"
          (match
             Table.make ~title:"t" ~headers:[ "a"; "b" ] [ [ "only-one" ] ]
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "render aligns columns and includes notes" (fun () ->
        let t =
          Table.make ~title:"demo" ~headers:[ "col"; "value" ]
            ~notes:[ "a note" ]
            [ [ "x"; "1" ]; [ "longer"; "22" ] ]
        in
        let s = Table.render t in
        check_true "title" (Astring_like.contains s "demo");
        check_true "note" (Astring_like.contains s "note: a note");
        check_true "header" (Astring_like.contains s "col");
        check_true "padding" (Astring_like.contains s "x     "));
    test "cells and all_ok" (fun () ->
        check Alcotest.string "int" "42" (Table.cell_int 42);
        check Alcotest.string "float" "1.50" (Table.cell_float 1.5);
        check Alcotest.string "ok" "ok" (Table.cell_bool true);
        check Alcotest.string "fail" "FAIL" (Table.cell_bool false);
        let t =
          Table.make ~title:"t" ~headers:[ "a"; "ok" ]
            [ [ "x"; "ok" ]; [ "y"; "ok" ] ]
        in
        check_true "all ok" (Table.all_ok t ~col:1);
        let t2 =
          Table.make ~title:"t" ~headers:[ "a"; "ok" ]
            [ [ "x"; "ok" ]; [ "y"; "FAIL" ] ]
        in
        check_false "not all ok" (Table.all_ok t2 ~col:1));
    test "to_csv quotes the awkward cells" (fun () ->
        let t =
          Table.make ~title:"csv" ~headers:[ "name"; "value" ]
            ~notes:[ "notes are not data" ]
            [ [ "plain"; "1" ];
              [ "comma,here"; "2" ];
              [ "quote\"here"; "3" ];
              [ "line\nbreak"; "4" ] ]
        in
        let csv = Table.to_csv t in
        check Alcotest.string "csv"
          "name,value\nplain,1\n\"comma,here\",2\n\"quote\"\"here\",3\n\"line\nbreak\",4\n"
          csv);
    test "to_json round-trips through the parser" (fun () ->
        let module Json = Ssreset_obs.Json in
        let t =
          Table.make ~title:"json" ~headers:[ "a"; "b" ] ~notes:[ "n1" ]
            [ [ "x"; "1" ]; [ "y"; "2" ] ]
        in
        let json = Table.to_json t in
        let reparsed = Json.of_string_exn (Json.to_string json) in
        check_true "round-trip" (Json.equal json reparsed);
        check Alcotest.(option string) "title" (Some "json")
          (Option.bind (Json.member "title" json) Json.to_string_opt)) ]

(* ------------------------------- Workload ------------------------------ *)

let workload_tests =
  [ test "families build graphs of the requested size" (fun () ->
        List.iter
          (fun (family : Workload.family) ->
            let g = family.Workload.build ~seed:3 ~n:18 in
            check_true
              (family.Workload.family_name ^ " size")
              (abs (Graph.n g - 18) <= 6);
            check_true
              (family.Workload.family_name ^ " connected")
              (Graph.is_connected g))
          Workload.standard);
    test "deterministic families ignore the seed" (fun () ->
        let a = Workload.ring.Workload.build ~seed:1 ~n:12 in
        let b = Workload.ring.Workload.build ~seed:99 ~n:12 in
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "same" (Graph.edges a) (Graph.edges b));
    test "small_connected_graphs counts labeled connected graphs" (fun () ->
        (* 1 on 2 vertices, 4 on 3 vertices, 38 on 4 vertices *)
        check_int "n<=3" 5
          (List.length (Workload.small_connected_graphs ~max_n:3));
        check_int "n<=4" 43
          (List.length (Workload.small_connected_graphs ~max_n:4));
        List.iter
          (fun g -> check_true "connected" (Graph.is_connected g))
          (Workload.small_connected_graphs ~max_n:4)) ]

(* -------------------------------- Runner ------------------------------- *)

let runner_tests =
  [ test "daemon_by_name covers the registry and rejects strangers" (fun () ->
        (* every registry name resolves, and the registry still contains the
           historical zoo (parity with the pre-registry hardcoded lists) *)
        let names = Daemon.names () in
        List.iter (fun name -> ignore (Runner.daemon_by_name name)) names;
        List.iter
          (fun name -> check_true (name ^ " registered") (List.mem name names))
          [ "synchronous"; "central-random"; "central-first"; "central-last";
            "round-robin"; "distributed-random"; "locally-central";
            "adversarial"; "starve" ];
        check_int "no duplicate names"
          (List.length names)
          (List.length (List.sort_uniq compare names));
        List.iter
          (fun (name, (d : Daemon.t)) ->
            check_true (name ^ " fresh") (Daemon.by_name name <> None);
            ignore d)
          (Daemon.registry ());
        check_true "unknown"
          (match Runner.daemon_by_name "nope" with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "unison_composed reports a consistent observation" (fun () ->
        let g = Workload.ring.Workload.build ~seed:1 ~n:10 in
        let obs =
          Runner.unison_composed ~graph:g
            ~daemon:(Runner.daemon_by_name "distributed-random") ~seed:3 ()
        in
        check_true "outcome" obs.Runner.outcome_ok;
        check_true "result" obs.Runner.result_ok;
        check_true "rounds bound" (obs.Runner.rounds <= 30);
        check_true "sdr <= total" (obs.Runner.sdr_moves <= obs.Runner.moves);
        check_true "segments bound"
          (match obs.Runner.segments with
          | Some s -> s <= 11
          | None -> false);
        check Alcotest.(option bool) "ar monotone" (Some true)
          obs.Runner.ar_monotone;
        check_true "wall clock measured" (obs.Runner.wall_s >= 0.));
    test "fga_bare checks Lemma 25 and 1-minimality" (fun () ->
        let g = Workload.complete.Workload.build ~seed:1 ~n:7 in
        let obs =
          Runner.fga_bare ~spec:Spec.global_powerful ~graph:g
            ~daemon:(Runner.daemon_by_name "central-random") ~seed:4 ()
        in
        check_true "outcome" obs.Runner.outcome_ok;
        check_true "result" obs.Runner.result_ok);
    test "tail_unison stabilizes and reports legitimacy" (fun () ->
        let g = Workload.path.Workload.build ~seed:1 ~n:9 in
        let obs =
          Runner.tail_unison ~graph:g
            ~daemon:(Runner.daemon_by_name "synchronous") ~seed:5 ()
        in
        check_true "outcome" obs.Runner.outcome_ok;
        check_true "result" obs.Runner.result_ok);
    test "coloring and MIS runners report silence" (fun () ->
        let g = Workload.sparse_random.Workload.build ~seed:2 ~n:10 in
        let col =
          Runner.coloring_composed ~graph:g
            ~daemon:(Runner.daemon_by_name "locally-central") ~seed:6 ()
        in
        let mis =
          Runner.mis_composed ~graph:g
            ~daemon:(Runner.daemon_by_name "round-robin") ~seed:7 ()
        in
        check_true "coloring" (col.Runner.outcome_ok && col.Runner.result_ok);
        check_true "mis" (mis.Runner.outcome_ok && mis.Runner.result_ok)) ]

(* ------------------------------ Experiments ---------------------------- *)

let tiny_profile =
  { Experiments.sizes = [ 8 ];
    fga_sizes = [ 7 ];
    seeds = 1;
    bare_steps_factor = 25;
    jobs = 1 }

let last_col_ok table =
  let cols = List.length table.Table.headers in
  Table.all_ok table ~col:(cols - 1)

let experiment_tests =
  [ test "E12 verifies Property 1 and finds the (0,2) witness" (fun () ->
        let t = Experiments.e12 () in
        check_true "all ok" (last_col_ok t);
        (* fourth column: the custom (0,2) row must be strictly positive,
           the f >= g rows must be zero *)
        let row name =
          List.find (fun r -> String.equal (List.hd r) name) t.Table.rows
        in
        check Alcotest.string "domset zero" "0"
          (List.nth (row "dominating-set") 4);
        check_true "(0,2) positive"
          (int_of_string (List.nth (row "(0,2)-alliance") 4) > 0));
    test "E1-E3 pass on a tiny profile" (fun () ->
        List.iter
          (fun t -> check_true t.Table.title (last_col_ok t))
          (Experiments.e1_e2_e3 tiny_profile));
    test "E7 passes on a tiny profile" (fun () ->
        check_true "e7" (last_col_ok (Experiments.e7 tiny_profile)));
    test "E13 passes on a tiny profile" (fun () ->
        check_true "e13" (last_col_ok (Experiments.e13 tiny_profile)));
    test "all experiments are registered with stable ids" (fun () ->
        check
          (Alcotest.list Alcotest.string)
          "ids"
          [ "E1-E3"; "E4-E5"; "E6"; "E7"; "E8"; "E9-E10"; "E11"; "E12";
            "E13"; "E14"; "E15"; "E16" ]
          (List.map fst (Experiments.all tiny_profile))) ]

let () =
  Alcotest.run "expt"
    [ ("table", table_tests);
      ("workload", workload_tests);
      ("runner", runner_tests);
      ("experiments", experiment_tests) ]

open Helpers
module Json = Ssreset_obs.Json
module Sink = Ssreset_obs.Sink
module Span = Ssreset_obs.Span
module Causality = Ssreset_obs.Causality
module Monitor = Ssreset_obs.Monitor
module Tracefile = Ssreset_obs.Tracefile
module Runner = Ssreset_expt.Runner

(* Toy algorithm reused from test_sim: monotone max propagation. *)
let max_prop : int Algorithm.t =
  let guard (v : int Algorithm.view) =
    Array.exists (fun x -> x > v.Algorithm.state) v.Algorithm.nbrs
  in
  let action (v : int Algorithm.view) =
    Array.fold_left max v.Algorithm.state v.Algorithm.nbrs
  in
  { Algorithm.name = "max-prop";
    rules = [ { Algorithm.rule_name = "copy"; guard; action } ];
    equal = Int.equal;
    pp = Fmt.int }

(* Relay chain: a 1 travels outward from process 0.  Exactly one process is
   enabled at any time on a path, so execution is inherently sequential and
   every move causally depends on the previous one: the happens-before
   critical path must equal the move count exactly, under every daemon. *)
let relay : int Algorithm.t =
  { Algorithm.name = "relay";
    rules =
      [ { Algorithm.rule_name = "fire";
          guard =
            (fun v ->
              v.Algorithm.state = 0
              && Array.exists (fun x -> x = 1) v.Algorithm.nbrs);
          action = (fun _ -> 1) } ];
    equal = Int.equal;
    pp = Fmt.int }

(* ------------------------------- Compact -------------------------------- *)

let compact_tests =
  [ test "expand (compact t) reproduces the full trace exactly" (fun () ->
        List.iter
          (fun (name, g) ->
            let n = Graph.n g in
            let cfg = Array.init n (fun i -> i * 7 mod 11) in
            let t, _ =
              Trace.record ~rng:(rng 3) ~max_steps:500 ~algorithm:max_prop
                ~graph:g ~daemon:Daemon.synchronous (Array.copy cfg)
            in
            check_true name (Trace.expand (Trace.compact t) = t))
          (graph_zoo ()));
    test "Compact.record agrees with compacting a full recording" (fun () ->
        let g = Gen.ring 9 in
        let cfg = Array.init 9 (fun i -> i * 5 mod 7) in
        let daemon () = Daemon.distributed_random 0.4 in
        let full, r1 =
          Trace.record ~rng:(rng 5) ~max_steps:500 ~algorithm:max_prop
            ~graph:g ~daemon:(daemon ()) (Array.copy cfg)
        in
        let compactly, r2 =
          Trace.Compact.record ~rng:(rng 5) ~max_steps:500 ~algorithm:max_prop
            ~graph:g ~daemon:(daemon ()) (Array.copy cfg)
        in
        check_int "steps agree" r1.Engine.steps r2.Engine.steps;
        check_true "same deltas" (Trace.compact full = compactly);
        check_true "same final"
          (Trace.Compact.final compactly = r1.Engine.final));
    test "Compact.moves lists every mover in step order" (fun () ->
        let g = Gen.path 6 in
        let cfg = [| 1; 0; 0; 0; 0; 0 |] in
        let tr, r =
          Trace.Compact.record ~rng:(rng 1) ~algorithm:relay ~graph:g
            ~daemon:Daemon.central_first (Array.copy cfg)
        in
        let moves = Trace.Compact.moves tr in
        check_int "one delta per step" r.Engine.steps (List.length moves);
        check_int "five relay moves" 5
          (List.fold_left (fun a (_, ms) -> a + List.length ms) 0 moves)) ]

(* ------------------------------ Causality ------------------------------- *)

let causality_of_run ?keep_edges ~graph ~daemon cfg =
  let tr, r =
    Trace.Compact.record ~rng:(rng 2) ~max_steps:2_000 ~algorithm:max_prop
      ~graph ~daemon (Array.copy cfg)
  in
  (Causality.build ?keep_edges ~graph (Trace.Compact.moves tr), r)

let causality_tests =
  [ test "critical path never exceeds the step count" (fun () ->
        List.iter
          (fun (name, g) ->
            let n = Graph.n g in
            let cfg = Array.init n (fun i -> (i * 13) mod 17) in
            List.iter
              (fun daemon ->
                let c, r = causality_of_run ~graph:g ~daemon cfg in
                let cp = Causality.critical_length c in
                check_true
                  (Printf.sprintf "%s/%s: cp %d <= steps %d" name
                     daemon.Daemon.daemon_name cp r.Engine.steps)
                  (cp <= r.Engine.steps);
                check_int (name ^ ": all moves counted") r.Engine.moves
                  (Causality.move_count c))
              (daemons ()))
          (graph_zoo ()));
    test "keep_edges changes memory, not the analysis" (fun () ->
        let g = Gen.grid 3 4 in
        let cfg = Array.init 12 (fun i -> (i * 3) mod 5) in
        let lean, _ =
          causality_of_run ~graph:g ~daemon:Daemon.synchronous cfg
        in
        let fat, _ =
          causality_of_run ~keep_edges:true ~graph:g
            ~daemon:Daemon.synchronous cfg
        in
        check_int "same critical length"
          (Causality.critical_length lean)
          (Causality.critical_length fat);
        check_int "same edge count" (Causality.edge_count lean)
          (Causality.edge_count fat);
        check_true "lean mode drops the edge list"
          (Causality.edges lean = []);
        check_int "fat mode keeps every edge" (Causality.edge_count fat)
          (List.length (Causality.edges fat)));
    test "critical path is a causal chain with increasing steps" (fun () ->
        let g = Gen.ring 9 in
        let cfg = Array.init 9 (fun i -> (i * 13) mod 17) in
        let c, _ =
          causality_of_run ~graph:g ~daemon:(Daemon.distributed_random 0.6)
            cfg
        in
        let path = Causality.critical_path c in
        check_int "length matches" (Causality.critical_length c)
          (List.length path);
        let rec strictly_increasing = function
          | a :: (b :: _ as rest) ->
              a.Causality.step < b.Causality.step && strictly_increasing rest
          | _ -> true
        in
        check_true "steps strictly increase along the path"
          (strictly_increasing path);
        check_int "attribution sums to the path length"
          (List.length path)
          (List.fold_left (fun a (_, k) -> a + k) 0 (Causality.attribution c)));
    test "relay chain: critical path = moves under every daemon" (fun () ->
        let n = 10 in
        let g = Gen.path n in
        List.iter
          (fun daemon ->
            let cfg = Array.make n 0 in
            cfg.(0) <- 1;
            let tr, r =
              Trace.Compact.record ~rng:(rng 4) ~algorithm:relay ~graph:g
                ~daemon cfg
            in
            let c = Causality.build ~graph:g (Trace.Compact.moves tr) in
            check_int
              (Printf.sprintf "%s: fully sequential" daemon.Daemon.daemon_name)
              (n - 1)
              (Causality.move_count c);
            check_int
              (Printf.sprintf "%s: cp = moves" daemon.Daemon.daemon_name)
              r.Engine.moves
              (Causality.critical_length c))
          (daemons ())) ]

(* ------------------------------- Spans ---------------------------------- *)

(* The single-wave example of the paper's Figure 1, on a path of 5: root 2
   initiates, the broadcast reaches both endpoints, feedback folds back and
   every member completes. *)
let figure1_tests =
  [ test "hand-built wave reconstructs as one balanced span" (fun () ->
        let t = Span.create ~n:5 in
        Span.feed_step t ~step:0 [ (2, Span.Init) ];
        Span.feed_step t ~step:1
          [ (1, Span.Join { parent = 2; d = 1 });
            (3, Span.Join { parent = 2; d = 1 }) ];
        Span.feed_step t ~step:2
          [ (0, Span.Join { parent = 1; d = 2 });
            (4, Span.Join { parent = 3; d = 2 }) ];
        Span.feed_step t ~step:3 [ (0, Span.Feedback); (4, Span.Feedback) ];
        Span.feed_step t ~step:4 [ (1, Span.Feedback); (3, Span.Feedback) ];
        Span.feed_step t ~step:5 [ (2, Span.Feedback) ];
        Span.feed_step t ~step:6
          [ (0, Span.Complete); (1, Span.Complete); (2, Span.Complete);
            (3, Span.Complete); (4, Span.Complete) ];
        (match Span.waves t with
        | [ w ] ->
            check_int "root" 2 w.Span.root;
            check_false "not preexisting" w.Span.preexisting;
            check_int "members" 5 w.Span.members;
            check_int "depth" 2 w.Span.depth;
            check_int "r" 1 w.Span.r_moves;
            check_int "rb" 4 w.Span.rb_moves;
            check_int "rf" 5 w.Span.rf_moves;
            check_int "c" 5 w.Span.c_moves;
            check_int "completed" 0 w.Span.active;
            check_int "first step" 0 w.Span.first_step;
            check_int "last step" 6 w.Span.last_step
        | ws -> Alcotest.failf "expected 1 wave, got %d" (List.length ws));
        check_true "structurally clean"
          (Span.check ~require_complete:true t = []);
        check_true "no succession" (Span.dag t = []));
    test "re-initiation by a member creates a successor wave" (fun () ->
        let t = Span.create ~n:3 in
        Span.feed_step t ~step:0 [ (0, Span.Init) ];
        Span.feed_step t ~step:1 [ (1, Span.Join { parent = 0; d = 1 }) ];
        (* Process 1 becomes an alive root itself: it leaves wave 0 and
           starts wave 1 — a succession edge in the wave DAG. *)
        Span.feed_step t ~step:2 [ (1, Span.Init) ];
        check_int "two waves" 2 (List.length (Span.waves t));
        check_true "succession edge 0 -> 1" (Span.dag t = [ (0, 1) ]);
        check_int "process 1 now in wave 1" 1 (Span.wave_of t 1));
    test "preexisting components seed one wave each" (fun () ->
        let g = Gen.path 6 in
        let t = Span.create ~n:6 in
        (* Two separate mid-reset islands: {0,1} and {4,5}. *)
        Span.seed_active ~graph:g t [ (0, 2); (1, 1); (4, 3); (5, 7) ];
        let st = Span.stats t in
        check_int "two preexisting waves" 2 st.Span.preexisting_count;
        check_int "no synthetic waves" 0 st.Span.synthetic;
        check_true "island roots are the min-d members"
          (List.for_all
             (fun w -> w.Span.root = 1 || w.Span.root = 4)
             (Span.waves t));
        (* Completing every member closes both waves. *)
        Span.feed_step t ~step:0
          [ (0, Span.Complete); (1, Span.Complete); (4, Span.Complete);
            (5, Span.Complete) ];
        check_int "both complete" 2 (Span.stats t).Span.completed);
    test "orphan events synthesize a wave and fail the check" (fun () ->
        let t = Span.create ~n:4 in
        Span.feed_step t ~step:0 [ (3, Span.Feedback) ];
        check_int "one synthetic wave" 1 (Span.stats t).Span.synthetic;
        check_true "check flags the incomplete wave"
          (Span.check ~require_complete:true t <> [])) ]

(* ------------------------------ Monitors -------------------------------- *)

let monitor_tests =
  [ test "move_bound trips once when the budget is crossed" (fun () ->
        let m = Monitor.create ~window:4 () in
        let obs = Monitor.move_bound m ~name:"moves-bound" ~bound:2 in
        obs ~step:0 ~moved:[ (0, "r") ] [||];
        check_int "under budget" 0 (Monitor.anomaly_count m);
        obs ~step:1 ~moved:[ (1, "r"); (2, "s") ] [||];
        check_int "tripped" 1 (Monitor.anomaly_count m);
        obs ~step:2 ~moved:[ (0, "r") ] [||];
        check_int "latched once" 1 (Monitor.anomaly_count m);
        match Monitor.anomalies m with
        | [ a ] ->
            check Alcotest.string "name" "moves-bound" a.Monitor.monitor;
            check_int "value" 3 a.Monitor.value;
            check_int "bound" 2 a.Monitor.bound;
            check_true "window holds the recent events"
              (List.length a.Monitor.window >= 1)
        | _ -> Alcotest.fail "expected exactly one anomaly");
    test "round_bound trips beyond the bound" (fun () ->
        let m = Monitor.create () in
        Monitor.round_bound m ~name:"rounds-bound" ~bound:3 ~round:3 ~steps:9;
        check_int "at the bound" 0 (Monitor.anomaly_count m);
        Monitor.round_bound m ~name:"rounds-bound" ~bound:3 ~round:4 ~steps:12;
        Monitor.round_bound m ~name:"rounds-bound" ~bound:3 ~round:5 ~steps:15;
        check_int "latched once" 1 (Monitor.anomaly_count m));
    test "non_increasing trips when the measure grows" (fun () ->
        let m = Monitor.create () in
        let obs =
          Monitor.non_increasing m ~name:"alive-roots-monotone"
            ~measure:(fun cfg -> cfg.(0))
            ~init:5
        in
        obs ~step:0 ~moved:[ (0, "r") ] [| 4 |];
        check_int "decrease is fine" 0 (Monitor.anomaly_count m);
        obs ~step:1 ~moved:[ (0, "r") ] [| 6 |];
        check_int "increase trips" 1 (Monitor.anomaly_count m));
    test "a tripped monitor emits a schema-valid anomaly record" (fun () ->
        let g = Gen.path 3 in
        let tmp = Filename.temp_file "ssreset-test-anomaly" ".jsonl" in
        let sink = Sink.create tmp in
        Sink.write sink
          (Sink.manifest
             ~extra:
               [ ("trace_schema", Json.String Tracefile.schema);
                 ( "edges",
                   Json.List
                     (List.map
                        (fun (u, v) -> Json.List [ Json.Int u; Json.Int v ])
                        (Graph.edges g)) ) ]
             ~system:"toy-broken" ~family:"path" ~n:3 ~m:(Graph.m g) ~seed:0
             ~daemon:"central-first" ());
        let m = Monitor.create ~sink () in
        let obs = Monitor.move_bound m ~name:"moves-bound" ~bound:1 in
        (* An injected violation: two moves against a bound of one. *)
        obs ~step:0 ~moved:[ (0, "fire") ] [||];
        obs ~step:1 ~moved:[ (1, "fire") ] [||];
        check_int "anomaly latched" 1 (Monitor.anomaly_count m);
        Sink.write sink
          (Sink.summary
             ~extra:[ ("anomalies", Json.Int (Monitor.anomaly_count m)) ]
             ~outcome:"step-limit" ~rounds:2 ~steps:2 ~moves:2 ~wall_s:0.0 ());
        Sink.close sink;
        (match Tracefile.check_file tmp with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "trace rejected: %s" msg);
        (match Tracefile.load_file tmp with
        | Ok t -> (
            match t.Tracefile.anomalies with
            | [ a ] ->
                check Alcotest.string "monitor name" "moves-bound"
                  a.Tracefile.monitor;
                check_int "value" 2 a.Tracefile.value;
                check_int "bound" 1 a.Tracefile.bound
            | l -> Alcotest.failf "expected 1 anomaly, got %d" (List.length l))
        | Error msg -> Alcotest.failf "load failed: %s" msg);
        Sys.remove tmp) ]

(* ------------------------------ Tracefile ------------------------------- *)

let clean_trace =
  String.concat "\n"
    [ {|{"type":"manifest","system":"unison","family":"path","n":3,"m":2,"seed":1,"daemon":"central-first","trace_schema":"ssreset-trace-v1","edges":[[0,1],[1,2]]}|};
      {|{"type":"init","active":[{"p":1,"st":"RB","d":2}]}|};
      {|{"type":"step","step":0,"movers":[{"p":0,"rule":"SDR-R","w":"init"},{"p":2,"rule":"SDR-RB","w":"join","parent":1,"d":3}]}|};
      {|{"type":"round","round":1,"steps":1,"moves":2}|};
      {|{"type":"summary","outcome":"step-limit","rounds":1,"steps":1,"moves":2,"wall_s":0.001,"moves_per_rule":{"SDR-R":1,"SDR-RB":1}}|} ]

(* Replace the first occurrence of [needle] in [hay] — used to corrupt the
   clean trace string in targeted ways. *)
let replace ~needle ~by hay =
  let nl = String.length needle and hl = String.length hay in
  let rec find i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> invalid_arg "replace: needle not found"
  | Some i ->
      String.sub hay 0 i ^ by ^ String.sub hay (i + nl) (hl - i - nl)

let rejects what contents =
  test ("rejects " ^ what) (fun () ->
      match Tracefile.load_string contents with
      | Ok _ -> Alcotest.failf "accepted a trace with %s" what
      | Error _ -> ())

let tracefile_tests =
  [ test "accepts a well-formed trace" (fun () ->
        match Tracefile.load_string clean_trace with
        | Ok t ->
            check_int "n" 3 t.Tracefile.n;
            check_int "two edges" 2 (List.length t.Tracefile.edges);
            check_int "one step record" 1 (List.length t.Tracefile.steps);
            check_int "seeded actives" 1 (List.length t.Tracefile.init_active)
        | Error msg -> Alcotest.failf "clean trace rejected: %s" msg);
    rejects "a missing manifest"
      {|{"type":"summary","outcome":"x","rounds":0,"steps":0,"moves":0,"wall_s":0.0}|};
    rejects "a join without provenance"
      (replace ~needle:{|"w":"join","parent":1,"d":3|} ~by:{|"w":"join"|}
         clean_trace);
    rejects "a mover out of range"
      (replace ~needle:{|{"p":2,"rule":"SDR-RB"|}
         ~by:{|{"p":7,"rule":"SDR-RB"|} clean_trace);
    rejects "summary counters contradicting the step records"
      (replace ~needle:{|"moves":2,"wall_s"|} ~by:{|"moves":9,"wall_s"|}
         clean_trace);
    rejects "records after the summary" (clean_trace ^ "\n" ^ clean_trace);
    rejects "non-increasing step indices"
      (clean_trace |> String.split_on_char '\n'
      |> List.map (fun l ->
             if String.length l > 15 && String.sub l 9 4 = "step" then
               l ^ "\n" ^ l
             else l)
      |> String.concat "\n") ]

(* --------------------------- Full pipeline ------------------------------ *)

(* Record a real step-traced U∘SDR run through the telemetry layer, then
   re-derive everything offline from the file alone — the same path the
   `ssreset trace` CLI takes. *)
let record_unison ~seed ~n =
  let g = Gen.ring n in
  let tmp = Filename.temp_file "ssreset-test-trace" ".jsonl" in
  let sink = Sink.create tmp in
  Sink.write sink
    (Sink.manifest
       ~extra:
         [ ("trace_schema", Json.String Tracefile.schema);
           ( "edges",
             Json.List
               (List.map
                  (fun (u, v) -> Json.List [ Json.Int u; Json.Int v ])
                  (Graph.edges g)) ) ]
       ~system:"unison" ~family:"ring" ~n ~m:(Graph.m g) ~seed
       ~daemon:"synchronous" ());
  let obs =
    Runner.unison_composed ~sink ~trace_steps:true ~graph:g
      ~daemon:Daemon.synchronous ~seed ()
  in
  Sink.close sink;
  let t =
    match Tracefile.load_file tmp with
    | Ok t -> t
    | Error msg -> Alcotest.failf "seed %d: invalid trace: %s" seed msg
  in
  Sys.remove tmp;
  (t, obs)

let span_of_trace (t : Tracefile.t) =
  let graph = Tracefile.graph_of t in
  let span = Span.create ~n:t.Tracefile.n in
  Span.seed_active ~graph span
    (List.map (fun (p, _, d) -> (p, d)) t.Tracefile.init_active);
  List.iter
    (fun (s : Tracefile.step) ->
      Span.feed_step span ~step:s.Tracefile.index
        (List.filter_map
           (fun (m : Tracefile.mover) ->
             Option.map (fun ev -> (m.Tracefile.p, ev)) m.Tracefile.wave)
           s.Tracefile.movers))
    t.Tracefile.steps;
  span

let pipeline_tests =
  [ test "20 seeds: critical path tracks the round count" (fun () ->
        let exact = ref 0 in
        for seed = 0 to 19 do
          let t, obs = record_unison ~seed ~n:16 in
          let c =
            Causality.build ~graph:(Tracefile.graph_of t)
              (Tracefile.mover_pairs t)
          in
          let cp = Causality.critical_length c in
          (* Synchronous: every step is a round and every step extends the
             longest chain, so the equality is exact — the ±1 headroom is
             for the empty-run edge case. *)
          check_true
            (Printf.sprintf "seed %d: |cp %d - rounds %d| <= 1" seed cp
               obs.Runner.rounds)
            (abs (cp - obs.Runner.rounds) <= 1);
          check_int
            (Printf.sprintf "seed %d: cp = steps" seed)
            obs.Runner.steps cp;
          if cp = obs.Runner.rounds then incr exact
        done;
        check_true
          (Printf.sprintf "critical path = rounds on %d/20 seeds" !exact)
          (!exact >= 19));
    test "every recorded wave reconstructs and balances" (fun () ->
        for seed = 0 to 4 do
          let t, obs = record_unison ~seed ~n:12 in
          let span = span_of_trace t in
          (match Span.check ~require_complete:true span with
          | [] -> ()
          | errs ->
              Alcotest.failf "seed %d: %s" seed (String.concat "; " errs));
          let st = Span.stats span in
          check_int
            (Printf.sprintf "seed %d: no synthetic waves" seed)
            0 st.Span.synthetic;
          check_true
            (Printf.sprintf "seed %d: waves completed" seed)
            (st.Span.completed = st.Span.wave_count);
          (* Every SDR move of the run is attributed to exactly one span. *)
          check_int
            (Printf.sprintf "seed %d: SDR moves all attributed" seed)
            obs.Runner.sdr_moves st.Span.total_moves
        done);
    test "anomaly-free bounds on a stabilizing run" (fun () ->
        let t, _ = record_unison ~seed:5 ~n:12 in
        check_true "no anomaly records" (t.Tracefile.anomalies = []);
        check Alcotest.(option int) "summary agrees" (Some 0)
          t.Tracefile.summary.Tracefile.anomaly_count) ]

let () =
  Alcotest.run "trace"
    [ ("compact", compact_tests);
      ("causality", causality_tests);
      ("figure1", figure1_tests);
      ("monitor", monitor_tests);
      ("tracefile", tracefile_tests);
      ("pipeline", pipeline_tests) ]

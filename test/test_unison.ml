open Helpers
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Metrics = Ssreset_graph.Metrics
module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Trace = Ssreset_sim.Trace
module Unison = Ssreset_unison.Unison
module Tail = Ssreset_unison.Tail_unison
module Checker = Ssreset_unison.Checker

module U10 = Unison.Make (struct
  let k = 12
end)

let view_of g cfg u = Algorithm.view g cfg u

(* ------------------------------ algorithm U ---------------------------- *)

let input_tests =
  [ test "Make rejects K < 2" (fun () ->
        check_true "raises"
          (match
             let module Bad = Unison.Make (struct
               let k = 1
             end) in
             Bad.k
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "P_ICorrect accepts the ±1 window including wraparound" (fun () ->
        let g = Gen.path 3 in
        let ok cfg u = U10.Input.p_icorrect (view_of g cfg u) in
        check_true "same" (ok [| 4; 4; 4 |] 1);
        check_true "ahead" (ok [| 4; 5; 4 |] 1);
        check_true "behind" (ok [| 4; 3; 4 |] 1);
        check_true "wrap 0/11" (ok [| 0; 11; 0 |] 1);
        check_false "gap 2" (ok [| 4; 6; 4 |] 1);
        check_false "gap far" (ok [| 0; 5; 0 |] 1));
    test "P_reset and reset agree (Requirement 2e)" (fun () ->
        check_true "reset" (U10.Input.p_reset (U10.Input.reset 7));
        check_true "zero" (U10.Input.p_reset 0);
        check_false "nonzero" (U10.Input.p_reset 3));
    test "increment guard requires all neighbors at c or c+1" (fun () ->
        let g = Gen.path 3 in
        let enabled cfg u = Algorithm.is_enabled U10.bare (view_of g cfg u) in
        check_true "all equal" (enabled [| 2; 2; 2 |] 1);
        check_true "all ahead" (enabled [| 3; 2; 3 |] 1);
        check_false "one behind" (enabled [| 1; 2; 3 |] 1);
        check_false "gap" (enabled [| 4; 2; 2 |] 1));
    test "increment wraps modulo K" (fun () ->
        let g = Gen.path 2 in
        match Algorithm.enabled_rule U10.bare (view_of g [| 11; 11 |] 0) with
        | Some r ->
            check_int "wrap" 0 (r.Algorithm.action (view_of g [| 11; 11 |] 0))
        | None -> Alcotest.fail "rule should be enabled");
    test "gamma_init is all zeros and clock_gen stays in domain" (fun () ->
        let g = Gen.ring 7 in
        check_true "zeros" (Array.for_all (fun c -> c = 0) (U10.gamma_init g));
        for seed = 1 to 40 do
          let c = U10.clock_gen (rng seed) 0 in
          check_true "domain" (c >= 0 && c < 12)
        done) ]

(* ------------------------- bare U from γ_init -------------------------- *)

let bare_tests =
  [ test "safety and liveness from γ_init under every daemon (Thm 5)"
      (fun () ->
        List.iter
          (fun (name, g) ->
            List.iter
              (fun daemon ->
                let n = Graph.n g in
                let module U = Unison.Make (struct
                  let k = (2 * n) + 2
                end) in
                let monitor = Checker.create_monitor ~k:U.k g in
                let r =
                  Engine.run ~rng:(rng 3) ~max_steps:(60 * n)
                    ~observer:(Checker.observe_bare monitor)
                    ~algorithm:U.bare ~graph:g ~daemon (U.gamma_init g)
                in
                check_true "never terminal"
                  (r.Engine.outcome = Engine.Step_limit);
                check_int "no violation" 0 (Checker.safety_violations monitor))
              [ Daemon.synchronous; Daemon.round_robin ();
                Daemon.distributed_random 0.7 ];
            (* liveness proxy under a fair-ish daemon *)
            let n = Graph.n g in
            let module U = Unison.Make (struct
              let k = (2 * n) + 2
            end) in
            let monitor = Checker.create_monitor ~k:U.k g in
            let _ =
              Engine.run ~rng:(rng 4) ~max_steps:(80 * n)
                ~observer:(Checker.observe_bare monitor)
                ~algorithm:U.bare ~graph:g ~daemon:(Daemon.round_robin ())
                (U.gamma_init g)
            in
            if Checker.min_increments monitor = 0 then
              Alcotest.failf "%s: some process never incremented" name)
          (graph_zoo ()));
    test "legitimate configurations are never terminal (Lemma 18)" (fun () ->
        let g = Gen.ring 8 in
        let module U = Unison.Make (struct
          let k = 18
        end) in
        let trace, _ =
          Trace.record ~rng:(rng 5) ~max_steps:200 ~algorithm:U.bare ~graph:g
            ~daemon:Daemon.central_random (U.gamma_init g)
        in
        List.iter
          (fun cfg ->
            check_false "not terminal" (Algorithm.is_terminal U.bare g cfg))
          (Trace.configs trace));
    test "P_ICorrect is closed by bare U (Lemma 17)" (fun () ->
        let g = Gen.erdos_renyi (rng 21) 10 0.3 in
        for seed = 1 to 10 do
          let cfg = Fault.arbitrary (rng seed) U10.clock_gen g in
          let trace, _ =
            Trace.record ~rng:(rng (seed + 50)) ~max_steps:200
              ~algorithm:U10.bare ~graph:g
              ~daemon:(Daemon.distributed_random 0.5) cfg
          in
          check_true "closed"
            (closed_along_trace ~graph:g
               ~prop:(fun _ v -> U10.Input.p_icorrect v)
               trace)
        done);
    test "bare U from a broken configuration freezes within 3D moves per \
          process (Lemma 20)" (fun () ->
        List.iter
          (fun (name, g) ->
            let n = Graph.n g in
            let module U = Unison.Make (struct
              let k = (2 * n) + 2
            end) in
            let diam = Metrics.diameter g in
            (* plant an irreparable inconsistency on edge (0, v0) *)
            let cfg = U.gamma_init g in
            let v0 = (Graph.neighbors g 0).(0) in
            cfg.(0) <- 0;
            cfg.(v0) <- 5;
            List.iter
              (fun daemon ->
                let r =
                  Engine.run ~rng:(rng 6) ~max_steps:100_000
                    ~algorithm:U.bare ~graph:g ~daemon (Array.copy cfg)
                in
                if r.Engine.outcome <> Engine.Terminal then
                  Alcotest.failf "%s: expected freeze" name;
                Array.iteri
                  (fun u moves ->
                    if moves > 3 * diam then
                      Alcotest.failf "%s: process %d made %d > 3D moves" name
                        u moves)
                  r.Engine.moves_per_process)
              (daemons ()))
          (graph_zoo ())) ]

(* ------------------------------ U ∘ SDR -------------------------------- *)

let composed_tests =
  [ test "stabilizes with K = n+1 (smallest legal period)" (fun () ->
        let g = Gen.ring 9 in
        let module U = Unison.Make (struct
          let k = 10
        end) in
        let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:9 in
        List.iter
          (fun daemon ->
            for seed = 1 to 3 do
              let cfg = Fault.arbitrary (rng seed) gen g in
              let r =
                Engine.run ~rng:(rng (seed * 3)) ~max_steps:200_000
                  ~stop:(U.Composed.is_normal g)
                  ~algorithm:U.Composed.algorithm ~graph:g ~daemon cfg
              in
              check_true "stabilized" (r.Engine.outcome = Engine.Stabilized)
            done)
          (daemons ()));
    test "after stabilization the specification holds forever (long suffix)"
      (fun () ->
        let g = Gen.grid 3 3 in
        let n = Graph.n g in
        let module U = Unison.Make (struct
          let k = (2 * n) + 2
        end) in
        let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:n in
        let cfg = Fault.arbitrary (rng 8) gen g in
        let r =
          Engine.run ~rng:(rng 9) ~max_steps:200_000
            ~stop:(U.Composed.is_normal g)
            ~algorithm:U.Composed.algorithm ~graph:g
            ~daemon:(Daemon.distributed_random 0.5) cfg
        in
        check_true "stabilized" (r.Engine.outcome = Engine.Stabilized);
        let monitor = Checker.create_monitor ~k:U.k g in
        let violations = ref 0 in
        let observer ~step ~moved cfg =
          Checker.observe_composed monitor ~step ~moved cfg;
          if not (Checker.safety_ok ~k:U.k g (U.Composed.inner_config cfg))
          then incr violations
        in
        let suffix =
          Engine.run ~rng:(rng 10) ~max_steps:(60 * n) ~observer
            ~algorithm:U.Composed.algorithm ~graph:g
            ~daemon:(Daemon.round_robin ()) r.Engine.final
        in
        check_true "ran" (suffix.Engine.steps > 0);
        check_int "safety kept" 0 !violations;
        check_true "liveness" (Checker.min_increments monitor > 0));
    test "stabilization moves stay within (3D+3)n² + (3D+1)(n-1) + 1 \
          (Theorem 6's explicit constant)" (fun () ->
        List.iter
          (fun (name, g) ->
            let n = Graph.n g in
            let diam = Metrics.diameter g in
            let module U = Unison.Make (struct
              let k = (2 * n) + 2
            end) in
            let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:n in
            let bound =
              (((3 * diam) + 3) * n * n) + (((3 * diam) + 1) * (n - 1)) + 1
            in
            List.iter
              (fun daemon ->
                for seed = 1 to 2 do
                  let cfg = Fault.arbitrary (rng (seed * 11)) gen g in
                  let r =
                    Engine.run ~rng:(rng seed) ~max_steps:500_000
                      ~stop:(U.Composed.is_normal g)
                      ~algorithm:U.Composed.algorithm ~graph:g ~daemon cfg
                  in
                  check_true "stabilized"
                    (r.Engine.outcome = Engine.Stabilized);
                  if r.Engine.moves > bound then
                    Alcotest.failf "%s: %d moves > bound %d" name
                      r.Engine.moves bound
                done)
              (daemons ()))
          (graph_zoo ())) ]

(* ----------------------------- tail unison ----------------------------- *)

module T8 = Tail.Make (struct
  let k = 18
  let alpha = 8
end)

let tail_tests =
  [ test "Make validates parameters" (fun () ->
        check_true "K"
          (match
             let module Bad = Tail.Make (struct
               let k = 3
               let alpha = 4
             end) in
             Bad.k
           with
          | exception Invalid_argument _ -> true
          | _ -> false);
        check_true "alpha"
          (match
             let module Bad = Tail.Make (struct
               let k = 10
               let alpha = 0
             end) in
             Bad.alpha
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "compatibility relation" (fun () ->
        check_true "ring ±1" (T8.compatible 4 5);
        check_true "ring wrap" (T8.compatible 0 17);
        check_false "ring gap" (T8.compatible 3 7);
        check_true "entry zone" (T8.compatible 1 (-3));
        check_false "ahead of tail" (T8.compatible 2 (-1));
        check_true "tail-tail" (T8.compatible (-5) (-1)));
    test "γ_init is legitimate; legitimacy requires ring values" (fun () ->
        let g = Gen.ring 6 in
        check_true "init" (T8.is_legitimate g (T8.gamma_init g));
        check_false "tail value" (T8.is_legitimate g [| 0; 0; -1; 0; 0; 0 |]);
        check_false "gap" (T8.is_legitimate g [| 0; 2; 0; 0; 0; 0 |]));
    test "stabilizes from arbitrary configurations on the zoo" (fun () ->
        List.iter
          (fun (name, g) ->
            let n = Graph.n g in
            let module T = Tail.Make (struct
              let k = (2 * n) + 2
              let alpha = n
            end) in
            List.iter
              (fun daemon ->
                for seed = 1 to 2 do
                  let cfg = Fault.arbitrary (rng seed) T.clock_gen g in
                  let r =
                    Engine.run ~rng:(rng (seed + 7)) ~max_steps:2_000_000
                      ~stop:(T.is_legitimate g)
                      ~algorithm:T.algorithm ~graph:g ~daemon cfg
                  in
                  if r.Engine.outcome <> Engine.Stabilized then
                    Alcotest.failf "%s under %s did not stabilize" name
                      daemon.Daemon.daemon_name
                done)
              (daemons ()))
          (graph_zoo ()));
    test "legitimacy is closed and safety holds afterwards" (fun () ->
        let g = Gen.ring 8 in
        let module T = Tail.Make (struct
          let k = 18
          let alpha = 8
        end) in
        let cfg = Fault.arbitrary (rng 2) T.clock_gen g in
        let r =
          Engine.run ~rng:(rng 3) ~max_steps:2_000_000
            ~stop:(T.is_legitimate g) ~algorithm:T.algorithm ~graph:g
            ~daemon:(Daemon.distributed_random 0.5) cfg
        in
        check_true "stabilized" (r.Engine.outcome = Engine.Stabilized);
        let ok = ref true in
        let observer ~step:_ ~moved:_ cfg =
          if not (T.is_legitimate g cfg) then ok := false
        in
        let _ =
          Engine.run ~rng:(rng 4) ~max_steps:300 ~observer
            ~algorithm:T.algorithm ~graph:g ~daemon:(Daemon.round_robin ())
            r.Engine.final
        in
        check_true "closed" !ok);
    test "tail rules are mutually exclusive" (fun () ->
        let g = Gen.ring 6 in
        for seed = 1 to 40 do
          let cfg = Fault.arbitrary (rng seed) T8.clock_gen g in
          for u = 0 to Graph.n g - 1 do
            let enabled =
              Algorithm.exclusive_rules T8.algorithm (view_of g cfg u)
            in
            if List.length enabled > 1 then
              Alcotest.failf "rules %s enabled together"
                (String.concat "," enabled)
          done
        done) ]

(* --------------------------- min-unison [20] --------------------------- *)

module MU = Ssreset_unison.Min_unison

let min_unison_tests =
  [ test "Make validates K" (fun () ->
        check_true "raises"
          (match
             let module Bad = MU.Make (struct
               let k = 2
               let alpha = 1
             end) in
             Bad.k
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "γ_init legitimate, reset fires only on incompatibility" (fun () ->
        let g = Gen.path 3 in
        let module M = MU.Make (struct
          let k = 50
          let alpha = 2
        end) in
        check_true "init" (M.is_legitimate g (M.gamma_init g));
        check_false "gap" (M.is_legitimate g [| 0; 2; 2 |]);
        let rule cfg u =
          Option.map
            (fun (r : int Algorithm.rule) -> r.Algorithm.rule_name)
            (Algorithm.enabled_rule M.algorithm (Algorithm.view g cfg u))
        in
        check (Alcotest.option Alcotest.string) "tick" (Some MU.rule_tick)
          (rule [| 1; 1; 1 |] 1);
        check (Alcotest.option Alcotest.string) "zero" (Some MU.rule_zero)
          (rule [| 1; 5; 5 |] 1);
        (* incompatibility pushes even a clock at 0 below the ring: the
           in-ring reset of the first reconstruction is what livelocked *)
        check (Alcotest.option Alcotest.string) "zero from 0"
          (Some MU.rule_zero)
          (rule [| 5; 0; 5 |] 1);
        check (Alcotest.option Alcotest.string) "climb" (Some MU.rule_climb)
          (rule [| 5; -2; 5 |] 1);
        (* at the ring door (-1) a process waits until its whole
           neighborhood is back at 0 or 1 *)
        check (Alcotest.option Alcotest.string) "waits at ring door" None
          (rule [| 5; -1; 5 |] 1));
    test "stabilizes from arbitrary configurations on the zoo" (fun () ->
        List.iter
          (fun (name, g) ->
            let n = Graph.n g in
            let module M = MU.Make (struct
              let k = (n * n) + 1
              let alpha = max 1 (n - 2)
            end) in
            List.iter
              (fun daemon ->
                for seed = 1 to 2 do
                  let cfg = Fault.arbitrary (rng seed) M.clock_gen g in
                  let r =
                    Engine.run ~rng:(rng (seed + 9)) ~max_steps:2_000_000
                      ~stop:(M.is_legitimate g) ~algorithm:M.algorithm
                      ~graph:g ~daemon cfg
                  in
                  if r.Engine.outcome <> Engine.Stabilized then
                    Alcotest.failf "%s under %s did not stabilize" name
                      daemon.Daemon.daemon_name
                done)
              (daemons ()))
          (graph_zoo ()));
    test "legitimacy is closed under further steps" (fun () ->
        let g = Gen.ring 7 in
        let module M = MU.Make (struct
          let k = 50
          let alpha = 5
        end) in
        let ok = ref true in
        let observer ~step:_ ~moved:_ cfg =
          if not (M.is_legitimate g cfg) then ok := false
        in
        let _ =
          Engine.run ~rng:(rng 5) ~max_steps:300 ~observer
            ~algorithm:M.algorithm ~graph:g ~daemon:(Daemon.round_robin ())
            (M.gamma_init g)
        in
        check_true "closed" !ok) ]

let () =
  Alcotest.run "unison"
    [ ("algorithm U", input_tests);
      ("bare U", bare_tests);
      ("U∘SDR", composed_tests);
      ("tail baseline", tail_tests);
      ("min-unison baseline", min_unison_tests) ]

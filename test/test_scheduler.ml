(* Scheduler equivalence and pool determinism.

   The dirty-set (`Incremental) scheduler must be bit-identical to the
   reference full-rescan (`Full) path: same outcome, step, move and round
   counts, same per-rule and per-process tallies, same final configuration —
   on every registered algorithm, under every daemon of the zoo, across many
   seeds.  And Pool.map_* must return the same values (and surface the same
   error) for any jobs count. *)

module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Pool = Ssreset_sim.Pool
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Registry = Ssreset_check.Registry
module Finite = Ssreset_check.Finite
module Experiments = Ssreset_expt.Experiments

(* ------------------------ full vs incremental ------------------------- *)

let seeds = 20
let graphs () = [ Gen.ring 5; Gen.erdos_renyi (Random.State.make [| 9 |]) 6 0.4 ]

(* Compare every field of the two results except wall_s (the only field a
   scheduler may legitimately change). *)
let same_result equal (a : _ Engine.result) (b : _ Engine.result) =
  a.Engine.outcome = b.Engine.outcome
  && a.Engine.steps = b.Engine.steps
  && a.Engine.moves = b.Engine.moves
  && a.Engine.rounds = b.Engine.rounds
  && a.Engine.moves_per_rule = b.Engine.moves_per_rule
  && a.Engine.moves_per_process = b.Engine.moves_per_process
  && Array.length a.Engine.final = Array.length b.Engine.final
  && Array.for_all2 equal a.Engine.final b.Engine.final

(* Fresh daemon per run: round-robin carries a cursor, so a shared daemon
   value would leak state from the `Full run into the `Incremental one. *)
let fresh_daemon name = List.assoc name (Daemon.registry ())

let scheduler_equivalence_case (entry : Registry.entry) =
  Alcotest.test_case
    (Printf.sprintf "%s: full ≡ incremental (every daemon, %d seeds)"
       entry.Registry.name seeds)
    `Quick
    (fun () ->
      List.iter
        (fun g ->
          if Graph.n g >= entry.Registry.min_n then begin
            let module F = (val entry.Registry.instance g : Finite.FINITE) in
            let random_cfg rng =
              Array.init (Graph.n F.graph) (fun u ->
                  let dom = F.domain u in
                  List.nth dom (Random.State.int rng (List.length dom)))
            in
            let run_with scheduler ~daemon_name ~seed cfg =
              Engine.run
                ~rng:(Random.State.make [| seed |])
                ~max_steps:2_000 ~scheduler ~algorithm:F.algorithm
                ~graph:F.graph
                ~daemon:(fresh_daemon daemon_name) (Array.copy cfg)
            in
            List.iter
              (fun daemon_name ->
                for seed = 1 to seeds do
                  let cfg = random_cfg (Random.State.make [| seed; 77 |]) in
                  let full = run_with `Full ~daemon_name ~seed cfg in
                  let inc = run_with `Incremental ~daemon_name ~seed cfg in
                  if
                    not
                      (same_result F.algorithm.Ssreset_sim.Algorithm.equal
                         full inc)
                  then
                    Alcotest.failf
                      "%s under %s, seed %d: schedulers diverged \
                       (full: %d steps %d moves %d rounds; incremental: %d \
                       steps %d moves %d rounds)"
                      F.name daemon_name seed full.Engine.steps
                      full.Engine.moves full.Engine.rounds inc.Engine.steps
                      inc.Engine.moves inc.Engine.rounds
                done)
              (Daemon.names ())
          end)
        (graphs ()))

(* Regression: rng-less runs used to share a module-level Random.State, so a
   run's result depended on what other runs executed before it.  Now each
   rng-less run derives a fresh state from ?seed, so interleaving other work
   must not change anything. *)
let rngless_runs_are_order_independent () =
  let entry = List.hd Registry.entries in
  let g = Gen.ring 5 in
  let module F = (val entry.Registry.instance g : Finite.FINITE) in
  let cfg =
    Array.init (Graph.n F.graph) (fun u -> List.hd (F.domain u))
  in
  let go () =
    Engine.run ~max_steps:500 ~algorithm:F.algorithm ~graph:F.graph
      ~daemon:(fresh_daemon "distributed-random")
      (Array.copy cfg)
  in
  let isolated = go () in
  (* interleave two other rng-less runs, then repeat *)
  ignore (Engine.run ~seed:99 ~max_steps:100 ~algorithm:F.algorithm
            ~graph:F.graph ~daemon:(fresh_daemon "central-random")
            (Array.copy cfg));
  ignore (Engine.step ~algorithm:F.algorithm ~graph:F.graph
            ~daemon:(fresh_daemon "central-random") ~step_index:0
            (Array.copy cfg));
  let interleaved = go () in
  Alcotest.(check bool) "same result regardless of surrounding runs" true
    (same_result F.algorithm.Ssreset_sim.Algorithm.equal isolated interleaved)

let scheduler_tests =
  List.map scheduler_equivalence_case Registry.entries
  @ [ Alcotest.test_case "rng-less runs are order-independent (?seed, no \
                          shared state)"
        `Quick rngless_runs_are_order_independent ]

(* ------------------------------- pool ---------------------------------- *)

let jobs_variants = [ 1; 2; 4 ]

let pool_map_identity () =
  let xs = Array.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "map_array jobs=%d" jobs)
        expected
        (Pool.map_array ~jobs f xs))
    jobs_variants;
  (* more workers than elements *)
  Alcotest.(check (array int)) "jobs > n" expected (Pool.map_array ~jobs:64 f xs)

let pool_error_deterministic () =
  let xs = Array.init 16 (fun i -> i) in
  let f x = if x = 3 || x = 7 then failwith (string_of_int x) else x in
  List.iter
    (fun jobs ->
      match Pool.map_array ~jobs f xs with
      | _ -> Alcotest.failf "jobs=%d: expected Job_failed" jobs
      | exception Pool.Job_failed { index; exn = Failure msg; _ } ->
          (* smallest failing index wins, whatever the domain interleaving *)
          Alcotest.(check int)
            (Printf.sprintf "failing index under jobs=%d" jobs)
            3 index;
          Alcotest.(check string) "carried exception" "3" msg
      | exception e -> raise e)
    jobs_variants

let pool_map_list () =
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map_list jobs=%d" jobs)
        [ 2; 4; 6; 8; 10 ]
        (Pool.map_list ~jobs (fun x -> 2 * x) [ 1; 2; 3; 4; 5 ]))
    jobs_variants

(* The real consumer: an experiment sweep must produce identical tables for
   any jobs count. *)
let tiny_profile jobs =
  { Experiments.sizes = [ 8 ]; fga_sizes = [ 7 ]; seeds = 1;
    bare_steps_factor = 25; jobs }

let grid_tables_jobs_invariant () =
  let tables jobs = Experiments.e4_e5 (tiny_profile jobs) in
  let reference = tables 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "e4_e5 tables identical under jobs=%d" jobs)
        true
        (tables jobs = reference))
    [ 2; 4 ]

let pool_tests =
  [ Alcotest.test_case "map_array: order preserved for jobs ∈ {1,2,4,64}"
      `Quick pool_map_identity;
    Alcotest.test_case "map_array: smallest-index error wins deterministically"
      `Quick pool_error_deterministic;
    Alcotest.test_case "map_list: order preserved" `Quick pool_map_list;
    Alcotest.test_case "experiment grid: tables jobs-invariant" `Quick
      grid_tables_jobs_invariant ]

let () =
  Alcotest.run "scheduler"
    [ ("full-vs-incremental", scheduler_tests); ("pool", pool_tests) ]

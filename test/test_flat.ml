(* Flat data-path engine: bitset unit tests, streaming-generator vs
   materialized-graph CSR equivalence, the flat-vs-classic differential
   (same movers, same counters, same final states, under every registered
   daemon) and partition-count invariance of the domain-parallel run. *)

open Helpers
module Bits = Ssreset_flat.Bits
module Flat = Ssreset_flat.Flat
module Progs = Ssreset_flat.Progs
module Csr = Ssreset_graph.Csr
module Sym = Ssreset_check.Sym
module Registry = Ssreset_check.Registry

(* ------------------------------- bitset -------------------------------- *)

let bits_reference_tests =
  [
    test "bits agrees with a reference bool array under random churn"
      (fun () ->
        let n = 5000 in
        let b = Bits.create n in
        let r = Array.make n false in
        let count = ref 0 in
        let st = rng 42 in
        for _ = 1 to 20_000 do
          let u = Random.State.int st n in
          if Random.State.bool st then begin
            let changed = Bits.add b u in
            check_bool "add changed" (not r.(u)) changed;
            if changed then incr count;
            r.(u) <- true
          end
          else begin
            let changed = Bits.remove b u in
            check_bool "remove changed" r.(u) changed;
            if changed then decr count;
            r.(u) <- false
          end
        done;
        check_int "count_range full" !count (Bits.count_range b 0 n);
        for u = 0 to n - 1 do
          if Bits.mem b u <> r.(u) then
            Alcotest.failf "mem mismatch at %d" u
        done;
        let members = ref [] in
        Bits.iter b (fun u -> members := u :: !members);
        let members = List.rev !members in
        let expected =
          List.filter (fun u -> r.(u)) (List.init n Fun.id)
        in
        check (Alcotest.list Alcotest.int) "iter ascending" expected members;
        List.iteri
          (fun i u -> check_int (Fmt.str "nth %d" i) u (Bits.nth b i))
          expected;
        let st2 = rng 43 in
        for _ = 1 to 200 do
          let lo = Random.State.int st2 n in
          let hi = lo + Random.State.int st2 (n - lo + 1) in
          let got = ref [] in
          Bits.iter_range b lo hi (fun u -> got := u :: !got);
          let want = List.filter (fun u -> u >= lo && u < hi) expected in
          check (Alcotest.list Alcotest.int) "iter_range" want
            (List.rev !got);
          check_int "count_range" (List.length want)
            (Bits.count_range b lo hi);
          let q = Random.State.int st2 n in
          let want_geq =
            match List.filter (fun u -> u >= q) expected with
            | [] -> -1
            | u :: _ -> u
          in
          check_int "next_geq" want_geq (Bits.next_geq b q)
        done);
  ]

(* ------------------------ streaming CSR generators ---------------------- *)

let csr_equal name a b =
  check (Alcotest.array Alcotest.int)
    (name ^ " offsets")
    a.Csr.offsets b.Csr.offsets;
  check (Alcotest.array Alcotest.int) (name ^ " nbrs") a.Csr.nbrs b.Csr.nbrs

let csr_generator_tests =
  [
    test "streamed ring = CSR of materialized ring" (fun () ->
        List.iter
          (fun n ->
            csr_equal (Fmt.str "ring %d" n)
              (Csr.of_graph (Gen.ring n))
              (Csr.ring n))
          [ 3; 4; 5; 32; 101 ]);
    test "streamed torus = CSR of materialized torus" (fun () ->
        List.iter
          (fun (w, h) ->
            csr_equal
              (Fmt.str "torus %dx%d" w h)
              (Csr.of_graph (Gen.torus w h))
              (Csr.torus w h))
          [ (3, 3); (4, 5); (6, 3) ]);
    test "streamed random-regular-ish = CSR of materialized, same seed"
      (fun () ->
        List.iter
          (fun (seed, n, k) ->
            csr_equal
              (Fmt.str "rr n=%d k=%d seed=%d" n k seed)
              (Csr.of_graph (Gen.random_regular_ish (rng seed) n k))
              (Csr.random_regular_ish (rng seed) n k))
          [ (1, 16, 4); (2, 64, 4); (3, 200, 6); (9, 33, 3) ]);
    test "to_graph round-trips the zoo" (fun () ->
        List.iter
          (fun (name, g) ->
            let g' = Csr.to_graph (Csr.of_graph g) in
            check_int (name ^ " n") (Graph.n g) (Graph.n g');
            for u = 0 to Graph.n g - 1 do
              check (Alcotest.array Alcotest.int) (Fmt.str "%s nbrs %d" name u)
                (Graph.neighbors g u) (Graph.neighbors g' u)
            done)
          (graph_zoo ()));
  ]

(* ------------------------- flat vs classic engine ----------------------- *)

(* Instances whose IR is honest (fixtures excluded: toy-badsym's IR lies
   about the OCaml rules on purpose, so the flat compilation of its IR
   diverges from its classic run by design). *)
let sym_instances g =
  List.filter_map
    (fun (e : Registry.entry) ->
      Option.map (fun mk -> (e.Registry.name, mk g)) e.Registry.sym)
    Registry.entries
  @ [ ("unison-sdr-composed", Registry.unison_sdr_composed_sym g) ]

let value_list_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (f1, v1) (f2, v2) -> String.equal f1 f2 && Sym.value_equal v1 v2)
       a b

let outcome_str (o : Engine.outcome) =
  match o with
  | Engine.Stabilized -> "stabilized"
  | Engine.Terminal -> "terminal"
  | Engine.Step_limit -> "step-limit"

let differential_one ~label inst daemon_name seed =
  let module I = (val inst : Sym.INSTANCE) in
  let g = I.graph in
  let n = Graph.n g in
  let seed_rng = rng (0x5EED + seed) in
  let cfg0 =
    Array.init n (fun u ->
        let d = I.domain u in
        List.nth d (Random.State.int seed_rng (List.length d)))
  in
  let prog =
    Flat.compile ~csr:(Csr.of_graph g) ~params:I.param_values I.spec
  in
  Array.iteri (fun u s -> Flat.load prog u (I.encode s)) cfg0;
  let daemon = Option.get (Daemon.by_name daemon_name) in
  let classic_moved = ref [] in
  let res_c =
    Engine.run ~rng:(rng seed) ~max_steps:60 ~algorithm:I.algorithm ~graph:g
      ~daemon
      ~observer:(fun ~step:_ ~moved _ -> classic_moved := moved :: !classic_moved)
      cfg0
  in
  let flat_daemon = Option.get (Flat.daemon_of_name daemon_name) in
  let flat_moved = ref [] in
  let res_f =
    Flat.run ~rng:(rng seed) ~max_steps:60 ~stop_on_legitimate:false
      ~daemon:flat_daemon
      ~on_step:(fun ~step:_ ~moved -> flat_moved := moved :: !flat_moved)
      prog
  in
  check Alcotest.string (label ^ " outcome") (outcome_str res_c.Engine.outcome)
    (outcome_str res_f.Flat.outcome);
  check_int (label ^ " steps") res_c.Engine.steps res_f.Flat.steps;
  check_int (label ^ " moves") res_c.Engine.moves res_f.Flat.moves;
  check_int (label ^ " rounds") res_c.Engine.rounds res_f.Flat.rounds;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    (label ^ " moves_per_rule") res_c.Engine.moves_per_rule
    res_f.Flat.moves_per_rule;
  check (Alcotest.array Alcotest.int) (label ^ " moves_per_process")
    res_c.Engine.moves_per_process res_f.Flat.moves_per_process;
  check
    (Alcotest.list (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string)))
    (label ^ " per-step movers")
    (List.rev !classic_moved) (List.rev !flat_moved);
  Array.iteri
    (fun u s ->
      if not (value_list_equal (I.encode s) (Flat.read prog u)) then
        Alcotest.failf "%s: final state differs at process %d" label u)
    res_c.Engine.final;
  match I.is_legitimate with
  | Some legit ->
      check_bool
        (label ^ " legitimacy tracking")
        (legit res_c.Engine.final) res_f.Flat.legitimate
  | None -> ()

let differential_tests =
  [
    test "flat = classic on the zoo, every daemon, 20 seeds" (fun () ->
        List.iter
          (fun (gname, g) ->
            List.iter
              (fun (iname, inst) ->
                List.iter
                  (fun dname ->
                    for seed = 1 to 20 do
                      differential_one
                        ~label:(Fmt.str "%s/%s/%s/#%d" gname iname dname seed)
                        inst dname seed
                    done)
                  (Daemon.names ()))
              (sym_instances g))
          (graph_zoo ()));
  ]

(* ------------------------- partition invariance ------------------------- *)

let scale_prog ?(n = 8192) ?(faults = 40) ?(seed = 77) () =
  let e = Option.get (Progs.find "unison-sdr") in
  let p = Progs.build e (Csr.ring n) in
  Progs.init_ground p;
  Progs.perturb p ~rng:(rng seed) faults;
  p

let partition_tests =
  [
    test "partitioned run is invariant in the partition count" (fun () ->
        let reference = ref None in
        List.iter
          (fun parts ->
            let p = scale_prog () in
            let r = Flat.run_partitioned ~parts p in
            check Alcotest.string
              (Fmt.str "outcome parts=%d" parts)
              "stabilized" (outcome_str r.Flat.outcome);
            let summary =
              ( Progs.digest p r,
                r.Flat.moves_per_rule,
                Array.to_list r.Flat.moves_per_process )
            in
            match !reference with
            | None -> reference := Some summary
            | Some s ->
                let d0, mr0, mp0 = s and d1, mr1, mp1 = summary in
                check Alcotest.string (Fmt.str "digest parts=%d" parts) d0 d1;
                check
                  (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
                  (Fmt.str "rules parts=%d" parts)
                  mr0 mr1;
                check (Alcotest.list Alcotest.int)
                  (Fmt.str "per-process parts=%d" parts)
                  mp0 mp1)
          [ 1; 2; 4; 8 ]);
    test "partitioned = sequential synchronous" (fun () ->
        let p_seq = scale_prog () in
        let r_seq = Flat.run ~daemon:Flat.Synchronous p_seq in
        let p_par = scale_prog () in
        let r_par = Flat.run_partitioned ~parts:4 p_par in
        check Alcotest.string "digest" (Progs.digest p_seq r_seq)
          (Progs.digest p_par r_par);
        check_int "rounds" r_seq.Flat.rounds r_par.Flat.rounds);
    test "tiny graphs tolerate more parts than alignment blocks" (fun () ->
        List.iter
          (fun parts ->
            let p = scale_prog ~n:100 ~faults:7 () in
            let r = Flat.run_partitioned ~parts p in
            check Alcotest.string
              (Fmt.str "outcome n=100 parts=%d" parts)
              "stabilized" (outcome_str r.Flat.outcome))
          [ 1; 2; 4 ]);
  ]

(* ----------------------- composed IR stays honest ----------------------- *)

let composed_ir_tests =
  [
    test "composed U-SDR IR passes the symbolic differential" (fun () ->
        List.iter
          (fun g ->
            let diff =
              Sym.check ~max_views_per_process:400 ~max_steps:150
                (Registry.unison_sdr_composed_sym g)
            in
            if not (Sym.diff_ok diff) then
              Alcotest.failf "composed IR mismatch: %a"
                Fmt.(list ~sep:(any "; ") Sym.pp_mismatch)
                diff.Sym.mismatches)
          [ Gen.ring 5; Gen.path 4; Gen.star 4 ]);
  ]

(* ----------------------- observability transparency --------------------- *)

module Prof = Ssreset_obs.Prof
module ObsMetrics = Ssreset_obs.Metrics
module Monitor = Ssreset_obs.Monitor

(* Run the same instance from the same configuration twice — bare, then
   with a profiler attached — and require bit-identity: every counter and
   the final state checksum.  Then cross-check the profiler against the
   run: step/move tallies and the per-rule moves.R counters must equal the
   result's totals. *)
let prof_transparent_one ~label inst daemon_name seed =
  let module I = (val inst : Sym.INSTANCE) in
  let g = I.graph in
  let n = Graph.n g in
  let seed_rng = rng (0x5EED + seed) in
  let cfg0 =
    Array.init n (fun u ->
        let d = I.domain u in
        List.nth d (Random.State.int seed_rng (List.length d)))
  in
  let make () =
    let prog =
      Flat.compile ~csr:(Csr.of_graph g) ~params:I.param_values I.spec
    in
    Array.iteri (fun u s -> Flat.load prog u (I.encode s)) cfg0;
    prog
  in
  let daemon = Option.get (Flat.daemon_of_name daemon_name) in
  let p_bare = make () in
  let r_bare =
    Flat.run ~rng:(rng seed) ~max_steps:60 ~stop_on_legitimate:false ~daemon
      p_bare
  in
  let p_prof = make () in
  let prof = Prof.create () in
  let r_prof =
    Flat.run ~rng:(rng seed) ~max_steps:60 ~stop_on_legitimate:false ~prof
      ~daemon p_prof
  in
  check Alcotest.string (label ^ " outcome") (outcome_str r_bare.Flat.outcome)
    (outcome_str r_prof.Flat.outcome);
  check_int (label ^ " steps") r_bare.Flat.steps r_prof.Flat.steps;
  check_int (label ^ " moves") r_bare.Flat.moves r_prof.Flat.moves;
  check_int (label ^ " rounds") r_bare.Flat.rounds r_prof.Flat.rounds;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    (label ^ " moves_per_rule") r_bare.Flat.moves_per_rule
    r_prof.Flat.moves_per_rule;
  check (Alcotest.array Alcotest.int)
    (label ^ " moves_per_process")
    r_bare.Flat.moves_per_process r_prof.Flat.moves_per_process;
  check_int (label ^ " checksum") (Flat.checksum p_bare)
    (Flat.checksum p_prof);
  check_int (label ^ " prof steps") r_prof.Flat.steps (Prof.steps prof);
  check_int (label ^ " prof moves") r_prof.Flat.moves (Prof.moves prof);
  let m = Prof.metrics prof in
  List.iter
    (fun (rule, count) ->
      check_int
        (label ^ " moves." ^ rule)
        count
        (ObsMetrics.counter_value (ObsMetrics.counter m ("moves." ^ rule))))
    r_prof.Flat.moves_per_rule

let observability_tests =
  [
    test "prof-on = prof-off on the zoo, every daemon, 5 seeds" (fun () ->
        List.iter
          (fun (gname, g) ->
            List.iter
              (fun (iname, inst) ->
                List.iter
                  (fun dname ->
                    for seed = 1 to 5 do
                      prof_transparent_one
                        ~label:(Fmt.str "%s/%s/%s/#%d" gname iname dname seed)
                        inst dname seed
                    done)
                  (Daemon.names ()))
              (sym_instances g))
          (graph_zoo ()));
    test "partitioned prof-on digest invariant, parts in {1,2,4,8}" (fun () ->
        let p_ref = scale_prog () in
        let r_ref = Flat.run_partitioned ~parts:2 p_ref in
        let d_ref = Progs.digest p_ref r_ref in
        List.iter
          (fun parts ->
            let p = scale_prog () in
            let prof = Prof.create () in
            let r = Flat.run_partitioned ~prof ~parts p in
            check Alcotest.string
              (Fmt.str "digest parts=%d prof-on" parts)
              d_ref (Progs.digest p r);
            check_int
              (Fmt.str "prof steps parts=%d" parts)
              r.Flat.steps (Prof.steps prof);
            check_int
              (Fmt.str "prof moves parts=%d" parts)
              r.Flat.moves (Prof.moves prof);
            let m = Prof.metrics prof in
            List.iter
              (fun (rule, count) ->
                check_int
                  (Fmt.str "moves.%s parts=%d" rule parts)
                  count
                  (ObsMetrics.counter_value
                     (ObsMetrics.counter m ("moves." ^ rule))))
              r.Flat.moves_per_rule;
            check
              (Alcotest.float 0.001)
              (Fmt.str "flat.parts gauge parts=%d" parts)
              (float_of_int parts)
              (ObsMetrics.gauge_value (ObsMetrics.gauge m "flat.parts")))
          [ 1; 2; 4; 8 ]);
    test "monitor latches the move and round bounds once" (fun () ->
        let p = scale_prog ~n:1024 ~faults:30 () in
        let monitor = Monitor.create () in
        let r =
          Flat.run ~daemon:Flat.Synchronous ~monitor ~moves_bound:1
            ~rounds_bound:1 p
        in
        check_true "run made enough moves to trip" (r.Flat.moves > 1);
        check_int "both bounds latched exactly once" 2
          (Monitor.anomaly_count monitor);
        let names =
          List.sort compare
            (List.map
               (fun (a : Monitor.anomaly) -> a.Monitor.monitor)
               (Monitor.anomalies monitor))
        in
        check
          (Alcotest.list Alcotest.string)
          "anomaly names" [ "moves-bound"; "rounds-bound" ] names;
        (* Results are unchanged by monitoring. *)
        let p2 = scale_prog ~n:1024 ~faults:30 () in
        let r2 = Flat.run ~daemon:Flat.Synchronous p2 in
        check Alcotest.string "digest unchanged by monitors"
          (Progs.digest p2 r2) (Progs.digest p r));
    test "heartbeat fires every interval with live counters" (fun () ->
        let p = scale_prog ~n:1024 ~faults:30 () in
        let beats = ref [] in
        let r =
          Flat.run ~daemon:Flat.Synchronous
            ~heartbeat:(2, fun b -> beats := b :: !beats)
            p
        in
        let beats = List.rev !beats in
        check_int "one beat per 2 steps" (r.Flat.steps / 2)
          (List.length beats);
        List.iteri
          (fun i (b : Flat.beat) ->
            check_int (Fmt.str "beat %d step" i) (2 * (i + 1)) b.Flat.hb_steps;
            check_true
              (Fmt.str "beat %d moves monotone" i)
              (b.Flat.hb_moves > 0 && b.Flat.hb_moves <= r.Flat.moves);
            check_true
              (Fmt.str "beat %d legit tracked" i)
              (b.Flat.hb_legit >= 0 && b.Flat.hb_legit <= 1024);
            check_true
              (Fmt.str "beat %d availability in range" i)
              (b.Flat.hb_availability >= 0. && b.Flat.hb_availability <= 1.))
          beats;
        (* heartbeat leaves the run unchanged *)
        let p2 = scale_prog ~n:1024 ~faults:30 () in
        let r2 = Flat.run ~daemon:Flat.Synchronous p2 in
        check Alcotest.string "digest unchanged by heartbeat"
          (Progs.digest p2 r2) (Progs.digest p r));
    test "partitioned heartbeat and monitors leave the run unchanged"
      (fun () ->
        let p = scale_prog ~n:2048 ~faults:40 () in
        let monitor = Monitor.create () in
        let beats = ref 0 in
        let r =
          Flat.run_partitioned ~parts:4 ~monitor ~moves_bound:1
            ~heartbeat:(3, fun _ -> incr beats)
            p
        in
        check_int "beats" (r.Flat.steps / 3) !beats;
        check_int "moves bound latched" 1 (Monitor.anomaly_count monitor);
        let p2 = scale_prog ~n:2048 ~faults:40 () in
        let r2 = Flat.run_partitioned ~parts:4 p2 in
        check Alcotest.string "digest unchanged" (Progs.digest p2 r2)
          (Progs.digest p r));
  ]

(* ----------------------------- scale smoke ------------------------------ *)

let scale_tests =
  [
    test "streamed ring n=20000 stabilizes from 50 faults" (fun () ->
        let p = scale_prog ~n:20_000 ~faults:50 ~seed:5 () in
        let r = Flat.run ~daemon:Flat.Synchronous p in
        check Alcotest.string "outcome" "stabilized"
          (outcome_str r.Flat.outcome);
        check_true "made progress" (r.Flat.moves > 0));
  ]

let () =
  Alcotest.run "flat"
    [
      ("bits", bits_reference_tests);
      ("csr-generators", csr_generator_tests);
      ("differential", differential_tests);
      ("partitioned", partition_tests);
      ("observability", observability_tests);
      ("composed-ir", composed_ir_tests);
      ("scale", scale_tests);
    ]

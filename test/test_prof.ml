(* Profiling layer: histogram accuracy and algebra, metrics snapshot/diff,
   the engine's prof-on ≡ prof-off guarantee over the whole algorithm zoo,
   streaming window emission (validated by the Proffile reader), and pool
   worker-utilization reporting. *)

module Histogram = Ssreset_obs.Histogram
module Metrics = Ssreset_obs.Metrics
module Prof = Ssreset_obs.Prof
module Proffile = Ssreset_obs.Proffile
module Sink = Ssreset_obs.Sink
module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Pool = Ssreset_sim.Pool
module Stats = Ssreset_sim.Stats
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Registry = Ssreset_check.Registry
module Finite = Ssreset_check.Finite
module Runner = Ssreset_expt.Runner

(* ----------------------------- histogram ------------------------------- *)

(* Log-bucketed percentiles must track the exact (numpy-style) percentile
   within the histogram's relative-error envelope: sub_bits = 5 gives
   buckets of relative width 2^-5, so the midpoint estimate is within a
   few percent of any value in the bucket.  The +1 absolute slack covers
   the small-value linear region. *)
let skewed_samples rng n =
  List.init n (fun _ ->
      (* skewed, duration-like values over several decades *)
      let e = Random.State.int rng 20 in
      (1 lsl e) + Random.State.int rng (1 + (1 lsl e)))

let test_ps = [ 0.; 10.; 50.; 90.; 99.; 100. ]

(* Dense samples: the gap between adjacent order statistics vanishes, so
   the interpolating Stats.percentile and the histogram's nearest-rank
   bucket midpoint must agree within the bucket envelope. *)
let percentile_tracks_exact () =
  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun n ->
      let samples = skewed_samples rng n in
      let h = Histogram.create () in
      List.iter (Histogram.record h) samples;
      let floats = List.map float_of_int samples in
      List.iter
        (fun p ->
          let exact = Stats.percentile floats ~p in
          let est = Histogram.percentile h ~p in
          let tol = (exact /. 12.) +. 2.0 in
          if Float.abs (est -. exact) > tol then
            Alcotest.failf
              "n=%d p=%.0f: histogram %.1f vs exact %.1f (tolerance %.1f)" n
              p est exact tol)
        test_ps)
    [ 1_000; 5_000 ]

(* Sparse samples: interpolation between distant order statistics is a
   different estimator, so compare against the nearest-rank reference —
   the same selection rule the histogram uses (first sample at which the
   cumulative count reaches p% of the total). *)
let percentile_tracks_nearest_rank () =
  let rng = Random.State.make [| 43 |] in
  let nearest_rank sorted ~p =
    let n = Array.length sorted in
    if p <= 0. then sorted.(0)
    else
      let k = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (k - 1)))
  in
  List.iter
    (fun n ->
      let samples = skewed_samples rng n in
      let h = Histogram.create () in
      List.iter (Histogram.record h) samples;
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      List.iter
        (fun p ->
          let reference = float_of_int (nearest_rank sorted ~p) in
          let est = Histogram.percentile h ~p in
          let tol = (reference /. 16.) +. 1.0 in
          if Float.abs (est -. reference) > tol then
            Alcotest.failf
              "n=%d p=%.0f: histogram %.1f vs nearest-rank %.1f (tolerance \
               %.1f)"
              n p est reference tol)
        test_ps)
    [ 1; 2; 7; 100 ]

let percentile_extremes_are_exact () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 3; 17; 170_001; 9 ];
  Alcotest.(check int) "min" 3 (Histogram.min_value h);
  Alcotest.(check int) "max" 170_001 (Histogram.max_value h);
  Alcotest.(check (float 0.)) "p0 = min" 3. (Histogram.percentile h ~p:0.);
  (* p100 is clamped to the recorded max, never a bucket upper bound *)
  Alcotest.(check bool)
    "p100 <= max" true
    (Histogram.percentile h ~p:100. <= 170_001.)

(* Merging histograms is the union of their recordings: associative,
   commutative, and identical to recording everything into one histogram.
   to_json is a faithful canonical form, so equality of the JSON values is
   equality of the histograms. *)
let merge_is_sum () =
  let rng = Random.State.make [| 7 |] in
  let sample () = Random.State.int rng 1_000_000 in
  let xs = List.init 500 (fun _ -> sample ()) in
  let ys = List.init 300 (fun _ -> sample ()) in
  let zs = List.init 40 (fun _ -> sample ()) in
  let of_list l =
    let h = Histogram.create () in
    List.iter (Histogram.record h) l;
    h
  in
  let json h = Ssreset_obs.Json.to_string (Histogram.to_json h) in
  let all = of_list (xs @ ys @ zs) in
  (* ((x ∪ y) ∪ z) *)
  let left = of_list xs in
  Histogram.merge_into ~dst:left (of_list ys);
  Histogram.merge_into ~dst:left (of_list zs);
  (* (x ∪ (y ∪ z)) *)
  let yz = of_list ys in
  Histogram.merge_into ~dst:yz (of_list zs);
  let right = of_list xs in
  Histogram.merge_into ~dst:right yz;
  (* (z ∪ y) ∪ x — commuted *)
  let comm = of_list zs in
  Histogram.merge_into ~dst:comm (of_list ys);
  Histogram.merge_into ~dst:comm (of_list xs);
  Alcotest.(check string) "assoc left" (json all) (json left);
  Alcotest.(check string) "assoc right" (json all) (json right);
  Alcotest.(check string) "commuted" (json all) (json comm);
  Alcotest.(check int) "count" (List.length (xs @ ys @ zs))
    (Histogram.count all)

let bucket_boundaries_round_trip () =
  (* Single recorded values, including every power of two across the
     range and its neighbors: count/sum/min/max are exact, and the p50
     midpoint stays inside the value's bucket (relative error 2^-5). *)
  let values =
    List.concat_map
      (fun e -> [ (1 lsl e) - 1; 1 lsl e; (1 lsl e) + 1 ])
      [ 1; 4; 5; 6; 12; 20; 40; 61 ]
  in
  List.iter
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      Alcotest.(check int) (Printf.sprintf "count %d" v) 1 (Histogram.count h);
      Alcotest.(check int) (Printf.sprintf "sum %d" v) v (Histogram.sum h);
      Alcotest.(check int) (Printf.sprintf "min %d" v) v (Histogram.min_value h);
      Alcotest.(check int) (Printf.sprintf "max %d" v) v (Histogram.max_value h);
      let p50 = Histogram.percentile h ~p:50. in
      let tol = Float.max 1. (float_of_int v /. 32.) in
      if Float.abs (p50 -. float_of_int v) > tol then
        Alcotest.failf "v=%d: p50 %.1f off by more than %.1f" v p50 tol)
    values

let json_round_trip () =
  let h = Histogram.create ~sub_bits:4 () in
  List.iter (Histogram.record h) [ 0; 1; 5; 1_000; 123_456_789 ];
  match Histogram.of_json (Histogram.to_json h) with
  | Error msg -> Alcotest.failf "of_json failed: %s" msg
  | Ok h' ->
      Alcotest.(check string)
        "identical canonical form"
        (Ssreset_obs.Json.to_string (Histogram.to_json h))
        (Ssreset_obs.Json.to_string (Histogram.to_json h'))

let histogram_tests =
  [ Alcotest.test_case "percentiles track Stats.percentile (dense samples)"
      `Quick percentile_tracks_exact;
    Alcotest.test_case "percentiles track nearest-rank (sparse samples)"
      `Quick percentile_tracks_nearest_rank;
    Alcotest.test_case "min/max/p0/p100 are exact" `Quick
      percentile_extremes_are_exact;
    Alcotest.test_case "merge is associative, commutative, lossless" `Quick
      merge_is_sum;
    Alcotest.test_case "bucket boundaries: single values stay in-bucket"
      `Quick bucket_boundaries_round_trip;
    Alcotest.test_case "to_json / of_json round-trips" `Quick json_round_trip
  ]

(* -------------------------- metrics snapshot --------------------------- *)

let snapshot_diff_no_double_count () =
  let m = Metrics.create () in
  let a = Metrics.counter m "moves.A" in
  let b = Metrics.counter m "moves.B" in
  let _g = Metrics.gauge m "some.gauge" in
  Metrics.add a 5;
  let snap0 = Metrics.snapshot m in
  Metrics.add a 2;
  Metrics.add b 3;
  Alcotest.(check (list (pair string int)))
    "only changed counters, by increment"
    [ ("moves.A", 2); ("moves.B", 3) ]
    (Metrics.diff snap0 m);
  (* windowed emission pattern: re-snapshot, then only new increments show *)
  let snap1 = Metrics.snapshot m in
  Metrics.add b 4;
  Alcotest.(check (list (pair string int)))
    "second window sees only its own delta"
    [ ("moves.B", 4) ]
    (Metrics.diff snap1 m);
  Alcotest.(check (list (pair string int)))
    "unchanged window diff is empty" []
    (Metrics.diff (Metrics.snapshot m) m)

let metrics_tests =
  [ Alcotest.test_case "snapshot/diff: increments only, no double counting"
      `Quick snapshot_diff_no_double_count ]

(* ------------------- prof-on ≡ prof-off over the zoo ------------------- *)

let same_result equal (a : _ Engine.result) (b : _ Engine.result) =
  a.Engine.outcome = b.Engine.outcome
  && a.Engine.steps = b.Engine.steps
  && a.Engine.moves = b.Engine.moves
  && a.Engine.rounds = b.Engine.rounds
  && a.Engine.moves_per_rule = b.Engine.moves_per_rule
  && a.Engine.moves_per_process = b.Engine.moves_per_process
  && Array.length a.Engine.final = Array.length b.Engine.final
  && Array.for_all2 equal a.Engine.final b.Engine.final

(* Fresh daemon per run: round-robin carries a cursor, so a shared daemon
   value would leak state from the prof-off run into the prof-on one. *)
let fresh_daemon name = List.assoc name (Daemon.registry ())

let seeds = 5

let prof_transparency_case (entry : Registry.entry) =
  Alcotest.test_case
    (Printf.sprintf "%s: prof-off ≡ prof-on (every daemon, %d seeds)"
       entry.Registry.name seeds)
    `Quick
    (fun () ->
      let g = Gen.ring (max 5 entry.Registry.min_n) in
      let module F = (val entry.Registry.instance g : Finite.FINITE) in
      let random_cfg rng =
        Array.init (Graph.n F.graph) (fun u ->
            let dom = F.domain u in
            List.nth dom (Random.State.int rng (List.length dom)))
      in
      let run ?prof ~daemon_name ~seed cfg =
        Engine.run
          ~rng:(Random.State.make [| seed |])
          ~max_steps:2_000 ?prof ~algorithm:F.algorithm ~graph:F.graph
          ~daemon:(fresh_daemon daemon_name) (Array.copy cfg)
      in
      List.iter
        (fun daemon_name ->
          for seed = 1 to seeds do
            let cfg = random_cfg (Random.State.make [| seed; 31 |]) in
            let off = run ~daemon_name ~seed cfg in
            let p = Prof.create () in
            let on = run ~prof:p ~daemon_name ~seed cfg in
            if not (same_result F.algorithm.Ssreset_sim.Algorithm.equal off on)
            then
              Alcotest.failf
                "%s under %s, seed %d: attaching a profiler changed the run"
                F.name daemon_name seed;
            (* the profiler actually counted what the engine did *)
            Alcotest.(check int)
              (Printf.sprintf "%s/%s/%d: prof steps" F.name daemon_name seed)
              on.Engine.steps (Prof.steps p);
            Alcotest.(check int)
              (Printf.sprintf "%s/%s/%d: prof moves" F.name daemon_name seed)
              on.Engine.moves (Prof.moves p)
          done)
        (Daemon.names ()))

let prof_rule_attribution () =
  (* per-rule counters must agree exactly with the engine's own tally *)
  let graph = Gen.ring 24 in
  let p = Prof.create () in
  let obs =
    Runner.unison_composed ~prof:p ~graph
      ~daemon:(fresh_daemon "central-random") ~seed:4 ()
  in
  let m = Prof.metrics p in
  let moves =
    List.fold_left
      (fun acc rule ->
        acc + Metrics.counter_value (Metrics.counter m ("moves." ^ rule)))
      0
      [ "U-inc"; "SDR-R"; "SDR-RB"; "SDR-RF"; "SDR-C" ]
  in
  Alcotest.(check int) "moves.R counters sum to total moves" obs.Runner.moves
    moves

let engine_tests =
  List.map prof_transparency_case Registry.entries
  @ [ Alcotest.test_case "U∘SDR: per-rule counters sum to total moves"
        `Quick prof_rule_attribution ]

(* ------------------------- streaming windows --------------------------- *)

let windows_validate_round_trip () =
  let path = Filename.temp_file "ssreset-prof-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let graph = Gen.ring 32 in
      let sink = Sink.create path in
      Sink.write sink
        (Prof.manifest ~system:"unison" ~family:"ring" ~n:32 ~m:32 ~seed:2
           ~daemon:"central-random" ~window_steps:16 ());
      let p = Prof.create ~window_steps:16 ~sink () in
      let obs =
        Runner.unison_composed ~prof:p ~graph
          ~daemon:(fresh_daemon "central-random") ~seed:2 ()
      in
      Prof.write_summary p;
      Sink.close sink;
      match Proffile.load_file path with
      | Error msg -> Alcotest.failf "profile rejected: %s" msg
      | Ok prof ->
          Alcotest.(check int)
            "summary steps = engine steps" obs.Runner.steps
            prof.Proffile.summary.Proffile.steps;
          Alcotest.(check bool)
            "windows were streamed" true
            (List.length prof.Proffile.windows >= 2);
          (* lap-based phases tile the loop: attributed time covers most of
             the run's wall clock *)
          let attributed = float_of_int (Proffile.phase_total_ns prof) /. 1e9 in
          let wall = prof.Proffile.summary.Proffile.wall_s in
          Alcotest.(check bool)
            (Printf.sprintf "phase coverage (%.1f%% of %.4fs)"
               (100. *. attributed /. wall)
               wall)
            true
            (wall > 0. && attributed >= 0.5 *. wall && attributed <= 1.1 *. wall))

let window_tests =
  [ Alcotest.test_case
      "profiled run streams windows that Proffile validates" `Quick
      windows_validate_round_trip ]

(* -------------------------------- pool --------------------------------- *)

let pool_reports_utilization () =
  let p = Prof.create () in
  let xs = Array.init 64 (fun i -> i) in
  let busy_work x =
    (* a few microseconds per job so busy_ns is nonzero *)
    let acc = ref x in
    for i = 1 to 20_000 do
      acc := (!acc * 31) + i
    done;
    !acc
  in
  let expected = Array.map busy_work xs in
  let got = Pool.map_array ~jobs:2 ~prof:p busy_work xs in
  Alcotest.(check (array int)) "results unchanged by profiling" expected got;
  let m = Prof.metrics p in
  Alcotest.(check int) "pool.jobs counts every job" 64
    (Metrics.counter_value (Metrics.counter m "pool.jobs"));
  let util = Metrics.gauge_value (Metrics.gauge m "pool.utilization") in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.3f in (0, 1]" util)
    true
    (util > 0. && util <= 1.0);
  let jobs_sum =
    Metrics.counter_value (Metrics.counter m "pool.worker0.jobs")
    + Metrics.counter_value (Metrics.counter m "pool.worker1.jobs")
  in
  Alcotest.(check int) "per-worker job counts partition the work" 64 jobs_sum;
  Alcotest.(check int) "job duration histogram saw every job" 64
    (Histogram.count (Prof.histogram p "pool.job_ns"))

let team_attributes_barrier_and_busy () =
  let p = Prof.create () in
  let size = 2 in
  let team = Pool.Team.create ~prof:p ~size () in
  let phases = 5 in
  let slots = Array.make size 0 in
  for _ = 1 to phases do
    Pool.Team.run team (fun w ->
        let acc = ref w in
        for i = 1 to 20_000 do
          acc := (!acc * 31) + i
        done;
        slots.(w) <- slots.(w) + !acc)
  done;
  Pool.Team.shutdown team;
  let m = Prof.metrics p in
  Alcotest.(check int) "pool.team.phases counts every barrier" phases
    (Metrics.counter_value (Metrics.counter m "pool.team.phases"));
  Alcotest.(check (float 0.001)) "pool.team.workers" (float_of_int size)
    (Metrics.gauge_value (Metrics.gauge m "pool.team.workers"));
  Alcotest.(check int) "job histogram saw every phase body" (phases * size)
    (Histogram.count (Prof.histogram p "pool.team.job_ns"));
  for w = 0 to size - 1 do
    let busy =
      Metrics.gauge_value
        (Metrics.gauge m (Printf.sprintf "pool.worker%d.busy_s" w))
    in
    Alcotest.(check bool)
      (Printf.sprintf "worker %d busy_s > 0" w)
      true (busy > 0.)
  done;
  (* Barrier waits land in the phase.barrier timer: the helper's park spans
     tile the team lifetime, so there is at least one span per phase. *)
  let barrier = Prof.timer p "phase.barrier" in
  Alcotest.(check bool) "barrier wait spans recorded" true
    (Prof.timer_count barrier >= phases);
  Alcotest.(check bool) "barrier wait time non-negative" true
    (Prof.timer_total_ns barrier >= 0)

let team_unprofiled_unchanged () =
  (* Without ?prof the team records nothing — and an unprofiled team must
     produce the same results as a profiled one. *)
  let run_team prof =
    let team = Pool.Team.create ?prof ~size:3 () in
    let out = Array.make 3 0 in
    for round = 1 to 4 do
      Pool.Team.run team (fun w -> out.(w) <- out.(w) + (round * (w + 1)))
    done;
    Pool.Team.shutdown team;
    out
  in
  let bare = run_team None in
  let p = Prof.create () in
  let profiled = run_team (Some p) in
  Alcotest.(check (array int)) "results unchanged by profiling" bare profiled

let pool_tests =
  [ Alcotest.test_case "pool ?prof reports utilization, results unchanged"
      `Quick pool_reports_utilization;
    Alcotest.test_case "team ?prof attributes busy and barrier time" `Quick
      team_attributes_barrier_and_busy;
    Alcotest.test_case "team results identical with and without ?prof" `Quick
      team_unprofiled_unchanged ]

let () =
  Alcotest.run "prof"
    [ ("histogram", histogram_tests);
      ("metrics", metrics_tests);
      ("engine", engine_tests);
      ("windows", window_tests);
      ("pool", pool_tests) ]

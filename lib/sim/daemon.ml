module Graph = Ssreset_graph.Graph

type context = {
  step : int;
  graph : Graph.t;
  enabled : int list;
  rule_name : int -> string;
}

type t = {
  daemon_name : string;
  select : Random.State.t -> context -> int list;
}

let pick_random rng l =
  match l with
  | [] -> invalid_arg "Daemon.pick_random: empty list"
  | l -> List.nth l (Random.State.int rng (List.length l))

let synchronous =
  { daemon_name = "synchronous"; select = (fun _ ctx -> ctx.enabled) }

let central_random =
  {
    daemon_name = "central-random";
    select = (fun rng ctx -> [ pick_random rng ctx.enabled ]);
  }

let central_first =
  {
    daemon_name = "central-first";
    select =
      (fun _ ctx ->
        match ctx.enabled with
        | u :: _ -> [ u ]
        | [] -> invalid_arg "central_first: no enabled process");
  }

let central_last =
  {
    daemon_name = "central-last";
    select =
      (fun _ ctx ->
        match List.rev ctx.enabled with
        | u :: _ -> [ u ]
        | [] -> invalid_arg "central_last: no enabled process");
  }

let round_robin () =
  let cursor = ref 0 in
  {
    daemon_name = "round-robin";
    select =
      (fun _ ctx ->
        (* First enabled process at or after the cursor, wrapping. *)
        let n = Graph.n ctx.graph in
        let enabled = Array.make n false in
        List.iter (fun u -> enabled.(u) <- true) ctx.enabled;
        let rec find k =
          let u = (!cursor + k) mod n in
          if enabled.(u) then u else find (k + 1)
        in
        let u = find 0 in
        cursor := (u + 1) mod n;
        [ u ]);
  }

let distributed_random p =
  if p <= 0.0 || p > 1.0 then invalid_arg "distributed_random: need 0 < p <= 1";
  {
    daemon_name = Printf.sprintf "distributed-random(p=%.2f)" p;
    select =
      (fun rng ctx ->
        let chosen =
          List.filter (fun _ -> Random.State.float rng 1.0 < p) ctx.enabled
        in
        match chosen with [] -> [ pick_random rng ctx.enabled ] | l -> l);
  }

let locally_central_random =
  {
    daemon_name = "locally-central-random";
    select =
      (fun rng ctx ->
        let arr = Array.of_list ctx.enabled in
        (* Shuffle, then greedily keep processes with no kept neighbor. *)
        for i = Array.length arr - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let t = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- t
        done;
        let kept = Hashtbl.create 16 in
        let ok u =
          Graph.for_all_neighbors ctx.graph u ~f:(fun v ->
              not (Hashtbl.mem kept v))
        in
        Array.iter (fun u -> if ok u then Hashtbl.add kept u ()) arr;
        List.filter (Hashtbl.mem kept) ctx.enabled);
  }

let adversarial_rule ~prefer =
  let rank name =
    let rec index i = function
      | [] -> max_int
      | p :: _ when String.equal p name -> i
      | _ :: rest -> index (i + 1) rest
    in
    index 0 prefer
  in
  {
    daemon_name =
      Printf.sprintf "adversarial-rule(%s)" (String.concat ">" prefer);
    select =
      (fun rng ctx ->
        let best =
          List.fold_left
            (fun acc u -> min acc (rank (ctx.rule_name u)))
            max_int ctx.enabled
        in
        let candidates =
          List.filter (fun u -> rank (ctx.rule_name u) = best) ctx.enabled
        in
        [ pick_random rng candidates ]);
  }

let starve victim =
  {
    daemon_name = Printf.sprintf "starve(%d)" victim;
    select =
      (fun rng ctx ->
        match List.filter (fun u -> u <> victim) ctx.enabled with
        | [] -> ctx.enabled
        | others -> [ pick_random rng others ]);
  }

let check_selection ctx chosen =
  if chosen = [] then invalid_arg "daemon selected an empty set";
  List.iter
    (fun u ->
      if not (List.mem u ctx.enabled) then
        invalid_arg
          (Printf.sprintf "daemon selected disabled process %d at step %d" u
             ctx.step))
    chosen

let all_standard () =
  [
    synchronous;
    central_first;
    central_last;
    central_random;
    round_robin ();
    distributed_random 0.25;
    distributed_random 0.5;
    distributed_random 0.9;
    locally_central_random;
    starve 0;
  ]

let standard_prefer = [ "U-inc"; "FGA-Clr"; "FGA-P1"; "FGA-P2"; "FGA-Q" ]

let registry () =
  [
    ("synchronous", synchronous);
    ("central-random", central_random);
    ("central-first", central_first);
    ("central-last", central_last);
    ("round-robin", round_robin ());
    ("distributed-random", distributed_random 0.5);
    ("locally-central", locally_central_random);
    ("adversarial", adversarial_rule ~prefer:standard_prefer);
    ("starve", starve 0);
  ]

let names () = List.map fst (registry ())
let by_name name = List.assoc_opt name (registry ())

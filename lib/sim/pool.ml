type job_error = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

exception Job_failed of job_error

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Jobs are claimed off a shared atomic counter in index order, and every
   result lands in its input slot — so the output (values *and* the choice
   of surfaced error) depends only on the inputs, never on how the OS
   scheduled the domains.  Workers never share mutable state beyond the
   counter and their own result slots. *)
let map_array ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length xs in
  let collect results =
    (* Deterministic error surfacing: the failure at the smallest index
       wins, whichever domain hit it first. *)
    Array.iteri
      (fun _ r ->
        match r with
        | Some (Error e) -> raise (Job_failed e)
        | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false)
      results
  in
  if jobs <= 1 || n <= 1 then
    collect
      (Array.mapi
         (fun index x ->
           match f x with
           | v -> Some (Ok v)
           | exception exn ->
               Some
                 (Error
                    { index; exn; backtrace = Printexc.get_raw_backtrace () }))
         xs)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let index = Atomic.fetch_and_add next 1 in
        if index < n then begin
          (results.(index) <-
             (match f xs.(index) with
             | v -> Some (Ok v)
             | exception exn ->
                 Some
                   (Error
                      { index; exn; backtrace = Printexc.get_raw_backtrace () })));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    collect results
  end

let map_list ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))

let () =
  Printexc.register_printer (function
    | Job_failed { index; exn; _ } ->
        Some
          (Printf.sprintf "Pool.Job_failed(job %d: %s)" index
             (Printexc.to_string exn))
    | _ -> None)

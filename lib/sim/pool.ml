module Histogram = Ssreset_obs.Histogram
module Metrics = Ssreset_obs.Metrics
module Prof = Ssreset_obs.Prof

type job_error = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

exception Job_failed of job_error

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Jobs are claimed off a shared atomic counter in index order, and every
   result lands in its input slot — so the output (values *and* the choice
   of surfaced error) depends only on the inputs, never on how the OS
   scheduled the domains.  Workers never share mutable state beyond the
   counter and their own result slots — profiling respects this: each
   worker accumulates busy time into its own slot and its own histogram,
   merged into the profiler only after the joins, on the calling domain. *)
let map_array ?jobs ?prof f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length xs in
  let sequential = jobs <= 1 || n <= 1 in
  let workers = if sequential then 1 else min jobs n in
  let t_start = match prof with Some _ -> Prof.now_ns () | None -> 0 in
  let busy_ns = Array.make workers 0 in
  let jobs_done = Array.make workers 0 in
  let job_hists =
    match prof with
    | Some _ -> Array.init workers (fun _ -> Histogram.create ())
    | None -> [||]
  in
  let run_job w x =
    match prof with
    | None -> f x
    | Some _ -> (
        let t0 = Prof.now_ns () in
        let finish () =
          let dt = Prof.now_ns () - t0 in
          busy_ns.(w) <- busy_ns.(w) + dt;
          jobs_done.(w) <- jobs_done.(w) + 1;
          Histogram.record job_hists.(w) dt
        in
        match f x with
        | v ->
            finish ();
            v
        | exception exn ->
            let bt = Printexc.get_raw_backtrace () in
            finish ();
            Printexc.raise_with_backtrace exn bt)
  in
  let collect results =
    (* Deterministic error surfacing: the failure at the smallest index
       wins, whichever domain hit it first. *)
    Array.iteri
      (fun _ r ->
        match r with
        | Some (Error e) -> raise (Job_failed e)
        | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false)
      results
  in
  let emit_prof () =
    match prof with
    | None -> ()
    | Some p ->
        let wall_ns = Prof.now_ns () - t_start in
        let m = Prof.metrics p in
        Metrics.add (Metrics.counter m "pool.jobs") n;
        Metrics.set (Metrics.gauge m "pool.workers") (float_of_int workers);
        let total_busy = Array.fold_left ( + ) 0 busy_ns in
        Array.iteri
          (fun w b ->
            let g =
              Metrics.gauge m (Printf.sprintf "pool.worker%d.busy_s" w)
            in
            Metrics.set g (Metrics.gauge_value g +. (float_of_int b /. 1e9));
            Metrics.add
              (Metrics.counter m (Printf.sprintf "pool.worker%d.jobs" w))
              jobs_done.(w))
          busy_ns;
        (* Fraction of the workers' combined wall clock actually spent in
           jobs — the work-stealing loop's idle tail shows up here. *)
        Metrics.set
          (Metrics.gauge m "pool.utilization")
          (if wall_ns > 0 then
             float_of_int total_busy
             /. (float_of_int wall_ns *. float_of_int workers)
           else 0.);
        let dst = Prof.histogram p "pool.job_ns" in
        Array.iter (fun h -> Histogram.merge_into ~dst h) job_hists
  in
  if sequential then begin
    let results =
      Array.mapi
        (fun index x ->
          match run_job 0 x with
          | v -> Some (Ok v)
          | exception exn ->
              Some
                (Error
                   { index; exn; backtrace = Printexc.get_raw_backtrace () }))
        xs
    in
    emit_prof ();
    collect results
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker w () =
      let rec loop () =
        let index = Atomic.fetch_and_add next 1 in
        if index < n then begin
          (results.(index) <-
             (match run_job w xs.(index) with
             | v -> Some (Ok v)
             | exception exn ->
                 Some
                   (Error
                      { index; exn; backtrace = Printexc.get_raw_backtrace () })));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    emit_prof ();
    collect results
  end

let map_list ?jobs ?prof f xs =
  Array.to_list (map_array ?jobs ?prof f (Array.of_list xs))

module Team = struct
  (* Worker-private instrumentation slots: each worker writes only its own
     index (no sharing, no atomics on the hot path); everything is merged
     into the profiler at {!shutdown}, on the calling domain, after the
     joins — the same discipline as [map_array]. *)
  type obs = {
    p : Prof.t;
    busy_ns : int array;  (** time inside phase bodies, per worker *)
    wait_ns : int array;  (** barrier/park time, per worker *)
    busy_hists : Histogram.t array;
    wait_hists : Histogram.t array;
    mutable phases : int;
  }

  type t = {
    size : int;
    mutex : Mutex.t;
    cond : Condition.t;
    mutable epoch : int;
    mutable job : (int -> unit) option;
    mutable finished : int;  (** helpers done with the current epoch *)
    mutable stop : bool;
    mutable errors : job_error list;
    mutable helpers : unit Domain.t list;
    obs : obs option;
  }

  let size t = t.size

  let record_wait t w t0 =
    match t.obs with
    | None -> ()
    | Some o ->
        let dt = Prof.now_ns () - t0 in
        o.wait_ns.(w) <- o.wait_ns.(w) + dt;
        Histogram.record o.wait_hists.(w) dt

  let record_busy t w t0 =
    match t.obs with
    | None -> ()
    | Some o ->
        let dt = Prof.now_ns () - t0 in
        o.busy_ns.(w) <- o.busy_ns.(w) + dt;
        Histogram.record o.busy_hists.(w) dt

  (* Helpers sleep on the condition between phases; spawning them once per
     run (not per phase) is what makes a 3-phase step affordable.  [seen_ns]
     is when this worker last became idle — the park that follows (barrier
     wait plus any sequential work the caller does between phases) is
     attributed to it, so worker laps tile the team's whole lifetime. *)
  let rec helper_loop t w seen seen_ns =
    Mutex.lock t.mutex;
    while (not t.stop) && t.epoch = seen do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      (* final park, so per-worker time covers up to shutdown *)
      record_wait t w seen_ns
    end
    else begin
      let epoch = t.epoch in
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      record_wait t w seen_ns;
      let tb = match t.obs with Some _ -> Prof.now_ns () | None -> 0 in
      let err =
        match job w with
        | () -> None
        | exception exn ->
            Some { index = w; exn; backtrace = Printexc.get_raw_backtrace () }
      in
      record_busy t w tb;
      let idle_ns = match t.obs with Some _ -> Prof.now_ns () | None -> 0 in
      Mutex.lock t.mutex;
      (match err with Some e -> t.errors <- e :: t.errors | None -> ());
      t.finished <- t.finished + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      helper_loop t w epoch idle_ns
    end

  let create ?prof ~size () =
    let size = max 1 size in
    let obs =
      Option.map
        (fun p ->
          {
            p;
            busy_ns = Array.make size 0;
            wait_ns = Array.make size 0;
            busy_hists = Array.init size (fun _ -> Histogram.create ());
            wait_hists = Array.init size (fun _ -> Histogram.create ());
            phases = 0;
          })
        prof
    in
    let t =
      {
        size;
        mutex = Mutex.create ();
        cond = Condition.create ();
        epoch = 0;
        job = None;
        finished = 0;
        stop = false;
        errors = [];
        helpers = [];
        obs;
      }
    in
    let t0 = match obs with Some _ -> Prof.now_ns () | None -> 0 in
    t.helpers <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () -> helper_loop t (i + 1) 0 t0));
    t

  let run t fn =
    (match t.obs with Some o -> o.phases <- o.phases + 1 | None -> ());
    if t.size = 1 then begin
      let tb = match t.obs with Some _ -> Prof.now_ns () | None -> 0 in
      match fn 0 with
      | () -> record_busy t 0 tb
      | exception exn ->
          record_busy t 0 tb;
          raise exn
    end
    else begin
      Mutex.lock t.mutex;
      t.job <- Some fn;
      t.finished <- 0;
      t.errors <- [];
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      let tb = match t.obs with Some _ -> Prof.now_ns () | None -> 0 in
      let own =
        match fn 0 with
        | () -> None
        | exception exn ->
            Some { index = 0; exn; backtrace = Printexc.get_raw_backtrace () }
      in
      record_busy t 0 tb;
      let tw = match t.obs with Some _ -> Prof.now_ns () | None -> 0 in
      Mutex.lock t.mutex;
      while t.finished < t.size - 1 do
        Condition.wait t.cond t.mutex
      done;
      let errs = t.errors in
      Mutex.unlock t.mutex;
      record_wait t 0 tw;
      let all = match own with Some e -> e :: errs | None -> errs in
      match List.sort (fun a b -> compare a.index b.index) all with
      | [] -> ()
      | e :: _ -> raise (Job_failed e)
    end

  (* Merge the worker-private slots into the profiler: per-worker busy and
     barrier gauges (accumulating, [map_array]'s naming so reports cover
     both pools), the barrier-wait spans as the [phase.barrier] timer
     (percentiles in the prof summary, and the waits count toward the
     multi-worker wall-clock coverage check), and the phase-body durations
     as the [pool.team.job_ns] histogram. *)
  let emit_obs t =
    match t.obs with
    | None -> ()
    | Some o ->
        let m = Prof.metrics o.p in
        Metrics.add (Metrics.counter m "pool.team.phases") o.phases;
        Metrics.set
          (Metrics.gauge m "pool.team.workers")
          (float_of_int t.size);
        for w = 0 to t.size - 1 do
          let acc name ns =
            let g = Metrics.gauge m (Printf.sprintf "pool.worker%d.%s" w name) in
            Metrics.set g (Metrics.gauge_value g +. (float_of_int ns /. 1e9))
          in
          acc "busy_s" o.busy_ns.(w);
          acc "barrier_s" o.wait_ns.(w)
        done;
        let barrier = Prof.timer o.p "phase.barrier" in
        Array.iteri
          (fun w h -> Prof.merge_spans barrier ~total_ns:o.wait_ns.(w) h)
          o.wait_hists;
        let dst = Prof.histogram o.p "pool.team.job_ns" in
        Array.iter (fun h -> Histogram.merge_into ~dst h) o.busy_hists

  let shutdown t =
    if not t.stop then begin
      Mutex.lock t.mutex;
      t.stop <- true;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      List.iter Domain.join t.helpers;
      t.helpers <- [];
      emit_obs t
    end
end

let () =
  Printexc.register_printer (function
    | Job_failed { index; exn; _ } ->
        Some
          (Printf.sprintf "Pool.Job_failed(job %d: %s)" index
             (Printexc.to_string exn))
    | _ -> None)

(** Daemons — the scheduling adversaries of the model (§2.2).

    A daemon selects, at each step, a nonempty subset of the enabled
    processes.  The {e distributed unfair} daemon of the paper is the set of
    all such selection functions; every daemon below is an instance of it,
    so any bound proven under the unfair daemon must hold under each of
    them.  Randomized daemons draw from the [Random.State.t] passed by the
    engine, keeping runs reproducible. *)

type context = {
  step : int;  (** 0-based step index *)
  graph : Ssreset_graph.Graph.t;
  enabled : int list;  (** nonempty, sorted *)
  rule_name : int -> string;
      (** name of the rule the process would execute if activated *)
}

type t = {
  daemon_name : string;
  select : Random.State.t -> context -> int list;
      (** must return a nonempty subset of [ctx.enabled] *)
}

val synchronous : t
(** Activates every enabled process. *)

val central_random : t
(** Activates exactly one enabled process, uniformly at random. *)

val central_first : t
(** Activates the enabled process with the smallest index — a deterministic
    central daemon. *)

val central_last : t
(** Activates the enabled process with the largest index. *)

val round_robin : unit -> t
(** Central daemon cycling through process indices; fresh mutable cursor per
    call, so build one per run. *)

val distributed_random : float -> t
(** [distributed_random p] activates each enabled process independently with
    probability [p]; if the coin flips select nobody, one random enabled
    process is activated (the daemon must be distributed). *)

val locally_central_random : t
(** Activates a random maximal subset of enabled processes that is
    independent in the graph (no two activated processes are neighbors). *)

val adversarial_rule : prefer:string list -> t
(** Central daemon that prefers processes whose enabled rule's name appears
    in [prefer] (earlier in the list = higher priority); used to stress
    specific phases, e.g. starving resets by preferring input-algorithm
    rules. *)

val starve : int -> t
(** [starve u] never activates process [u] unless it is the only enabled
    process — the canonical unfairness witness. *)

val check_selection : context -> int list -> unit
(** Validates a selection (nonempty, subset of enabled); raises
    [Invalid_argument] otherwise.  The engine calls this on every step. *)

val all_standard : unit -> t list
(** A representative daemon zoo used by tests and experiments: synchronous,
    central (first/last/random/round-robin), distributed-random at several
    densities, locally-central, and starvation. *)

val standard_prefer : string list
(** Default rule-name priorities for the stress [adversarial_rule] daemon:
    input-algorithm moves over resets. *)

val registry : unit -> (string * t) list
(** The single name → daemon table: every user-facing surface (CLI [--daemon],
    {!Ssreset_expt.Runner.daemon_by_name}, experiment sweeps, docs) derives
    from this list, so names cannot drift.  Fresh daemons on every call
    (round-robin carries a cursor). *)

val names : unit -> string list
(** [List.map fst (registry ())]. *)

val by_name : string -> t option
(** Lookup in {!registry}; [None] for unknown names. *)

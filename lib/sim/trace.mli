(** Execution traces: record and pretty-print runs.

    A trace records every configuration of an execution together with the
    (process, rule) pairs activated at each step.  Traces are meant for
    examples, debugging and fine-grained tests — for long benchmark runs use
    the engine's aggregate counters instead. *)

type 'state entry = {
  step : int;
  moved : (int * string) list;  (** activated processes and their rules *)
  config : 'state array;  (** configuration {e after} the step *)
}

type 'state t = {
  initial : 'state array;
  entries : 'state entry list;  (** in execution order *)
}

val record :
  ?rng:Random.State.t ->
  ?max_steps:int ->
  ?stop:('state array -> bool) ->
  algorithm:'state Algorithm.t ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Daemon.t ->
  'state array ->
  'state t * 'state Engine.result
(** Run the engine while recording every step. *)

val length : 'state t -> int
(** Number of steps recorded. *)

val configs : 'state t -> 'state array list
(** All configurations, starting with the initial one. *)

val steps_pairs : 'state t -> ('state array * 'state array * (int * string) list) list
(** Consecutive configuration pairs [(before, after, moved)] — convenient
    for checking step-closure properties in tests. *)

val pp :
  pp_state:'state Fmt.t -> ?max_entries:int -> unit -> 'state t Fmt.t
(** Renders the trace as one line per step: moved processes and the new
    configuration. *)

val moved_processes : 'state t -> int list
(** All processes that moved at least once, sorted. *)

val rule_sequence : 'state t -> int -> string list
(** [rule_sequence t u]: the sequence of rule names executed by process [u],
    in order — used to check Theorem 4's per-segment rule language. *)

(** Delta-encoded traces: the initial configuration plus, per step, only the
    movers' new states.  Memory is [O(n + moves)] instead of the full
    representation's [O(n · steps)], so long runs fit — this is what the
    causality builder consumes.  Conversion to and from the full {!t} is
    lossless (movers rewrite exactly their own state; everything else is
    carried over). *)
module Compact : sig
  type 'state delta = {
    step : int;
    writes : (int * string * 'state) list;
        (** [(process, rule, new state)] for each mover of the step. *)
  }

  type 'state t = {
    initial : 'state array;
    deltas : 'state delta list;  (** in execution order *)
  }

  val record :
    ?rng:Random.State.t ->
    ?max_steps:int ->
    ?stop:('state array -> bool) ->
    algorithm:'state Algorithm.t ->
    graph:Ssreset_graph.Graph.t ->
    daemon:Daemon.t ->
    'state array ->
    'state t * 'state Engine.result
  (** Like {!Trace.record} but storing only the movers' states: no [O(n)]
      copy per step. *)

  val length : 'state t -> int
  val moves : 'state t -> (int * (int * string) list) list
  (** Per-step [(step, [(process, rule); ...])] mover lists. *)

  val final : 'state t -> 'state array
  (** The configuration after replaying every delta. *)
end

val compact : 'state t -> 'state Compact.t
(** Lossless re-encoding of a recorded trace. *)

val expand : 'state Compact.t -> 'state t
(** Inverse of {!compact}: replays the deltas into full configurations. *)

(** Zero-dependency worker pool over OCaml 5 domains, with deterministic
    results.

    Built for the experiment grids: every grid cell owns its RNG seed, so
    cells are embarrassingly parallel — the only thing parallelism must not
    change is the output.  [map_array]/[map_list] guarantee exactly that:
    results are returned in input order and error propagation is
    deterministic, so tables and JSON artifacts are byte-identical for any
    [jobs] count (the test suite asserts jobs ∈ {1, 2, 4} agree).

    Jobs must be independent: [f] runs concurrently on several domains, so
    it must not touch shared mutable state (build graphs, daemons and RNG
    states {e inside} the job). *)

type job_error = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

exception Job_failed of job_error
(** Raised by [map_array]/[map_list] when a job raised.  All jobs still run
    to completion (or failure); the failure with the {e smallest input
    index} is the one surfaced, regardless of domain scheduling. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val map_array :
  ?jobs:int -> ?prof:Ssreset_obs.Prof.t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~jobs f xs] is [Array.map f xs] computed by up to [jobs]
    domains (the calling domain included; default {!default_jobs}).  With
    [jobs <= 1] or fewer than two elements no domain is spawned and [f]
    runs inline, in order.

    [prof] reports per-worker utilization without touching determinism:
    each worker accumulates its busy nanoseconds and job count privately
    (one slot and one {!Ssreset_obs.Histogram} per worker) and everything
    is merged into the profiler after the joins — [pool.jobs] and
    per-worker [pool.workerN.jobs] counters, [pool.workerN.busy_s]
    gauges, the [pool.utilization] gauge (combined busy time over
    [workers × wall]) and the [pool.job_ns] duration histogram.  Repeated
    calls accumulate (the [pool.workers] and [pool.utilization] gauges
    describe the latest call). *)

val map_list :
  ?jobs:int -> ?prof:Ssreset_obs.Prof.t -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map_array}. *)

(** Persistent worker team for phase-synchronous algorithms.

    [map_array] spawns fresh domains per call — fine for coarse grid cells,
    hopeless for the flat engine's partitioned stepping, which needs
    several parallel phases {e per step}.  A team spawns its helper domains
    once; each {!Team.run} call is one parallel phase ending in a barrier,
    so a 3-phase step costs three broadcasts, not three spawns. *)
module Team : sig
  type t

  val create : ?prof:Ssreset_obs.Prof.t -> size:int -> unit -> t
  (** Team of [max 1 size] workers: [size - 1] helper domains (spawned
      now, parked on a condition variable) plus the calling domain.

      [prof] makes barrier wait and per-domain busy time attributable from
      any Team user, pay-as-you-go (with no profiler the phase path takes
      no clock reads).  Each worker accumulates two private slots — time
      inside phase bodies, and park/barrier time between them — merged on
      the calling domain at {!shutdown}: accumulating
      [pool.workerN.busy_s]/[pool.workerN.barrier_s] gauges, the
      [pool.team.phases] counter and [pool.team.workers] gauge, the
      [pool.team.job_ns] phase-body histogram, and every wait span folded
      into the [phase.barrier] timer so barrier percentiles appear in the
      profile's phase section (and the waits count toward multi-worker
      wall-clock coverage). *)

  val size : t -> int

  val run : t -> (int -> unit) -> unit
  (** [run t fn] executes [fn w] once for every worker index
      [w ∈ 0 .. size-1] — the caller runs [fn 0] — and returns only after
      {e all} of them finished (a full barrier).  If any worker raised,
      {!Job_failed} with the smallest worker index is raised after the
      barrier, like [map_array].  [fn] must confine writes to
      worker-private data (the flat engine partitions all arrays by
      1024-aligned node ranges; see {!Ssreset_flat.Bits.part_align}).
      Not reentrant: one [run] at a time per team, from the creating
      domain.  With [size = 1], [fn 0] runs inline with no
      synchronization. *)

  val shutdown : t -> unit
  (** Join the helper domains.  Idempotent; the team is unusable after. *)
end

(** Execution engine: atomic steps, moves, rounds, stabilization runs.

    Implements the semantics of §2.2–2.4 of the paper: at each step the
    daemon activates a nonempty subset of the enabled processes; every
    activated process atomically executes its enabled rule, all of them
    reading the {e same} (pre-step) configuration — composite atomicity.
    Moves and rounds are counted exactly per the paper's definitions,
    including neutralization-based rounds. *)

type outcome =
  | Stabilized  (** the [stop] predicate became true *)
  | Terminal  (** no process is enabled (and [stop] was false) *)
  | Step_limit  (** [max_steps] was exhausted first *)

type scheduler = [ `Full | `Incremental ]
(** How [run] keeps its enabled-rule table up to date between steps.

    [`Full] rescans every process after each step — the reference O(n·Δ)
    path, kept for cross-checking.  [`Incremental] (the default) re-evaluates
    only the closed neighborhoods of the processes that moved: a step changes
    only the movers' states, and a guard reads only the process's own view,
    so no other process can change enabled status.  Both schedulers maintain
    the exact same table and consume the RNG identically, so results are
    bit-identical — which the test suite asserts over the whole algorithm
    zoo, every daemon and many seeds. *)

type 'state result = {
  outcome : outcome;
  final : 'state array;
  steps : int;  (** atomic steps executed *)
  moves : int;  (** total rule executions *)
  moves_per_process : int array;
  moves_per_rule : (string * int) list;  (** sorted by rule name *)
  rounds : int;
      (** index of the round in which the run ended: the number of complete
          rounds executed, plus one if the final (partial) round contains at
          least one step.  "Stabilizes within r rounds" = [rounds <= r]. *)
  wall_s : float;  (** wall-clock seconds spent inside [run] *)
}

val run :
  ?rng:Random.State.t ->
  ?seed:int ->
  ?max_steps:int ->
  ?check_overlap:bool ->
  ?scheduler:scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?observer:(step:int -> moved:(int * string) list -> 'state array -> unit) ->
  ?on_step:(step:int -> enabled:int -> selected:int -> unit) ->
  ?on_round:(round:int -> steps:int -> moves:int -> 'state array -> unit) ->
  ?stop:('state array -> bool) ->
  algorithm:'state Algorithm.t ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Daemon.t ->
  'state array ->
  'state result
(** [run ~algorithm ~graph ~daemon cfg] executes from [cfg] until [stop]
    holds (checked on every configuration, including the initial one), the
    configuration is terminal, or [max_steps] (default 10_000_000) is
    reached.  [observer] is called after each step with the activated
    (process, rule-name) pairs and the {e new} configuration.  The initial
    configuration is not copied; pass a fresh array.

    When [rng] is absent the run allocates its own [Random.State] from
    [seed] (default 0), so an rng-less run is reproducible regardless of
    what other engine runs executed before it — there is no shared
    module-level state.

    [scheduler] selects how enabled rules are recomputed between steps (see
    {!type:scheduler}); it affects wall-clock only, never results.

    [prof] attaches a {!Ssreset_obs.Prof} profiler — pay-as-you-go like the
    telemetry hooks: with it absent the step loop does zero extra work, and
    results are bit-identical either way (asserted over the whole zoo by the
    test suite).  With it present the run attributes wall time to the
    [phase.scan] / [phase.select] / [phase.apply] / [phase.refresh] /
    [phase.neutralize] / [phase.callbacks] / [phase.stop] timers (lap-based:
    consecutive laps tile the loop, so the phase totals sum to the loop's
    wall time), attributes the apply phase to per-rule [rule.R] timers and
    [moves.R] counters, counts scheduler internals ([sched.touched] /
    [sched.evals] / [sched.dedup_hits] / [sched.table_flips], plus the
    per-step [sched.refresh_size] histogram), adds [Gc.quick_stat] deltas
    to the [gc.*] counters, accumulates the run's wall clock into the
    [engine.wall_s] gauge, and calls {!Ssreset_obs.Prof.tick} per step so
    windowed streaming works.  Instruments accumulate when several runs
    share one profiler.

    Telemetry hooks (both default to off, with zero per-step cost then):
    [on_step] receives, after each step, the sizes of the enabled and the
    activated sets — the raw material for scheduling-pressure metrics;
    [on_round] fires once per {e completed} round with cumulative step and
    move counts and the configuration that closed the round, {e after} the
    [observer] has seen the step, so observer-fed probes are consistent with
    the snapshot.

    [check_overlap] (default off) asserts on every step, via
    {!Algorithm.exclusive_rules}, that at most one guard fires per enabled
    process; a violation raises [Invalid_argument] naming the process and
    the overlapping rules.  Rule overlap makes the rule-list priority order
    load-bearing (Lemma 5 assumes pairwise exclusion), so traced or debugged
    runs should enable this. *)

val step :
  ?rng:Random.State.t ->
  ?seed:int ->
  ?check_overlap:bool ->
  ?on_enabled:(int list -> unit) ->
  algorithm:'state Algorithm.t ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Daemon.t ->
  step_index:int ->
  'state array ->
  ('state array * (int * string) list) option
(** One atomic step: [None] if the configuration is terminal, otherwise the
    next configuration and the activated (process, rule) pairs.
    [on_enabled] receives the (sorted, nonempty) enabled set before the
    daemon selects.  Exposed for fine-grained tests and traces.

    When [rng] is absent each call gets a {e fresh} state derived from
    [seed] (default 0) — so repeated rng-less calls are independent of call
    order; pass an explicit state to thread randomness across calls.
    [check_overlap] is as in {!run}. *)

val moves_of_rules : (string * int) list -> prefixes:string list -> int
(** Sum of the move counts of rules whose name starts with one of the given
    prefixes — e.g. counting only SDR moves in a composed run. *)

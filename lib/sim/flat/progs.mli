(** Catalogue of flat-engine programs: the registry algorithms whose
    symbolic specs are topology-parametric, paired with the parameter
    valuations the classic registry instances use ({!Ssreset_check.Registry}),
    plus the initial-configuration builders of the scale workload
    (legitimate ground state + [k] perturbed nodes — a 10⁶-node run then
    stabilizes in wall-clock seconds instead of replaying a worst case). *)

module Sym = Ssreset_check.Sym
module Csr = Ssreset_graph.Csr

type entry = {
  pname : string;
  describe : string;
  spec : Sym.spec;
  params_of_n : int -> (string * int) list;
}

val entries : entry list
(** [unison-sdr] (the composed U∘SDR system), [tail-unison],
    [min-unison]. *)

val find : string -> entry option
(** Exact name, then case-insensitive substring (unique match). *)

val build : entry -> Csr.t -> Flat.prog

val init_ground : Flat.prog -> unit
(** All fields to 0 — the all-[C], all-zero-clock configuration, which is
    legitimate for every catalogue entry. *)

val perturb : Flat.prog -> rng:Random.State.t -> int -> unit
(** Corrupt [k] distinct random nodes: ranged integer fields are redrawn
    uniformly from their declared range (via [Random.State.full_int] —
    min-unison's K = n²+1 overflows 30-bit draws), enum and bool fields
    uniformly from their constructors. *)

val init_random : Flat.prog -> rng:Random.State.t -> unit
(** Perturb every node — arbitrary initial configurations for tests. *)

val digest : Flat.prog -> Flat.result -> string
(** One deterministic line (outcome, steps, moves, rounds, state
    checksum — no wall-clock), the byte-comparable summary behind the
    scale-smoke partition-invariance gate. *)

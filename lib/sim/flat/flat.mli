(** The flat data-path engine: registry algorithms compiled from their
    symbolic rule IR ({!Ssreset_check.Sym}) onto unboxed state.

    The classic engine ({!Ssreset_sim.Engine}) is the semantic reference:
    per-process states are OCaml values, views are materialized records,
    guards are OCaml closures over them.  That representation is ideal for
    writing algorithms and hopeless at n = 10⁶.  This engine keeps {e one
    [int array] per declared field} (enums as constructor indices, bools
    as 0/1), adjacency in CSR form ({!Ssreset_graph.Csr}) and the enabled
    set in a two-level bitset ({!Bits}) — and obtains the rules by
    compiling the algorithm's IR to OCaml closures over those arrays.

    The compilation is {e semantics-preserving by construction and by
    test}: the IR itself is differentially validated against the OCaml
    rules ({!Ssreset_check.Sym.check}), and the flat runs are
    differentially validated against {!Ssreset_sim.Engine.run} — same
    per-step movers, same post-states, same step/move/round counts, under
    every registered daemon (the RNG draw sequence of each daemon is
    replicated draw-for-draw).

    {!run_partitioned} adds intra-run parallelism for the synchronous
    daemon: nodes are split into {!Bits.part_align}-aligned contiguous
    ranges, one {!Ssreset_sim.Pool.Team} worker per range, stepping in
    three barrier-separated phases (compute posts from the pre-state /
    write back / refresh).  Cross-range refresh work is handed off and
    replayed sequentially, and every shared write is either range-private
    or idempotent — so the results are identical for {e any} partition
    count, movers included. *)

module Sym = Ssreset_check.Sym
module Csr = Ssreset_graph.Csr

type kind = KInt | KBool | KEnum of string array

type prog
(** A compiled program: topology, parameter valuation, per-field state
    arrays and the rule closures' source IR. *)

val compile : csr:Csr.t -> params:(string * int) list -> Sym.spec -> prog
(** Compile a symbolic spec onto a topology.  The IR must pass
    {!Sym.well_formed}; every parameter it mentions must be bound in
    [params].  All fields start at 0 (first constructor / [false] / 0).
    @raise Invalid_argument on ill-formed IR, unbound parameters, or a
    constructor name shared by two enum sorts at different indices. *)

val n : prog -> int
val csr : prog -> Csr.t
val spec : prog -> Sym.spec
val params : prog -> (string * int) list
val fields : prog -> (string * kind) array
val rule_names : prog -> string array

val has_legitimacy : prog -> bool
(** Whether the spec carries [sp_legitimate] (enables [stop_on_legitimate]
    and {!result.legitimate}). *)

val load : prog -> int -> (string * Sym.value) list -> unit
(** Overwrite node [u]'s fields from a classic-engine encoding (the
    [encode] of a {!Sym.INSTANCE}); unmentioned fields are untouched. *)

val read : prog -> int -> (string * Sym.value) list
(** Node [u]'s state as values, in declared field order. *)

val set_int : prog -> field:string -> int -> int -> unit
(** [set_int p ~field u v]: raw write, for generators and perturbation. *)

val get_int : prog -> field:string -> int -> int

val checksum : prog -> int
(** Order-sensitive FNV-style hash of the whole state — the deterministic
    configuration fingerprint behind [--digest]. *)

(** {2 Daemons}

    Native mirrors of {!Ssreset_sim.Daemon.registry}, replicating each
    daemon's RNG draw sequence exactly (same draws, same order), so a flat
    run and a classic run from the same seed choose the same movers. *)

type daemon =
  | Synchronous
  | Central_random
  | Central_first
  | Central_last
  | Round_robin
  | Distributed_random of float
  | Locally_central
  | Adversarial of string list
  | Starve of int

val daemon_of_name : string -> daemon option
(** The nine registry names, with the registry's default arguments
    ([distributed-random] p = 0.5, [adversarial] the standard prefer
    list, [starve] victim 0). *)

val daemon_names : unit -> string list

(** {2 Running} *)

type result = {
  outcome : Ssreset_sim.Engine.outcome;
  steps : int;
  moves : int;
  moves_per_process : int array;
  moves_per_rule : (string * int) list;  (** sorted by rule name *)
  rounds : int;
  legitimate : bool;  (** final configuration; [true] when untracked *)
  wall_s : float;
}

type beat = {
  hb_steps : int;
  hb_moves : int;
  hb_enabled : int;  (** enabled-set size after the step *)
  hb_legit : int;  (** legitimate-node count; [-1] when untracked *)
  hb_availability : float;
      (** fraction of completed steps whose configuration was fully
          legitimate; [-1.] when untracked *)
  hb_moves_per_s : float;  (** over the last heartbeat interval *)
}
(** One [--heartbeat] progress sample.  [hb_legit] is O(dirty) incremental
    where the run already tracks legitimacy; otherwise a full rescan at
    the heartbeat boundary (amortized over the interval), or [-1] when the
    spec has no legitimacy predicate. *)

val run :
  ?rng:Random.State.t ->
  ?seed:int ->
  ?max_steps:int ->
  ?stop_on_legitimate:bool ->
  ?on_step:(step:int -> moved:(int * string) list -> unit) ->
  ?prof:Ssreset_obs.Prof.t ->
  ?monitor:Ssreset_obs.Monitor.t ->
  ?rounds_bound:int ->
  ?moves_bound:int ->
  ?heartbeat:int * (beat -> unit) ->
  daemon:daemon ->
  prog ->
  result
(** Sequential run from the current state (the final state stays readable
    through {!read} afterwards), mirroring {!Ssreset_sim.Engine.run}:
    ascending enabled list, movers act on the pre-state, incremental
    dirty-set refresh over the movers' closed neighborhoods, §2.4 round
    accounting (pending set refilled per round), terminal detection on an
    empty enabled set.  [stop_on_legitimate] (default [true], no-op
    without a legitimacy predicate) stops with [Stabilized] as soon as
    every node satisfies [sp_legitimate] — checked on the initial state
    too, like the classic engine's [stop].  [on_step] sees the movers of
    each executed step in selection order.

    Observability is pay-as-you-go: with [prof], [monitor] and [heartbeat]
    all absent the step loop is the exact uninstrumented code (no clock
    reads, no counter bumps) and the run is bit-identical to one without
    these parameters.  [prof] attributes wall time to the flat phases
    ([phase.scan]/[select]/[apply]/[refresh]/[callbacks] — the same
    lap-timer discipline as the classic engine) plus per-rule [rule.R]
    timers and [moves.R] counters, scheduler counters ([sched.touched],
    [sched.evals], [sched.dedup_hits], [sched.table_flips]) and the
    [sched.refresh_size] histogram; windows stream per the profiler's
    sink.  [monitor] latches the paper's convergence bounds:
    [moves_bound] (e.g. D·n²) trips anomaly [moves-bound], [rounds_bound]
    (e.g. 3n) trips [rounds-bound], each at most once.  [heartbeat]
    [(every, f)] calls [f] after every [every]-th step with a progress
    {!beat}. *)

val run_partitioned :
  ?max_steps:int ->
  ?stop_on_legitimate:bool ->
  ?prof:Ssreset_obs.Prof.t ->
  ?monitor:Ssreset_obs.Monitor.t ->
  ?rounds_bound:int ->
  ?moves_bound:int ->
  ?heartbeat:int * (beat -> unit) ->
  parts:int ->
  prog ->
  result
(** Synchronous-daemon run over [parts] worker domains (a fresh
    {!Ssreset_sim.Pool.Team}, shut down before returning).  Every counter
    and the final state are identical to [run ~daemon:Synchronous] for
    any [parts ≥ 1] — under the synchronous daemon every pending node
    moves or is neutralized each step, so rounds equal steps and the
    pending machinery is unnecessary.

    [prof]/[monitor]/[heartbeat] behave as in {!run}, with per-worker
    attribution instead of per-rule timers: each domain accumulates its
    phase laps ([phase.init]/[compute]/[write]/[refresh]) and GC deltas in
    private slots, merged into the one profiler stream after the barriers
    ({!Ssreset_obs.Prof.merge_spans}); the {!Ssreset_sim.Pool.Team}
    contributes [phase.barrier] wait spans and per-worker busy/barrier
    gauges; the sequential cross-boundary replay is timed as
    [phase.replay] and counted by [flat.frontier_handoffs] /
    [flat.frontier_replays].  Per-worker gauges
    [flat.workerN.compute_s]/[write_s]/[refresh_s]/[gc_minor_words]/
    [gc_major_words] and the [flat.parts] gauge feed [prof report]'s
    per-worker section and its multi-worker coverage check (phase laps
    tile [parts × wall]).  With all three absent, the phase bodies are the
    exact uninstrumented code. *)

module Sym = Ssreset_check.Sym
module Csr = Ssreset_graph.Csr
module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Pool = Ssreset_sim.Pool
module Prof = Ssreset_obs.Prof
module Metrics = Ssreset_obs.Metrics
module Histogram = Ssreset_obs.Histogram
module Monitor = Ssreset_obs.Monitor

type kind = KInt | KBool | KEnum of string array

type prog = {
  csr : Csr.t;
  spec : Sym.spec;
  params : (string * int) list;
  nf : int;
  field_names : string array;
  kinds : kind array;
  state : int array array;  (* [field].(node) *)
  rule_names : string array;
  ctor_idx : (string, int) Hashtbl.t;
}

let compile ~csr ~params (spec : Sym.spec) =
  let ir = spec.Sym.sp_ir in
  (match Sym.well_formed ir with
  | [] -> ()
  | errs ->
      invalid_arg
        (Printf.sprintf "Flat.compile(%s): ill-formed IR: %s" ir.Sym.ir_name
           (String.concat "; " errs)));
  List.iter
    (fun (p : Sym.param) ->
      if not (List.mem_assoc p.Sym.pname params) then
        invalid_arg
          (Printf.sprintf "Flat.compile(%s): unbound parameter %s"
             ir.Sym.ir_name p.Sym.pname))
    ir.Sym.params;
  let fields = Array.of_list ir.Sym.fields in
  let nf = Array.length fields in
  let field_names = Array.map fst fields in
  let kinds =
    Array.map
      (fun (_, ty) ->
        match (ty : Sym.ty) with
        | Sym.TInt -> KInt
        | Sym.TBool -> KBool
        | Sym.TEnum (_, cs) -> KEnum (Array.of_list cs))
      fields
  in
  let ctor_idx = Hashtbl.create 8 in
  Array.iter
    (fun (_, ty) ->
      match (ty : Sym.ty) with
      | Sym.TEnum (_, cs) ->
          List.iteri
            (fun i c ->
              match Hashtbl.find_opt ctor_idx c with
              | None -> Hashtbl.add ctor_idx c i
              | Some j when j = i -> ()
              | Some _ ->
                  invalid_arg
                    (Printf.sprintf
                       "Flat.compile(%s): constructor %s is ambiguous across \
                        enum sorts"
                       ir.Sym.ir_name c))
            cs
      | Sym.TInt | Sym.TBool -> ())
    fields;
  let n = Csr.n csr in
  {
    csr;
    spec;
    params;
    nf;
    field_names;
    kinds;
    state = Array.init nf (fun _ -> Array.make n 0);
    rule_names =
      Array.of_list (List.map (fun r -> r.Sym.rule) ir.Sym.rules);
    ctor_idx;
  }

let n p = Csr.n p.csr
let csr p = p.csr
let spec p = p.spec
let params p = p.params
let fields p = Array.mapi (fun i name -> (name, p.kinds.(i))) p.field_names
let rule_names p = p.rule_names
let has_legitimacy p = p.spec.Sym.sp_legitimate <> None

let field_index p name =
  let rec go i =
    if i >= p.nf then
      invalid_arg (Printf.sprintf "Flat: unknown field %s" name)
    else if String.equal p.field_names.(i) name then i
    else go (i + 1)
  in
  go 0

let int_of_value p f (v : Sym.value) =
  match (p.kinds.(f), v) with
  | KInt, Sym.VInt k -> k
  | KBool, Sym.VBool b -> if b then 1 else 0
  | KEnum _, Sym.VEnum c -> (
      match Hashtbl.find_opt p.ctor_idx c with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Flat: unknown constructor %s" c))
  | _ ->
      invalid_arg
        (Printf.sprintf "Flat: value of the wrong kind for field %s"
           p.field_names.(f))

let value_of_int p f k =
  match p.kinds.(f) with
  | KInt -> Sym.VInt k
  | KBool -> Sym.VBool (k <> 0)
  | KEnum cs -> Sym.VEnum cs.(k)

let load p u vals =
  List.iter
    (fun (name, v) ->
      let f = field_index p name in
      p.state.(f).(u) <- int_of_value p f v)
    vals

let read p u =
  Array.to_list
    (Array.mapi (fun f name -> (name, value_of_int p f p.state.(f).(u)))
       p.field_names)

let set_int p ~field u v = p.state.(field_index p field).(u) <- v
let get_int p ~field u = p.state.(field_index p field).(u)

let checksum p =
  let h = ref 0x811c9dc5 in
  let mask = 0x3FFFFFFFFFFFFFFF in
  for f = 0 to p.nf - 1 do
    let a = p.state.(f) in
    for u = 0 to Array.length a - 1 do
      h := (!h lxor (a.(u) + 1)) * 0x01000193 land mask
    done
  done;
  !h

(* ------------------------------ compiler ------------------------------- *)

(* One evaluator = one set of closures over the shared state arrays plus a
   private cursor cell.  The cell is mutable, so partitioned runs compile
   one evaluator per worker domain; the state arrays stay shared. *)
type cell = { mutable u : int; mutable nbr : int }

type ev = {
  cell : cell;
  guards : (unit -> bool) array;
  assigns : (int * (unit -> int)) array array;  (* per rule *)
  legit : (unit -> bool) option;
}

let make_ev p =
  let cell = { u = 0; nbr = 0 } in
  let offsets = p.csr.Csr.offsets in
  let nbrs = p.csr.Csr.nbrs in
  let param_val name =
    match List.assoc_opt name p.params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Flat: unbound parameter %s" name)
  in
  let ctor c =
    match Hashtbl.find_opt p.ctor_idx c with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Flat: unknown constructor %s" c)
  in
  let rec cterm (t : Sym.term) : unit -> int =
    match t with
    | Sym.Num k -> fun () -> k
    | Sym.Bool b ->
        let k = if b then 1 else 0 in
        fun () -> k
    | Sym.Param name ->
        let v = param_val name in
        fun () -> v
    | Sym.Var (Sym.Self, f) ->
        let a = p.state.(field_index p f) in
        fun () -> a.(cell.u)
    | Sym.Var (Sym.Nbr, f) ->
        let a = p.state.(field_index p f) in
        fun () -> a.(cell.nbr)
    | Sym.Add (a, b) ->
        let ca = cterm a and cb = cterm b in
        fun () -> ca () + cb ()
    | Sym.Sub (a, b) ->
        let ca = cterm a and cb = cterm b in
        fun () -> ca () - cb ()
    | Sym.Neg a ->
        let ca = cterm a in
        fun () -> -ca ()
    | Sym.Ite (c, a, b) ->
        let cc = cform c and ca = cterm a and cb = cterm b in
        fun () -> if cc () then ca () else cb ()
    | Sym.Ctor c ->
        let k = ctor c in
        fun () -> k
    | Sym.Min_nbr (filt, body, dflt) ->
        let cf = cform filt and cb = cterm body and cd = cterm dflt in
        fun () ->
          let saved = cell.nbr in
          let best = ref max_int and found = ref false in
          let u = cell.u in
          for i = offsets.(u) to offsets.(u + 1) - 1 do
            cell.nbr <- nbrs.(i);
            if cf () then begin
              found := true;
              let v = cb () in
              if v < !best then best := v
            end
          done;
          cell.nbr <- saved;
          if !found then !best else cd ()
    | Sym.Mex_nbr (filt, body) ->
        let cf = cform filt and cb = cterm body in
        fun () ->
          let saved = cell.nbr in
          let u = cell.u in
          let lo = offsets.(u) and hi = offsets.(u + 1) in
          (* mex <= deg, so a degree-sized seen-bitmap suffices; values
             outside [0, deg] can never be the answer. *)
          let deg = hi - lo in
          let seen = Array.make (deg + 1) false in
          for i = lo to hi - 1 do
            cell.nbr <- nbrs.(i);
            if cf () then begin
              let v = cb () in
              if v >= 0 && v <= deg then seen.(v) <- true
            end
          done;
          cell.nbr <- saved;
          let c = ref 0 in
          while seen.(!c) do
            incr c
          done;
          !c
    | Sym.Count_nbr filt ->
        let cf = cform filt in
        fun () ->
          let saved = cell.nbr in
          let u = cell.u in
          let k = ref 0 in
          for i = offsets.(u) to offsets.(u + 1) - 1 do
            cell.nbr <- nbrs.(i);
            if cf () then incr k
          done;
          cell.nbr <- saved;
          !k
  and cform (f : Sym.form) : unit -> bool =
    match f with
    | Sym.Const b -> fun () -> b
    | Sym.Not f ->
        let cf = cform f in
        fun () -> not (cf ())
    | Sym.And fs ->
        let cs = Array.of_list (List.map cform fs) in
        fun () ->
          let ok = ref true in
          let i = ref 0 in
          let k = Array.length cs in
          while !ok && !i < k do
            if not (cs.(!i) ()) then ok := false;
            incr i
          done;
          !ok
    | Sym.Or fs ->
        let cs = Array.of_list (List.map cform fs) in
        fun () ->
          let hit = ref false in
          let i = ref 0 in
          let k = Array.length cs in
          while (not !hit) && !i < k do
            if cs.(!i) () then hit := true;
            incr i
          done;
          !hit
    | Sym.Imp (a, b) ->
        let ca = cform a and cb = cform b in
        fun () -> (not (ca ())) || cb ()
    | Sym.Eq (a, b) ->
        let ca = cterm a and cb = cterm b in
        fun () -> ca () = cb ()
    | Sym.Le (a, b) ->
        let ca = cterm a and cb = cterm b in
        fun () -> ca () <= cb ()
    | Sym.Lt (a, b) ->
        let ca = cterm a and cb = cterm b in
        fun () -> ca () < cb ()
    | Sym.Forall_nbr body ->
        let cb = cform body in
        fun () ->
          let saved = cell.nbr in
          let ok = ref true in
          let u = cell.u in
          let i = ref offsets.(u) in
          let stop = offsets.(u + 1) in
          while !ok && !i < stop do
            cell.nbr <- nbrs.(!i);
            if not (cb ()) then ok := false;
            incr i
          done;
          cell.nbr <- saved;
          !ok
    | Sym.Exists_nbr body ->
        let cb = cform body in
        fun () ->
          let saved = cell.nbr in
          let hit = ref false in
          let u = cell.u in
          let i = ref offsets.(u) in
          let stop = offsets.(u + 1) in
          while (not !hit) && !i < stop do
            cell.nbr <- nbrs.(!i);
            if cb () then hit := true;
            incr i
          done;
          cell.nbr <- saved;
          !hit
  in
  let rules = Array.of_list p.spec.Sym.sp_ir.Sym.rules in
  {
    cell;
    guards = Array.map (fun r -> cform r.Sym.guard) rules;
    assigns =
      Array.map
        (fun r ->
          Array.of_list
            (List.map
               (fun (f, t) -> (field_index p f, cterm t))
               r.Sym.assigns))
        rules;
    legit = Option.map cform p.spec.Sym.sp_legitimate;
  }

(* First enabled rule of [u], or -1 — the flat twin of the classic
   engine's enabled table entry.  Leaves [ev.cell.u = u]. *)
let first_enabled ev u =
  ev.cell.u <- u;
  let k = Array.length ev.guards in
  let r = ref (-1) in
  let i = ref 0 in
  while !r < 0 && !i < k do
    if ev.guards.(!i) () then r := !i;
    incr i
  done;
  !r

(* Post-values of rule [r] at [ev.cell.u], buffered into [dst] at [off]
   (row layout: one slot per field).  Assignment terms read the pre-state
   arrays, never [dst], so buffering preserves act-on-pre-state. *)
let compute_post p ev r ~dst ~off =
  let u = ev.cell.u in
  for f = 0 to p.nf - 1 do
    dst.(off + f) <- p.state.(f).(u)
  done;
  Array.iter (fun (f, clo) -> dst.(off + f) <- clo ()) ev.assigns.(r)

(* ------------------------------- daemons ------------------------------- *)

type daemon =
  | Synchronous
  | Central_random
  | Central_first
  | Central_last
  | Round_robin
  | Distributed_random of float
  | Locally_central
  | Adversarial of string list
  | Starve of int

let daemon_table () =
  [
    ("synchronous", Synchronous);
    ("central-random", Central_random);
    ("central-first", Central_first);
    ("central-last", Central_last);
    ("round-robin", Round_robin);
    ("distributed-random", Distributed_random 0.5);
    ("locally-central", Locally_central);
    ("adversarial", Adversarial Daemon.standard_prefer);
    ("starve", Starve 0);
  ]

let daemon_of_name name = List.assoc_opt name (daemon_table ())
let daemon_names () = List.map fst (daemon_table ())

(* Draw-for-draw mirror of Daemon.pick_random. *)
let pick_random rng l =
  match l with
  | [] -> invalid_arg "Flat: daemon over an empty enabled list"
  | l -> List.nth l (Random.State.int rng (List.length l))

(* Selection mirrors lib/sim/daemon.ml function by function: same RNG
   draws in the same order, so classic and flat runs from one seed pick
   the same movers. *)
let make_select p rule_of daemon =
  let name_of u = p.rule_names.(rule_of.(u)) in
  fun rng elist ->
    match daemon with
    | Synchronous | Central_random | Central_first | Central_last
    | Round_robin ->
        (* Handled without a materialized list in [run]. *)
        ignore rng;
        elist
    | Distributed_random prob -> (
        let chosen =
          List.filter (fun _ -> Random.State.float rng 1.0 < prob) elist
        in
        match chosen with [] -> [ pick_random rng elist ] | l -> l)
    | Locally_central ->
        let arr = Array.of_list elist in
        for i = Array.length arr - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let t = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- t
        done;
        let kept = Hashtbl.create 16 in
        let offsets = p.csr.Csr.offsets in
        let nbrs = p.csr.Csr.nbrs in
        let ok u =
          let free = ref true in
          let i = ref offsets.(u) in
          while !free && !i < offsets.(u + 1) do
            if Hashtbl.mem kept nbrs.(!i) then free := false;
            incr i
          done;
          !free
        in
        Array.iter (fun u -> if ok u then Hashtbl.add kept u ()) arr;
        List.filter (Hashtbl.mem kept) elist
    | Adversarial prefer ->
        let rank name =
          let rec index i = function
            | [] -> max_int
            | q :: _ when String.equal q name -> i
            | _ :: rest -> index (i + 1) rest
          in
          index 0 prefer
        in
        let best =
          List.fold_left
            (fun acc u -> min acc (rank (name_of u)))
            max_int elist
        in
        let candidates =
          List.filter (fun u -> rank (name_of u) = best) elist
        in
        [ pick_random rng candidates ]
    | Starve victim -> (
        match List.filter (fun u -> u <> victim) elist with
        | [] -> elist
        | others -> [ pick_random rng others ])

(* ------------------------------- results ------------------------------- *)

type result = {
  outcome : Engine.outcome;
  steps : int;
  moves : int;
  moves_per_process : int array;
  moves_per_rule : (string * int) list;
  rounds : int;
  legitimate : bool;
  wall_s : float;
}

let rule_list p counts =
  let acc = ref [] in
  for r = Array.length counts - 1 downto 0 do
    if counts.(r) > 0 then acc := (p.rule_names.(r), counts.(r)) :: !acc
  done;
  List.sort compare !acc

(* Growable per-step mover buffers, reset (not shrunk) every step. *)
type movers = {
  mutable mu : int array;  (* mover node *)
  mutable mr : int array;  (* mover rule *)
  mutable mp : int array;  (* post rows, nf slots per mover *)
  mutable len : int;
}

let movers_make nf =
  { mu = Array.make 256 0; mr = Array.make 256 0; mp = Array.make (256 * nf) 0; len = 0 }

let movers_push b nf u r =
  if b.len = Array.length b.mu then begin
    let cap = 2 * b.len in
    let mu = Array.make cap 0 and mr = Array.make cap 0 in
    let mp = Array.make (cap * nf) 0 in
    Array.blit b.mu 0 mu 0 b.len;
    Array.blit b.mr 0 mr 0 b.len;
    Array.blit b.mp 0 mp 0 (b.len * nf);
    b.mu <- mu;
    b.mr <- mr;
    b.mp <- mp
  end;
  b.mu.(b.len) <- u;
  b.mr.(b.len) <- r;
  b.len <- b.len + 1

(* ----------------------------- profiling ------------------------------- *)

(* Pre-resolved instruments for the flat hot loop, mirroring the classic
   engine's lap discipline: [mark] is the last phase boundary; closing a
   phase is one clock read, one histogram record and one mutation.  Rule
   timers and move counters are dense arrays indexed by rule id — the flat
   path never looks an instrument up by name.  The [moves.R] / [rule.R] /
   [phase.X] naming matches the classic engine, so `prof report`, windows
   and the Proffile validator work unchanged on flat streams. *)
type prof_ctx = {
  p : Prof.t;
  scan : Prof.timer;  (* initial full scan + per-round pending refills *)
  select : Prof.timer;  (* daemon selection + post-row buffering *)
  apply : Prof.timer;  (* write-back (derived from the rule-span chain) *)
  refresh : Prof.timer;  (* fused touch over the movers' neighborhoods *)
  callbacks : Prof.timer;  (* on_step / heartbeat / window tick *)
  rule_timers : Prof.timer array;
  rule_counters : Metrics.counter array;
  c_touched : Metrics.counter;  (* touch attempts *)
  c_evals : Metrics.counter;  (* guard re-evaluations actually done *)
  c_dedup : Metrics.counter;  (* touches skipped by the stamp *)
  c_flips : Metrics.counter;  (* enabled-rule entries that changed *)
  h_refresh : Histogram.t;  (* per-step refresh size (evals) *)
  c_legit_steps : Metrics.counter;  (* steps spent legitimate (availability) *)
  mutable mark : int;
}

let make_prof_ctx pr rule_names =
  let m = Prof.metrics pr in
  (* Bind every instrument before the record literal: registration order is
     what the profile summary displays — it must follow the pipeline. *)
  let scan = Prof.timer pr "phase.scan" in
  let select = Prof.timer pr "phase.select" in
  let apply = Prof.timer pr "phase.apply" in
  let refresh = Prof.timer pr "phase.refresh" in
  let callbacks = Prof.timer pr "phase.callbacks" in
  let rule_timers =
    Array.map (fun r -> Prof.timer pr ("rule." ^ r)) rule_names
  in
  let rule_counters =
    Array.map (fun r -> Metrics.counter m ("moves." ^ r)) rule_names
  in
  let c_touched = Metrics.counter m "sched.touched" in
  let c_evals = Metrics.counter m "sched.evals" in
  let c_dedup = Metrics.counter m "sched.dedup_hits" in
  let c_flips = Metrics.counter m "sched.table_flips" in
  let h_refresh = Prof.histogram pr "sched.refresh_size" in
  let c_legit_steps = Metrics.counter m "obs.legit_steps" in
  {
    p = pr;
    scan;
    select;
    apply;
    refresh;
    callbacks;
    rule_timers;
    rule_counters;
    c_touched;
    c_evals;
    c_dedup;
    c_flips;
    h_refresh;
    c_legit_steps;
    mark = Prof.now_ns ();
  }

let lap pc tm =
  let now = Prof.now_ns () in
  Prof.record_span tm (now - pc.mark);
  pc.mark <- now

let finish_prof pr wall_s =
  Prof.gc_collect pr;
  let g = Metrics.gauge (Prof.metrics pr) "engine.wall_s" in
  Metrics.set g (Metrics.gauge_value g +. wall_s)

(* Heartbeat: a cheap progress observation emitted every [interval] steps —
   enough for a `--heartbeat` progress line on multi-minute runs without
   touching the hot loop otherwise. *)
type beat = {
  hb_steps : int;
  hb_moves : int;
  hb_enabled : int;  (* enabled-set size after the step *)
  hb_legit : int;  (* legitimate processes; -1 when not tracked *)
  hb_availability : float;  (* fraction of steps legitimate; -1. untracked *)
  hb_moves_per_s : float;  (* over the last heartbeat interval *)
}

(* Latch the paper's complexity bounds from the flat counters: the 3n round
   bound and the D·n² move bound of U∘SDR trip a named anomaly at most once
   per run, like the classic runners' monitors. *)
let trip_moves monitor ~moves_bound ~steps ~moves =
  match (monitor, moves_bound) with
  | Some m, Some bound when moves > bound ->
      Monitor.trip m ~monitor:"moves-bound" ~step:steps ~value:moves ~bound ()
  | _ -> ()

let trip_rounds monitor ~rounds_bound ~steps ~rounds =
  match (monitor, rounds_bound) with
  | Some m, Some bound when rounds > bound ->
      Monitor.trip m ~monitor:"rounds-bound" ~step:steps ~value:rounds ~bound
        ()
  | _ -> ()

(* ---------------------------- sequential run --------------------------- *)

let run ?rng ?(seed = 0) ?(max_steps = 10_000_000) ?(stop_on_legitimate = true)
    ?on_step ?prof ?monitor ?rounds_bound ?moves_bound ?heartbeat ~daemon p =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let t0 = Unix.gettimeofday () in
  let prof_ctx =
    Option.map
      (fun pr ->
        Prof.gc_mark pr;
        make_prof_ctx pr p.rule_names)
      prof
  in
  let nn = Csr.n p.csr in
  let nf = p.nf in
  let ev = make_ev p in
  let nr = Array.length p.rule_names in
  let rule_of = Array.make nn (-1) in
  let enabled = Bits.create nn in
  let en_count = ref 0 in
  for u = 0 to nn - 1 do
    let r = first_enabled ev u in
    rule_of.(u) <- r;
    if r >= 0 then begin
      ignore (Bits.add enabled u);
      incr en_count
    end
  done;
  let legit_of = Option.map (fun _ -> Array.make nn false) ev.legit in
  let illegit = ref 0 in
  (match (ev.legit, legit_of) with
  | Some clo, Some la ->
      for u = 0 to nn - 1 do
        ev.cell.u <- u;
        let lg = clo () in
        la.(u) <- lg;
        if not lg then incr illegit
      done
  | _ -> ());
  let stopping = stop_on_legitimate && legit_of <> None in
  let moves_per_process = Array.make nn 0 in
  let rule_moves = Array.make nr 0 in
  (* §2.4 pending set as stamp + generation + count: refill touches only
     the enabled members, never all n (the classic engine's Hashtbl refill
     is O(n) per round — fatal at n = 10⁶). *)
  let pend_stamp = Array.make nn 0 in
  let pend_gen = ref 0 in
  let pend_count = ref 0 in
  let refill_pending () =
    incr pend_gen;
    let g = !pend_gen in
    pend_count := !en_count;
    Bits.iter enabled (fun u -> pend_stamp.(u) <- g)
  in
  refill_pending ();
  let stamp = Array.make nn 0 in
  let gen = ref 0 in
  let select = make_select p rule_of daemon in
  let cursor = ref 0 in
  let mv = movers_make nf in
  let completed_rounds = ref 0 in
  let steps_in_round = ref 0 in
  let steps = ref 0 in
  let total_moves = ref 0 in
  (* Availability sampling rides on the incremental legitimate-node count
     the run already maintains; the per-step cost (one compare) is only
     paid when someone is observing. *)
  let count_legit =
    legit_of <> None
    && (prof_ctx <> None || heartbeat <> None || monitor <> None)
  in
  let legit_steps = ref 0 in
  let hb_last_t = ref t0 in
  let hb_last_moves = ref 0 in
  let outcome = ref Engine.Step_limit in
  (* Everything since [run] began — evaluator compilation, the initial
     enabled/legitimacy scan, the first pending refill — is scan work. *)
  (match prof_ctx with Some pc -> lap pc pc.scan | None -> ());
  (try
     if stopping && !illegit = 0 then begin
       outcome := Engine.Stabilized;
       raise Exit
     end;
     while !steps < max_steps do
       if !en_count = 0 then begin
         outcome := Engine.Terminal;
         raise Exit
       end;
       (* Buffer every mover's post row from the pre-state, then write:
          movers act on the pre-state even when they are neighbors. *)
       mv.len <- 0;
       let push u =
         let r = rule_of.(u) in
         movers_push mv nf u r;
         ev.cell.u <- u;
         compute_post p ev r ~dst:mv.mp ~off:((mv.len - 1) * nf)
       in
       (* The common daemons pick straight off the bitset — no per-step
          list materialization, but draw-for-draw the same RNG consumption
          as lib/sim/daemon.ml ([Bits.nth] walks ascending order, exactly
          the list the classic daemon indexes into). *)
       (match daemon with
       | Synchronous -> Bits.iter enabled push
       | Central_random ->
           push (Bits.nth enabled (Random.State.int rng !en_count))
       | Central_first -> push (Bits.next_geq enabled 0)
       | Central_last -> push (Bits.nth enabled (!en_count - 1))
       | Round_robin ->
           let u =
             match Bits.next_geq enabled !cursor with
             | -1 -> Bits.next_geq enabled 0
             | u -> u
           in
           cursor := (u + 1) mod nn;
           push u
       | Distributed_random _ | Locally_central | Adversarial _ | Starve _ ->
           let elist = ref [] in
           Bits.iter enabled (fun u -> elist := u :: !elist);
           List.iter push (select rng (List.rev !elist)));
       (match prof_ctx with
       | None ->
           for k = 0 to mv.len - 1 do
             let u = mv.mu.(k) in
             for f = 0 to nf - 1 do
               p.state.(f).(u) <- mv.mp.((k * nf) + f)
             done
           done
       | Some pc ->
           lap pc pc.select;
           (* Per-rule attribution without extra clock reads: movers chain
              laps, so their spans tile the apply phase exactly; the phase
              total is derived from the chain, not measured again. *)
           let apply_start = pc.mark in
           for k = 0 to mv.len - 1 do
             let u = mv.mu.(k) in
             for f = 0 to nf - 1 do
               p.state.(f).(u) <- mv.mp.((k * nf) + f)
             done;
             lap pc pc.rule_timers.(mv.mr.(k));
             Metrics.incr pc.rule_counters.(mv.mr.(k))
           done;
           Prof.record_span pc.apply (pc.mark - apply_start));
       incr steps;
       incr steps_in_round;
       for k = 0 to mv.len - 1 do
         let u = mv.mu.(k) in
         incr total_moves;
         moves_per_process.(u) <- moves_per_process.(u) + 1;
         rule_moves.(mv.mr.(k)) <- rule_moves.(mv.mr.(k)) + 1;
         if pend_stamp.(u) = !pend_gen then begin
           pend_stamp.(u) <- 0;
           decr pend_count
         end
       done;
       (* Fused refresh + neutralization + legitimacy over the movers'
          closed neighborhoods — the only processes whose views changed.
          Stamp-dedup'd like the classic incremental scheduler. *)
       incr gen;
       let g = !gen in
       let offsets = p.csr.Csr.offsets in
       let nbrs = p.csr.Csr.nbrs in
       (match prof_ctx with
       | None ->
           let touch v =
             if stamp.(v) <> g then begin
               stamp.(v) <- g;
               let r = first_enabled ev v in
               rule_of.(v) <- r;
               if r >= 0 then begin
                 if Bits.add enabled v then incr en_count
               end
               else begin
                 if Bits.remove enabled v then decr en_count;
                 if pend_stamp.(v) = !pend_gen then begin
                   pend_stamp.(v) <- 0;
                   decr pend_count
                 end
               end;
               match (ev.legit, legit_of) with
               | Some clo, Some la ->
                   let lg = clo () in
                   if lg <> la.(v) then begin
                     la.(v) <- lg;
                     illegit := !illegit + if lg then -1 else 1
                   end
               | _ -> ()
             end
           in
           for k = 0 to mv.len - 1 do
             let u = mv.mu.(k) in
             touch u;
             for i = offsets.(u) to offsets.(u + 1) - 1 do
               touch nbrs.(i)
             done
           done
       | Some pc ->
           (* Instrumented twin: same table writes in the same order, plus
              the scheduler counters the profile reports. *)
           let evals = ref 0 in
           let touch v =
             Metrics.incr pc.c_touched;
             if stamp.(v) <> g then begin
               stamp.(v) <- g;
               incr evals;
               let r0 = rule_of.(v) in
               let r = first_enabled ev v in
               rule_of.(v) <- r;
               if r <> r0 then Metrics.incr pc.c_flips;
               if r >= 0 then begin
                 if Bits.add enabled v then incr en_count
               end
               else begin
                 if Bits.remove enabled v then decr en_count;
                 if pend_stamp.(v) = !pend_gen then begin
                   pend_stamp.(v) <- 0;
                   decr pend_count
                 end
               end;
               match (ev.legit, legit_of) with
               | Some clo, Some la ->
                   let lg = clo () in
                   if lg <> la.(v) then begin
                     la.(v) <- lg;
                     illegit := !illegit + if lg then -1 else 1
                   end
               | _ -> ()
             end
             else Metrics.incr pc.c_dedup
           in
           for k = 0 to mv.len - 1 do
             let u = mv.mu.(k) in
             touch u;
             for i = offsets.(u) to offsets.(u + 1) - 1 do
               touch nbrs.(i)
             done
           done;
           Metrics.add pc.c_evals !evals;
           Histogram.record pc.h_refresh !evals;
           lap pc pc.refresh);
       if count_legit && !illegit = 0 then incr legit_steps;
       (match on_step with
       | Some f ->
           let moved = ref [] in
           for k = mv.len - 1 downto 0 do
             moved := (mv.mu.(k), p.rule_names.(mv.mr.(k))) :: !moved
           done;
           f ~step:(!steps - 1) ~moved:!moved
       | None -> ());
       (match prof_ctx with
       | Some pc ->
           if count_legit && !illegit = 0 then
             Metrics.incr pc.c_legit_steps;
           Prof.tick pc.p ~moves:mv.len;
           lap pc pc.callbacks
       | None -> ());
       (match heartbeat with
       | Some (every, f) when every > 0 && !steps mod every = 0 ->
           let now = Unix.gettimeofday () in
           let dt = now -. !hb_last_t in
           let dmoves = !total_moves - !hb_last_moves in
           hb_last_t := now;
           hb_last_moves := !total_moves;
           f
             {
               hb_steps = !steps;
               hb_moves = !total_moves;
               hb_enabled = !en_count;
               hb_legit =
                 (match legit_of with None -> -1 | Some _ -> nn - !illegit);
               hb_availability =
                 (if count_legit && !steps > 0 then
                    float_of_int !legit_steps /. float_of_int !steps
                  else -1.);
               hb_moves_per_s =
                 (if dt > 0. then float_of_int dmoves /. dt else 0.);
             }
       | _ -> ());
       trip_moves monitor ~moves_bound ~steps:!steps ~moves:!total_moves;
       if !pend_count = 0 then begin
         incr completed_rounds;
         steps_in_round := 0;
         refill_pending ();
         (* The refill walks the enabled set — scan work, like the initial
            table build. *)
         (match prof_ctx with Some pc -> lap pc pc.scan | None -> ());
         trip_rounds monitor ~rounds_bound ~steps:!steps
           ~rounds:!completed_rounds
       end;
       if stopping && !illegit = 0 then begin
         outcome := Engine.Stabilized;
         raise Exit
       end
     done
   with Exit -> ());
  (match prof_ctx with
  | Some pc -> finish_prof pc.p (Unix.gettimeofday () -. t0)
  | None -> ());
  {
    outcome = !outcome;
    steps = !steps;
    moves = !total_moves;
    moves_per_process;
    moves_per_rule = rule_list p rule_moves;
    rounds = (!completed_rounds + if !steps_in_round > 0 then 1 else 0);
    legitimate = (match legit_of with None -> true | Some _ -> !illegit = 0);
    wall_s = Unix.gettimeofday () -. t0;
  }

(* --------------------------- partitioned run --------------------------- *)

(* Worker-private instrumentation slots for the partitioned path: each
   domain accumulates its own phase nanoseconds, duration histograms,
   scheduler counts and GC baselines — separate heap blocks, no sharing —
   and everything is merged into the single profiler on the calling domain
   after the team shuts down ({!Prof.merge_spans} / {!Histogram.merge_into}
   are lossless, so the merged stream is exact). *)
type wslots = {
  mutable ws_init_ns : int;
  mutable ws_compute_ns : int;
  mutable ws_write_ns : int;
  mutable ws_refresh_ns : int;
  h_init : Histogram.t;
  h_compute : Histogram.t;
  h_write : Histogram.t;
  h_refresh : Histogram.t;
  mutable ws_touched : int;
  mutable ws_evals : int;
  mutable ws_dedup : int;
  mutable ws_minor0 : float;
  mutable ws_major0 : float;
  mutable ws_minor : float;
  mutable ws_major : float;
}

(* Caller-side context for the partitioned profile: merged phase timers
   (registered up front, so the summary displays them in pipeline order),
   per-rule move counters, and the cross-boundary handoff counters. *)
type part_prof = {
  pp : Prof.t;
  slots : wslots array;
  t_init : Prof.timer;
  t_compute : Prof.timer;
  t_write : Prof.timer;
  t_refresh : Prof.timer;
  t_replay : Prof.timer;
  t_callbacks : Prof.timer;
  prc : Metrics.counter array;  (* moves.R *)
  c_frontier : Metrics.counter;  (* nodes handed off across a boundary *)
  c_replays : Metrics.counter;  (* handoffs actually recomputed *)
  pc_legit : Metrics.counter;
}

let make_part_prof pr ~nparts rule_names =
  Prof.gc_mark pr;
  let m = Prof.metrics pr in
  let t_init = Prof.timer pr "phase.init" in
  let t_compute = Prof.timer pr "phase.compute" in
  let t_write = Prof.timer pr "phase.write" in
  let t_refresh = Prof.timer pr "phase.refresh" in
  (* Registered here for display order; Pool.Team feeds it at shutdown. *)
  ignore (Prof.timer pr "phase.barrier");
  let t_replay = Prof.timer pr "phase.replay" in
  let t_callbacks = Prof.timer pr "phase.callbacks" in
  {
    pp = pr;
    slots =
      Array.init nparts (fun _ ->
          {
            ws_init_ns = 0;
            ws_compute_ns = 0;
            ws_write_ns = 0;
            ws_refresh_ns = 0;
            h_init = Histogram.create ();
            h_compute = Histogram.create ();
            h_write = Histogram.create ();
            h_refresh = Histogram.create ();
            ws_touched = 0;
            ws_evals = 0;
            ws_dedup = 0;
            ws_minor0 = 0.;
            ws_major0 = 0.;
            ws_minor = 0.;
            ws_major = 0.;
          });
    t_init;
    t_compute;
    t_write;
    t_refresh;
    t_replay;
    t_callbacks;
    prc = Array.map (fun r -> Metrics.counter m ("moves." ^ r)) rule_names;
    c_frontier = Metrics.counter m "flat.frontier_handoffs";
    c_replays = Metrics.counter m "flat.frontier_replays";
    pc_legit = Metrics.counter m "obs.legit_steps";
  }

(* Merge the per-domain slots into the stream: phase timers get every
   worker's spans (sum ≈ parts × wall together with phase.barrier, which
   is what the multi-worker coverage check validates), per-worker gauges
   keep the split for the `prof report` worker table. *)
let merge_part_prof o ~nparts =
  let m = Prof.metrics o.pp in
  Array.iteri
    (fun d s ->
      Prof.merge_spans o.t_init ~total_ns:s.ws_init_ns s.h_init;
      Prof.merge_spans o.t_compute ~total_ns:s.ws_compute_ns s.h_compute;
      Prof.merge_spans o.t_write ~total_ns:s.ws_write_ns s.h_write;
      Prof.merge_spans o.t_refresh ~total_ns:s.ws_refresh_ns s.h_refresh;
      let gset name v =
        let g = Metrics.gauge m (Printf.sprintf "flat.worker%d.%s" d name) in
        Metrics.set g (Metrics.gauge_value g +. v)
      in
      gset "compute_s" (float_of_int s.ws_compute_ns /. 1e9);
      gset "write_s" (float_of_int s.ws_write_ns /. 1e9);
      gset "refresh_s" (float_of_int s.ws_refresh_ns /. 1e9);
      gset "gc_minor_words" (s.ws_minor -. s.ws_minor0);
      gset "gc_major_words" (s.ws_major -. s.ws_major0);
      Metrics.add (Metrics.counter m "sched.touched") s.ws_touched;
      Metrics.add (Metrics.counter m "sched.evals") s.ws_evals;
      Metrics.add (Metrics.counter m "sched.dedup_hits") s.ws_dedup)
    o.slots;
  Metrics.set (Metrics.gauge m "flat.parts") (float_of_int nparts)

let run_partitioned ?(max_steps = 10_000_000) ?(stop_on_legitimate = true)
    ?prof ?monitor ?rounds_bound ?moves_bound ?heartbeat ~parts p =
  let t0 = Unix.gettimeofday () in
  let nn = Csr.n p.csr in
  let nf = p.nf in
  let nparts = max 1 parts in
  (* Contiguous ranges aligned to Bits.part_align: concurrent bitset
     updates from different domains touch disjoint words at both levels. *)
  let chunk =
    let raw = (nn + nparts - 1) / nparts in
    let al = Bits.part_align in
    max al ((raw + al - 1) / al * al)
  in
  let lo d = min nn (d * chunk) in
  let hi d = min nn ((d + 1) * chunk) in
  let owner v = v / chunk in
  let nr = Array.length p.rule_names in
  let evs = Array.init nparts (fun _ -> make_ev p) in
  let track_legit = stop_on_legitimate && evs.(0).legit <> None in
  let rule_of = Array.make nn (-1) in
  let enabled = Bits.create nn in
  let en_count = Array.make nparts 0 in
  let legit_of = if track_legit then Array.make nn false else [||] in
  let illegit = Array.make nparts 0 in
  let bufs = Array.init nparts (fun _ -> movers_make nf) in
  let frontier = Array.make nparts [] in
  let moves_per_process = Array.make nn 0 in
  let rule_moves = Array.make_matrix nparts nr 0 in
  let offsets = p.csr.Csr.offsets in
  let nbrs = p.csr.Csr.nbrs in
  (* Stamp-dedup per step, as in the sequential path: under the synchronous
     daemon neighboring movers share neighborhoods, so without the stamp a
     ring node gets recomputed up to three times per step.  Race-free: a
     node's stamp is written only by its owner domain (phase C defers
     out-of-range neighbors) or by the sequential frontier replay. *)
  let stamp = Array.make nn 0 in
  let gen = ref 0 in
  let recompute ev d v =
    let r = first_enabled ev v in
    rule_of.(v) <- r;
    if r >= 0 then begin
      if Bits.add enabled v then en_count.(d) <- en_count.(d) + 1
    end
    else if Bits.remove enabled v then en_count.(d) <- en_count.(d) - 1;
    if track_legit then begin
      let lg = (Option.get ev.legit) () in
      if lg <> legit_of.(v) then begin
        legit_of.(v) <- lg;
        illegit.(d) <- illegit.(d) + (if lg then -1 else 1)
      end
    end
  in
  let pobs = Option.map (fun pr -> make_part_prof pr ~nparts p.rule_names) prof in
  let team = Pool.Team.create ?prof ~size:nparts () in
  let sum a = Array.fold_left ( + ) 0 a in
  let steps = ref 0 in
  let total_moves = ref 0 in
  let count_legit =
    track_legit && (pobs <> None || heartbeat <> None || monitor <> None)
  in
  let legit_steps = ref 0 in
  let hb_last_t = ref t0 in
  let hb_last_moves = ref 0 in
  let outcome = ref Engine.Step_limit in
  Fun.protect
    ~finally:(fun () -> Pool.Team.shutdown team)
    (fun () ->
      Pool.Team.run team (fun d ->
          (match pobs with
          | Some o ->
              (* OCaml 5 GC counters are per-domain: the baseline must be
                 sampled on the worker itself. *)
              let q = Gc.quick_stat () in
              let s = o.slots.(d) in
              s.ws_minor0 <- q.Gc.minor_words;
              s.ws_major0 <- q.Gc.major_words
          | None -> ());
          let tph = match pobs with Some _ -> Prof.now_ns () | None -> 0 in
          let ev = evs.(d) in
          for u = lo d to hi d - 1 do
            let r = first_enabled ev u in
            rule_of.(u) <- r;
            if r >= 0 then begin
              ignore (Bits.add enabled u);
              en_count.(d) <- en_count.(d) + 1
            end;
            if track_legit then begin
              let lg = (Option.get ev.legit) () in
              legit_of.(u) <- lg;
              if not lg then illegit.(d) <- illegit.(d) + 1
            end
          done;
          match pobs with
          | Some o ->
              let s = o.slots.(d) in
              let dt = Prof.now_ns () - tph in
              s.ws_init_ns <- s.ws_init_ns + dt;
              Histogram.record s.h_init dt
          | None -> ());
      (try
         if track_legit && sum illegit = 0 then begin
           outcome := Engine.Stabilized;
           raise Exit
         end;
         while !steps < max_steps do
          if sum en_count = 0 then begin
            outcome := Engine.Terminal;
            raise Exit
          end;
          (* Phase A — every enabled node moves (synchronous daemon);
             buffer post rows from the shared pre-state, no writes. *)
          Pool.Team.run team (fun d ->
              let tph = match pobs with Some _ -> Prof.now_ns () | None -> 0 in
              let ev = evs.(d) in
              let b = bufs.(d) in
              b.len <- 0;
              Bits.iter_range enabled (lo d) (hi d) (fun u ->
                  let r = rule_of.(u) in
                  movers_push b nf u r;
                  ev.cell.u <- u;
                  compute_post p ev r ~dst:b.mp ~off:((b.len - 1) * nf));
              match pobs with
              | Some o ->
                  let s = o.slots.(d) in
                  let dt = Prof.now_ns () - tph in
                  s.ws_compute_ns <- s.ws_compute_ns + dt;
                  Histogram.record s.h_compute dt
              | None -> ());
          (* Phase B — write back own-range movers and account them. *)
          Pool.Team.run team (fun d ->
              let tph = match pobs with Some _ -> Prof.now_ns () | None -> 0 in
              let b = bufs.(d) in
              for k = 0 to b.len - 1 do
                let u = b.mu.(k) in
                for f = 0 to nf - 1 do
                  p.state.(f).(u) <- b.mp.((k * nf) + f)
                done;
                moves_per_process.(u) <- moves_per_process.(u) + 1;
                rule_moves.(d).(b.mr.(k)) <- rule_moves.(d).(b.mr.(k)) + 1
              done;
              match pobs with
              | Some o ->
                  let s = o.slots.(d) in
                  let dt = Prof.now_ns () - tph in
                  s.ws_write_ns <- s.ws_write_ns + dt;
                  Histogram.record s.h_write dt
              | None -> ());
          (* Phase C — refresh the movers' closed neighborhoods.  Writes
             stay in the worker's own range; out-of-range neighbors are
             handed off and replayed sequentially below.  Recomputation is
             idempotent, so duplicates (several movers sharing a neighbor,
             or several domains deferring the same node) are harmless and
             the result is independent of the partition count. *)
          incr gen;
          let g = !gen in
          Pool.Team.run team (fun d ->
              match pobs with
              | None ->
                  let ev = evs.(d) in
                  let b = bufs.(d) in
                  frontier.(d) <- [];
                  let l = lo d and h = hi d in
                  for k = 0 to b.len - 1 do
                    let u = b.mu.(k) in
                    if stamp.(u) <> g then begin
                      stamp.(u) <- g;
                      recompute ev d u
                    end;
                    for i = offsets.(u) to offsets.(u + 1) - 1 do
                      let v = nbrs.(i) in
                      if v >= l && v < h then begin
                        if stamp.(v) <> g then begin
                          stamp.(v) <- g;
                          recompute ev d v
                        end
                      end
                      else frontier.(d) <- v :: frontier.(d)
                    done
                  done
              | Some o ->
                  (* Instrumented twin: same recomputation in the same
                     order, plus per-domain touch/eval/dedup counts. *)
                  let tph = Prof.now_ns () in
                  let s = o.slots.(d) in
                  let touched = ref 0 and evals = ref 0 and dedup = ref 0 in
                  let ev = evs.(d) in
                  let b = bufs.(d) in
                  frontier.(d) <- [];
                  let l = lo d and h = hi d in
                  for k = 0 to b.len - 1 do
                    let u = b.mu.(k) in
                    incr touched;
                    if stamp.(u) <> g then begin
                      stamp.(u) <- g;
                      incr evals;
                      recompute ev d u
                    end
                    else incr dedup;
                    for i = offsets.(u) to offsets.(u + 1) - 1 do
                      let v = nbrs.(i) in
                      if v >= l && v < h then begin
                        incr touched;
                        if stamp.(v) <> g then begin
                          stamp.(v) <- g;
                          incr evals;
                          recompute ev d v
                        end
                        else incr dedup
                      end
                      else frontier.(d) <- v :: frontier.(d)
                    done
                  done;
                  s.ws_touched <- s.ws_touched + !touched;
                  s.ws_evals <- s.ws_evals + !evals;
                  s.ws_dedup <- s.ws_dedup + !dedup;
                  let dt = Prof.now_ns () - tph in
                  s.ws_refresh_ns <- s.ws_refresh_ns + dt;
                  Histogram.record s.h_refresh dt);
          (match pobs with
          | None ->
              Array.iter
                (fun fr ->
                  List.iter
                    (fun v ->
                      if stamp.(v) <> g then begin
                        stamp.(v) <- g;
                        recompute evs.(0) (owner v) v
                      end)
                    fr)
                frontier
          | Some o ->
              (* Sequential frontier replay, timed and counted on the
                 caller: the cross-boundary cost ROADMAP item 1 asks
                 about. *)
              let t_r = Prof.now_ns () in
              let handed = ref 0 and replayed = ref 0 in
              Array.iter
                (fun fr ->
                  List.iter
                    (fun v ->
                      incr handed;
                      if stamp.(v) <> g then begin
                        stamp.(v) <- g;
                        incr replayed;
                        recompute evs.(0) (owner v) v
                      end)
                    fr)
                frontier;
              Metrics.add o.c_frontier !handed;
              Metrics.add o.c_replays !replayed;
              Prof.record_span o.t_replay (Prof.now_ns () - t_r));
          incr steps;
          Array.iter (fun b -> total_moves := !total_moves + b.len) bufs;
          (match pobs with
          | Some o ->
              let t_c = Prof.now_ns () in
              let sm = ref 0 in
              Array.iter
                (fun b ->
                  for k = 0 to b.len - 1 do
                    Metrics.incr o.prc.(b.mr.(k))
                  done;
                  sm := !sm + b.len)
                bufs;
              if count_legit && sum illegit = 0 then
                Metrics.incr o.pc_legit;
              Prof.tick o.pp ~moves:!sm;
              Prof.record_span o.t_callbacks (Prof.now_ns () - t_c)
          | None -> ());
          if count_legit && sum illegit = 0 then incr legit_steps;
          (match heartbeat with
          | Some (every, f) when every > 0 && !steps mod every = 0 ->
              let now = Unix.gettimeofday () in
              let dt = now -. !hb_last_t in
              let dmoves = !total_moves - !hb_last_moves in
              hb_last_t := now;
              hb_last_moves := !total_moves;
              let legit_now =
                if track_legit then nn - sum illegit
                else
                  match evs.(0).legit with
                  | None -> -1
                  | Some clo ->
                      (* Legitimacy is not tracked incrementally on this
                         run: full rescan at the observation boundary
                         (amortized over the heartbeat interval). *)
                      let ev = evs.(0) in
                      let c = ref 0 in
                      for u = 0 to nn - 1 do
                        ev.cell.u <- u;
                        if clo () then incr c
                      done;
                      !c
              in
              f
                {
                  hb_steps = !steps;
                  hb_moves = !total_moves;
                  hb_enabled = sum en_count;
                  hb_legit = legit_now;
                  hb_availability =
                    (if count_legit && !steps > 0 then
                       float_of_int !legit_steps /. float_of_int !steps
                     else -1.);
                  hb_moves_per_s =
                    (if dt > 0. then float_of_int dmoves /. dt else 0.);
                }
          | _ -> ());
          trip_moves monitor ~moves_bound ~steps:!steps ~moves:!total_moves;
          (* Under the synchronous daemon each step completes one round. *)
          trip_rounds monitor ~rounds_bound ~steps:!steps ~rounds:!steps;
          if track_legit && sum illegit = 0 then begin
            outcome := Engine.Stabilized;
            raise Exit
          end
        done
      with Exit -> ());
      (* Final per-domain GC samples, on the worker domains themselves
         (OCaml 5 keeps allocation counters per domain). *)
      match pobs with
      | Some o ->
          Pool.Team.run team (fun d ->
              let q = Gc.quick_stat () in
              let s = o.slots.(d) in
              s.ws_minor <- q.Gc.minor_words -. s.ws_minor0;
              s.ws_major <- q.Gc.major_words -. s.ws_major0)
      | None -> ());
  (match pobs with
  | Some o ->
      merge_part_prof o ~nparts;
      finish_prof o.pp (Unix.gettimeofday () -. t0)
  | None -> ());
  let rule_totals = Array.make nr 0 in
  Array.iter
    (fun row -> Array.iteri (fun r c -> rule_totals.(r) <- rule_totals.(r) + c) row)
    rule_moves;
  {
    outcome = !outcome;
    steps = !steps;
    moves = !total_moves;
    moves_per_process;
    moves_per_rule = rule_list p rule_totals;
    (* Under the synchronous daemon every pending node either moves or is
       neutralized within the step, so each step completes one round. *)
    rounds = !steps;
    legitimate = (if track_legit then sum illegit = 0 else true);
    wall_s = Unix.gettimeofday () -. t0;
  }

(** Two-level bitset over [0 .. n-1] — the flat engine's enabled set.

    Level 0 packs 32 members per word; level 1 summarizes 32 level-0 words
    per bit, so iterating a sparse set over a million nodes scans ~1000
    summary words instead of ~31000, and an empty region costs one load.

    No membership count is stored: {!add}/{!remove} report whether they
    changed the set, and each caller keeps its own count — in partitioned
    runs every domain owns an aligned slice (see {!part_align}) and
    maintains a private count, so the structure itself is written
    race-free. *)

type t

val part_align : int
(** Partition boundaries must be multiples of this (32·32 = 1024): a
    level-1 word then never spans two partitions, and concurrent
    {!add}/{!remove} from different partitions touch disjoint words. *)

val create : int -> t
(** All-empty set over [0 .. n-1]. *)

val length : t -> int
val mem : t -> int -> bool

val add : t -> int -> bool
(** [true] iff [u] was not yet a member. *)

val remove : t -> int -> bool
(** [true] iff [u] was a member. *)

val iter : t -> (int -> unit) -> unit
(** Members in increasing order. *)

val iter_range : t -> int -> int -> (int -> unit) -> unit
(** [iter_range t lo hi f]: members in [lo, hi), increasing. *)

val count_range : t -> int -> int -> int
(** Popcount over [lo, hi). *)

val nth : t -> int -> int
(** [nth t i] is the [i]-th smallest member (0-indexed).
    @raise Invalid_argument when fewer than [i+1] members exist. *)

val next_geq : t -> int -> int
(** Smallest member ≥ [u], or [-1]. *)

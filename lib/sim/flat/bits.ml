(* 32 bits per word: indices stay simple shifts/masks well inside OCaml's
   63-bit ints, and a level-1 word covers 32·32 = 1024 nodes. *)

type t = { n : int; l0 : int array; l1 : int array }

let part_align = 1024
let words n = (n + 31) lsr 5

let create n =
  if n <= 0 then invalid_arg "Bits.create: need n >= 1";
  { n; l0 = Array.make (words n) 0; l1 = Array.make (words (words n)) 0 }

let length t = t.n
let mem t u = (t.l0.(u lsr 5) lsr (u land 31)) land 1 = 1

let add t u =
  let w = u lsr 5 in
  let b = 1 lsl (u land 31) in
  let old = t.l0.(w) in
  if old land b <> 0 then false
  else begin
    t.l0.(w) <- old lor b;
    t.l1.(w lsr 5) <- t.l1.(w lsr 5) lor (1 lsl (w land 31));
    true
  end

let remove t u =
  let w = u lsr 5 in
  let b = 1 lsl (u land 31) in
  let old = t.l0.(w) in
  if old land b = 0 then false
  else begin
    let now = old lxor b in
    t.l0.(w) <- now;
    if now = 0 then
      t.l1.(w lsr 5) <- t.l1.(w lsr 5) land lnot (1 lsl (w land 31));
    true
  end

(* Count-trailing-zeros of an isolated low bit, via the 32-bit De Bruijn
   sequence 0x077CB531. *)
let debruijn =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz v = debruijn.((((v land -v) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

let popcount v =
  let v = v - ((v lsr 1) land 0x55555555) in
  let v = (v land 0x33333333) + ((v lsr 2) land 0x33333333) in
  let v = (v + (v lsr 4)) land 0x0F0F0F0F in
  (v * 0x01010101) lsr 24 land 0xFF

let iter_word t k f =
  let w = ref t.l0.(k) in
  let base = k lsl 5 in
  while !w <> 0 do
    f (base + ctz !w);
    w := !w land (!w - 1)
  done

let iter t f =
  for s = 0 to Array.length t.l1 - 1 do
    let w1 = ref t.l1.(s) in
    let base = s lsl 5 in
    while !w1 <> 0 do
      iter_word t (base + ctz !w1) f;
      w1 := !w1 land (!w1 - 1)
    done
  done

(* Mask of bits [lo land 31 .. hi-1 land 31] inside one word; lo/hi are
   node indices with lo < hi in the same word. *)
let word_mask lo hi =
  let full = 0xFFFFFFFF in
  let m_lo = full lsl (lo land 31) land full in
  let m_hi =
    if hi land 31 = 0 then full else full lsr (32 - (hi land 31))
  in
  m_lo land m_hi

let iter_masked_word t k mask f =
  let w = ref (t.l0.(k) land mask) in
  let base = k lsl 5 in
  while !w <> 0 do
    f (base + ctz !w);
    w := !w land (!w - 1)
  done

let iter_range t lo hi f =
  if lo < hi then begin
    let wlo = lo lsr 5 and whi = (hi - 1) lsr 5 in
    if wlo = whi then iter_masked_word t wlo (word_mask lo hi) f
    else begin
      if lo land 31 = 0 then iter_word t wlo f
      else iter_masked_word t wlo (word_mask lo ((wlo + 1) lsl 5)) f;
      (* Whole words in between, skipping empty runs via level 1. *)
      for s = (wlo + 1) lsr 5 to whi lsr 5 do
        if t.l1.(s) <> 0 then begin
          let from = max (wlo + 1) (s lsl 5) in
          let upto = min (whi - 1) ((s lsl 5) + 31) in
          for k = from to upto do
            if t.l0.(k) <> 0 then iter_word t k f
          done
        end
      done;
      if hi land 31 = 0 then iter_word t whi f
      else iter_masked_word t whi (word_mask (whi lsl 5) hi) f
    end
  end

let count_range t lo hi =
  let c = ref 0 in
  (* Same traversal as iter_range, popcounting words instead. *)
  if lo < hi then begin
    let wlo = lo lsr 5 and whi = (hi - 1) lsr 5 in
    if wlo = whi then c := popcount (t.l0.(wlo) land word_mask lo hi)
    else begin
      c := popcount (t.l0.(wlo)
                     land (if lo land 31 = 0 then 0xFFFFFFFF
                           else word_mask lo ((wlo + 1) lsl 5)));
      for s = (wlo + 1) lsr 5 to whi lsr 5 do
        if t.l1.(s) <> 0 then begin
          let from = max (wlo + 1) (s lsl 5) in
          let upto = min (whi - 1) ((s lsl 5) + 31) in
          for k = from to upto do
            c := !c + popcount t.l0.(k)
          done
        end
      done;
      c :=
        !c
        + popcount (t.l0.(whi)
                    land (if hi land 31 = 0 then 0xFFFFFFFF
                          else word_mask (whi lsl 5) hi))
    end
  end;
  !c

let nth t i =
  if i < 0 then invalid_arg "Bits.nth";
  let remaining = ref i in
  let result = ref (-1) in
  (try
     for s = 0 to Array.length t.l1 - 1 do
       if t.l1.(s) <> 0 then begin
         let w1 = ref t.l1.(s) in
         let base = s lsl 5 in
         while !w1 <> 0 do
           let k = base + ctz !w1 in
           let p = popcount t.l0.(k) in
           if !remaining < p then begin
             let w = ref t.l0.(k) in
             while !remaining > 0 do
               w := !w land (!w - 1);
               decr remaining
             done;
             result := (k lsl 5) + ctz !w;
             raise Exit
           end;
           remaining := !remaining - p;
           w1 := !w1 land (!w1 - 1)
         done
       end
     done
   with Exit -> ());
  if !result < 0 then invalid_arg "Bits.nth: not enough members";
  !result

let next_geq t u =
  if u >= t.n then -1
  else begin
    let k = u lsr 5 in
    let first = t.l0.(k) land (0xFFFFFFFF lsl (u land 31)) land 0xFFFFFFFF in
    if first <> 0 then (k lsl 5) + ctz first
    else begin
      let result = ref (-1) in
      (try
         for s = k lsr 5 to Array.length t.l1 - 1 do
           let mask =
             if s = k lsr 5 then
               t.l1.(s) land (0xFFFFFFFF lsl ((k land 31) + 1)) land 0xFFFFFFFF
             else t.l1.(s)
           in
           let w1 = ref mask in
           if !w1 <> 0 then begin
             let kk = (s lsl 5) + ctz !w1 in
             result := (kk lsl 5) + ctz t.l0.(kk);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
  end

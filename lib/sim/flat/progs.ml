module Sym = Ssreset_check.Sym
module Csr = Ssreset_graph.Csr
module Registry = Ssreset_check.Registry

type entry = {
  pname : string;
  describe : string;
  spec : Sym.spec;
  params_of_n : int -> (string * int) list;
}

let entries =
  [
    {
      pname = "unison-sdr";
      describe = "composed U\xe2\x88\x98SDR (status/distance/clock)";
      spec = Registry.unison_sdr_composed_spec;
      params_of_n = Registry.unison_sdr_params_of_n;
    };
    {
      pname = "tail-unison";
      describe = "self-contained tail-biased unison";
      spec = Registry.tail_unison_spec;
      params_of_n = Registry.tail_unison_params_of_n;
    };
    {
      pname = "min-unison";
      describe = "self-contained min-repair unison";
      spec = Registry.min_unison_spec;
      params_of_n = Registry.min_unison_params_of_n;
    };
  ]

let find name =
  match List.find_opt (fun e -> String.equal e.pname name) entries with
  | Some e -> Some e
  | None -> (
      let needle = String.lowercase_ascii name in
      let contains hay =
        let hay = String.lowercase_ascii hay in
        let hl = String.length hay and nl = String.length needle in
        let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
        nl > 0 && go 0
      in
      match List.filter (fun e -> contains e.pname) entries with
      | [ e ] -> Some e
      | _ -> None)

let build e csrg = Flat.compile ~csr:csrg ~params:(e.params_of_n (Csr.n csrg)) e.spec

let init_ground p =
  Array.iter
    (fun (field, _) ->
      for u = 0 to Flat.n p - 1 do
        Flat.set_int p ~field u 0
      done)
    (Flat.fields p)

(* Closed-term evaluation for range bounds (well_formed guarantees they
   mention only params and literals). *)
let rec closed_term params (t : Sym.term) =
  match t with
  | Sym.Num k -> k
  | Sym.Bool b -> if b then 1 else 0
  | Sym.Param s -> (
      match List.assoc_opt s params with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Progs: unbound parameter %s" s))
  | Sym.Add (a, b) -> closed_term params a + closed_term params b
  | Sym.Sub (a, b) -> closed_term params a - closed_term params b
  | Sym.Neg a -> -closed_term params a
  | Sym.Ite (c, a, b) ->
      if closed_form params c then closed_term params a
      else closed_term params b
  | Sym.Var _ | Sym.Ctor _ | Sym.Min_nbr _ | Sym.Mex_nbr _ | Sym.Count_nbr _
    ->
      invalid_arg "Progs: range bound is not a closed term"

and closed_form params (f : Sym.form) =
  match f with
  | Sym.Const b -> b
  | Sym.Not f -> not (closed_form params f)
  | Sym.And fs -> List.for_all (closed_form params) fs
  | Sym.Or fs -> List.exists (closed_form params) fs
  | Sym.Imp (a, b) -> (not (closed_form params a)) || closed_form params b
  | Sym.Eq (a, b) -> closed_term params a = closed_term params b
  | Sym.Le (a, b) -> closed_term params a <= closed_term params b
  | Sym.Lt (a, b) -> closed_term params a < closed_term params b
  | Sym.Forall_nbr _ | Sym.Exists_nbr _ ->
      invalid_arg "Progs: range bound is not a closed form"

let scramble_node p ranges ~rng u =
  Array.iter
    (fun (field, kind) ->
      match (kind : Flat.kind) with
      | Flat.KEnum cs ->
          Flat.set_int p ~field u (Random.State.int rng (Array.length cs))
      | Flat.KBool -> Flat.set_int p ~field u (Random.State.int rng 2)
      | Flat.KInt -> (
          match List.assoc_opt field ranges with
          | Some (lo, hi) when hi > lo ->
              Flat.set_int p ~field u (lo + Random.State.full_int rng (hi - lo))
          | Some _ | None -> ()))
    (Flat.fields p)

let field_ranges p =
  let params = Flat.params p in
  List.map
    (fun (f, lo, hi) -> (f, (closed_term params lo, closed_term params hi)))
    (Flat.spec p).Sym.sp_ir.Sym.ranges

let perturb p ~rng k =
  let n = Flat.n p in
  let ranges = field_ranges p in
  let seen = Hashtbl.create (2 * k) in
  let picked = ref 0 in
  while !picked < min k n do
    let u = Random.State.full_int rng n in
    if not (Hashtbl.mem seen u) then begin
      Hashtbl.add seen u ();
      scramble_node p ranges ~rng u;
      incr picked
    end
  done

let init_random p ~rng =
  let ranges = field_ranges p in
  for u = 0 to Flat.n p - 1 do
    scramble_node p ranges ~rng u
  done

let outcome_string (o : Ssreset_sim.Engine.outcome) =
  match o with
  | Ssreset_sim.Engine.Stabilized -> "stabilized"
  | Ssreset_sim.Engine.Terminal -> "terminal"
  | Ssreset_sim.Engine.Step_limit -> "step-limit"

let digest p (r : Flat.result) =
  Printf.sprintf "outcome=%s steps=%d moves=%d rounds=%d state=%x"
    (outcome_string r.Flat.outcome) r.Flat.steps r.Flat.moves r.Flat.rounds
    (Flat.checksum p)

module Graph = Ssreset_graph.Graph
module Histogram = Ssreset_obs.Histogram
module Metrics = Ssreset_obs.Metrics
module Prof = Ssreset_obs.Prof

type outcome = Stabilized | Terminal | Step_limit

type scheduler = [ `Full | `Incremental ]

type 'state result = {
  outcome : outcome;
  final : 'state array;
  steps : int;
  moves : int;
  moves_per_process : int array;
  moves_per_rule : (string * int) list;
  rounds : int;
  wall_s : float;
}

(* Enabled rule of every process, or None — the engine's hot path.  [run]
   maintains this table persistently (see [refresh_full] / [refresh_moved]);
   the standalone [enabled_table] builds it from scratch for the public
   one-shot [step]. *)
let enabled_table algo g cfg =
  Array.init (Graph.n g) (fun u ->
      Algorithm.enabled_rule algo (Algorithm.view g cfg u))

let refresh_full algo g cfg table =
  for u = 0 to Graph.n g - 1 do
    table.(u) <- Algorithm.enabled_rule algo (Algorithm.view g cfg u)
  done

(* Dirty-set refresh: a process's enabled rule depends only on its view (its
   own state plus its neighbors' states), and a step changes only the movers'
   states — so only the closed neighborhoods of the movers can change
   enabled status.  [stamp]/[gen] deduplicate processes shared by several
   movers' neighborhoods without any per-step allocation. *)
let refresh_moved algo g cfg table stamp gen moved =
  incr gen;
  let gen = !gen in
  let touch u =
    if stamp.(u) <> gen then begin
      stamp.(u) <- gen;
      table.(u) <- Algorithm.enabled_rule algo (Algorithm.view g cfg u)
    end
  in
  List.iter
    (fun (u, _rule) ->
      touch u;
      Array.iter touch (Graph.neighbors g u))
    moved

(* Sorted enabled list out of the table — an O(n) pointer scan, negligible
   next to guard evaluation. *)
let enabled_of_table table n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    if table.(u) <> None then acc := u :: !acc
  done;
  !acc

(* ----------------------------- profiling ------------------------------- *)

(* Pre-resolved instruments so the hot loop never looks anything up by
   name.  Phase attribution is lap-based: [mark] is the last phase
   boundary; closing a phase is one clock read, one histogram record and
   one mutation — the whole per-step overhead with profiling on is 5 + k
   clock reads for k movers, and exactly zero extra work with it off. *)
type prof_ctx = {
  p : Prof.t;
  scan : Prof.timer;  (* enabled-table scan + overlap check *)
  select : Prof.timer;  (* daemon selection *)
  apply : Prof.timer;  (* configuration copy + rule actions *)
  refresh : Prof.timer;  (* full rescan or dirty-set refresh *)
  neutralize : Prof.timer;  (* round-accounting neutralization *)
  callbacks : Prof.timer;  (* observer / on_step / on_round / windows *)
  stop_check : Prof.timer;  (* the [stop] predicate *)
  rule_timers : (string, Prof.timer) Hashtbl.t;
  rule_moves : (string, Metrics.counter) Hashtbl.t;
  c_touched : Metrics.counter;  (* dirty-set touch attempts *)
  c_evals : Metrics.counter;  (* guard re-evaluations actually done *)
  c_dedup : Metrics.counter;  (* touches skipped by the stamp (hit rate) *)
  c_flips : Metrics.counter;  (* enabled-table churn: entries that changed *)
  h_refresh : Histogram.t;  (* per-step refresh size (evals) *)
  mutable mark : int;
}

let make_prof_ctx p =
  let m = Prof.metrics p in
  (* Bind every instrument before the record literal: record fields
     evaluate right-to-left, and registration order is what the profile
     summary (and `ssreset prof report`) displays — it must follow the
     pipeline. *)
  let scan = Prof.timer p "phase.scan" in
  let select = Prof.timer p "phase.select" in
  let apply = Prof.timer p "phase.apply" in
  let refresh = Prof.timer p "phase.refresh" in
  let neutralize = Prof.timer p "phase.neutralize" in
  let callbacks = Prof.timer p "phase.callbacks" in
  let stop_check = Prof.timer p "phase.stop" in
  let c_touched = Metrics.counter m "sched.touched" in
  let c_evals = Metrics.counter m "sched.evals" in
  let c_dedup = Metrics.counter m "sched.dedup_hits" in
  let c_flips = Metrics.counter m "sched.table_flips" in
  let h_refresh = Prof.histogram p "sched.refresh_size" in
  {
    p;
    scan;
    select;
    apply;
    refresh;
    neutralize;
    callbacks;
    stop_check;
    rule_timers = Hashtbl.create 8;
    rule_moves = Hashtbl.create 8;
    c_touched;
    c_evals;
    c_dedup;
    c_flips;
    h_refresh;
    mark = Prof.now_ns ();
  }

let lap pc tm =
  let now = Prof.now_ns () in
  Prof.record_span tm (now - pc.mark);
  pc.mark <- now

let rule_timer pc name =
  try Hashtbl.find pc.rule_timers name
  with Not_found ->
    let tm = Prof.timer pc.p ("rule." ^ name) in
    Hashtbl.replace pc.rule_timers name tm;
    tm

let rule_counter pc name =
  try Hashtbl.find pc.rule_moves name
  with Not_found ->
    let c = Metrics.counter (Prof.metrics pc.p) ("moves." ^ name) in
    Hashtbl.replace pc.rule_moves name c;
    c

let same_entry before after =
  match (before, after) with
  | None, None -> true
  | Some a, Some b -> String.equal a.Algorithm.rule_name b.Algorithm.rule_name
  | _ -> false

(* Instrumented twins of [refresh_full] / [refresh_moved]: same table
   writes in the same order (results stay bit-identical), plus the
   scheduler counters the profile reports. *)
let refresh_full_prof pc algo g cfg table =
  let n = Graph.n g in
  for u = 0 to n - 1 do
    let before = table.(u) in
    let after = Algorithm.enabled_rule algo (Algorithm.view g cfg u) in
    table.(u) <- after;
    if not (same_entry before after) then Metrics.incr pc.c_flips
  done;
  Metrics.add pc.c_evals n;
  Histogram.record pc.h_refresh n

let refresh_moved_prof pc algo g cfg table stamp gen moved =
  incr gen;
  let gen = !gen in
  let evals = ref 0 in
  let touch u =
    Metrics.incr pc.c_touched;
    if stamp.(u) <> gen then begin
      stamp.(u) <- gen;
      incr evals;
      let before = table.(u) in
      let after = Algorithm.enabled_rule algo (Algorithm.view g cfg u) in
      table.(u) <- after;
      if not (same_entry before after) then Metrics.incr pc.c_flips
    end
    else Metrics.incr pc.c_dedup
  in
  List.iter
    (fun (u, _rule) ->
      touch u;
      Array.iter touch (Graph.neighbors g u))
    moved;
  Metrics.add pc.c_evals !evals;
  Histogram.record pc.h_refresh !evals

let assert_exclusive algorithm graph cfg enabled =
  List.iter
    (fun u ->
      match Algorithm.exclusive_rules algorithm (Algorithm.view graph cfg u) with
      | [] | [ _ ] -> ()
      | names ->
          invalid_arg
            (Printf.sprintf "engine: overlapping rules at process %d: %s" u
               (String.concat ", " names)))
    enabled

(* Core of one atomic step, given the current enabled-rule [table] (which
   must describe [cfg]).  Returns the next configuration and the activated
   (process, rule-name) pairs, or [None] when terminal. *)
let step_with_table ~prof ~rng ~check_overlap ~on_enabled ~algorithm ~graph
    ~daemon ~step_index ~table cfg =
  match enabled_of_table table (Graph.n graph) with
  | [] -> None
  | enabled ->
      if check_overlap then assert_exclusive algorithm graph cfg enabled;
      (match on_enabled with Some f -> f enabled | None -> ());
      (match prof with Some pc -> lap pc pc.scan | None -> ());
      let ctx =
        {
          Daemon.step = step_index;
          graph;
          enabled;
          rule_name =
            (fun u ->
              match table.(u) with
              | Some r -> r.Algorithm.rule_name
              | None -> invalid_arg "rule_name: disabled process");
        }
      in
      let chosen = daemon.Daemon.select rng ctx in
      Daemon.check_selection ctx chosen;
      (match prof with Some pc -> lap pc pc.select | None -> ());
      let next = Array.copy cfg in
      let moved =
        match prof with
        | None ->
            List.map
              (fun u ->
                match table.(u) with
                | Some r ->
                    next.(u) <- r.Algorithm.action (Algorithm.view graph cfg u);
                    (u, r.Algorithm.rule_name)
                | None -> assert false)
              chosen
        | Some pc ->
            (* Per-rule attribution without extra clock reads: movers chain
               laps, so their spans tile the apply phase exactly (the first
               mover's span absorbs the configuration copy).  The phase
               total is derived from the chain, not measured again. *)
            let apply_start = pc.mark in
            let moved =
              List.map
                (fun u ->
                  match table.(u) with
                  | Some r ->
                      let name = r.Algorithm.rule_name in
                      next.(u) <-
                        r.Algorithm.action (Algorithm.view graph cfg u);
                      lap pc (rule_timer pc name);
                      Metrics.incr (rule_counter pc name);
                      (u, name)
                  | None -> assert false)
                chosen
            in
            Prof.record_span pc.apply (pc.mark - apply_start);
            moved
      in
      Some (next, moved)

(* Each rng-less call gets a fresh state derived from [seed] (default 0):
   a module-level shared state would make interleaved engine runs depend on
   call order, which is exactly what reproducible traces cannot afford. *)
let step ?rng ?(seed = 0) ?(check_overlap = false) ?on_enabled ~algorithm
    ~graph ~daemon ~step_index cfg =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let table = enabled_table algorithm graph cfg in
  step_with_table ~prof:None ~rng ~check_overlap ~on_enabled ~algorithm ~graph
    ~daemon ~step_index ~table cfg

let run ?rng ?(seed = 0) ?(max_steps = 10_000_000) ?(check_overlap = false)
    ?(scheduler = `Incremental) ?prof ?observer ?on_step ?on_round
    ?(stop = fun _ -> false) ~algorithm ~graph ~daemon cfg0 =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let t0 = Unix.gettimeofday () in
  let prof_ctx =
    Option.map
      (fun p ->
        Prof.gc_mark p;
        make_prof_ctx p)
      prof
  in
  let n = Graph.n graph in
  let moves_per_process = Array.make n 0 in
  let moves_per_rule = Hashtbl.create 8 in
  let bump_rule name =
    Hashtbl.replace moves_per_rule name
      (1 + Option.value ~default:0 (Hashtbl.find_opt moves_per_rule name))
  in
  (* The enabled-rule table always describes the *current* configuration:
     full scan at start, then either a full rescan per step (`Full) or a
     dirty-set refresh of the movers' closed neighborhoods (`Incremental).
     Both paths maintain the same table contents, so every consumer below
     (selection, neutralization, round refill) is scheduler-agnostic and the
     two schedulers are bit-identical by construction. *)
  let table = enabled_table algorithm graph cfg0 in
  let stamp = Array.make n 0 in
  let gen = ref 0 in
  (* Round accounting (§2.4): [pending] holds the processes enabled at the
     start of the current round that have neither executed a rule nor been
     neutralized yet.  When it empties, a round is complete. *)
  let pending = Hashtbl.create n in
  let completed_rounds = ref 0 in
  let steps_in_round = ref 0 in
  let refill_pending () =
    Hashtbl.reset pending;
    for u = 0 to n - 1 do
      if table.(u) <> None then Hashtbl.replace pending u ()
    done
  in
  refill_pending ();
  (* The initial full table build (and everything since [run] began) is
     guard-scan work: close the first lap into the scan phase. *)
  (match prof_ctx with Some pc -> lap pc pc.scan | None -> ());
  let total_moves = ref 0 in
  let steps = ref 0 in
  let cfg = ref cfg0 in
  let outcome = ref Step_limit in
  (try
     let stopped = stop !cfg in
     (match prof_ctx with Some pc -> lap pc pc.stop_check | None -> ());
     if stopped then begin
       outcome := Stabilized;
       raise Exit
     end;
     while !steps < max_steps do
       let enabled_count = ref 0 in
       let on_enabled =
         match on_step with
         | None -> None
         | Some _ -> Some (fun l -> enabled_count := List.length l)
       in
       match
         step_with_table ~prof:prof_ctx ~rng ~check_overlap ~on_enabled
           ~algorithm ~graph ~daemon ~step_index:!steps ~table !cfg
       with
       | None ->
           outcome := Terminal;
           raise Exit
       | Some (next, moved) ->
           incr steps;
           incr steps_in_round;
           List.iter
             (fun (u, name) ->
               incr total_moves;
               moves_per_process.(u) <- moves_per_process.(u) + 1;
               bump_rule name;
               Hashtbl.remove pending u)
             moved;
           (match (scheduler, prof_ctx) with
           | `Full, None -> refresh_full algorithm graph next table
           | `Full, Some pc -> refresh_full_prof pc algorithm graph next table
           | `Incremental, None ->
               refresh_moved algorithm graph next table stamp gen moved
           | `Incremental, Some pc ->
               refresh_moved_prof pc algorithm graph next table stamp gen moved);
           (match prof_ctx with Some pc -> lap pc pc.refresh | None -> ());
           (* Neutralization: pending processes that were enabled before the
              step (by definition of pending) and are disabled after it.
              Only the movers' closed neighborhoods can change enabled
              status — the same invariant the incremental scheduler rests
              on — so only they need checking: O(movers·Δ), not O(n), and
              valid under either scheduler. *)
           let neutralize u =
             if table.(u) = None then Hashtbl.remove pending u
           in
           List.iter
             (fun (u, _) ->
               neutralize u;
               Array.iter neutralize (Graph.neighbors graph u))
             moved;
           (match prof_ctx with Some pc -> lap pc pc.neutralize | None -> ());
           cfg := next;
           (match observer with
           | Some f -> f ~step:(!steps - 1) ~moved next
           | None -> ());
           (match on_step with
           | Some f ->
               f ~step:(!steps - 1) ~enabled:!enabled_count
                 ~selected:(List.length moved)
           | None -> ());
           (* Round completion is reported after the observer so that any
              probes accumulated by the observer are up to date when the
              [on_round] snapshot fires. *)
           if Hashtbl.length pending = 0 then begin
             incr completed_rounds;
             steps_in_round := 0;
             (match on_round with
             | Some f ->
                 f ~round:!completed_rounds ~steps:!steps ~moves:!total_moves
                   next
             | None -> ());
             refill_pending ()
           end;
           (match prof_ctx with
           | Some pc ->
               Prof.tick pc.p ~moves:(List.length moved);
               lap pc pc.callbacks
           | None -> ());
           let stopped = stop next in
           (match prof_ctx with Some pc -> lap pc pc.stop_check | None -> ());
           if stopped then begin
             outcome := Stabilized;
             raise Exit
           end
     done
   with Exit -> ());
  let rounds = !completed_rounds + if !steps_in_round > 0 then 1 else 0 in
  let moves_per_rule =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) moves_per_rule []
    |> List.sort compare
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  (match prof_ctx with
  | Some pc ->
      Prof.gc_collect pc.p;
      let m = Prof.metrics pc.p in
      (* Accumulates across runs sharing one profiler, like every other
         instrument — the summary's wall_s is the total profiled time. *)
      let g = Metrics.gauge m "engine.wall_s" in
      Metrics.set g (Metrics.gauge_value g +. wall_s)
  | None -> ());
  {
    outcome = !outcome;
    final = !cfg;
    steps = !steps;
    moves = !total_moves;
    moves_per_process;
    moves_per_rule;
    rounds;
    wall_s;
  }

let moves_of_rules per_rule ~prefixes =
  let matches name =
    List.exists
      (fun p ->
        String.length name >= String.length p
        && String.equal (String.sub name 0 (String.length p)) p)
      prefixes
  in
  List.fold_left
    (fun acc (name, c) -> if matches name then acc + c else acc)
    0 per_rule

module Graph = Ssreset_graph.Graph

type outcome = Stabilized | Terminal | Step_limit

type 'state result = {
  outcome : outcome;
  final : 'state array;
  steps : int;
  moves : int;
  moves_per_process : int array;
  moves_per_rule : (string * int) list;
  rounds : int;
  wall_s : float;
}

(* Enabled rule of every process, or None.  This is the hot path: it is
   recomputed from scratch every step, which is simple and fast enough for
   the experiment sizes used here (n <= a few hundred). *)
let enabled_table algo g cfg =
  Array.init (Graph.n g) (fun u ->
      Algorithm.enabled_rule algo (Algorithm.view g cfg u))

(* Shared default RNG: allocated once at module initialization instead of on
   every [step] call.  Callers that need per-call reproducibility pass their
   own state; deterministic daemons never touch it. *)
let default_rng = Random.State.make [| 0 |]

let assert_exclusive algorithm graph cfg enabled =
  List.iter
    (fun u ->
      match Algorithm.exclusive_rules algorithm (Algorithm.view graph cfg u) with
      | [] | [ _ ] -> ()
      | names ->
          invalid_arg
            (Printf.sprintf "engine: overlapping rules at process %d: %s" u
               (String.concat ", " names)))
    enabled

let step ?rng ?(check_overlap = false) ?on_enabled ~algorithm ~graph ~daemon
    ~step_index cfg =
  let rng = match rng with Some r -> r | None -> default_rng in
  let table = enabled_table algorithm graph cfg in
  let enabled = ref [] in
  for u = Graph.n graph - 1 downto 0 do
    if table.(u) <> None then enabled := u :: !enabled
  done;
  match !enabled with
  | [] -> None
  | enabled ->
      if check_overlap then assert_exclusive algorithm graph cfg enabled;
      (match on_enabled with Some f -> f enabled | None -> ());
      let ctx =
        {
          Daemon.step = step_index;
          graph;
          enabled;
          rule_name =
            (fun u ->
              match table.(u) with
              | Some r -> r.Algorithm.rule_name
              | None -> invalid_arg "rule_name: disabled process");
        }
      in
      let chosen = daemon.Daemon.select rng ctx in
      Daemon.check_selection ctx chosen;
      let next = Array.copy cfg in
      let moved =
        List.map
          (fun u ->
            match table.(u) with
            | Some r ->
                next.(u) <- r.Algorithm.action (Algorithm.view graph cfg u);
                (u, r.Algorithm.rule_name)
            | None -> assert false)
          chosen
      in
      Some (next, moved)

let run ?rng ?(max_steps = 10_000_000) ?(check_overlap = false) ?observer
    ?on_step ?on_round ?(stop = fun _ -> false) ~algorithm ~graph ~daemon cfg0
    =
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0 |] in
  let t0 = Unix.gettimeofday () in
  let n = Graph.n graph in
  let moves_per_process = Array.make n 0 in
  let moves_per_rule = Hashtbl.create 8 in
  let bump_rule name =
    Hashtbl.replace moves_per_rule name
      (1 + Option.value ~default:0 (Hashtbl.find_opt moves_per_rule name))
  in
  (* Round accounting (§2.4): [pending] holds the processes enabled at the
     start of the current round that have neither executed a rule nor been
     neutralized yet.  When it empties, a round is complete. *)
  let pending = Hashtbl.create n in
  let completed_rounds = ref 0 in
  let steps_in_round = ref 0 in
  let refill_pending cfg =
    Hashtbl.reset pending;
    List.iter
      (fun u -> Hashtbl.replace pending u ())
      (Algorithm.enabled_processes algorithm graph cfg)
  in
  refill_pending cfg0;
  let total_moves = ref 0 in
  let steps = ref 0 in
  let cfg = ref cfg0 in
  let outcome = ref Step_limit in
  (try
     if stop !cfg then begin
       outcome := Stabilized;
       raise Exit
     end;
     while !steps < max_steps do
       let enabled_count = ref 0 in
       let on_enabled =
         match on_step with
         | None -> None
         | Some _ -> Some (fun l -> enabled_count := List.length l)
       in
       match
         step ~rng ~check_overlap ?on_enabled ~algorithm ~graph ~daemon
           ~step_index:!steps !cfg
       with
       | None ->
           outcome := Terminal;
           raise Exit
       | Some (next, moved) ->
           incr steps;
           incr steps_in_round;
           List.iter
             (fun (u, name) ->
               incr total_moves;
               moves_per_process.(u) <- moves_per_process.(u) + 1;
               bump_rule name;
               Hashtbl.remove pending u)
             moved;
           (* Neutralization: pending processes that were enabled before the
              step (by definition of pending) and are disabled after it. *)
           Hashtbl.iter
             (fun u () ->
               if not (Algorithm.is_enabled algorithm (Algorithm.view graph next u))
               then Hashtbl.remove pending u)
             (Hashtbl.copy pending);
           cfg := next;
           (match observer with
           | Some f -> f ~step:(!steps - 1) ~moved next
           | None -> ());
           (match on_step with
           | Some f ->
               f ~step:(!steps - 1) ~enabled:!enabled_count
                 ~selected:(List.length moved)
           | None -> ());
           (* Round completion is reported after the observer so that any
              probes accumulated by the observer are up to date when the
              [on_round] snapshot fires. *)
           if Hashtbl.length pending = 0 then begin
             incr completed_rounds;
             steps_in_round := 0;
             (match on_round with
             | Some f ->
                 f ~round:!completed_rounds ~steps:!steps ~moves:!total_moves
                   next
             | None -> ());
             refill_pending next
           end;
           if stop next then begin
             outcome := Stabilized;
             raise Exit
           end
     done
   with Exit -> ());
  let rounds = !completed_rounds + if !steps_in_round > 0 then 1 else 0 in
  let moves_per_rule =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) moves_per_rule []
    |> List.sort compare
  in
  {
    outcome = !outcome;
    final = !cfg;
    steps = !steps;
    moves = !total_moves;
    moves_per_process;
    moves_per_rule;
    rounds;
    wall_s = Unix.gettimeofday () -. t0;
  }

let moves_of_rules per_rule ~prefixes =
  let matches name =
    List.exists
      (fun p ->
        String.length name >= String.length p
        && String.equal (String.sub name 0 (String.length p)) p)
      prefixes
  in
  List.fold_left
    (fun acc (name, c) -> if matches name then acc + c else acc)
    0 per_rule

module Graph = Ssreset_graph.Graph

type outcome = Stabilized | Terminal | Step_limit

type scheduler = [ `Full | `Incremental ]

type 'state result = {
  outcome : outcome;
  final : 'state array;
  steps : int;
  moves : int;
  moves_per_process : int array;
  moves_per_rule : (string * int) list;
  rounds : int;
  wall_s : float;
}

(* Enabled rule of every process, or None — the engine's hot path.  [run]
   maintains this table persistently (see [refresh_full] / [refresh_moved]);
   the standalone [enabled_table] builds it from scratch for the public
   one-shot [step]. *)
let enabled_table algo g cfg =
  Array.init (Graph.n g) (fun u ->
      Algorithm.enabled_rule algo (Algorithm.view g cfg u))

let refresh_full algo g cfg table =
  for u = 0 to Graph.n g - 1 do
    table.(u) <- Algorithm.enabled_rule algo (Algorithm.view g cfg u)
  done

(* Dirty-set refresh: a process's enabled rule depends only on its view (its
   own state plus its neighbors' states), and a step changes only the movers'
   states — so only the closed neighborhoods of the movers can change
   enabled status.  [stamp]/[gen] deduplicate processes shared by several
   movers' neighborhoods without any per-step allocation. *)
let refresh_moved algo g cfg table stamp gen moved =
  incr gen;
  let gen = !gen in
  let touch u =
    if stamp.(u) <> gen then begin
      stamp.(u) <- gen;
      table.(u) <- Algorithm.enabled_rule algo (Algorithm.view g cfg u)
    end
  in
  List.iter
    (fun (u, _rule) ->
      touch u;
      Array.iter touch (Graph.neighbors g u))
    moved

(* Sorted enabled list out of the table — an O(n) pointer scan, negligible
   next to guard evaluation. *)
let enabled_of_table table n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    if table.(u) <> None then acc := u :: !acc
  done;
  !acc

let assert_exclusive algorithm graph cfg enabled =
  List.iter
    (fun u ->
      match Algorithm.exclusive_rules algorithm (Algorithm.view graph cfg u) with
      | [] | [ _ ] -> ()
      | names ->
          invalid_arg
            (Printf.sprintf "engine: overlapping rules at process %d: %s" u
               (String.concat ", " names)))
    enabled

(* Core of one atomic step, given the current enabled-rule [table] (which
   must describe [cfg]).  Returns the next configuration and the activated
   (process, rule-name) pairs, or [None] when terminal. *)
let step_with_table ~rng ~check_overlap ~on_enabled ~algorithm ~graph ~daemon
    ~step_index ~table cfg =
  match enabled_of_table table (Graph.n graph) with
  | [] -> None
  | enabled ->
      if check_overlap then assert_exclusive algorithm graph cfg enabled;
      (match on_enabled with Some f -> f enabled | None -> ());
      let ctx =
        {
          Daemon.step = step_index;
          graph;
          enabled;
          rule_name =
            (fun u ->
              match table.(u) with
              | Some r -> r.Algorithm.rule_name
              | None -> invalid_arg "rule_name: disabled process");
        }
      in
      let chosen = daemon.Daemon.select rng ctx in
      Daemon.check_selection ctx chosen;
      let next = Array.copy cfg in
      let moved =
        List.map
          (fun u ->
            match table.(u) with
            | Some r ->
                next.(u) <- r.Algorithm.action (Algorithm.view graph cfg u);
                (u, r.Algorithm.rule_name)
            | None -> assert false)
          chosen
      in
      Some (next, moved)

(* Each rng-less call gets a fresh state derived from [seed] (default 0):
   a module-level shared state would make interleaved engine runs depend on
   call order, which is exactly what reproducible traces cannot afford. *)
let step ?rng ?(seed = 0) ?(check_overlap = false) ?on_enabled ~algorithm
    ~graph ~daemon ~step_index cfg =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let table = enabled_table algorithm graph cfg in
  step_with_table ~rng ~check_overlap ~on_enabled ~algorithm ~graph ~daemon
    ~step_index ~table cfg

let run ?rng ?(seed = 0) ?(max_steps = 10_000_000) ?(check_overlap = false)
    ?(scheduler = `Incremental) ?observer ?on_step ?on_round
    ?(stop = fun _ -> false) ~algorithm ~graph ~daemon cfg0 =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| seed |]
  in
  let t0 = Unix.gettimeofday () in
  let n = Graph.n graph in
  let moves_per_process = Array.make n 0 in
  let moves_per_rule = Hashtbl.create 8 in
  let bump_rule name =
    Hashtbl.replace moves_per_rule name
      (1 + Option.value ~default:0 (Hashtbl.find_opt moves_per_rule name))
  in
  (* The enabled-rule table always describes the *current* configuration:
     full scan at start, then either a full rescan per step (`Full) or a
     dirty-set refresh of the movers' closed neighborhoods (`Incremental).
     Both paths maintain the same table contents, so every consumer below
     (selection, neutralization, round refill) is scheduler-agnostic and the
     two schedulers are bit-identical by construction. *)
  let table = enabled_table algorithm graph cfg0 in
  let stamp = Array.make n 0 in
  let gen = ref 0 in
  (* Round accounting (§2.4): [pending] holds the processes enabled at the
     start of the current round that have neither executed a rule nor been
     neutralized yet.  When it empties, a round is complete. *)
  let pending = Hashtbl.create n in
  let completed_rounds = ref 0 in
  let steps_in_round = ref 0 in
  let refill_pending () =
    Hashtbl.reset pending;
    for u = 0 to n - 1 do
      if table.(u) <> None then Hashtbl.replace pending u ()
    done
  in
  refill_pending ();
  let total_moves = ref 0 in
  let steps = ref 0 in
  let cfg = ref cfg0 in
  let outcome = ref Step_limit in
  (try
     if stop !cfg then begin
       outcome := Stabilized;
       raise Exit
     end;
     while !steps < max_steps do
       let enabled_count = ref 0 in
       let on_enabled =
         match on_step with
         | None -> None
         | Some _ -> Some (fun l -> enabled_count := List.length l)
       in
       match
         step_with_table ~rng ~check_overlap ~on_enabled ~algorithm ~graph
           ~daemon ~step_index:!steps ~table !cfg
       with
       | None ->
           outcome := Terminal;
           raise Exit
       | Some (next, moved) ->
           incr steps;
           incr steps_in_round;
           List.iter
             (fun (u, name) ->
               incr total_moves;
               moves_per_process.(u) <- moves_per_process.(u) + 1;
               bump_rule name;
               Hashtbl.remove pending u)
             moved;
           (match scheduler with
           | `Full -> refresh_full algorithm graph next table
           | `Incremental ->
               refresh_moved algorithm graph next table stamp gen moved);
           (* Neutralization: pending processes that were enabled before the
              step (by definition of pending) and are disabled after it.
              Only the movers' closed neighborhoods can change enabled
              status — the same invariant the incremental scheduler rests
              on — so only they need checking: O(movers·Δ), not O(n), and
              valid under either scheduler. *)
           let neutralize u =
             if table.(u) = None then Hashtbl.remove pending u
           in
           List.iter
             (fun (u, _) ->
               neutralize u;
               Array.iter neutralize (Graph.neighbors graph u))
             moved;
           cfg := next;
           (match observer with
           | Some f -> f ~step:(!steps - 1) ~moved next
           | None -> ());
           (match on_step with
           | Some f ->
               f ~step:(!steps - 1) ~enabled:!enabled_count
                 ~selected:(List.length moved)
           | None -> ());
           (* Round completion is reported after the observer so that any
              probes accumulated by the observer are up to date when the
              [on_round] snapshot fires. *)
           if Hashtbl.length pending = 0 then begin
             incr completed_rounds;
             steps_in_round := 0;
             (match on_round with
             | Some f ->
                 f ~round:!completed_rounds ~steps:!steps ~moves:!total_moves
                   next
             | None -> ());
             refill_pending ()
           end;
           if stop next then begin
             outcome := Stabilized;
             raise Exit
           end
     done
   with Exit -> ());
  let rounds = !completed_rounds + if !steps_in_round > 0 then 1 else 0 in
  let moves_per_rule =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) moves_per_rule []
    |> List.sort compare
  in
  {
    outcome = !outcome;
    final = !cfg;
    steps = !steps;
    moves = !total_moves;
    moves_per_process;
    moves_per_rule;
    rounds;
    wall_s = Unix.gettimeofday () -. t0;
  }

let moves_of_rules per_rule ~prefixes =
  let matches name =
    List.exists
      (fun p ->
        String.length name >= String.length p
        && String.equal (String.sub name 0 (String.length p)) p)
      prefixes
  in
  List.fold_left
    (fun acc (name, c) -> if matches name then acc + c else acc)
    0 per_rule

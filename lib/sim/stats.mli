(** Small numeric helpers for summarizing experiment measurements. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

val summarize : float list -> summary
(** Summary of a sample; all fields are 0 for the empty sample.  [stddev] is
    the sample (Bessel-corrected) standard deviation, 0 for fewer than two
    observations. *)

val summarize_ints : int list -> summary

val max_int_list : int list -> int
(** Maximum of a list of ints, 0 for the empty list. *)

val ratio : int -> int -> float
(** [ratio a b] = a/b as floats; 0 when [b = 0]. *)

val percentile : float list -> p:float -> float
(** [percentile xs ~p] with [0 <= p <= 100]: linear interpolation between
    closest ranks (numpy's default estimator); 0 for the empty sample.
    @raise Invalid_argument when [p] is outside [0, 100]. *)

val median : float list -> float
(** [percentile ~p:50.]. *)

val pp_summary : summary Fmt.t
(** "mean=… min=… max=… sd=… (k samples)". *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

let summarize = function
  | [] -> { count = 0; mean = 0.; min = 0.; max = 0.; stddev = 0. }
  | xs ->
      let count = List.length xs in
      let fcount = float_of_int count in
      let total = List.fold_left ( +. ) 0. xs in
      let mean = total /. fcount in
      let mn = List.fold_left min infinity xs in
      let mx = List.fold_left max neg_infinity xs in
      (* Sample (Bessel-corrected) standard deviation; a single observation
         carries no spread information, so stddev is 0 for count < 2. *)
      let stddev =
        if count < 2 then 0.
        else
          sqrt
            (List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
            /. (fcount -. 1.))
      in
      { count; mean; min = mn; max = mx; stddev }

let summarize_ints xs = summarize (List.map float_of_int xs)
let max_int_list = List.fold_left max 0
let ratio a b = if b = 0 then 0. else float_of_int a /. float_of_int b

let percentile xs ~p =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: need 0 <= p <= 100";
  match List.sort compare xs with
  | [] -> 0.
  | [ x ] -> x
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      (* Linear interpolation between closest ranks (the "type 7" estimator
         used by numpy and R's default). *)
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let median xs = percentile xs ~p:50.

let pp_summary ppf s =
  Fmt.pf ppf "mean=%.1f min=%.0f max=%.0f sd=%.1f (%d samples)" s.mean s.min
    s.max s.stddev s.count

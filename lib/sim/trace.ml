type 'state entry = {
  step : int;
  moved : (int * string) list;
  config : 'state array;
}

type 'state t = {
  initial : 'state array;
  entries : 'state entry list;
}

let record ?rng ?max_steps ?stop ~algorithm ~graph ~daemon cfg0 =
  let initial = Array.copy cfg0 in
  let acc = ref [] in
  let observer ~step ~moved cfg =
    acc := { step; moved; config = Array.copy cfg } :: !acc
  in
  let result =
    Engine.run ?rng ?max_steps ?stop ~observer ~algorithm ~graph ~daemon cfg0
  in
  ({ initial; entries = List.rev !acc }, result)

let length t = List.length t.entries
let configs t = t.initial :: List.map (fun e -> e.config) t.entries

let steps_pairs t =
  let rec walk before = function
    | [] -> []
    | e :: rest -> (before, e.config, e.moved) :: walk e.config rest
  in
  walk t.initial t.entries

let pp ~pp_state ?(max_entries = 50) () ppf t =
  let pp_cfg ppf cfg =
    Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") pp_state) cfg
  in
  Fmt.pf ppf "step -1 (initial): %a" pp_cfg t.initial;
  List.iteri
    (fun i e ->
      if i < max_entries then
        Fmt.pf ppf "@.step %d: moved %a -> %a" e.step
          Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") int string))
          e.moved pp_cfg e.config
      else if i = max_entries then Fmt.pf ppf "@.... (%d more steps)" (length t - max_entries))
    t.entries

let moved_processes t =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e -> List.iter (fun (u, _) -> Hashtbl.replace seen u ()) e.moved)
    t.entries;
  Hashtbl.fold (fun u () acc -> u :: acc) seen [] |> List.sort compare

let rule_sequence t u =
  List.filter_map
    (fun e ->
      List.find_map
        (fun (v, name) -> if v = u then Some name else None)
        e.moved)
    t.entries

module Compact = struct
  type 'state delta = {
    step : int;
    writes : (int * string * 'state) list;
  }

  type 'state t = {
    initial : 'state array;
    deltas : 'state delta list;
  }

  let record ?rng ?max_steps ?stop ~algorithm ~graph ~daemon cfg0 =
    let initial = Array.copy cfg0 in
    let acc = ref [] in
    let observer ~step ~moved cfg =
      (* Composite atomicity: only movers changed, so their new states are
         the whole delta. *)
      let writes = List.map (fun (p, rule) -> (p, rule, cfg.(p))) moved in
      acc := { step; writes } :: !acc
    in
    let result =
      Engine.run ?rng ?max_steps ?stop ~observer ~algorithm ~graph ~daemon cfg0
    in
    ({ initial; deltas = List.rev !acc }, result)

  let length t = List.length t.deltas

  let moves t =
    List.map
      (fun d -> (d.step, List.map (fun (p, rule, _) -> (p, rule)) d.writes))
      t.deltas

  let final t =
    let cfg = Array.copy t.initial in
    List.iter
      (fun d -> List.iter (fun (p, _, s) -> cfg.(p) <- s) d.writes)
      t.deltas;
    cfg
end

let compact t =
  {
    Compact.initial = t.initial;
    deltas =
      List.map
        (fun e ->
          {
            Compact.step = e.step;
            writes =
              List.map (fun (p, rule) -> (p, rule, e.config.(p))) e.moved;
          })
        t.entries;
  }

let expand (c : 'state Compact.t) =
  let cur = ref (Array.copy c.Compact.initial) in
  let entries =
    List.map
      (fun (d : 'state Compact.delta) ->
        let next = Array.copy !cur in
        List.iter (fun (p, _, s) -> next.(p) <- s) d.Compact.writes;
        cur := next;
        {
          step = d.Compact.step;
          moved = List.map (fun (p, rule, _) -> (p, rule)) d.Compact.writes;
          config = next;
        })
      c.Compact.deltas
  in
  { initial = c.Compact.initial; entries }


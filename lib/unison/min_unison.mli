(** Baseline: self-stabilizing unison in the style of Couvreur, Francez &
    Gouda (ICDCS 1992) — reference [20] of the paper — with the large
    period K > n² of the original and the tail discipline of Boulinier's
    parametric analysis (which §5.2 follows).

    A process increments when every neighbor is at its value or one ahead
    (exactly rule U) and escapes to the bottom of a short tail of [alpha]
    values below the ring on local incompatibility, climbing back once its
    neighborhood has settled.  The first reconstruction of this baseline
    reset to 0 {e inside} the ring; the exhaustive model checker
    ([ssreset_check]) found that variant livelocks under the distributed
    unfair daemon on graphs with holes — on C4 a clock at 2 and its reset
    chase each other around the cycle using only values 0..2, for any K —
    which random stabilization tests had missed.  Consistent with
    Boulinier's analysis, correctness under the unfair daemon needs a
    reset value strictly below the ring, so the corrected reconstruction
    instantiates the tail rule core ([Tail_unison]) with CFG's period
    K = n²+1 and a minimal tail [alpha = max 1 (n-2)]. *)

type clock = int

val rule_tick : string
(** ["MU-tick"]. *)

val rule_climb : string
(** ["MU-climb"]: climb one step back toward the ring. *)

val rule_zero : string
(** ["MU-zero"]: escape to the tail bottom [-alpha] on local
    incompatibility. *)

module Make (P : sig
  val k : int
  (** Use [K > n²]. *)

  val alpha : int
  (** Tail length; [max 1 (n - 2)] suffices (holes have length <= n). *)
end) : sig
  val k : int
  val alpha : int

  val algorithm : clock Ssreset_sim.Algorithm.t
  val gamma_init : Ssreset_graph.Graph.t -> clock array
  val clock_gen : clock Ssreset_sim.Fault.generator

  val is_legitimate : Ssreset_graph.Graph.t -> clock array -> bool
  (** Every clock on the ring (>= 0) and every neighbor pair within one
      increment (ring distance <= 1). *)
end

module Algorithm = Ssreset_sim.Algorithm

type clock = int

let rule_tick = "MU-tick"
let rule_climb = "MU-climb"
let rule_zero = "MU-zero"

module Make (P : sig
  val k : int
  val alpha : int
end) =
struct
  let k = P.k
  let alpha = P.alpha

  let () =
    if k < 4 then invalid_arg "Min_unison.Make: need K >= 4";
    if alpha < 1 then invalid_arg "Min_unison.Make: need alpha >= 1"

  (* Same rule core as the tail baseline: only the period differs (CFG's
     K > n² against the tail baseline's 2n+2).  The pure reset-to-0
     variant is NOT self-stabilizing under the distributed unfair daemon:
     on C4 a clock at 2 and its reset chase each other around the hole
     forever (exhaustively checkable with `ssreset_cli check unison`), so
     the reset must land strictly below the ring. *)
  module T = Tail_unison.Make (P)

  let rename (r : clock Algorithm.rule) =
    { r with
      Algorithm.rule_name =
        (if r.Algorithm.rule_name = Tail_unison.rule_tick then rule_tick
         else if r.Algorithm.rule_name = Tail_unison.rule_climb then rule_climb
         else rule_zero) }

  let algorithm : clock Algorithm.t =
    { T.algorithm with
      Algorithm.name = "min-unison";
      rules = List.map rename T.algorithm.rules }

  let gamma_init = T.gamma_init
  let clock_gen = T.clock_gen
  let is_legitimate = T.is_legitimate
end

type t = { oc : out_channel; owned : bool }

let create path = { oc = open_out path; owned = true }
let of_channel oc = { oc; owned = false }

let write t json =
  output_string t.oc (Json.to_string json);
  output_char t.oc '\n';
  flush t.oc

let close t = if t.owned then close_out t.oc else flush t.oc

let schema_version = 1

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    match (status, line) with
    | Unix.WEXITED 0, line when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let manifest ?(extra = []) ~system ~family ~n ~m ~seed ~daemon () =
  Json.Obj
    ([ ("type", Json.String "manifest");
       ("schema", Json.Int schema_version);
       ("system", Json.String system);
       ("family", Json.String family);
       ("n", Json.Int n);
       ("m", Json.Int m);
       ("seed", Json.Int seed);
       ("daemon", Json.String daemon);
       ("git", Json.String (git_describe ())) ]
    @ extra)

let wave_tag = function
  | Span.Init -> [ ("w", Json.String "init") ]
  | Span.Join { parent; d } ->
      [ ("w", Json.String "join"); ("parent", Json.Int parent);
        ("d", Json.Int d) ]
  | Span.Feedback -> [ ("w", Json.String "rf") ]
  | Span.Complete -> [ ("w", Json.String "c") ]

let step_record ~step ~movers =
  Json.Obj
    [ ("type", Json.String "step");
      ("step", Json.Int step);
      ( "movers",
        Json.List
          (List.map
             (fun (p, rule, wave) ->
               Json.Obj
                 ([ ("p", Json.Int p); ("rule", Json.String rule) ]
                 @ match wave with Some ev -> wave_tag ev | None -> []))
             movers) ) ]

let init_record ~active =
  Json.Obj
    [ ("type", Json.String "init");
      ( "active",
        Json.List
          (List.map
             (fun (p, st, d) ->
               Json.Obj
                 [ ("p", Json.Int p); ("st", Json.String st);
                   ("d", Json.Int d) ])
             active) ) ]

let round_record ?(extra = []) ~round ~steps ~moves () =
  Json.Obj
    ([ ("type", Json.String "round");
       ("round", Json.Int round);
       ("steps", Json.Int steps);
       ("moves", Json.Int moves) ]
    @ extra)

let summary ?(extra = []) ~outcome ~rounds ~steps ~moves ~wall_s () =
  let steps_per_s = if wall_s > 0. then float_of_int steps /. wall_s else 0. in
  Json.Obj
    ([ ("type", Json.String "summary");
       ("outcome", Json.String outcome);
       ("rounds", Json.Int rounds);
       ("steps", Json.Int steps);
       ("moves", Json.Int moves);
       ("wall_s", Json.Float wall_s);
       ("steps_per_s", Json.Float steps_per_s) ]
    @ extra)

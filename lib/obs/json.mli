(** A zero-dependency JSON tree, encoder and parser.

    Deliberately tiny: just enough to emit machine-readable telemetry
    (manifests, metric snapshots, benchmark results) and to parse it back in
    tests and validators.  Numbers are split into [Int] and [Float] so that
    counters survive a round-trip exactly; field order of objects is
    preserved by both the encoder and the parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line encoding.  Strings are escaped per RFC 8259 (UTF-8
    bytes pass through).  Non-finite floats encode as [null] — JSON has no
    representation for them. *)

val to_string_hum : t -> string
(** Two-space indented multi-line encoding, for files meant to be read by
    humans too (e.g. BENCH_results.json). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  Numbers
    without [.], [e] or [E] that fit in an OCaml [int] parse as [Int]. *)

val of_string_exn : string -> t
(** @raise Failure on parse errors. *)

(** {2 Accessors} — tiny helpers for tests and validators. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] values widen to float. *)

val to_string_opt : t -> string option
val equal : t -> t -> bool
(** Structural equality (object field order is significant). *)

(** Online bound monitors: watch a running execution against the paper's
    complexity bounds and emit a structured anomaly record the moment one
    trips.

    A {!t} is shared by a set of monitors installed on one run.  It keeps a
    ring buffer of the most recent (step, process, rule) move events; when a
    monitor trips, the anomaly — offending monitor, step, process, observed
    value, violated bound, and the recent event window — is latched here and
    written to the JSONL {!Sink} (record [{"type": "anomaly", ...}]) if one
    was supplied.  Each named monitor trips at most once per run: a bound
    stays violated forever after, so repeating the record would only bury
    the interesting step. *)

type anomaly = {
  monitor : string;
  step : int;  (** Engine step at which the violation was observed. *)
  process : int option;  (** Offending process, when attributable. *)
  value : int;  (** Observed value (move count, round, measure). *)
  bound : int;  (** The bound it violated. *)
  window : (int * int * string) list;
      (** Recent (step, process, rule) events, oldest first, at trip time. *)
}

type t

val create : ?sink:Sink.t -> ?window:int -> unit -> t
(** [window] is the ring-buffer capacity (default 8). *)

val move_bound : t -> name:string -> bound:int -> 'state Obs.t
(** Trips when the cumulative move count exceeds [bound]; the offending
    process is the one whose move crossed the line.  E.g. the [D·n²] total
    move bound of U∘SDR (Theorem 6). *)

val round_bound : t -> name:string -> bound:int -> round:int -> steps:int -> unit
(** [on_round]-shaped hook: call it with each completed [round] (and the
    cumulative [steps] at that point); trips when [round] exceeds [bound].
    E.g. the 3n round bound of U∘SDR (Theorem 7), 8n+4 for FGA∘SDR. *)

val non_increasing :
  t -> name:string -> measure:('state array -> int) -> init:int -> 'state Obs.t
(** Trips when [measure cfg] ever exceeds its previous value along the run —
    e.g. the alive-root count, which Remark 4 proves never grows. *)

val trip :
  t -> monitor:string -> step:int -> ?process:int -> value:int -> bound:int ->
  unit -> unit
(** Low-level: latch (and emit) an anomaly directly.  No-op if a monitor of
    the same name already tripped. *)

val anomalies : t -> anomaly list
(** Latched anomalies, in trip order. *)

val anomaly_count : t -> int

val anomaly_json : anomaly -> Json.t
(** The [ssreset-trace-v1] anomaly record. *)

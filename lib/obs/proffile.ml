let schema = "ssreset-prof-v1"

type window = {
  index : int;
  at_step : int;
  steps : int;
  moves : int;
  wall_s : float;
  steps_per_s : float;
  moves_per_s : float;
  moves_per_rule : (string * int) list;
  gc_minor_words : int;
  gc_major_words : int;
}

type section = {
  ns : int;
  count : int;
  mean_ns : float;
  p50_ns : float;
  p90_ns : float;
  max_ns : int;
}

type summary = {
  steps : int;
  moves : int;
  wall_s : float;
  window_count : int;
  phases : (string * section) list;
  rules : (string * section) list;
  counters : (string * int) list;
  gauges : (string * float) list;
}

type t = {
  system : string;
  family : string;
  n : int;
  m : int;
  seed : int;
  daemon : string;
  window_steps : int;
  windows : window list;
  summary : summary;
}

exception Bad of string

let failf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let int_field ~ctx name json =
  match Option.bind (Json.member name json) Json.to_int_opt with
  | Some v -> v
  | None -> failf "%s: missing int field %S" ctx name

let float_field ~ctx name json =
  match Option.bind (Json.member name json) Json.to_float_opt with
  | Some v -> v
  | None -> failf "%s: missing number field %S" ctx name

let string_field ~ctx name json =
  match Option.bind (Json.member name json) Json.to_string_opt with
  | Some v -> v
  | None -> failf "%s: missing string field %S" ctx name

let obj_field ~ctx name json =
  match Json.member name json with
  | Some (Json.Obj fields) -> fields
  | _ -> failf "%s: missing object field %S" ctx name

let int_assoc ~ctx fields =
  List.map
    (fun (name, v) ->
      match Json.to_int_opt v with
      | Some i -> (name, i)
      | None -> failf "%s: field %S is not an int" ctx name)
    fields

let float_assoc ~ctx fields =
  List.map
    (fun (name, v) ->
      match Json.to_float_opt v with
      | Some f -> (name, f)
      | None -> failf "%s: field %S is not a number" ctx name)
    fields

let parse_window ~ctx json =
  let w =
    {
      index = int_field ~ctx "index" json;
      at_step = int_field ~ctx "at_step" json;
      steps = int_field ~ctx "steps" json;
      moves = int_field ~ctx "moves" json;
      wall_s = float_field ~ctx "wall_s" json;
      steps_per_s = float_field ~ctx "steps_per_s" json;
      moves_per_s = float_field ~ctx "moves_per_s" json;
      moves_per_rule = int_assoc ~ctx (obj_field ~ctx "moves_per_rule" json);
      gc_minor_words = int_field ~ctx "gc_minor_words" json;
      gc_major_words = int_field ~ctx "gc_major_words" json;
    }
  in
  if w.steps <= 0 then failf "%s: window covers %d steps" ctx w.steps;
  if w.wall_s < 0. then failf "%s: negative wall_s" ctx;
  if w.moves < w.steps then
    failf "%s: %d moves over %d steps (a step moves at least one process)"
      ctx w.moves w.steps;
  w

let parse_section ~ctx (name, json) =
  let ctx = Printf.sprintf "%s %S" ctx name in
  let s =
    {
      ns = int_field ~ctx "ns" json;
      count = int_field ~ctx "count" json;
      mean_ns = float_field ~ctx "mean_ns" json;
      p50_ns = float_field ~ctx "p50_ns" json;
      p90_ns = float_field ~ctx "p90_ns" json;
      max_ns = int_field ~ctx "max_ns" json;
    }
  in
  if s.ns < 0 || s.count < 0 then failf "%s: negative totals" ctx;
  (name, s)

let parse_summary ~ctx json =
  let metrics = Json.member "metrics" json in
  let metrics_obj name =
    match Option.bind metrics (Json.member name) with
    | Some (Json.Obj fields) -> fields
    | _ -> failf "%s: missing metrics.%s object" ctx name
  in
  {
    steps = int_field ~ctx "steps" json;
    moves = int_field ~ctx "moves" json;
    wall_s = float_field ~ctx "wall_s" json;
    window_count = int_field ~ctx "windows" json;
    phases =
      List.map (parse_section ~ctx:"phase") (obj_field ~ctx "phases" json);
    rules = List.map (parse_section ~ctx:"rule") (obj_field ~ctx "rules" json);
    counters = int_assoc ~ctx:(ctx ^ " counters") (metrics_obj "counters");
    gauges = float_assoc ~ctx:(ctx ^ " gauges") (metrics_obj "gauges");
  }

let validate t =
  let ctx = "summary" in
  if t.summary.window_count <> List.length t.windows then
    failf "%s: windows field %d but %d window records" ctx
      t.summary.window_count (List.length t.windows);
  let wsteps = List.fold_left (fun a (w : window) -> a + w.steps) 0 t.windows in
  let wmoves = List.fold_left (fun a (w : window) -> a + w.moves) 0 t.windows in
  if wsteps > t.summary.steps then
    failf "%s: windows cover %d steps but the run had %d" ctx wsteps
      t.summary.steps;
  if wmoves > t.summary.moves then
    failf "%s: windows cover %d moves but the run had %d" ctx wmoves
      t.summary.moves;
  (* Every per-rule window delta must be covered by the summary counter —
     windows report [Metrics.diff]s, so the sum over windows can never
     exceed the final counter value. *)
  let per_rule = Hashtbl.create 8 in
  List.iter
    (fun w ->
      List.iter
        (fun (rule, d) ->
          if d < 0 then failf "window %d: negative delta for rule %s" w.index rule;
          Hashtbl.replace per_rule rule
            (d + Option.value ~default:0 (Hashtbl.find_opt per_rule rule)))
        w.moves_per_rule)
    t.windows;
  Hashtbl.iter
    (fun rule total ->
      match List.assoc_opt ("moves." ^ rule) t.summary.counters with
      | Some final when final >= total -> ()
      | Some final ->
          failf
            "%s: windows attribute %d moves to rule %s but the counter ends \
             at %d"
            ctx total rule final
      | None ->
          failf "%s: windows mention rule %s but no moves.%s counter exists"
            ctx rule rule)
    per_rule

let load_string ?(path = "<string>") body =
  let parse () =
    let lines = String.split_on_char '\n' body in
    let records =
      List.concat
        (List.mapi
           (fun i line ->
             if String.trim line = "" then []
             else
               match Json.of_string line with
               | Ok json -> [ (i + 1, json) ]
               | Error msg -> failf "%s:%d: %s" path (i + 1) msg)
           lines)
    in
    let manifest, rest =
      match records with
      | (ln, m) :: rest ->
          let ctx = Printf.sprintf "%s:%d manifest" path ln in
          (match
             Option.bind (Json.member "type" m) Json.to_string_opt
           with
          | Some "manifest" -> ()
          | _ -> failf "%s: first record is not a manifest" ctx);
          (match
             Option.bind (Json.member "schema" m) Json.to_string_opt
           with
          | Some s when s = schema -> ()
          | Some s -> failf "%s: schema %S, expected %S" ctx s schema
          | None -> failf "%s: schema is not a string" ctx);
          ((ln, m), rest)
      | [] -> failf "%s: empty profile" path
    in
    let mline, mjson = manifest in
    let mctx = Printf.sprintf "%s:%d manifest" path mline in
    let windows = ref [] in
    let summary = ref None in
    let next_index = ref 0 in
    let last_at_step = ref (-1) in
    List.iter
      (fun (ln, json) ->
        let ctx ty = Printf.sprintf "%s:%d %s" path ln ty in
        if !summary <> None then
          failf "%s:%d: record after the summary" path ln;
        match Option.bind (Json.member "type" json) Json.to_string_opt with
        | Some "window" ->
            let w = parse_window ~ctx:(ctx "window") json in
            if w.index <> !next_index then
              failf "%s: window index %d, expected %d" (ctx "window") w.index
                !next_index;
            if w.at_step <= !last_at_step then
              failf "%s: at_step %d does not increase" (ctx "window") w.at_step;
            next_index := w.index + 1;
            last_at_step := w.at_step;
            windows := w :: !windows
        | Some "summary" ->
            summary := Some (parse_summary ~ctx:(ctx "summary") json)
        | Some other -> failf "%s:%d: unknown record type %S" path ln other
        | None -> failf "%s:%d: record without a type" path ln)
      rest;
    let summary =
      match !summary with
      | Some s -> s
      | None -> failf "%s: no summary record" path
    in
    let t =
      {
        system = string_field ~ctx:mctx "system" mjson;
        family = string_field ~ctx:mctx "family" mjson;
        n = int_field ~ctx:mctx "n" mjson;
        m = int_field ~ctx:mctx "m" mjson;
        seed = int_field ~ctx:mctx "seed" mjson;
        daemon = string_field ~ctx:mctx "daemon" mjson;
        window_steps = int_field ~ctx:mctx "window_steps" mjson;
        windows = List.rev !windows;
        summary;
      }
    in
    validate t;
    t
  in
  match parse () with t -> Ok t | exception Bad msg -> Error msg

let load_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    body
  with
  | body -> load_string ~path body
  | exception Sys_error msg -> Error msg

let check_file path = Result.map ignore (load_file path)

let phase_total_ns t =
  List.fold_left (fun a (_, s) -> a + s.ns) 0 t.summary.phases

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------- encoder ------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then
    (* NaN or infinite: JSON has no spelling for these. *)
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else
    (* Shortest decimal that round-trips the binary value. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf ~indent ~level t =
  let sep, colon, open_close =
    match indent with
    | None -> ((fun () -> Buffer.add_char buf ','), ":", fun o c body ->
        Buffer.add_char buf o; body (); Buffer.add_char buf c)
    | Some step ->
        let pad l = Buffer.add_string buf (String.make (l * step) ' ') in
        ( (fun () -> Buffer.add_string buf ",\n"; pad (level + 1)),
          ": ",
          fun o c body ->
            Buffer.add_char buf o;
            Buffer.add_char buf '\n';
            pad (level + 1);
            body ();
            Buffer.add_char buf '\n';
            pad level;
            Buffer.add_char buf c )
  in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      open_close '[' ']' (fun () ->
          List.iteri
            (fun i item ->
              if i > 0 then sep ();
              add buf ~indent ~level:(level + 1) item)
            items)
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      open_close '{' '}' (fun () ->
          List.iteri
            (fun i (k, v) ->
              if i > 0 then sep ();
              add_escaped buf k;
              Buffer.add_string buf colon;
              add buf ~indent ~level:(level + 1) v)
            fields)

let to_string t =
  let buf = Buffer.create 256 in
  add buf ~indent:None ~level:0 t;
  Buffer.contents buf

let to_string_hum t =
  let buf = Buffer.create 1024 in
  add buf ~indent:(Some 2) ~level:0 t;
  Buffer.contents buf

(* -------------------------------- parser ------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> parse_error "expected %C at offset %d, found %C" ch c.pos x
  | None -> parse_error "expected %C, found end of input" ch

let literal c word value =
  let len = String.length word in
  if
    c.pos + len <= String.length c.src
    && String.equal (String.sub c.src c.pos len) word
  then begin
    c.pos <- c.pos + len;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_hex4 c =
  if c.pos + 4 > String.length c.src then parse_error "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
  c.pos <- c.pos + 4;
  v

let utf8_of_code buf code =
  (* Encode a Unicode scalar value as UTF-8. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> parse_error "unterminated escape"
        | Some ch ->
            c.pos <- c.pos + 1;
            (match ch with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let hi = parse_hex4 c in
                let code =
                  if hi >= 0xD800 && hi <= 0xDBFF then begin
                    (* Surrogate pair. *)
                    expect c '\\';
                    expect c 'u';
                    let lo = parse_hex4 c in
                    0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else hi
                in
                utf8_of_code buf code
            | ch -> parse_error "invalid escape \\%c" ch);
            loop ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch -> is_num_char ch | None -> false do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  let is_float =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s
  in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "invalid number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> parse_error "invalid number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((key, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
        in
        Obj (fields [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
        in
        List (items [])
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected character %C at offset %d" ch c.pos

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> failwith msg

(* ------------------------------- accessors ----------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let equal (a : t) (b : t) = a = b

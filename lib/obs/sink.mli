(** JSONL sinks and the run-trace record schema.

    A trace is a sequence of JSON objects, one per line:

    - exactly one {e manifest} record first ([{"type": "manifest", ...}]),
      identifying the run: schema version, system, graph family, [n], [m],
      seed, daemon, and the source revision;
    - one {e round} record per completed round ([{"type": "round", ...}])
      with cumulative step/move counts plus system-specific extras (alive
      roots, segments);
    - exactly one {e summary} record last ([{"type": "summary", ...}]) with
      the final outcome, totals, wall-clock seconds, throughput, per-rule
      move counts and a {!Metrics} snapshot.

    Writers flush on every record so a crashed or truncated run still leaves
    a readable prefix. *)

type t

val create : string -> t
(** Opens (truncates) [path] for writing. *)

val of_channel : out_channel -> t
(** Writes to an existing channel; {!close} flushes but does not close it. *)

val write : t -> Json.t -> unit
(** One record, one line, flushed. *)

val close : t -> unit

(** {2 Record builders} *)

val schema_version : int

val manifest :
  ?extra:(string * Json.t) list ->
  system:string ->
  family:string ->
  n:int ->
  m:int ->
  seed:int ->
  daemon:string ->
  unit ->
  Json.t
(** The [git] field records [git describe --always --dirty] when available,
    ["unknown"] otherwise. *)

val step_record :
  step:int -> movers:(int * string * Span.event option) list -> Json.t
(** One per engine step when step-level tracing is enabled: the activated
    (process, rule) pairs, each optionally tagged with its classified wave
    event ([w] ∈ [init|join|rf|c]; joins carry [parent] and [d]). *)

val init_record : active:(int * string * int) list -> Json.t
(** Declares the processes already mid-reset in the initial configuration
    as [(process, status, d)] triples — the seed for offline wave
    reconstruction ({!Span.seed_active}). *)

val round_record :
  ?extra:(string * Json.t) list ->
  round:int ->
  steps:int ->
  moves:int ->
  unit ->
  Json.t
(** [steps] and [moves] are cumulative at the moment the round completed. *)

val summary :
  ?extra:(string * Json.t) list ->
  outcome:string ->
  rounds:int ->
  steps:int ->
  moves:int ->
  wall_s:float ->
  unit ->
  Json.t
(** Includes a derived [steps_per_s] field (0 when [wall_s] is 0). *)

val git_describe : unit -> string
(** Best-effort [git describe --always --dirty]; ["unknown"] when git or the
    repository is unavailable (e.g. inside a build sandbox). *)

let schema = "ssreset-trace-v1"

type mover = { p : int; rule : string; wave : Span.event option }
type step = { index : int; movers : mover list }
type round = { round : int; steps : int; moves : int }

type anomaly = {
  monitor : string;
  step : int;
  process : int option;
  value : int;
  bound : int;
}

type summary = {
  outcome : string;
  rounds : int;
  steps : int;
  moves : int;
  wall_s : float;
  moves_per_rule : (string * int) list;
  anomaly_count : int option;
}

type t = {
  system : string;
  family : string;
  n : int;
  seed : int;
  daemon : string;
  edges : (int * int) list;
  init_active : (int * string * int) list;
  steps : step list;
  rounds : round list;
  anomalies : anomaly list;
  summary : summary;
}

exception Bad of string

let badf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let int_field ~ctx name json =
  match Option.bind (Json.member name json) Json.to_int_opt with
  | Some v -> v
  | None -> badf "%s: %S is missing or not an int" ctx name

let string_field ~ctx name json =
  match Option.bind (Json.member name json) Json.to_string_opt with
  | Some v -> v
  | None -> badf "%s: %S is missing or not a string" ctx name

let float_field ~ctx name json =
  match Option.bind (Json.member name json) Json.to_float_opt with
  | Some v -> v
  | None -> badf "%s: %S is missing or not a number" ctx name

let list_field ~ctx name json =
  match Json.member name json with
  | Some (Json.List l) -> l
  | Some _ -> badf "%s: %S is not a list" ctx name
  | None -> badf "%s: missing %S" ctx name

let proc ~ctx ~n name json =
  let p = int_field ~ctx name json in
  if p < 0 || p >= n then badf "%s: process %d out of range [0,%d)" ctx p n;
  p

let parse_manifest ~ctx json =
  (match Option.bind (Json.member "trace_schema" json) Json.to_string_opt with
  | Some s when s = schema -> ()
  | Some s -> badf "%s: trace_schema %S, expected %S" ctx s schema
  | None -> badf "%s: missing trace_schema (not an %s trace?)" ctx schema);
  let n = int_field ~ctx "n" json in
  if n <= 0 then badf "%s: n must be positive" ctx;
  let m = int_field ~ctx "m" json in
  let edges =
    List.map
      (function
        | Json.List [ a; b ] -> (
            match (Json.to_int_opt a, Json.to_int_opt b) with
            | Some u, Some v ->
                if u < 0 || u >= n || v < 0 || v >= n then
                  badf "%s: edge endpoint out of range" ctx;
                (u, v)
            | _ -> badf "%s: edge endpoints must be ints" ctx)
        | _ -> badf "%s: each edge must be a [u,v] pair" ctx)
      (list_field ~ctx "edges" json)
  in
  if List.length edges <> m then
    badf "%s: %d edges but m = %d" ctx (List.length edges) m;
  ( string_field ~ctx "system" json,
    string_field ~ctx "family" json,
    n,
    int_field ~ctx "seed" json,
    string_field ~ctx "daemon" json,
    edges )

let parse_init ~ctx ~n json =
  List.map
    (fun entry ->
      let p = proc ~ctx ~n "p" entry in
      let st = string_field ~ctx "st" entry in
      if st <> "RB" && st <> "RF" then
        badf "%s: initial status %S is neither RB nor RF" ctx st;
      let d = int_field ~ctx "d" entry in
      if d < 0 then badf "%s: negative d" ctx;
      (p, st, d))
    (list_field ~ctx "active" json)

let parse_wave ~ctx ~n json =
  match Option.bind (Json.member "w" json) Json.to_string_opt with
  | None ->
      if Json.member "w" json <> None then badf "%s: w is not a string" ctx;
      None
  | Some "init" -> Some Span.Init
  | Some "rf" -> Some Span.Feedback
  | Some "c" -> Some Span.Complete
  | Some "join" ->
      let parent = proc ~ctx ~n "parent" json in
      let d = int_field ~ctx "d" json in
      if d < 1 then badf "%s: join with d = %d < 1" ctx d;
      Some (Span.Join { parent; d })
  | Some other -> badf "%s: unknown wave tag %S" ctx other

let parse_step ~ctx ~n json =
  let index = int_field ~ctx "step" json in
  let movers =
    List.map
      (fun mv ->
        {
          p = proc ~ctx ~n "p" mv;
          rule = string_field ~ctx "rule" mv;
          wave = parse_wave ~ctx ~n mv;
        })
      (list_field ~ctx "movers" json)
  in
  if movers = [] then badf "%s: step with no movers" ctx;
  { index; movers }

let parse_anomaly ~ctx ~n json =
  List.iter
    (fun w ->
      ignore (int_field ~ctx:(ctx ^ " window") "step" w);
      ignore (proc ~ctx:(ctx ^ " window") ~n "p" w);
      ignore (string_field ~ctx:(ctx ^ " window") "rule" w))
    (list_field ~ctx "window" json);
  {
    monitor = string_field ~ctx "monitor" json;
    step = int_field ~ctx "step" json;
    process =
      (match Json.member "process" json with
      | None -> None
      | Some _ -> Some (proc ~ctx ~n "process" json));
    value = int_field ~ctx "value" json;
    bound = int_field ~ctx "bound" json;
  }

let parse_summary ~ctx json =
  let moves_per_rule =
    match Json.member "moves_per_rule" json with
    | Some (Json.Obj fields) ->
        List.map
          (fun (rule, v) ->
            match Json.to_int_opt v with
            | Some c -> (rule, c)
            | None -> badf "%s: moves_per_rule.%s is not an int" ctx rule)
          fields
    | Some _ -> badf "%s: moves_per_rule is not an object" ctx
    | None -> []
  in
  {
    outcome = string_field ~ctx "outcome" json;
    rounds = int_field ~ctx "rounds" json;
    steps = int_field ~ctx "steps" json;
    moves = int_field ~ctx "moves" json;
    wall_s = float_field ~ctx "wall_s" json;
    moves_per_rule;
    anomaly_count =
      (match Json.member "anomalies" json with
      | None -> None
      | Some v -> (
          match Json.to_int_opt v with
          | Some c -> Some c
          | None -> badf "%s: anomalies is not an int" ctx));
  }

let load_string ?(path = "<trace>") contents =
  let manifest = ref None in
  let init_active = ref None in
  let steps_rev = ref [] in
  let rounds_rev = ref [] in
  let anomalies_rev = ref [] in
  let summary = ref None in
  let last_step = ref min_int and last_round = ref min_int in
  let records = ref 0 in
  try
    String.split_on_char '\n' contents
    |> List.iteri (fun lineno line ->
           if String.trim line <> "" then begin
             let ctx = Printf.sprintf "%s:%d" path (lineno + 1) in
             let json =
               match Json.of_string line with
               | Ok j -> j
               | Error msg -> badf "%s: %s" ctx msg
             in
             if !summary <> None then badf "%s: record after the summary" ctx;
             incr records;
             let ty =
               match
                 Option.bind (Json.member "type" json) Json.to_string_opt
               with
               | Some ty -> ty
               | None -> badf "%s: record without a type" ctx
             in
             if !records = 1 && ty <> "manifest" then
               badf "%s: first record must be the manifest, got %S" ctx ty;
             match ty with
             | "manifest" ->
                 if !manifest <> None then badf "%s: duplicate manifest" ctx;
                 manifest := Some (parse_manifest ~ctx json)
             | "init" ->
                 if !init_active <> None then
                   badf "%s: duplicate init record" ctx;
                 if !steps_rev <> [] || !rounds_rev <> [] then
                   badf "%s: init record after step/round records" ctx;
                 let _, _, n, _, _, _ = Option.get !manifest in
                 init_active := Some (parse_init ~ctx ~n json)
             | "step" ->
                 let _, _, n, _, _, _ = Option.get !manifest in
                 let s = parse_step ~ctx ~n json in
                 if s.index <= !last_step then
                   badf "%s: step %d not strictly increasing" ctx s.index;
                 last_step := s.index;
                 steps_rev := s :: !steps_rev
             | "round" ->
                 let r = int_field ~ctx "round" json in
                 if r <= !last_round then
                   badf "%s: round %d not strictly increasing" ctx r;
                 last_round := r;
                 rounds_rev :=
                   {
                     round = r;
                     steps = int_field ~ctx "steps" json;
                     moves = int_field ~ctx "moves" json;
                   }
                   :: !rounds_rev
             | "anomaly" ->
                 let _, _, n, _, _, _ = Option.get !manifest in
                 anomalies_rev := parse_anomaly ~ctx ~n json :: !anomalies_rev
             | "summary" -> summary := Some (parse_summary ~ctx json)
             | other -> badf "%s: unknown record type %S" ctx other
           end);
    let system, family, n, seed, daemon, edges =
      match !manifest with
      | Some m -> m
      | None -> badf "%s: empty trace (no manifest)" path
    in
    let summary =
      match !summary with
      | Some s -> s
      | None -> badf "%s: no summary record" path
    in
    let steps = List.rev !steps_rev in
    if steps <> [] then begin
      let step_records = List.length steps in
      if step_records <> summary.steps then
        badf "%s: %d step records but summary says steps = %d" path
          step_records summary.steps;
      let movers =
        List.fold_left (fun acc s -> acc + List.length s.movers) 0 steps
      in
      if movers <> summary.moves then
        badf "%s: %d recorded movers but summary says moves = %d" path movers
          summary.moves
    end;
    let anomalies = List.rev !anomalies_rev in
    (match summary.anomaly_count with
    | Some c when c <> List.length anomalies ->
        badf "%s: summary says %d anomalies but %d anomaly records" path c
          (List.length anomalies)
    | _ -> ());
    Ok
      {
        system;
        family;
        n;
        seed;
        daemon;
        edges;
        init_active = Option.value ~default:[] !init_active;
        steps;
        rounds = List.rev !rounds_rev;
        anomalies;
        summary;
      }
  with Bad msg -> Error msg

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let load_file path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | contents -> load_string ~path contents

let check_file path = Result.map (fun (_ : t) -> ()) (load_file path)

let graph_of t = Ssreset_graph.Graph.make ~n:t.n ~edges:t.edges

let mover_pairs t =
  List.map
    (fun s -> (s.index, List.map (fun m -> (m.p, m.rule)) s.movers))
    t.steps

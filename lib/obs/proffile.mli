(** Reading and validating [ssreset-prof-v1] JSONL profile streams.

    The stream a profiled run ([--prof-out]) writes:

    - one {e manifest} first, with [schema = "ssreset-prof-v1"] and the
      run coordinates (system, family, n, m, seed, daemon, window_steps);
    - zero or more {e window} records with indices strictly increasing
      from 0 and strictly increasing [at_step], each covering
      [window_steps] engine steps (rates, per-rule move deltas, GC word
      deltas);
    - exactly one {e summary} last: totals, per-phase and per-rule timer
      attribution, and the full instrument dump.

    Cross-checks enforced by {!load_string}: the summary's [windows]
    field equals the window-record count; window [steps]/[moves] sums
    never exceed the summary totals; every per-rule window delta sums to
    at most the summary's [moves.R] counter; phase/rule timer sections
    are well-formed with non-negative totals. *)

val schema : string
(** ["ssreset-prof-v1"]. *)

type window = {
  index : int;
  at_step : int;
  steps : int;
  moves : int;
  wall_s : float;
  steps_per_s : float;
  moves_per_s : float;
  moves_per_rule : (string * int) list;
  gc_minor_words : int;
  gc_major_words : int;
}

type section = {
  ns : int;  (** exact total nanoseconds *)
  count : int;
  mean_ns : float;
  p50_ns : float;
  p90_ns : float;
  max_ns : int;
}

type summary = {
  steps : int;
  moves : int;
  wall_s : float;
  window_count : int;
  phases : (string * section) list;  (** in emission order *)
  rules : (string * section) list;
  counters : (string * int) list;
  gauges : (string * float) list;
}

type t = {
  system : string;
  family : string;
  n : int;
  m : int;
  seed : int;
  daemon : string;
  window_steps : int;
  windows : window list;  (** in file order *)
  summary : summary;
}

val load_string : ?path:string -> string -> (t, string) result
(** Validate and parse a whole JSONL profile.  The error message carries
    the (1-based) offending line. *)

val load_file : string -> (t, string) result

val check_file : string -> (unit, string) result
(** {!load_file} with the parse discarded — the validation behind
    [jsonlint --check-prof]. *)

val phase_total_ns : t -> int
(** Sum of the [phases] section totals — the attributed engine time, to
    compare against [summary.wall_s]. *)

(** Reading and validating [ssreset-trace-v1] JSONL run traces.

    The schema extends the PR-1 record stream ({!Sink}) with step-level
    records so executions can be replayed offline:

    - one {e manifest} first, carrying [trace_schema = "ssreset-trace-v1"]
      and the graph's [edges] (so analyses need no side channel);
    - at most one {e init} record next: the processes already mid-reset in
      the initial configuration ([(p, st, d)]);
    - {e step} records with strictly increasing step indices, each mover
      optionally tagged with its classified wave event;
    - {e round} records with strictly increasing round indices;
    - {e anomaly} records emitted by online {!Monitor}s;
    - exactly one {e summary} last.

    Cross-checks: the manifest's [m] equals the edge count; when any step
    record is present, the step-record count equals the summary's [steps]
    and the movers total equals its [moves]; a summary [anomalies] field
    equals the number of anomaly records. *)

val schema : string
(** ["ssreset-trace-v1"]. *)

type mover = { p : int; rule : string; wave : Span.event option }
type step = { index : int; movers : mover list }
type round = { round : int; steps : int; moves : int }

type anomaly = {
  monitor : string;
  step : int;
  process : int option;
  value : int;
  bound : int;
}

type summary = {
  outcome : string;
  rounds : int;
  steps : int;
  moves : int;
  wall_s : float;
  moves_per_rule : (string * int) list;  (** Empty when absent. *)
  anomaly_count : int option;  (** The summary's [anomalies] field. *)
}

type t = {
  system : string;
  family : string;
  n : int;
  seed : int;
  daemon : string;
  edges : (int * int) list;
  init_active : (int * string * int) list;  (** [(p, st, d)]. *)
  steps : step list;  (** In file order. *)
  rounds : round list;
  anomalies : anomaly list;
  summary : summary;
}

val load_string : ?path:string -> string -> (t, string) result
(** Validate and parse a whole JSONL trace.  The error message carries the
    (1-based) offending line. *)

val load_file : string -> (t, string) result

val check_file : string -> (unit, string) result
(** {!load_file} with the parse discarded — the validation used by
    [jsonlint --check-trace]. *)

val graph_of : t -> Ssreset_graph.Graph.t
(** Rebuild the run's graph from the manifest edges. *)

val mover_pairs : t -> (int * (int * string) list) list
(** The per-step [(step, [(process, rule); ...])] lists, ready for
    {!Causality.build}. *)

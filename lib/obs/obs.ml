type 'state t = step:int -> moved:(int * string) list -> 'state array -> unit

let nop ~step:_ ~moved:_ _ = ()

let combine observers ~step ~moved cfg =
  List.iter (fun obs -> obs ~step ~moved cfg) observers

let on_moved f ~step:_ ~moved _ = List.iter f moved

let default_matches _ = true

let move_counter ?(matches = default_matches) () =
  let count = ref 0 in
  (count, on_moved (fun (_, name) -> if matches name then incr count))

let per_process_moves ~n ?(matches = default_matches) () =
  let counts = Array.make n 0 in
  ( counts,
    on_moved (fun (u, name) -> if matches name then counts.(u) <- counts.(u) + 1)
  )

let shrinking ~measure ~init =
  let ok = ref true in
  let last = ref init in
  let observer ~step:_ ~moved:_ cfg =
    let now = measure cfg in
    if not (List.for_all (fun x -> List.mem x !last) now) then ok := false;
    last := now
  in
  (ok, observer)

let sample ~every inner =
  if every <= 1 then inner
  else
    fun ~step ~moved cfg -> if step mod every = 0 then inner ~step ~moved cfg

let histogram_of_selection h ~step:_ ~moved _ =
  Metrics.observe h (float_of_int (List.length moved))

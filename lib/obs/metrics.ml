type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  le : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* same length as [le] *)
  mutable overflow : int;
  mutable sum : float;
  mutable count : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  mutable instruments : (string * instrument) list;  (* reversed *)
  index : (string, instrument) Hashtbl.t;
}

let create () = { instruments = []; index = Hashtbl.create 16 }

let register t name inst =
  t.instruments <- (name, inst) :: t.instruments;
  Hashtbl.replace t.index name inst;
  inst

let counter t name =
  match Hashtbl.find_opt t.index name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None -> (
      match register t name (Counter { c = 0 }) with
      | Counter c -> c
      | _ -> assert false)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let gauge t name =
  match Hashtbl.find_opt t.index name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None -> (
      match register t name (Gauge { g = 0. }) with
      | Gauge g -> g
      | _ -> assert false)

let set g v = g.g <- v
let gauge_value g = g.g

let histogram t name ~buckets =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  match Hashtbl.find_opt t.index name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None -> (
      let h =
        { le = Array.copy buckets;
          counts = Array.make (Array.length buckets) 0;
          overflow = 0; sum = 0.; count = 0 }
      in
      match register t name (Histogram h) with
      | Histogram h -> h
      | _ -> assert false)

let observe h v =
  h.sum <- h.sum +. v;
  h.count <- h.count + 1;
  (* Buckets are few (tens); a linear scan beats binary search at this size. *)
  let n = Array.length h.le in
  let rec place i =
    if i >= n then h.overflow <- h.overflow + 1
    else if v <= h.le.(i) then h.counts.(i) <- h.counts.(i) + 1
    else place (i + 1)
  in
  place 0

let histogram_count h = h.count
let histogram_sum h = h.sum

let histogram_quantile h ~p =
  if p < 0. || p > 100. then
    invalid_arg "Metrics.histogram_quantile: need 0 <= p <= 100";
  if h.count = 0 then 0.
  else begin
    let target = p /. 100. *. float_of_int h.count in
    let cum = ref 0 in
    let result = ref None in
    Array.iteri
      (fun i c ->
        cum := !cum + c;
        if !result = None && float_of_int !cum >= target then
          result := Some h.le.(i))
      h.counts;
    match !result with
    | Some b -> b
    | None -> (* target falls in the overflow bucket *) h.le.(Array.length h.le - 1)
  end

(* Snapshots freeze the counter values by name; [diff] then yields exactly
   the increments since the snapshot was taken.  Windowed emitters rest on
   this: each window reports [diff snap t] and re-snapshots, so a monotone
   counter is never double-counted across windows — each increment lands in
   exactly one window. *)
type snapshot = (string * int) list

let snapshot t =
  List.rev
    (List.filter_map
       (function name, Counter c -> Some (name, c.c) | _ -> None)
       t.instruments)

let diff snap t =
  List.rev
    (List.filter_map
       (function
         | name, Counter c ->
             let before =
               match List.assoc_opt name snap with Some v -> v | None -> 0
             in
             if c.c <> before then Some (name, c.c - before) else None
         | _ -> None)
       t.instruments)

let pow2_buckets ~limit =
  if limit < 1. then invalid_arg "Metrics.pow2_buckets: need limit >= 1";
  let rec build acc b = if b >= limit then List.rev (b :: acc) else build (b :: acc) (b *. 2.) in
  Array.of_list (build [] 1.)

let to_json t =
  let ordered = List.rev t.instruments in
  let counters =
    List.filter_map
      (function name, Counter c -> Some (name, Json.Int c.c) | _ -> None)
      ordered
  in
  let gauges =
    List.filter_map
      (function name, Gauge g -> Some (name, Json.Float g.g) | _ -> None)
      ordered
  in
  let histograms =
    List.filter_map
      (function
        | name, Histogram h ->
            Some
              ( name,
                Json.Obj
                  [ ("le", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.le)));
                    ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
                    ("overflow", Json.Int h.overflow);
                    ("sum", Json.Float h.sum);
                    ("count", Json.Int h.count) ] )
        | _ -> None)
      ordered
  in
  Json.Obj
    [ ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms) ]

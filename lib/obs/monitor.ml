type anomaly = {
  monitor : string;
  step : int;
  process : int option;
  value : int;
  bound : int;
  window : (int * int * string) list;
}

type t = {
  sink : Sink.t option;
  ring : (int * int * string) option array;
  mutable ring_pos : int;
  mutable last_fed : int;  (* last step fed into the ring *)
  tripped : (string, unit) Hashtbl.t;
  mutable anomalies_rev : anomaly list;
}

let create ?sink ?(window = 8) () =
  {
    sink;
    ring = Array.make (max 1 window) None;
    ring_pos = 0;
    last_fed = -1;
    tripped = Hashtbl.create 4;
    anomalies_rev = [];
  }

(* Every monitor's observer feeds the shared window, but observers all see
   the same step in combine order — the guard makes the feed idempotent. *)
let maybe_feed t ~step moved =
  if step > t.last_fed then begin
    t.last_fed <- step;
    List.iter
      (fun (p, rule) ->
        t.ring.(t.ring_pos) <- Some (step, p, rule);
        t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring)
      moved
  end

let window_snapshot t =
  let k = Array.length t.ring in
  let rec collect i acc =
    if i >= k then List.rev acc
    else
      let slot = t.ring.((t.ring_pos + i) mod k) in
      collect (i + 1) (match slot with Some e -> e :: acc | None -> acc)
  in
  (* Slots are overwritten oldest-first, so reading from ring_pos onwards
     yields oldest → newest. *)
  collect 0 []

let anomaly_json a =
  Json.Obj
    ([ ("type", Json.String "anomaly");
       ("monitor", Json.String a.monitor);
       ("step", Json.Int a.step) ]
    @ (match a.process with
      | Some p -> [ ("process", Json.Int p) ]
      | None -> [])
    @ [ ("value", Json.Int a.value);
        ("bound", Json.Int a.bound);
        ( "window",
          Json.List
            (List.map
               (fun (step, p, rule) ->
                 Json.Obj
                   [ ("step", Json.Int step);
                     ("p", Json.Int p);
                     ("rule", Json.String rule) ])
               a.window) ) ])

let trip t ~monitor ~step ?process ~value ~bound () =
  if not (Hashtbl.mem t.tripped monitor) then begin
    Hashtbl.replace t.tripped monitor ();
    let a =
      { monitor; step; process; value; bound; window = window_snapshot t }
    in
    t.anomalies_rev <- a :: t.anomalies_rev;
    match t.sink with
    | Some sink -> Sink.write sink (anomaly_json a)
    | None -> ()
  end

let move_bound t ~name ~bound =
  let count = ref 0 in
  fun ~step ~moved _cfg ->
    maybe_feed t ~step moved;
    List.iter
      (fun (p, _) ->
        incr count;
        if !count > bound then
          trip t ~monitor:name ~step ~process:p ~value:!count ~bound ())
      moved

let round_bound t ~name ~bound ~round ~steps =
  if round > bound then trip t ~monitor:name ~step:steps ~value:round ~bound ()

let non_increasing t ~name ~measure ~init =
  let prev = ref init in
  fun ~step ~moved cfg ->
    maybe_feed t ~step moved;
    let v = measure cfg in
    if v > !prev then trip t ~monitor:name ~step ~value:v ~bound:!prev ();
    prev := v

let anomalies t = List.rev t.anomalies_rev
let anomaly_count t = List.length t.anomalies_rev

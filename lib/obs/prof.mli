(** Run profiler: named counters, gauges, timers and log-bucketed
    histograms, with optional streaming windowed emission for long runs.

    One [Prof.t] rides along a measured run (or several — instruments
    accumulate).  The record path is engineered for the engine's step
    loop: a timer span is one monotonic-clock read ({!now_ns}, a [noalloc]
    C stub from [bechamel.monotonic_clock]) plus a {!Histogram.record} —
    integer arithmetic and two array writes, nothing allocated.  Counters
    and gauges are {!Metrics} instruments ({!metrics} exposes the
    registry), so the existing JSON snapshot and the {!Metrics.diff}
    machinery apply.

    Naming conventions the reporting layer keys on: timers named
    ["phase.X"] are the engine's per-phase wall-time attribution, timers
    named ["rule.R"] its per-rule attribution; counters named ["moves.R"]
    are per-rule move counts (windows report their per-window deltas).

    {2 Windowed streaming}

    With a {!Sink.t} attached and [window_steps > 0], every
    [window_steps]-th {!tick} emits one [window] JSONL record: steps/s and
    moves/s over the window, per-rule move deltas (via {!Metrics.diff} —
    monotone counters are never double-counted), and GC word deltas.
    {!write_summary} ends the stream with one [summary] record carrying
    the per-phase/per-rule totals and every instrument.  Manifest, window
    and summary records form the [ssreset-prof-v1] schema validated by
    {!Proffile} and [jsonlint --check-prof]. *)

type t

val schema : string
(** ["ssreset-prof-v1"]. *)

val create : ?sub_bits:int -> ?window_steps:int -> ?sink:Sink.t -> unit -> t
(** [window_steps] (default 0 = no windows) only matters with a [sink].
    [sub_bits] is the resolution of every histogram (see
    {!Histogram.create}). *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds.  Differences are meaningful; the origin
    is arbitrary. *)

val metrics : t -> Metrics.t
(** The embedded counter/gauge registry. *)

(** {2 Timers} *)

type timer

val timer : t -> string -> timer
(** Registers (or returns) the timer [name].  Span durations feed a
    nanosecond {!Histogram}; the exact total is kept separately. *)

val start : timer -> unit
val stop : timer -> unit
(** [start]/[stop] bracket one span.  A [stop] without a matching [start]
    is ignored. *)

val record_span : timer -> int -> unit
(** Record an externally measured span of [ns] nanoseconds — the lap-based
    interface the engine uses (one clock read per phase boundary instead of
    two per phase). *)

val timer_total_ns : timer -> int
val timer_count : timer -> int
val timer_hist : timer -> Histogram.t

val merge_spans : timer -> total_ns:int -> Histogram.t -> unit
(** Merge a batch of externally accumulated spans — a worker domain's
    private histogram plus its exact nanosecond total — into the timer.
    This is how per-domain phase laps from the partitioned flat engine are
    folded into one [ssreset-prof-v1] stream ({!Histogram.merge_into} is
    associative and lossless, so merge order does not matter). *)

(** {2 Histograms} (of plain integers, not time) *)

val histogram : t -> string -> Histogram.t
(** Registers (or returns) the histogram [name] — e.g. the per-step
    incremental refresh size. *)

(** {2 GC sampling} *)

val gc_mark : t -> unit
(** Snapshot [Gc.quick_stat] (allocation counters only — no heap walk). *)

val gc_collect : t -> unit
(** Add the deltas since {!gc_mark} to the [gc.minor_words],
    [gc.promoted_words], [gc.major_words], [gc.minor_collections] and
    [gc.major_collections] counters.  Mark/collect pairs accumulate across
    runs. *)

(** {2 Step accounting and windows} *)

val tick : t -> moves:int -> unit
(** Count one engine step with [moves] rule executions.  Per-step cost
    with windows off (or between boundaries): a few integer additions.
    At a window boundary, emits the window record to the sink. *)

val steps : t -> int
val moves : t -> int

(** {2 Emission} *)

val manifest :
  ?extra:(string * Json.t) list ->
  system:string ->
  family:string ->
  n:int ->
  m:int ->
  seed:int ->
  daemon:string ->
  window_steps:int ->
  unit ->
  Json.t
(** First record of a prof stream; [schema] identifies [ssreset-prof-v1]. *)

val summary_json : t -> Json.t
(** The [summary] record: totals, [phases] and [rules] sections (derived
    from the timer naming convention, with percentiles), every counter and
    gauge, and the full timer/histogram buckets for offline analysis. *)

val write_summary : t -> unit
(** Append {!summary_json} to the sink (no-op without one).  Call once,
    after the last run. *)

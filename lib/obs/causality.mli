(** Happens-before analysis over the moves of a recorded execution.

    Under the locally shared memory model a mover's guard reads the states
    of its closed neighborhood, so a move {e causally depends} on the most
    recent earlier move of each process in [N[u] ∪ {u}].  Steps have
    composite atomicity — every mover of a step reads the {e pre-step}
    configuration — so two moves of the same step are never causally
    ordered, even between neighbors.

    The {e critical path} is the longest chain in this DAG.  Its length
    lower-bounds the number of steps any daemon needs, and under the
    synchronous daemon it equals the step (= round) count exactly: every
    synchronous move at step [k > 0] was disabled or rewritten by some
    neighborhood move at step [k - 1]. *)

type move = {
  index : int;  (** Dense move index, in execution order. *)
  step : int;
  process : int;
  rule : string;
  depth : int;  (** Length of the longest causal chain ending here (≥ 1). *)
}

type t

val build :
  ?keep_edges:bool ->
  graph:Ssreset_graph.Graph.t ->
  (int * (int * string) list) list ->
  t
(** [build ~graph steps] consumes the per-step mover lists
    [(step, [(process, rule); ...])] in execution order.  With
    [~keep_edges:true] the full edge list is retained for {!edges} and
    {!to_dot} (memory grows with moves × degree); otherwise only the
    per-move best predecessor survives, which is all the critical path
    needs. *)

val moves : t -> move array
val move_count : t -> int

val edge_count : t -> int
(** Number of happens-before edges (counted in either mode). *)

val edges : t -> (int * int) list
(** [(pred, succ)] move-index pairs; empty unless built with
    [~keep_edges:true]. *)

val critical_length : t -> int
(** Length (in moves) of the longest causal chain; [0] for an empty run. *)

val critical_path : t -> move list
(** One longest chain, in execution order.  Ties broken towards the
    earliest final move. *)

val attribution : t -> (string * int) list
(** Rule → number of critical-path moves, sorted by descending count then
    rule name. *)

val to_dot : ?max_moves:int -> t -> string
(** Causal DAG in Graphviz DOT, critical-path moves and edges highlighted.
    Requires [~keep_edges:true] at build time for non-critical edges;
    renders at most [max_moves] (default 400) moves. *)

(** Composable run observers.

    An observer has exactly the shape of {!Ssreset_sim.Engine.run}'s
    [observer] callback — [step] index, the activated (process, rule-name)
    pairs, and the {e new} configuration — so any value built here plugs
    straight into the engine.  The point of this module is that observers
    compose: a measured run is a {!combine} of small single-purpose probes
    instead of one hand-rolled closure.

    Probes are constructed together with the mutable cell they accumulate
    into; read the cell after the run. *)

type 'state t = step:int -> moved:(int * string) list -> 'state array -> unit

val nop : 'state t

val combine : 'state t list -> 'state t
(** Calls every observer, in list order, on every step.  [combine []] is
    {!nop}; nesting is flattened by function composition, so ordering is the
    depth-first list order. *)

val on_moved : ((int * string) -> unit) -> 'state t
(** Calls [f] once per activated (process, rule) pair, in activation order. *)

val move_counter : ?matches:(string -> bool) -> unit -> int ref * 'state t
(** Counts moves whose rule name satisfies [matches] (default: all). *)

val per_process_moves :
  n:int -> ?matches:(string -> bool) -> unit -> int array * 'state t
(** Per-process move counts over processes [0..n-1], filtered by [matches]
    (default: all). *)

val shrinking :
  measure:('state array -> int list) -> init:int list -> bool ref * 'state t
(** Checks that the set [measure cfg] only ever loses elements along the
    run, starting from [init] (the measure of the initial configuration).
    The cell stays [true] iff every step's set is a subset of the previous
    one — e.g. the alive-root monotonicity of Remark 4. *)

val sample : every:int -> 'state t -> 'state t
(** Runs the inner observer only on steps where [step mod every = 0];
    [every <= 1] is the identity. *)

val histogram_of_selection : Metrics.histogram -> 'state t
(** Feeds the size of each step's activated set into a histogram. *)

(** Reset-wave spans: provenance reconstruction from classified SDR events.

    A {e wave} is the lifetime of one reset initiated at an alive root
    (paper §3.3): the root's [SDR-R] move starts it, [SDR-RB] moves
    propagate it outward along the [d] parent links, [SDR-RF] moves feed
    completion back towards the root, and [SDR-C] moves return members to
    normal operation.  This module consumes a stream of per-process wave
    {!event}s — produced by the classifier in [Ssreset_core.Sdr.Make(I).Waves]
    or parsed back from a recorded trace — and reconstructs the per-wave
    spans, the succession DAG between waves, and summary statistics.

    The builder is purely structural: it never inspects algorithm state, so
    it works identically online (as an engine observer) and offline (replaying
    a JSONL trace). *)

type event =
  | Init  (** [SDR-R]: an alive root (re)starts a wave; the mover is its root. *)
  | Join of { parent : int; d : int }
      (** [SDR-RB]: the mover joins the wave its [parent] belongs to, at
          distance [d] from the root. *)
  | Feedback  (** [SDR-RF]: the mover's subtree has finished broadcasting. *)
  | Complete  (** [SDR-C]: the mover leaves the wave and resumes normally. *)

type wave = {
  id : int;  (** Dense identifier, in order of first appearance. *)
  root : int;  (** Initiating process (or component representative). *)
  preexisting : bool;
      (** True when the wave was already in flight in the initial
          configuration (seeded via {!seed_active}) or had to be
          synthesized for an orphan event. *)
  mutable init_step : int option;
      (** Step of the root's [SDR-R] move; [None] for preexisting waves. *)
  mutable members : int;  (** Distinct processes that ever belonged to it. *)
  mutable depth : int;  (** Max [d] observed across joins (and seeds). *)
  mutable r_moves : int;
  mutable rb_moves : int;
  mutable rf_moves : int;
  mutable c_moves : int;
  mutable active : int;  (** Current membership count; 0 once completed. *)
  mutable first_step : int;  (** Step of the earliest attributed move. *)
  mutable last_step : int;  (** Step of the latest attributed move. *)
}

type t

val create : n:int -> t
(** A builder for an [n]-process system with no process mid-reset. *)

val seed_active : graph:Ssreset_graph.Graph.t -> t -> (int * int) list -> unit
(** [seed_active ~graph t actives] declares the processes already mid-reset
    ([RB] or [RF]) in the initial configuration, as [(process, d)] pairs.
    They are grouped into connected components of [graph] and each component
    becomes one {e preexisting} wave rooted at its minimum-[d] member
    (ties broken by the smaller index).  Call at most once, before any feed. *)

val feed : t -> step:int -> int -> event -> unit
(** Attribute one classified move at [step] by the given process.  Events of
    the same step must be fed through {!feed_step} (or manually: all [Join]s
    first) — joins read the {e pre-step} membership of their parent. *)

val feed_step : t -> step:int -> (int * event) list -> unit
(** Feed all classified movers of one step, handling intra-step ordering:
    [Join]s are processed before [Init]/[Feedback]/[Complete] so that a
    parent re-rooting in the same step cannot steal its child's join. *)

val waves : t -> wave list
(** All waves, in order of first appearance. *)

val wave_of : t -> int -> int
(** Current wave id of a process, or [-1] when it is not mid-reset. *)

val dag : t -> (int * int) list
(** Succession edges [(a, b)]: some process belonged to wave [a] and later
    joined wave [b].  Deduplicated, in order of first occurrence. *)

type stats = {
  wave_count : int;
  completed : int;  (** Waves whose membership returned to 0. *)
  preexisting_count : int;
  synthetic : int;  (** Orphan events that forced a synthesized wave. *)
  max_depth : int;
  max_members : int;
  max_duration : int;  (** [last_step - first_step], max over waves. *)
  total_moves : int;  (** Sum of r/rb/rf/c moves over all waves. *)
}

val stats : t -> stats

val check : ?require_complete:bool -> t -> string list
(** Structural sanity: every wave's move counts are consistent with its
    membership history ([active >= 0] throughout, [members = joins + roots]).
    With [~require_complete:true] (the run stabilized), any wave still
    active is reported.  Returns human-readable error strings; [[]] = ok. *)

val to_dot : t -> string
(** The wave DAG in Graphviz DOT: one node per wave (labelled with root,
    members, depth and move counts), succession edges between them. *)

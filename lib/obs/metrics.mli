(** Metrics registry: counters, gauges and fixed-bucket histograms.

    One registry per measured run.  Instruments are registered by name; a
    snapshot of the whole registry serializes to {!Json.t} for the JSONL
    trace and for BENCH_results.json.  Everything is plain mutable state —
    no locks, no background threads; observation costs are a few array
    writes so instruments can sit on the engine's per-step hot path. *)

type t

val create : unit -> t

(** {2 Counters} — monotonically increasing integers (e.g. moves per rule). *)

type counter

val counter : t -> string -> counter
(** Registers (or returns the already-registered) counter [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} — last-write-wins floats (e.g. wall-clock, steps/sec). *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} — fixed upper-bound buckets (e.g. enabled-set size per
    step, steps per round).  A value lands in the first bucket whose bound is
    [>=] the value; larger values land in the implicit overflow bucket. *)

type histogram

val histogram : t -> string -> buckets:float array -> histogram
(** [buckets] must be strictly increasing and nonempty.
    @raise Invalid_argument otherwise. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_quantile : histogram -> p:float -> float
(** Crude quantile estimate from the bucket counts: the upper bound of the
    first bucket at which the cumulative count reaches [p] (in [0, 100]) per
    cent of the observations.  0 for an empty histogram. *)

(** {2 Snapshots} — delta extraction for windowed emission. *)

type snapshot
(** Frozen counter values of a whole registry at one instant.  Counters
    registered after the snapshot count from zero in the next {!diff}. *)

val snapshot : t -> snapshot

val diff : snapshot -> t -> (string * int) list
(** Per-counter increments since the snapshot, in registration order,
    omitting counters that did not change.  Re-snapshotting after each
    window guarantees every increment of a monotone counter is reported in
    exactly one window — no double counting. *)

val pow2_buckets : limit:float -> float array
(** [1; 2; 4; …] up to and including the first power of two [>= limit]. *)

val to_json : t -> Json.t
(** Snapshot of every instrument, in registration order:
    [{"counters": {...}, "gauges": {...}, "histograms": {name: {"le": [...],
    "counts": [...], "overflow": n, "sum": s, "count": c}}}]. *)

(* Bucket layout, for sub = 2^sub_bits:
     values 0 .. sub-1         -> buckets 0 .. sub-1 (exact, width 1)
     values with msb = k >= sub_bits:
       shift  = k - sub_bits
       bucket = (shift + 1) * sub + (v lsr shift) - sub
       width  = 2^shift
   i.e. every octave [2^k, 2^(k+1)) above the linear region contributes
   [sub] buckets of width 2^(k - sub_bits).  With 62-bit ints the highest
   usable shift is 62 - sub_bits, so the table has
   (62 - sub_bits + 1 + 1) * sub slots — a few KiB, allocated once. *)

type t = {
  sub_bits : int;
  sub : int;  (* 2^sub_bits *)
  counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create ?(sub_bits = 5) () =
  if sub_bits < 1 || sub_bits > 8 then
    invalid_arg "Histogram.create: need 1 <= sub_bits <= 8";
  let sub = 1 lsl sub_bits in
  {
    sub_bits;
    sub;
    counts = Array.make ((62 - sub_bits + 2) * sub) 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

(* Index of the highest set bit of [v > 0] — branchy binary descent, no
   allocation, at most 6 compares. *)
let msb v =
  let v = ref v and r = ref 0 in
  if !v lsr 32 <> 0 then begin v := !v lsr 32; r := !r + 32 end;
  if !v lsr 16 <> 0 then begin v := !v lsr 16; r := !r + 16 end;
  if !v lsr 8 <> 0 then begin v := !v lsr 8; r := !r + 8 end;
  if !v lsr 4 <> 0 then begin v := !v lsr 4; r := !r + 4 end;
  if !v lsr 2 <> 0 then begin v := !v lsr 2; r := !r + 2 end;
  if !v lsr 1 <> 0 then r := !r + 1;
  !r

let index_of t v =
  if v < t.sub then v
  else
    let shift = msb v - t.sub_bits in
    (((shift + 1) * t.sub) + (v lsr shift)) - t.sub

(* Lower bound and width of bucket [i] — the exact inverse of [index_of]. *)
let bucket_low t i =
  if i < t.sub then i
  else
    let shift = (i / t.sub) - 1 in
    (i - (shift * t.sub)) lsl shift

let bucket_width t i = if i < t.sub then 1 else 1 lsl ((i / t.sub) - 1)

let record_n t v ~n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = index_of t v in
    t.counts.(i) <- t.counts.(i) + n;
    t.count <- t.count + n;
    t.sum <- t.sum + (v * n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v ~n:1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let percentile t ~p =
  if p < 0. || p > 100. then
    invalid_arg "Histogram.percentile: need 0 <= p <= 100";
  if t.count = 0 then 0.
  else if p = 0. then float_of_int (min_value t)
  else begin
    let target = p /. 100. *. float_of_int t.count in
    let cum = ref 0 and result = ref (-1) in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if float_of_int !cum >= target then begin
             result := i;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    if !result < 0 then float_of_int t.max_v
    else
      let low = bucket_low t !result and w = bucket_width t !result in
      (* Midpoint representative, clamped to the recorded extremes so the
         estimate never leaves the observed range. *)
      let mid = float_of_int low +. (float_of_int (w - 1) /. 2.) in
      Float.min (float_of_int t.max_v) (Float.max (float_of_int t.min_v) mid)
  end

let merge_into ~dst src =
  if dst.sub_bits <> src.sub_bits then
    invalid_arg "Histogram.merge: sub_bits mismatch";
  Array.iteri
    (fun i c -> if c > 0 then dst.counts.(i) <- dst.counts.(i) + c)
    src.counts;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let merge a b =
  let t = create ~sub_bits:a.sub_bits () in
  merge_into ~dst:t a;
  merge_into ~dst:t b;
  t

let to_json t =
  let buckets = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then
      buckets := Json.List [ Json.Int i; Json.Int t.counts.(i) ] :: !buckets
  done;
  Json.Obj
    [ ("sub_bits", Json.Int t.sub_bits);
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int t.max_v);
      ("buckets", Json.List !buckets) ]

let of_json json =
  let int_field name =
    match Option.bind (Json.member name json) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "histogram: missing int field %S" name)
  in
  let ( let* ) = Result.bind in
  let* sub_bits = int_field "sub_bits" in
  if sub_bits < 1 || sub_bits > 8 then Error "histogram: bad sub_bits"
  else
    let* count = int_field "count" in
    let* sum = int_field "sum" in
    let* min_v = int_field "min" in
    let* max_v = int_field "max" in
    let t = create ~sub_bits () in
    t.count <- count;
    t.sum <- sum;
    t.min_v <- (if count = 0 then max_int else min_v);
    t.max_v <- max_v;
    let* () =
      match Json.member "buckets" json with
      | Some (Json.List l) ->
          List.fold_left
            (fun acc entry ->
              let* () = acc in
              match entry with
              | Json.List [ Json.Int i; Json.Int c ]
                when i >= 0 && i < Array.length t.counts && c >= 0 ->
                  t.counts.(i) <- t.counts.(i) + c;
                  Ok ()
              | _ -> Error "histogram: malformed bucket entry")
            (Ok ()) l
      | _ -> Error "histogram: missing buckets list"
    in
    if Array.fold_left ( + ) 0 t.counts <> count then
      Error "histogram: bucket counts do not sum to count"
    else Ok t

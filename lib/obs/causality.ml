type move = {
  index : int;
  step : int;
  process : int;
  rule : string;
  depth : int;
}

type t = {
  moves : move array;
  best_pred : int array;  (* move index -> deepest predecessor, -1 if none *)
  edge_count : int;
  edges : (int * int) list;  (* (pred, succ); empty unless keep_edges *)
}

let build ?(keep_edges = false) ~graph steps =
  let n = Ssreset_graph.Graph.n graph in
  let total =
    List.fold_left (fun acc (_, movers) -> acc + List.length movers) 0 steps
  in
  let step_a = Array.make total 0
  and proc_a = Array.make total 0
  and rule_a = Array.make total ""
  and depth_a = Array.make total 0
  and best_pred = Array.make total (-1)
  and last_writer = Array.make n (-1) in
  let edges_rev = ref [] and edge_count = ref 0 and i = ref 0 in
  List.iter
    (fun (step, movers) ->
      (* Composite atomicity: every mover of this step read the pre-step
         configuration, so predecessors are resolved against [last_writer]
         for ALL movers before any of them is recorded as a writer — moves
         of the same step are never causally ordered. *)
      let start = !i in
      List.iter
        (fun (p, rule) ->
          let m = !i in
          if p < 0 || p >= n then
            invalid_arg
              (Printf.sprintf "Causality.build: process %d out of range" p);
          step_a.(m) <- step;
          proc_a.(m) <- p;
          rule_a.(m) <- rule;
          let best = ref (-1) and best_depth = ref 0 in
          let consider w =
            let lw = last_writer.(w) in
            if lw >= 0 then begin
              incr edge_count;
              if keep_edges then edges_rev := (lw, m) :: !edges_rev;
              if depth_a.(lw) > !best_depth then begin
                best_depth := depth_a.(lw);
                best := lw
              end
            end
          in
          consider p;
          Array.iter consider (Ssreset_graph.Graph.neighbors graph p);
          depth_a.(m) <- 1 + !best_depth;
          best_pred.(m) <- !best;
          incr i)
        movers;
      for m = start to !i - 1 do
        last_writer.(proc_a.(m)) <- m
      done)
    steps;
  let moves =
    Array.init total (fun m ->
        {
          index = m;
          step = step_a.(m);
          process = proc_a.(m);
          rule = rule_a.(m);
          depth = depth_a.(m);
        })
  in
  { moves; best_pred; edge_count = !edge_count; edges = List.rev !edges_rev }

let moves t = t.moves
let move_count t = Array.length t.moves
let edge_count t = t.edge_count
let edges t = t.edges

let critical_length t =
  Array.fold_left (fun acc m -> max acc m.depth) 0 t.moves

let critical_path t =
  if Array.length t.moves = 0 then []
  else begin
    let tip = ref 0 in
    Array.iter
      (fun m -> if m.depth > t.moves.(!tip).depth then tip := m.index)
      t.moves;
    let rec back acc m = if m < 0 then acc else back (t.moves.(m) :: acc) t.best_pred.(m) in
    back [] !tip
  end

let attribution t =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let c = try Hashtbl.find counts m.rule with Not_found -> 0 in
      Hashtbl.replace counts m.rule (c + 1))
    (critical_path t);
  Hashtbl.fold (fun rule c acc -> (rule, c) :: acc) counts []
  |> List.sort (fun (r1, c1) (r2, c2) ->
         if c1 <> c2 then compare c2 c1 else compare r1 r2)

let to_dot ?(max_moves = 400) t =
  let limit = min max_moves (Array.length t.moves) in
  let on_path = Array.make (Array.length t.moves) false in
  List.iter (fun m -> on_path.(m.index) <- true) (critical_path t);
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph causal {\n  rankdir=LR;\n";
  for m = 0 to limit - 1 do
    let mv = t.moves.(m) in
    Buffer.add_string buf
      (Printf.sprintf
         "  m%d [label=\"#%d s%d p%d\\n%s\\ndepth %d\"%s];\n" m mv.index
         mv.step mv.process mv.rule mv.depth
         (if on_path.(m) then ",color=red,penwidth=2" else ""))
  done;
  let emit_edge (a, b) =
    if a < limit && b < limit then
      Buffer.add_string buf
        (Printf.sprintf "  m%d -> m%d%s;\n" a b
           (if on_path.(a) && on_path.(b) && t.best_pred.(b) = a then
              " [color=red,penwidth=2]"
            else ""))
  in
  if t.edges <> [] then List.iter emit_edge t.edges
  else
    Array.iteri
      (fun m pred -> if pred >= 0 then emit_edge (pred, m))
      t.best_pred;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Log-bucketed (HDR-style) histogram over non-negative integers.

    Built for hot-path measurement: nanosecond timer spans, per-step
    refresh sizes, per-process move counts.  Values up to [2^sub_bits]
    land in exact unit-width buckets; above that, each power-of-two octave
    is split into [2^sub_bits] sub-buckets, so any recorded value is
    represented with relative error at most [2^-sub_bits] (≈ 3% at the
    default [sub_bits = 5]) while the whole 62-bit range fits in a few
    thousand preallocated slots.

    {!record} is a handful of integer shifts plus two array writes — no
    allocation, no branches on the value's magnitude beyond the bucket
    index computation — so it can sit inside the engine's step loop.

    Histograms with the same [sub_bits] {!merge} exactly (bucket-wise
    sum), which makes per-domain recording with a post-join merge safe:
    merge is associative and commutative, and the test suite asserts it. *)

type t

val create : ?sub_bits:int -> unit -> t
(** Fresh empty histogram.  [sub_bits] (default 5) fixes the sub-bucket
    resolution: relative error ≤ [2^-sub_bits].
    @raise Invalid_argument unless [1 <= sub_bits <= 8]. *)

val record : t -> int -> unit
(** Record one value.  Negative values clamp to 0. *)

val record_n : t -> int -> n:int -> unit
(** Record the same value [n] times (bucket-wise, O(1)). *)

val count : t -> int
(** Number of recorded values. *)

val sum : t -> int
(** Exact sum of recorded values (not bucket-approximated). *)

val min_value : t -> int
(** Smallest recorded value; 0 when empty. *)

val max_value : t -> int
(** Largest recorded value; 0 when empty. *)

val mean : t -> float
(** Exact mean ([sum/count]); 0 when empty. *)

val percentile : t -> p:float -> float
(** Value at the [p]-th percentile (0 ≤ p ≤ 100): the representative
    (midpoint) of the first bucket whose cumulative count reaches
    [p/100 · count], except that the global minimum and maximum are exact
    at p = 0 and p = 100.  Within one bucket width of the true order
    statistic, i.e. relative error ≤ [2^-sub_bits].  0 when empty.
    @raise Invalid_argument outside [0, 100]. *)

val merge : t -> t -> t
(** Bucket-wise sum into a fresh histogram.  Associative and commutative.
    @raise Invalid_argument when the two histograms disagree on
    [sub_bits]. *)

val merge_into : dst:t -> t -> unit
(** In-place variant of {!merge}: accumulate [t] into [dst]. *)

val to_json : t -> Json.t
(** [{"sub_bits": b, "count": n, "sum": s, "min": lo, "max": hi,
    "buckets": [[index, count], ...]}] — sparse: only nonempty buckets
    appear, in increasing index order. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} (used by the offline [prof] CLI).  Count, sum
    and min/max are taken from the fields, buckets verbatim. *)

type event =
  | Init
  | Join of { parent : int; d : int }
  | Feedback
  | Complete

type wave = {
  id : int;
  root : int;
  preexisting : bool;
  mutable init_step : int option;
  mutable members : int;
  mutable depth : int;
  mutable r_moves : int;
  mutable rb_moves : int;
  mutable rf_moves : int;
  mutable c_moves : int;
  mutable active : int;
  mutable first_step : int;
  mutable last_step : int;
}

type t = {
  membership : int array;  (* process -> wave id, -1 when not mid-reset *)
  mutable waves_rev : wave list;
  mutable next_id : int;
  mutable synthetic : int;
  mutable seeded : bool;
  edge_seen : (int * int, unit) Hashtbl.t;
  mutable edges_rev : (int * int) list;
  mutable errors_rev : string list;
}

let create ~n =
  {
    membership = Array.make n (-1);
    waves_rev = [];
    next_id = 0;
    synthetic = 0;
    seeded = false;
    edge_seen = Hashtbl.create 16;
    edges_rev = [];
    errors_rev = [];
  }

let new_wave t ~root ~preexisting ~step =
  let w =
    {
      id = t.next_id;
      root;
      preexisting;
      init_step = None;
      members = 0;
      depth = 0;
      r_moves = 0;
      rb_moves = 0;
      rf_moves = 0;
      c_moves = 0;
      active = 0;
      first_step = step;
      last_step = step;
    }
  in
  t.next_id <- t.next_id + 1;
  t.waves_rev <- w :: t.waves_rev;
  w

let wave_by_id t id = List.find (fun w -> w.id = id) t.waves_rev

let touch w ~step =
  if step < w.first_step then w.first_step <- step;
  if step > w.last_step then w.last_step <- step

(* Detach [p] from its current wave (it is switching waves); records a
   succession edge from the old wave to [dst]. *)
let detach t p ~dst =
  let old = t.membership.(p) in
  if old >= 0 && old <> dst then begin
    let w = wave_by_id t old in
    w.active <- w.active - 1;
    if w.active < 0 then begin
      w.active <- 0;
      t.errors_rev <-
        Printf.sprintf "wave %d: membership went negative at process %d" old p
        :: t.errors_rev
    end;
    if not (Hashtbl.mem t.edge_seen (old, dst)) then begin
      Hashtbl.add t.edge_seen (old, dst) ();
      t.edges_rev <- (old, dst) :: t.edges_rev
    end
  end

let enroll t p w =
  t.membership.(p) <- w.id;
  w.members <- w.members + 1;
  w.active <- w.active + 1

(* A wave invented for an event whose provenance we cannot see (an orphan
   Feedback/Complete, or a Join whose parent is not mid-reset).  Happens
   only when the initial mid-reset processes were not declared via
   [seed_active]. *)
let synthesize t ~root ~step =
  t.synthetic <- t.synthetic + 1;
  let w = new_wave t ~root ~preexisting:true ~step in
  enroll t root w;
  w

let member_wave t p ~step =
  let id = t.membership.(p) in
  if id >= 0 then wave_by_id t id else synthesize t ~root:p ~step

let seed_active ~graph t actives =
  if t.seeded then invalid_arg "Span.seed_active: already seeded";
  t.seeded <- true;
  let d_of = Hashtbl.create 16 in
  List.iter (fun (p, d) -> Hashtbl.replace d_of p d) actives;
  let visited = Hashtbl.create 16 in
  (* One preexisting wave per connected component of the active set, rooted
     at the minimum-d member (ties to the smaller index). *)
  List.iter
    (fun (p0, _) ->
      if not (Hashtbl.mem visited p0) then begin
        let comp = ref [] in
        let queue = Queue.create () in
        Queue.add p0 queue;
        Hashtbl.replace visited p0 ();
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          comp := u :: !comp;
          Array.iter
            (fun v ->
              if Hashtbl.mem d_of v && not (Hashtbl.mem visited v) then begin
                Hashtbl.replace visited v ();
                Queue.add v queue
              end)
            (Ssreset_graph.Graph.neighbors graph u)
        done;
        let root =
          List.fold_left
            (fun best u ->
              let du = Hashtbl.find d_of u
              and db = Hashtbl.find d_of best in
              if du < db || (du = db && u < best) then u else best)
            p0 !comp
        in
        let w = new_wave t ~root ~preexisting:true ~step:0 in
        List.iter
          (fun u ->
            enroll t u w;
            let du = Hashtbl.find d_of u in
            if du > w.depth then w.depth <- du)
          (List.sort compare !comp)
      end)
    (List.sort compare actives)

let feed t ~step p ev =
  match ev with
  | Init ->
      let w = new_wave t ~root:p ~preexisting:false ~step in
      w.init_step <- Some step;
      w.r_moves <- w.r_moves + 1;
      detach t p ~dst:w.id;
      enroll t p w;
      touch w ~step
  | Join { parent; d } ->
      let w = member_wave t parent ~step in
      if p <> parent then begin
        detach t p ~dst:w.id;
        enroll t p w
      end;
      w.rb_moves <- w.rb_moves + 1;
      if d > w.depth then w.depth <- d;
      touch w ~step
  | Feedback ->
      let w = member_wave t p ~step in
      w.rf_moves <- w.rf_moves + 1;
      touch w ~step
  | Complete ->
      let w = member_wave t p ~step in
      w.c_moves <- w.c_moves + 1;
      touch w ~step;
      w.active <- w.active - 1;
      if w.active < 0 then begin
        w.active <- 0;
        t.errors_rev <-
          Printf.sprintf "wave %d: completion without membership at process %d"
            w.id p
          :: t.errors_rev
      end;
      t.membership.(p) <- -1

let feed_step t ~step movers =
  (* Joins first: they read the pre-step membership of their parent, which a
     same-step Init at the parent must not overwrite beforehand. *)
  List.iter
    (fun (p, ev) -> match ev with Join _ -> feed t ~step p ev | _ -> ())
    movers;
  List.iter
    (fun (p, ev) -> match ev with Join _ -> () | _ -> feed t ~step p ev)
    movers

let waves t = List.rev t.waves_rev
let wave_of t p = t.membership.(p)
let dag t = List.rev t.edges_rev

type stats = {
  wave_count : int;
  completed : int;
  preexisting_count : int;
  synthetic : int;
  max_depth : int;
  max_members : int;
  max_duration : int;
  total_moves : int;
}

let stats (t : t) =
  List.fold_left
    (fun s w ->
      {
        s with
        wave_count = s.wave_count + 1;
        completed = (s.completed + if w.active = 0 then 1 else 0);
        preexisting_count =
          (s.preexisting_count + if w.preexisting then 1 else 0);
        max_depth = max s.max_depth w.depth;
        max_members = max s.max_members w.members;
        max_duration = max s.max_duration (w.last_step - w.first_step);
        total_moves =
          s.total_moves + w.r_moves + w.rb_moves + w.rf_moves + w.c_moves;
      })
    {
      wave_count = 0;
      completed = 0;
      preexisting_count = 0;
      synthetic = t.synthetic;
      max_depth = 0;
      max_members = 0;
      max_duration = 0;
      total_moves = 0;
    }
    t.waves_rev

let check ?(require_complete = false) t =
  let errs = List.rev t.errors_rev in
  if require_complete then
    errs
    @ List.filter_map
        (fun w ->
          if w.active > 0 then
            Some
              (Printf.sprintf
                 "wave %d (root %d): still active with %d member(s) after a \
                  stabilized run"
                 w.id w.root w.active)
          else None)
        (waves t)
  else errs

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph waves {\n  rankdir=LR;\n";
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf
           "  w%d [shape=box,label=\"wave %d\\nroot %d%s\\nmembers %d depth \
            %d\\nr/rb/rf/c %d/%d/%d/%d\\nsteps %d..%d%s\"];\n"
           w.id w.id w.root
           (if w.preexisting then " (preexisting)" else "")
           w.members w.depth w.r_moves w.rb_moves w.rf_moves w.c_moves
           w.first_step w.last_step
           (if w.active > 0 then Printf.sprintf "\\nactive %d" w.active else "")))
    (waves t);
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  w%d -> w%d;\n" a b))
    (dag t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let schema = "ssreset-prof-v1"

(* [Monotonic_clock.now] is an [@unboxed] [@@noalloc] C stub over
   clock_gettime(CLOCK_MONOTONIC); the only per-read cost is the vDSO call
   and the (minor, 3-word) int64 box, immediately discarded. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())

type timer = {
  hist : Histogram.t;
  mutable total_ns : int;
  mutable t0 : int;  (* -1 when not running *)
}

type t = {
  metrics : Metrics.t;
  sub_bits : int;
  mutable timers : (string * timer) list;  (* reversed *)
  timer_index : (string, timer) Hashtbl.t;
  mutable hists : (string * Histogram.t) list;  (* reversed *)
  hist_index : (string, Histogram.t) Hashtbl.t;
  window_steps : int;
  sink : Sink.t option;
  (* step accounting *)
  mutable steps : int;
  mutable moves : int;
  (* window state *)
  mutable window_index : int;
  mutable win_t0 : int;
  mutable win_steps0 : int;
  mutable win_moves0 : int;
  mutable win_snap : Metrics.snapshot;
  mutable win_minor0 : float;
  mutable win_major0 : float;
  (* gc mark *)
  mutable gc_minor0 : float;
  mutable gc_promoted0 : float;
  mutable gc_major0 : float;
  mutable gc_minor_col0 : int;
  mutable gc_major_col0 : int;
}

let create ?(sub_bits = 5) ?(window_steps = 0) ?sink () =
  let metrics = Metrics.create () in
  let q = Gc.quick_stat () in
  {
    metrics;
    sub_bits;
    timers = [];
    timer_index = Hashtbl.create 16;
    hists = [];
    hist_index = Hashtbl.create 8;
    window_steps;
    sink;
    steps = 0;
    moves = 0;
    window_index = 0;
    win_t0 = now_ns ();
    win_steps0 = 0;
    win_moves0 = 0;
    win_snap = Metrics.snapshot metrics;
    win_minor0 = q.Gc.minor_words;
    win_major0 = q.Gc.major_words;
    gc_minor0 = q.Gc.minor_words;
    gc_promoted0 = q.Gc.promoted_words;
    gc_major0 = q.Gc.major_words;
    gc_minor_col0 = q.Gc.minor_collections;
    gc_major_col0 = q.Gc.major_collections;
  }

let metrics t = t.metrics

let timer t name =
  match Hashtbl.find_opt t.timer_index name with
  | Some tm -> tm
  | None ->
      let tm =
        { hist = Histogram.create ~sub_bits:t.sub_bits (); total_ns = 0; t0 = -1 }
      in
      t.timers <- (name, tm) :: t.timers;
      Hashtbl.replace t.timer_index name tm;
      tm

let record_span tm ns =
  let ns = if ns < 0 then 0 else ns in
  tm.total_ns <- tm.total_ns + ns;
  Histogram.record tm.hist ns

let start tm = tm.t0 <- now_ns ()

let stop tm =
  if tm.t0 >= 0 then begin
    record_span tm (now_ns () - tm.t0);
    tm.t0 <- -1
  end

let timer_total_ns tm = tm.total_ns
let timer_count tm = Histogram.count tm.hist
let timer_hist tm = tm.hist

(* Bulk-merge externally accumulated spans (a worker domain's private
   histogram) into a timer — the partitioned engine's per-domain phase laps
   land in one stream this way.  Lossless: bucket-wise sum plus the exact
   total kept on the side. *)
let merge_spans tm ~total_ns hist =
  tm.total_ns <- tm.total_ns + (if total_ns < 0 then 0 else total_ns);
  Histogram.merge_into ~dst:tm.hist hist

let histogram t name =
  match Hashtbl.find_opt t.hist_index name with
  | Some h -> h
  | None ->
      let h = Histogram.create ~sub_bits:t.sub_bits () in
      t.hists <- (name, h) :: t.hists;
      Hashtbl.replace t.hist_index name h;
      h

let gc_mark t =
  let q = Gc.quick_stat () in
  t.gc_minor0 <- q.Gc.minor_words;
  t.gc_promoted0 <- q.Gc.promoted_words;
  t.gc_major0 <- q.Gc.major_words;
  t.gc_minor_col0 <- q.Gc.minor_collections;
  t.gc_major_col0 <- q.Gc.major_collections

let gc_collect t =
  let q = Gc.quick_stat () in
  let addf name before now =
    Metrics.add (Metrics.counter t.metrics name)
      (int_of_float (now -. before))
  in
  addf "gc.minor_words" t.gc_minor0 q.Gc.minor_words;
  addf "gc.promoted_words" t.gc_promoted0 q.Gc.promoted_words;
  addf "gc.major_words" t.gc_major0 q.Gc.major_words;
  Metrics.add
    (Metrics.counter t.metrics "gc.minor_collections")
    (q.Gc.minor_collections - t.gc_minor_col0);
  Metrics.add
    (Metrics.counter t.metrics "gc.major_collections")
    (q.Gc.major_collections - t.gc_major_col0);
  gc_mark t

let steps t = t.steps
let moves t = t.moves

(* Per-rule move deltas for a window: counters follow the ["moves.R"]
   convention; everything else in the diff is reported under "counters". *)
let split_moves deltas =
  List.partition_map
    (fun (name, d) ->
      if String.length name > 6 && String.sub name 0 6 = "moves." then
        Left (String.sub name 6 (String.length name - 6), d)
      else Right (name, d))
    deltas

let emit_window t =
  match t.sink with
  | None -> ()
  | Some sink ->
      let now = now_ns () in
      let wall_s = float_of_int (now - t.win_t0) /. 1e9 in
      let dsteps = t.steps - t.win_steps0 in
      let dmoves = t.moves - t.win_moves0 in
      let q = Gc.quick_stat () in
      let rule_moves, other_counters =
        split_moves (Metrics.diff t.win_snap t.metrics)
      in
      let rate d = if wall_s > 0. then float_of_int d /. wall_s else 0. in
      Sink.write sink
        (Json.Obj
           [ ("type", Json.String "window");
             ("index", Json.Int t.window_index);
             ("at_step", Json.Int t.steps);
             ("steps", Json.Int dsteps);
             ("moves", Json.Int dmoves);
             ("wall_s", Json.Float wall_s);
             ("steps_per_s", Json.Float (rate dsteps));
             ("moves_per_s", Json.Float (rate dmoves));
             ( "moves_per_rule",
               Json.Obj (List.map (fun (r, d) -> (r, Json.Int d)) rule_moves) );
             ( "counters",
               Json.Obj
                 (List.map (fun (n, d) -> (n, Json.Int d)) other_counters) );
             ( "gc_minor_words",
               Json.Int (int_of_float (q.Gc.minor_words -. t.win_minor0)) );
             ( "gc_major_words",
               Json.Int (int_of_float (q.Gc.major_words -. t.win_major0)) ) ]);
      t.window_index <- t.window_index + 1;
      t.win_t0 <- now;
      t.win_steps0 <- t.steps;
      t.win_moves0 <- t.moves;
      t.win_snap <- Metrics.snapshot t.metrics;
      t.win_minor0 <- q.Gc.minor_words;
      t.win_major0 <- q.Gc.major_words

let tick t ~moves =
  t.steps <- t.steps + 1;
  t.moves <- t.moves + moves;
  if
    t.window_steps > 0
    && Option.is_some t.sink
    && t.steps - t.win_steps0 >= t.window_steps
  then emit_window t

let manifest ?(extra = []) ~system ~family ~n ~m ~seed ~daemon ~window_steps ()
    =
  Json.Obj
    ([ ("type", Json.String "manifest");
       ("schema", Json.String schema);
       ("system", Json.String system);
       ("family", Json.String family);
       ("n", Json.Int n);
       ("m", Json.Int m);
       ("seed", Json.Int seed);
       ("daemon", Json.String daemon);
       ("window_steps", Json.Int window_steps);
       ("git", Json.String (Sink.git_describe ())) ]
    @ extra)

let timer_summary tm =
  let h = tm.hist in
  Json.Obj
    [ ("ns", Json.Int tm.total_ns);
      ("count", Json.Int (Histogram.count h));
      ("mean_ns", Json.Float (Histogram.mean h));
      ("p50_ns", Json.Float (Histogram.percentile h ~p:50.));
      ("p90_ns", Json.Float (Histogram.percentile h ~p:90.));
      ("max_ns", Json.Int (Histogram.max_value h)) ]

let strip prefix (name, tm) =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    Some (String.sub name pl (String.length name - pl), tm)
  else None

let summary_json t =
  let ordered = List.rev t.timers in
  let section prefix =
    List.filter_map
      (fun nt ->
        Option.map (fun (n, tm) -> (n, timer_summary tm)) (strip prefix nt))
      ordered
  in
  let wall_s = Metrics.gauge_value (Metrics.gauge t.metrics "engine.wall_s") in
  Json.Obj
    [ ("type", Json.String "summary");
      ("steps", Json.Int t.steps);
      ("moves", Json.Int t.moves);
      ("wall_s", Json.Float wall_s);
      ("windows", Json.Int t.window_index);
      ("phases", Json.Obj (section "phase."));
      ("rules", Json.Obj (section "rule."));
      ("metrics", Metrics.to_json t.metrics);
      ( "timers",
        Json.Obj
          (List.map
             (fun (name, tm) ->
               ( name,
                 Json.Obj
                   [ ("total_ns", Json.Int tm.total_ns);
                     ("hist", Histogram.to_json tm.hist) ] ))
             ordered) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, h) -> (name, Histogram.to_json h))
             (List.rev t.hists)) ) ]

let write_summary t =
  match t.sink with
  | None -> ()
  | Some sink -> Sink.write sink (summary_json t)

(** Dynamic checker for the SDR input requirements (§3.5).

    Requirement 1 is discharged by typing (the input algorithm cannot even
    name the SDR variables), and the locality half of 2b likewise ([p_reset]
    only receives the process's own state).  The remaining obligations are
    checked by random exploration:

    - 2a: [p_icorrect] is closed by the input algorithm;
    - 2b (behavioral residue): [p_reset] is stable, [reset] is deterministic
      and idempotent — the part typing cannot rule out (hidden mutable
      state);
    - 2c (first half): no input rule is enabled on a view violating
      [p_icorrect] (the [P_Clean] half is enforced by the composition);
    - 2d: an all-reset closed neighborhood satisfies [p_icorrect];
    - 2e: [p_reset (reset s)] for every state [s].

    The checker is used by the test suites of every instantiation (unison,
    alliance, coloring, MIS). *)

type violation = {
  requirement : string;  (** e.g. ["2a"] *)
  detail : string;
}

val pp_violation : violation Fmt.t

val check :
  ?steps:int ->
  ?daemon:Ssreset_sim.Daemon.t ->
  (module Sdr.INPUT with type state = 's) ->
  gen:'s Ssreset_sim.Fault.generator ->
  graphs:Ssreset_graph.Graph.t list ->
  seed:int ->
  trials:int ->
  violation list
(** Runs [trials] random explorations per requirement per graph.  The
    generator must respect variable domains and constants for the given
    graph (same contract as fault injection).  Returns all violations found
    (empty = no counterexample).

    [steps] (default 20) bounds the length of each 2a closure walk and
    [daemon] (default [Daemon.distributed_random 0.5]) schedules it. *)

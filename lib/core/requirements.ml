module Algorithm = Ssreset_sim.Algorithm
module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Fault = Ssreset_sim.Fault
module Graph = Ssreset_graph.Graph

type violation = {
  requirement : string;
  detail : string;
}

let pp_violation ppf v = Fmt.pf ppf "requirement %s: %s" v.requirement v.detail

let check (type s) ?(steps = 20) ?daemon
    (module I : Sdr.INPUT with type state = s) ~(gen : s Fault.generator)
    ~graphs ~seed ~trials =
  let daemon =
    match daemon with Some d -> d | None -> Daemon.distributed_random 0.5
  in
  let violations = ref [] in
  let report requirement fmt =
    Format.kasprintf
      (fun detail -> violations := { requirement; detail } :: !violations)
      fmt
  in
  let bare : s Algorithm.t =
    { Algorithm.name = I.name; rules = I.rules; equal = I.equal; pp = I.pp }
  in
  let rng = Random.State.make [| seed |] in
  List.iter
    (fun g ->
      for trial = 1 to trials do
        let cfg = Fault.arbitrary rng gen g in
        (* 2b: typing already prevents [p_reset] from reading anything but
           the process's own state; what typing cannot rule out is hidden
           mutable state, so we check the behavioral residue: [p_reset] is
           stable (same state, same verdict), [reset] is deterministic, and
           [reset] is idempotent (it reinitializes the variables and keeps
           the constants, so resetting twice changes nothing). *)
        Array.iteri
          (fun u s ->
            if I.p_reset s <> I.p_reset s then
              report "2b" "trial %d: p_reset unstable on process %d state %a"
                trial u I.pp s;
            let r1 = I.reset s and r2 = I.reset s in
            if not (I.equal r1 r2) then
              report "2b"
                "trial %d: reset nondeterministic on process %d state %a"
                trial u I.pp s;
            if not (I.equal (I.reset r1) r1) then
              report "2b"
                "trial %d: reset not idempotent on process %d: %a resets to %a"
                trial u I.pp r1 I.pp (I.reset r1))
          cfg;
        (* 2e: reset always reaches a p_reset state. *)
        Array.iteri
          (fun u s ->
            if not (I.p_reset (I.reset s)) then
              report "2e" "trial %d: reset of process %d state %a misses P_reset"
                trial u I.pp s)
          cfg;
        (* 2d: all-reset closed neighborhoods are locally correct. *)
        let reset_cfg = Array.map I.reset cfg in
        Array.iteri
          (fun u _ ->
            let v = Algorithm.view g reset_cfg u in
            if not (I.p_icorrect v) then
              report "2d" "trial %d: all-reset neighborhood of %d not P_ICorrect"
                trial u)
          reset_cfg;
        (* 2c: input rules are disabled on locally incorrect views. *)
        Array.iteri
          (fun u _ ->
            let v = Algorithm.view g cfg u in
            if not (I.p_icorrect v) then
              List.iter
                (fun (r : s Algorithm.rule) ->
                  if r.Algorithm.guard v then
                    report "2c"
                      "trial %d: rule %s enabled at %d while not P_ICorrect"
                      trial r.Algorithm.rule_name u)
                I.rules)
          cfg;
        (* 2a: p_icorrect is closed by steps of the bare input algorithm.
           Walk a short random execution and check every step. *)
        let correct_before = Array.make (Graph.n g) false in
        let record_correct cfg =
          Array.iteri
            (fun u _ ->
              correct_before.(u) <- I.p_icorrect (Algorithm.view g cfg u))
            cfg
        in
        record_correct cfg;
        let current = ref cfg in
        (try
           for step_index = 0 to steps do
             match
               Engine.step ~rng ~algorithm:bare ~graph:g ~daemon ~step_index
                 !current
             with
             | None -> raise Exit
             | Some (next, _) ->
                 Array.iteri
                   (fun u _ ->
                     if
                       correct_before.(u)
                       && not (I.p_icorrect (Algorithm.view g next u))
                     then
                       report "2a"
                         "trial %d: P_ICorrect(%d) not closed at step %d" trial
                         u step_index)
                   next;
                 record_correct next;
                 current := next
           done
         with Exit -> ())
      done)
    graphs;
  List.rev !violations

module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph

type status = C | RB | RF

let pp_status ppf = function
  | C -> Fmt.string ppf "C"
  | RB -> Fmt.string ppf "RB"
  | RF -> Fmt.string ppf "RF"

let status_equal (a : status) b = a = b

let status_to_string = function C -> "C" | RB -> "RB" | RF -> "RF"

type 'inner state = {
  st : status;
  d : int;
  inner : 'inner;
}

module type INPUT = sig
  type state

  val name : string
  val equal : state -> state -> bool
  val pp : state Fmt.t
  val p_icorrect : state Algorithm.view -> bool
  val p_reset : state -> bool
  val reset : state -> state
  val rules : state Algorithm.rule list
end

module type S = sig
  type inner
  type nonrec state = inner state

  val algorithm : state Algorithm.t
  val sdr_rule_names : string list
  val lift : inner array -> state array
  val inner_config : state array -> inner array

  val generator :
    inner:inner Ssreset_sim.Fault.generator ->
    max_d:int ->
    state Ssreset_sim.Fault.generator

  val p_clean : state Algorithm.view -> bool
  val p_icorrect : state Algorithm.view -> bool
  val p_correct : state Algorithm.view -> bool
  val p_r1 : state Algorithm.view -> bool
  val p_r2 : state Algorithm.view -> bool
  val p_rb : state Algorithm.view -> bool
  val p_rf : state Algorithm.view -> bool
  val p_c : state Algorithm.view -> bool
  val p_up : state Algorithm.view -> bool
  val is_alive_root : state Algorithm.view -> bool
  val is_dead_root : state Algorithm.view -> bool
  val alive_roots : Graph.t -> state array -> int list
  val count_alive_roots : Graph.t -> state array -> int
  val is_normal : Graph.t -> state array -> bool

  module Segments : sig
    type t

    val create : Graph.t -> state array -> t

    val observer :
      t -> step:int -> moved:(int * string) list -> state array -> unit

    val count : t -> int
    val alive_root_history : t -> int list
  end

  module Waves : sig
    val classify :
      Ssreset_graph.Graph.t ->
      state array ->
      int ->
      string ->
      Ssreset_obs.Span.event option

    val initial_active : state array -> (int * status * int) list

    type tracker

    val create : Ssreset_graph.Graph.t -> state array -> tracker

    val observer :
      tracker -> step:int -> moved:(int * string) list -> state array -> unit

    val span : tracker -> Ssreset_obs.Span.t

    val classify_movers :
      tracker ->
      (int * string) list ->
      (int * string * Ssreset_obs.Span.event option) list
  end
end

module Make (I : INPUT) = struct
  type inner = I.state
  type nonrec state = inner state

  let sdr_rule_names = [ "SDR-RB"; "SDR-RF"; "SDR-C"; "SDR-R" ]

  let lift cfg = Array.map (fun inner -> { st = C; d = 0; inner }) cfg
  let inner_config cfg = Array.map (fun s -> s.inner) cfg

  let generator ~inner ~max_d rng u =
    let st =
      match Random.State.int rng 3 with 0 -> C | 1 -> RB | _ -> RF
    in
    { st; d = Random.State.int rng (max_d + 1); inner = inner rng u }

  (* Views of the input algorithm are obtained by stripping the SDR
     variables from the composed view. *)
  let inner_view (v : state Algorithm.view) : I.state Algorithm.view =
    { Algorithm.state = v.Algorithm.state.inner;
      nbrs = Array.map (fun s -> s.inner) v.Algorithm.nbrs }

  let p_icorrect v = I.p_icorrect (inner_view v)
  let p_reset_self (v : state Algorithm.view) = I.p_reset v.Algorithm.state.inner

  let p_correct (v : state Algorithm.view) =
    v.Algorithm.state.st <> C || p_icorrect v

  let p_clean (v : state Algorithm.view) =
    v.Algorithm.state.st = C
    && Array.for_all (fun s -> s.st = C) v.Algorithm.nbrs

  let p_r1 (v : state Algorithm.view) =
    v.Algorithm.state.st = C
    && (not (p_reset_self v))
    && Array.exists (fun s -> s.st = RF) v.Algorithm.nbrs

  let p_rb (v : state Algorithm.view) =
    v.Algorithm.state.st = C
    && Array.exists (fun s -> s.st = RB) v.Algorithm.nbrs

  let p_rf (v : state Algorithm.view) =
    let self = v.Algorithm.state in
    self.st = RB
    && I.p_reset self.inner
    && Array.for_all
         (fun s ->
           (s.st = RB && s.d <= self.d) || (s.st = RF && I.p_reset s.inner))
         v.Algorithm.nbrs

  let p_c (v : state Algorithm.view) =
    let self = v.Algorithm.state in
    let ok s =
      I.p_reset s.inner && ((s.st = RF && s.d >= self.d) || s.st = C)
    in
    self.st = RF && ok self && Array.for_all ok v.Algorithm.nbrs

  let p_r2 (v : state Algorithm.view) =
    v.Algorithm.state.st <> C && not (p_reset_self v)

  let p_up v = (not (p_rb v)) && (p_r1 v || p_r2 v || not (p_correct v))

  (* Macros of Algorithm 1. *)
  let be_root (v : state Algorithm.view) =
    { st = RB; d = 0; inner = I.reset v.Algorithm.state.inner }

  let compute (v : state Algorithm.view) =
    let min_d =
      Array.fold_left
        (fun acc s -> if s.st = RB then min acc s.d else acc)
        max_int v.Algorithm.nbrs
    in
    (* [P_RB] guarantees a neighbor with status RB, so [min_d < max_int]. *)
    { st = RB;
      d = min_d + 1;
      inner = I.reset v.Algorithm.state.inner }

  let rule_rb =
    { Algorithm.rule_name = "SDR-RB"; guard = p_rb; action = compute }

  let rule_rf =
    { Algorithm.rule_name = "SDR-RF";
      guard = p_rf;
      action = (fun v -> { v.Algorithm.state with st = RF }) }

  let rule_c =
    { Algorithm.rule_name = "SDR-C";
      guard = p_c;
      action = (fun v -> { v.Algorithm.state with st = C }) }

  let rule_r =
    { Algorithm.rule_name = "SDR-R"; guard = p_up; action = be_root }

  (* Every rule of I is gated by [P_Clean] (the composition stops the input
     algorithm in the neighborhood of any ongoing reset). *)
  let lift_rule (r : I.state Algorithm.rule) : state Algorithm.rule =
    { Algorithm.rule_name = r.Algorithm.rule_name;
      guard = (fun v -> p_clean v && r.Algorithm.guard (inner_view v));
      action =
        (fun v ->
          { v.Algorithm.state with
            inner = r.Algorithm.action (inner_view v) }) }

  let equal_state a b =
    status_equal a.st b.st && a.d = b.d && I.equal a.inner b.inner

  let pp_state ppf s =
    match s.st with
    | C -> Fmt.pf ppf "C/%a" I.pp s.inner
    | _ -> Fmt.pf ppf "%a@%d/%a" pp_status s.st s.d I.pp s.inner

  let algorithm =
    { Algorithm.name = I.name ^ "∘SDR";
      rules =
        [ rule_rb; rule_rf; rule_c; rule_r ] @ List.map lift_rule I.rules;
      equal = equal_state;
      pp = pp_state }

  (* Roots, Definition 1. *)
  let p_root (v : state Algorithm.view) =
    let self = v.Algorithm.state in
    self.st = RB
    && Array.for_all
         (fun s -> (not (s.st = RB)) || s.d >= self.d)
         v.Algorithm.nbrs

  let is_alive_root v = p_up v || p_root v

  let is_dead_root (v : state Algorithm.view) =
    let self = v.Algorithm.state in
    self.st = RF
    && Array.for_all
         (fun s -> s.st = C || s.d >= self.d)
         v.Algorithm.nbrs

  let alive_roots g cfg =
    let acc = ref [] in
    for u = Graph.n g - 1 downto 0 do
      if is_alive_root (Algorithm.view g cfg u) then acc := u :: !acc
    done;
    !acc

  let count_alive_roots g cfg = List.length (alive_roots g cfg)

  let is_normal g cfg =
    Algorithm.for_all_views g cfg ~f:(fun _ v -> p_clean v && p_icorrect v)

  module Segments = struct
    type t = {
      graph : Graph.t;
      mutable last : int;
      mutable segments : int;
      mutable history : int list;  (* reversed *)
    }

    let create graph cfg =
      let c = count_alive_roots graph cfg in
      { graph; last = c; segments = 1; history = [ c ] }

    let observer t ~step:_ ~moved:_ cfg =
      let c = count_alive_roots t.graph cfg in
      if c < t.last then t.segments <- t.segments + 1;
      t.last <- c;
      t.history <- c :: t.history

    let count t = t.segments
    let alive_root_history t = List.rev t.history
  end

  module Waves = struct
    module Span = Ssreset_obs.Span

    let classify g before u rule =
      match rule with
      | "SDR-R" -> Some Span.Init
      | "SDR-RF" -> Some Span.Feedback
      | "SDR-C" -> Some Span.Complete
      | "SDR-RB" ->
          (* Replay the [compute] macro on the pre-step configuration: the
             parent is the minimum-d RB neighbor; strict [<] over the sorted
             neighbor array keeps the smallest index on ties. *)
          let parent = ref (-1) and min_d = ref max_int in
          Array.iter
            (fun v ->
              let s = before.(v) in
              if s.st = RB && s.d < !min_d then begin
                min_d := s.d;
                parent := v
              end)
            (Graph.neighbors g u);
          if !parent < 0 then None
            (* Unreachable from a real run: P_RB guarantees an RB neighbor. *)
          else Some (Span.Join { parent = !parent; d = !min_d + 1 })
      | _ -> None

    let initial_active cfg =
      let acc = ref [] in
      for u = Array.length cfg - 1 downto 0 do
        if cfg.(u).st <> C then acc := (u, cfg.(u).st, cfg.(u).d) :: !acc
      done;
      !acc

    type tracker = {
      graph : Graph.t;
      cur : state array;  (* the pre-step configuration, kept incrementally *)
      span : Span.t;
    }

    let create graph cfg0 =
      let span = Span.create ~n:(Array.length cfg0) in
      Span.seed_active ~graph span
        (List.map (fun (p, _, d) -> (p, d)) (initial_active cfg0));
      { graph; cur = Array.copy cfg0; span }

    let classify_movers t moved =
      List.map
        (fun (p, rule) -> (p, rule, classify t.graph t.cur p rule))
        moved

    let observer t ~step ~moved after =
      Span.feed_step t.span ~step
        (List.filter_map
           (fun (p, rule) ->
             Option.map
               (fun ev -> (p, ev))
               (classify t.graph t.cur p rule))
           moved);
      (* Only movers changed state: advance the pre-step copy in O(movers)
         rather than O(n). *)
      List.iter (fun (p, _) -> t.cur.(p) <- after.(p)) moved

    let span t = t.span
  end
end

(** SDR — the Self-stabilizing Distributed cooperative Reset (Algorithm 1).

    SDR is a transformer: given an input algorithm [I] that is locally
    checkable (predicate [P_ICorrect]) and locally resettable (predicate
    [P_reset] and macro [reset]), the composition [I ∘ SDR] is
    self-stabilizing for [I]'s specification, under the distributed unfair
    daemon, in any anonymous connected network.

    The composition is expressed as a functor: {!Make} takes a module
    matching {!module-type:INPUT} and produces the composed algorithm plus
    the observers used by the paper's analysis (alive/dead roots,
    Definition 1; segments, Definition 3; normal configurations,
    Definition 6). *)

type status = C  (** correct: not involved in a reset *)
            | RB  (** reset broadcast phase *)
            | RF  (** reset feedback phase *)

val pp_status : status Fmt.t
val status_equal : status -> status -> bool

val status_to_string : status -> string
(** ["C"], ["RB"] or ["RF"] — the encoding used by trace records. *)

type 'inner state = {
  st : status;  (** variable [st_u] *)
  d : int;  (** variable [d_u], the distance in the reset DAG *)
  inner : 'inner;  (** the state of the input algorithm *)
}

(** Requirements on the input algorithm (§3.5).  Beyond the signature:

    - Rule guards must imply [p_icorrect] of the process's own view
      (Requirement 2c's first half; the [P_Clean] half is enforced by the
      composition itself, which gates every input rule).
    - [p_icorrect] must be closed by the input algorithm (Requirement 2a)
      and must not involve SDR variables (guaranteed by typing: it only
      sees ['state]).
    - [p_reset] only reads the process's own state (guaranteed by typing,
      Requirement 2b).
    - If every member of a closed neighborhood satisfies [p_reset], the
      center must satisfy [p_icorrect] (Requirement 2d).
    - [p_reset (reset s)] must hold for every [s] (Requirement 2e).

    {!Requirements} checks the non-typing obligations dynamically. *)
module type INPUT = sig
  type state

  val name : string
  val equal : state -> state -> bool
  val pp : state Fmt.t

  val p_icorrect : state Ssreset_sim.Algorithm.view -> bool
  (** Local checkability: does the process consider its closed neighborhood
      consistent? *)

  val p_reset : state -> bool
  (** Is this state a pre-defined initial state? *)

  val reset : state -> state
  (** Reinitialize the variables; constants (identifiers, parameters) are
      preserved. *)

  val rules : state Ssreset_sim.Algorithm.rule list
  (** The input algorithm's own rules, over input-state views.  The
      composition gates each of them by [P_Clean]. *)
end

(** Output signature of {!Make}: the composed algorithm plus the paper's
    analytical observers. *)
module type S = sig
  type inner
  (** The input algorithm's state. *)

  type nonrec state = inner state

  val algorithm : state Ssreset_sim.Algorithm.t
  (** [I ∘ SDR]: all rules of SDR (named ["SDR-RB"], ["SDR-RF"], ["SDR-C"],
      ["SDR-R"]) plus every rule of [I] gated by [P_Clean]. *)

  val sdr_rule_names : string list
  (** [["SDR-RB"; "SDR-RF"; "SDR-C"; "SDR-R"]] — e.g. for
      {!Ssreset_sim.Engine.moves_of_rules}. *)

  (** {2 Configurations} *)

  val lift : inner array -> state array
  (** Wrap an input configuration with [st = C, d = 0] — e.g. the
      pre-defined initial configuration of [I]. *)

  val inner_config : state array -> inner array

  val generator :
    inner:inner Ssreset_sim.Fault.generator ->
    max_d:int ->
    state Ssreset_sim.Fault.generator
  (** Arbitrary-state generator for fault injection: uniform status, uniform
      distance in [0..max_d], inner state from [inner]. *)

  (** {2 Predicates of Algorithm 1} *)

  val p_clean : state Ssreset_sim.Algorithm.view -> bool
  val p_icorrect : state Ssreset_sim.Algorithm.view -> bool
  val p_correct : state Ssreset_sim.Algorithm.view -> bool
  val p_r1 : state Ssreset_sim.Algorithm.view -> bool
  val p_r2 : state Ssreset_sim.Algorithm.view -> bool
  val p_rb : state Ssreset_sim.Algorithm.view -> bool
  val p_rf : state Ssreset_sim.Algorithm.view -> bool
  val p_c : state Ssreset_sim.Algorithm.view -> bool
  val p_up : state Ssreset_sim.Algorithm.view -> bool

  (** {2 Roots and normality (Definitions 1 and 6)} *)

  val is_alive_root : state Ssreset_sim.Algorithm.view -> bool
  (** [P_Up(u) ∨ P_root(u)]. *)

  val is_dead_root : state Ssreset_sim.Algorithm.view -> bool

  val alive_roots : Ssreset_graph.Graph.t -> state array -> int list
  val count_alive_roots : Ssreset_graph.Graph.t -> state array -> int

  val is_normal : Ssreset_graph.Graph.t -> state array -> bool
  (** Normal configuration: [P_Clean(u) ∧ P_ICorrect(u)] for every process
      (equivalently, the projection on SDR is terminal — Lemma 15). *)

  (** {2 Segments (Definition 3)} *)

  module Segments : sig
    type t

    val create : Ssreset_graph.Graph.t -> state array -> t

    val observer :
      t -> step:int -> moved:(int * string) list -> state array -> unit
    (** Plug into {!Ssreset_sim.Engine.run}'s [observer]. *)

    val count : t -> int
    (** Number of segments spanned so far (≥ 1). *)

    val alive_root_history : t -> int list
    (** Alive-root count of every configuration seen, in order. *)
  end

  (** {2 Wave provenance}

      Classify SDR moves into the wave events consumed by
      {!Ssreset_obs.Span}: [SDR-R] initiates a wave, [SDR-RB] joins the
      parent's wave (the parent being the minimum-[d] RB neighbor the
      [compute] macro read, ties to the smallest index), [SDR-RF] is
      feedback and [SDR-C] completion. *)
  module Waves : sig
    val classify :
      Ssreset_graph.Graph.t ->
      state array ->
      int ->
      string ->
      Ssreset_obs.Span.event option
    (** [classify g before u rule] is the wave event of [u]'s move firing
        [rule] from the {e pre-step} configuration [before]; [None] for
        input-algorithm rules. *)

    val initial_active : state array -> (int * status * int) list
    (** The processes mid-reset ([st ≠ C]) in a configuration, as
        [(process, status, d)] — the seed for {!Ssreset_obs.Span.seed_active}
        and the trace's [init] record. *)

    type tracker
    (** Online wave reconstruction: keeps an incrementally-updated copy of
        the pre-step configuration (no per-step [O(n)] copies) and feeds a
        {!Ssreset_obs.Span.t}. *)

    val create : Ssreset_graph.Graph.t -> state array -> tracker

    val observer :
      tracker -> step:int -> moved:(int * string) list -> state array -> unit
    (** Plug into {!Ssreset_sim.Engine.run}'s [observer]. *)

    val span : tracker -> Ssreset_obs.Span.t

    val classify_movers :
      tracker -> (int * string) list -> (int * string * Ssreset_obs.Span.event option) list
    (** Classify the movers of the {e next} step against the tracker's
        current (pre-step) configuration, without advancing it — for
        emitting step records from the same hook that feeds the span. *)
  end
end

module Make (I : INPUT) : S with type inner = I.state

type t = { n : int; offsets : int array; nbrs : int array }

exception Invalid_csr of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_csr s)) fmt
let n t = t.n
let m t = Array.length t.nbrs / 2
let degree t u = t.offsets.(u + 1) - t.offsets.(u)

let max_degree t =
  let d = ref 0 in
  for u = 0 to t.n - 1 do
    if degree t u > !d then d := degree t u
  done;
  !d

let iter_nbrs t u f =
  for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f t.nbrs.(i)
  done

(* Binary search for [v] in row [u]; rows are sorted. *)
let has_edge t u v =
  let lo = ref t.offsets.(u) and hi = ref t.offsets.(u + 1) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.nbrs.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid
  done;
  !found

let make ~n ~offsets ~nbrs =
  if n <= 0 then invalid "csr: need n >= 1, got %d" n;
  if Array.length offsets <> n + 1 then
    invalid "csr: offsets length %d, expected %d" (Array.length offsets) (n + 1);
  if offsets.(0) <> 0 then invalid "csr: offsets.(0) = %d" offsets.(0);
  if offsets.(n) <> Array.length nbrs then
    invalid "csr: offsets.(%d) = %d, nbrs length %d" n offsets.(n)
      (Array.length nbrs);
  let t = { n; offsets; nbrs } in
  for u = 0 to n - 1 do
    if offsets.(u + 1) < offsets.(u) then
      invalid "csr: offsets not monotone at %d" u;
    for i = offsets.(u) to offsets.(u + 1) - 1 do
      let v = nbrs.(i) in
      if v < 0 || v >= n then invalid "csr: neighbor %d out of range" v;
      if v = u then invalid "csr: self-loop on %d" u;
      if i > offsets.(u) && nbrs.(i - 1) >= v then
        invalid "csr: row %d not strictly sorted" u
    done
  done;
  (* Symmetry: every arc must have its mirror. *)
  for u = 0 to n - 1 do
    for i = offsets.(u) to offsets.(u + 1) - 1 do
      if not (has_edge t t.nbrs.(i) u) then
        invalid "csr: arc (%d,%d) has no mirror" u nbrs.(i)
    done
  done;
  t

(* In-place insertion sort of nbrs[lo..hi) — rows are short (≈ Δ), and the
   generators emit them nearly sorted already. *)
let sort_row nbrs lo hi =
  for i = lo + 1 to hi - 1 do
    let x = nbrs.(i) in
    let j = ref (i - 1) in
    while !j >= lo && nbrs.(!j) > x do
      nbrs.(!j + 1) <- nbrs.(!j);
      decr j
    done;
    nbrs.(!j + 1) <- x
  done

let ring n =
  if n < 3 then invalid "ring: need n >= 3, got %d" n;
  let offsets = Array.init (n + 1) (fun u -> 2 * u) in
  let nbrs = Array.make (2 * n) 0 in
  for u = 0 to n - 1 do
    let a = (u + n - 1) mod n and b = (u + 1) mod n in
    nbrs.(2 * u) <- min a b;
    nbrs.((2 * u) + 1) <- max a b
  done;
  { n; offsets; nbrs }

let torus w h =
  if w < 3 || h < 3 then invalid "torus: need w,h >= 3";
  let n = w * h in
  (* 4-regular: row of u = sorted {left, right, up, down}. *)
  let offsets = Array.init (n + 1) (fun u -> 4 * u) in
  let nbrs = Array.make (4 * n) 0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let u = (y * w) + x in
      let base = 4 * u in
      nbrs.(base) <- (y * w) + ((x + w - 1) mod w);
      nbrs.(base + 1) <- (y * w) + ((x + 1) mod w);
      nbrs.(base + 2) <- (((y + h - 1) mod h) * w) + x;
      nbrs.(base + 3) <- (((y + 1) mod h) * w) + x;
      sort_row nbrs base (base + 4)
    done
  done;
  { n; offsets; nbrs }

let random_regular_ish rng n k =
  if n < 3 then invalid "random_regular_ish: need n >= 3, got %d" n;
  if k < 2 then invalid "random_regular_ish: need k >= 2, got %d" k;
  let k = min k (n - 1) in
  let target_m = min (n * k / 2) (n * (n - 1) / 2) in
  (* Chords beyond the ring backbone: flat pair buffer + dedup table.
     Same draw order as Gen.random_regular_ish, so equal seeds give the
     identical edge set. *)
  let extra = max 0 (target_m - n) in
  let chord_u = Array.make (max 1 extra) 0 in
  let chord_v = Array.make (max 1 extra) 0 in
  let present = Hashtbl.create (4 * n) in
  let n_chords = ref 0 in
  let missing = ref extra in
  let attempts = ref (20 * n * k) in
  while !missing > 0 && !attempts > 0 do
    decr attempts;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then begin
      let a = min u v and b = max u v in
      (* Ring edges are present implicitly. *)
      let on_ring = b - a = 1 || (a = 0 && b = n - 1) in
      let key = (a * n) + b in
      if (not on_ring) && not (Hashtbl.mem present key) then begin
        Hashtbl.replace present key ();
        chord_u.(!n_chords) <- a;
        chord_v.(!n_chords) <- b;
        incr n_chords;
        decr missing
      end
    end
  done;
  let deg = Array.make n 2 in
  for i = 0 to !n_chords - 1 do
    deg.(chord_u.(i)) <- deg.(chord_u.(i)) + 1;
    deg.(chord_v.(i)) <- deg.(chord_v.(i)) + 1
  done;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + deg.(u)
  done;
  let nbrs = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  let push u v =
    nbrs.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1
  in
  for u = 0 to n - 1 do
    push u ((u + n - 1) mod n);
    push u ((u + 1) mod n)
  done;
  for i = 0 to !n_chords - 1 do
    push chord_u.(i) chord_v.(i);
    push chord_v.(i) chord_u.(i)
  done;
  for u = 0 to n - 1 do
    sort_row nbrs offsets.(u) offsets.(u + 1)
  done;
  { n; offsets; nbrs }

let of_graph g =
  let n = Graph.n g in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + Graph.degree g u
  done;
  let nbrs = Array.make offsets.(n) 0 in
  for u = 0 to n - 1 do
    Array.blit (Graph.neighbors g u) 0 nbrs offsets.(u) (Graph.degree g u)
  done;
  { n; offsets; nbrs }

let to_graph t =
  let edges = ref [] in
  for u = 0 to t.n - 1 do
    for i = t.offsets.(u) to t.offsets.(u + 1) - 1 do
      let v = t.nbrs.(i) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n:t.n ~edges:!edges

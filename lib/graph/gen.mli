(** Graph generators.

    All generators return connected simple graphs (the model assumes
    connected networks).  Randomized generators take an explicit
    [Random.State.t] so every experiment is reproducible from its seed. *)

val ring : int -> Graph.t
(** Cycle C_n, n ≥ 3. *)

val path : int -> Graph.t
(** Path P_n, n ≥ 1. *)

val star : int -> Graph.t
(** Star with one center (process 0) and [n-1] leaves, n ≥ 2. *)

val complete : int -> Graph.t
(** Clique K_n, n ≥ 1. *)

val complete_bipartite : int -> int -> Graph.t
(** K_{a,b}: processes [0..a-1] on one side, [a..a+b-1] on the other. *)

val grid : int -> int -> Graph.t
(** [grid w h]: w×h king-free grid (4-neighborhood), w·h processes. *)

val torus : int -> int -> Graph.t
(** [torus w h]: grid with wrap-around edges; requires w ≥ 3 and h ≥ 3 to
    stay simple. *)

val hypercube : int -> Graph.t
(** [hypercube d]: the d-dimensional hypercube Q_d (2^d processes), d ≥ 1. *)

val binary_tree : int -> Graph.t
(** Complete binary tree layout on [n] processes (heap indexing), n ≥ 1. *)

val wheel : int -> Graph.t
(** Wheel W_n: a cycle on [n-1] processes plus a hub (process 0), n ≥ 4. *)

val lollipop : int -> int -> Graph.t
(** [lollipop k p]: a clique K_k attached to a path of [p] extra processes.
    High-diameter, high-degree mix; a classic stress topology. *)

val caterpillar : int -> int -> Graph.t
(** [caterpillar spine legs]: a path of [spine] processes, each carrying
    [legs] pendant leaves. *)

val random_tree : Random.State.t -> int -> Graph.t
(** Uniform-ish random tree: each process [i > 0] attaches to a uniformly
    random earlier process (random recursive tree). *)

val erdos_renyi : Random.State.t -> int -> float -> Graph.t
(** [erdos_renyi rng n p]: G(n,p) conditioned on connectivity — a random
    spanning tree is added first so the result is always connected; each
    remaining pair is an edge with probability [p]. *)

val random_connected : Random.State.t -> int -> int -> Graph.t
(** [random_connected rng n m]: connected graph with exactly [m] edges,
    [n-1 ≤ m ≤ n(n-1)/2]: random spanning tree plus [m-n+1] distinct random
    chords. *)

val random_regular_ish : Random.State.t -> int -> int -> Graph.t
(** [random_regular_ish rng n k]: connected graph where every process has
    degree ≥ min(k, n-1) and close to k on average (ring + random chords;
    not exactly regular). *)

val all_connected : ?up_to_iso:bool -> int -> Graph.t list
(** [all_connected n] enumerates {e every} connected simple graph on [n]
    processes, by default one representative per isomorphism class
    ([up_to_iso = false] keeps all labeled graphs).  Counts per class:
    1, 1, 2, 6, 21 for n = 1..5.  Meant for exhaustive small-model
    verification; n is capped at 6 (the enumeration is factorial). *)

(** Compressed-sparse-row adjacency for the flat data-path engine.

    A {!t} stores the whole network in two int arrays: [offsets] (length
    [n+1]) and [nbrs] (length [2m]); the neighbors of process [u] are
    [nbrs.(offsets.(u)) .. nbrs.(offsets.(u+1) - 1)], sorted in increasing
    order — the same local-label convention as {!Graph.neighbors}, without
    one boxed array per process.  The streaming generators below build the
    CSR form directly (degree counting pass, then fill), so a million-node
    ring never materializes a per-node adjacency list or an edge list. *)

type t = private {
  n : int;  (** number of processes *)
  offsets : int array;  (** length [n+1]; [offsets.(0) = 0] *)
  nbrs : int array;  (** length [offsets.(n)]; each row sorted *)
}

exception Invalid_csr of string

val n : t -> int
val m : t -> int
(** Number of undirected edges ([Array.length nbrs / 2]). *)

val degree : t -> int -> int
val max_degree : t -> int

val iter_nbrs : t -> int -> (int -> unit) -> unit
(** Iterate [u]'s neighbors in increasing order, no allocation. *)

val make : n:int -> offsets:int array -> nbrs:int array -> t
(** Validates shape: monotone offsets, sorted rows, symmetry, no
    self-loops or duplicates.  O(n + m log Δ).
    @raise Invalid_csr when the invariant fails. *)

(** {1 Streaming generators}

    Peak auxiliary memory is O(1) for [ring]/[torus] beyond the CSR arrays
    themselves; [random_regular_ish] keeps a flat edge buffer plus a
    dedup table (O(m)), never per-node lists. *)

val ring : int -> t
(** Cycle C_n, n ≥ 3; same numbering as {!Gen.ring}. *)

val torus : int -> int -> t
(** [torus w h], w,h ≥ 3; same numbering as {!Gen.torus}
    (process [y*w + x]). *)

val random_regular_ish : Random.State.t -> int -> int -> t
(** Ring backbone plus random chords up to average degree ≈ k.  Consumes
    the RNG exactly like {!Gen.random_regular_ish}, so for equal seeds
    [to_graph (random_regular_ish rng n k)] equals the materialized
    generator's output edge-for-edge. *)

(** {1 Conversions} *)

val of_graph : Graph.t -> t
(** O(n + m); reuses the graph's sorted rows. *)

val to_graph : t -> Graph.t
(** Materializes a {!Graph.t} (allocates an edge list) — for tests and
    small-n cross-checks only. *)

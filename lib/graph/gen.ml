let fail fmt = Format.kasprintf invalid_arg fmt

let ring n =
  if n < 3 then fail "ring: need n >= 3, got %d" n;
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  Graph.make ~n ~edges

let path n =
  if n < 1 then fail "path: need n >= 1, got %d" n;
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  Graph.make ~n ~edges

let star n =
  if n < 2 then fail "star: need n >= 2, got %d" n;
  let edges = List.init (n - 1) (fun i -> (0, i + 1)) in
  Graph.make ~n ~edges

let complete n =
  if n < 1 then fail "complete: need n >= 1, got %d" n;
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n ~edges:!edges

let complete_bipartite a b =
  if a < 1 || b < 1 then fail "complete_bipartite: need a,b >= 1";
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n:(a + b) ~edges:!edges

let grid w h =
  if w < 1 || h < 1 then fail "grid: need w,h >= 1";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then edges := (id x y, id (x + 1) y) :: !edges;
      if y + 1 < h then edges := (id x y, id x (y + 1)) :: !edges
    done
  done;
  Graph.make ~n:(w * h) ~edges:!edges

let torus w h =
  if w < 3 || h < 3 then fail "torus: need w,h >= 3 to stay simple";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      edges := (id x y, id ((x + 1) mod w) y) :: !edges;
      edges := (id x y, id x ((y + 1) mod h)) :: !edges
    done
  done;
  Graph.make ~n:(w * h) ~edges:!edges

let hypercube d =
  if d < 1 then fail "hypercube: need d >= 1, got %d" d;
  let n = 1 lsl d in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let v = u lxor (1 lsl bit) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n ~edges:!edges

let binary_tree n =
  if n < 1 then fail "binary_tree: need n >= 1, got %d" n;
  let edges = List.init (n - 1) (fun i -> (i + 1, i / 2)) in
  Graph.make ~n ~edges

let wheel n =
  if n < 4 then fail "wheel: need n >= 4, got %d" n;
  let rim = n - 1 in
  let spokes = List.init rim (fun i -> (0, i + 1)) in
  let cycle = List.init rim (fun i -> (1 + i, 1 + ((i + 1) mod rim))) in
  Graph.make ~n ~edges:(spokes @ cycle)

let lollipop k p =
  if k < 3 then fail "lollipop: need clique size >= 3, got %d" k;
  if p < 1 then fail "lollipop: need path length >= 1, got %d" p;
  let edges = ref [] in
  for u = 0 to k - 1 do
    for v = u + 1 to k - 1 do
      edges := (u, v) :: !edges
    done
  done;
  (* Path hangs off process [k-1]. *)
  for i = 0 to p - 1 do
    let prev = if i = 0 then k - 1 else k + i - 1 in
    edges := (prev, k + i) :: !edges
  done;
  Graph.make ~n:(k + p) ~edges:!edges

let caterpillar spine legs =
  if spine < 1 then fail "caterpillar: need spine >= 1";
  if legs < 0 then fail "caterpillar: need legs >= 0";
  let edges = ref [] in
  for i = 0 to spine - 2 do
    edges := (i, i + 1) :: !edges
  done;
  for i = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      edges := (i, spine + (i * legs) + l) :: !edges
    done
  done;
  Graph.make ~n:(spine + (spine * legs)) ~edges:!edges

let random_tree rng n =
  if n < 1 then fail "random_tree: need n >= 1, got %d" n;
  let edges = List.init (n - 1) (fun i -> (i + 1, Random.State.int rng (i + 1))) in
  Graph.make ~n ~edges

(* A uniformly random spanning tree backbone keeps every randomized
   generator connected without rejection sampling. *)
let random_spanning_tree_edges rng n =
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  List.init (n - 1) (fun i ->
      let u = order.(i + 1) and v = order.(Random.State.int rng (i + 1)) in
      (u, v))

let erdos_renyi rng n p =
  if n < 1 then fail "erdos_renyi: need n >= 1, got %d" n;
  if p < 0.0 || p > 1.0 then fail "erdos_renyi: need 0 <= p <= 1";
  let tree = random_spanning_tree_edges rng n in
  let present = Hashtbl.create (4 * n) in
  List.iter (fun (u, v) -> Hashtbl.replace present (min u v, max u v) ()) tree;
  let extra = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if (not (Hashtbl.mem present (u, v))) && Random.State.float rng 1.0 < p
      then extra := (u, v) :: !extra
    done
  done;
  Graph.make ~n ~edges:(tree @ !extra)

let random_connected rng n m =
  if n < 1 then fail "random_connected: need n >= 1, got %d" n;
  let max_m = n * (n - 1) / 2 in
  if m < n - 1 || m > max_m then
    fail "random_connected: need %d <= m <= %d, got %d" (n - 1) max_m m;
  let tree = random_spanning_tree_edges rng n in
  let present = Hashtbl.create (4 * n) in
  List.iter (fun (u, v) -> Hashtbl.replace present (min u v, max u v) ()) tree;
  let extra = ref [] in
  let missing = ref (m - (n - 1)) in
  while !missing > 0 do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem present key) then begin
        Hashtbl.replace present key ();
        extra := key :: !extra;
        decr missing
      end
    end
  done;
  Graph.make ~n ~edges:(tree @ !extra)

let random_regular_ish rng n k =
  if n < 3 then fail "random_regular_ish: need n >= 3, got %d" n;
  if k < 2 then fail "random_regular_ish: need k >= 2, got %d" k;
  let k = min k (n - 1) in
  let target_m = min (n * k / 2) (n * (n - 1) / 2) in
  let present = Hashtbl.create (4 * n) in
  let edges = ref [] in
  (* Ring backbone gives connectivity and minimum degree 2. *)
  for i = 0 to n - 1 do
    let key = (min i ((i + 1) mod n), max i ((i + 1) mod n)) in
    Hashtbl.replace present key ();
    edges := key :: !edges
  done;
  let missing = ref (max 0 (target_m - n)) in
  let attempts = ref (20 * n * k) in
  while !missing > 0 && !attempts > 0 do
    decr attempts;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem present key) then begin
        Hashtbl.replace present key ();
        edges := key :: !edges;
        decr missing
      end
    end
  done;
  Graph.make ~n ~edges:!edges

(* ---------------- exhaustive enumeration of small graphs ---------------- *)

(* Edge masks: pair (i, j), i < j, occupies bit [pair_bit n i j] of an int.
   With n <= 7 the mask fits comfortably (21 bits). *)
let pair_bit n i j =
  let rec row_base acc r = if r = i then acc else row_base (acc + n - 1 - r) (r + 1) in
  row_base 0 0 + (j - i - 1)

let mask_connected n mask =
  if n = 1 then true
  else begin
    let adj = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if mask land (1 lsl pair_bit n i j) <> 0 then begin
          adj.(i) <- adj.(i) lor (1 lsl j);
          adj.(j) <- adj.(j) lor (1 lsl i)
        end
      done
    done;
    let seen = ref 1 in
    let frontier = ref 1 in
    while !frontier <> 0 do
      let next = ref 0 in
      for u = 0 to n - 1 do
        if !frontier land (1 lsl u) <> 0 then next := !next lor adj.(u)
      done;
      frontier := !next land lnot !seen;
      seen := !seen lor !next
    done;
    !seen = (1 lsl n) - 1
  end

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l

(* Canonical representative of the isomorphism class: the smallest edge mask
   over all vertex relabelings (n! <= 720 for the sizes this is meant for). *)
let canonical_mask n mask =
  let perms = permutations (List.init n Fun.id) in
  List.fold_left
    (fun best perm ->
      let p = Array.of_list perm in
      let m = ref 0 in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if mask land (1 lsl pair_bit n i j) <> 0 then begin
            let a = min p.(i) p.(j) and b = max p.(i) p.(j) in
            m := !m lor (1 lsl pair_bit n a b)
          end
        done
      done;
      min best !m)
    max_int perms

let graph_of_mask n mask =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if mask land (1 lsl pair_bit n i j) <> 0 then edges := (i, j) :: !edges
    done
  done;
  Graph.make ~n ~edges:!edges

let all_connected ?(up_to_iso = true) n =
  if n < 1 then fail "all_connected: need n >= 1, got %d" n;
  if n > 6 then fail "all_connected: n = %d is too large (max 6)" n;
  let bits = n * (n - 1) / 2 in
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  for mask = 0 to (1 lsl bits) - 1 do
    if mask_connected n mask then
      if up_to_iso then begin
        let c = canonical_mask n mask in
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.replace seen c ();
          acc := c :: !acc
        end
      end
      else acc := mask :: !acc
  done;
  List.rev_map (graph_of_mask n) !acc

(** Symbolic rule IR — an executable first-order spec of a rule set.

    A {!rule} is a guard formula and a set of field assignments over a
    tiny first-order language: integer / boolean / enum terms built from
    the process's own fields, a bound neighbor's fields, symbolic
    parameters (e.g. the unison period [K]) and [forall]/[exists]
    quantification over the open neighborhood.  Registry algorithms
    optionally attach an IR alongside their OCaml rules; it serves two
    masters:

    - {b differential validation} ({!check}): the IR is evaluated on
      concrete views and must agree with the OCaml rules on the enabled
      set and the post-state — over strided per-process view spaces
      ({!differential_views}, in the spirit of {!Footprint}'s probing) and
      over engine-style executions under every registered daemon
      ({!differential_daemons}).  A lying IR is an executable-spec bug and
      is reported like any other finding;
    - {b SMT export} ({!Obligation}): because the IR is first-order, the
      same rules compile to SMT-LIB over a {e symbolic} node sort, turning
      bounded-n verdicts into unbounded-n proof obligations.

    The language is deliberately small: linear integer arithmetic,
    if-then-else, comparisons and neighborhood quantifiers — everything
    the paper's algorithms need and nothing a solver chokes on.
    Modular arithmetic is expressed with {!term-Ite} (e.g. the unison
    increment [(c+1) mod K] is [Ite (Eq (c, K-1), 0, c+1)], exact on the
    declared range). *)

type ty =
  | TInt
  | TBool
  | TEnum of string * string list
      (** sort name and constructors, e.g. [TEnum ("Status", ["C"; "RB"; "RF"])] *)

type site =
  | Self  (** the process's own state *)
  | Nbr  (** the innermost quantifier-bound neighbor *)

type term =
  | Num of int
  | Bool of bool  (** boolean literal, for [TBool] fields *)
  | Param of string  (** symbolic parameter, e.g. ["K"] *)
  | Var of site * string  (** field value at a site *)
  | Add of term * term
  | Sub of term * term
  | Neg of term
  | Ite of form * term * term
  | Ctor of string  (** enum constructor *)
  | Min_nbr of form * term * term
      (** [Min_nbr (filter, body, default)]: the minimum of [body] over
          the neighbors satisfying [filter] ([Var (Nbr, _)] is bound in
          both), or [default] (evaluated outside the binder) when no
          neighbor qualifies.  Needed for SDR-RB's
          [d := 1 + min {d(v) | v ∈ N(u), status v = RB}]. *)
  | Mex_nbr of form * term
      (** [Mex_nbr (filter, body)]: the least [c >= 0] such that no
          neighbor satisfying [filter] has [body = c] — Grundy coloring's
          minimum excludant.  Always [<= deg], since at most [deg]
          neighbors qualify. *)
  | Count_nbr of form
      (** Number of neighbors satisfying the filter; [Count_nbr (Const
          true)] is the degree.  Needed for the alliance score
          thresholds. *)

and form =
  | Const of bool
  | Not of form
  | And of form list
  | Or of form list
  | Imp of form * form
  | Eq of term * term
  | Le of term * term
  | Lt of term * term
  | Forall_nbr of form
      (** over the open neighborhood; inside, [Var (Nbr, f)] is the bound
          neighbor's field.  Quantifiers may nest but [Nbr] always refers
          to the innermost binder. *)
  | Exists_nbr of form

type assign = string * term
(** [field := term], evaluated in the pre-state; unassigned fields keep
    their value. *)

type rule = {
  rule : string;  (** must equal the OCaml rule's [rule_name] *)
  guard : form;
  assigns : assign list;
}

type param = {
  pname : string;
  lower : int option;  (** emitted as the axiom [pname >= lower] *)
}

type ir = {
  ir_name : string;
  fields : (string * ty) list;
  params : param list;
  ranges : (string * term * term) list;
      (** [field, lo, hi]: every state satisfies [lo <= field < hi]; the
          bounds are closed terms over params.  Asserted on pre-states of
          configuration-level obligations, validated against the concrete
          seed domains by the differential, and re-established per rule by
          the emitted range-preservation obligations. *)
  rules : rule list;
}

(** {2 Specs — predicates beyond the rules}

    The obligations of {!Obligation} need more than the transition
    relation: the legitimacy predicate (closure), a potential certificate
    (convergence) and the §3.5 reset/checkability interface of an SDR
    input layer. *)

type cert_spec = {
  cs_name : string;
  cs_rules : string list;  (** covered rules, as in {!Cert.t} *)
  cs_local : term;
      (** per-process contribution to the global potential [Σ_u local(u)];
          must read only [Self] fields, so a covered move changes exactly
          the mover's contribution. *)
}

type rank_spec = {
  rk_name : string;
  rk_rules : string list;
      (** covered rules: every one must strictly decrease the rank *)
  rk_components : term list;
      (** per-process lexicographic rank tuple, most significant first.
          Each component reads only [Self] fields, is bounded below by 0
          on every reachable state, and a covered move strictly decreases
          the mover's tuple while leaving every other process's tuple
          untouched — the implicit-rankings recipe for a global
          well-founded measure over an unbounded node sort. *)
}

type spec = {
  sp_ir : ir;
  sp_legitimate : form option;
      (** view-level; a configuration is legitimate iff the form holds at
          every process *)
  sp_p_icorrect : form option;  (** local checkability (view-level) *)
  sp_p_reset : form option;  (** reads [Self] fields only *)
  sp_reset : assign list option;  (** the [reset] macro *)
  sp_cert : cert_spec option;
  sp_rank : rank_spec option;
      (** global-ranking convergence claim, validated concretely by the
          differential (["rank"] mismatches) and exported as rank-*
          obligations by {!Obligation}. *)
}

val spec_of_ir : ir -> spec
(** All optional predicates absent. *)

(** {2 Values and evaluation} *)

type value = VInt of int | VBool of bool | VEnum of string

val value_equal : value -> value -> bool
val pp_value : value Fmt.t

exception Ill_formed of string
(** Raised by evaluation on scoping or typing errors ([Nbr] outside a
    quantifier, unknown field or parameter, boolean where an integer is
    expected). *)

val eval_form :
  params:(string * int) list ->
  self:(string * value) list ->
  nbrs:(string * value) list array ->
  form ->
  bool

val eval_rule_enabled :
  params:(string * int) list ->
  self:(string * value) list ->
  nbrs:(string * value) list array ->
  rule ->
  bool

val eval_rule_apply :
  params:(string * int) list ->
  fields:(string * ty) list ->
  self:(string * value) list ->
  nbrs:(string * value) list array ->
  rule ->
  (string * value) list
(** Post-valuation of the mover: assigned fields from their terms (in the
    pre-state), unassigned fields unchanged; result in [fields] order. *)

val subst_self_term : assign list -> term -> term
(** Term-level {!subst_self}. *)

val subst_self : assign list -> form -> form
(** Replace every [Var (Self, f)] assigned by the list with its term —
    the post-state predicate of a single mover whose neighbors are
    unchanged.  Assignment terms are pre-state terms, so the substitution
    is exact (no capture: [Self] terms contain no binders to collide
    with). *)

val well_formed : ir -> string list
(** Static scoping lint, [[]] = clean: every [Var]/[Param]/assign target
    refers to a declared field or parameter, [Nbr] occurs only under a
    neighborhood quantifier, rule names are unique, range bounds are
    closed (no fields). *)

(** {2 Instances and differential validation} *)

module type INSTANCE = sig
  type state

  val spec : spec
  val param_values : (string * int) list
  val algorithm : state Ssreset_sim.Algorithm.t
  val graph : Ssreset_graph.Graph.t
  val domain : int -> state list
  val encode : state -> (string * value) list
  val is_legitimate : (state array -> bool) option
end

type instance = (module INSTANCE)

val make_instance :
  spec:spec ->
  params:(string * int) list ->
  algorithm:'s Ssreset_sim.Algorithm.t ->
  graph:Ssreset_graph.Graph.t ->
  domain:(int -> 's list) ->
  encode:('s -> (string * value) list) ->
  ?is_legitimate:('s array -> bool) ->
  unit ->
  instance

type mismatch = {
  where : string;  (** e.g. ["view u=2"] or ["daemon synchronous"] *)
  rules : string list;
  detail : string;  (** first witness, human-readable *)
  count : int;
}

type diff = {
  views : int;  (** probed views *)
  steps : int;  (** executed engine-style steps *)
  daemons : int;  (** daemons driven *)
  mismatches : mismatch list;  (** [[]] = the IR agrees everywhere *)
}

val diff_ok : diff -> bool
val merge_diffs : diff list -> diff
val pp_mismatch : mismatch Fmt.t

val differential_views :
  ?max_views_per_process:int -> instance -> diff
(** Strided sweep of each process's view space (own domain × neighbor
    domains, default cap 2000 views per process, as {!Lint}): per rule,
    the OCaml guard and the IR guard must agree on every probed view, and
    on enabled views the OCaml action must equal the IR assignment
    application.  Also validates the static {!well_formed} lint, the
    rule-name alignment, and that every seed-domain state satisfies the
    declared {!ir.ranges}. *)

val differential_daemons :
  ?max_steps:int -> ?seeds:int list -> instance -> diff
(** Drive the instance from random seed configurations under {e every}
    registered daemon ({!Ssreset_sim.Daemon.registry}), cross-checking at
    each step the enabled set (process and rule name), each mover's
    post-state, and — when both the spec and the instance carry a
    legitimacy predicate — the view-level legitimate form against the
    concrete configuration predicate. *)

val check :
  ?max_views_per_process:int -> ?max_steps:int -> instance -> diff
(** {!differential_views} + {!differential_daemons}, merged. *)

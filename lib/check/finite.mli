(** Finitely-enumerable algorithm instances.

    The bounded model checker ({!Model}) and the rule linter ({!Lint}) both
    need the same data: an algorithm, a concrete graph, and — per process —
    the finite set of states the adversary may initialize it with.  Self-
    stabilization quantifies over {e all} initial configurations, so the
    checker seeds its exploration with the full product of these domains and
    then closes it under transitions (actions may leave the seed domain —
    SDR's distance variable grows during broadcasts; the closure stays
    finite whenever the algorithm has no unbounded counter).

    A first-class {!FINITE} value keeps the state type existential: the
    checker never needs to name it. *)

module type FINITE = sig
  type state

  val name : string
  (** Instance name, e.g. ["min-unison[K=17]"]. *)

  val algorithm : state Ssreset_sim.Algorithm.t
  val graph : Ssreset_graph.Graph.t

  val domain : int -> state list
  (** [domain u] is the seed state domain of process [u] — every state the
      adversary may place there initially.  Must be non-empty and free of
      duplicates (under [algorithm.equal]). *)

  val is_legitimate : state array -> bool
  (** The specification's legitimate-configuration predicate (for silent
      algorithms this may simply be "the configuration is terminal"). *)

  val terminal_ok : state array -> bool
  (** Output validity of a terminal configuration — e.g. "the coloring is
      proper", "the alliance is 1-minimal".  Only evaluated on terminal
      configurations. *)

  val certificate : state Cert.t option
  (** Optional potential-function certificate, checked by {!Model} on every
      explored illegitimate transition within its rule scope. *)
end

type t = (module FINITE)

val make :
  name:string ->
  algorithm:'s Ssreset_sim.Algorithm.t ->
  graph:Ssreset_graph.Graph.t ->
  domain:(int -> 's list) ->
  legitimate:(Ssreset_graph.Graph.t -> 's array -> bool) ->
  ?terminal_ok:(Ssreset_graph.Graph.t -> 's array -> bool) ->
  ?certificate:'s Cert.t ->
  unit ->
  t
(** Pack an instance.  [terminal_ok] defaults to [legitimate]; [certificate]
    defaults to none. *)

val sdr_domain :
  inner:(int -> 'i list) -> max_d:int -> int -> 'i Ssreset_core.Sdr.state list
(** Seed domain of a composed [I ∘ SDR] process: the product of SDR status
    {C, RB, RF}, distance [0..max_d], and the inner domain.  [max_d = n] is
    a sensible seed bound — larger distances are reached by closure if the
    dynamics produce them. *)

val seed_count : t -> int
(** Product of the domain sizes over all processes — the number of seed
    configurations the model checker will enumerate (before closure). *)

module Algorithm = Ssreset_sim.Algorithm
module Sdr = Ssreset_core.Sdr

let livelock graph =
  let flip =
    { Algorithm.rule_name = "T-flip";
      guard = (fun _ -> true);
      action = (fun v -> 1 - v.Algorithm.state) }
  in
  let algorithm =
    { Algorithm.name = "toy-livelock";
      rules = [ flip ];
      equal = Int.equal;
      pp = Fmt.int }
  in
  Finite.make ~name:"toy-livelock" ~algorithm ~graph
    ~domain:(fun _ -> [ 0; 1 ])
    ~legitimate:(fun _ cfg -> Array.for_all (fun s -> s = cfg.(0)) cfg)
    ()

let overlap graph =
  let up =
    { Algorithm.rule_name = "T-up";
      guard = (fun v -> v.Algorithm.state = 0);
      action = (fun _ -> 1) }
  and jump =
    { Algorithm.rule_name = "T-jump";
      guard = (fun v -> v.Algorithm.state = 0);
      action = (fun _ -> 2) }
  and noop =
    { Algorithm.rule_name = "T-noop";
      guard = (fun v -> v.Algorithm.state = 2);
      action = (fun _ -> 2) }
  in
  let algorithm =
    { Algorithm.name = "toy-overlap";
      rules = [ up; jump; noop ];
      equal = Int.equal;
      pp = Fmt.int }
  in
  Finite.make ~name:"toy-overlap" ~algorithm ~graph
    ~domain:(fun _ -> [ 0; 1; 2 ])
    ~legitimate:(fun _ cfg -> Array.for_all (fun s -> s = 1) cfg)
    ()

(* A composed-shaped algorithm whose single "input" rule writes the SDR
   distance variable alongside its own layer — exactly the non-interference
   breach Requirement 3 forbids.  Everything else is clean by design
   (guards gated by P_Clean, all configurations legitimate, each process
   pokes at most once), so only the footprint pass can flag it. *)

let interference_p_clean (v : int Sdr.state Algorithm.view) =
  Sdr.status_equal v.Algorithm.state.Sdr.st Sdr.C
  && Array.for_all (fun s -> Sdr.status_equal s.Sdr.st Sdr.C) v.Algorithm.nbrs

let interference_algorithm =
  let poke =
    { Algorithm.rule_name = "TI-poke";
      guard =
        (fun v -> interference_p_clean v && v.Algorithm.state.Sdr.inner = 0);
      action =
        (fun v ->
          { v.Algorithm.state with
            Sdr.d = v.Algorithm.state.Sdr.d + 1;
            inner = 1 }) }
  in
  { Algorithm.name = "toy-interference";
    rules = [ poke ];
    equal =
      (fun a b ->
        Sdr.status_equal a.Sdr.st b.Sdr.st
        && a.Sdr.d = b.Sdr.d
        && a.Sdr.inner = b.Sdr.inner);
    pp =
      (fun ppf s ->
        Fmt.pf ppf "%a/%d/%d" Sdr.pp_status s.Sdr.st s.Sdr.d s.Sdr.inner) }

let interference_domain _ =
  List.concat_map
    (fun d -> List.map (fun i -> { Sdr.st = Sdr.C; d; inner = i }) [ 0; 1 ])
    [ 0; 1 ]

let interference graph =
  Finite.make ~name:"toy-interference" ~algorithm:interference_algorithm
    ~graph ~domain:interference_domain
    ~legitimate:(fun _ _ -> true)
    ()

module Interference_input = struct
  type state = int

  let name = "toy-interference-input"
  let equal = Int.equal
  let pp = Fmt.int
  let p_icorrect _ = true
  let p_reset i = i = 0
  let reset _ = 0
  let rules = []
end

let interference_footprint graph =
  Footprint.sdr_target
    (module Interference_input)
    ~name:"toy-interference" ~algorithm:interference_algorithm ~graph
    ~domain:interference_domain

(* A correct, trivially convergent counter whose attached symbolic IR
   lies about the guard: the OCaml rule fires while state < 2, the IR
   claims state < 1.  Lint, footprint and every enumerated verdict are
   clean — only the Sym differential pass can catch the executable spec
   disagreeing with the executable rules. *)

let badsym_rule =
  { Algorithm.rule_name = "T-up";
    guard = (fun v -> v.Algorithm.state < 2);
    action = (fun v -> v.Algorithm.state + 1) }

let badsym_algorithm =
  { Algorithm.name = "toy-badsym";
    rules = [ badsym_rule ];
    equal = Int.equal;
    pp = Fmt.int }

let badsym_legitimate _ cfg = Array.for_all (fun s -> s = 2) cfg

let badsym graph =
  Finite.make ~name:"toy-badsym" ~algorithm:badsym_algorithm ~graph
    ~domain:(fun _ -> [ 0; 1; 2 ])
    ~legitimate:badsym_legitimate ()

let badsym_spec =
  Sym.spec_of_ir
    { Sym.ir_name = "toy-badsym";
      fields = [ ("c", Sym.TInt) ];
      params = [];
      ranges = [ ("c", Sym.Num 0, Sym.Num 3) ];
      rules =
        [ { Sym.rule = "T-up";
            guard = Sym.Lt (Sym.Var (Sym.Self, "c"), Sym.Num 1);
            assigns = [ ("c", Sym.Add (Sym.Var (Sym.Self, "c"), Sym.Num 1)) ]
          } ] }

let badsym_sym graph =
  Sym.make_instance ~spec:badsym_spec ~params:[]
    ~algorithm:badsym_algorithm ~graph
    ~domain:(fun _ -> [ 0; 1; 2 ])
    ~encode:(fun c -> [ ("c", Sym.VInt c) ])
    ~is_legitimate:(badsym_legitimate graph) ()

(* A correct, strictly decreasing counter whose symbolic IR is exact but
   whose attached rank_spec lies: the component max(c, 0)·[c > 1] claims
   a strict decrease for every T-down move, yet the 1 → 0 move keeps the
   tuple at [0] — a stutter only the ranking differential (and, symbolically,
   the rank-decrease obligation) can flag.  Lint, model, footprint and the
   guard/post differential are all clean by construction. *)

let badrank_rule =
  { Algorithm.rule_name = "T-down";
    guard = (fun v -> v.Algorithm.state > 0);
    action = (fun v -> v.Algorithm.state - 1) }

let badrank_algorithm =
  { Algorithm.name = "toy-badrank";
    rules = [ badrank_rule ];
    equal = Int.equal;
    pp = Fmt.int }

let badrank_legitimate _ cfg = Array.for_all (fun s -> s = 0) cfg

let badrank graph =
  Finite.make ~name:"toy-badrank" ~algorithm:badrank_algorithm ~graph
    ~domain:(fun _ -> [ 0; 1; 2; 3 ])
    ~legitimate:badrank_legitimate ()

let badrank_spec =
  let c = Sym.Var (Sym.Self, "c") in
  { (Sym.spec_of_ir
       { Sym.ir_name = "toy-badrank";
         fields = [ ("c", Sym.TInt) ];
         params = [];
         ranges = [ ("c", Sym.Num 0, Sym.Num 4) ];
         rules =
           [ { Sym.rule = "T-down";
               guard = Sym.Lt (Sym.Num 0, c);
               assigns = [ ("c", Sym.Sub (c, Sym.Num 1)) ]
             } ] })
    with
    Sym.sp_rank =
      Some
        { Sym.rk_name = "stutter";
          rk_rules = [ "T-down" ];
          rk_components = [ Sym.Ite (Sym.Lt (Sym.Num 1, c), c, Sym.Num 0) ]
        } }

let badrank_sym graph =
  Sym.make_instance ~spec:badrank_spec ~params:[]
    ~algorithm:badrank_algorithm ~graph
    ~domain:(fun _ -> [ 0; 1; 2; 3 ])
    ~encode:(fun c -> [ ("c", Sym.VInt c) ])
    ~is_legitimate:(badrank_legitimate graph) ()

(* A correct, trivially convergent counter registered with an increasing
   "potential": lint and the enumerated model verdicts are clean, so only
   the certificate pass can flag the bogus measure. *)
let badcert graph =
  let up =
    { Algorithm.rule_name = "T-up";
      guard = (fun v -> v.Algorithm.state < 2);
      action = (fun v -> v.Algorithm.state + 1) }
  in
  let algorithm =
    { Algorithm.name = "toy-badcert";
      rules = [ up ];
      equal = Int.equal;
      pp = Fmt.int }
  in
  Finite.make ~name:"toy-badcert" ~algorithm ~graph
    ~domain:(fun _ -> [ 0; 1; 2 ])
    ~legitimate:(fun _ cfg -> Array.for_all (fun s -> s = 2) cfg)
    ~certificate:
      (Cert.make ~name:"bogus-up" (fun _ cfg -> [ Array.fold_left ( + ) 0 cfg ]))
    ()

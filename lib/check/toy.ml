module Algorithm = Ssreset_sim.Algorithm

let livelock graph =
  let flip =
    { Algorithm.rule_name = "T-flip";
      guard = (fun _ -> true);
      action = (fun v -> 1 - v.Algorithm.state) }
  in
  let algorithm =
    { Algorithm.name = "toy-livelock";
      rules = [ flip ];
      equal = Int.equal;
      pp = Fmt.int }
  in
  Finite.make ~name:"toy-livelock" ~algorithm ~graph
    ~domain:(fun _ -> [ 0; 1 ])
    ~legitimate:(fun _ cfg -> Array.for_all (fun s -> s = cfg.(0)) cfg)
    ()

let overlap graph =
  let up =
    { Algorithm.rule_name = "T-up";
      guard = (fun v -> v.Algorithm.state = 0);
      action = (fun _ -> 1) }
  and jump =
    { Algorithm.rule_name = "T-jump";
      guard = (fun v -> v.Algorithm.state = 0);
      action = (fun _ -> 2) }
  and noop =
    { Algorithm.rule_name = "T-noop";
      guard = (fun v -> v.Algorithm.state = 2);
      action = (fun _ -> 2) }
  in
  let algorithm =
    { Algorithm.name = "toy-overlap";
      rules = [ up; jump; noop ];
      equal = Int.equal;
      pp = Fmt.int }
  in
  Finite.make ~name:"toy-overlap" ~algorithm ~graph
    ~domain:(fun _ -> [ 0; 1; 2 ])
    ~legitimate:(fun _ cfg -> Array.for_all (fun s -> s = 1) cfg)
    ()

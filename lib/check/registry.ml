module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Algorithm = Ssreset_sim.Algorithm
module Sdr = Ssreset_core.Sdr
module Min_unison = Ssreset_unison.Min_unison
module Tail_unison = Ssreset_unison.Tail_unison
module Unison = Ssreset_unison.Unison
module Coloring = Ssreset_coloring.Coloring
module Mis = Ssreset_mis.Mis
module Matching = Ssreset_matching.Matching
module Fga = Ssreset_alliance.Fga
module Spec = Ssreset_alliance.Spec
module Checker = Ssreset_alliance.Checker

type entry = {
  name : string;
  description : string;
  expect_silent : bool;
  round_bound : (int -> int) option;
  min_n : int;
  max_n_quick : int;
  max_n_full : int;
  instance : Graph.t -> Finite.t;
  footprint : (Graph.t -> Footprint.target) option;
  sym : (Graph.t -> Sym.instance) option;
  smt_spec : Sym.spec option;
  comp_spec : Sym.spec option;
}

(* --- instances ------------------------------------------------------- *)

let never_terminal _ _ = false

(* Certificates are layer-scoped progress measures (see {!Cert}): each one
   provably strictly decreases on every step all of whose movers fired the
   covered rules, which is exactly what the model checker enforces. *)

let climb_debt rules =
  Cert.make ~name:"climb-debt" ~rules (fun _ cfg ->
      [ Array.fold_left (fun acc c -> acc + max 0 (-c)) 0 cfg ])

let min_unison g =
  let n = Graph.n g in
  let k = max 4 ((n * n) + 1) and alpha = max 1 (n - 2) in
  let module M = Min_unison.Make (struct
    let k = k
    let alpha = alpha
  end) in
  Finite.make
    ~name:(Printf.sprintf "min-unison[K=%d,a=%d]" k alpha)
    ~algorithm:M.algorithm ~graph:g
    ~domain:(fun _ -> List.init (k + alpha) (fun i -> i - alpha))
    ~legitimate:M.is_legitimate ~terminal_ok:never_terminal
    ~certificate:(climb_debt [ Min_unison.rule_climb ])
    ()

let tail_unison g =
  let n = Graph.n g in
  let k = max 4 ((2 * n) + 2) and alpha = max 1 n in
  let module T = Tail_unison.Make (struct
    let k = k
    let alpha = alpha
  end) in
  Finite.make
    ~name:(Printf.sprintf "tail-unison[K=%d,a=%d]" k alpha)
    ~algorithm:T.algorithm ~graph:g
    ~domain:(fun _ -> List.init (k + alpha) (fun i -> i - alpha))
    ~legitimate:T.is_legitimate ~terminal_ok:never_terminal
    ~certificate:(climb_debt [ Tail_unison.rule_climb ])
    ()

(* Σ over processes of the remaining wave obligations (RB = 2, RF = 1,
   C = 0): SDR-RF turns a 2 into a 1 and SDR-C a 1 into a 0 at the mover,
   touching nothing else — the paper's feedback-phase progress measure. *)
let wave_completion =
  Cert.make ~name:"wave-completion" ~rules:[ "SDR-RF"; "SDR-C" ]
    (fun _ cfg ->
      [ Array.fold_left
          (fun acc s ->
            acc + match s.Sdr.st with Sdr.RB -> 2 | Sdr.RF -> 1 | Sdr.C -> 0)
          0 cfg ])

(* Number of undecided inner states; the covered decision rules require the
   mover to be undecided and decide it. *)
let undecided_cert ~rules undecided =
  Cert.make ~name:"undecided" ~rules (fun _ cfg ->
      [ Array.fold_left
          (fun acc s -> acc + if undecided s.Sdr.inner then 1 else 0)
          0 cfg ])

(* --- symbolic rule IRs -------------------------------------------------

   First-order executable specs of the unison rule cores, attached
   alongside the OCaml rules.  {!run}'s differential pass checks them
   against the concrete algorithms view-by-view and under every daemon;
   {!Obligation.compile} turns the same IRs into unbounded-n SMT
   obligations.  The mod-K arithmetic is expressed with if-then-else
   ([({c}+1) mod K] is [ite (c = K-1) 0 (c+1)]), exact on the declared
   clock ranges. *)

let s_c = Sym.Var (Sym.Self, "c")
let s_b = Sym.Var (Sym.Nbr, "c")

let s_incmod t =
  Sym.Ite
    ( Sym.Eq (t, Sym.Sub (Sym.Param "K", Sym.Num 1)),
      Sym.Num 0,
      Sym.Add (t, Sym.Num 1) )

let s_decmod t =
  Sym.Ite
    ( Sym.Eq (t, Sym.Num 0),
      Sym.Sub (Sym.Param "K", Sym.Num 1),
      Sym.Sub (t, Sym.Num 1) )

(* P_Ok(u,v): v's clock is within one increment of u's (mod K). *)
let s_ring_ok =
  Sym.Or
    [ Sym.Eq (s_b, s_c); Sym.Eq (s_b, s_incmod s_c); Sym.Eq (s_b, s_decmod s_c) ]

(* P_Up(u): every neighbor is at u's value or one ahead. *)
let s_up = Sym.Or [ Sym.Eq (s_b, s_c); Sym.Eq (s_b, s_incmod s_c) ]

let tail_core_spec ~ir_name ~reset ~climb ~tick =
  let compatible =
    Sym.Or
      [ Sym.And [ Sym.Le (Sym.Num 0, s_b); s_ring_ok ];
        Sym.And [ Sym.Lt (s_b, Sym.Num 0); Sym.Le (s_c, Sym.Num 1) ] ]
  in
  let ir =
    { Sym.ir_name;
      fields = [ ("c", Sym.TInt) ];
      params =
        [ { Sym.pname = "K"; lower = Some 4 };
          { Sym.pname = "alpha"; lower = Some 1 } ];
      ranges = [ ("c", Sym.Neg (Sym.Param "alpha"), Sym.Param "K") ];
      rules =
        [ { Sym.rule = reset;
            guard =
              Sym.And
                [ Sym.Le (Sym.Num 0, s_c);
                  Sym.Exists_nbr (Sym.Not compatible) ];
            assigns = [ ("c", Sym.Neg (Sym.Param "alpha")) ] };
          { Sym.rule = climb;
            guard =
              Sym.And
                [ Sym.Lt (s_c, Sym.Num 0);
                  Sym.Forall_nbr (Sym.Le (s_c, s_b));
                  Sym.Or
                    [ Sym.Lt (s_c, Sym.Num (-1));
                      Sym.Forall_nbr (Sym.Le (s_b, Sym.Num 1)) ] ];
            assigns = [ ("c", Sym.Add (s_c, Sym.Num 1)) ] };
          { Sym.rule = tick;
            guard =
              Sym.And [ Sym.Le (Sym.Num 0, s_c); Sym.Forall_nbr s_up ];
            assigns = [ ("c", s_incmod s_c) ] } ] }
  in
  { (Sym.spec_of_ir ir) with
    Sym.sp_legitimate =
      Some (Sym.And [ Sym.Le (Sym.Num 0, s_c); Sym.Forall_nbr s_ring_ok ]);
    sp_cert =
      Some
        { Sym.cs_name = "climb-debt";
          cs_rules = [ climb ];
          cs_local = Sym.Ite (Sym.Lt (s_c, Sym.Num 0), Sym.Neg s_c, Sym.Num 0)
        };
    (* Same measure as the certificate, replayed through the global
       implicit-rankings pipeline: {!Obligation} additionally proves the
       multiset/lex step argument ([rank-step]) the pointwise
       cert-decrease obligations only sketch. *)
    sp_rank =
      Some
        { Sym.rk_name = "climb-debt";
          rk_rules = [ climb ];
          rk_components =
            [ Sym.Ite (Sym.Lt (s_c, Sym.Num 0), Sym.Neg s_c, Sym.Num 0) ] }
  }

let tail_unison_spec =
  tail_core_spec ~ir_name:"tail-unison" ~reset:Tail_unison.rule_reset
    ~climb:Tail_unison.rule_climb ~tick:Tail_unison.rule_tick

let min_unison_spec =
  tail_core_spec ~ir_name:"min-unison" ~reset:Min_unison.rule_zero
    ~climb:Min_unison.rule_climb ~tick:Min_unison.rule_tick

let encode_clock c = [ ("c", Sym.VInt c) ]

let tail_unison_sym g =
  let n = Graph.n g in
  let k = max 4 ((2 * n) + 2) and alpha = max 1 n in
  let module T = Tail_unison.Make (struct
    let k = k
    let alpha = alpha
  end) in
  Sym.make_instance ~spec:tail_unison_spec
    ~params:[ ("K", k); ("alpha", alpha) ]
    ~algorithm:T.algorithm ~graph:g
    ~domain:(fun _ -> List.init (k + alpha) (fun i -> i - alpha))
    ~encode:encode_clock
    ~is_legitimate:(T.is_legitimate g) ()

let min_unison_sym g =
  let n = Graph.n g in
  let k = max 4 ((n * n) + 1) and alpha = max 1 (n - 2) in
  let module M = Min_unison.Make (struct
    let k = k
    let alpha = alpha
  end) in
  Sym.make_instance ~spec:min_unison_spec
    ~params:[ ("K", k); ("alpha", alpha) ]
    ~algorithm:M.algorithm ~graph:g
    ~domain:(fun _ -> List.init (k + alpha) (fun i -> i - alpha))
    ~encode:encode_clock
    ~is_legitimate:(M.is_legitimate g) ()

(* The unison SDR input layer (Algorithm 2), with the full §3.5 reset
   interface: p_icorrect / p_reset / reset back the requirement
   obligations of {!Obligation}.  The differential validates the IR
   against the {e bare} input algorithm — the composed transformer's
   correctness on top of it is the model checker's job. *)
let unison_input_spec =
  let ir =
    { Sym.ir_name = "unison";
      fields = [ ("c", Sym.TInt) ];
      params = [ { Sym.pname = "K"; lower = Some 2 } ];
      ranges = [ ("c", Sym.Num 0, Sym.Param "K") ];
      rules =
        [ { Sym.rule = Unison.rule_inc;
            guard = Sym.Forall_nbr s_up;
            assigns = [ ("c", s_incmod s_c) ] } ] }
  in
  { (Sym.spec_of_ir ir) with
    Sym.sp_legitimate = Some (Sym.Forall_nbr s_ring_ok);
    sp_p_icorrect = Some (Sym.Forall_nbr s_ring_ok);
    sp_p_reset = Some (Sym.Eq (s_c, Sym.Num 0));
    sp_reset = Some [ ("c", Sym.Num 0) ] }

let unison_params g =
  let n = Graph.n g in
  let k = n + 2 in
  let clocks = List.init k Fun.id in
  (k, Finite.sdr_domain ~inner:(fun _ -> clocks) ~max_d:n)

let unison_sdr g =
  let k, domain = unison_params g in
  let module U = Unison.Make (struct
    let k = k
  end) in
  Finite.make
    ~name:(Printf.sprintf "unison-sdr[K=%d]" k)
    ~algorithm:U.Composed.algorithm ~graph:g ~domain
    ~legitimate:U.Composed.is_normal ~terminal_ok:never_terminal
    ~certificate:wave_completion ()

let unison_sym g =
  let k, _ = unison_params g in
  let module U = Unison.Make (struct
    let k = k
  end) in
  Sym.make_instance ~spec:unison_input_spec
    ~params:[ ("K", k) ]
    ~algorithm:U.bare ~graph:g
    ~domain:(fun _ -> List.init k Fun.id)
    ~encode:encode_clock
    ~is_legitimate:(fun cfg ->
      Algorithm.for_all_views g cfg ~f:(fun _ v -> U.Input.p_icorrect v))
    ()

(* --- the composed U∘SDR system as one symbolic IR ---------------------

   Unlike {!unison_input_spec} (the bare input layer), this spec describes
   the {e whole} transformed algorithm — SDR-RB/RF/C/R plus the lifted
   U-inc — with the SDR variables as explicit fields (st as an enum, d as
   an int).  It is the source of truth the flat data-path engine compiles
   to closures over unboxed arrays, and the flat-vs-classic differential
   validates it against [Sdr.Make]'s OCaml rules the same way {!Sym.check}
   does here.  SDR-RB's distance update needs the neighborhood minimum,
   hence {!Sym.Min_nbr}.  Attached to the unison-sdr entry as its
   [comp_spec]: {!Obligation.compile_composition} turns the wave rank
   below into the PADEC-style [comp.*] obligations (reset-layer rank
   decrease, input-layer rank silence), the solver-checkable half of the
   composed convergence argument. *)

let unison_sdr_composed_spec =
  let st_s = Sym.Var (Sym.Self, "st") and st_b = Sym.Var (Sym.Nbr, "st") in
  let d_s = Sym.Var (Sym.Self, "d") and d_b = Sym.Var (Sym.Nbr, "d") in
  let c_C = Sym.Ctor "C" and c_RB = Sym.Ctor "RB" and c_RF = Sym.Ctor "RF" in
  let reset_s = Sym.Eq (s_c, Sym.Num 0) in
  let reset_b = Sym.Eq (s_b, Sym.Num 0) in
  let p_rb = Sym.And [ Sym.Eq (st_s, c_C); Sym.Exists_nbr (Sym.Eq (st_b, c_RB)) ] in
  let p_rf =
    Sym.And
      [ Sym.Eq (st_s, c_RB);
        reset_s;
        Sym.Forall_nbr
          (Sym.Or
             [ Sym.And [ Sym.Eq (st_b, c_RB); Sym.Le (d_b, d_s) ];
               Sym.And [ Sym.Eq (st_b, c_RF); reset_b ] ]) ]
  in
  (* ok(s) of P_C, sited at self and at the bound neighbor. *)
  let ok_self =
    Sym.And
      [ reset_s;
        Sym.Or [ Sym.And [ Sym.Eq (st_s, c_RF); Sym.Le (d_s, d_s) ];
                 Sym.Eq (st_s, c_C) ] ]
  in
  let ok_nbr =
    Sym.And
      [ reset_b;
        Sym.Or [ Sym.And [ Sym.Eq (st_b, c_RF); Sym.Le (d_s, d_b) ];
                 Sym.Eq (st_b, c_C) ] ]
  in
  let p_c = Sym.And [ Sym.Eq (st_s, c_RF); ok_self; Sym.Forall_nbr ok_nbr ] in
  let p_r1 =
    Sym.And
      [ Sym.Eq (st_s, c_C); Sym.Not reset_s;
        Sym.Exists_nbr (Sym.Eq (st_b, c_RF)) ]
  in
  let p_r2 = Sym.And [ Sym.Not (Sym.Eq (st_s, c_C)); Sym.Not reset_s ] in
  let p_icorrect = Sym.Forall_nbr s_ring_ok in
  let p_correct = Sym.Or [ Sym.Not (Sym.Eq (st_s, c_C)); p_icorrect ] in
  let p_up = Sym.And [ Sym.Not p_rb; Sym.Or [ p_r1; p_r2; Sym.Not p_correct ] ] in
  let p_clean =
    Sym.And [ Sym.Eq (st_s, c_C); Sym.Forall_nbr (Sym.Eq (st_b, c_C)) ]
  in
  let ir =
    { Sym.ir_name = "unison-sdr-composed";
      fields =
        [ ("st", Sym.TEnum ("Status", [ "C"; "RB"; "RF" ]));
          ("d", Sym.TInt);
          ("c", Sym.TInt) ];
      params =
        [ { Sym.pname = "K"; lower = Some 2 };
          { Sym.pname = "MaxD"; lower = Some 0 } ];
      ranges =
        [ ("c", Sym.Num 0, Sym.Param "K");
          ("d", Sym.Num 0, Sym.Add (Sym.Param "MaxD", Sym.Num 1)) ];
      rules =
        [ { Sym.rule = "SDR-RB";
            guard = p_rb;
            assigns =
              [ ("st", c_RB);
                (* default unreachable: P_RB guarantees an RB neighbor *)
                ("d",
                 Sym.Add
                   ( Sym.Min_nbr (Sym.Eq (st_b, c_RB), d_b, Sym.Num 0),
                     Sym.Num 1 ));
                ("c", Sym.Num 0) ] };
          { Sym.rule = "SDR-RF"; guard = p_rf; assigns = [ ("st", c_RF) ] };
          { Sym.rule = "SDR-C"; guard = p_c; assigns = [ ("st", c_C) ] };
          { Sym.rule = "SDR-R";
            guard = p_up;
            assigns = [ ("st", c_RB); ("d", Sym.Num 0); ("c", Sym.Num 0) ] };
          { Sym.rule = Unison.rule_inc;
            guard = Sym.And [ p_clean; Sym.Forall_nbr s_up ];
            assigns = [ ("c", s_incmod s_c) ] } ] }
  in
  { (Sym.spec_of_ir ir) with
    Sym.sp_legitimate = Some (Sym.And [ p_clean; p_icorrect ]);
    (* The symbolic twin of {!wave_completion}: RB = 2, RF = 1, C = 0 at
       each process.  SDR-RF and SDR-C strictly decrease the mover's
       component; U-inc writes only [c], so it is rank-silent and gets a
       [comp.rank-frame] obligation.  SDR-RB and SDR-R restart waves (they
       raise the rank by design) and stay uncovered. *)
    sp_rank =
      Some
        { Sym.rk_name = "wave-completion";
          rk_rules = [ "SDR-RF"; "SDR-C" ];
          rk_components =
            [ Sym.Ite
                ( Sym.Eq (st_s, c_RB),
                  Sym.Num 2,
                  Sym.Ite (Sym.Eq (st_s, c_RF), Sym.Num 1, Sym.Num 0) ) ] }
  }

let unison_sdr_params_of_n n = [ ("K", n + 2); ("MaxD", n) ]

let tail_unison_params_of_n n =
  [ ("K", max 4 ((2 * n) + 2)); ("alpha", max 1 n) ]

let min_unison_params_of_n n =
  [ ("K", max 4 ((n * n) + 1)); ("alpha", max 1 (n - 2)) ]

let encode_composed (s : Unison.clock Sdr.state) =
  [ ("st", Sym.VEnum (Sdr.status_to_string s.Sdr.st));
    ("d", Sym.VInt s.Sdr.d);
    ("c", Sym.VInt s.Sdr.inner) ]

let unison_sdr_composed_sym g =
  let k, domain = unison_params g in
  let module U = Unison.Make (struct
    let k = k
  end) in
  Sym.make_instance ~spec:unison_sdr_composed_spec
    ~params:(unison_sdr_params_of_n (Graph.n g))
    ~algorithm:U.Composed.algorithm ~graph:g ~domain
    ~encode:encode_composed
    ~is_legitimate:(U.Composed.is_normal g) ()

let unison_sdr_footprint g =
  let k, domain = unison_params g in
  let module U = Unison.Make (struct
    let k = k
  end) in
  Footprint.sdr_target
    (module U.Input)
    ~name:(Printf.sprintf "unison-sdr[K=%d]" k)
    ~algorithm:U.Composed.algorithm ~graph:g ~domain

let coloring_inner g u =
  { Coloring.id = u; color = None }
  :: List.init (Graph.degree g u + 1) (fun c ->
         { Coloring.id = u; color = Some c })

let coloring_sdr g =
  let module C = Coloring.Make (struct
    let graph = g
    let ids = None
  end) in
  Finite.make ~name:"coloring-sdr" ~algorithm:C.Composed.algorithm ~graph:g
    ~domain:(Finite.sdr_domain ~inner:(coloring_inner g) ~max_d:(Graph.n g))
    ~legitimate:C.Composed.is_normal
    ~terminal_ok:(fun _ cfg -> C.is_proper (C.coloring_of_composed cfg))
    ~certificate:
      (undecided_cert ~rules:[ Coloring.rule_pick ] (fun s ->
           s.Coloring.color = None))
    ()

let coloring_sdr_footprint g =
  let module C = Coloring.Make (struct
    let graph = g
    let ids = None
  end) in
  Footprint.sdr_target
    (module C.Input)
    ~name:"coloring-sdr" ~algorithm:C.Composed.algorithm ~graph:g
    ~domain:(Finite.sdr_domain ~inner:(coloring_inner g) ~max_d:(Graph.n g))

let mis_inner u =
  List.map (fun m -> { Mis.id = u; m }) [ Mis.Undecided; Mis.In; Mis.Out ]

let mis_sdr g =
  let module M = Mis.Make (struct
    let graph = g
    let ids = None
  end) in
  Finite.make ~name:"mis-sdr" ~algorithm:M.Composed.algorithm ~graph:g
    ~domain:(Finite.sdr_domain ~inner:mis_inner ~max_d:(Graph.n g))
    ~legitimate:M.Composed.is_normal
    ~terminal_ok:(fun _ cfg -> M.is_mis (M.independent_set_of_composed cfg))
    ~certificate:
      (undecided_cert ~rules:[ Mis.rule_join; Mis.rule_out ] (fun s ->
           s.Mis.m = Mis.Undecided))
    ()

let mis_sdr_footprint g =
  let module M = Mis.Make (struct
    let graph = g
    let ids = None
  end) in
  Footprint.sdr_target
    (module M.Input)
    ~name:"mis-sdr" ~algorithm:M.Composed.algorithm ~graph:g
    ~domain:(Finite.sdr_domain ~inner:mis_inner ~max_d:(Graph.n g))

let matching_inner g u =
  { Matching.id = u; ptr = None }
  :: Array.to_list
       (Array.map
          (fun v -> { Matching.id = u; ptr = Some v })
          (Graph.neighbors g u))

let matching_sdr g =
  let module M = Matching.Make (struct
    let graph = g
    let ids = None
  end) in
  Finite.make ~name:"matching-sdr" ~algorithm:M.Composed.algorithm ~graph:g
    ~domain:(Finite.sdr_domain ~inner:(matching_inner g) ~max_d:(Graph.n g))
    ~legitimate:M.Composed.is_normal
    ~terminal_ok:(fun _ cfg ->
      M.is_maximal_matching (M.matching_of_composed cfg))
    ()

let matching_sdr_footprint g =
  let module M = Matching.Make (struct
    let graph = g
    let ids = None
  end) in
  Footprint.sdr_target
    (module M.Input)
    ~name:"matching-sdr" ~algorithm:M.Composed.algorithm ~graph:g
    ~domain:(Finite.sdr_domain ~inner:(matching_inner g) ~max_d:(Graph.n g))

let fga_inner spec g u =
  let ptrs =
    None :: Some u
    :: Array.to_list (Array.map (fun v -> Some v) (Graph.neighbors g u))
  in
  List.concat_map
    (fun col ->
      List.concat_map
        (fun scr ->
          List.concat_map
            (fun can_q ->
              List.map
                (fun ptr ->
                  { Fga.id = u;
                    f_u = spec.Spec.f g u;
                    g_u = spec.Spec.g g u;
                    col;
                    scr;
                    can_q;
                    ptr })
                ptrs)
            [ true; false ])
        [ -1; 0; 1 ])
    [ true; false ]

let fga_sdr g =
  let spec = Spec.dominating_set in
  let module A = Fga.Make (struct
    let graph = g
    let spec = spec
    let ids = None
  end) in
  (* FGA ∘ SDR is silent: legitimacy IS termination, so the round bound
     8n+4 (Theorem 14) measures full stabilization and the output check
     (a 1-minimal (f,g)-alliance) covers the specification. *)
  Finite.make ~name:"fga-sdr[dominating-set]"
    ~algorithm:A.Composed.algorithm ~graph:g
    ~domain:(Finite.sdr_domain ~inner:(fga_inner spec g) ~max_d:(Graph.n g))
    ~legitimate:(fun g cfg -> Algorithm.is_terminal A.Composed.algorithm g cfg)
    ~terminal_ok:(fun g cfg ->
      Checker.is_one_minimal g spec (A.alliance_of_composed cfg))
    ()

let fga_sdr_footprint g =
  let spec = Spec.dominating_set in
  let module A = Fga.Make (struct
    let graph = g
    let spec = spec
    let ids = None
  end) in
  Footprint.sdr_target
    (module A.Input)
    ~name:"fga-sdr[dominating-set]" ~algorithm:A.Composed.algorithm ~graph:g
    ~domain:(Finite.sdr_domain ~inner:(fga_inner spec g) ~max_d:(Graph.n g))

(* --- symbolic IRs of the four SDR input layers ------------------------

   First-order executable specs of the {e bare} coloring / MIS / matching
   / FGA algorithms (ids fixed to the process indices, [ids = None]), with
   the full §3.5 reset interface so {!Obligation.compile} emits their
   requirement obligations.  Option-typed pointers and colors are encoded
   as integers with ⊥ = -1 (ids are >= 0, so the sentinel is unambiguous);
   the neighborhood folds of the OCaml rules become {!Sym.Min_nbr},
   {!Sym.Mex_nbr} and {!Sym.Count_nbr}, which the obligation compiler
   turns into Skolem functions with defining axioms. *)

let s_id = Sym.Var (Sym.Self, "id")
let s_id_b = Sym.Var (Sym.Nbr, "id")
let s_none = Sym.Num (-1)
let max_id_range = ("id", Sym.Num 0, Sym.Add (Sym.Param "MaxId", Sym.Num 1))
let max_id_param = { Sym.pname = "MaxId"; lower = Some 0 }

let coloring_spec =
  let col_s = Sym.Var (Sym.Self, "col")
  and col_b = Sym.Var (Sym.Nbr, "col") in
  let defined t = Sym.Not (Sym.Eq (t, s_none)) in
  let ir =
    { Sym.ir_name = "coloring";
      fields = [ ("id", Sym.TInt); ("col", Sym.TInt) ];
      params = [ max_id_param ];
      (* No declared range for [col]: the OCaml invariant col <= deg is a
         pigeonhole fact about the {e number} of neighbors, not expressible
         over the uninterpreted node sort, so the IR leaves the color
         unbounded above and the obligations never assume or re-prove it. *)
      ranges = [ max_id_range ];
      rules =
        [ { Sym.rule = Coloring.rule_pick;
            (* [p_icorrect] is omitted from the guard: it is trivially true
               at an uncolored process, and [col = -1] is already the first
               conjunct. *)
            guard =
              Sym.And
                [ Sym.Eq (col_s, s_none);
                  Sym.Forall_nbr
                    (Sym.Or [ defined col_b; Sym.Lt (s_id_b, s_id) ]) ];
            assigns = [ ("col", Sym.Mex_nbr (defined col_b, col_b)) ] } ] }
  in
  { (Sym.spec_of_ir ir) with
    (* The first-order core of the OCaml [p_icorrect] — the col <= deg
       conjunct is dropped (see the range note above), which only weakens
       the interface obligations, never unsoundly strengthens them. *)
    Sym.sp_p_icorrect =
      Some
        (Sym.Or
           [ Sym.Eq (col_s, s_none);
             Sym.And
               [ Sym.Le (Sym.Num 0, col_s);
                 Sym.Forall_nbr (Sym.Not (Sym.Eq (col_b, col_s))) ] ]);
    sp_p_reset = Some (Sym.Eq (col_s, s_none));
    sp_reset = Some [ ("col", s_none) ];
    sp_rank =
      Some
        { Sym.rk_name = "undecided";
          rk_rules = [ Coloring.rule_pick ];
          rk_components =
            [ Sym.Ite (Sym.Eq (col_s, s_none), Sym.Num 1, Sym.Num 0) ] } }

let coloring_sym g =
  let module C = Coloring.Make (struct
    let graph = g
    let ids = None
  end) in
  Sym.make_instance ~spec:coloring_spec
    ~params:[ ("MaxId", Graph.n g - 1) ]
    ~algorithm:C.bare ~graph:g
    ~domain:(coloring_inner g)
    ~encode:(fun (s : Coloring.state) ->
      [ ("id", Sym.VInt s.Coloring.id);
        ("col",
         Sym.VInt (match s.Coloring.color with None -> -1 | Some c -> c)) ])
    ()

let mis_spec =
  let m_s = Sym.Var (Sym.Self, "m") and m_b = Sym.Var (Sym.Nbr, "m") in
  let und = Sym.Ctor "Und"
  and c_in = Sym.Ctor "In"
  and c_out = Sym.Ctor "Out" in
  let p_ic =
    Sym.Or
      [ Sym.Eq (m_s, und);
        Sym.And
          [ Sym.Eq (m_s, c_in);
            Sym.Forall_nbr (Sym.Not (Sym.Eq (m_b, c_in))) ];
        Sym.And [ Sym.Eq (m_s, c_out); Sym.Exists_nbr (Sym.Eq (m_b, c_in)) ]
      ]
  in
  let ir =
    { Sym.ir_name = "mis";
      fields =
        [ ("id", Sym.TInt);
          ("m", Sym.TEnum ("Membership", [ "Und"; "In"; "Out" ])) ];
      params = [ max_id_param ];
      ranges = [ max_id_range ];
      rules =
        [ { Sym.rule = Mis.rule_join;
            guard =
              Sym.And
                [ p_ic;
                  Sym.Eq (m_s, und);
                  Sym.Forall_nbr
                    (Sym.Or
                       [ Sym.Eq (m_b, c_out);
                         Sym.And
                           [ Sym.Eq (m_b, und); Sym.Lt (s_id_b, s_id) ] ])
                ];
            assigns = [ ("m", c_in) ] };
          { Sym.rule = Mis.rule_out;
            guard =
              Sym.And
                [ p_ic;
                  Sym.Eq (m_s, und);
                  Sym.Exists_nbr (Sym.Eq (m_b, c_in)) ];
            assigns = [ ("m", c_out) ] } ] }
  in
  { (Sym.spec_of_ir ir) with
    Sym.sp_p_icorrect = Some p_ic;
    sp_p_reset = Some (Sym.Eq (m_s, und));
    sp_reset = Some [ ("m", und) ];
    sp_rank =
      Some
        { Sym.rk_name = "undecided";
          rk_rules = [ Mis.rule_join; Mis.rule_out ];
          rk_components =
            [ Sym.Ite (Sym.Eq (m_s, und), Sym.Num 1, Sym.Num 0) ] } }

let mis_sym g =
  let module M = Mis.Make (struct
    let graph = g
    let ids = None
  end) in
  Sym.make_instance ~spec:mis_spec
    ~params:[ ("MaxId", Graph.n g - 1) ]
    ~algorithm:M.bare ~graph:g ~domain:mis_inner
    ~encode:(fun (s : Mis.state) ->
      [ ("id", Sym.VInt s.Mis.id);
        ("m",
         Sym.VEnum
           (match s.Mis.m with
           | Mis.Undecided -> "Und"
           | Mis.In -> "In"
           | Mis.Out -> "Out")) ])
    ()

let matching_spec =
  let ptr_s = Sym.Var (Sym.Self, "ptr")
  and ptr_b = Sym.Var (Sym.Nbr, "ptr") in
  (* Smallest-id neighbor pointing at self / smallest-id pointer-free
     smaller-id neighbor; -1 when none qualifies (ids are >= 0). *)
  let best_proposer = Sym.Min_nbr (Sym.Eq (ptr_b, s_id), s_id_b, s_none) in
  let best_target =
    Sym.Min_nbr
      ( Sym.And [ Sym.Eq (ptr_b, s_none); Sym.Lt (s_id_b, s_id) ],
        s_id_b,
        s_none )
  in
  (* Any pointer must reach an actual neighbor and be a downward proposal
     or reciprocated; ids are unique, so the existential witnesses the
     OCaml [nbr_by_id] lookup. *)
  let p_ic =
    Sym.Or
      [ Sym.Eq (ptr_s, s_none);
        Sym.Exists_nbr
          (Sym.And
             [ Sym.Eq (s_id_b, ptr_s);
               Sym.Or [ Sym.Lt (ptr_s, s_id); Sym.Eq (ptr_b, s_id) ] ]) ]
  in
  let ir =
    { Sym.ir_name = "matching";
      fields = [ ("id", Sym.TInt); ("ptr", Sym.TInt) ];
      params = [ max_id_param ];
      ranges =
        [ max_id_range;
          ("ptr", s_none, Sym.Add (Sym.Param "MaxId", Sym.Num 1)) ];
      rules =
        [ { Sym.rule = Matching.rule_accept;
            guard =
              Sym.And
                [ p_ic;
                  Sym.Eq (ptr_s, s_none);
                  Sym.Not (Sym.Eq (best_proposer, s_none)) ];
            assigns = [ ("ptr", best_proposer) ] };
          { Sym.rule = Matching.rule_propose;
            guard =
              Sym.And
                [ p_ic;
                  Sym.Eq (ptr_s, s_none);
                  Sym.Eq (best_proposer, s_none);
                  Sym.Not (Sym.Eq (best_target, s_none)) ];
            assigns = [ ("ptr", best_target) ] };
          { Sym.rule = Matching.rule_withdraw;
            guard =
              Sym.And
                [ p_ic;
                  Sym.Not (Sym.Eq (ptr_s, s_none));
                  Sym.Exists_nbr
                    (Sym.And
                       [ Sym.Eq (s_id_b, ptr_s);
                         Sym.Not (Sym.Eq (ptr_b, s_none));
                         Sym.Not (Sym.Eq (ptr_b, s_id)) ]) ];
            assigns = [ ("ptr", s_none) ] } ] }
  in
  { (Sym.spec_of_ir ir) with
    Sym.sp_p_icorrect = Some p_ic;
    sp_p_reset = Some (Sym.Eq (ptr_s, s_none));
    sp_reset = Some [ ("ptr", s_none) ] }

let matching_sym g =
  let module M = Matching.Make (struct
    let graph = g
    let ids = None
  end) in
  Sym.make_instance ~spec:matching_spec
    ~params:[ ("MaxId", Graph.n g - 1) ]
    ~algorithm:M.bare ~graph:g
    ~domain:(matching_inner g)
    ~encode:(fun (s : Matching.state) ->
      [ ("id", Sym.VInt s.Matching.id);
        ("ptr",
         Sym.VInt (match s.Matching.ptr with None -> -1 | Some p -> p)) ])
    ()

(* FGA specialized to [Spec.dominating_set] (f = 1, g = 0), matching the
   registry instance: the thresholds are the parameter [F] (lower bound 1)
   and the literal 0, so [f_u]/[g_u] need not be fields.  The guards read
   the {e stored} [scr]/[can_q]; the actions re-evaluate both ([cmpVar])
   before recomputing the pointer, exactly like the OCaml macros. *)
let fga_spec =
  let col_s = Sym.Var (Sym.Self, "col")
  and col_b = Sym.Var (Sym.Nbr, "col")
  and scr_s = Sym.Var (Sym.Self, "scr")
  and scr_b = Sym.Var (Sym.Nbr, "scr")
  and canq_s = Sym.Var (Sym.Self, "can_q")
  and canq_b = Sym.Var (Sym.Nbr, "can_q")
  and ptr_s = Sym.Var (Sym.Self, "ptr")
  and ptr_b = Sym.Var (Sym.Nbr, "ptr") in
  let tt = Sym.Bool true and ff = Sym.Bool false in
  let cnt = Sym.Count_nbr (Sym.Eq (col_b, tt)) in
  (* realScr(u) as a term, threshold g = 0 inside the alliance, f = F
     outside; and its value after col := false (rule Clr re-evaluates it
     on the updated own state). *)
  let real_scr_at th =
    Sym.Ite
      ( Sym.Lt (cnt, th),
        Sym.Num (-1),
        Sym.Ite (Sym.Eq (cnt, th), Sym.Num 0, Sym.Num 1) )
  in
  let rs = real_scr_at (Sym.Ite (Sym.Eq (col_s, tt), Sym.Num 0, Sym.Param "F"))
  and rs_clr = real_scr_at (Sym.Param "F") in
  let can_quit =
    Sym.And
      [ Sym.Eq (col_s, tt);
        Sym.Le (Sym.Param "F", cnt);
        Sym.Forall_nbr (Sym.Eq (scr_b, Sym.Num 1)) ]
  in
  let canq_term = Sym.Ite (can_quit, tt, ff) in
  let to_quit =
    Sym.And
      [ can_quit;
        Sym.Eq (ptr_s, s_id);
        Sym.Forall_nbr (Sym.Eq (ptr_b, s_id)) ]
  in
  (* bestPtr(u) on stored scr/can_q (guards) — self-approval beats any
     neighbor with a larger id, so the fold is a min over smaller-id
     candidates defaulting to self. *)
  let min_smaller_canq =
    Sym.Min_nbr
      (Sym.And [ Sym.Eq (canq_b, tt); Sym.Lt (s_id_b, s_id) ], s_id_b, s_id)
  and min_canq = Sym.Min_nbr (Sym.Eq (canq_b, tt), s_id_b, s_none) in
  let best_stored =
    Sym.Ite
      ( Sym.Eq (canq_s, tt),
        Sym.Ite (Sym.Eq (scr_s, Sym.Num 1), min_smaller_canq, s_id),
        Sym.Ite (Sym.Eq (scr_s, Sym.Num 1), min_canq, s_none) )
  in
  let upd_ptr =
    Sym.And [ Sym.Not to_quit; Sym.Not (Sym.Eq (ptr_s, best_stored)) ]
  in
  (* bestPtr(u) on the re-evaluated scr/can_q (actions P2 and Clr). *)
  let best_recomputed =
    Sym.Ite
      ( can_quit,
        Sym.Ite (Sym.Eq (rs, Sym.Num 1), min_smaller_canq, s_id),
        Sym.Ite (Sym.Eq (rs, Sym.Num 1), min_canq, s_none) )
  and best_after_clr =
    (* col' = false kills P_canQuit, so only the no-self branch remains. *)
    Sym.Ite (Sym.Eq (rs_clr, Sym.Num 1), min_canq, s_none)
  in
  let p_ic =
    Sym.And
      [ Sym.Le (Sym.Num 0, rs);
        Sym.Or
          [ Sym.And [ Sym.Eq (scr_s, Sym.Num 1); Sym.Eq (rs, Sym.Num 1) ];
            Sym.Eq (ptr_s, s_none);
            Sym.And
              [ Sym.Eq (ptr_s, s_id);
                Sym.Eq (col_s, tt);
                Sym.Eq (scr_s, rs) ];
            Sym.And
              [ Sym.Not (Sym.Eq (ptr_s, s_none));
                Sym.Eq (scr_s, Sym.Num 1);
                Sym.Or
                  [ Sym.And [ Sym.Eq (ptr_s, s_id); Sym.Eq (col_s, ff) ];
                    Sym.And
                      [ Sym.Not (Sym.Eq (ptr_s, s_id));
                        Sym.Exists_nbr
                          (Sym.And
                             [ Sym.Eq (s_id_b, ptr_s); Sym.Eq (col_b, ff) ])
                      ] ] ] ] ]
  in
  let ir =
    { Sym.ir_name = "fga-dominating-set";
      fields =
        [ ("id", Sym.TInt);
          ("col", Sym.TBool);
          ("scr", Sym.TInt);
          ("can_q", Sym.TBool);
          ("ptr", Sym.TInt) ];
      params = [ max_id_param; { Sym.pname = "F"; lower = Some 1 } ];
      ranges =
        [ max_id_range;
          ("scr", Sym.Num (-1), Sym.Num 2);
          ("ptr", s_none, Sym.Add (Sym.Param "MaxId", Sym.Num 1)) ];
      rules =
        [ { Sym.rule = Fga.rule_clr;
            guard = Sym.And [ p_ic; to_quit ];
            assigns =
              [ ("col", ff);
                ("scr", rs_clr);
                ("can_q", ff);
                ("ptr", best_after_clr) ] };
          { Sym.rule = Fga.rule_p1;
            guard =
              Sym.And [ p_ic; upd_ptr; Sym.Not (Sym.Eq (ptr_s, s_none)) ];
            assigns =
              [ ("scr", rs); ("can_q", canq_term); ("ptr", s_none) ] };
          { Sym.rule = Fga.rule_p2;
            guard = Sym.And [ p_ic; upd_ptr; Sym.Eq (ptr_s, s_none) ];
            assigns =
              [ ("scr", rs);
                ("can_q", canq_term);
                ("ptr", best_recomputed) ] };
          { Sym.rule = Fga.rule_q;
            guard =
              Sym.And
                [ p_ic;
                  Sym.Not to_quit;
                  Sym.Not upd_ptr;
                  Sym.Or
                    [ Sym.Not (Sym.Eq (scr_s, rs));
                      Sym.Not (Sym.Eq (canq_s, canq_term)) ] ];
            assigns =
              [ ("scr", rs);
                ("can_q", canq_term);
                ("ptr", Sym.Ite (Sym.Le (rs, Sym.Num 0), s_none, ptr_s)) ]
          } ] }
  in
  { (Sym.spec_of_ir ir) with
    Sym.sp_p_icorrect = Some p_ic;
    sp_p_reset =
      Some
        (Sym.And
           [ Sym.Eq (col_s, tt);
             Sym.Eq (ptr_s, s_none);
             Sym.Eq (canq_s, tt);
             Sym.Eq (scr_s, Sym.Num 1) ]);
    sp_reset =
      Some
        [ ("col", tt); ("ptr", s_none); ("can_q", tt); ("scr", Sym.Num 1) ]
  }

let fga_sym g =
  let spec = Spec.dominating_set in
  let module A = Fga.Make (struct
    let graph = g
    let spec = spec
    let ids = None
  end) in
  Sym.make_instance ~spec:fga_spec
    ~params:[ ("MaxId", Graph.n g - 1); ("F", 1) ]
    ~algorithm:A.bare ~graph:g
    ~domain:(fga_inner spec g)
    ~encode:(fun (s : Fga.state) ->
      [ ("id", Sym.VInt s.Fga.id);
        ("col", Sym.VBool s.Fga.col);
        ("scr", Sym.VInt s.Fga.scr);
        ("can_q", Sym.VBool s.Fga.can_q);
        ("ptr", Sym.VInt (match s.Fga.ptr with None -> -1 | Some p -> p))
      ])
    ()

(* --- registry -------------------------------------------------------- *)

let entries =
  [ { name = "min-unison";
      description = "self-stabilizing minimal unison, K = n^2 + 1";
      expect_silent = false;
      round_bound = None;
      min_n = 1;
      max_n_quick = 3;
      max_n_full = 4;
      instance = min_unison;
      footprint = None;
      sym = Some min_unison_sym;
      smt_spec = Some min_unison_spec;
      comp_spec = None };
    { name = "tail-unison";
      description = "tail-reset unison, K = 2n + 2, alpha = n";
      expect_silent = false;
      round_bound = None;
      min_n = 1;
      max_n_quick = 3;
      max_n_full = 4;
      instance = tail_unison;
      footprint = None;
      sym = Some tail_unison_sym;
      smt_spec = Some tail_unison_spec;
      comp_spec = None };
    { name = "unison-sdr";
      description = "unison composed with SDR, K = n + 2 (3n-round recovery)";
      expect_silent = false;
      round_bound = Some (fun n -> 3 * n);
      min_n = 1;
      max_n_quick = 2;
      max_n_full = 3;
      instance = unison_sdr;
      footprint = Some unison_sdr_footprint;
      sym = Some unison_sym;
      smt_spec = Some unison_input_spec;
      comp_spec = Some unison_sdr_composed_spec };
    { name = "coloring-sdr";
      description = "greedy (Δ+1)-coloring composed with SDR (silent)";
      expect_silent = true;
      round_bound = None;
      min_n = 1;
      max_n_quick = 2;
      max_n_full = 3;
      instance = coloring_sdr;
      footprint = Some coloring_sdr_footprint;
      sym = Some coloring_sym;
      smt_spec = Some coloring_spec;
      comp_spec = None };
    { name = "mis-sdr";
      description = "maximal independent set composed with SDR (silent)";
      expect_silent = true;
      round_bound = None;
      min_n = 1;
      max_n_quick = 2;
      max_n_full = 3;
      instance = mis_sdr;
      footprint = Some mis_sdr_footprint;
      sym = Some mis_sym;
      smt_spec = Some mis_spec;
      comp_spec = None };
    { name = "matching-sdr";
      description = "maximal matching composed with SDR (silent)";
      expect_silent = true;
      round_bound = None;
      min_n = 1;
      max_n_quick = 2;
      max_n_full = 3;
      instance = matching_sdr;
      footprint = Some matching_sdr_footprint;
      sym = Some matching_sym;
      smt_spec = Some matching_spec;
      comp_spec = None };
    { name = "fga-sdr";
      description =
        "1-minimal (1,0)-alliance (FGA) composed with SDR (silent, 8n+4 \
         rounds)";
      expect_silent = true;
      round_bound = Some (fun n -> (8 * n) + 4);
      min_n = 2;
      max_n_quick = 2;
      max_n_full = 2;
      instance = fga_sdr;
      footprint = Some fga_sdr_footprint;
      sym = Some fga_sym;
      smt_spec = Some fga_spec;
      comp_spec = None } ]

let fixtures =
  [ { name = "toy-livelock";
      description = "fixture: always-enabled flip — must livelock";
      expect_silent = false;
      round_bound = None;
      min_n = 2;
      max_n_quick = 2;
      max_n_full = 3;
      instance = Toy.livelock;
      footprint = None;
      sym = None;
      smt_spec = None;
      comp_spec = None };
    { name = "toy-overlap";
      description = "fixture: overlapping guards and a silent move";
      expect_silent = false;
      round_bound = None;
      min_n = 1;
      max_n_quick = 2;
      max_n_full = 3;
      instance = Toy.overlap;
      footprint = None;
      sym = None;
      smt_spec = None;
      comp_spec = None };
    { name = "toy-interference";
      description =
        "fixture: composed input rule writes the SDR distance — footprint \
         must flag";
      expect_silent = false;
      round_bound = None;
      min_n = 1;
      max_n_quick = 2;
      max_n_full = 3;
      instance = Toy.interference;
      footprint = Some Toy.interference_footprint;
      sym = None;
      smt_spec = None;
      comp_spec = None };
    { name = "toy-badcert";
      description =
        "fixture: increasing potential registered as certificate — cert \
         pass must flag";
      expect_silent = false;
      round_bound = None;
      min_n = 1;
      max_n_quick = 2;
      max_n_full = 3;
      instance = Toy.badcert;
      footprint = None;
      sym = None;
      smt_spec = None;
      comp_spec = None };
    { name = "toy-badsym";
      description =
        "fixture: symbolic IR guard disagrees with the OCaml rule — the \
         differential pass must flag";
      expect_silent = false;
      round_bound = None;
      min_n = 1;
      max_n_quick = 2;
      max_n_full = 3;
      instance = Toy.badsym;
      footprint = None;
      sym = Some Toy.badsym_sym;
      smt_spec = None;
      comp_spec = None };
    { name = "toy-badrank";
      description =
        "fixture: exact IR whose rank claim stutters on the 1 -> 0 move — \
         the ranking differential must flag";
      expect_silent = false;
      round_bound = None;
      min_n = 1;
      max_n_quick = 2;
      max_n_full = 3;
      instance = Toy.badrank;
      footprint = None;
      sym = Some Toy.badrank_sym;
      smt_spec = None;
      comp_spec = None } ]

let contains ~needle haystack =
  let h = String.lowercase_ascii haystack
  and n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  let rec at i = i + nl <= hl && (String.sub h i nl = n || at (i + 1)) in
  nl = 0 || at 0

let find pattern =
  List.filter
    (fun e -> contains ~needle:pattern e.name)
    (entries @ fixtures)

(* --- runner ---------------------------------------------------------- *)

let merge_findings findings =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (f : Lint.finding) ->
      match Hashtbl.find_opt table (f.Lint.lint, f.Lint.rules) with
      | None -> Hashtbl.add table (f.Lint.lint, f.Lint.rules) f
      | Some prior ->
          Hashtbl.replace table
            (f.Lint.lint, f.Lint.rules)
            { prior with Lint.count = prior.Lint.count + f.Lint.count })
    findings;
  Hashtbl.fold (fun _ f acc -> f :: acc) table []
  |> List.sort (fun (a : Lint.finding) b ->
         compare (a.Lint.lint, a.Lint.rules) (b.Lint.lint, b.Lint.rules))

let footprint_target entry g =
  match entry.footprint with
  | Some f -> f g
  | None -> Footprint.of_finite (entry.instance g)

let run ?(mode = `Full) ?max_n ?max_views_per_process ?(footprint = true)
    ?(sym = true) ?(graphs = fun n -> Gen.all_connected n) ?options entry =
  let max_n =
    match max_n with
    | Some n -> n
    | None -> (
        match mode with
        | `Quick -> entry.max_n_quick
        | `Full -> entry.max_n_full)
  in
  let options =
    { (Option.value ~default:Model.default_options options) with
      Model.expect_silent = entry.expect_silent }
  in
  let lint_findings = ref [] in
  let lint_views = ref 0 in
  let models = ref [] in
  let footprints = ref [] in
  let sym_diffs = ref [] in
  for n = entry.min_n to max_n do
    List.iter
      (fun g ->
        let inst = entry.instance g in
        lint_findings :=
          Lint.run ?max_views_per_process inst @ !lint_findings;
        lint_views :=
          !lint_views + Lint.views_checked ?max_views_per_process inst;
        if footprint then
          footprints := Footprint.analyze (footprint_target entry g) :: !footprints;
        if sym then
          Option.iter
            (fun mk ->
              sym_diffs :=
                Sym.check ?max_views_per_process (mk g) :: !sym_diffs)
            entry.sym;
        let result = Model.check ~options inst in
        let bound = Option.map (fun f -> f n) entry.round_bound in
        let result =
          match (bound, result.Model.worst_rounds) with
          | Some b, Some w when w > b ->
              { result with
                Model.violations =
                  result.Model.violations
                  @ [ { Model.property = "round-bound";
                        detail =
                          Printf.sprintf
                            "exact worst case is %d rounds, above the \
                             paper's bound of %d"
                            w b } ] }
          | _ -> result
        in
        models := { Report.bound; result } :: !models)
      (graphs n)
  done;
  { Report.name = entry.name;
    description = entry.description;
    lint = merge_findings !lint_findings;
    lint_views = !lint_views;
    footprint =
      (match List.rev !footprints with
      | [] -> None
      | fps -> Some (Footprint.merge fps));
    sym =
      (match List.rev !sym_diffs with
      | [] -> None
      | ds -> Some (Sym.merge_diffs ds));
    obligations =
      (match entry.smt_spec with
      | None -> []
      | Some spec -> Obligation.compile_all ~algo:entry.name spec)
      @ (match entry.comp_spec with
        | None -> []
        | Some spec -> Obligation.compile_composition_all ~algo:entry.name spec);
    models = List.rev !models }

(** Zero-dependency SMT-LIB2 — AST, printer, re-parser, lint, solver glue.

    {!Obligation} compiles symbolic-IR proof obligations to this AST; the
    printer writes [.smt2] files, and the re-parser + {!lint_script} are
    the repo's own well-formedness gate (every emitted file must re-parse
    and lint clean — no solver required).  No Z3 linkage anywhere: a
    solver binary is only ever {e executed} ({!solve}), and only when one
    is actually on [PATH] ({!solver_available}). *)

type sexp = Atom of string | List of sexp list

type script = {
  header : string list;  (** emitted as leading [;] comment lines *)
  body : sexp list;
}

(** {2 Construction helpers} *)

val atom : string -> sexp
val list : sexp list -> sexp
val app : string -> sexp list -> sexp
(** [app f args] is [Atom f] when [args = []], else [List (Atom f :: args)]
    — SMT-LIB nullary applications are bare symbols. *)

(** {2 Printing} *)

val pp_sexp : sexp Fmt.t
(** One s-expression, wrapped at a readable width. *)

val pp_script : script Fmt.t
val to_string : script -> string
val write_file : string -> script -> unit

(** {2 Parsing}

    A faithful reader for the subset the printer emits plus standard
    lexical extras: [;] comments to end of line, ["…"] string literals
    (with [""] escapes), [|…|] quoted symbols. *)

val parse_string : string -> (sexp list, string) result
(** [Error msg] carries a line-numbered description. *)

val parse_file : string -> (sexp list, string) result

(** {2 Lint}

    [lint_script cmds] returns findings, [[]] = clean:
    - every symbol used in a term is a builtin, bound by an enclosing
      [forall]/[exists]/[let], or declared by an earlier
      [declare-sort]/[declare-fun]/[declare-const]/[define-fun] (no free
      variables);
    - every declared sort and fun/const is used at least once after its
      declaration (obligations must not carry dead symbols);
    - the script contains a [check-sat];
    - commands are well-shaped (a top-level atom, an unknown command, a
      malformed binder list). *)

val lint_script : sexp list -> string list

(** {2 Solver invocation} *)

type verdict = Sat | Unsat | Unknown | Solver_error of string

val verdict_to_string : verdict -> string

val solver_available : string -> bool
(** Is the named binary on [PATH]?  (Checked with [command -v] — never
    assumes a solver exists.) *)

val solve : solver:string -> ?args:string list -> string -> verdict
(** [solve ~solver path] runs [solver path] and classifies the first
    result line ([sat] / [unsat] / [unknown]); anything else — including a
    missing binary or a nonzero exit without a verdict — is
    [Solver_error].  Output is captured through a temp file; no libraries
    are linked. *)

(** Registry of finitely-checkable algorithm instances, plus the runner
    that drives {!Lint} and {!Model} over all connected graphs up to a
    per-entry size bound (one representative per isomorphism class, via
    [Gen.all_connected]).

    {!entries} holds the paper algorithms — all expected clean.
    {!fixtures} holds the deliberately broken toys of {!Toy} — expected
    dirty; they are kept apart so "every registered algorithm passes" stays
    meaningful. *)

type entry = {
  name : string;
  description : string;
  expect_silent : bool;
      (** silent algorithms additionally get the acyclicity check of
          {!Model.options.expect_silent} *)
  round_bound : (int -> int) option;
      (** the paper's stabilization bound in rounds, as a function of n *)
  min_n : int;  (** smallest meaningful graph size (FGA needs n ≥ 2) *)
  max_n_quick : int;  (** graph-size ceiling under [dune runtest] *)
  max_n_full : int;  (** graph-size ceiling for the CLI default *)
  instance : Ssreset_graph.Graph.t -> Finite.t;
}

val entries : entry list
(** min-unison, tail-unison, unison-sdr, coloring-sdr, mis-sdr,
    matching-sdr, fga-sdr. *)

val fixtures : entry list
(** toy-livelock, toy-overlap ({!Toy}). *)

val find : string -> entry list
(** Case-insensitive substring match over entries and fixtures — ["unison"]
    selects min-unison, tail-unison and unison-sdr. *)

val run :
  ?mode:[ `Quick | `Full ] ->
  ?max_n:int ->
  ?max_views_per_process:int ->
  ?options:Model.options ->
  entry ->
  Report.entry_report
(** Lint and model-check one entry on every connected graph with
    [entry.min_n ≤ n ≤ max_n] (default: the entry's quick/full ceiling for
    [mode], itself defaulting to [`Full]).  [options.expect_silent] is
    overridden by the entry's flag; when the entry declares a round bound
    and the checker computed a worst case above it, a ["round-bound"]
    violation is added to that graph's result.  Lint findings are merged
    across graphs (one per lint × rule set, counts summed). *)

(** Registry of finitely-checkable algorithm instances, plus the runner
    that drives {!Lint} and {!Model} over all connected graphs up to a
    per-entry size bound (one representative per isomorphism class, via
    [Gen.all_connected]).

    {!entries} holds the paper algorithms — all expected clean.
    {!fixtures} holds the deliberately broken toys of {!Toy} — expected
    dirty; they are kept apart so "every registered algorithm passes" stays
    meaningful. *)

type entry = {
  name : string;
  description : string;
  expect_silent : bool;
      (** silent algorithms additionally get the acyclicity check of
          {!Model.options.expect_silent} *)
  round_bound : (int -> int) option;
      (** the paper's stabilization bound in rounds, as a function of n *)
  min_n : int;  (** smallest meaningful graph size (FGA needs n ≥ 2) *)
  max_n_quick : int;  (** graph-size ceiling under [dune runtest] *)
  max_n_full : int;  (** graph-size ceiling for the CLI default *)
  instance : Ssreset_graph.Graph.t -> Finite.t;
  footprint : (Ssreset_graph.Graph.t -> Footprint.target) option;
      (** composed targets carry the full layer decomposition; [None]
          falls back to the monolithic {!Footprint.of_finite} view *)
  sym : (Ssreset_graph.Graph.t -> Sym.instance) option;
      (** symbolic-IR instance for the differential pass ({!Sym.check});
          [None] when no IR is attached *)
  smt_spec : Sym.spec option;
      (** the topology-parametric symbolic spec {!Obligation} compiles to
          SMT-LIB; usually the spec underlying [sym], shared across graph
          sizes *)
  comp_spec : Sym.spec option;
      (** the {e composed}-system spec whose rank family
          {!Obligation.compile_composition} turns into [comp.*]
          obligations — only unison-sdr carries one
          ({!unison_sdr_composed_spec}) *)
}

val tail_unison_spec : Sym.spec
val min_unison_spec : Sym.spec
(** Topology-parametric symbolic specs of the two self-contained unisons
    (shared by the entries below and by the flat data-path engine). *)

val unison_sdr_composed_spec : Sym.spec
(** The {e whole} composed U∘SDR system as one symbolic IR: fields
    [st : Status], [d : Int], [c : Int]; rules SDR-RB/RF/C/R plus the
    lifted U-inc, in the engine's rule order.  The source program of the
    flat engine's closure compiler; validated against [Sdr.Make]'s OCaml
    rules by {!unison_sdr_composed_sym}.  Carries the ["wave-completion"]
    rank (RB = 2, RF = 1, C = 0, covered by SDR-RF/SDR-C) that
    {!Obligation.compile_composition} exports as the [comp.*] obligation
    family of the unison-sdr entry. *)

val coloring_spec : Sym.spec
val mis_spec : Sym.spec
val matching_spec : Sym.spec
val fga_spec : Sym.spec
(** Topology-parametric symbolic IRs of the four bare SDR input layers
    (ids = process indices; options encoded as integers with ⊥ = -1;
    [fga_spec] is specialized to [Spec.dominating_set]).  Each carries
    the full §3.5 reset interface; coloring and MIS also carry an
    ["undecided"] rank. *)

val tail_unison_params_of_n : int -> (string * int) list
val min_unison_params_of_n : int -> (string * int) list
val unison_sdr_params_of_n : int -> (string * int) list
(** Parameter valuations as a function of the process count, matching the
    registry instances: tail [K = max 4 (2n+2), α = max 1 n]; min
    [K = max 4 (n²+1), α = max 1 (n-2)]; composed [K = n+2, MaxD = n]. *)

val unison_sdr_composed_sym : Ssreset_graph.Graph.t -> Sym.instance
(** Differential instance for {!unison_sdr_composed_spec} on one graph
    (the bounded oracle behind the flat engine's compiler). *)

val entries : entry list
(** min-unison, tail-unison, unison-sdr, coloring-sdr, mis-sdr,
    matching-sdr, fga-sdr.  The unison entries carry a ["climb-debt"]
    certificate, unison-sdr a ["wave-completion"] one, and coloring-sdr /
    mis-sdr an ["undecided"] one ({!Cert}).  Every entry now attaches a
    symbolic IR, so [check smt emit] covers the whole registry. *)

val fixtures : entry list
(** toy-livelock, toy-overlap, toy-interference, toy-badsym, toy-badcert,
    toy-badrank ({!Toy}).  toy-badsym is clean under lint, footprint and
    the model checker; only the symbolic differential flags it.
    toy-badrank is additionally clean under the guard/post differential;
    only the ranking differential (["rank"] mismatches) flags it. *)

val footprint_target : entry -> Ssreset_graph.Graph.t -> Footprint.target
(** The target {!run} analyzes for this entry on one graph (declared or
    derived). *)

val find : string -> entry list
(** Case-insensitive substring match over entries and fixtures — ["unison"]
    selects min-unison, tail-unison and unison-sdr. *)

val run :
  ?mode:[ `Quick | `Full ] ->
  ?max_n:int ->
  ?max_views_per_process:int ->
  ?footprint:bool ->
  ?sym:bool ->
  ?graphs:(int -> Ssreset_graph.Graph.t list) ->
  ?options:Model.options ->
  entry ->
  Report.entry_report
(** Lint, footprint-analyze, differentially validate the symbolic IR
    (when attached; [sym:false] skips the pass) and model-check one entry
    on every graph
    yielded by [graphs n] (default [Gen.all_connected]: every connected
    graph, one per isomorphism class) for [entry.min_n ≤ n ≤ max_n]
    (default: the entry's quick/full ceiling for [mode], itself defaulting
    to [`Full]).  Restricting [graphs] to one family (e.g. complete
    graphs) lets symmetry-reduced runs reach larger [n] affordably.
    [options.expect_silent] is overridden by the entry's flag; when the
    entry declares a round bound and the checker computed a worst case
    above it, a ["round-bound"] violation is added to that graph's result.
    Lint findings are merged across graphs (one per lint × rule set,
    counts summed); footprint reports are {!Footprint.merge}d the same way
    ([footprint:false] skips the pass and leaves the report field
    [None]). *)

(** Static lint pass over rule sets — the locally-shared-memory model's
    analogue of a race detector.

    Every check evaluates guards and actions on enumerated views (own state
    × neighbor-state tuple, drawn from the instance's {!Finite} domains):

    - {b stability}: evaluating a guard twice on the same view must give the
      same verdict — a flaky guard means hidden state or randomness, which
      breaks every proof in the paper;
    - {b overlap}: two guards true on one view makes
      [Algorithm.enabled_rule]'s first-match priority order load-bearing
      (Lemma 5 assumes pairwise exclusion) — the finding names the rule pair
      and a witness view;
    - {b silent-move}: an enabled rule whose action returns the unchanged
      state can be selected forever by the unfair daemon — a livelock the
      round-based analysis never counts;
    - {b permutation}: guards and actions of anonymous-network algorithms
      must not depend on the {e order} of the [nbrs] array; each view is
      re-evaluated under every permutation of its neighbor tuple.

    Findings are deduplicated: one finding per (lint, rule set) pair, with a
    witness view and a total occurrence count. *)

type finding = {
  lint : string;  (** ["stability" | "overlap" | "silent-move" | "permutation"] *)
  rules : string list;  (** rule names involved, sorted *)
  witness : string;  (** pretty-printed view of the first occurrence *)
  count : int;  (** number of views exhibiting the defect *)
}

val pp_finding : finding Fmt.t

val run : ?max_views_per_process:int -> Finite.t -> finding list
(** Lint one instance.  Each process's view space is the product of its own
    domain and its neighbors' domains; when it exceeds
    [max_views_per_process] (default [20_000]) the space is stride-sampled
    evenly instead of truncated, so coverage stays spread across the whole
    product.  Findings are sorted by (lint, rules). *)

val views_checked : ?max_views_per_process:int -> Finite.t -> int
(** How many views {!run} will evaluate — for throughput reporting. *)

(** Findings report: aggregates lint findings, footprint analyses,
    symbolic-IR differential results, compiled SMT proof obligations and
    model-checker results per algorithm entry, renders them for humans, and
    emits machine-readable JSON (schema ["ssreset-check-v3"],
    [schema_version 3]) through {!Ssreset_obs.Json}. *)

type model_item = {
  bound : int option;
      (** the paper's round bound for this graph size, when the entry
          declares one (3n for U∘SDR, 8n+4 for FGA∘SDR) *)
  result : Model.t;
}

type entry_report = {
  name : string;
  description : string;
  lint : Lint.finding list;
  lint_views : int;  (** views the lint pass evaluated *)
  footprint : Footprint.t option;
      (** merged over checked graphs; [None] when the pass was skipped *)
  sym : Sym.diff option;
      (** symbolic-IR differential, merged over checked graphs; [None]
          when the entry attaches no IR or the pass was skipped *)
  obligations : Obligation.t list;
      (** SMT-LIB proof obligations compiled from the entry's symbolic
          spec (all four topology families); [[]] when no spec is
          attached.  Compilation is topology-parametric, so the list does
          not depend on the checked graphs. *)
  models : model_item list;  (** one per checked graph *)
}

val entry_ok : entry_report -> bool
(** No lint findings, no footprint findings, no symbolic-IR mismatches
    and no model violations.
    Aborted model runs do not fail the entry — they are visible in the
    JSON and the human report as unverified — but violations found before
    the abort do. *)

val ok : entry_report list -> bool

val to_json : entry_report list -> Ssreset_obs.Json.t
(** Top level: [{schema; schema_version; ok; entries}]; each entry carries
    [lint] (findings + ok), [footprint] (per-rule read/write tables +
    non-interference findings, or [null]), [sym] (differential counters +
    mismatches, or [null]), [obligations] (the {!Obligation.to_json}
    manifest, or [null]) and [model] (per-graph stats, violations, worst
    cases, bound, automorphism order and certificate name when those
    passes ran). *)

val pp : entry_report list Fmt.t
(** Human-readable summary, one block per entry. *)

(* Graph automorphisms and orbit canonicalization (see symmetry.mli).

   Everything here is sized for the model checker's graphs: n ≤ 6, so the
   full S_n has at most 720 elements and brute force over permutations is
   instantaneous.  The interesting engineering is in [iter_canonical],
   which must enumerate orbit representatives of domain^n without ever
   materializing the full product — that product is what blows the
   checker's budget at n = 6 in the first place. *)

module Graph = Ssreset_graph.Graph

type t = {
  n : int;
  auts : int array array; (* identity first (lex-least permutation) *)
  blocks : int array option;
      (* Young fast path: block id per vertex when Aut = Π S_{orbit} *)
}

let order t = Array.length t.auts
let auts t = t.auts

(* All permutations of [0..n-1] in lexicographic order, so the identity is
   generated first and ends up at index 0 after filtering. *)
let rec perms_of = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (perms_of rest))
        l

let transport p m =
  let out = ref 0 in
  Array.iteri (fun i pi -> if m land (1 lsl i) <> 0 then out := !out lor (1 lsl pi)) p;
  !out

let untransport p m =
  let out = ref 0 in
  Array.iteri (fun i pi -> if m land (1 lsl pi) <> 0 then out := !out lor (1 lsl i)) p;
  !out

let rec factorial k = if k <= 1 then 1 else k * factorial (k - 1)

let of_graph g =
  let n = Graph.n g in
  let adj = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u) <- adj.(u) lor (1 lsl v);
      adj.(v) <- adj.(v) lor (1 lsl u))
    (Graph.edges g);
  let is_aut p =
    let ok = ref true in
    for u = 0 to n - 1 do
      if transport p adj.(u) <> adj.(p.(u)) then ok := false
    done;
    !ok
  in
  let auts =
    perms_of (List.init n Fun.id)
    |> List.map Array.of_list
    |> List.filter is_aut
    |> Array.of_list
  in
  (* Vertex orbits: u ~ p(u) for every automorphism p. *)
  let block = Array.make n (-1) in
  let nblocks = ref 0 in
  for u = 0 to n - 1 do
    if block.(u) < 0 then begin
      let b = !nblocks in
      incr nblocks;
      Array.iter (fun p -> block.(p.(u)) <- b) auts
    end
  done;
  let sizes = Array.make !nblocks 0 in
  Array.iter (fun b -> sizes.(b) <- sizes.(b) + 1) block;
  let young_order = Array.fold_left (fun acc s -> acc * factorial s) 1 sizes in
  let blocks =
    if Array.length auts > 1 && young_order = Array.length auts then Some block
    else None
  in
  { n; auts; blocks }

let canonicalize t cfg =
  let n = t.n in
  match t.blocks with
  | _ when Array.length t.auts <= 1 -> Array.copy cfg
  | Some block ->
      (* Aut is the full symmetric group on each block: the lexmin
         relabeling sorts values within each block (block members appear
         in vertex order, so "within" is by position). *)
      let out = Array.copy cfg in
      let nblocks = 1 + Array.fold_left max 0 block in
      for b = 0 to nblocks - 1 do
        let vals = ref [] in
        for i = n - 1 downto 0 do
          if block.(i) = b then vals := cfg.(i) :: !vals
        done;
        let sorted = List.sort compare !vals in
        let rem = ref sorted in
        for i = 0 to n - 1 do
          if block.(i) = b then begin
            out.(i) <- List.hd !rem;
            rem := List.tl !rem
          end
        done
      done;
      out
  | None ->
      let best = Array.copy cfg in
      let na = Array.length t.auts in
      for a = 1 to na - 1 do
        let p = t.auts.(a) in
        (* lex-compare cfg∘p against best, adopting on strictly smaller *)
        let rec cmp i =
          if i = n then 0
          else
            let v = cfg.(p.(i)) in
            if v < best.(i) then -1 else if v > best.(i) then 1 else cmp (i + 1)
        in
        if cmp 0 < 0 then
          for i = 0 to n - 1 do
            best.(i) <- cfg.(p.(i))
          done
      done;
      best

let iter_canonical t ~arity f =
  let n = t.n in
  let digits = Array.make n 0 in
  match t.blocks with
  | Some block when Array.length t.auts > 1 ->
      (* Canonical ⇔ non-decreasing within each block (positions ascend),
         so generate exactly those digit arrays: the lower bound for
         position k is the last digit already placed in k's block. *)
      let rec go k =
        if k = n then f digits
        else begin
          let lb = ref 0 in
          for j = 0 to k - 1 do
            if block.(j) = block.(k) then lb := digits.(j)
          done;
          for x = !lb to arity - 1 do
            digits.(k) <- x;
            go (k + 1)
          done
        end
      in
      go 0
  | _ ->
      if Array.length t.auts <= 1 then begin
        (* No symmetry: plain product enumeration. *)
        let rec go k =
          if k = n then f digits
          else
            for x = 0 to arity - 1 do
              digits.(k) <- x;
              go (k + 1)
            done
        in
        go 0
      end
      else begin
        (* General group: DFS with prefix pruning.  A prefix d[0..k] is
           viable only if no automorphism p stabilizing {0..k} setwise
           relabels it to something lex-smaller; at the leaf we require
           lex-minimality over the whole group. *)
        let na = Array.length t.auts in
        let prefix_auts =
          Array.init n (fun k ->
              List.filter
                (fun a ->
                  let p = t.auts.(a) in
                  let ok = ref true in
                  for i = 0 to k do
                    if p.(i) > k then ok := false
                  done;
                  !ok)
                (List.init na Fun.id |> List.tl)
              |> Array.of_list)
        in
        (* digits∘p <lex digits restricted to [0..k]? *)
        let smaller_prefix p k =
          let rec cmp i =
            if i > k then false
            else
              let v = digits.(p.(i)) in
              if v < digits.(i) then true
              else if v > digits.(i) then false
              else cmp (i + 1)
          in
          cmp 0
        in
        let canonical_leaf () =
          let ok = ref true in
          for a = 1 to na - 1 do
            if !ok && smaller_prefix t.auts.(a) (n - 1) then ok := false
          done;
          !ok
        in
        let rec go k =
          if k = n then (if canonical_leaf () then f digits)
          else
            for x = 0 to arity - 1 do
              digits.(k) <- x;
              let pruned = ref false in
              Array.iter
                (fun a -> if (not !pruned) && smaller_prefix t.auts.(a) k then pruned := true)
                prefix_auts.(k);
              if not !pruned then go (k + 1)
            done
        in
        go 0
      end

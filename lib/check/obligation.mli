(** Proof-obligation compiler — {!Sym} specs to SMT-LIB over symbolic n.

    Every obligation quantifies over an {e uninterpreted} node sort with a
    per-family topology axiomatization, so a discharged obligation (the
    solver answers [unsat] on the negated goal) holds for {e every} graph
    of the family and every size — the step past the bounded model
    checker's n ≈ 6 horizon.  The axiomatizations are deliberately weak
    (e.g. the ring axioms admit disjoint unions of cycles): their model
    classes are {e supersets} of the concrete families, so a verdict only
    ever gets stronger, never unsound.

    Obligation kinds, each negated and expected [unsat]:
    - {b closure}: legitimate ∧ a covered step (an uninterpreted nonempty
      [moved ⊆ enabled] set, post-state defined by the first-enabled rule)
      ⇒ legitimate afterwards;
    - {b cert-decrease}: for each rule covered by the {!Sym.cert_spec}, a
      mover's local potential strictly decreases and stays nonnegative —
      the pointwise argument for [Σ local] decreasing under any covered
      step, valid because [cs_local] reads [Self] only;
    - {b range}: each rule re-establishes the declared field ranges;
    - {b requirement}: the §3.5 non-interference interface of an SDR
      input layer — reset lands in a [p_reset] state, reset is
      idempotent, enabled processes are locally correct
      ([guard ⇒ p_icorrect]), an all-reset neighborhood is locally
      correct, and a process's own move preserves its local correctness;
    - {b rank}: the implicit-rankings convergence family compiled from a
      {!Sym.rank_spec} — every process's lexicographic tuple is bounded
      below ([rank-bounded]), a covered mover's tuple does not increase /
      strictly decreases ([rank-no-increase.r] / [rank-decrease.r]), a
      step whose movers all fire covered rules pointwise-dominates every
      tuple and strictly decreases a mover's ([rank-step] — multiset
      decrease of the global rank, first-order and n-independent because
      components read [Self] only), and uncovered rules writing none of
      the tuple's fields leave it exactly unchanged ([rank-frame.r]);
    - {b composition}: the same family compiled from a composed-system
      spec ({!compile_composition}, names prefixed [comp.]) — the
      PADEC-style decomposition for U∘SDR, where the reset layer's wave
      rank decreases on reset-layer steps and the input layer's moves are
      rank-silent, so composed convergence splits into solver-checkable
      pieces.

    Pre-state range axioms are always assumed (the differential pass
    validates them against the concrete seed domains), and only the
    sorts, functions and parameters an obligation actually mentions are
    declared — {!Smt.lint_script} enforces exactly that.  Neighborhood
    aggregates ({!Sym.Min_nbr}, {!Sym.Mex_nbr}, {!Sym.Count_nbr}) compile
    to Skolem functions with defining axioms satisfied in every finite
    model, preserving the superset soundness argument. *)

type family = Ring | Path | Star | Complete

val families : family list
val family_to_string : family -> string
val family_of_string : string -> family option

type kind =
  | Closure
  | Cert_decrease of string  (** covered rule *)
  | Range of string * string  (** rule, field *)
  | Requirement of string  (** requirement id, e.g. ["reset-lands"] *)
  | Rank of string  (** rank obligation id, e.g. ["rank-decrease.TU-climb"] *)
  | Composition of string
      (** composed-system rank obligation id (names carry a [comp.]
          prefix) *)

val kind_to_string : kind -> string

type t = {
  ob_algo : string;
  ob_family : family;
  ob_kind : kind;
  ob_name : string;
      (** unique within (algo, family), e.g. ["cert-decrease.TU-climb"] *)
  ob_descr : string;
  ob_script : Smt.script;  (** expected verdict: always [unsat] *)
}

val compile : algo:string -> Sym.spec -> family -> t list
(** Every obligation the spec supports: closure iff [sp_legitimate],
    cert-decrease iff [sp_cert] (one per covered rule), range per
    (rule, assigned ranged field), requirements per available predicate
    of the reset interface, and the rank family iff [sp_rank]. *)

val compile_all : algo:string -> Sym.spec -> t list
(** {!compile} over all four {!families}. *)

val compile_composition : algo:string -> Sym.spec -> family -> t list
(** The rank family of a {e composed} spec (e.g. U∘SDR), emitted with a
    [comp.] name prefix and kind {!Composition}: reset-layer rank
    decrease under input-layer silence plus the frame obligations showing
    input moves are rank-silent.  Empty when the spec carries no
    [sp_rank]. *)

val compile_composition_all : algo:string -> Sym.spec -> t list
(** {!compile_composition} over all four {!families}. *)

val filename : t -> string
(** [<algo>.<family>.<name>.smt2]. *)

val to_json : t list -> Ssreset_obs.Json.t
(** The manifest object: [{schema = "ssreset-smt-v2"; schema_version = 2;
    count; obligations = [{file; algo; family; kind; name; expect;
    descr}]}]. *)

val write : dir:string -> t list -> string
(** Write one [.smt2] per obligation plus [manifest.json] into [dir]
    (created if missing); returns the manifest path. *)

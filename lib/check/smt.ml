type sexp = Atom of string | List of sexp list
type script = { header : string list; body : sexp list }

let atom a = Atom a
let list l = List l
let app f = function [] -> Atom f | args -> List (Atom f :: args)

(* --- printing --------------------------------------------------------- *)

let rec pp_sexp ppf = function
  | Atom a -> Fmt.string ppf a
  | List [] -> Fmt.string ppf "()"
  | List xs -> Fmt.pf ppf "@[<hov 1>(%a)@]" Fmt.(list ~sep:sp pp_sexp) xs

let pp_script ppf { header; body } =
  List.iter (fun l -> Fmt.pf ppf "; %s@\n" l) header;
  List.iter (fun s -> Fmt.pf ppf "%a@\n" pp_sexp s) body

let to_string s = Fmt.str "%a" pp_script s

let write_file path s =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string s))

(* --- parsing ---------------------------------------------------------- *)

exception Parse_err of string

let parse_string s =
  let n = String.length s in
  let pos = ref 0 in
  let line = ref 1 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () =
    if s.[!pos] = '\n' then incr line;
    incr pos
  in
  let fail fmt =
    Fmt.kstr (fun m -> raise (Parse_err (Fmt.str "line %d: %s" !line m))) fmt
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        skip_line ();
        skip_ws ()
    | _ -> ()
  and skip_line () =
    match peek () with
    | None | Some '\n' -> ()
    | Some _ ->
        advance ();
        skip_line ()
  in
  (* String literals and |…| symbols keep their delimiters in the atom so
     printing is the identity on parsed scripts. *)
  let read_string buf =
    Buffer.add_char buf '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string literal"
      | Some '"' ->
          advance ();
          if peek () = Some '"' then begin
            (* escaped quote *)
            Buffer.add_string buf "\"\"";
            advance ();
            go ()
          end
          else begin
            Buffer.add_char buf '"';
            Buffer.contents buf
          end
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ()
  in
  let read_quoted buf =
    Buffer.add_char buf '|';
    let rec go () =
      match peek () with
      | None -> fail "unterminated |symbol|"
      | Some '|' ->
          advance ();
          Buffer.add_char buf '|';
          Buffer.contents buf
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ()
  in
  let is_atom_char = function
    | '(' | ')' | ';' | '"' | '|' | ' ' | '\t' | '\r' | '\n' -> false
    | _ -> true
  in
  let read_atom buf =
    let rec go () =
      match peek () with
      | Some c when is_atom_char c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      | _ -> Buffer.contents buf
    in
    go ()
  in
  let rec read_sexp () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '(' ->
        advance ();
        read_list []
    | Some ')' -> fail "unexpected ')'"
    | Some '"' ->
        advance ();
        Atom (read_string (Buffer.create 16))
    | Some '|' ->
        advance ();
        Atom (read_quoted (Buffer.create 16))
    | Some _ -> Atom (read_atom (Buffer.create 16))
  and read_list acc =
    skip_ws ();
    match peek () with
    | None -> fail "unclosed '('"
    | Some ')' ->
        advance ();
        List (List.rev acc)
    | Some _ -> read_list (read_sexp () :: acc)
  in
  let rec top acc =
    skip_ws ();
    if !pos >= n then List.rev acc else top (read_sexp () :: acc)
  in
  match top [] with v -> Ok v | exception Parse_err m -> Error m

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse_string contents
  | exception Sys_error m -> Error m

(* --- lint ------------------------------------------------------------- *)

let builtin_sorts = [ "Bool"; "Int" ]

let builtin_funs =
  [ "true"; "false"; "and"; "or"; "not"; "=>"; "="; "distinct"; "ite";
    "<="; "<"; ">="; ">"; "+"; "-"; "*"; "div"; "mod"; "abs" ]

let is_numeral a =
  a <> "" && String.for_all (fun c -> '0' <= c && c <= '9') a

let is_literal a = is_numeral a || (a <> "" && a.[0] = '"')

let lint_script cmds =
  let findings = ref [] in
  let err fmt = Fmt.kstr (fun m -> findings := m :: !findings) fmt in
  let sorts : (string, bool ref) Hashtbl.t = Hashtbl.create 16 in
  let funs : (string, bool ref) Hashtbl.t = Hashtbl.create 16 in
  let declare tbl kind name =
    if Hashtbl.mem sorts name || Hashtbl.mem funs name then
      err "%s %s redeclared" kind name
    else Hashtbl.add tbl name (ref false)
  in
  let use_sort = function
    | Atom a when List.mem a builtin_sorts -> ()
    | Atom a -> (
        match Hashtbl.find_opt sorts a with
        | Some used -> used := true
        | None -> err "unknown sort %s" a)
    | List _ as s -> err "unsupported compound sort %a" pp_sexp s
  in
  let use_fun bound f =
    if List.mem f builtin_funs || List.mem f bound then ()
    else
      match Hashtbl.find_opt funs f with
      | Some used -> used := true
      | None -> err "free symbol %s" f
  in
  let rec use_term bound = function
    | Atom a when is_literal a -> ()
    | Atom a -> use_fun bound a
    | List (Atom (("forall" | "exists") as q) :: rest) -> (
        match rest with
        | [ List binders; body ] ->
            let names =
              List.filter_map
                (function
                  | List [ Atom x; sort ] ->
                      use_sort sort;
                      Some x
                  | b ->
                      err "%s: malformed binder %a" q pp_sexp b;
                      None)
                binders
            in
            use_term (names @ bound) body
        | _ -> err "malformed %s" q)
    | List (Atom "let" :: rest) -> (
        match rest with
        | [ List binders; body ] ->
            let names =
              List.filter_map
                (function
                  | List [ Atom x; t ] ->
                      use_term bound t;
                      Some x
                  | b ->
                      err "let: malformed binding %a" pp_sexp b;
                      None)
                binders
            in
            use_term (names @ bound) body
        | _ -> err "malformed let")
    | List (Atom f :: args) ->
        use_fun bound f;
        List.iter (use_term bound) args
    | List _ as t -> err "malformed application %a" pp_sexp t
  in
  let check_sat = ref false in
  List.iter
    (function
      | List (Atom ("set-logic" | "set-info" | "set-option") :: _) -> ()
      | List [ Atom "check-sat" ] -> check_sat := true
      | List [ Atom "exit" ] | List (Atom ("get-model" | "echo") :: _) -> ()
      | List [ Atom "declare-sort"; Atom name; Atom arity ] ->
          if not (is_numeral arity) then
            err "declare-sort %s: bad arity %s" name arity;
          declare sorts "sort" name
      | List [ Atom "declare-const"; Atom name; sort ] ->
          use_sort sort;
          declare funs "const" name
      | List [ Atom "declare-fun"; Atom name; List args; ret ] ->
          List.iter use_sort args;
          use_sort ret;
          declare funs "fun" name
      | List (Atom "define-fun" :: rest) -> (
          match rest with
          | [ Atom name; List params; ret; body ] ->
              let names =
                List.filter_map
                  (function
                    | List [ Atom x; sort ] ->
                        use_sort sort;
                        Some x
                    | b ->
                        err "define-fun %s: malformed param %a" name pp_sexp
                          b;
                        None)
                  params
              in
              use_sort ret;
              use_term names body;
              declare funs "fun" name
          | _ -> err "malformed define-fun")
      | List (Atom "assert" :: rest) -> (
          match rest with
          | [ t ] -> use_term [] t
          | _ -> err "malformed assert")
      | Atom a -> err "top-level atom %s" a
      | List (Atom c :: _) -> err "unknown command %s" c
      | List _ as c -> err "malformed command %a" pp_sexp c)
    cmds;
  if not !check_sat then err "no check-sat command";
  let unused tbl kind =
    Hashtbl.fold
      (fun name used acc -> if !used then acc else (kind, name) :: acc)
      tbl []
  in
  List.iter
    (fun (kind, name) -> err "%s %s declared but never used" kind name)
    (List.sort compare (unused sorts "sort" @ unused funs "fun"));
  List.rev !findings

(* --- solver glue ------------------------------------------------------ *)

type verdict = Sat | Unsat | Unknown | Solver_error of string

let verdict_to_string = function
  | Sat -> "sat"
  | Unsat -> "unsat"
  | Unknown -> "unknown"
  | Solver_error m -> "error: " ^ m

let solver_available solver =
  Sys.command
    (Printf.sprintf "command -v %s >/dev/null 2>&1" (Filename.quote solver))
  = 0

let solve ~solver ?(args = []) path =
  let out = Filename.temp_file "ssreset-smt" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let cmd =
        String.concat " "
          (List.map Filename.quote ((solver :: args) @ [ path ]))
        ^ " > " ^ Filename.quote out ^ " 2>&1"
      in
      let code = Sys.command cmd in
      let text = In_channel.with_open_text out In_channel.input_all in
      let first =
        String.split_on_char '\n' text
        |> List.map String.trim
        |> List.find_opt (fun l -> l <> "")
      in
      match first with
      | Some "sat" -> Sat
      | Some "unsat" -> Unsat
      | Some "unknown" -> Unknown
      (* z3's -T: soft timeout prints "timeout" instead of "unknown". *)
      | Some "timeout" -> Unknown
      | Some other -> Solver_error (Printf.sprintf "exit %d: %s" code other)
      | None -> Solver_error (Printf.sprintf "exit %d: no output" code))

module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Graph = Ssreset_graph.Graph

type ty = TInt | TBool | TEnum of string * string list
type site = Self | Nbr

type term =
  | Num of int
  | Bool of bool
  | Param of string
  | Var of site * string
  | Add of term * term
  | Sub of term * term
  | Neg of term
  | Ite of form * term * term
  | Ctor of string
  | Min_nbr of form * term * term
  | Mex_nbr of form * term
  | Count_nbr of form

and form =
  | Const of bool
  | Not of form
  | And of form list
  | Or of form list
  | Imp of form * form
  | Eq of term * term
  | Le of term * term
  | Lt of term * term
  | Forall_nbr of form
  | Exists_nbr of form

type assign = string * term
type rule = { rule : string; guard : form; assigns : assign list }
type param = { pname : string; lower : int option }

type ir = {
  ir_name : string;
  fields : (string * ty) list;
  params : param list;
  ranges : (string * term * term) list;
  rules : rule list;
}

type cert_spec = { cs_name : string; cs_rules : string list; cs_local : term }

type rank_spec = {
  rk_name : string;
  rk_rules : string list;
  rk_components : term list;
}

type spec = {
  sp_ir : ir;
  sp_legitimate : form option;
  sp_p_icorrect : form option;
  sp_p_reset : form option;
  sp_reset : assign list option;
  sp_cert : cert_spec option;
  sp_rank : rank_spec option;
}

let spec_of_ir ir =
  { sp_ir = ir;
    sp_legitimate = None;
    sp_p_icorrect = None;
    sp_p_reset = None;
    sp_reset = None;
    sp_cert = None;
    sp_rank = None }

(* --- values and evaluation ------------------------------------------- *)

type value = VInt of int | VBool of bool | VEnum of string

let value_equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | VEnum x, VEnum y -> String.equal x y
  | _ -> false

let pp_value ppf = function
  | VInt i -> Fmt.int ppf i
  | VBool b -> Fmt.bool ppf b
  | VEnum c -> Fmt.string ppf c

exception Ill_formed of string

let ill fmt = Fmt.kstr (fun m -> raise (Ill_formed m)) fmt

type venv = {
  ve_params : (string * int) list;
  ve_self : (string * value) list;
  ve_nbrs : (string * value) list array;
  ve_cur : int option;
}

let lookup fields f =
  match List.assoc_opt f fields with
  | Some v -> v
  | None -> ill "unknown field %s" f

let as_int = function
  | VInt i -> i
  | v -> ill "expected an integer, got %a" pp_value v

let rec eval_term env = function
  | Num i -> VInt i
  | Bool b -> VBool b
  | Param p -> (
      match List.assoc_opt p env.ve_params with
      | Some v -> VInt v
      | None -> ill "unknown parameter %s" p)
  | Var (Self, f) -> lookup env.ve_self f
  | Var (Nbr, f) -> (
      match env.ve_cur with
      | Some i -> lookup env.ve_nbrs.(i) f
      | None -> ill "Nbr field %s outside a neighborhood quantifier" f)
  | Add (a, b) -> VInt (as_int (eval_term env a) + as_int (eval_term env b))
  | Sub (a, b) -> VInt (as_int (eval_term env a) - as_int (eval_term env b))
  | Neg a -> VInt (-as_int (eval_term env a))
  | Ite (c, a, b) ->
      if eval_form_env env c then eval_term env a else eval_term env b
  | Ctor c -> VEnum c
  | Min_nbr (filt, body, dflt) ->
      let best = ref None in
      for i = 0 to Array.length env.ve_nbrs - 1 do
        let e = { env with ve_cur = Some i } in
        if eval_form_env e filt then begin
          let v = as_int (eval_term e body) in
          match !best with
          | Some b when b <= v -> ()
          | _ -> best := Some v
        end
      done;
      (match !best with Some v -> VInt v | None -> eval_term env dflt)
  | Mex_nbr (filt, body) ->
      (* Least c >= 0 such that no qualifying neighbor's body equals c.
         At most [deg] neighbors qualify, so the answer is <= deg. *)
      let used = ref [] in
      for i = 0 to Array.length env.ve_nbrs - 1 do
        let e = { env with ve_cur = Some i } in
        if eval_form_env e filt then
          used := as_int (eval_term e body) :: !used
      done;
      let c = ref 0 in
      while List.mem !c !used do
        incr c
      done;
      VInt !c
  | Count_nbr filt ->
      let k = ref 0 in
      for i = 0 to Array.length env.ve_nbrs - 1 do
        if eval_form_env { env with ve_cur = Some i } filt then incr k
      done;
      VInt !k

and eval_form_env env = function
  | Const b -> b
  | Not f -> not (eval_form_env env f)
  | And fs -> List.for_all (eval_form_env env) fs
  | Or fs -> List.exists (eval_form_env env) fs
  | Imp (a, b) -> (not (eval_form_env env a)) || eval_form_env env b
  | Eq (a, b) -> value_equal (eval_term env a) (eval_term env b)
  | Le (a, b) -> as_int (eval_term env a) <= as_int (eval_term env b)
  | Lt (a, b) -> as_int (eval_term env a) < as_int (eval_term env b)
  | Forall_nbr f ->
      let ok = ref true in
      for i = 0 to Array.length env.ve_nbrs - 1 do
        if !ok then ok := eval_form_env { env with ve_cur = Some i } f
      done;
      !ok
  | Exists_nbr f ->
      let hit = ref false in
      for i = 0 to Array.length env.ve_nbrs - 1 do
        if not !hit then hit := eval_form_env { env with ve_cur = Some i } f
      done;
      !hit

let env ~params ~self ~nbrs =
  { ve_params = params; ve_self = self; ve_nbrs = nbrs; ve_cur = None }

let eval_form ~params ~self ~nbrs f = eval_form_env (env ~params ~self ~nbrs) f

let eval_rule_enabled ~params ~self ~nbrs r =
  eval_form ~params ~self ~nbrs r.guard

let eval_rule_apply ~params ~fields ~self ~nbrs r =
  let e = env ~params ~self ~nbrs in
  List.map
    (fun (f, _) ->
      match List.assoc_opt f r.assigns with
      | Some t -> (f, eval_term e t)
      | None -> (f, lookup self f))
    fields

let rec subst_self_term assigns = function
  | (Num _ | Bool _ | Param _ | Ctor _ | Var (Nbr, _)) as t -> t
  | Var (Self, f) as t -> (
      match List.assoc_opt f assigns with Some t' -> t' | None -> t)
  | Add (a, b) -> Add (subst_self_term assigns a, subst_self_term assigns b)
  | Sub (a, b) -> Sub (subst_self_term assigns a, subst_self_term assigns b)
  | Neg a -> Neg (subst_self_term assigns a)
  | Ite (c, a, b) ->
      Ite
        ( subst_self_form assigns c,
          subst_self_term assigns a,
          subst_self_term assigns b )
  | Min_nbr (filt, body, dflt) ->
      Min_nbr
        ( subst_self_form assigns filt,
          subst_self_term assigns body,
          subst_self_term assigns dflt )
  | Mex_nbr (filt, body) ->
      Mex_nbr (subst_self_form assigns filt, subst_self_term assigns body)
  | Count_nbr filt -> Count_nbr (subst_self_form assigns filt)

and subst_self_form assigns = function
  | Const _ as f -> f
  | Not f -> Not (subst_self_form assigns f)
  | And fs -> And (List.map (subst_self_form assigns) fs)
  | Or fs -> Or (List.map (subst_self_form assigns) fs)
  | Imp (a, b) -> Imp (subst_self_form assigns a, subst_self_form assigns b)
  | Eq (a, b) -> Eq (subst_self_term assigns a, subst_self_term assigns b)
  | Le (a, b) -> Le (subst_self_term assigns a, subst_self_term assigns b)
  | Lt (a, b) -> Lt (subst_self_term assigns a, subst_self_term assigns b)
  | Forall_nbr f -> Forall_nbr (subst_self_form assigns f)
  | Exists_nbr f -> Exists_nbr (subst_self_form assigns f)

let subst_self assigns f = subst_self_form assigns f

(* --- static lint ------------------------------------------------------ *)

let well_formed ir =
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun m -> errors := m :: !errors) fmt in
  let field_ok f = List.mem_assoc f ir.fields in
  let param_ok p = List.exists (fun q -> q.pname = p) ir.params in
  let rec walk_term ~ctx ~depth ~allow_fields = function
    | Num _ | Bool _ | Ctor _ -> ()
    | Param p -> if not (param_ok p) then err "%s: unknown parameter %s" ctx p
    | Var (site, f) ->
        if not allow_fields then err "%s: field %s in a closed term" ctx f
        else if not (field_ok f) then err "%s: unknown field %s" ctx f
        else if site = Nbr && depth = 0 then
          err "%s: Nbr field %s outside a neighborhood quantifier" ctx f
    | Add (a, b) | Sub (a, b) ->
        walk_term ~ctx ~depth ~allow_fields a;
        walk_term ~ctx ~depth ~allow_fields b
    | Neg a -> walk_term ~ctx ~depth ~allow_fields a
    | Ite (c, a, b) ->
        walk_form ~ctx ~depth ~allow_fields c;
        walk_term ~ctx ~depth ~allow_fields a;
        walk_term ~ctx ~depth ~allow_fields b
    | Min_nbr (filt, body, dflt) ->
        walk_form ~ctx ~depth:(depth + 1) ~allow_fields filt;
        walk_term ~ctx ~depth:(depth + 1) ~allow_fields body;
        walk_term ~ctx ~depth ~allow_fields dflt
    | Mex_nbr (filt, body) ->
        walk_form ~ctx ~depth:(depth + 1) ~allow_fields filt;
        walk_term ~ctx ~depth:(depth + 1) ~allow_fields body
    | Count_nbr filt -> walk_form ~ctx ~depth:(depth + 1) ~allow_fields filt
  and walk_form ~ctx ~depth ~allow_fields = function
    | Const _ -> ()
    | Not f -> walk_form ~ctx ~depth ~allow_fields f
    | And fs | Or fs -> List.iter (walk_form ~ctx ~depth ~allow_fields) fs
    | Imp (a, b) ->
        walk_form ~ctx ~depth ~allow_fields a;
        walk_form ~ctx ~depth ~allow_fields b
    | Eq (a, b) | Le (a, b) | Lt (a, b) ->
        walk_term ~ctx ~depth ~allow_fields a;
        walk_term ~ctx ~depth ~allow_fields b
    | Forall_nbr f | Exists_nbr f ->
        walk_form ~ctx ~depth:(depth + 1) ~allow_fields f
  in
  let names = List.map (fun r -> r.rule) ir.rules in
  if List.length (List.sort_uniq compare names) <> List.length names then
    err "%s: duplicate rule names" ir.ir_name;
  List.iter
    (fun r ->
      let ctx = Printf.sprintf "%s/%s" ir.ir_name r.rule in
      walk_form ~ctx:(ctx ^ " guard") ~depth:0 ~allow_fields:true r.guard;
      List.iter
        (fun (f, t) ->
          if not (field_ok f) then err "%s: assign to unknown field %s" ctx f;
          walk_term ~ctx:(ctx ^ " assign " ^ f) ~depth:0 ~allow_fields:true t)
        r.assigns)
    ir.rules;
  List.iter
    (fun (f, lo, hi) ->
      let ctx = Printf.sprintf "%s range %s" ir.ir_name f in
      if not (field_ok f) then err "%s: unknown field" ctx;
      walk_term ~ctx ~depth:0 ~allow_fields:false lo;
      walk_term ~ctx ~depth:0 ~allow_fields:false hi)
    ir.ranges;
  List.rev !errors

(* --- instances -------------------------------------------------------- *)

module type INSTANCE = sig
  type state

  val spec : spec
  val param_values : (string * int) list
  val algorithm : state Algorithm.t
  val graph : Graph.t
  val domain : int -> state list
  val encode : state -> (string * value) list
  val is_legitimate : (state array -> bool) option
end

type instance = (module INSTANCE)

let make_instance (type s) ~spec ~params
    ~(algorithm : s Algorithm.t) ~graph ~domain ~encode ?is_legitimate () :
    instance =
  (module struct
    type state = s

    let spec = spec
    let param_values = params
    let algorithm = algorithm
    let graph = graph
    let domain = domain
    let encode = encode
    let is_legitimate = is_legitimate
  end)

(* --- mismatch accounting ---------------------------------------------- *)

type mismatch = {
  where : string;
  rules : string list;
  detail : string;
  count : int;
}

type diff = {
  views : int;
  steps : int;
  daemons : int;
  mismatches : mismatch list;
}

let diff_ok d = d.mismatches = []

let pp_mismatch ppf m =
  Fmt.pf ppf "[%s] %a — %d occurrence(s), e.g. %s" m.where
    Fmt.(list ~sep:(any ", ") string)
    m.rules m.count m.detail

let sort_mismatches ms =
  List.sort (fun a b -> compare (a.where, a.rules) (b.where, b.rules)) ms

let merge_diffs ds =
  let table = Hashtbl.create 16 in
  List.iter
    (fun d ->
      List.iter
        (fun m ->
          match Hashtbl.find_opt table (m.where, m.rules) with
          | None -> Hashtbl.add table (m.where, m.rules) m
          | Some prior ->
              Hashtbl.replace table (m.where, m.rules)
                { prior with count = prior.count + m.count })
        d.mismatches)
    ds;
  { views = List.fold_left (fun acc d -> acc + d.views) 0 ds;
    steps = List.fold_left (fun acc d -> acc + d.steps) 0 ds;
    daemons = List.fold_left (fun acc d -> acc + d.daemons) 0 ds;
    mismatches =
      Hashtbl.fold (fun _ m acc -> m :: acc) table [] |> sort_mismatches }

(* A recorder with one witness per (where, rules) and summed counts. *)
let recorder () =
  let table = Hashtbl.create 16 in
  let record ~where ~rules detail =
    let rules = List.sort_uniq compare rules in
    match Hashtbl.find_opt table (where, rules) with
    | Some (_, count) -> incr count
    | None -> Hashtbl.add table (where, rules) (detail (), ref 1)
  in
  let dump () =
    Hashtbl.fold
      (fun (where, rules) (detail, count) acc ->
        { where; rules; detail; count = !count } :: acc)
      table []
    |> sort_mismatches
  in
  (record, dump)

(* --- view-space differential ----------------------------------------- *)

let space_total dims =
  Array.fold_left (fun acc d -> acc * Array.length d) 1 dims

let decode dims idx =
  let digits = Array.make (Array.length dims) 0 in
  let rest = ref idx in
  Array.iteri
    (fun i d ->
      let len = Array.length d in
      digits.(i) <- !rest mod len;
      rest := !rest / len)
    dims;
  digits

let pp_valuation ppf vals =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any " ") (pair ~sep:(any "=") string pp_value))
    vals

let run_views (type s) ~max_views_per_process
    (module I : INSTANCE with type state = s) =
  let ir = I.spec.sp_ir in
  let (record, dump) = recorder () in
  List.iter
    (fun e -> record ~where:"static" ~rules:[] (fun () -> e))
    (well_formed ir);
  let concrete_names =
    List.map (fun r -> r.Algorithm.rule_name) I.algorithm.Algorithm.rules
  and ir_names = List.map (fun r -> r.rule) ir.rules in
  if concrete_names <> ir_names then
    record ~where:"static" ~rules:ir_names (fun () ->
        Fmt.str "IR rules [%a] do not match algorithm rules [%a]"
          Fmt.(list ~sep:(any "; ") string)
          ir_names
          Fmt.(list ~sep:(any "; ") string)
          concrete_names);
  (* Pairs comparable by name, independent of order mismatches above. *)
  let pairs =
    List.filter_map
      (fun (r : s Algorithm.rule) ->
        List.find_opt (fun sr -> sr.rule = r.Algorithm.rule_name) ir.rules
        |> Option.map (fun sr -> (r, sr)))
      I.algorithm.Algorithm.rules
  in
  let n = Graph.n I.graph in
  let pp_view ppf (v : s Algorithm.view) =
    Fmt.pf ppf "@[<h>self=%a nbrs=[%a]@]" I.algorithm.Algorithm.pp
      v.Algorithm.state
      Fmt.(array ~sep:(any " ") I.algorithm.Algorithm.pp)
      v.Algorithm.nbrs
  in
  (* Seed-domain states must satisfy the declared ranges: the emitted
     range axioms are assumptions, so a domain state outside them would
     make the SMT obligations vacuously strong. *)
  let range_env self =
    { ve_params = I.param_values;
      ve_self = self;
      ve_nbrs = [||];
      ve_cur = None }
  in
  for u = 0 to n - 1 do
    List.iter
      (fun s ->
        let self = I.encode s in
        let e = range_env self in
        List.iter
          (fun (f, lo, hi) ->
            let v = as_int (lookup self f) in
            if
              v < as_int (eval_term e lo) || v >= as_int (eval_term e hi)
            then
              record ~where:"range" ~rules:[] (fun () ->
                  Fmt.str "domain state %a of process %d has %s = %d \
                           outside the declared range"
                    I.algorithm.Algorithm.pp s u f v))
          ir.ranges)
      (I.domain u)
  done;
  let views = ref 0 in
  for u = 0 to n - 1 do
    let nbrs = Graph.neighbors I.graph u in
    let dims =
      Array.init
        (1 + Array.length nbrs)
        (fun i ->
          Array.of_list (I.domain (if i = 0 then u else nbrs.(i - 1))))
    in
    let total = space_total dims in
    let count = min total max_views_per_process in
    let stride = if total <= count then 1 else total / count in
    for k = 0 to count - 1 do
      let digits = decode dims (k * stride) in
      let view =
        { Algorithm.state = dims.(0).(digits.(0));
          nbrs =
            Array.init (Array.length nbrs) (fun i ->
                dims.(i + 1).(digits.(i + 1))) }
      in
      incr views;
      let self = I.encode view.Algorithm.state in
      let enc_nbrs = Array.map I.encode view.Algorithm.nbrs in
      List.iter
        (fun ((r : s Algorithm.rule), sr) ->
          match
            let concrete = r.Algorithm.guard view in
            let symbolic =
              eval_rule_enabled ~params:I.param_values ~self ~nbrs:enc_nbrs
                sr
            in
            if concrete <> symbolic then
              record ~where:"views" ~rules:[ sr.rule ] (fun () ->
                  Fmt.str "guard disagrees (OCaml %b, IR %b) on %a" concrete
                    symbolic pp_view view)
            else if concrete then begin
              let post = I.encode (r.Algorithm.action view) in
              let sym_post =
                eval_rule_apply ~params:I.param_values ~fields:ir.fields
                  ~self ~nbrs:enc_nbrs sr
              in
              if
                not
                  (List.for_all
                     (fun (f, _) ->
                       value_equal (lookup post f) (lookup sym_post f))
                     ir.fields)
              then
                record ~where:"views" ~rules:[ sr.rule ] (fun () ->
                    Fmt.str "post-state disagrees (OCaml %a, IR %a) on %a"
                      pp_valuation post pp_valuation sym_post pp_view view);
              (* Ranking differential: on every enabled view of a covered
                 rule, the claimed lexicographic rank must be bounded below
                 by 0 on both sides of the move and strictly decrease for
                 the mover — the concrete shadow of the rank-decrease SMT
                 obligations ({!Obligation}).  Components read [Self]
                 fields only, so the mover's tuple is all that changes. *)
              (match I.spec.sp_rank with
              | Some rk when List.mem sr.rule rk.rk_rules ->
                  let tuple st =
                    List.map
                      (fun c -> as_int (eval_term (range_env st) c))
                      rk.rk_components
                  in
                  let pre_t = tuple self and post_t = tuple post in
                  let rec lex_lt a b =
                    match (a, b) with
                    | [], [] -> false
                    | x :: xs, y :: ys ->
                        x < y || (x = y && lex_lt xs ys)
                    | _ -> false
                  in
                  if
                    List.exists (fun v -> v < 0) pre_t
                    || List.exists (fun v -> v < 0) post_t
                  then
                    record ~where:"rank" ~rules:[ sr.rule ] (fun () ->
                        Fmt.str
                          "rank %s not bounded below (pre [%a], post [%a]) \
                           on %a"
                          rk.rk_name
                          Fmt.(list ~sep:(any " ") int)
                          pre_t
                          Fmt.(list ~sep:(any " ") int)
                          post_t pp_view view)
                  else if not (lex_lt post_t pre_t) then
                    record ~where:"rank" ~rules:[ sr.rule ] (fun () ->
                        Fmt.str
                          "rank %s does not strictly decrease (pre [%a], \
                           post [%a]) on %a"
                          rk.rk_name
                          Fmt.(list ~sep:(any " ") int)
                          pre_t
                          Fmt.(list ~sep:(any " ") int)
                          post_t pp_view view)
              | _ -> ())
            end
          with
          | () -> ()
          | exception Ill_formed msg ->
              record ~where:"views" ~rules:[ sr.rule ] (fun () ->
                  Fmt.str "IR evaluation failed: %s on %a" msg pp_view view))
        pairs
    done
  done;
  { views = !views; steps = 0; daemons = 0; mismatches = dump () }

let differential_views ?(max_views_per_process = 2000) (inst : instance) =
  let (module I) = inst in
  run_views ~max_views_per_process (module I)

(* --- daemon-driven differential --------------------------------------- *)

let run_daemons (type s) ~max_steps ~seeds
    (module I : INSTANCE with type state = s) =
  let ir = I.spec.sp_ir in
  let (record, dump) = recorder () in
  let g = I.graph in
  let n = Graph.n g in
  let domains = Array.init n (fun u -> Array.of_list (I.domain u)) in
  let rule_by_name name =
    List.find_opt (fun sr -> sr.rule = name) ir.rules
  in
  let steps = ref 0 in
  let daemons = Daemon.registry () in
  List.iter
    (fun (dname, (daemon : Daemon.t)) ->
      let where = "daemon " ^ dname in
      List.iter
        (fun seed ->
          let rng =
            Random.State.make [| 0x5347; seed; Hashtbl.hash dname |]
          in
          let cfg =
            Array.init n (fun u ->
                domains.(u).(Random.State.int rng (Array.length domains.(u))))
          in
          (try
             let step = ref 0 in
             let continue = ref true in
             while !continue && !step < max_steps do
               let views = Algorithm.views g cfg in
               let enc = Array.map I.encode cfg in
               let enc_view u =
                 ( enc.(u),
                   Array.map (fun v -> enc.(v)) (Graph.neighbors g u) )
               in
               (* Enabled set (process + first enabled rule name), both ways. *)
               let concrete =
                 List.filter_map
                   (fun u ->
                     Algorithm.enabled_rule I.algorithm views.(u)
                     |> Option.map (fun (r : s Algorithm.rule) ->
                            (u, r.Algorithm.rule_name)))
                   (List.init n Fun.id)
               in
               let symbolic =
                 List.filter_map
                   (fun u ->
                     let self, nbrs = enc_view u in
                     List.find_opt
                       (fun sr ->
                         eval_rule_enabled ~params:I.param_values ~self ~nbrs
                           sr)
                       ir.rules
                     |> Option.map (fun sr -> (u, sr.rule)))
                   (List.init n Fun.id)
               in
               if concrete <> symbolic then
                 record ~where
                   ~rules:(List.sort_uniq compare (List.map snd concrete))
                   (fun () ->
                     Fmt.str
                       "enabled set disagrees at step %d (OCaml %a, IR %a)"
                       !step
                       Fmt.(
                         list ~sep:(any " ")
                           (pair ~sep:(any ":") int string))
                       concrete
                       Fmt.(
                         list ~sep:(any " ")
                           (pair ~sep:(any ":") int string))
                       symbolic);
               (* Legitimacy predicate cross-check, when both sides have one. *)
               (match (I.is_legitimate, I.spec.sp_legitimate) with
               | Some concrete_legit, Some form ->
                   let sym_legit =
                     try
                       Array.for_all Fun.id
                         (Array.init n (fun u ->
                              let self, nbrs = enc_view u in
                              eval_form ~params:I.param_values ~self ~nbrs
                                form))
                     with Ill_formed msg ->
                       record ~where:"legitimate" ~rules:[] (fun () -> msg);
                       concrete_legit cfg
                   in
                   if sym_legit <> concrete_legit cfg then
                     record ~where:"legitimate" ~rules:[] (fun () ->
                         Fmt.str
                           "legitimacy disagrees at step %d under %s \
                            (OCaml %b, IR form %b)"
                           !step dname (concrete_legit cfg) sym_legit)
               | _ -> ());
               match concrete with
               | [] -> continue := false
               | _ ->
                   let enabled = List.map fst concrete in
                   let ctx =
                     { Daemon.step = !step;
                       graph = g;
                       enabled;
                       rule_name = (fun u -> List.assoc u concrete) }
                   in
                   let selection = daemon.Daemon.select rng ctx in
                   Daemon.check_selection ctx selection;
                   (* Composite atomicity: all movers act on the pre-state. *)
                   let updates =
                     List.map
                       (fun u ->
                         let r =
                           Option.get
                             (Algorithm.enabled_rule I.algorithm views.(u))
                         in
                         let post = r.Algorithm.action views.(u) in
                         (match rule_by_name r.Algorithm.rule_name with
                         | None -> ()
                         | Some sr ->
                             let self, nbrs = enc_view u in
                             let sym_post =
                               eval_rule_apply ~params:I.param_values
                                 ~fields:ir.fields ~self ~nbrs sr
                             in
                             let enc_post = I.encode post in
                             if
                               not
                                 (List.for_all
                                    (fun (f, _) ->
                                      value_equal (lookup enc_post f)
                                        (lookup sym_post f))
                                    ir.fields)
                             then
                               record ~where ~rules:[ sr.rule ] (fun () ->
                                   Fmt.str
                                     "mover %d post-state disagrees at step \
                                      %d (OCaml %a, IR %a)"
                                     u !step pp_valuation enc_post
                                     pp_valuation sym_post));
                         (u, post))
                       selection
                   in
                   List.iter (fun (u, s) -> cfg.(u) <- s) updates;
                   incr step;
                   incr steps
             done
           with Ill_formed msg ->
             record ~where ~rules:[] (fun () ->
                 Fmt.str "IR evaluation failed: %s" msg)))
        seeds)
    daemons;
  { views = 0;
    steps = !steps;
    daemons = List.length daemons;
    mismatches = dump () }

let differential_daemons ?(max_steps = 50) ?(seeds = [ 0; 1 ])
    (inst : instance) =
  let (module I) = inst in
  run_daemons ~max_steps ~seeds (module I)

let check ?max_views_per_process ?max_steps inst =
  merge_diffs
    [ differential_views ?max_views_per_process inst;
      differential_daemons ?max_steps inst ]

(** Graph automorphisms and orbit canonicalization of configurations.

    Self-stabilization properties are invariant under graph automorphisms
    whenever the algorithm is {e anonymous}: every process runs the same
    rules, the per-process seed domains coincide, and guards/actions are
    neighbor-order independent (the {!Lint} permutation pass checks the
    latter).  Two configurations related by an automorphism then generate
    isomorphic transition systems, so the model checker only needs one
    representative per orbit — a reduction by up to [|Aut(G)|] (720 on K6).

    The canonical representative of a configuration [cfg] (an int array of
    state ids) is the lexicographically smallest relabeling
    [i ↦ cfg.(p.(i))] over all automorphisms [p].  When the automorphism
    group is exactly a Young subgroup — the full symmetric group on each
    vertex orbit, detected by [|Aut| = Π |orbit|!] as on complete graphs
    and stars — canonicalization degenerates to sorting within orbits and
    canonical seeds are enumerated directly without rejection. *)

type t

val of_graph : Ssreset_graph.Graph.t -> t
(** Compute the full automorphism group by brute force over vertex
    permutations — fine for the checker's graphs ([n ≤ 6], at most 720
    candidates). *)

val order : t -> int
(** [|Aut(G)|]; [1] means the graph is asymmetric and reduction is
    pointless. *)

val auts : t -> int array array
(** All automorphisms as permutation arrays; [auts.(0)] is the identity. *)

val canonicalize : t -> int array -> int array
(** [canonicalize t cfg] is a fresh array holding the lexicographically
    smallest [i ↦ cfg.(p.(i))] over all automorphisms [p]. *)

val iter_canonical : t -> arity:int -> (int array -> unit) -> unit
(** [iter_canonical t ~arity f] enumerates exactly the canonical
    representatives of the orbits of [{0..arity-1}^n] (digit arrays over a
    common per-vertex domain), calling [f] on each.  The array passed to
    [f] is reused between calls — copy it.  Enumeration is a DFS over
    prefix assignments, pruned by the automorphisms that preserve the
    assigned prefix; on Young groups it generates canonical arrays
    directly (sorted within orbits) with no rejection at all. *)

val transport : int array -> int -> int
(** [transport p m] maps a bit mask from canonical coordinates to raw
    coordinates: bit [i] of [m] becomes bit [p.(i)].  Used by the rounds
    DP to carry pending-process sets across the relabeling applied when a
    successor was canonicalized ({!Model}). *)

val untransport : int array -> int -> int
(** Inverse of {!transport}: bit [p.(i)] of [m] becomes bit [i]. *)

(** Potential-function convergence certificates.

    A certificate attaches a ranking function to a finite instance: a map
    from configurations to tuples of non-negative integers, compared
    lexicographically.  The model checker ({!Model}) evaluates it on every
    explored transition whose source configuration is illegitimate and
    whose movers all fired rules covered by the certificate, and reports a
    ["certificate"] violation unless the potential strictly decreases.

    Unlike the enumerated verdicts, a checked certificate is evidence for
    a convergence {e argument} whose shape is independent of the explored
    n: the same closed-form measure is what a pen-and-paper proof would
    induct on.  Certificates may be scoped to a subset of rules
    ([rules]) because for reset-style dynamics no simple closed-form
    measure decreases under {e every} rule (clock ticks wrap; SDR waves
    re-cycle C → RB → RF → C while an error propagates) — the provable
    measures are per-layer progress certificates: e.g. the number of
    unfinished wave obligations under the SDR completion rules, or the
    climb debt under the unison reconstruction rule.  [rules = None]
    covers all rules. *)

type 's t = {
  cert_name : string;
  cert_rules : string list option;
      (** rule names the certificate covers; [None] = every rule.  A
          transition is checked when all movers fired covered rules. *)
  potential : Ssreset_graph.Graph.t -> 's array -> int list;
      (** ranking tuple of a configuration, compared lexicographically;
          must return a fixed length for a given instance. *)
}

val make :
  name:string ->
  ?rules:string list ->
  (Ssreset_graph.Graph.t -> 's array -> int list) ->
  's t

val covers : 's t -> string -> bool
(** [covers c rule] — is a move by [rule] within the certificate's scope? *)

val lex_lt : int list -> int list -> bool
(** Strict lexicographic order; tuples of different lengths are never
    ordered (forcing a violation rather than a silent pass). *)

val pp_potential : int list Fmt.t

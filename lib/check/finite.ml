module Graph = Ssreset_graph.Graph
module Sdr = Ssreset_core.Sdr

module type FINITE = sig
  type state

  val name : string
  val algorithm : state Ssreset_sim.Algorithm.t
  val graph : Ssreset_graph.Graph.t
  val domain : int -> state list
  val is_legitimate : state array -> bool
  val terminal_ok : state array -> bool
  val certificate : state Cert.t option
end

type t = (module FINITE)

let make (type s) ~name ~(algorithm : s Ssreset_sim.Algorithm.t) ~graph
    ~domain ~legitimate ?terminal_ok ?certificate () : t =
  let terminal_ok = Option.value ~default:legitimate terminal_ok in
  (module struct
    type state = s

    let name = name
    let algorithm = algorithm
    let graph = graph
    let domain = domain
    let is_legitimate cfg = legitimate graph cfg
    let terminal_ok cfg = terminal_ok graph cfg
    let certificate = certificate
  end)

let sdr_domain ~inner ~max_d u =
  let inner_states = inner u in
  List.concat_map
    (fun st ->
      List.concat_map
        (fun d -> List.map (fun i -> { Sdr.st; d; inner = i }) inner_states)
        (List.init (max_d + 1) Fun.id))
    [ Sdr.C; Sdr.RB; Sdr.RF ]

let seed_count (module F : FINITE) =
  let n = Graph.n F.graph in
  let total = ref 1 in
  for u = 0 to n - 1 do
    total := !total * List.length (F.domain u)
  done;
  !total

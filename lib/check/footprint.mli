(** Footprint and non-interference analysis of rule sets.

    Every rule of an [Algorithm.t] is evaluated on probing views: for each
    sampled view, each site of the closed neighborhood (self or a
    neighbor) and each declared state {e field}, the site's state is
    replaced by every domain state differing in exactly that field, and
    the guard verdict and action result are compared.  A difference means
    the rule {e reads} that field at that site; an enabled action whose
    output differs from the input on a field {e writes} it.  (Locality —
    guards consult only the closed neighborhood — holds by construction:
    a [view] contains nothing else.  The footprint table makes the use of
    that neighborhood explicit per rule.)

    Action reads on the process's own state discount pass-through: copying
    an untouched field into the output is not a read.  Precisely, rule [r]
    reads own-field [f] through its action iff for some probe [v → v']
    either the outputs differ on a field other than [f], or they differ on
    [f] itself in a way not explained by both outputs copying their
    inputs.  {!differential} re-evaluates the same predicates on random
    probes, so a recorded footprint can be falsified but not argued with.

    For composed [I ∘ SDR] targets ({!sdr_target}) the same probes decide
    the paper's non-interference requirements (§3.5), promoting the
    dynamic {!Ssreset_core.Requirements} spot checks to a whole-view-space
    pass:

    - ["write-escape"]: an enabled input rule changes an SDR field;
    - ["input-gating"]: an input rule is enabled outside [P_Clean];
    - ["read-escape"]: on [P_Clean]-preserving probes of an SDR field, an
      input rule's verdict or inner output changes — the input layer reads
      SDR variables;
    - ["sdr-read"]: an SDR rule distinguishes inner states beyond the
      sanctioned [P_reset]/[P_ICorrect] channels (the probe preserves
      both, yet the verdict or the st/d output changes);
    - ["sdr-write"]: an enabled SDR rule changes the inner state other
      than by [reset];
    - ["reset-determinism" | "reset-idempotent" | "reset-escape"]:
      [reset] disagrees with itself, moves a reset state, or lands
      outside [P_reset] (Requirements 2b and 2e). *)

type 's composition = {
  sdr_rules : string list;  (** rule names owned by the SDR layer *)
  sdr_fields : string list;  (** fields owned by the SDR layer *)
  same_sdr : 's -> 's -> bool;  (** agree on every SDR field *)
  same_inner : 's -> 's -> bool;  (** agree on the input layer's state *)
  reset_inner : 's -> 's;  (** apply [I.reset] to the inner component *)
  landed : 's -> bool;  (** [I.p_reset] of the inner component *)
  p_icorrect : 's Ssreset_sim.Algorithm.view -> bool;
  p_clean : 's Ssreset_sim.Algorithm.view -> bool;
}

module type TARGET = sig
  type state

  val name : string
  val algorithm : state Ssreset_sim.Algorithm.t
  val graph : Ssreset_graph.Graph.t
  val domain : int -> state list

  val fields : (string * (state -> state -> bool)) list
  (** [(name, same)] per field; [same a b] — do [a] and [b] agree on the
      field?  Fields must jointly separate states: two states agreeing on
      every field are equal. *)

  val composition : state composition option
end

type target = (module TARGET)

val target :
  name:string ->
  algorithm:'s Ssreset_sim.Algorithm.t ->
  graph:Ssreset_graph.Graph.t ->
  domain:(int -> 's list) ->
  ?fields:(string * ('s -> 's -> bool)) list ->
  ?composition:'s composition ->
  unit ->
  target
(** [fields] defaults to the single field [("state", equal)]. *)

val of_finite : Finite.t -> target
(** Derive a monolithic single-field target from a checker instance. *)

val sdr_target :
  (module Ssreset_core.Sdr.INPUT with type state = 'i) ->
  name:string ->
  algorithm:'i Ssreset_core.Sdr.state Ssreset_sim.Algorithm.t ->
  graph:Ssreset_graph.Graph.t ->
  domain:(int -> 'i Ssreset_core.Sdr.state list) ->
  target
(** Composed target with fields [st], [d], [inner] and the full
    non-interference [composition] derived from the input module. *)

type rule_footprint = {
  rule : string;
  guard_self : string list;  (** fields the guard reads on the own state *)
  guard_nbrs : string list;  (** fields the guard reads on neighbor states *)
  action_self : string list;
  action_nbrs : string list;
  writes : string list;  (** own-state fields the action modifies *)
}

type finding = {
  check : string;
  rules : string list;
  witness : string;
  count : int;
}

type t = {
  target_name : string;
  fields : string list;
  composed : bool;
  rules : rule_footprint list;
  findings : finding list;  (** empty = the pass is clean *)
  views : int;  (** probed (view, site, field) bases *)
}

val analyze : ?max_views_per_process:int -> target -> t
(** Sampled sweep (default 2000 views per process, strided uniformly when
    the space is larger); every variant of every sampled view is probed. *)

val merge : t list -> t
(** Union of footprints and findings across graphs of one instance;
    [views] accumulates.  Raises [Invalid_argument] on an empty list. *)

val differential :
  ?trials:int -> seed:int -> target -> t -> string option
(** Randomized refutation of a recorded footprint: [trials] (default 500)
    random probes; [Some description] when a probe exhibits a read outside
    the recorded footprint.  Sound against a full-coverage [analyze] of
    the same target. *)

val pp : t Fmt.t
val pp_finding : finding Fmt.t

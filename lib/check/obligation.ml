module Json = Ssreset_obs.Json
module SS = Set.Make (String)

type family = Ring | Path | Star | Complete

let families = [ Ring; Path; Star; Complete ]

let family_to_string = function
  | Ring -> "ring"
  | Path -> "path"
  | Star -> "star"
  | Complete -> "complete"

let family_of_string = function
  | "ring" -> Some Ring
  | "path" -> Some Path
  | "star" -> Some Star
  | "complete" -> Some Complete
  | _ -> None

type kind =
  | Closure
  | Cert_decrease of string
  | Range of string * string
  | Requirement of string
  | Rank of string
  | Composition of string

let kind_to_string = function
  | Closure -> "closure"
  | Cert_decrease _ -> "cert-decrease"
  | Range _ -> "range"
  | Requirement _ -> "requirement"
  | Rank _ -> "rank"
  | Composition _ -> "composition"

type t = {
  ob_algo : string;
  ob_family : family;
  ob_kind : kind;
  ob_name : string;
  ob_descr : string;
  ob_script : Smt.script;
}

(* --- compilation context ----------------------------------------------

   Needs are collected while compiling the goal assertions; the prelude
   (sorts, parameter constants, field functions, topology) then declares
   exactly what was mentioned, which is what {!Smt.lint_script}'s
   unused-declaration check demands. *)

type ctx = {
  ir : Sym.ir;
  mutable c_params : SS.t;
  mutable c_fields : SS.t;  (* pre-state functions *)
  mutable c_posts : SS.t;  (* post-state functions *)
  mutable c_edge : bool;
  mutable c_enums : SS.t;
  mutable c_moved : bool;
  mutable c_fresh : int;
  skolems : (Sym.term * bool, string) Hashtbl.t;
      (* (neighborhood-aggregate term, post flag) -> auxiliary function *)
  mutable c_sides : Smt.sexp list;  (* skolem decls + axioms, reversed *)
}

let new_ctx ir =
  { ir;
    c_params = SS.empty;
    c_fields = SS.empty;
    c_posts = SS.empty;
    c_edge = false;
    c_enums = SS.empty;
    c_moved = false;
    c_fresh = 0;
    skolems = Hashtbl.create 8;
    c_sides = [] }

let fresh ctx =
  let v = Printf.sprintf "v%d" ctx.c_fresh in
  ctx.c_fresh <- ctx.c_fresh + 1;
  v

let assert_ body = Smt.List [ Smt.Atom "assert"; body ]
let iatom i = Smt.Atom (string_of_int i)

let int_lit i =
  if i < 0 then Smt.app "-" [ iatom (-i) ] else iatom i

let forall1 v sort body =
  Smt.List
    [ Smt.Atom "forall";
      Smt.List [ Smt.List [ Smt.Atom v; Smt.Atom sort ] ];
      body ]

let exists1 v sort body =
  Smt.List
    [ Smt.Atom "exists";
      Smt.List [ Smt.List [ Smt.Atom v; Smt.Atom sort ] ];
      body ]

let forall2 u v sort body =
  Smt.List
    [ Smt.Atom "forall";
      Smt.List
        [ Smt.List [ Smt.Atom u; Smt.Atom sort ];
          Smt.List [ Smt.Atom v; Smt.Atom sort ] ];
      body ]

(* Mixed-sort binder list, e.g. [forall ((w Node) (k Int))]. *)
let forall_b binds body =
  Smt.List
    [ Smt.Atom "forall";
      Smt.List
        (List.map
           (fun (v, sort) -> Smt.List [ Smt.Atom v; Smt.Atom sort ])
           binds);
      body ]

let field_ty ctx f = List.assoc f ctx.ir.Sym.fields

let sort_of_ty = function
  | Sym.TInt -> "Int"
  | Sym.TBool -> "Bool"
  | Sym.TEnum (s, _) -> s

let mark_field ctx ~post f =
  (match field_ty ctx f with
  | Sym.TEnum (s, _) -> ctx.c_enums <- SS.add s ctx.c_enums
  | _ -> ());
  if post then ctx.c_posts <- SS.add f ctx.c_posts
  else ctx.c_fields <- SS.add f ctx.c_fields

let field_app ctx ~post f node =
  mark_field ctx ~post f;
  Smt.app (if post then f ^ "_post" else f) [ Smt.Atom node ]

(* [st] selects which state the field functions read: post-state reads
   apply to Self and Nbr alike (a global configuration predicate after a
   step). *)
let rec c_term ctx ~node ~cur ~post = function
  | Sym.Num i -> int_lit i
  | Sym.Bool b -> Smt.Atom (if b then "true" else "false")
  | Sym.Param p ->
      ctx.c_params <- SS.add p ctx.c_params;
      Smt.Atom p
  | Sym.Var (Sym.Self, f) -> field_app ctx ~post f node
  | Sym.Var (Sym.Nbr, f) -> (
      match cur with
      | Some v -> field_app ctx ~post f v
      | None -> invalid_arg "Obligation: Nbr outside a quantifier")
  | Sym.Add (a, b) ->
      Smt.app "+" [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Sub (a, b) ->
      Smt.app "-" [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Neg a -> Smt.app "-" [ c_term ctx ~node ~cur ~post a ]
  | Sym.Ite (c, a, b) ->
      Smt.app "ite"
        [ c_form ctx ~node ~cur ~post c;
          c_term ctx ~node ~cur ~post a;
          c_term ctx ~node ~cur ~post b ]
  | Sym.Ctor c ->
      (* A bare constructor can survive substitution even when every field
         of its enum type cancels out (e.g. reset-lands after substituting
         [m := Und] into [m = Und]), so register the sort here too. *)
      List.iter
        (fun (_, ty) ->
          match ty with
          | Sym.TEnum (s, ctors) when List.mem c ctors ->
              ctx.c_enums <- SS.add s ctx.c_enums
          | _ -> ())
        ctx.ir.Sym.fields;
      Smt.Atom c
  | (Sym.Min_nbr _ | Sym.Mex_nbr _ | Sym.Count_nbr _) as t ->
      Smt.app (skolem ctx ~post t) [ Smt.Atom node ]

and c_form ctx ~node ~cur ~post = function
  | Sym.Const true -> Smt.Atom "true"
  | Sym.Const false -> Smt.Atom "false"
  | Sym.Not f -> Smt.app "not" [ c_form ctx ~node ~cur ~post f ]
  | Sym.And [] -> Smt.Atom "true"
  | Sym.And [ f ] -> c_form ctx ~node ~cur ~post f
  | Sym.And fs -> Smt.app "and" (List.map (c_form ctx ~node ~cur ~post) fs)
  | Sym.Or [] -> Smt.Atom "false"
  | Sym.Or [ f ] -> c_form ctx ~node ~cur ~post f
  | Sym.Or fs -> Smt.app "or" (List.map (c_form ctx ~node ~cur ~post) fs)
  | Sym.Imp (a, b) ->
      Smt.app "=>"
        [ c_form ctx ~node ~cur ~post a; c_form ctx ~node ~cur ~post b ]
  | Sym.Eq (a, b) ->
      Smt.app "="
        [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Le (a, b) ->
      Smt.app "<="
        [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Lt (a, b) ->
      Smt.app "<"
        [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Forall_nbr f ->
      ctx.c_edge <- true;
      let v = fresh ctx in
      forall1 v "Node"
        (Smt.app "=>"
           [ Smt.app "E" [ Smt.Atom node; Smt.Atom v ];
             c_form ctx ~node ~cur:(Some v) ~post f ])
  | Sym.Exists_nbr f ->
      ctx.c_edge <- true;
      let v = fresh ctx in
      exists1 v "Node"
        (Smt.app "and"
           [ Smt.app "E" [ Smt.Atom node; Smt.Atom v ];
             c_form ctx ~node ~cur:(Some v) ~post f ])

(* Neighborhood aggregates (min / mex / count) are not first-order per se;
   each occurrence becomes a fresh Skolem function [Node -> Int] plus
   universally quantified defining axioms.  The axioms are satisfied in
   every finite model by the actual aggregate value, so the conservative
   extension preserves the superset-of-concrete-families soundness
   argument: an unsat verdict still covers every concrete instance.
   (Pathological infinite models without attainable minima are excluded —
   harmless for the same reason.)  Occurrences are deduplicated per
   (term, state) so one aggregate used by several goal parts shares its
   witness. *)
and skolem ctx ~post t =
  match Hashtbl.find_opt ctx.skolems (t, post) with
  | Some name -> name
  | None ->
      ctx.c_edge <- true;
      let tag =
        match t with
        | Sym.Min_nbr _ -> "min"
        | Sym.Mex_nbr _ -> "mex"
        | Sym.Count_nbr _ -> "cnt"
        | _ -> assert false
      in
      let name =
        Printf.sprintf "%s_aux%d%s" tag
          (Hashtbl.length ctx.skolems)
          (if post then "_post" else "")
      in
      Hashtbl.add ctx.skolems (t, post) name;
      let side c = ctx.c_sides <- c :: ctx.c_sides in
      side
        (Smt.List
           [ Smt.Atom "declare-fun";
             Smt.Atom name;
             Smt.List [ Smt.Atom "Node" ];
             Smt.Atom "Int" ]);
      let app x = Smt.app name [ Smt.Atom x ] in
      let e u v = Smt.app "E" [ Smt.Atom u; Smt.Atom v ] in
      let w = fresh ctx in
      (match t with
      | Sym.Min_nbr (filt, body, dflt) ->
          let qual v =
            Smt.app "and"
              [ e w v; c_form ctx ~node:w ~cur:(Some v) ~post filt ]
          in
          let bod v = c_term ctx ~node:w ~cur:(Some v) ~post body in
          let v1 = fresh ctx and v2 = fresh ctx and v3 = fresh ctx in
          (* If a qualifying neighbor exists, the value is attained and is
             a lower bound over qualifiers; otherwise it is the default. *)
          side
            (assert_
               (forall1 w "Node"
                  (Smt.app "ite"
                     [ exists1 v1 "Node" (qual v1);
                       Smt.app "and"
                         [ exists1 v2 "Node"
                             (Smt.app "and"
                                [ qual v2; Smt.app "=" [ app w; bod v2 ] ]);
                           forall1 v3 "Node"
                             (Smt.app "=>"
                                [ qual v3; Smt.app "<=" [ app w; bod v3 ] ])
                         ];
                       Smt.app "="
                         [ app w; c_term ctx ~node:w ~cur:None ~post dflt ]
                     ])))
      | Sym.Mex_nbr (filt, body) ->
          let qual v =
            Smt.app "and"
              [ e w v; c_form ctx ~node:w ~cur:(Some v) ~post filt ]
          in
          let bod v = c_term ctx ~node:w ~cur:(Some v) ~post body in
          side
            (assert_
               (forall1 w "Node" (Smt.app "<=" [ iatom 0; app w ])));
          let v1 = fresh ctx in
          side
            (assert_
               (forall_b
                  [ (w, "Node"); (v1, "Node") ]
                  (Smt.app "=>"
                     [ qual v1; Smt.app "distinct" [ bod v1; app w ] ])));
          let k = fresh ctx and v2 = fresh ctx in
          side
            (assert_
               (forall_b
                  [ (w, "Node"); (k, "Int") ]
                  (Smt.app "=>"
                     [ Smt.app "and"
                         [ Smt.app "<=" [ iatom 0; Smt.Atom k ];
                           Smt.app "<" [ Smt.Atom k; app w ] ];
                       exists1 v2 "Node"
                         (Smt.app "and"
                            [ qual v2; Smt.app "=" [ bod v2; Smt.Atom k ] ])
                     ])))
      | Sym.Count_nbr filt ->
          let qual v =
            Smt.app "and"
              [ e w v; c_form ctx ~node:w ~cur:(Some v) ~post filt ]
          in
          side
            (assert_
               (forall1 w "Node" (Smt.app "<=" [ iatom 0; app w ])));
          let v1 = fresh ctx in
          side
            (assert_
               (forall1 w "Node"
                  (Smt.app "="
                     [ exists1 v1 "Node" (qual v1);
                       Smt.app "<=" [ iatom 1; app w ] ])))
      | _ -> assert false);
      name

let guard_at ctx node (r : Sym.rule) =
  c_form ctx ~node ~cur:None ~post:false r.Sym.guard

(* --- prelude assembly -------------------------------------------------- *)

let topology_axioms family =
  let e u v = Smt.app "E" [ Smt.Atom u; Smt.Atom v ] in
  match family with
  | Complete ->
      ( [],
        [ assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "="
                  [ e "t0" "t1";
                    Smt.app "distinct" [ Smt.Atom "t0"; Smt.Atom "t1" ] ])) ] )
  | Ring ->
      let nxt x = Smt.app "nxt" [ x ] in
      ( [ Smt.List
            [ Smt.Atom "declare-fun";
              Smt.Atom "nxt";
              Smt.List [ Smt.Atom "Node" ];
              Smt.Atom "Node" ] ],
        [ assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "="
                  [ e "t0" "t1";
                    Smt.app "or"
                      [ Smt.app "=" [ Smt.Atom "t1"; nxt (Smt.Atom "t0") ];
                        Smt.app "=" [ Smt.Atom "t0"; nxt (Smt.Atom "t1") ] ] ]));
          assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "=>"
                  [ Smt.app "=" [ nxt (Smt.Atom "t0"); nxt (Smt.Atom "t1") ];
                    Smt.app "=" [ Smt.Atom "t0"; Smt.Atom "t1" ] ]));
          assert_
            (forall1 "t0" "Node"
               (Smt.app "distinct" [ nxt (Smt.Atom "t0"); Smt.Atom "t0" ]));
          assert_
            (forall1 "t0" "Node"
               (Smt.app "distinct"
                  [ nxt (nxt (Smt.Atom "t0")); Smt.Atom "t0" ])) ] )
  | Path ->
      let idx x = Smt.app "idx" [ x ] in
      ( [ Smt.List
            [ Smt.Atom "declare-fun";
              Smt.Atom "idx";
              Smt.List [ Smt.Atom "Node" ];
              Smt.Atom "Int" ] ],
        [ assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "=>"
                  [ Smt.app "=" [ idx (Smt.Atom "t0"); idx (Smt.Atom "t1") ];
                    Smt.app "=" [ Smt.Atom "t0"; Smt.Atom "t1" ] ]));
          assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "="
                  [ e "t0" "t1";
                    Smt.app "or"
                      [ Smt.app "="
                          [ Smt.app "-"
                              [ idx (Smt.Atom "t0"); idx (Smt.Atom "t1") ];
                            Smt.Atom "1" ];
                        Smt.app "="
                          [ Smt.app "-"
                              [ idx (Smt.Atom "t1"); idx (Smt.Atom "t0") ];
                            Smt.Atom "1" ] ] ])) ] )
  | Star ->
      ( [ Smt.List
            [ Smt.Atom "declare-const"; Smt.Atom "hub"; Smt.Atom "Node" ] ],
        [ assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "="
                  [ e "t0" "t1";
                    Smt.app "or"
                      [ Smt.app "and"
                          [ Smt.app "=" [ Smt.Atom "t0"; Smt.Atom "hub" ];
                            Smt.app "distinct"
                              [ Smt.Atom "t1"; Smt.Atom "hub" ] ];
                        Smt.app "and"
                          [ Smt.app "=" [ Smt.Atom "t1"; Smt.Atom "hub" ];
                            Smt.app "distinct"
                              [ Smt.Atom "t0"; Smt.Atom "hub" ] ] ] ])) ] )

(* Pre-state range axioms for every used ranged field; compiled after the
   goal so the parameter usage they introduce is still reflected in the
   prelude (compile order: goal, then ranges, then prelude assembly). *)
let range_axioms ctx =
  List.filter_map
    (fun (f, lo, hi) ->
      if not (SS.mem f ctx.c_fields) then None
      else
        let u = fresh ctx in
        let fu = field_app ctx ~post:false f u in
        Some
          (assert_
             (forall1 u "Node"
                (Smt.app "and"
                   [ Smt.app "<="
                       [ c_term ctx ~node:u ~cur:None ~post:false lo; fu ];
                     Smt.app "<"
                       [ fu; c_term ctx ~node:u ~cur:None ~post:false hi ] ]))))
    ctx.ir.Sym.ranges

let prelude ctx family =
  let cmds = ref [] in
  let add c = cmds := c :: !cmds in
  add (Smt.List [ Smt.Atom "set-logic"; Smt.Atom "ALL" ]);
  add (Smt.List [ Smt.Atom "declare-sort"; Smt.Atom "Node"; Smt.Atom "0" ]);
  List.iter
    (fun (p : Sym.param) ->
      if SS.mem p.Sym.pname ctx.c_params then begin
        add
          (Smt.List
             [ Smt.Atom "declare-const"; Smt.Atom p.Sym.pname; Smt.Atom "Int" ]);
        match p.Sym.lower with
        | None -> ()
        | Some lo ->
            add (assert_ (Smt.app ">=" [ Smt.Atom p.Sym.pname; int_lit lo ]))
      end)
    ctx.ir.Sym.params;
  (* Enum sorts: constructors plus distinctness; per-field exhaustiveness
     is emitted with the field below. *)
  List.iter
    (fun (_, ty) ->
      match ty with
      | Sym.TEnum (s, ctors) when SS.mem s ctx.c_enums ->
          ctx.c_enums <- SS.remove s ctx.c_enums;
          add (Smt.List [ Smt.Atom "declare-sort"; Smt.Atom s; Smt.Atom "0" ]);
          List.iter
            (fun c ->
              add
                (Smt.List
                   [ Smt.Atom "declare-const"; Smt.Atom c; Smt.Atom s ]))
            ctors;
          if List.length ctors > 1 then
            add
              (assert_ (Smt.app "distinct" (List.map Smt.atom ctors)))
      | _ -> ())
    ctx.ir.Sym.fields;
  List.iter
    (fun (f, ty) ->
      let declare name =
        add
          (Smt.List
             [ Smt.Atom "declare-fun";
               Smt.Atom name;
               Smt.List [ Smt.Atom "Node" ];
               Smt.Atom (sort_of_ty ty) ])
      in
      if SS.mem f ctx.c_fields then begin
        declare f;
        match ty with
        | Sym.TEnum (_, ctors) ->
            let u = fresh ctx in
            add
              (assert_
                 (forall1 u "Node"
                    (Smt.app "or"
                       (List.map
                          (fun c ->
                            Smt.app "="
                              [ Smt.app f [ Smt.Atom u ]; Smt.Atom c ])
                          ctors))))
        | _ -> ()
      end;
      if SS.mem f ctx.c_posts then declare (f ^ "_post"))
    ctx.ir.Sym.fields;
  if ctx.c_moved then
    add
      (Smt.List
         [ Smt.Atom "declare-fun";
           Smt.Atom "moved";
           Smt.List [ Smt.Atom "Node" ];
           Smt.Atom "Bool" ]);
  if ctx.c_edge then begin
    add
      (Smt.List
         [ Smt.Atom "declare-fun";
           Smt.Atom "E";
           Smt.List [ Smt.Atom "Node"; Smt.Atom "Node" ];
           Smt.Atom "Bool" ]);
    let decls, axioms = topology_axioms family in
    List.iter add decls;
    List.iter add axioms
  end;
  List.rev !cmds

let finish ~algo ~family ~kind ~name ~descr ctx core =
  let ranges = range_axioms ctx in
  let sides = List.rev ctx.c_sides in
  let header =
    [ Printf.sprintf "obligation: %s" name;
      Printf.sprintf "algorithm: %s" algo;
      Printf.sprintf "family: %s (axiomatized superset, any n)"
        (family_to_string family);
      descr;
      "expected: unsat" ]
  in
  { ob_algo = algo;
    ob_family = family;
    ob_kind = kind;
    ob_name = name;
    ob_descr = descr;
    ob_script =
      { Smt.header;
        body =
          prelude ctx family @ sides @ ranges @ core
          @ [ Smt.List [ Smt.Atom "check-sat" ] ] } }

(* --- obligation builders ----------------------------------------------- *)

(* Post-state definitions under first-enabled-rule semantics, for every
   field whose post function the (already compiled) goal mentioned.  The
   ite chain mirrors the evaluation order of [Algorithm.enabled_rule]. *)
let post_definitions ctx =
  let moved u = Smt.app "moved" [ Smt.Atom u ] in
  List.filter_map
    (fun (f, _) ->
      if not (SS.mem f ctx.c_posts) then None
      else
        let keep = field_app ctx ~post:false f "u" in
        let chain =
          List.fold_right
            (fun (r : Sym.rule) acc ->
              let value =
                match List.assoc_opt f r.Sym.assigns with
                | Some t -> c_term ctx ~node:"u" ~cur:None ~post:false t
                | None -> keep
              in
              Smt.app "ite" [ guard_at ctx "u" r; value; acc ])
            ctx.ir.Sym.rules keep
        in
        Some
          (assert_
             (forall1 "u" "Node"
                (Smt.app "="
                   [ field_app ctx ~post:true f "u";
                     Smt.app "ite" [ moved "u"; chain; keep ] ]))))
    ctx.ir.Sym.fields

let closure ~algo (spec : Sym.spec) family legit =
  let ir = spec.Sym.sp_ir in
  let ctx = new_ctx ir in
  let moved u = Smt.app "moved" [ Smt.Atom u ] in
  ctx.c_moved <- true;
  (* Compile the post-state goal first so [c_posts] records exactly the
     fields whose post functions need defining. *)
  let legit_post = c_form ctx ~node:"u" ~cur:None ~post:true legit in
  let legit_pre = c_form ctx ~node:"u" ~cur:None ~post:false legit in
  let guards = List.map (guard_at ctx "u") ir.Sym.rules in
  let enabled =
    match guards with [ g ] -> g | gs -> Smt.app "or" gs
  in
  let post_defs = post_definitions ctx in
  finish ~algo ~family ~kind:Closure ~name:"closure"
    ~descr:
      "legitimate configuration + one covered step (moved subset of \
       enabled, nonempty) must stay legitimate"
    ctx
    ([ assert_ (forall1 "u" "Node" legit_pre);
       assert_ (forall1 "u" "Node" (Smt.app "=>" [ moved "u"; enabled ]));
       assert_ (exists1 "u" "Node" (moved "u")) ]
    @ post_defs
    @ [ assert_ (Smt.app "not" [ forall1 "u" "Node" legit_post ]) ])

let cert_decrease ~algo (spec : Sym.spec) family (cert : Sym.cert_spec)
    (r : Sym.rule) =
  let ctx = new_ctx spec.Sym.sp_ir in
  let guard = guard_at ctx "u" r in
  let local = c_term ctx ~node:"u" ~cur:None ~post:false cert.Sym.cs_local in
  let local' =
    c_term ctx ~node:"u" ~cur:None ~post:false
      (Sym.subst_self_term r.Sym.assigns cert.Sym.cs_local)
  in
  finish ~algo ~family
    ~kind:(Cert_decrease r.Sym.rule)
    ~name:(Printf.sprintf "cert-decrease.%s" r.Sym.rule)
    ~descr:
      (Printf.sprintf
         "certificate %s: a %s mover's local potential strictly decreases \
          and stays nonnegative (pointwise decrease of the global sum)"
         cert.Sym.cs_name r.Sym.rule)
    ctx
    [ assert_
        (exists1 "u" "Node"
           (Smt.app "and"
              [ guard;
                Smt.app "not"
                  [ Smt.app "and"
                      [ Smt.app "<=" [ Smt.Atom "0"; local' ];
                        Smt.app "<" [ local'; local ] ] ] ])) ]

let range_preserved ~algo (spec : Sym.spec) family (r : Sym.rule) (f, lo, hi)
    assign =
  let ctx = new_ctx spec.Sym.sp_ir in
  let guard = guard_at ctx "u" r in
  let t' = c_term ctx ~node:"u" ~cur:None ~post:false assign in
  let lo' = c_term ctx ~node:"u" ~cur:None ~post:false lo in
  let hi' = c_term ctx ~node:"u" ~cur:None ~post:false hi in
  finish ~algo ~family
    ~kind:(Range (r.Sym.rule, f))
    ~name:(Printf.sprintf "range.%s.%s" r.Sym.rule f)
    ~descr:
      (Printf.sprintf "rule %s keeps field %s inside its declared range"
         r.Sym.rule f)
    ctx
    [ assert_
        (exists1 "u" "Node"
           (Smt.app "and"
              [ guard;
                Smt.app "not"
                  [ Smt.app "and"
                      [ Smt.app "<=" [ lo'; t' ]; Smt.app "<" [ t'; hi' ] ] ] ])) ]

(* Requirement obligations never need post-state functions: a single
   mover's post-state predicate is the pre-state predicate with the
   assignment terms substituted for its own fields ({!Sym.subst_self}). *)

let requirement ~algo (spec : Sym.spec) family ~id ~descr body =
  let ctx = new_ctx spec.Sym.sp_ir in
  let goal = body ctx in
  finish ~algo ~family ~kind:(Requirement id)
    ~name:(Printf.sprintf "req.%s" id)
    ~descr ctx
    [ assert_ (exists1 "u" "Node" (Smt.app "not" [ goal ])) ]

(* Re-site a Self-only quantifier-free form at the bound neighbor. *)
let rec nbrize_term = function
  | (Sym.Num _ | Sym.Bool _ | Sym.Param _ | Sym.Ctor _) as t -> t
  | Sym.Var (Sym.Self, f) -> Sym.Var (Sym.Nbr, f)
  | Sym.Var (Sym.Nbr, _) ->
      invalid_arg "Obligation: p_reset must read Self fields only"
  | Sym.Add (a, b) -> Sym.Add (nbrize_term a, nbrize_term b)
  | Sym.Sub (a, b) -> Sym.Sub (nbrize_term a, nbrize_term b)
  | Sym.Neg a -> Sym.Neg (nbrize_term a)
  | Sym.Ite (c, a, b) -> Sym.Ite (nbrize_form c, nbrize_term a, nbrize_term b)
  | Sym.Min_nbr _ | Sym.Mex_nbr _ | Sym.Count_nbr _ ->
      invalid_arg "Obligation: p_reset must be quantifier-free"

and nbrize_form = function
  | Sym.Const _ as f -> f
  | Sym.Not f -> Sym.Not (nbrize_form f)
  | Sym.And fs -> Sym.And (List.map nbrize_form fs)
  | Sym.Or fs -> Sym.Or (List.map nbrize_form fs)
  | Sym.Imp (a, b) -> Sym.Imp (nbrize_form a, nbrize_form b)
  | Sym.Eq (a, b) -> Sym.Eq (nbrize_term a, nbrize_term b)
  | Sym.Le (a, b) -> Sym.Le (nbrize_term a, nbrize_term b)
  | Sym.Lt (a, b) -> Sym.Lt (nbrize_term a, nbrize_term b)
  | Sym.Forall_nbr _ | Sym.Exists_nbr _ ->
      invalid_arg "Obligation: p_reset must be quantifier-free"

let requirements ~algo (spec : Sym.spec) family =
  let ir = spec.Sym.sp_ir in
  let form f ctx = c_form ctx ~node:"u" ~cur:None ~post:false f in
  let lands =
    match (spec.Sym.sp_reset, spec.Sym.sp_p_reset) with
    | Some reset, Some p_reset ->
        [ requirement ~algo spec family ~id:"reset-lands"
            ~descr:"executing the reset macro establishes p_reset"
            (form (Sym.subst_self reset p_reset)) ]
    | _ -> []
  in
  let idempotent =
    match spec.Sym.sp_reset with
    | Some reset when reset <> [] ->
        [ requirement ~algo spec family ~id:"reset-idempotent"
            ~descr:"resetting a reset state changes nothing"
            (form
               (Sym.And
                  (List.map
                     (fun (_, t) -> Sym.Eq (Sym.subst_self_term reset t, t))
                     reset))) ]
    | _ -> []
  in
  let guard_icorrect =
    match spec.Sym.sp_p_icorrect with
    | Some p_ic ->
        List.map
          (fun (r : Sym.rule) ->
            requirement ~algo spec family
              ~id:(Printf.sprintf "guard-icorrect.%s" r.Sym.rule)
              ~descr:
                (Printf.sprintf
                   "an enabled process is locally correct (guard of %s \
                    implies p_icorrect)"
                   r.Sym.rule)
              (form (Sym.Imp (r.Sym.guard, p_ic))))
          ir.Sym.rules
    | None -> []
  in
  let reset_icorrect =
    match (spec.Sym.sp_p_reset, spec.Sym.sp_p_icorrect) with
    | Some p_reset, Some p_ic ->
        [ requirement ~algo spec family ~id:"reset-icorrect"
            ~descr:
              "a reset process whose neighbors are all reset is locally \
               correct"
            (form
               (Sym.Imp
                  ( Sym.And
                      [ p_reset; Sym.Forall_nbr (nbrize_form p_reset) ],
                    p_ic ))) ]
    | _ -> []
  in
  let icorrect_step =
    match spec.Sym.sp_p_icorrect with
    | Some p_ic ->
        List.map
          (fun (r : Sym.rule) ->
            requirement ~algo spec family
              ~id:(Printf.sprintf "icorrect-step.%s" r.Sym.rule)
              ~descr:
                (Printf.sprintf
                   "a process's own %s move preserves its local \
                    correctness (neighbors unchanged)"
                   r.Sym.rule)
              (form
                 (Sym.Imp
                    ( Sym.And [ p_ic; r.Sym.guard ],
                      Sym.subst_self r.Sym.assigns p_ic ))))
          ir.Sym.rules
    | None -> []
  in
  lands @ idempotent @ guard_icorrect @ reset_icorrect @ icorrect_step

(* --- global-ranking obligations ----------------------------------------

   Implicit-rankings encoding of a global convergence measure: each
   process carries a lexicographic tuple of nonnegative Self-only
   components ({!Sym.rank_spec}), and the global rank is the multiset of
   all tuples.  A step whose movers all fire covered rules strictly
   decreases the multiset under the Dershowitz–Manna order: every tuple
   is pointwise-dominated (movers strictly, non-movers unchanged), which
   is first-order expressible over the symbolic node sort — no cardinality
   or summation needed, so the same obligation covers every n. *)

let lex_rel ~strict post pre =
  let rec go post pre =
    match (post, pre) with
    | [], [] -> Smt.Atom (if strict then "false" else "true")
    | [ q ], [ p ] -> Smt.app (if strict then "<" else "<=") [ q; p ]
    | q :: qs, p :: ps ->
        Smt.app "or"
          [ Smt.app "<" [ q; p ];
            Smt.app "and" [ Smt.app "=" [ q; p ]; go qs ps ] ]
    | _ -> invalid_arg "Obligation: rank tuple arity mismatch"
  in
  go post pre

let rec fields_of_term acc = function
  | Sym.Num _ | Sym.Bool _ | Sym.Param _ | Sym.Ctor _ -> acc
  | Sym.Var (_, f) -> SS.add f acc
  | Sym.Add (a, b) | Sym.Sub (a, b) ->
      fields_of_term (fields_of_term acc a) b
  | Sym.Neg a -> fields_of_term acc a
  | Sym.Ite (c, a, b) ->
      fields_of_form (fields_of_term (fields_of_term acc a) b) c
  | Sym.Min_nbr (f, b, d) ->
      fields_of_form (fields_of_term (fields_of_term acc b) d) f
  | Sym.Mex_nbr (f, b) -> fields_of_form (fields_of_term acc b) f
  | Sym.Count_nbr f -> fields_of_form acc f

and fields_of_form acc = function
  | Sym.Const _ -> acc
  | Sym.Not f | Sym.Forall_nbr f | Sym.Exists_nbr f -> fields_of_form acc f
  | Sym.And fs | Sym.Or fs -> List.fold_left fields_of_form acc fs
  | Sym.Imp (a, b) -> fields_of_form (fields_of_form acc a) b
  | Sym.Eq (a, b) | Sym.Le (a, b) | Sym.Lt (a, b) ->
      fields_of_term (fields_of_term acc a) b

let rank_bounded ~algo ~prefix ~mk_kind (spec : Sym.spec) family
    (rk : Sym.rank_spec) =
  let ctx = new_ctx spec.Sym.sp_ir in
  let tuple =
    List.map
      (c_term ctx ~node:"u" ~cur:None ~post:false)
      rk.Sym.rk_components
  in
  let nonneg =
    match List.map (fun t -> Smt.app "<=" [ iatom 0; t ]) tuple with
    | [ c ] -> c
    | cs -> Smt.app "and" cs
  in
  finish ~algo ~family
    ~kind:(mk_kind "rank-bounded")
    ~name:(prefix ^ "rank-bounded")
    ~descr:
      (Printf.sprintf
         "rank %s: every component of every process's tuple is bounded \
          below by 0 (well-foundedness of the global measure)"
         rk.Sym.rk_name)
    ctx
    [ assert_ (exists1 "u" "Node" (Smt.app "not" [ nonneg ])) ]

let rank_move ~algo ~prefix ~mk_kind ~strict (spec : Sym.spec) family
    (rk : Sym.rank_spec) (r : Sym.rule) =
  let ctx = new_ctx spec.Sym.sp_ir in
  let guard = guard_at ctx "u" r in
  let pre =
    List.map
      (c_term ctx ~node:"u" ~cur:None ~post:false)
      rk.Sym.rk_components
  in
  let post =
    List.map
      (fun c ->
        c_term ctx ~node:"u" ~cur:None ~post:false
          (Sym.subst_self_term r.Sym.assigns c))
      rk.Sym.rk_components
  in
  let nm = if strict then "rank-decrease" else "rank-no-increase" in
  finish ~algo ~family
    ~kind:(mk_kind (Printf.sprintf "%s.%s" nm r.Sym.rule))
    ~name:(Printf.sprintf "%s%s.%s" prefix nm r.Sym.rule)
    ~descr:
      (Printf.sprintf
         "rank %s: a %s mover's tuple lexicographically %s (neighbors \
          unchanged)"
         rk.Sym.rk_name r.Sym.rule
         (if strict then "strictly decreases" else "does not increase"))
    ctx
    [ assert_
        (exists1 "u" "Node"
           (Smt.app "and"
              [ guard; Smt.app "not" [ lex_rel ~strict post pre ] ])) ]

(* An uncovered rule that does not write any field a component reads must
   leave the tuple exactly unchanged — the interface piece that lets a
   layered (PADEC-style) argument treat the other layer's moves as silent
   with respect to this rank. *)
let rank_frame ~algo ~prefix ~mk_kind (spec : Sym.spec) family
    (rk : Sym.rank_spec) (r : Sym.rule) =
  let ctx = new_ctx spec.Sym.sp_ir in
  let guard = guard_at ctx "u" r in
  let eqs =
    List.map
      (fun c ->
        Smt.app "="
          [ c_term ctx ~node:"u" ~cur:None ~post:false
              (Sym.subst_self_term r.Sym.assigns c);
            c_term ctx ~node:"u" ~cur:None ~post:false c ])
      rk.Sym.rk_components
  in
  let same = match eqs with [ e ] -> e | es -> Smt.app "and" es in
  finish ~algo ~family
    ~kind:(mk_kind (Printf.sprintf "rank-frame.%s" r.Sym.rule))
    ~name:(Printf.sprintf "%srank-frame.%s" prefix r.Sym.rule)
    ~descr:
      (Printf.sprintf
         "rank %s: a %s move leaves the mover's rank tuple unchanged \
          (the other layer is silent for this measure)"
         rk.Sym.rk_name r.Sym.rule)
    ctx
    [ assert_
        (exists1 "u" "Node"
           (Smt.app "and" [ guard; Smt.app "not" [ same ] ])) ]

(* The global step obligation: any nonempty step whose movers' first
   enabled rule is covered pointwise-dominates the configuration's rank
   tuples and strictly decreases at least one — multiset decrease of the
   global rank, for any n. *)
let rank_step ~algo ~prefix ~mk_kind (spec : Sym.spec) family
    (rk : Sym.rank_spec) =
  let ir = spec.Sym.sp_ir in
  let ctx = new_ctx ir in
  let moved u = Smt.app "moved" [ Smt.Atom u ] in
  ctx.c_moved <- true;
  (* Goal first, so [c_posts] records the fields the tuple reads. *)
  let tuple_post =
    List.map
      (c_term ctx ~node:"u" ~cur:None ~post:true)
      rk.Sym.rk_components
  in
  let tuple_pre =
    List.map
      (c_term ctx ~node:"u" ~cur:None ~post:false)
      rk.Sym.rk_components
  in
  let fires =
    let rec chains negs = function
      | [] -> []
      | (r : Sym.rule) :: rest ->
          let g = guard_at ctx "u" r in
          let fire =
            match List.rev negs with
            | [] -> g
            | prior -> Smt.app "and" (prior @ [ g ])
          in
          (r.Sym.rule, fire) :: chains (Smt.app "not" [ g ] :: negs) rest
    in
    chains [] ir.Sym.rules
  in
  let covered_fire =
    match
      List.filter_map
        (fun (n, f) -> if List.mem n rk.Sym.rk_rules then Some f else None)
        fires
    with
    | [] -> Smt.Atom "false"
    | [ f ] -> f
    | fs -> Smt.app "or" fs
  in
  let post_defs = post_definitions ctx in
  finish ~algo ~family
    ~kind:(mk_kind "rank-step")
    ~name:(prefix ^ "rank-step")
    ~descr:
      (Printf.sprintf
         "rank %s: a step whose movers all fire covered rules \
          pointwise-dominates every tuple and strictly decreases a \
          mover's (global multiset decrease)"
         rk.Sym.rk_name)
    ctx
    ([ assert_
         (forall1 "u" "Node" (Smt.app "=>" [ moved "u"; covered_fire ]));
       assert_ (exists1 "u" "Node" (moved "u")) ]
    @ post_defs
    @ [ assert_
          (Smt.app "not"
             [ Smt.app "and"
                 [ forall1 "u" "Node"
                     (lex_rel ~strict:false tuple_post tuple_pre);
                   exists1 "u" "Node"
                     (lex_rel ~strict:true tuple_post tuple_pre) ] ]) ])

let rank_obligations ~algo ~prefix ~mk_kind (spec : Sym.spec) family =
  match spec.Sym.sp_rank with
  | None -> []
  | Some rk ->
      let ir = spec.Sym.sp_ir in
      let covered =
        List.filter
          (fun (r : Sym.rule) -> List.mem r.Sym.rule rk.Sym.rk_rules)
          ir.Sym.rules
      in
      let comp_fields =
        List.fold_left fields_of_term SS.empty rk.Sym.rk_components
      in
      let frames =
        List.filter
          (fun (r : Sym.rule) ->
            (not (List.mem r.Sym.rule rk.Sym.rk_rules))
            && List.for_all
                 (fun (f, _) -> not (SS.mem f comp_fields))
                 r.Sym.assigns)
          ir.Sym.rules
      in
      (rank_bounded ~algo ~prefix ~mk_kind spec family rk
      :: List.map
           (rank_move ~algo ~prefix ~mk_kind ~strict:false spec family rk)
           covered)
      @ List.map
          (rank_move ~algo ~prefix ~mk_kind ~strict:true spec family rk)
          covered
      @ [ rank_step ~algo ~prefix ~mk_kind spec family rk ]
      @ List.map (rank_frame ~algo ~prefix ~mk_kind spec family rk) frames

let compile_composition ~algo (spec : Sym.spec) family =
  rank_obligations ~algo ~prefix:"comp." ~mk_kind:(fun s -> Composition s)
    spec family

let compile_composition_all ~algo spec =
  List.concat_map (compile_composition ~algo spec) families

let compile ~algo (spec : Sym.spec) family =
  let ir = spec.Sym.sp_ir in
  let closure_obs =
    match spec.Sym.sp_legitimate with
    | Some legit -> [ closure ~algo spec family legit ]
    | None -> []
  in
  let cert_obs =
    match spec.Sym.sp_cert with
    | Some cert ->
        List.filter_map
          (fun (r : Sym.rule) ->
            if List.mem r.Sym.rule cert.Sym.cs_rules then
              Some (cert_decrease ~algo spec family cert r)
            else None)
          ir.Sym.rules
    | None -> []
  in
  let range_obs =
    List.concat_map
      (fun (r : Sym.rule) ->
        List.filter_map
          (fun ((f, _, _) as range) ->
            Option.map
              (range_preserved ~algo spec family r range)
              (List.assoc_opt f r.Sym.assigns))
          ir.Sym.ranges)
      ir.Sym.rules
  in
  closure_obs @ cert_obs @ range_obs
  @ requirements ~algo spec family
  @ rank_obligations ~algo ~prefix:"" ~mk_kind:(fun s -> Rank s) spec family

let compile_all ~algo spec =
  List.concat_map (compile ~algo spec) families

let filename ob =
  Printf.sprintf "%s.%s.%s.smt2" ob.ob_algo
    (family_to_string ob.ob_family)
    ob.ob_name

let to_json obs =
  Json.Obj
    [ ("schema", Json.String "ssreset-smt-v2");
      ("schema_version", Json.Int 2);
      ("count", Json.Int (List.length obs));
      ( "obligations",
        Json.List
          (List.map
             (fun ob ->
               Json.Obj
                 [ ("file", Json.String (filename ob));
                   ("algo", Json.String ob.ob_algo);
                   ("family", Json.String (family_to_string ob.ob_family));
                   ("kind", Json.String (kind_to_string ob.ob_kind));
                   ("name", Json.String ob.ob_name);
                   ("expect", Json.String "unsat");
                   ("descr", Json.String ob.ob_descr) ])
             obs) ) ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write ~dir obs =
  mkdir_p dir;
  List.iter
    (fun ob -> Smt.write_file (Filename.concat dir (filename ob)) ob.ob_script)
    obs;
  let manifest = Filename.concat dir "manifest.json" in
  Out_channel.with_open_text manifest (fun oc ->
      Out_channel.output_string oc (Json.to_string_hum (to_json obs));
      Out_channel.output_char oc '\n');
  manifest

module Json = Ssreset_obs.Json
module SS = Set.Make (String)

type family = Ring | Path | Star | Complete

let families = [ Ring; Path; Star; Complete ]

let family_to_string = function
  | Ring -> "ring"
  | Path -> "path"
  | Star -> "star"
  | Complete -> "complete"

let family_of_string = function
  | "ring" -> Some Ring
  | "path" -> Some Path
  | "star" -> Some Star
  | "complete" -> Some Complete
  | _ -> None

type kind =
  | Closure
  | Cert_decrease of string
  | Range of string * string
  | Requirement of string

let kind_to_string = function
  | Closure -> "closure"
  | Cert_decrease _ -> "cert-decrease"
  | Range _ -> "range"
  | Requirement _ -> "requirement"

type t = {
  ob_algo : string;
  ob_family : family;
  ob_kind : kind;
  ob_name : string;
  ob_descr : string;
  ob_script : Smt.script;
}

(* --- compilation context ----------------------------------------------

   Needs are collected while compiling the goal assertions; the prelude
   (sorts, parameter constants, field functions, topology) then declares
   exactly what was mentioned, which is what {!Smt.lint_script}'s
   unused-declaration check demands. *)

type ctx = {
  ir : Sym.ir;
  mutable c_params : SS.t;
  mutable c_fields : SS.t;  (* pre-state functions *)
  mutable c_posts : SS.t;  (* post-state functions *)
  mutable c_edge : bool;
  mutable c_enums : SS.t;
  mutable c_moved : bool;
  mutable c_fresh : int;
}

let new_ctx ir =
  { ir;
    c_params = SS.empty;
    c_fields = SS.empty;
    c_posts = SS.empty;
    c_edge = false;
    c_enums = SS.empty;
    c_moved = false;
    c_fresh = 0 }

let fresh ctx =
  let v = Printf.sprintf "v%d" ctx.c_fresh in
  ctx.c_fresh <- ctx.c_fresh + 1;
  v

let assert_ body = Smt.List [ Smt.Atom "assert"; body ]
let iatom i = Smt.Atom (string_of_int i)

let int_lit i =
  if i < 0 then Smt.app "-" [ iatom (-i) ] else iatom i

let forall1 v sort body =
  Smt.List
    [ Smt.Atom "forall";
      Smt.List [ Smt.List [ Smt.Atom v; Smt.Atom sort ] ];
      body ]

let exists1 v sort body =
  Smt.List
    [ Smt.Atom "exists";
      Smt.List [ Smt.List [ Smt.Atom v; Smt.Atom sort ] ];
      body ]

let forall2 u v sort body =
  Smt.List
    [ Smt.Atom "forall";
      Smt.List
        [ Smt.List [ Smt.Atom u; Smt.Atom sort ];
          Smt.List [ Smt.Atom v; Smt.Atom sort ] ];
      body ]

let field_ty ctx f = List.assoc f ctx.ir.Sym.fields

let sort_of_ty = function
  | Sym.TInt -> "Int"
  | Sym.TBool -> "Bool"
  | Sym.TEnum (s, _) -> s

let mark_field ctx ~post f =
  (match field_ty ctx f with
  | Sym.TEnum (s, _) -> ctx.c_enums <- SS.add s ctx.c_enums
  | _ -> ());
  if post then ctx.c_posts <- SS.add f ctx.c_posts
  else ctx.c_fields <- SS.add f ctx.c_fields

let field_app ctx ~post f node =
  mark_field ctx ~post f;
  Smt.app (if post then f ^ "_post" else f) [ Smt.Atom node ]

(* [st] selects which state the field functions read: post-state reads
   apply to Self and Nbr alike (a global configuration predicate after a
   step). *)
let rec c_term ctx ~node ~cur ~post = function
  | Sym.Num i -> int_lit i
  | Sym.Param p ->
      ctx.c_params <- SS.add p ctx.c_params;
      Smt.Atom p
  | Sym.Var (Sym.Self, f) -> field_app ctx ~post f node
  | Sym.Var (Sym.Nbr, f) -> (
      match cur with
      | Some v -> field_app ctx ~post f v
      | None -> invalid_arg "Obligation: Nbr outside a quantifier")
  | Sym.Add (a, b) ->
      Smt.app "+" [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Sub (a, b) ->
      Smt.app "-" [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Neg a -> Smt.app "-" [ c_term ctx ~node ~cur ~post a ]
  | Sym.Ite (c, a, b) ->
      Smt.app "ite"
        [ c_form ctx ~node ~cur ~post c;
          c_term ctx ~node ~cur ~post a;
          c_term ctx ~node ~cur ~post b ]
  | Sym.Ctor c -> Smt.Atom c
  | Sym.Min_nbr _ ->
      (* A neighborhood minimum needs a Skolem witness plus attainment
         axioms; no registered smt_spec uses it (the composed U∘SDR spec
         drives the flat engine and the bounded differential only). *)
      invalid_arg "Obligation: Min_nbr is not SMT-compilable yet"

and c_form ctx ~node ~cur ~post = function
  | Sym.Const true -> Smt.Atom "true"
  | Sym.Const false -> Smt.Atom "false"
  | Sym.Not f -> Smt.app "not" [ c_form ctx ~node ~cur ~post f ]
  | Sym.And [] -> Smt.Atom "true"
  | Sym.And [ f ] -> c_form ctx ~node ~cur ~post f
  | Sym.And fs -> Smt.app "and" (List.map (c_form ctx ~node ~cur ~post) fs)
  | Sym.Or [] -> Smt.Atom "false"
  | Sym.Or [ f ] -> c_form ctx ~node ~cur ~post f
  | Sym.Or fs -> Smt.app "or" (List.map (c_form ctx ~node ~cur ~post) fs)
  | Sym.Imp (a, b) ->
      Smt.app "=>"
        [ c_form ctx ~node ~cur ~post a; c_form ctx ~node ~cur ~post b ]
  | Sym.Eq (a, b) ->
      Smt.app "="
        [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Le (a, b) ->
      Smt.app "<="
        [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Lt (a, b) ->
      Smt.app "<"
        [ c_term ctx ~node ~cur ~post a; c_term ctx ~node ~cur ~post b ]
  | Sym.Forall_nbr f ->
      ctx.c_edge <- true;
      let v = fresh ctx in
      forall1 v "Node"
        (Smt.app "=>"
           [ Smt.app "E" [ Smt.Atom node; Smt.Atom v ];
             c_form ctx ~node ~cur:(Some v) ~post f ])
  | Sym.Exists_nbr f ->
      ctx.c_edge <- true;
      let v = fresh ctx in
      exists1 v "Node"
        (Smt.app "and"
           [ Smt.app "E" [ Smt.Atom node; Smt.Atom v ];
             c_form ctx ~node ~cur:(Some v) ~post f ])

let guard_at ctx node (r : Sym.rule) =
  c_form ctx ~node ~cur:None ~post:false r.Sym.guard

(* --- prelude assembly -------------------------------------------------- *)

let topology_axioms family =
  let e u v = Smt.app "E" [ Smt.Atom u; Smt.Atom v ] in
  match family with
  | Complete ->
      ( [],
        [ assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "="
                  [ e "t0" "t1";
                    Smt.app "distinct" [ Smt.Atom "t0"; Smt.Atom "t1" ] ])) ] )
  | Ring ->
      let nxt x = Smt.app "nxt" [ x ] in
      ( [ Smt.List
            [ Smt.Atom "declare-fun";
              Smt.Atom "nxt";
              Smt.List [ Smt.Atom "Node" ];
              Smt.Atom "Node" ] ],
        [ assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "="
                  [ e "t0" "t1";
                    Smt.app "or"
                      [ Smt.app "=" [ Smt.Atom "t1"; nxt (Smt.Atom "t0") ];
                        Smt.app "=" [ Smt.Atom "t0"; nxt (Smt.Atom "t1") ] ] ]));
          assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "=>"
                  [ Smt.app "=" [ nxt (Smt.Atom "t0"); nxt (Smt.Atom "t1") ];
                    Smt.app "=" [ Smt.Atom "t0"; Smt.Atom "t1" ] ]));
          assert_
            (forall1 "t0" "Node"
               (Smt.app "distinct" [ nxt (Smt.Atom "t0"); Smt.Atom "t0" ]));
          assert_
            (forall1 "t0" "Node"
               (Smt.app "distinct"
                  [ nxt (nxt (Smt.Atom "t0")); Smt.Atom "t0" ])) ] )
  | Path ->
      let idx x = Smt.app "idx" [ x ] in
      ( [ Smt.List
            [ Smt.Atom "declare-fun";
              Smt.Atom "idx";
              Smt.List [ Smt.Atom "Node" ];
              Smt.Atom "Int" ] ],
        [ assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "=>"
                  [ Smt.app "=" [ idx (Smt.Atom "t0"); idx (Smt.Atom "t1") ];
                    Smt.app "=" [ Smt.Atom "t0"; Smt.Atom "t1" ] ]));
          assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "="
                  [ e "t0" "t1";
                    Smt.app "or"
                      [ Smt.app "="
                          [ Smt.app "-"
                              [ idx (Smt.Atom "t0"); idx (Smt.Atom "t1") ];
                            Smt.Atom "1" ];
                        Smt.app "="
                          [ Smt.app "-"
                              [ idx (Smt.Atom "t1"); idx (Smt.Atom "t0") ];
                            Smt.Atom "1" ] ] ])) ] )
  | Star ->
      ( [ Smt.List
            [ Smt.Atom "declare-const"; Smt.Atom "hub"; Smt.Atom "Node" ] ],
        [ assert_
            (forall2 "t0" "t1" "Node"
               (Smt.app "="
                  [ e "t0" "t1";
                    Smt.app "or"
                      [ Smt.app "and"
                          [ Smt.app "=" [ Smt.Atom "t0"; Smt.Atom "hub" ];
                            Smt.app "distinct"
                              [ Smt.Atom "t1"; Smt.Atom "hub" ] ];
                        Smt.app "and"
                          [ Smt.app "=" [ Smt.Atom "t1"; Smt.Atom "hub" ];
                            Smt.app "distinct"
                              [ Smt.Atom "t0"; Smt.Atom "hub" ] ] ] ])) ] )

(* Pre-state range axioms for every used ranged field; compiled after the
   goal so the parameter usage they introduce is still reflected in the
   prelude (compile order: goal, then ranges, then prelude assembly). *)
let range_axioms ctx =
  List.filter_map
    (fun (f, lo, hi) ->
      if not (SS.mem f ctx.c_fields) then None
      else
        let u = fresh ctx in
        let fu = field_app ctx ~post:false f u in
        Some
          (assert_
             (forall1 u "Node"
                (Smt.app "and"
                   [ Smt.app "<="
                       [ c_term ctx ~node:u ~cur:None ~post:false lo; fu ];
                     Smt.app "<"
                       [ fu; c_term ctx ~node:u ~cur:None ~post:false hi ] ]))))
    ctx.ir.Sym.ranges

let prelude ctx family =
  let cmds = ref [] in
  let add c = cmds := c :: !cmds in
  add (Smt.List [ Smt.Atom "set-logic"; Smt.Atom "ALL" ]);
  add (Smt.List [ Smt.Atom "declare-sort"; Smt.Atom "Node"; Smt.Atom "0" ]);
  List.iter
    (fun (p : Sym.param) ->
      if SS.mem p.Sym.pname ctx.c_params then begin
        add
          (Smt.List
             [ Smt.Atom "declare-const"; Smt.Atom p.Sym.pname; Smt.Atom "Int" ]);
        match p.Sym.lower with
        | None -> ()
        | Some lo ->
            add (assert_ (Smt.app ">=" [ Smt.Atom p.Sym.pname; int_lit lo ]))
      end)
    ctx.ir.Sym.params;
  (* Enum sorts: constructors plus distinctness; per-field exhaustiveness
     is emitted with the field below. *)
  List.iter
    (fun (_, ty) ->
      match ty with
      | Sym.TEnum (s, ctors) when SS.mem s ctx.c_enums ->
          ctx.c_enums <- SS.remove s ctx.c_enums;
          add (Smt.List [ Smt.Atom "declare-sort"; Smt.Atom s; Smt.Atom "0" ]);
          List.iter
            (fun c ->
              add
                (Smt.List
                   [ Smt.Atom "declare-const"; Smt.Atom c; Smt.Atom s ]))
            ctors;
          if List.length ctors > 1 then
            add
              (assert_ (Smt.app "distinct" (List.map Smt.atom ctors)))
      | _ -> ())
    ctx.ir.Sym.fields;
  List.iter
    (fun (f, ty) ->
      let declare name =
        add
          (Smt.List
             [ Smt.Atom "declare-fun";
               Smt.Atom name;
               Smt.List [ Smt.Atom "Node" ];
               Smt.Atom (sort_of_ty ty) ])
      in
      if SS.mem f ctx.c_fields then begin
        declare f;
        match ty with
        | Sym.TEnum (_, ctors) ->
            let u = fresh ctx in
            add
              (assert_
                 (forall1 u "Node"
                    (Smt.app "or"
                       (List.map
                          (fun c ->
                            Smt.app "="
                              [ Smt.app f [ Smt.Atom u ]; Smt.Atom c ])
                          ctors))))
        | _ -> ()
      end;
      if SS.mem f ctx.c_posts then declare (f ^ "_post"))
    ctx.ir.Sym.fields;
  if ctx.c_moved then
    add
      (Smt.List
         [ Smt.Atom "declare-fun";
           Smt.Atom "moved";
           Smt.List [ Smt.Atom "Node" ];
           Smt.Atom "Bool" ]);
  if ctx.c_edge then begin
    add
      (Smt.List
         [ Smt.Atom "declare-fun";
           Smt.Atom "E";
           Smt.List [ Smt.Atom "Node"; Smt.Atom "Node" ];
           Smt.Atom "Bool" ]);
    let decls, axioms = topology_axioms family in
    List.iter add decls;
    List.iter add axioms
  end;
  List.rev !cmds

let finish ~algo ~family ~kind ~name ~descr ctx core =
  let ranges = range_axioms ctx in
  let header =
    [ Printf.sprintf "obligation: %s" name;
      Printf.sprintf "algorithm: %s" algo;
      Printf.sprintf "family: %s (axiomatized superset, any n)"
        (family_to_string family);
      descr;
      "expected: unsat" ]
  in
  { ob_algo = algo;
    ob_family = family;
    ob_kind = kind;
    ob_name = name;
    ob_descr = descr;
    ob_script =
      { Smt.header;
        body =
          prelude ctx family @ ranges @ core
          @ [ Smt.List [ Smt.Atom "check-sat" ] ] } }

(* --- obligation builders ----------------------------------------------- *)

let closure ~algo (spec : Sym.spec) family legit =
  let ir = spec.Sym.sp_ir in
  let ctx = new_ctx ir in
  let moved u = Smt.app "moved" [ Smt.Atom u ] in
  ctx.c_moved <- true;
  (* Compile the post-state goal first so [c_posts] records exactly the
     fields whose post functions need defining. *)
  let legit_post = c_form ctx ~node:"u" ~cur:None ~post:true legit in
  let legit_pre = c_form ctx ~node:"u" ~cur:None ~post:false legit in
  let guards = List.map (guard_at ctx "u") ir.Sym.rules in
  let enabled =
    match guards with [ g ] -> g | gs -> Smt.app "or" gs
  in
  let post_defs =
    List.filter_map
      (fun (f, _) ->
        if not (SS.mem f ctx.c_posts) then None
        else
          let keep = field_app ctx ~post:false f "u" in
          (* First-enabled-rule semantics: the ite chain mirrors the
             evaluation order of [Algorithm.enabled_rule]. *)
          let chain =
            List.fold_right
              (fun (r : Sym.rule) acc ->
                let value =
                  match List.assoc_opt f r.Sym.assigns with
                  | Some t -> c_term ctx ~node:"u" ~cur:None ~post:false t
                  | None -> keep
                in
                Smt.app "ite" [ guard_at ctx "u" r; value; acc ])
              ir.Sym.rules keep
          in
          Some
            (assert_
               (forall1 "u" "Node"
                  (Smt.app "="
                     [ field_app ctx ~post:true f "u";
                       Smt.app "ite" [ moved "u"; chain; keep ] ]))))
      ir.Sym.fields
  in
  finish ~algo ~family ~kind:Closure ~name:"closure"
    ~descr:
      "legitimate configuration + one covered step (moved subset of \
       enabled, nonempty) must stay legitimate"
    ctx
    ([ assert_ (forall1 "u" "Node" legit_pre);
       assert_ (forall1 "u" "Node" (Smt.app "=>" [ moved "u"; enabled ]));
       assert_ (exists1 "u" "Node" (moved "u")) ]
    @ post_defs
    @ [ assert_ (Smt.app "not" [ forall1 "u" "Node" legit_post ]) ])

let cert_decrease ~algo (spec : Sym.spec) family (cert : Sym.cert_spec)
    (r : Sym.rule) =
  let ctx = new_ctx spec.Sym.sp_ir in
  let guard = guard_at ctx "u" r in
  let local = c_term ctx ~node:"u" ~cur:None ~post:false cert.Sym.cs_local in
  let local' =
    c_term ctx ~node:"u" ~cur:None ~post:false
      (Sym.subst_self_term r.Sym.assigns cert.Sym.cs_local)
  in
  finish ~algo ~family
    ~kind:(Cert_decrease r.Sym.rule)
    ~name:(Printf.sprintf "cert-decrease.%s" r.Sym.rule)
    ~descr:
      (Printf.sprintf
         "certificate %s: a %s mover's local potential strictly decreases \
          and stays nonnegative (pointwise decrease of the global sum)"
         cert.Sym.cs_name r.Sym.rule)
    ctx
    [ assert_
        (exists1 "u" "Node"
           (Smt.app "and"
              [ guard;
                Smt.app "not"
                  [ Smt.app "and"
                      [ Smt.app "<=" [ Smt.Atom "0"; local' ];
                        Smt.app "<" [ local'; local ] ] ] ])) ]

let range_preserved ~algo (spec : Sym.spec) family (r : Sym.rule) (f, lo, hi)
    assign =
  let ctx = new_ctx spec.Sym.sp_ir in
  let guard = guard_at ctx "u" r in
  let t' = c_term ctx ~node:"u" ~cur:None ~post:false assign in
  let lo' = c_term ctx ~node:"u" ~cur:None ~post:false lo in
  let hi' = c_term ctx ~node:"u" ~cur:None ~post:false hi in
  finish ~algo ~family
    ~kind:(Range (r.Sym.rule, f))
    ~name:(Printf.sprintf "range.%s.%s" r.Sym.rule f)
    ~descr:
      (Printf.sprintf "rule %s keeps field %s inside its declared range"
         r.Sym.rule f)
    ctx
    [ assert_
        (exists1 "u" "Node"
           (Smt.app "and"
              [ guard;
                Smt.app "not"
                  [ Smt.app "and"
                      [ Smt.app "<=" [ lo'; t' ]; Smt.app "<" [ t'; hi' ] ] ] ])) ]

(* Requirement obligations never need post-state functions: a single
   mover's post-state predicate is the pre-state predicate with the
   assignment terms substituted for its own fields ({!Sym.subst_self}). *)

let requirement ~algo (spec : Sym.spec) family ~id ~descr body =
  let ctx = new_ctx spec.Sym.sp_ir in
  let goal = body ctx in
  finish ~algo ~family ~kind:(Requirement id)
    ~name:(Printf.sprintf "req.%s" id)
    ~descr ctx
    [ assert_ (exists1 "u" "Node" (Smt.app "not" [ goal ])) ]

(* Re-site a Self-only quantifier-free form at the bound neighbor. *)
let rec nbrize_term = function
  | (Sym.Num _ | Sym.Param _ | Sym.Ctor _) as t -> t
  | Sym.Var (Sym.Self, f) -> Sym.Var (Sym.Nbr, f)
  | Sym.Var (Sym.Nbr, _) ->
      invalid_arg "Obligation: p_reset must read Self fields only"
  | Sym.Add (a, b) -> Sym.Add (nbrize_term a, nbrize_term b)
  | Sym.Sub (a, b) -> Sym.Sub (nbrize_term a, nbrize_term b)
  | Sym.Neg a -> Sym.Neg (nbrize_term a)
  | Sym.Ite (c, a, b) -> Sym.Ite (nbrize_form c, nbrize_term a, nbrize_term b)
  | Sym.Min_nbr _ -> invalid_arg "Obligation: p_reset must be quantifier-free"

and nbrize_form = function
  | Sym.Const _ as f -> f
  | Sym.Not f -> Sym.Not (nbrize_form f)
  | Sym.And fs -> Sym.And (List.map nbrize_form fs)
  | Sym.Or fs -> Sym.Or (List.map nbrize_form fs)
  | Sym.Imp (a, b) -> Sym.Imp (nbrize_form a, nbrize_form b)
  | Sym.Eq (a, b) -> Sym.Eq (nbrize_term a, nbrize_term b)
  | Sym.Le (a, b) -> Sym.Le (nbrize_term a, nbrize_term b)
  | Sym.Lt (a, b) -> Sym.Lt (nbrize_term a, nbrize_term b)
  | Sym.Forall_nbr _ | Sym.Exists_nbr _ ->
      invalid_arg "Obligation: p_reset must be quantifier-free"

let requirements ~algo (spec : Sym.spec) family =
  let ir = spec.Sym.sp_ir in
  let form f ctx = c_form ctx ~node:"u" ~cur:None ~post:false f in
  let lands =
    match (spec.Sym.sp_reset, spec.Sym.sp_p_reset) with
    | Some reset, Some p_reset ->
        [ requirement ~algo spec family ~id:"reset-lands"
            ~descr:"executing the reset macro establishes p_reset"
            (form (Sym.subst_self reset p_reset)) ]
    | _ -> []
  in
  let idempotent =
    match spec.Sym.sp_reset with
    | Some reset when reset <> [] ->
        [ requirement ~algo spec family ~id:"reset-idempotent"
            ~descr:"resetting a reset state changes nothing"
            (form
               (Sym.And
                  (List.map
                     (fun (_, t) -> Sym.Eq (Sym.subst_self_term reset t, t))
                     reset))) ]
    | _ -> []
  in
  let guard_icorrect =
    match spec.Sym.sp_p_icorrect with
    | Some p_ic ->
        List.map
          (fun (r : Sym.rule) ->
            requirement ~algo spec family
              ~id:(Printf.sprintf "guard-icorrect.%s" r.Sym.rule)
              ~descr:
                (Printf.sprintf
                   "an enabled process is locally correct (guard of %s \
                    implies p_icorrect)"
                   r.Sym.rule)
              (form (Sym.Imp (r.Sym.guard, p_ic))))
          ir.Sym.rules
    | None -> []
  in
  let reset_icorrect =
    match (spec.Sym.sp_p_reset, spec.Sym.sp_p_icorrect) with
    | Some p_reset, Some p_ic ->
        [ requirement ~algo spec family ~id:"reset-icorrect"
            ~descr:
              "a reset process whose neighbors are all reset is locally \
               correct"
            (form
               (Sym.Imp
                  ( Sym.And
                      [ p_reset; Sym.Forall_nbr (nbrize_form p_reset) ],
                    p_ic ))) ]
    | _ -> []
  in
  let icorrect_step =
    match spec.Sym.sp_p_icorrect with
    | Some p_ic ->
        List.map
          (fun (r : Sym.rule) ->
            requirement ~algo spec family
              ~id:(Printf.sprintf "icorrect-step.%s" r.Sym.rule)
              ~descr:
                (Printf.sprintf
                   "a process's own %s move preserves its local \
                    correctness (neighbors unchanged)"
                   r.Sym.rule)
              (form
                 (Sym.Imp
                    ( Sym.And [ p_ic; r.Sym.guard ],
                      Sym.subst_self r.Sym.assigns p_ic ))))
          ir.Sym.rules
    | None -> []
  in
  lands @ idempotent @ guard_icorrect @ reset_icorrect @ icorrect_step

let compile ~algo (spec : Sym.spec) family =
  let ir = spec.Sym.sp_ir in
  let closure_obs =
    match spec.Sym.sp_legitimate with
    | Some legit -> [ closure ~algo spec family legit ]
    | None -> []
  in
  let cert_obs =
    match spec.Sym.sp_cert with
    | Some cert ->
        List.filter_map
          (fun (r : Sym.rule) ->
            if List.mem r.Sym.rule cert.Sym.cs_rules then
              Some (cert_decrease ~algo spec family cert r)
            else None)
          ir.Sym.rules
    | None -> []
  in
  let range_obs =
    List.concat_map
      (fun (r : Sym.rule) ->
        List.filter_map
          (fun ((f, _, _) as range) ->
            Option.map
              (range_preserved ~algo spec family r range)
              (List.assoc_opt f r.Sym.assigns))
          ir.Sym.ranges)
      ir.Sym.rules
  in
  closure_obs @ cert_obs @ range_obs @ requirements ~algo spec family

let compile_all ~algo spec =
  List.concat_map (compile ~algo spec) families

let filename ob =
  Printf.sprintf "%s.%s.%s.smt2" ob.ob_algo
    (family_to_string ob.ob_family)
    ob.ob_name

let to_json obs =
  Json.Obj
    [ ("schema", Json.String "ssreset-smt-v1");
      ("schema_version", Json.Int 1);
      ("count", Json.Int (List.length obs));
      ( "obligations",
        Json.List
          (List.map
             (fun ob ->
               Json.Obj
                 [ ("file", Json.String (filename ob));
                   ("algo", Json.String ob.ob_algo);
                   ("family", Json.String (family_to_string ob.ob_family));
                   ("kind", Json.String (kind_to_string ob.ob_kind));
                   ("name", Json.String ob.ob_name);
                   ("expect", Json.String "unsat");
                   ("descr", Json.String ob.ob_descr) ])
             obs) ) ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write ~dir obs =
  mkdir_p dir;
  List.iter
    (fun ob -> Smt.write_file (Filename.concat dir (filename ob)) ob.ob_script)
    obs;
  let manifest = Filename.concat dir "manifest.json" in
  Out_channel.with_open_text manifest (fun oc ->
      Out_channel.output_string oc (Json.to_string_hum (to_json obs));
      Out_channel.output_char oc '\n');
  manifest

module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph

type finding = {
  lint : string;
  rules : string list;
  witness : string;
  count : int;
}

let pp_finding ppf f =
  Fmt.pf ppf "[%s] %a — %d view(s), e.g. %s" f.lint
    Fmt.(list ~sep:(any ", ") string)
    f.rules f.count f.witness

(* Permutations of [0 .. d-1].  Full factorial up to d = 4 (24 orders, the
   degrees occurring on graphs with n <= 5); beyond that, rotations plus the
   reversal — still order-sensitive enough to catch positional folds. *)
let index_orders d =
  if d <= 1 then []
  else if d <= 4 then begin
    let rec perms = function
      | [] -> [ [] ]
      | l ->
          List.concat_map
            (fun x ->
              List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
            l
    in
    let identity = List.init d Fun.id in
    List.filter (fun p -> p <> identity) (perms identity)
    |> List.map Array.of_list
  end
  else begin
    let rotate k = Array.init d (fun i -> (i + k) mod d) in
    let reversal = Array.init d (fun i -> d - 1 - i) in
    reversal :: List.init (d - 1) (fun k -> rotate (k + 1))
  end

(* Per-process view space: own domain × the product of the neighbor
   domains, addressed in mixed radix.  [plan] returns the total and a
   decoder from a flat index to a view. *)
let space_total dims =
  Array.fold_left (fun acc d -> acc * Array.length d) 1 dims

let decode dims idx =
  let digits = Array.make (Array.length dims) 0 in
  let rest = ref idx in
  Array.iteri
    (fun i d ->
      let len = Array.length d in
      digits.(i) <- !rest mod len;
      rest := !rest / len)
    dims;
  digits

let run_instance (type s) ~max_views_per_process
    (module F : Finite.FINITE with type state = s) =
  let n = Graph.n F.graph in
  let pp_view ppf (v : s Algorithm.view) =
    Fmt.pf ppf "@[<h>self=%a nbrs=[%a]@]" F.algorithm.Algorithm.pp
      v.Algorithm.state
      Fmt.(array ~sep:(any " ") F.algorithm.Algorithm.pp)
      v.Algorithm.nbrs
  in
  (* One finding per (lint, rule set); the first witness is kept and the
     occurrence count accumulated. *)
  let table : (string * string list, string * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let report lint rules view =
    let rules = List.sort_uniq compare rules in
    match Hashtbl.find_opt table (lint, rules) with
    | Some (_, count) -> incr count
    | None ->
        Hashtbl.add table (lint, rules)
          (Fmt.str "%a" pp_view view, ref 1)
  in
  let check_view u view =
    ignore u;
    (* Stability: same view, same verdict — twice, for guards and for the
       first-match rule selection. *)
    List.iter
      (fun (r : s Algorithm.rule) ->
        if r.Algorithm.guard view <> r.Algorithm.guard view then
          report "stability" [ r.Algorithm.rule_name ] view)
      F.algorithm.Algorithm.rules;
    (* Overlap: >= 2 guards true on one view. *)
    (match Algorithm.exclusive_rules F.algorithm view with
    | [] | [ _ ] -> ()
    | names -> report "overlap" names view);
    (* Silent move: an enabled rule whose action changes nothing. *)
    List.iter
      (fun (r : s Algorithm.rule) ->
        if
          r.Algorithm.guard view
          && F.algorithm.Algorithm.equal (r.Algorithm.action view)
               view.Algorithm.state
        then report "silent-move" [ r.Algorithm.rule_name ] view)
      F.algorithm.Algorithm.rules;
    (* Permutation invariance: re-evaluate under reordered neighbors. *)
    let d = Array.length view.Algorithm.nbrs in
    List.iter
      (fun order ->
        let permuted =
          { view with
            Algorithm.nbrs =
              Array.init d (fun i -> view.Algorithm.nbrs.(order.(i))) }
        in
        List.iter
          (fun (r : s Algorithm.rule) ->
            let g1 = r.Algorithm.guard view in
            if g1 <> r.Algorithm.guard permuted then
              report "permutation" [ r.Algorithm.rule_name ] view
            else if
              g1
              && not
                   (F.algorithm.Algorithm.equal (r.Algorithm.action view)
                      (r.Algorithm.action permuted))
            then report "permutation" [ r.Algorithm.rule_name ] view)
          F.algorithm.Algorithm.rules)
      (index_orders d)
  in
  for u = 0 to n - 1 do
    let nbrs = Graph.neighbors F.graph u in
    let dims =
      Array.init
        (1 + Array.length nbrs)
        (fun i ->
          Array.of_list (F.domain (if i = 0 then u else nbrs.(i - 1))))
    in
    let total = space_total dims in
    let count = min total max_views_per_process in
    let stride = if total <= count then 1 else total / count in
    for k = 0 to count - 1 do
      let digits = decode dims (k * stride) in
      let view =
        { Algorithm.state = dims.(0).(digits.(0));
          nbrs = Array.init (Array.length nbrs) (fun i ->
              dims.(i + 1).(digits.(i + 1))) }
      in
      check_view u view
    done
  done;
  Hashtbl.fold
    (fun (lint, rules) (witness, count) acc ->
      { lint; rules; witness; count = !count } :: acc)
    table []
  |> List.sort (fun a b -> compare (a.lint, a.rules) (b.lint, b.rules))

let run ?(max_views_per_process = 20_000) (inst : Finite.t) =
  let (module F) = inst in
  run_instance ~max_views_per_process (module F)

let views_checked ?(max_views_per_process = 20_000) (inst : Finite.t) =
  let (module F) = inst in
  let n = Graph.n F.graph in
  let total = ref 0 in
  for u = 0 to n - 1 do
    let nbrs = Graph.neighbors F.graph u in
    let dims =
      Array.init
        (1 + Array.length nbrs)
        (fun i -> List.length (F.domain (if i = 0 then u else nbrs.(i - 1))))
    in
    let space = Array.fold_left ( * ) 1 dims in
    total := !total + min space max_views_per_process
  done;
  !total

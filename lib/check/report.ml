module Json = Ssreset_obs.Json

type model_item = {
  bound : int option;
  result : Model.t;
}

type entry_report = {
  name : string;
  description : string;
  lint : Lint.finding list;
  lint_views : int;
  footprint : Footprint.t option;
  sym : Sym.diff option;
  obligations : Obligation.t list;
  models : model_item list;
}

let footprint_ok = function
  | None -> true
  | Some (fp : Footprint.t) -> fp.Footprint.findings = []

let sym_ok = function None -> true | Some d -> Sym.diff_ok d

let entry_ok e =
  e.lint = []
  && footprint_ok e.footprint
  && sym_ok e.sym
  && List.for_all (fun m -> m.result.Model.violations = []) e.models

let ok reports = List.for_all entry_ok reports

let opt_int = function None -> Json.Null | Some i -> Json.Int i
let opt_string = function None -> Json.Null | Some s -> Json.String s
let strings l = Json.List (List.map (fun s -> Json.String s) l)

let json_of_finding (f : Lint.finding) =
  Json.Obj
    [ ("lint", Json.String f.Lint.lint);
      ("rules", strings f.Lint.rules);
      ("witness", Json.String f.Lint.witness);
      ("views", Json.Int f.Lint.count) ]

let json_of_rule_footprint (r : Footprint.rule_footprint) =
  Json.Obj
    [ ("rule", Json.String r.Footprint.rule);
      ("guard_self", strings r.Footprint.guard_self);
      ("guard_nbrs", strings r.Footprint.guard_nbrs);
      ("action_self", strings r.Footprint.action_self);
      ("action_nbrs", strings r.Footprint.action_nbrs);
      ("writes", strings r.Footprint.writes) ]

let json_of_footprint_finding (f : Footprint.finding) =
  Json.Obj
    [ ("check", Json.String f.Footprint.check);
      ("rules", strings f.Footprint.rules);
      ("witness", Json.String f.Footprint.witness);
      ("views", Json.Int f.Footprint.count) ]

let json_of_footprint (fp : Footprint.t) =
  Json.Obj
    [ ("ok", Json.Bool (fp.Footprint.findings = []));
      ("composed", Json.Bool fp.Footprint.composed);
      ("fields", strings fp.Footprint.fields);
      ("views", Json.Int fp.Footprint.views);
      ("rules", Json.List (List.map json_of_rule_footprint fp.Footprint.rules));
      ( "findings",
        Json.List (List.map json_of_footprint_finding fp.Footprint.findings)
      ) ]

let json_of_mismatch (m : Sym.mismatch) =
  Json.Obj
    [ ("where", Json.String m.Sym.where);
      ("rules", strings m.Sym.rules);
      ("detail", Json.String m.Sym.detail);
      ("count", Json.Int m.Sym.count) ]

let json_of_sym (d : Sym.diff) =
  Json.Obj
    [ ("ok", Json.Bool (Sym.diff_ok d));
      ("views", Json.Int d.Sym.views);
      ("steps", Json.Int d.Sym.steps);
      ("daemons", Json.Int d.Sym.daemons);
      ("mismatches", Json.List (List.map json_of_mismatch d.Sym.mismatches)) ]

let json_of_obligations = function
  | [] -> Json.Null
  | obs -> Obligation.to_json obs

let json_of_model { bound; result = r } =
  let s = r.Model.stats in
  Json.Obj
    [ ("instance", Json.String r.Model.instance);
      ("n", Json.Int r.Model.graph_n);
      ("m", Json.Int r.Model.graph_m);
      ("configs", Json.Int s.Model.configs);
      ("transitions", Json.Int s.Model.transitions);
      ("legitimate", Json.Int s.Model.legitimate);
      ("terminal", Json.Int s.Model.terminal);
      ("wall_s", Json.Float s.Model.wall_s);
      ("automorphisms", opt_int r.Model.automorphisms);
      ("certificate", opt_string r.Model.certificate);
      ( "violations",
        Json.List
          (List.map
             (fun (v : Model.violation) ->
               Json.Obj
                 [ ("property", Json.String v.Model.property);
                   ("detail", Json.String v.Model.detail) ])
             r.Model.violations) );
      ( "aborted",
        match r.Model.aborted with
        | None -> Json.Null
        | Some reason -> Json.String reason );
      ("worst_moves", opt_int r.Model.worst_moves);
      ("worst_rounds", opt_int r.Model.worst_rounds);
      ("round_bound", opt_int bound) ]

let json_of_entry e =
  Json.Obj
    [ ("name", Json.String e.name);
      ("description", Json.String e.description);
      ( "lint",
        Json.Obj
          [ ("ok", Json.Bool (e.lint = []));
            ("views", Json.Int e.lint_views);
            ("findings", Json.List (List.map json_of_finding e.lint)) ] );
      ( "footprint",
        match e.footprint with
        | None -> Json.Null
        | Some fp -> json_of_footprint fp );
      ( "sym",
        match e.sym with
        | None -> Json.Null
        | Some d -> json_of_sym d );
      ("obligations", json_of_obligations e.obligations);
      ( "model",
        Json.Obj
          [ ( "ok",
              Json.Bool
                (List.for_all
                   (fun m -> m.result.Model.violations = [])
                   e.models) );
            ("graphs", Json.List (List.map json_of_model e.models)) ] );
      ("ok", Json.Bool (entry_ok e)) ]

let to_json reports =
  Json.Obj
    [ ("schema", Json.String "ssreset-check-v3");
      ("schema_version", Json.Int 3);
      ("ok", Json.Bool (ok reports));
      ("entries", Json.List (List.map json_of_entry reports)) ]

let pp_model ppf { bound; result = r } =
  let s = r.Model.stats in
  Fmt.pf ppf "@[<v2>%s (n=%d, m=%d): %d configs, %d transitions, %d \
              legitimate, %d terminal (%.2fs)"
    r.Model.instance r.Model.graph_n r.Model.graph_m s.Model.configs
    s.Model.transitions s.Model.legitimate s.Model.terminal s.Model.wall_s;
  (match r.Model.automorphisms with
  | Some a when a > 1 -> Fmt.pf ppf "@,symmetry-reduced: |Aut| = %d" a
  | _ -> ());
  (match r.Model.certificate with
  | Some c -> Fmt.pf ppf "@,certificate: %s" c
  | None -> ());
  (match r.Model.aborted with
  | Some reason -> Fmt.pf ppf "@,ABORTED: %s" reason
  | None -> ());
  (match (r.Model.worst_moves, r.Model.worst_rounds) with
  | None, None -> ()
  | wm, wr ->
      Fmt.pf ppf "@,worst-case:%a%a"
        Fmt.(option (fun ppf m -> Fmt.pf ppf " %d moves" m))
        wm
        Fmt.(option (fun ppf r -> Fmt.pf ppf " %d rounds" r))
        wr;
      match (wr, bound) with
      | Some worst, Some b ->
          Fmt.pf ppf " (paper bound %d: %s)" b
            (if worst <= b then "respected" else "EXCEEDED")
      | _ -> ());
  List.iter
    (fun (v : Model.violation) ->
      Fmt.pf ppf "@,VIOLATION [%s] %s" v.Model.property v.Model.detail)
    r.Model.violations;
  Fmt.pf ppf "@]"

let pp_entry ppf e =
  Fmt.pf ppf "@[<v2>%s — %s [%s]@,lint: %s (%d views)" e.name e.description
    (if entry_ok e then "ok" else "FAIL")
    (if e.lint = [] then "clean" else "FINDINGS")
    e.lint_views;
  List.iter (fun f -> Fmt.pf ppf "@,  %a" Lint.pp_finding f) e.lint;
  (match e.footprint with
  | None -> ()
  | Some fp -> Fmt.pf ppf "@,%a" Footprint.pp fp);
  (match e.sym with
  | None -> ()
  | Some d ->
      Fmt.pf ppf "@,sym: %s (%d views, %d steps, %d daemons)"
        (if Sym.diff_ok d then "agrees" else "MISMATCH")
        d.Sym.views d.Sym.steps d.Sym.daemons;
      List.iter (fun m -> Fmt.pf ppf "@,  %a" Sym.pp_mismatch m) d.Sym.mismatches);
  (match e.obligations with
  | [] -> ()
  | obs -> Fmt.pf ppf "@,obligations: %d SMT-LIB proof obligations" (List.length obs));
  List.iter (fun m -> Fmt.pf ppf "@,%a" pp_model m) e.models;
  Fmt.pf ppf "@]"

let pp ppf reports =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:(Fmt.any "@,@,") pp_entry) reports

(** Hand-built defective algorithms — no-false-negative fixtures.

    Both are deliberately broken in ways the checker must detect; the test
    suite asserts that it does.  Keeping them out of {!Registry.entries}
    preserves the invariant that every {e paper} algorithm is clean. *)

val livelock : Ssreset_graph.Graph.t -> Finite.t
(** One rule [T-flip] that is always enabled and flips a binary state; the
    legitimate configurations are the uniform ones.  The lint pass finds
    nothing (the rule is stable, order-independent, never silent and cannot
    overlap with itself), but the model checker must report a livelock —
    e.g. on two processes, [(0,1)] and [(1,0)] swap forever under the
    synchronous schedule — and a closure violation. *)

val overlap : Ssreset_graph.Graph.t -> Finite.t
(** States {0, 1, 2}; legitimate = all-1.  [T-up] and [T-jump] are both
    enabled on state 0 (a rule overlap the lint pass must flag, which also
    makes list order load-bearing), and [T-noop] "rewrites" state 2 to
    itself (a silent move, and a self-loop livelock for the model
    checker). *)

val interference : Ssreset_graph.Graph.t -> Finite.t
(** A composed-shaped algorithm (states are [int Sdr.state]) whose input
    rule [TI-poke] is properly gated by [P_Clean] but bumps the SDR
    distance variable [d] alongside its own layer — the non-interference
    breach of the paper's Requirement 3.  Lint and the model checker are
    clean by construction (every configuration is legitimate; each process
    pokes once); only {!Footprint}'s ["write-escape"] check can flag it. *)

val interference_footprint : Ssreset_graph.Graph.t -> Footprint.target
(** The composed footprint target for {!interference}, with the honest
    layer decomposition ([reset] to inner 0, [P_reset] = inner 0). *)

val badsym : Ssreset_graph.Graph.t -> Finite.t
(** A correct monotone counter ([T-up]: fires while state < 2) whose
    attached symbolic IR ({!badsym_sym}) claims the guard is state < 1 —
    clean under lint, footprint and every enumerated verdict, so only the
    {!Sym} differential pass (a guard disagreement on state-1 views) can
    flag it. *)

val badsym_sym : Ssreset_graph.Graph.t -> Sym.instance
(** The lying symbolic instance for {!badsym}. *)

val badrank : Ssreset_graph.Graph.t -> Finite.t
(** A correct strictly-decreasing counter ([T-down]: fires while
    state > 0; legitimate = all-0) whose symbolic IR is exact but whose
    rank claim stutters: the component [if c > 1 then c else 0] stays at
    0 across the 1 → 0 move.  Lint, model, footprint and the guard/post
    differential are all clean, so only the ranking differential (a
    ["rank"] mismatch) — or a solver on the exported [rank-decrease]
    obligation — can flag it. *)

val badrank_sym : Ssreset_graph.Graph.t -> Sym.instance
(** The stuttering-rank symbolic instance for {!badrank}. *)

val badcert : Ssreset_graph.Graph.t -> Finite.t
(** A correct monotone counter ([T-up]: 0 → 1 → 2; legitimate = all-2)
    registered with a bogus {e increasing} potential [Σ state] — clean
    under lint and every enumerated verdict, so only {!Model}'s
    certificate pass (a ["certificate"] violation) can flag it. *)

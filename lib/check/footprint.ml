(* Footprint and non-interference analysis (see footprint.mli). *)

module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph
module Sdr = Ssreset_core.Sdr

type 's composition = {
  sdr_rules : string list;
  sdr_fields : string list;
  same_sdr : 's -> 's -> bool;
  same_inner : 's -> 's -> bool;
  reset_inner : 's -> 's;
  landed : 's -> bool;
  p_icorrect : 's Algorithm.view -> bool;
  p_clean : 's Algorithm.view -> bool;
}

module type TARGET = sig
  type state

  val name : string
  val algorithm : state Algorithm.t
  val graph : Graph.t
  val domain : int -> state list
  val fields : (string * (state -> state -> bool)) list
  val composition : state composition option
end

type target = (module TARGET)

let target (type s) ~name ~(algorithm : s Algorithm.t) ~graph ~domain ?fields
    ?composition () : target =
  let fields =
    match fields with
    | Some fs -> fs
    | None -> [ ("state", algorithm.Algorithm.equal) ]
  in
  (module struct
    type state = s

    let name = name
    let algorithm = algorithm
    let graph = graph
    let domain = domain
    let fields = fields
    let composition = composition
  end)

let of_finite (inst : Finite.t) : target =
  let (module F) = inst in
  (module struct
    type state = F.state

    let name = F.name
    let algorithm = F.algorithm
    let graph = F.graph
    let domain = F.domain
    let fields = [ ("state", F.algorithm.Algorithm.equal) ]
    let composition = None
  end)

let sdr_target (type i) (module I : Sdr.INPUT with type state = i) ~name
    ~(algorithm : i Sdr.state Algorithm.t) ~graph ~domain : target =
  let same_inner (a : i Sdr.state) b = I.equal a.Sdr.inner b.Sdr.inner in
  let same_sdr (a : i Sdr.state) (b : i Sdr.state) =
    Sdr.status_equal a.Sdr.st b.Sdr.st && a.Sdr.d = b.Sdr.d
  in
  (module struct
    type state = i Sdr.state

    let name = name
    let algorithm = algorithm
    let graph = graph
    let domain = domain

    let fields =
      [ ("st", fun (a : state) b -> Sdr.status_equal a.Sdr.st b.Sdr.st);
        ("d", fun (a : state) b -> a.Sdr.d = b.Sdr.d);
        ("inner", same_inner) ]

    let composition =
      Some
        { sdr_rules = [ "SDR-RB"; "SDR-RF"; "SDR-C"; "SDR-R" ];
          sdr_fields = [ "st"; "d" ];
          same_sdr;
          same_inner;
          reset_inner = (fun s -> { s with Sdr.inner = I.reset s.Sdr.inner });
          landed = (fun s -> I.p_reset s.Sdr.inner);
          p_icorrect =
            (fun v ->
              I.p_icorrect
                { Algorithm.state = v.Algorithm.state.Sdr.inner;
                  nbrs = Array.map (fun s -> s.Sdr.inner) v.Algorithm.nbrs });
          p_clean =
            (fun v ->
              Sdr.status_equal v.Algorithm.state.Sdr.st Sdr.C
              && Array.for_all
                   (fun s -> Sdr.status_equal s.Sdr.st Sdr.C)
                   v.Algorithm.nbrs) }
  end)

type rule_footprint = {
  rule : string;
  guard_self : string list;
  guard_nbrs : string list;
  action_self : string list;
  action_nbrs : string list;
  writes : string list;
}

type finding = {
  check : string;
  rules : string list;
  witness : string;
  count : int;
}

type t = {
  target_name : string;
  fields : string list;
  composed : bool;
  rules : rule_footprint list;
  findings : finding list;
  views : int;
}

(* Mixed-radix view addressing, as in Lint. *)
let space_total dims =
  Array.fold_left (fun acc d -> acc * Array.length d) 1 dims

let decode dims idx =
  let digits = Array.make (Array.length dims) 0 in
  let rest = ref idx in
  Array.iteri
    (fun i d ->
      let len = Array.length d in
      digits.(i) <- !rest mod len;
      rest := !rest / len)
    dims;
  digits

(* Per-vertex, per-field variant table: variants.(u).(fi).(si) lists the
   domain states differing from state [si] in field [fi] and agreeing on
   every other field. *)
let variant_tables (type s) ~n ~doms (fields : (string * (s -> s -> bool)) array)
    =
  let nf = Array.length fields in
  let same fi a b = (snd fields.(fi)) a b in
  Array.init n (fun u ->
      let d : s array = doms.(u) in
      Array.init nf (fun fi ->
          Array.map
            (fun st ->
              let keep s' =
                (not (same fi st s'))
                &&
                let ok = ref true in
                for g = 0 to nf - 1 do
                  if g <> fi && not (same g st s') then ok := false
                done;
                !ok
              in
              let out = ref [] in
              Array.iter (fun s' -> if keep s' then out := s' :: !out) d;
              Array.of_list (List.rev !out))
            d))

(* Classify one probe (replace site [j] of [view] by a state differing
   only in field [fi]) for one rule: did the guard read the field, did the
   action read it, and — when both guards hold — the two outputs.  Own-
   state action reads discount pass-through: an output difference confined
   to field [fi] that is explained by both outputs copying their inputs is
   not a read. *)
let classify (type s) (fields : (string * (s -> s -> bool)) array)
    (r : s Algorithm.rule) view gv (out : s option) view' j fi =
  let nf = Array.length fields in
  let same g a b = (snd fields.(g)) a b in
  let gv' = r.Algorithm.guard view' in
  let guard_read = gv <> gv' in
  if not (gv && gv') then (guard_read, false, None)
  else begin
    let o = match out with Some o -> o | None -> r.Algorithm.action view in
    let o' = r.Algorithm.action view' in
    let diff_other = ref false in
    for g = 0 to nf - 1 do
      if g <> fi && not (same g o o') then diff_other := true
    done;
    let act_read =
      if j > 0 then !diff_other || not (same fi o o')
      else
        !diff_other
        || ((not (same fi o o'))
           && not
                (same fi o view.Algorithm.state
                && same fi o' view'.Algorithm.state))
    in
    (guard_read, act_read, Some (o, o'))
  end

let analyze_target (type s) ~max_views_per_process
    (module T : TARGET with type state = s) =
  let n = Graph.n T.graph in
  let algo = T.algorithm in
  let rules = Array.of_list algo.Algorithm.rules in
  let nr = Array.length rules in
  let fields = Array.of_list T.fields in
  let nf = Array.length fields in
  let same fi a b = (snd fields.(fi)) a b in
  let guard_self = Array.make_matrix nr nf false in
  let guard_nbrs = Array.make_matrix nr nf false in
  let act_self = Array.make_matrix nr nf false in
  let act_nbrs = Array.make_matrix nr nf false in
  let writes = Array.make_matrix nr nf false in
  let pp_view ppf (v : s Algorithm.view) =
    Fmt.pf ppf "@[<h>self=%a nbrs=[%a]@]" algo.Algorithm.pp v.Algorithm.state
      Fmt.(array ~sep:(any " ") algo.Algorithm.pp)
      v.Algorithm.nbrs
  in
  let table : (string * string list, string * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let report check rule_names witness =
    let rule_names = List.sort_uniq compare rule_names in
    match Hashtbl.find_opt table (check, rule_names) with
    | Some (_, count) -> incr count
    | None -> Hashtbl.add table (check, rule_names) (witness, ref 1)
  in
  let comp = T.composition in
  let is_sdr_rule =
    match comp with
    | None -> fun _ -> false
    | Some c -> fun name -> List.mem name c.sdr_rules
  in
  let sdr_field =
    match comp with
    | None -> Array.make nf false
    | Some c -> Array.map (fun (fn, _) -> List.mem fn c.sdr_fields) fields
  in
  let doms = Array.init n (fun u -> Array.of_list (T.domain u)) in
  (* Reset discipline (Requirements 2b and 2e) over the full seed domain. *)
  (match comp with
  | None -> ()
  | Some c ->
      let equal = algo.Algorithm.equal in
      for u = 0 to n - 1 do
        Array.iter
          (fun st ->
            let witness () = Fmt.str "%a" algo.Algorithm.pp st in
            let r1 = c.reset_inner st and r2 = c.reset_inner st in
            if not (equal r1 r2) then report "reset-determinism" [] (witness ())
            else begin
              if not (c.same_inner (c.reset_inner r1) r1) then
                report "reset-idempotent" [] (witness ());
              if not (c.landed r1) then report "reset-escape" [] (witness ())
            end)
          doms.(u)
      done);
  let variants = variant_tables ~n ~doms fields in
  let views = ref 0 in
  for u = 0 to n - 1 do
    let nbrs = Graph.neighbors T.graph u in
    let deg = Array.length nbrs in
    let site_vertex j = if j = 0 then u else nbrs.(j - 1) in
    let dims = Array.init (deg + 1) (fun j -> doms.(site_vertex j)) in
    let total = space_total dims in
    let count = min total max_views_per_process in
    let stride = if total <= count then 1 else total / count in
    for k = 0 to count - 1 do
      incr views;
      let digits = decode dims (k * stride) in
      let view =
        { Algorithm.state = dims.(0).(digits.(0));
          nbrs = Array.init deg (fun i -> dims.(i + 1).(digits.(i + 1))) }
      in
      let gv = Array.map (fun r -> r.Algorithm.guard view) rules in
      let out =
        Array.mapi
          (fun ri (r : s Algorithm.rule) ->
            if gv.(ri) then Some (r.Algorithm.action view) else None)
          rules
      in
      (* Writes and whole-view composition checks. *)
      Array.iteri
        (fun ri (r : s Algorithm.rule) ->
          match out.(ri) with
          | None -> ()
          | Some o ->
              for fi = 0 to nf - 1 do
                if not (same fi view.Algorithm.state o) then
                  writes.(ri).(fi) <- true
              done;
              (match comp with
              | None -> ()
              | Some c ->
                  let name = r.Algorithm.rule_name in
                  if is_sdr_rule name then begin
                    if
                      not
                        (c.same_inner view.Algorithm.state o
                        || c.same_inner o (c.reset_inner view.Algorithm.state))
                    then
                      report "sdr-write" [ name ] (Fmt.str "%a" pp_view view)
                  end
                  else begin
                    if not (c.p_clean view) then
                      report "input-gating" [ name ]
                        (Fmt.str "%a" pp_view view);
                    if not (c.same_sdr view.Algorithm.state o) then
                      report "write-escape" [ name ]
                        (Fmt.str "%a" pp_view view)
                  end))
        rules;
      (* Field probes. *)
      for j = 0 to deg do
        let base =
          if j = 0 then view.Algorithm.state else view.Algorithm.nbrs.(j - 1)
        in
        for fi = 0 to nf - 1 do
          Array.iter
            (fun s' ->
              let view' =
                if j = 0 then { view with Algorithm.state = s' }
                else
                  { view with
                    Algorithm.nbrs =
                      (let a = Array.copy view.Algorithm.nbrs in
                       a.(j - 1) <- s';
                       a) }
              in
              (* Probe admissibility for the non-interference checks,
                 shared across rules. *)
              let sdr_probe_ok, input_probe_ok =
                match comp with
                | None -> (false, false)
                | Some c ->
                    ( (not sdr_field.(fi))
                      && c.landed base = c.landed s'
                      && c.p_icorrect view = c.p_icorrect view',
                      sdr_field.(fi) && c.p_clean view && c.p_clean view' )
              in
              Array.iteri
                (fun ri (r : s Algorithm.rule) ->
                  let guard_read, act_read, outs =
                    classify fields r view gv.(ri) out.(ri) view' j fi
                  in
                  if guard_read then
                    (if j = 0 then guard_self else guard_nbrs).(ri).(fi) <-
                      true;
                  if act_read then
                    (if j = 0 then act_self else act_nbrs).(ri).(fi) <- true;
                  match comp with
                  | None -> ()
                  | Some c ->
                      let name = r.Algorithm.rule_name in
                      if is_sdr_rule name then begin
                        if sdr_probe_ok then
                          let bad =
                            guard_read
                            ||
                            match outs with
                            | Some (o, o') -> not (c.same_sdr o o')
                            | None -> false
                          in
                          if bad then
                            report "sdr-read" [ name ]
                              (Fmt.str "%a (probe %s)" pp_view view
                                 (fst fields.(fi)))
                      end
                      else if input_probe_ok then
                        let bad =
                          guard_read
                          ||
                          match outs with
                          | Some (o, o') -> not (c.same_inner o o')
                          | None -> false
                        in
                        if bad then
                          report "read-escape" [ name ]
                            (Fmt.str "%a (probe %s)" pp_view view
                               (fst fields.(fi))))
                rules)
            variants.(site_vertex j).(fi).(digits.(j))
        done
      done
    done
  done;
  let names_of row =
    let out = ref [] in
    for fi = nf - 1 downto 0 do
      if row.(fi) then out := fst fields.(fi) :: !out
    done;
    !out
  in
  let rules_fp =
    Array.to_list
      (Array.mapi
         (fun ri (r : s Algorithm.rule) ->
           { rule = r.Algorithm.rule_name;
             guard_self = names_of guard_self.(ri);
             guard_nbrs = names_of guard_nbrs.(ri);
             action_self = names_of act_self.(ri);
             action_nbrs = names_of act_nbrs.(ri);
             writes = names_of writes.(ri) })
         rules)
  in
  let findings =
    Hashtbl.fold
      (fun (check, rs) (witness, count) acc ->
        { check; rules = rs; witness; count = !count } :: acc)
      table []
    |> List.sort (fun a b -> compare (a.check, a.rules) (b.check, b.rules))
  in
  { target_name = T.name;
    fields = List.map fst T.fields;
    composed = comp <> None;
    rules = rules_fp;
    findings;
    views = !views }

let analyze ?(max_views_per_process = 2_000) (t : target) =
  let (module T) = t in
  analyze_target ~max_views_per_process (module T)

let merge = function
  | [] -> invalid_arg "Footprint.merge: empty list"
  | t0 :: rest ->
      let union a b = List.sort_uniq compare (a @ b) in
      let merge_rule a b =
        { rule = a.rule;
          guard_self = union a.guard_self b.guard_self;
          guard_nbrs = union a.guard_nbrs b.guard_nbrs;
          action_self = union a.action_self b.action_self;
          action_nbrs = union a.action_nbrs b.action_nbrs;
          writes = union a.writes b.writes }
      in
      List.fold_left
        (fun acc t ->
          let rules =
            List.map
              (fun r ->
                match List.find_opt (fun r' -> r'.rule = r.rule) t.rules with
                | Some r' -> merge_rule r r'
                | None -> r)
              acc.rules
          in
          let findings =
            List.fold_left
              (fun fs f ->
                match
                  List.partition
                    (fun f' -> f'.check = f.check && f'.rules = f.rules)
                    fs
                with
                | [ f' ], others ->
                    { f' with count = f'.count + f.count } :: others
                | _ -> f :: fs)
              acc.findings t.findings
            |> List.sort (fun a b ->
                   compare (a.check, a.rules) (b.check, b.rules))
          in
          { acc with
            rules;
            findings;
            views = acc.views + t.views;
            composed = acc.composed || t.composed })
        t0 rest

let differential ?(trials = 500) ~seed (t : target) (report : t) =
  let (module T) = t in
  let n = Graph.n T.graph in
  let algo = T.algorithm in
  let rules = Array.of_list algo.Algorithm.rules in
  let fields = Array.of_list T.fields in
  let nf = Array.length fields in
  let doms = Array.init n (fun u -> Array.of_list (T.domain u)) in
  let variants = variant_tables ~n ~doms fields in
  let rng = Random.State.make [| seed |] in
  let result = ref None in
  let trial () =
    let u = Random.State.int rng n in
    let nbrs = Graph.neighbors T.graph u in
    let deg = Array.length nbrs in
    let site_vertex j = if j = 0 then u else nbrs.(j - 1) in
    let digits =
      Array.init (deg + 1) (fun j ->
          Random.State.int rng (Array.length doms.(site_vertex j)))
    in
    let view =
      { Algorithm.state = doms.(u).(digits.(0));
        nbrs = Array.init deg (fun i -> doms.(nbrs.(i)).(digits.(i + 1))) }
    in
    let ri = Random.State.int rng (Array.length rules) in
    let r = rules.(ri) in
    let j = Random.State.int rng (deg + 1) in
    let fi = Random.State.int rng nf in
    let vars = variants.(site_vertex j).(fi).(digits.(j)) in
    if Array.length vars > 0 then begin
      let s' = vars.(Random.State.int rng (Array.length vars)) in
      let view' =
        if j = 0 then { view with Algorithm.state = s' }
        else
          { view with
            Algorithm.nbrs =
              (let a = Array.copy view.Algorithm.nbrs in
               a.(j - 1) <- s';
               a) }
      in
      let gv = r.Algorithm.guard view in
      let out = if gv then Some (r.Algorithm.action view) else None in
      let guard_read, act_read, _ =
        classify fields r view gv out view' j fi
      in
      let fname = fst fields.(fi) in
      match
        List.find_opt
          (fun fp -> fp.rule = r.Algorithm.rule_name)
          report.rules
      with
      | None ->
          result :=
            Some
              (Printf.sprintf "rule %s missing from the recorded footprint"
                 r.Algorithm.rule_name)
      | Some fp ->
          let recorded reads =
            List.mem fname
              (if j = 0 then fst reads else snd reads)
          in
          if guard_read && not (recorded (fp.guard_self, fp.guard_nbrs)) then
            result :=
              Some
                (Printf.sprintf
                   "rule %s: guard reads %s of %s, not in recorded footprint"
                   r.Algorithm.rule_name fname
                   (if j = 0 then "self" else "a neighbor"))
          else if act_read && not (recorded (fp.action_self, fp.action_nbrs))
          then
            result :=
              Some
                (Printf.sprintf
                   "rule %s: action reads %s of %s, not in recorded footprint"
                   r.Algorithm.rule_name fname
                   (if j = 0 then "self" else "a neighbor"))
    end
  in
  let k = ref 0 in
  while !result = None && !k < trials do
    trial ();
    incr k
  done;
  !result

let pp_finding ppf f =
  Fmt.pf ppf "[%s] %a — %d probe(s), e.g. %s" f.check
    Fmt.(list ~sep:(any ", ") string)
    f.rules f.count f.witness

let pp ppf t =
  Fmt.pf ppf "@[<v>footprint %s (%d views, fields %a)%s" t.target_name t.views
    Fmt.(list ~sep:(any "/") string)
    t.fields
    (if t.composed then ", composed" else "");
  List.iter
    (fun r ->
      Fmt.pf ppf "@,  %s: guard self{%a} nbrs{%a}; action self{%a} nbrs{%a}; \
                  writes{%a}"
        r.rule
        Fmt.(list ~sep:(any ",") string)
        r.guard_self
        Fmt.(list ~sep:(any ",") string)
        r.guard_nbrs
        Fmt.(list ~sep:(any ",") string)
        r.action_self
        Fmt.(list ~sep:(any ",") string)
        r.action_nbrs
        Fmt.(list ~sep:(any ",") string)
        r.writes)
    t.rules;
  List.iter (fun f -> Fmt.pf ppf "@,  %a" pp_finding f) t.findings;
  Fmt.pf ppf "@]"

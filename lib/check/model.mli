(** Bounded model checker for self-stabilization properties.

    Explores the {e full} nondeterministic transition system of a
    {!Finite} instance: every configuration in the product of the seed
    domains (self-stabilization quantifies over all initializations), closed
    under steps, where each configuration has one successor per {e non-empty
    subset} of its enabled processes — i.e. every behavior of every daemon,
    including the unfair ones.  On the explored graph it verifies:

    - {b closure}: no transition leaves the legitimate set;
    - {b convergence}: no reachable cycle lies entirely outside the
      legitimate set (a livelock — the adversarial schedule that loops it
      forever witnesses non-convergence), and no terminal configuration is
      illegitimate (a dead end);
    - {b silence} of terminal configurations: every terminal configuration
      passes [terminal_ok]; with [expect_silent] the legitimate region must
      additionally be acyclic, so {e every} execution of the algorithm is
      finite;
    - {b exact worst cases}: when no violation was found, the illegitimate
      region is a DAG and dynamic programming yields the exact worst-case
      number of {e moves} to reach the legitimate set, and — over the
      augmented (configuration × pending-set) graph that mirrors the
      engine's neutralization-based round accounting — the exact worst-case
      number of {e rounds}, comparable against the paper's 3n and 8n + 4
      bounds. *)

type violation = {
  property : string;
      (** ["closure" | "livelock" | "dead-end" | "terminal-output" |
          "silence"] *)
  detail : string;  (** human-readable, includes pretty-printed witnesses *)
}

type stats = {
  configs : int;  (** distinct configurations explored (seed + closure) *)
  transitions : int;  (** edges, one per (configuration, daemon choice) *)
  legitimate : int;
  terminal : int;
  wall_s : float;
}

type t = {
  instance : string;  (** {!Finite.FINITE.name} *)
  graph_n : int;
  graph_m : int;
  stats : stats;
  violations : violation list;
  aborted : string option;
      (** [Some reason] when a budget stopped exploration before the space
          was covered; property verdicts are then void *)
  worst_moves : int option;
      (** exact worst-case moves from any illegitimate configuration to the
          legitimate set; [None] if violations were found or aborted *)
  worst_rounds : int option;
      (** exact worst-case rounds, engine convention (a final partial round
          counts); [None] if not computed — violations, abort, rounds
          budget, or [rounds = `Off] *)
  automorphisms : int option;
      (** [Some |Aut(G)|] when symmetry reduction was applied — the
          explored configurations are then orbit representatives;
          [None] when unreduced (symmetry off, asymmetric graph, or
          per-process domains differ) *)
  certificate : string option;
      (** name of the potential-function certificate that was checked on
          every explored illegitimate transition in its rule scope; a
          failed check surfaces as a ["certificate"] violation *)
}

type options = {
  max_configs : int;  (** exploration budget; default [1_000_000] *)
  max_round_states : int;
      (** budget on (configuration × pending-mask) states for the rounds
          DP; default [600_000] *)
  rounds : [ `Auto | `On | `Off ];
      (** [`Auto] (default) computes worst-case rounds only when the
          augmented space fits the budget; [`Off] skips it *)
  expect_silent : bool;
      (** also require the legitimate region to be acyclic (default
          [false]) *)
  symmetry : bool;
      (** explore one configuration per graph-automorphism orbit instead of
          all of them (default [false]).  Sound for anonymous instances:
          identical per-process seed domains (checked here) and
          neighbor-order-invariant rules (checked by {!Lint}'s permutation
          pass).  Verdicts, [worst_moves] and [worst_rounds] are identical
          to the unreduced run; [stats.configs] counts orbits.  Any
          registered certificate must be automorphism-invariant (sums and
          counts over processes are). *)
  certs : bool;
      (** evaluate the instance's {!Cert.t}, if any (default [true]) *)
}

val default_options : options

val check : ?options:options -> Finite.t -> t
(** Exhaustively verify one instance.  Violation lists are deduplicated per
    property (one witness each) and sorted by property name. *)

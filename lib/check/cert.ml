(* Potential-function certificates (see cert.mli). *)

type 's t = {
  cert_name : string;
  cert_rules : string list option;
  potential : Ssreset_graph.Graph.t -> 's array -> int list;
}

let make ~name ?rules potential =
  { cert_name = name; cert_rules = rules; potential }

let covers c rule =
  match c.cert_rules with
  | None -> true
  | Some rs -> List.mem rule rs

(* Mismatched lengths are never ordered: a certificate whose tuple length
   varies must surface as a violation, not silently pass. *)
let lex_lt a b =
  let rec go a b =
    match (a, b) with
    | [], [] -> false
    | x :: xs, y :: ys -> x < y || (x = y && go xs ys)
    | _ -> false
  in
  List.compare_lengths a b = 0 && go a b

let pp_potential ppf p =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ",") int) p

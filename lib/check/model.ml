module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph

type violation = {
  property : string;
  detail : string;
}

type stats = {
  configs : int;
  transitions : int;
  legitimate : int;
  terminal : int;
  wall_s : float;
}

type t = {
  instance : string;
  graph_n : int;
  graph_m : int;
  stats : stats;
  violations : violation list;
  aborted : string option;
  worst_moves : int option;
  worst_rounds : int option;
  automorphisms : int option;
  certificate : string option;
}

type options = {
  max_configs : int;
  max_round_states : int;
  rounds : [ `Auto | `On | `Off ];
  expect_silent : bool;
  symmetry : bool;
  certs : bool;
}

let default_options =
  { max_configs = 1_000_000;
    max_round_states = 600_000;
    rounds = `Auto;
    expect_silent = false;
    symmetry = false;
    certs = true }

exception Abort of string

(* Growable vector — the state space size is not known in advance. *)
module Vec = struct
  type 'a t = {
    mutable data : 'a array;
    mutable len : int;
    dummy : 'a;
  }

  let create dummy = { data = Array.make 64 dummy; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.data then begin
      let grown = Array.make (2 * v.len) v.dummy in
      Array.blit v.data 0 grown 0 v.len;
      v.data <- grown
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
end

let popcount m =
  let c = ref 0 and x = ref m in
  while !x <> 0 do
    incr c;
    x := !x land (!x - 1)
  done;
  !c

(* All non-empty submasks of [m], descending. *)
let iter_nonempty_submasks m f =
  let s = ref m in
  while !s <> 0 do
    f !s;
    s := (!s - 1) land m
  done

(* Successor edges are packed as [(succ_id lsl 6) lor selected_mask]; the
   mask fits in 6 bits because graphs are capped at n = 6. *)
let pack succ mask = (succ lsl 6) lor mask
let unpack_succ e = e lsr 6
let unpack_mask e = e land 63

let check_instance (type s) ~options
    (module F : Finite.FINITE with type state = s) =
  let t0 = Unix.gettimeofday () in
  let n = Graph.n F.graph in
  let algo = F.algorithm in
  let doms = Array.init n (fun u -> Array.of_list (F.domain u)) in
  (* Symmetry reduction applies only when every process has the same seed
     domain (anonymous instances): then any graph automorphism maps
     configurations to equivalent configurations — provided the algorithm
     is neighbor-order invariant, which the Lint permutation pass checks
     for registered instances — and one representative per orbit
     suffices. *)
  let reduce =
    if not options.symmetry then None
    else
      let sym = Symmetry.of_graph F.graph in
      if Symmetry.order sym <= 1 then None
      else
        let d0 = doms.(0) in
        let uniform =
          Array.for_all
            (fun d ->
              Array.length d = Array.length d0
              && Array.for_all2 algo.Algorithm.equal d d0)
            doms
        in
        if uniform then Some sym else None
  in
  (* State interning.  Uses the polymorphic hash table: instance states are
     pure structural data (ints, records, variants), for which structural
     equality coincides with [algo.equal]. *)
  let state_ids : (s, int) Hashtbl.t = Hashtbl.create 256 in
  let state_dummy = List.hd (F.domain 0) in
  let states : s Vec.t = Vec.create state_dummy in
  let intern_state st =
    match Hashtbl.find_opt state_ids st with
    | Some id -> id
    | None ->
        let id = states.Vec.len in
        Vec.push states st;
        Hashtbl.add state_ids st id;
        id
  in
  (* Configuration interning: a configuration is the int array of its
     processes' state ids, canonicalized to its orbit representative when
     symmetry reduction is on. *)
  let cfg_ids : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let cfgs : int array Vec.t = Vec.create [||] in
  let intern_cfg_raw cfg =
    match Hashtbl.find_opt cfg_ids cfg with
    | Some id -> id
    | None ->
        let id = cfgs.Vec.len in
        if id >= options.max_configs then
          raise
            (Abort
               (Printf.sprintf "state space exceeds max_configs = %d"
                  options.max_configs));
        Vec.push cfgs cfg;
        Hashtbl.add cfg_ids cfg id;
        id
  in
  let intern_cfg cfg =
    match reduce with
    | None -> intern_cfg_raw cfg
    | Some sym -> intern_cfg_raw (Symmetry.canonicalize sym cfg)
  in
  let materialize cfg = Array.map (fun sid -> Vec.get states sid) cfg in
  let pp_cfg ppf cfg =
    Fmt.pf ppf "@[<h>[%a]@]"
      Fmt.(array ~sep:(any " ") algo.Algorithm.pp)
      (materialize cfg)
  in
  (* Per-configuration results, filled during exploration. *)
  let enabled_masks = Vec.create 0 in
  let succs : int array Vec.t = Vec.create [||] in
  let legit = Vec.create false in
  let transitions = ref 0 in
  (* Violations: one witness per property, plus an occurrence count. *)
  let vtable : (string, string * int ref) Hashtbl.t = Hashtbl.create 8 in
  let violate property detail =
    match Hashtbl.find_opt vtable property with
    | Some (_, count) -> incr count
    | None -> Hashtbl.add vtable property (detail, ref 1)
  in
  let aborted = ref None in
  (* Certificate checking: on each explored transition out of an
     illegitimate configuration whose movers all fired covered rules, the
     potential must strictly decrease (lexicographically).  Potentials are
     memoized per interned configuration. *)
  let cert = if options.certs then F.certificate else None in
  let pot_memo : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let rule_names = Array.make n "" in
  (try
     (* Seed: the full product of the per-process domains — or, under
        symmetry reduction, one representative per orbit of that product,
        enumerated directly (the raw product is exactly what blows the
        budget on symmetric graphs). *)
     let seed_total =
       Array.fold_left (fun acc d -> acc * Array.length d) 1 doms
     in
     (match reduce with
     | Some sym ->
         (* [seed_total / |Aut|] lower-bounds the orbit count. *)
         if seed_total / Symmetry.order sym > options.max_configs then
           raise
             (Abort
                (Printf.sprintf
                   "seed domain has %d configurations, at least %d orbits \
                    (max %d)"
                   seed_total
                   (seed_total / Symmetry.order sym)
                   options.max_configs));
         (* Intern the common domain first so state id = domain index and
            the canonical digit arrays from the DFS are configurations. *)
         Array.iter (fun st -> ignore (intern_state st)) doms.(0);
         Symmetry.iter_canonical sym ~arity:(Array.length doms.(0))
           (fun digits -> ignore (intern_cfg_raw (Array.copy digits)))
     | None ->
         if seed_total > options.max_configs then
           raise
             (Abort
                (Printf.sprintf "seed domain has %d configurations (max %d)"
                   seed_total options.max_configs));
         for k = 0 to seed_total - 1 do
           let rest = ref k in
           let cfg =
             Array.init n (fun u ->
                 let len = Array.length doms.(u) in
                 let digit = !rest mod len in
                 rest := !rest / len;
                 intern_state doms.(u).(digit))
           in
           ignore (intern_cfg_raw cfg)
         done);
     (* Close under transitions; configurations are processed in insertion
        order, so the worklist is just the id counter. *)
     let next = ref 0 in
     while !next < cfgs.Vec.len do
       let c = !next in
       incr next;
       let cfg = Vec.get cfgs c in
       let full = materialize cfg in
       Vec.push legit (F.is_legitimate full);
       (* First-match rule semantics, exactly as the engine executes. *)
       let next_sid = Array.make n (-1) in
       let mask = ref 0 in
       for u = 0 to n - 1 do
         match Algorithm.enabled_rule algo (Algorithm.view F.graph full u) with
         | Some r ->
             mask := !mask lor (1 lsl u);
             rule_names.(u) <- r.Algorithm.rule_name;
             next_sid.(u) <-
               intern_state (r.Algorithm.action (Algorithm.view F.graph full u))
         | None -> ()
       done;
       Vec.push enabled_masks !mask;
       if !mask = 0 then begin
         if not (Vec.get legit c) then
           violate "dead-end"
             (Fmt.str "terminal illegitimate configuration %a" pp_cfg cfg);
         if not (F.terminal_ok full) then
           violate "terminal-output"
             (Fmt.str "terminal configuration %a fails the output check"
                pp_cfg cfg)
       end;
       let edges = ref [] in
       iter_nonempty_submasks !mask (fun sel ->
           let succ_cfg = Array.copy cfg in
           for u = 0 to n - 1 do
             if sel land (1 lsl u) <> 0 then succ_cfg.(u) <- next_sid.(u)
           done;
           let sc = intern_cfg succ_cfg in
           incr transitions;
           (match cert with
           | Some ct when not (Vec.get legit c) ->
               let covered = ref true in
               for u = 0 to n - 1 do
                 if sel land (1 lsl u) <> 0 && not (Cert.covers ct rule_names.(u))
                 then covered := false
               done;
               if !covered then begin
                 let potential_of id =
                   match Hashtbl.find_opt pot_memo id with
                   | Some p -> p
                   | None ->
                       let p =
                         ct.Cert.potential F.graph
                           (materialize (Vec.get cfgs id))
                       in
                       Hashtbl.add pot_memo id p;
                       p
                 in
                 let pc = potential_of c and ps = potential_of sc in
                 if not (Cert.lex_lt ps pc) then
                   violate "certificate"
                     (Fmt.str
                        "potential %s: %a -> %a does not decrease on %a \
                         --0x%x--> %a"
                        ct.Cert.cert_name Cert.pp_potential pc
                        Cert.pp_potential ps pp_cfg cfg sel pp_cfg
                        (Vec.get cfgs sc))
               end
           | _ -> ());
           edges := pack sc sel :: !edges);
       Vec.push succs (Array.of_list (List.rev !edges))
     done;
     let nconfigs = cfgs.Vec.len in
     (* Closure: no transition from legitimate to illegitimate. *)
     for c = 0 to nconfigs - 1 do
       if Vec.get legit c then
         Array.iter
           (fun e ->
             let sc = unpack_succ e in
             if not (Vec.get legit sc) then
               violate "closure"
                 (Fmt.str "legitimate %a steps (subset 0x%x) to illegitimate %a"
                    pp_cfg (Vec.get cfgs c) (unpack_mask e) pp_cfg
                    (Vec.get cfgs sc)))
           (Vec.get succs c)
     done;
     (* Cycle search with an iterative 3-color DFS restricted to the
        configurations satisfying [keep]; a grey-to-grey edge closes a
        cycle, reported with the configurations on the stack. *)
     let find_cycle keep =
       let color = Bytes.make nconfigs '\000' in
       let found = ref None in
       let c0 = ref 0 in
       while !found = None && !c0 < nconfigs do
         if keep !c0 && Bytes.get color !c0 = '\000' then begin
           let stack = ref [ (!c0, ref 0) ] in
           Bytes.set color !c0 '\001';
           while !found = None && !stack <> [] do
             match !stack with
             | [] -> ()
             | (c, i) :: rest ->
                 let edges = Vec.get succs c in
                 let advanced = ref false in
                 while
                   (not !advanced)
                   && !found = None
                   && !i < Array.length edges
                 do
                   let sc = unpack_succ edges.(!i) in
                   incr i;
                   if keep sc then
                     match Bytes.get color sc with
                     | '\000' ->
                         Bytes.set color sc '\001';
                         stack := (sc, ref 0) :: !stack;
                         advanced := true
                     | '\001' ->
                         (* Back edge into the grey ancestor [sc]: the stack
                            segment from [sc] to the top, in path order,
                            closed by [sc] again. *)
                         let seg = ref [] in
                         (try
                            List.iter
                              (fun (x, _) ->
                                seg := x :: !seg;
                                if x = sc then raise Exit)
                              !stack
                          with Exit -> ());
                         found := Some (!seg @ [ sc ])
                     | _ -> ()
                 done;
                 if (not !advanced) && !found = None then begin
                   Bytes.set color c '\002';
                   stack := rest
                 end
           done
         end;
         incr c0
       done;
       !found
     in
     let pp_cycle ppf cycle =
       let shown = List.filteri (fun i _ -> i < 5) cycle in
       Fmt.pf ppf "%a%s"
         Fmt.(list ~sep:(any " -> ") (fun ppf c -> pp_cfg ppf (Vec.get cfgs c)))
         shown
         (if List.length cycle > 5 then
            Printf.sprintf " -> ... (%d configurations)" (List.length cycle)
          else "")
     in
     (match find_cycle (fun c -> not (Vec.get legit c)) with
     | Some cycle ->
         violate "livelock"
           (Fmt.str
              "cycle of illegitimate configurations (an unfair daemon loops \
               it forever): %a"
              pp_cycle cycle)
     | None -> ());
     if options.expect_silent then begin
       match find_cycle (fun c -> Vec.get legit c) with
       | Some cycle ->
           violate "silence"
             (Fmt.str "infinite execution inside the legitimate set: %a"
                pp_cycle cycle)
       | None -> ()
     end
   with Abort reason -> aborted := Some reason);
  let nconfigs = cfgs.Vec.len in
  let violations =
    Hashtbl.fold
      (fun property (detail, count) acc ->
        let detail =
          if !count > 1 then
            Printf.sprintf "%s (+%d similar)" detail (!count - 1)
          else detail
        in
        { property; detail } :: acc)
      vtable []
    |> List.sort (fun a b -> compare a.property b.property)
  in
  let clean = violations = [] && !aborted = None in
  (* Exact worst-case moves: the illegitimate region is a DAG (no livelock,
     no dead end), so a post-order DFS gives a topological order for the
     longest-path DP.  A step executing the subset S costs |S| moves. *)
  let worst_moves =
    if not clean then None
    else begin
      let w = Array.make (max 1 nconfigs) (-1) in
      let best = ref 0 in
      for c0 = 0 to nconfigs - 1 do
        if (not (Vec.get legit c0)) && w.(c0) < 0 then begin
          let stack = ref [ (c0, ref 0) ] in
          while !stack <> [] do
            match !stack with
            | [] -> ()
            | (c, i) :: rest ->
                let edges = Vec.get succs c in
                let advanced = ref false in
                while (not !advanced) && !i < Array.length edges do
                  let sc = unpack_succ edges.(!i) in
                  incr i;
                  if (not (Vec.get legit sc)) && w.(sc) < 0 then begin
                    stack := (sc, ref 0) :: !stack;
                    advanced := true
                  end
                done;
                if not !advanced then begin
                  let acc = ref 0 in
                  Array.iter
                    (fun e ->
                      let sc = unpack_succ e in
                      let cost =
                        popcount (unpack_mask e)
                        + if Vec.get legit sc then 0 else w.(sc)
                      in
                      if cost > !acc then acc := cost)
                    edges;
                  w.(c) <- !acc;
                  if !acc > !best then best := !acc;
                  stack := rest
                end
          done
        end
      done;
      Some !best
    end
  in
  (* Exact worst-case rounds over the augmented (configuration ×
     pending-mask) graph, mirroring the engine's neutralization-based
     accounting: after a step selecting S, the processes of the round that
     remain pending are those not selected and still enabled; when none
     remain, a round completes.  Reaching the legitimate set counts the
     current (possibly partial) round — the engine's convention. *)
  let worst_rounds =
    let illegit_count =
      let c = ref 0 in
      for i = 0 to nconfigs - 1 do
        if not (Vec.get legit i) then incr c
      done;
      !c
    in
    let wanted =
      match options.rounds with
      | `Off -> false
      | `On -> true
      | `Auto -> illegit_count * (1 lsl n) <= options.max_round_states
    in
    if (not clean) || not wanted then None
    else begin
      let memo : (int, int) Hashtbl.t = Hashtbl.create 1024 in
      let grey : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
      let key c pending = (c lsl 6) lor pending in
      (* Under symmetry reduction a stored successor is the canonical
         relabeling of the raw successor, so the pending mask must be
         transported through the automorphism that did the relabeling.  The
         permutation per edge is recovered by recomputing the raw successor
         and matching it against the stored representative; any matching
         automorphism works — two matches differ by a stabilizer of the
         representative, and stabilizer-related augmented states have equal
         DP values.  Memoized per configuration; the rounds DP only runs on
         small spaces (the `Auto` budget), so the recomputation is cheap. *)
      let edge_perms =
        let cache : (int, int array) Hashtbl.t = Hashtbl.create 256 in
        fun sym c ->
          match Hashtbl.find_opt cache c with
          | Some a -> a
          | None ->
              let auts = Symmetry.auts sym in
              let cfg = Vec.get cfgs c in
              let full = materialize cfg in
              let next_sid = Array.make n (-1) in
              for u = 0 to n - 1 do
                match
                  Algorithm.enabled_rule algo (Algorithm.view F.graph full u)
                with
                | Some r ->
                    next_sid.(u) <-
                      intern_state
                        (r.Algorithm.action (Algorithm.view F.graph full u))
                | None -> ()
              done;
              let perms =
                Array.map
                  (fun e ->
                    let sel = unpack_mask e and sc = unpack_succ e in
                    let raw = Array.copy cfg in
                    for u = 0 to n - 1 do
                      if sel land (1 lsl u) <> 0 then raw.(u) <- next_sid.(u)
                    done;
                    let target = Vec.get cfgs sc in
                    let matches p =
                      let ok = ref true in
                      for i = 0 to n - 1 do
                        if target.(i) <> raw.(p.(i)) then ok := false
                      done;
                      !ok
                    in
                    let rec find a =
                      if a >= Array.length auts then
                        invalid_arg "Model: no automorphism matches successor"
                      else if matches auts.(a) then a
                      else find (a + 1)
                    in
                    find 0)
                  (Vec.get succs c)
              in
              Hashtbl.add cache c perms;
              perms
      in
      (* Dependencies of an augmented state: (increment, key of child) per
         transition, or a constant 1 when the child is legitimate. *)
      let deps c pending =
        let edges = Vec.get succs c in
        match reduce with
        | None ->
            Array.map
              (fun e ->
                let sc = unpack_succ e and sel = unpack_mask e in
                if Vec.get legit sc then `Const 1
                else begin
                  let survivors =
                    pending land lnot sel land Vec.get enabled_masks sc
                  in
                  if survivors = 0 then
                    `Dep (1, key sc (Vec.get enabled_masks sc))
                  else `Dep (0, key sc survivors)
                end)
              edges
        | Some sym ->
            let perms = edge_perms sym c in
            Array.mapi
              (fun idx e ->
                let sc = unpack_succ e and sel = unpack_mask e in
                if Vec.get legit sc then `Const 1
                else begin
                  let p = (Symmetry.auts sym).(perms.(idx)) in
                  let enabled = Vec.get enabled_masks sc in
                  let survivors =
                    pending land lnot sel land Symmetry.transport p enabled
                  in
                  if survivors = 0 then `Dep (1, key sc enabled)
                  else `Dep (0, key sc (Symmetry.untransport p survivors))
                end)
              edges
      in
      let eval k0 =
        let stack = ref [ k0 ] in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | k :: rest ->
              if Hashtbl.mem memo k then stack := rest
              else begin
                let c = k lsr 6 and pending = k land 63 in
                let ds = deps c pending in
                let missing = ref [] in
                Array.iter
                  (fun d ->
                    match d with
                    | `Const _ -> ()
                    | `Dep (_, k') ->
                        if not (Hashtbl.mem memo k') then
                          missing := k' :: !missing)
                  ds;
                if !missing = [] then begin
                  let r = ref 0 in
                  Array.iter
                    (fun d ->
                      let v =
                        match d with
                        | `Const v -> v
                        | `Dep (inc, k') -> inc + Hashtbl.find memo k'
                      in
                      if v > !r then r := v)
                    ds;
                  Hashtbl.replace memo k !r;
                  Hashtbl.remove grey k;
                  stack := rest
                end
                else begin
                  (* A grey dependency would be a cycle in the augmented
                     graph, which projects to an illegitimate-configuration
                     cycle — excluded by the livelock check. *)
                  List.iter (fun k' -> assert (not (Hashtbl.mem grey k'))) !missing;
                  Hashtbl.replace grey k ();
                  stack := List.rev_append !missing !stack
                end
              end
        done;
        Hashtbl.find memo k0
      in
      let best = ref 0 in
      (try
         for c = 0 to nconfigs - 1 do
           if not (Vec.get legit c) then begin
             let r = eval (key c (Vec.get enabled_masks c)) in
             if r > !best then best := r;
             if Hashtbl.length memo > options.max_round_states then
               raise (Abort "rounds")
           end
         done;
         ()
       with Abort _ -> best := -1);
      if !best < 0 then None else Some !best
    end
  in
  let legitimate = ref 0 and terminal = ref 0 in
  for c = 0 to nconfigs - 1 do
    if c < legit.Vec.len && Vec.get legit c then incr legitimate;
    if c < enabled_masks.Vec.len && Vec.get enabled_masks c = 0 then
      incr terminal
  done;
  { instance = F.name;
    graph_n = n;
    graph_m = Graph.m F.graph;
    stats =
      { configs = nconfigs;
        transitions = !transitions;
        legitimate = !legitimate;
        terminal = !terminal;
        wall_s = Unix.gettimeofday () -. t0 };
    violations;
    aborted = !aborted;
    worst_moves;
    worst_rounds;
    automorphisms = Option.map Symmetry.order reduce;
    certificate = Option.map (fun ct -> ct.Cert.cert_name) cert }

let check ?(options = default_options) (inst : Finite.t) =
  let (module F) = inst in
  check_instance ~options (module F)

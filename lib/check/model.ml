module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph

type violation = {
  property : string;
  detail : string;
}

type stats = {
  configs : int;
  transitions : int;
  legitimate : int;
  terminal : int;
  wall_s : float;
}

type t = {
  instance : string;
  graph_n : int;
  graph_m : int;
  stats : stats;
  violations : violation list;
  aborted : string option;
  worst_moves : int option;
  worst_rounds : int option;
}

type options = {
  max_configs : int;
  max_round_states : int;
  rounds : [ `Auto | `On | `Off ];
  expect_silent : bool;
}

let default_options =
  { max_configs = 1_000_000;
    max_round_states = 600_000;
    rounds = `Auto;
    expect_silent = false }

exception Abort of string

(* Growable vector — the state space size is not known in advance. *)
module Vec = struct
  type 'a t = {
    mutable data : 'a array;
    mutable len : int;
    dummy : 'a;
  }

  let create dummy = { data = Array.make 64 dummy; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.data then begin
      let grown = Array.make (2 * v.len) v.dummy in
      Array.blit v.data 0 grown 0 v.len;
      v.data <- grown
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
end

let popcount m =
  let c = ref 0 and x = ref m in
  while !x <> 0 do
    incr c;
    x := !x land (!x - 1)
  done;
  !c

(* All non-empty submasks of [m], descending. *)
let iter_nonempty_submasks m f =
  let s = ref m in
  while !s <> 0 do
    f !s;
    s := (!s - 1) land m
  done

(* Successor edges are packed as [(succ_id lsl 6) lor selected_mask]; the
   mask fits in 6 bits because graphs are capped at n = 6. *)
let pack succ mask = (succ lsl 6) lor mask
let unpack_succ e = e lsr 6
let unpack_mask e = e land 63

let check_instance (type s) ~options
    (module F : Finite.FINITE with type state = s) =
  let t0 = Unix.gettimeofday () in
  let n = Graph.n F.graph in
  let algo = F.algorithm in
  (* State interning.  Uses the polymorphic hash table: instance states are
     pure structural data (ints, records, variants), for which structural
     equality coincides with [algo.equal]. *)
  let state_ids : (s, int) Hashtbl.t = Hashtbl.create 256 in
  let state_dummy = List.hd (F.domain 0) in
  let states : s Vec.t = Vec.create state_dummy in
  let intern_state st =
    match Hashtbl.find_opt state_ids st with
    | Some id -> id
    | None ->
        let id = states.Vec.len in
        Vec.push states st;
        Hashtbl.add state_ids st id;
        id
  in
  (* Configuration interning: a configuration is the int array of its
     processes' state ids. *)
  let cfg_ids : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let cfgs : int array Vec.t = Vec.create [||] in
  let intern_cfg cfg =
    match Hashtbl.find_opt cfg_ids cfg with
    | Some id -> id
    | None ->
        let id = cfgs.Vec.len in
        if id >= options.max_configs then
          raise
            (Abort
               (Printf.sprintf "state space exceeds max_configs = %d"
                  options.max_configs));
        Vec.push cfgs cfg;
        Hashtbl.add cfg_ids cfg id;
        id
  in
  let materialize cfg = Array.map (fun sid -> Vec.get states sid) cfg in
  let pp_cfg ppf cfg =
    Fmt.pf ppf "@[<h>[%a]@]"
      Fmt.(array ~sep:(any " ") algo.Algorithm.pp)
      (materialize cfg)
  in
  (* Per-configuration results, filled during exploration. *)
  let enabled_masks = Vec.create 0 in
  let succs : int array Vec.t = Vec.create [||] in
  let legit = Vec.create false in
  let transitions = ref 0 in
  (* Violations: one witness per property, plus an occurrence count. *)
  let vtable : (string, string * int ref) Hashtbl.t = Hashtbl.create 8 in
  let violate property detail =
    match Hashtbl.find_opt vtable property with
    | Some (_, count) -> incr count
    | None -> Hashtbl.add vtable property (detail, ref 1)
  in
  let aborted = ref None in
  (try
     (* Seed: the full product of the per-process domains. *)
     let doms = Array.init n (fun u -> Array.of_list (F.domain u)) in
     let seed_total =
       Array.fold_left (fun acc d -> acc * Array.length d) 1 doms
     in
     if seed_total > options.max_configs then
       raise
         (Abort
            (Printf.sprintf "seed domain has %d configurations (max %d)"
               seed_total options.max_configs));
     for k = 0 to seed_total - 1 do
       let rest = ref k in
       let cfg =
         Array.init n (fun u ->
             let len = Array.length doms.(u) in
             let digit = !rest mod len in
             rest := !rest / len;
             intern_state doms.(u).(digit))
       in
       ignore (intern_cfg cfg)
     done;
     (* Close under transitions; configurations are processed in insertion
        order, so the worklist is just the id counter. *)
     let next = ref 0 in
     while !next < cfgs.Vec.len do
       let c = !next in
       incr next;
       let cfg = Vec.get cfgs c in
       let full = materialize cfg in
       Vec.push legit (F.is_legitimate full);
       (* First-match rule semantics, exactly as the engine executes. *)
       let next_sid = Array.make n (-1) in
       let mask = ref 0 in
       for u = 0 to n - 1 do
         match Algorithm.enabled_rule algo (Algorithm.view F.graph full u) with
         | Some r ->
             mask := !mask lor (1 lsl u);
             next_sid.(u) <-
               intern_state (r.Algorithm.action (Algorithm.view F.graph full u))
         | None -> ()
       done;
       Vec.push enabled_masks !mask;
       if !mask = 0 then begin
         if not (Vec.get legit c) then
           violate "dead-end"
             (Fmt.str "terminal illegitimate configuration %a" pp_cfg cfg);
         if not (F.terminal_ok full) then
           violate "terminal-output"
             (Fmt.str "terminal configuration %a fails the output check"
                pp_cfg cfg)
       end;
       let edges = ref [] in
       iter_nonempty_submasks !mask (fun sel ->
           let succ_cfg = Array.copy cfg in
           for u = 0 to n - 1 do
             if sel land (1 lsl u) <> 0 then succ_cfg.(u) <- next_sid.(u)
           done;
           let sc = intern_cfg succ_cfg in
           incr transitions;
           edges := pack sc sel :: !edges);
       Vec.push succs (Array.of_list (List.rev !edges))
     done;
     let nconfigs = cfgs.Vec.len in
     (* Closure: no transition from legitimate to illegitimate. *)
     for c = 0 to nconfigs - 1 do
       if Vec.get legit c then
         Array.iter
           (fun e ->
             let sc = unpack_succ e in
             if not (Vec.get legit sc) then
               violate "closure"
                 (Fmt.str "legitimate %a steps (subset 0x%x) to illegitimate %a"
                    pp_cfg (Vec.get cfgs c) (unpack_mask e) pp_cfg
                    (Vec.get cfgs sc)))
           (Vec.get succs c)
     done;
     (* Cycle search with an iterative 3-color DFS restricted to the
        configurations satisfying [keep]; a grey-to-grey edge closes a
        cycle, reported with the configurations on the stack. *)
     let find_cycle keep =
       let color = Bytes.make nconfigs '\000' in
       let found = ref None in
       let c0 = ref 0 in
       while !found = None && !c0 < nconfigs do
         if keep !c0 && Bytes.get color !c0 = '\000' then begin
           let stack = ref [ (!c0, ref 0) ] in
           Bytes.set color !c0 '\001';
           while !found = None && !stack <> [] do
             match !stack with
             | [] -> ()
             | (c, i) :: rest ->
                 let edges = Vec.get succs c in
                 let advanced = ref false in
                 while
                   (not !advanced)
                   && !found = None
                   && !i < Array.length edges
                 do
                   let sc = unpack_succ edges.(!i) in
                   incr i;
                   if keep sc then
                     match Bytes.get color sc with
                     | '\000' ->
                         Bytes.set color sc '\001';
                         stack := (sc, ref 0) :: !stack;
                         advanced := true
                     | '\001' ->
                         (* Back edge into the grey ancestor [sc]: the stack
                            segment from [sc] to the top, in path order,
                            closed by [sc] again. *)
                         let seg = ref [] in
                         (try
                            List.iter
                              (fun (x, _) ->
                                seg := x :: !seg;
                                if x = sc then raise Exit)
                              !stack
                          with Exit -> ());
                         found := Some (!seg @ [ sc ])
                     | _ -> ()
                 done;
                 if (not !advanced) && !found = None then begin
                   Bytes.set color c '\002';
                   stack := rest
                 end
           done
         end;
         incr c0
       done;
       !found
     in
     let pp_cycle ppf cycle =
       let shown = List.filteri (fun i _ -> i < 5) cycle in
       Fmt.pf ppf "%a%s"
         Fmt.(list ~sep:(any " -> ") (fun ppf c -> pp_cfg ppf (Vec.get cfgs c)))
         shown
         (if List.length cycle > 5 then
            Printf.sprintf " -> ... (%d configurations)" (List.length cycle)
          else "")
     in
     (match find_cycle (fun c -> not (Vec.get legit c)) with
     | Some cycle ->
         violate "livelock"
           (Fmt.str
              "cycle of illegitimate configurations (an unfair daemon loops \
               it forever): %a"
              pp_cycle cycle)
     | None -> ());
     if options.expect_silent then begin
       match find_cycle (fun c -> Vec.get legit c) with
       | Some cycle ->
           violate "silence"
             (Fmt.str "infinite execution inside the legitimate set: %a"
                pp_cycle cycle)
       | None -> ()
     end
   with Abort reason -> aborted := Some reason);
  let nconfigs = cfgs.Vec.len in
  let violations =
    Hashtbl.fold
      (fun property (detail, count) acc ->
        let detail =
          if !count > 1 then
            Printf.sprintf "%s (+%d similar)" detail (!count - 1)
          else detail
        in
        { property; detail } :: acc)
      vtable []
    |> List.sort (fun a b -> compare a.property b.property)
  in
  let clean = violations = [] && !aborted = None in
  (* Exact worst-case moves: the illegitimate region is a DAG (no livelock,
     no dead end), so a post-order DFS gives a topological order for the
     longest-path DP.  A step executing the subset S costs |S| moves. *)
  let worst_moves =
    if not clean then None
    else begin
      let w = Array.make (max 1 nconfigs) (-1) in
      let best = ref 0 in
      for c0 = 0 to nconfigs - 1 do
        if (not (Vec.get legit c0)) && w.(c0) < 0 then begin
          let stack = ref [ (c0, ref 0) ] in
          while !stack <> [] do
            match !stack with
            | [] -> ()
            | (c, i) :: rest ->
                let edges = Vec.get succs c in
                let advanced = ref false in
                while (not !advanced) && !i < Array.length edges do
                  let sc = unpack_succ edges.(!i) in
                  incr i;
                  if (not (Vec.get legit sc)) && w.(sc) < 0 then begin
                    stack := (sc, ref 0) :: !stack;
                    advanced := true
                  end
                done;
                if not !advanced then begin
                  let acc = ref 0 in
                  Array.iter
                    (fun e ->
                      let sc = unpack_succ e in
                      let cost =
                        popcount (unpack_mask e)
                        + if Vec.get legit sc then 0 else w.(sc)
                      in
                      if cost > !acc then acc := cost)
                    edges;
                  w.(c) <- !acc;
                  if !acc > !best then best := !acc;
                  stack := rest
                end
          done
        end
      done;
      Some !best
    end
  in
  (* Exact worst-case rounds over the augmented (configuration ×
     pending-mask) graph, mirroring the engine's neutralization-based
     accounting: after a step selecting S, the processes of the round that
     remain pending are those not selected and still enabled; when none
     remain, a round completes.  Reaching the legitimate set counts the
     current (possibly partial) round — the engine's convention. *)
  let worst_rounds =
    let illegit_count =
      let c = ref 0 in
      for i = 0 to nconfigs - 1 do
        if not (Vec.get legit i) then incr c
      done;
      !c
    in
    let wanted =
      match options.rounds with
      | `Off -> false
      | `On -> true
      | `Auto -> illegit_count * (1 lsl n) <= options.max_round_states
    in
    if (not clean) || not wanted then None
    else begin
      let memo : (int, int) Hashtbl.t = Hashtbl.create 1024 in
      let grey : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
      let key c pending = (c lsl 6) lor pending in
      (* Dependencies of an augmented state: (increment, key of child) per
         transition, or a constant 1 when the child is legitimate. *)
      let deps c pending =
        let edges = Vec.get succs c in
        Array.map
          (fun e ->
            let sc = unpack_succ e and sel = unpack_mask e in
            if Vec.get legit sc then `Const 1
            else begin
              let survivors =
                pending land lnot sel land Vec.get enabled_masks sc
              in
              if survivors = 0 then `Dep (1, key sc (Vec.get enabled_masks sc))
              else `Dep (0, key sc survivors)
            end)
          edges
      in
      let eval k0 =
        let stack = ref [ k0 ] in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | k :: rest ->
              if Hashtbl.mem memo k then stack := rest
              else begin
                let c = k lsr 6 and pending = k land 63 in
                let ds = deps c pending in
                let missing = ref [] in
                Array.iter
                  (fun d ->
                    match d with
                    | `Const _ -> ()
                    | `Dep (_, k') ->
                        if not (Hashtbl.mem memo k') then
                          missing := k' :: !missing)
                  ds;
                if !missing = [] then begin
                  let r = ref 0 in
                  Array.iter
                    (fun d ->
                      let v =
                        match d with
                        | `Const v -> v
                        | `Dep (inc, k') -> inc + Hashtbl.find memo k'
                      in
                      if v > !r then r := v)
                    ds;
                  Hashtbl.replace memo k !r;
                  Hashtbl.remove grey k;
                  stack := rest
                end
                else begin
                  (* A grey dependency would be a cycle in the augmented
                     graph, which projects to an illegitimate-configuration
                     cycle — excluded by the livelock check. *)
                  List.iter (fun k' -> assert (not (Hashtbl.mem grey k'))) !missing;
                  Hashtbl.replace grey k ();
                  stack := List.rev_append !missing !stack
                end
              end
        done;
        Hashtbl.find memo k0
      in
      let best = ref 0 in
      (try
         for c = 0 to nconfigs - 1 do
           if not (Vec.get legit c) then begin
             let r = eval (key c (Vec.get enabled_masks c)) in
             if r > !best then best := r;
             if Hashtbl.length memo > options.max_round_states then
               raise (Abort "rounds")
           end
         done;
         ()
       with Abort _ -> best := -1);
      if !best < 0 then None else Some !best
    end
  in
  let legitimate = ref 0 and terminal = ref 0 in
  for c = 0 to nconfigs - 1 do
    if c < legit.Vec.len && Vec.get legit c then incr legitimate;
    if c < enabled_masks.Vec.len && Vec.get enabled_masks c = 0 then
      incr terminal
  done;
  { instance = F.name;
    graph_n = n;
    graph_m = Graph.m F.graph;
    stats =
      { configs = nconfigs;
        transitions = !transitions;
        legitimate = !legitimate;
        terminal = !terminal;
        wall_s = Unix.gettimeofday () -. t0 };
    violations;
    aborted = !aborted;
    worst_moves;
    worst_rounds }

let check ?(options = default_options) (inst : Finite.t) =
  let (module F) = inst in
  check_instance ~options (module F)

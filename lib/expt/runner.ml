module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Graph = Ssreset_graph.Graph
module Sdr = Ssreset_core.Sdr
module Json = Ssreset_obs.Json
module Metrics = Ssreset_obs.Metrics
module Monitor = Ssreset_obs.Monitor
module Obs = Ssreset_obs.Obs
module Sink = Ssreset_obs.Sink

type obs = {
  outcome_ok : bool;
  result_ok : bool;
  rounds : int;
  moves : int;
  steps : int;
  sdr_moves : int;
  max_proc_moves : int;
  max_proc_sdr_moves : int;
  workload_p50 : float;
  workload_p90 : float;
  moves_per_rule : (string * int) list;
  segments : int option;
  ar_monotone : bool option;
  wall_s : float;
}

let max_int_array = Array.fold_left max 0

(* Per-process workload distribution (the Devismes-Ilcinkas-Johnen-Mazoit
   trade-off metric): percentiles of the per-process move counts. *)
let workload_percentiles (result : _ Engine.result) =
  let samples =
    Array.to_list (Array.map float_of_int result.Engine.moves_per_process)
  in
  ( Ssreset_sim.Stats.percentile samples ~p:50.,
    Ssreset_sim.Stats.percentile samples ~p:90. )

let is_sdr_rule name =
  String.length name >= 4 && String.equal (String.sub name 0 4) "SDR-"

let outcome_string = function
  | Engine.Stabilized -> "stabilized"
  | Engine.Terminal -> "terminal"
  | Engine.Step_limit -> "step-limit"

let obs_json o =
  Json.Obj
    [ ("outcome_ok", Json.Bool o.outcome_ok);
      ("result_ok", Json.Bool o.result_ok);
      ("rounds", Json.Int o.rounds);
      ("moves", Json.Int o.moves);
      ("steps", Json.Int o.steps);
      ("sdr_moves", Json.Int o.sdr_moves);
      ("max_proc_moves", Json.Int o.max_proc_moves);
      ("max_proc_sdr_moves", Json.Int o.max_proc_sdr_moves);
      ("workload_p50", Json.Float o.workload_p50);
      ("workload_p90", Json.Float o.workload_p90);
      ( "moves_per_rule",
        Json.Obj
          (List.map (fun (rule, count) -> (rule, Json.Int count)) o.moves_per_rule)
      );
      ("segments",
       match o.segments with Some s -> Json.Int s | None -> Json.Null);
      ("ar_monotone",
       match o.ar_monotone with Some b -> Json.Bool b | None -> Json.Null);
      ("wall_s", Json.Float o.wall_s);
      ("steps_per_s",
       Json.Float
         (if o.wall_s > 0. then float_of_int o.steps /. o.wall_s else 0.)) ]

(* --------------------------- telemetry plumbing ------------------------- *)

(* When a sink is attached, a run carries a metrics registry fed by the
   engine's [on_step]/[on_round] hooks and emits one JSONL record per round
   plus a final summary.  Without a sink all of this is skipped, so the
   sweeps and benchmarks pay nothing. *)
type 'state telemetry = {
  on_step : (step:int -> enabled:int -> selected:int -> unit) option;
  on_round : (round:int -> steps:int -> moves:int -> 'state array -> unit) option;
  emit_summary : obs -> 'state Engine.result -> unit;
}

let no_telemetry =
  { on_step = None; on_round = None; emit_summary = (fun _ _ -> ()) }

let telemetry ?sink ?(monitor_round = fun ~round:_ ~steps:_ -> ())
    ?(summary_extra = fun () -> []) ~round_extra () =
  match sink with
  | None -> no_telemetry
  | Some sink ->
      let metrics = Metrics.create () in
      let buckets = Metrics.pow2_buckets ~limit:4096. in
      let h_enabled = Metrics.histogram metrics "enabled_set_size" ~buckets in
      let h_selected = Metrics.histogram metrics "selected_set_size" ~buckets in
      let h_round = Metrics.histogram metrics "steps_per_round" ~buckets in
      let last_round_steps = ref 0 in
      let on_step ~step:_ ~enabled ~selected =
        Metrics.observe h_enabled (float_of_int enabled);
        Metrics.observe h_selected (float_of_int selected)
      in
      let on_round ~round ~steps ~moves cfg =
        Metrics.observe h_round (float_of_int (steps - !last_round_steps));
        last_round_steps := steps;
        (* Bound monitors see the round before its record is written, so an
           anomaly precedes the round record that exposes it. *)
        monitor_round ~round ~steps;
        Sink.write sink
          (Sink.round_record ~round ~steps ~moves ~extra:(round_extra cfg) ())
      in
      let emit_summary (o : obs) (result : _ Engine.result) =
        List.iter
          (fun (rule, count) ->
            Metrics.add (Metrics.counter metrics ("moves." ^ rule)) count)
          result.Engine.moves_per_rule;
        Metrics.set (Metrics.gauge metrics "wall_s") o.wall_s;
        Metrics.set (Metrics.gauge metrics "steps_per_s")
          (if o.wall_s > 0. then float_of_int o.steps /. o.wall_s else 0.);
        (match o.segments with
        | Some s -> Metrics.set (Metrics.gauge metrics "segments") (float_of_int s)
        | None -> ());
        Sink.write sink
          (Sink.summary ~outcome:(outcome_string result.Engine.outcome)
             ~rounds:o.rounds ~steps:o.steps ~moves:o.moves ~wall_s:o.wall_s
             ~extra:
               ([ ("outcome_ok", Json.Bool o.outcome_ok);
                 ("result_ok", Json.Bool o.result_ok);
                 ("sdr_moves", Json.Int o.sdr_moves);
                 ("max_proc_moves", Json.Int o.max_proc_moves);
                 ("max_proc_sdr_moves", Json.Int o.max_proc_sdr_moves);
                 ("segments",
                  match o.segments with
                  | Some s -> Json.Int s
                  | None -> Json.Null);
                 ("ar_monotone",
                  match o.ar_monotone with
                  | Some b -> Json.Bool b
                  | None -> Json.Null);
                 ("moves_per_rule",
                  Json.Obj
                    (List.map
                       (fun (rule, count) -> (rule, Json.Int count))
                       result.Engine.moves_per_rule));
                 ("metrics", Metrics.to_json metrics) ]
               @ summary_extra ())
             ())
      in
      { on_step = Some on_step; on_round = Some on_round; emit_summary }

let no_round_extra _ = []

(* Observers shared by all composed runs, as a stack of reusable probes:
   per-process SDR move counts, segment counting, and the subset check of
   Remark 4 (alive-root sets only shrink).  With a sink attached, online
   bound monitors ride along (move/round bounds per system, alive-root
   monotonicity for all) and [trace_steps] adds the step-level wave-tagged
   records of the ssreset-trace-v1 schema. *)
let composed_observers (type s) (module C : Sdr.S with type inner = s) ?sink
    ?(trace_steps = false) ?rounds_bound ?moves_bound graph cfg0 =
  let per_proc_sdr, sdr_probe =
    Obs.per_process_moves ~n:(Graph.n graph) ~matches:is_sdr_rule ()
  in
  let segments = C.Segments.create graph cfg0 in
  let monotone, root_probe =
    Obs.shrinking ~measure:(C.alive_roots graph) ~init:(C.alive_roots graph cfg0)
  in
  let monitor = Option.map (fun sink -> Monitor.create ~sink ()) sink in
  let monitor_probes =
    match monitor with
    | None -> []
    | Some m ->
        (match moves_bound with
        | Some bound -> [ Monitor.move_bound m ~name:"moves-bound" ~bound ]
        | None -> [])
        @ [ Monitor.non_increasing m ~name:"alive-roots-monotone"
              ~measure:(C.count_alive_roots graph)
              ~init:(C.count_alive_roots graph cfg0) ]
  in
  let tracer =
    match (sink, trace_steps) with
    | Some sink, true ->
        let tracker = C.Waves.create graph cfg0 in
        Sink.write sink
          (Sink.init_record
             ~active:
               (List.map
                  (fun (p, st, d) -> (p, Sdr.status_to_string st, d))
                  (C.Waves.initial_active cfg0)));
        [ (fun ~step ~moved after ->
            Sink.write sink
              (Sink.step_record ~step
                 ~movers:(C.Waves.classify_movers tracker moved));
            C.Waves.observer tracker ~step ~moved after) ]
    | _ -> []
  in
  let observer =
    Obs.combine
      ([ sdr_probe; C.Segments.observer segments; root_probe ]
      @ monitor_probes @ tracer)
  in
  let finish (result : _ Engine.result) ~outcome_ok ~result_ok =
    let workload_p50, workload_p90 = workload_percentiles result in
    { outcome_ok;
      result_ok;
      rounds = result.Engine.rounds;
      moves = result.Engine.moves;
      steps = result.Engine.steps;
      sdr_moves =
        Engine.moves_of_rules result.Engine.moves_per_rule ~prefixes:[ "SDR-" ];
      max_proc_moves = max_int_array result.Engine.moves_per_process;
      max_proc_sdr_moves = max_int_array per_proc_sdr;
      workload_p50;
      workload_p90;
      moves_per_rule = result.Engine.moves_per_rule;
      segments = Some (C.Segments.count segments);
      ar_monotone = Some !monotone;
      wall_s = result.Engine.wall_s }
  in
  let round_extra cfg =
    [ ("alive_roots", Json.Int (C.count_alive_roots graph cfg));
      ("segments", Json.Int (C.Segments.count segments)) ]
  in
  let monitor_round ~round ~steps =
    match (monitor, rounds_bound) with
    | Some m, Some bound ->
        Monitor.round_bound m ~name:"rounds-bound" ~bound ~round ~steps
    | _ -> ()
  in
  let summary_extra () =
    match monitor with
    | Some m -> [ ("anomalies", Json.Int (Monitor.anomaly_count m)) ]
    | None -> []
  in
  (observer, finish, round_extra, monitor_round, summary_extra)

(* Step-level tracing for non-composed runs: movers carry no wave tags. *)
let bare_tracer ?sink ~trace_steps () =
  match sink with
  | Some sink when trace_steps ->
      Some
        (fun ~step ~moved _cfg ->
          Sink.write sink
            (Sink.step_record ~step
               ~movers:(List.map (fun (p, rule) -> (p, rule, None)) moved)))
  | _ -> None

(* Bare (non-composed) runs measure neither segments nor alive-root
   monotonicity — those fields are [None], not fabricated values. *)
let bare_obs (result : _ Engine.result) ~outcome_ok ~result_ok =
  let workload_p50, workload_p90 = workload_percentiles result in
  { outcome_ok;
    result_ok;
    rounds = result.Engine.rounds;
    moves = result.Engine.moves;
    steps = result.Engine.steps;
    sdr_moves = 0;
    max_proc_moves = max_int_array result.Engine.moves_per_process;
    max_proc_sdr_moves = 0;
    workload_p50;
    workload_p90;
    moves_per_rule = result.Engine.moves_per_rule;
    segments = None;
    ar_monotone = None;
    wall_s = result.Engine.wall_s }

let rngs seed = (Random.State.make [| seed; 17 |], Random.State.make [| seed; 91 |])

let unison_composed ?(max_steps = 20_000_000) ?scheduler ?prof ?sink
    ?(trace_steps = false) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module U = Ssreset_unison.Unison.Make (struct
    let k = (2 * n) + 2
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  (* The D·n² bound needs the diameter; only pay for it when a sink is
     actually watching. *)
  let moves_bound =
    Option.map
      (fun _ -> Ssreset_graph.Metrics.diameter graph * n * n)
      sink
  in
  let observer, finish, round_extra, monitor_round, summary_extra =
    composed_observers (module U.Composed) ?sink ~trace_steps
      ~rounds_bound:(3 * n) ?moves_bound graph cfg
  in
  let tele = telemetry ?sink ~monitor_round ~summary_extra ~round_extra () in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps ~observer ?on_step:tele.on_step
      ?on_round:tele.on_round
      ~stop:(U.Composed.is_normal graph)
      ~algorithm:U.Composed.algorithm ~graph ~daemon cfg
  in
  let stabilized = result.Engine.outcome = Engine.Stabilized in
  let o =
    finish result ~outcome_ok:stabilized
      ~result_ok:(stabilized && U.Composed.is_normal graph result.Engine.final)
  in
  tele.emit_summary o result;
  o

let unison_bare ?scheduler ?prof ?sink ?(trace_steps = false) ~steps ~graph ~daemon
    ~seed () =
  let n = Graph.n graph in
  let module U = Ssreset_unison.Unison.Make (struct
    let k = (2 * n) + 2
  end) in
  let _, run_rng = rngs seed in
  let monitor = Ssreset_unison.Checker.create_monitor ~k:U.k graph in
  let checker_obs ~step ~moved cfg =
    Ssreset_unison.Checker.observe_bare monitor ~step ~moved cfg
  in
  let observer =
    match bare_tracer ?sink ~trace_steps () with
    | Some tracer -> Obs.combine [ checker_obs; tracer ]
    | None -> checker_obs
  in
  let tele = telemetry ?sink ~round_extra:no_round_extra () in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps:steps ~observer ?on_step:tele.on_step
      ?on_round:tele.on_round ~algorithm:U.bare ~graph ~daemon
      (U.gamma_init graph)
  in
  (* U never terminates from γ_init (Lemma 18), so exhausting the step
     budget is the expected outcome here. *)
  let outcome_ok = result.Engine.outcome = Engine.Step_limit in
  let result_ok =
    Ssreset_unison.Checker.safety_violations monitor = 0
    && Ssreset_unison.Checker.min_increments monitor > 0
  in
  let o = bare_obs result ~outcome_ok ~result_ok in
  tele.emit_summary o result;
  o

let tail_unison ?(max_steps = 50_000_000) ?scheduler ?prof ?sink
    ?(trace_steps = false) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module T = Ssreset_unison.Tail_unison.Make (struct
    let k = (2 * n) + 2
    let alpha = n
  end) in
  let cfg_rng, run_rng = rngs seed in
  let cfg = Fault.arbitrary cfg_rng T.clock_gen graph in
  let tele = telemetry ?sink ~round_extra:no_round_extra () in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps
      ?observer:(bare_tracer ?sink ~trace_steps ())
      ?on_step:tele.on_step ?on_round:tele.on_round
      ~stop:(T.is_legitimate graph)
      ~algorithm:T.algorithm ~graph ~daemon cfg
  in
  let stabilized = result.Engine.outcome = Engine.Stabilized in
  let o =
    bare_obs result ~outcome_ok:stabilized
      ~result_ok:(stabilized && T.is_legitimate graph result.Engine.final)
  in
  tele.emit_summary o result;
  o

let unison_agr ?(max_steps = 2_000_000) ?scheduler ?prof ?sink
    ?(trace_steps = false) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module U = Ssreset_unison.Unison.Make (struct
    let k = (2 * n) + 2
  end) in
  let module A =
    Ssreset_agreset.Agreset.Make
      (U.Input)
      (struct
        let graph = graph
        let root = 0
      end)
  in
  let cfg_rng, run_rng = rngs seed in
  let gen = A.generator ~inner:U.clock_gen in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let tele = telemetry ?sink ~round_extra:no_round_extra () in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps
      ?observer:(bare_tracer ?sink ~trace_steps ())
      ?on_step:tele.on_step ?on_round:tele.on_round
      ~stop:(A.is_normal graph)
      ~algorithm:A.algorithm ~graph ~daemon cfg
  in
  let stabilized = result.Engine.outcome = Engine.Stabilized in
  let o =
    bare_obs result ~outcome_ok:stabilized
      ~result_ok:(stabilized && A.is_normal graph result.Engine.final)
  in
  tele.emit_summary o result;
  o

let min_unison ?(max_steps = 50_000_000) ?scheduler ?prof ?sink
    ?(trace_steps = false) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module M = Ssreset_unison.Min_unison.Make (struct
    let k = (n * n) + 1
    let alpha = max 1 (n - 2)
  end) in
  let cfg_rng, run_rng = rngs seed in
  let cfg = Fault.arbitrary cfg_rng M.clock_gen graph in
  let tele = telemetry ?sink ~round_extra:no_round_extra () in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps
      ?observer:(bare_tracer ?sink ~trace_steps ())
      ?on_step:tele.on_step ?on_round:tele.on_round
      ~stop:(M.is_legitimate graph)
      ~algorithm:M.algorithm ~graph ~daemon cfg
  in
  let stabilized = result.Engine.outcome = Engine.Stabilized in
  let o =
    bare_obs result ~outcome_ok:stabilized
      ~result_ok:(stabilized && M.is_legitimate graph result.Engine.final)
  in
  tele.emit_summary o result;
  o

let lemma25_bound graph u =
  let deg = Graph.degree graph u in
  let delta = Graph.max_degree graph in
  (8 * deg * delta) + (18 * deg) + 24

let fga_bare ?(max_steps = 20_000_000) ?scheduler ?prof ?sink
    ?(trace_steps = false) ~spec ~graph ~daemon ~seed () =
  let module F = Ssreset_alliance.Fga.Make (struct
    let graph = graph
    let spec = spec
    let ids = None
  end) in
  let _, run_rng = rngs seed in
  let tele = telemetry ?sink ~round_extra:no_round_extra () in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps
      ?observer:(bare_tracer ?sink ~trace_steps ())
      ?on_step:tele.on_step ?on_round:tele.on_round ~algorithm:F.bare ~graph
      ~daemon (F.gamma_init ())
  in
  let terminal = result.Engine.outcome = Engine.Terminal in
  let moves_ok =
    Array.for_all
      (fun u -> result.Engine.moves_per_process.(u) <= lemma25_bound graph u)
      (Array.init (Graph.n graph) (fun u -> u))
  in
  let o =
    bare_obs result ~outcome_ok:terminal
      ~result_ok:
        (terminal && moves_ok
        && Ssreset_alliance.Checker.is_one_minimal graph spec
             (F.alliance result.Engine.final))
  in
  tele.emit_summary o result;
  o

let fga_composed ?(max_steps = 50_000_000) ?(stop_at_normal = false)
    ?scheduler ?prof ?sink ?(trace_steps = false)
    ~spec ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module F = Ssreset_alliance.Fga.Make (struct
    let graph = graph
    let spec = spec
    let ids = None
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = F.Composed.generator ~inner:F.gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let observer, finish, round_extra, monitor_round, summary_extra =
    composed_observers (module F.Composed) ?sink ~trace_steps
      ~rounds_bound:((8 * n) + 4) graph cfg
  in
  let tele = telemetry ?sink ~monitor_round ~summary_extra ~round_extra () in
  let stop =
    if stop_at_normal then F.Composed.is_normal graph else fun _ -> false
  in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps ~observer ?on_step:tele.on_step
      ?on_round:tele.on_round ~stop ~algorithm:F.Composed.algorithm ~graph
      ~daemon cfg
  in
  let o =
    if stop_at_normal then
      let stabilized = result.Engine.outcome = Engine.Stabilized in
      finish result ~outcome_ok:stabilized
        ~result_ok:(stabilized && F.Composed.is_normal graph result.Engine.final)
    else
      let terminal = result.Engine.outcome = Engine.Terminal in
      finish result ~outcome_ok:terminal
        ~result_ok:
          (terminal
          && Ssreset_alliance.Checker.is_one_minimal graph spec
               (F.alliance_of_composed result.Engine.final))
  in
  tele.emit_summary o result;
  o

let coloring_composed ?(max_steps = 20_000_000) ?scheduler ?prof ?sink
    ?(trace_steps = false) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module C = Ssreset_coloring.Coloring.Make (struct
    let graph = graph
    let ids = None
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = C.Composed.generator ~inner:C.gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let observer, finish, round_extra, monitor_round, summary_extra =
    composed_observers (module C.Composed) ?sink ~trace_steps graph cfg
  in
  let tele = telemetry ?sink ~monitor_round ~summary_extra ~round_extra () in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps ~observer ?on_step:tele.on_step
      ?on_round:tele.on_round ~algorithm:C.Composed.algorithm ~graph ~daemon
      cfg
  in
  let terminal = result.Engine.outcome = Engine.Terminal in
  let o =
    finish result ~outcome_ok:terminal
      ~result_ok:
        (terminal && C.is_proper (C.coloring_of_composed result.Engine.final))
  in
  tele.emit_summary o result;
  o

let mis_composed ?(max_steps = 20_000_000) ?scheduler ?prof ?sink
    ?(trace_steps = false) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module M = Ssreset_mis.Mis.Make (struct
    let graph = graph
    let ids = None
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = M.Composed.generator ~inner:M.gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let observer, finish, round_extra, monitor_round, summary_extra =
    composed_observers (module M.Composed) ?sink ~trace_steps graph cfg
  in
  let tele = telemetry ?sink ~monitor_round ~summary_extra ~round_extra () in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps ~observer ?on_step:tele.on_step
      ?on_round:tele.on_round ~algorithm:M.Composed.algorithm ~graph ~daemon
      cfg
  in
  let terminal = result.Engine.outcome = Engine.Terminal in
  let o =
    finish result ~outcome_ok:terminal
      ~result_ok:
        (terminal
        && M.is_mis (M.independent_set_of_composed result.Engine.final))
  in
  tele.emit_summary o result;
  o

let matching_composed ?(max_steps = 20_000_000) ?scheduler ?prof ?sink
    ?(trace_steps = false) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module M = Ssreset_matching.Matching.Make (struct
    let graph = graph
    let ids = None
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = M.Composed.generator ~inner:M.gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let observer, finish, round_extra, monitor_round, summary_extra =
    composed_observers (module M.Composed) ?sink ~trace_steps graph cfg
  in
  let tele = telemetry ?sink ~monitor_round ~summary_extra ~round_extra () in
  let result =
    Engine.run ?scheduler ?prof ~rng:run_rng ~max_steps ~observer ?on_step:tele.on_step
      ?on_round:tele.on_round ~algorithm:M.Composed.algorithm ~graph ~daemon
      cfg
  in
  let terminal = result.Engine.outcome = Engine.Terminal in
  let o =
    finish result ~outcome_ok:terminal
      ~result_ok:
        (terminal
        && M.is_maximal_matching (M.matching_of_composed result.Engine.final))
  in
  tele.emit_summary o result;
  o

(* The name → daemon table lives in {!Ssreset_sim.Daemon.registry}; every
   consumer (this lookup, the sweep pool, the CLI doc string) derives from
   it, so the lists cannot drift. *)
let daemon_by_name name =
  match Daemon.by_name name with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf "unknown daemon: %s (one of: %s)" name
           (String.concat ", " (Daemon.names ())))

let experiment_daemons () =
  List.map daemon_by_name
    [ "synchronous"; "central-random" ]
  @ [ Daemon.distributed_random 0.3; Daemon.distributed_random 0.8 ]
  @ List.map daemon_by_name [ "locally-central"; "round-robin"; "adversarial" ]

module Graph = Ssreset_graph.Graph
module Metrics = Ssreset_graph.Metrics
module Spec = Ssreset_alliance.Spec
module Brute = Ssreset_alliance.Brute

type profile = {
  sizes : int list;
  fga_sizes : int list;
  seeds : int;
  bare_steps_factor : int;
  jobs : int;
}

let quick =
  { sizes = [ 12; 24 ]; fga_sizes = [ 10; 16 ]; seeds = 2;
    bare_steps_factor = 40; jobs = 1 }

let full =
  { sizes = [ 16; 32; 64; 128 ];
    fga_sizes = [ 12; 24; 40 ];
    seeds = 3;
    bare_steps_factor = 60;
    jobs = 1 }

(* Fan a sweep's independent grid cells out over [profile.jobs] domains.
   Each cell builds its own graphs, daemons and RNG states from its seeds,
   and {!Ssreset_sim.Pool} returns results in input order — so the tables
   below are byte-identical whatever the jobs count. *)
let grid ~profile cells ~f = Ssreset_sim.Pool.map_list ~jobs:profile.jobs f cells

(* family × size cell list, in sweep order. *)
let cells_of families sizes =
  List.concat_map
    (fun (family : Workload.family) -> List.map (fun n -> (family, n)) sizes)
    families

let unison_families = [ Workload.ring; Workload.path; Workload.star;
                        Workload.sparse_random; Workload.lollipop ]

let fga_families = [ Workload.ring; Workload.star; Workload.sparse_random;
                     Workload.complete ]

(* Aggregate of a cell of a sweep: the worst case over (daemon, seed). *)
type agg = {
  mutable runs : int;
  mutable all_ok : bool;
  mutable max_rounds : int;
  mutable max_moves : int;
  mutable sum_moves : int;
  mutable max_proc_sdr : int;
  mutable max_segments : int;
  mutable ar_ok : bool;
  mutable max_wl_p50 : float;  (* worst median per-process workload *)
  mutable max_wl_p90 : float;  (* worst 90th-percentile workload *)
}

let new_agg () =
  { runs = 0; all_ok = true; max_rounds = 0; max_moves = 0; sum_moves = 0;
    max_proc_sdr = 0; max_segments = 0; ar_ok = true; max_wl_p50 = 0.;
    max_wl_p90 = 0. }

let add agg (o : Runner.obs) =
  agg.runs <- agg.runs + 1;
  agg.all_ok <- agg.all_ok && o.Runner.outcome_ok && o.Runner.result_ok;
  agg.max_rounds <- max agg.max_rounds o.Runner.rounds;
  agg.max_moves <- max agg.max_moves o.Runner.moves;
  agg.sum_moves <- agg.sum_moves + o.Runner.moves;
  agg.max_proc_sdr <- max agg.max_proc_sdr o.Runner.max_proc_sdr_moves;
  agg.max_segments <-
    max agg.max_segments (Option.value ~default:0 o.Runner.segments);
  agg.ar_ok <- agg.ar_ok && Option.value ~default:true o.Runner.ar_monotone;
  agg.max_wl_p50 <- Float.max agg.max_wl_p50 o.Runner.workload_p50;
  agg.max_wl_p90 <- Float.max agg.max_wl_p90 o.Runner.workload_p90

(* Run [run] for every daemon of the pool and [seeds] seeds; the seed also
   perturbs the graph for randomized families. *)
let sweep_cell ~seeds ~run =
  let agg = new_agg () in
  List.iter
    (fun daemon ->
      for seed = 1 to seeds do
        add agg (run ~daemon ~seed)
      done)
    (Runner.experiment_daemons ());
  agg

let mean_moves agg = float_of_int agg.sum_moves /. float_of_int (max 1 agg.runs)

(* ------------------------------------------------------------------ *)
(* E1/E2/E3: convergence of I ∘ SDR to a normal configuration.         *)
(* ------------------------------------------------------------------ *)

let e1_e2_e3 profile =
  let jobs_of_cell (system, (family : Workload.family), n) =
    let agg =
      match system with
      | `Unison ->
          sweep_cell ~seeds:profile.seeds ~run:(fun ~daemon ~seed ->
              let graph = family.Workload.build ~seed ~n in
              Runner.unison_composed ~graph ~daemon ~seed ())
      | `Fga ->
          sweep_cell ~seeds:profile.seeds ~run:(fun ~daemon ~seed ->
              let graph = family.Workload.build ~seed ~n in
              Runner.fga_composed ~stop_at_normal:true
                ~spec:Spec.dominating_set ~graph ~daemon ~seed ())
    in
    ((match system with `Unison -> "U∘SDR" | `Fga -> "FGA∘SDR"),
     family.Workload.family_name, n, agg)
  in
  let cells =
    grid ~profile ~f:jobs_of_cell
      (List.map (fun (f, n) -> (`Unison, f, n))
         (cells_of unison_families profile.sizes)
      @ List.map (fun (f, n) -> (`Fga, f, n))
          (cells_of fga_families profile.fga_sizes))
  in
  let e1 =
    Table.make ~title:"E1  I∘SDR reaches a normal configuration within 3n rounds (Cor 5)"
      ~headers:[ "system"; "family"; "n"; "max rounds"; "bound 3n"; "ok" ]
      (List.map
         (fun (system, family, n, agg) ->
           [ system; family; Table.cell_int n; Table.cell_int agg.max_rounds;
             Table.cell_int (3 * n);
             Table.cell_bool (agg.all_ok && agg.max_rounds <= 3 * n) ])
         cells)
  in
  let e2 =
    Table.make
      ~title:"E2  every process executes at most 3n+3 SDR moves (Cor 4)"
      ~headers:[ "system"; "family"; "n"; "max SDR moves/proc"; "bound 3n+3"; "ok" ]
      (List.map
         (fun (system, family, n, agg) ->
           [ system; family; Table.cell_int n;
             Table.cell_int agg.max_proc_sdr;
             Table.cell_int ((3 * n) + 3);
             Table.cell_bool (agg.max_proc_sdr <= (3 * n) + 3) ])
         cells)
  in
  let e3 =
    Table.make
      ~title:
        "E3  alive roots only vanish; executions span at most n+1 segments (Rem 4-5)"
      ~headers:
        [ "system"; "family"; "n"; "max segments"; "bound n+1"; "AR monotone";
          "ok" ]
      (List.map
         (fun (system, family, n, agg) ->
           [ system; family; Table.cell_int n;
             Table.cell_int agg.max_segments;
             Table.cell_int (n + 1);
             Table.cell_bool agg.ar_ok;
             Table.cell_bool (agg.ar_ok && agg.max_segments <= n + 1) ])
         cells)
  in
  [ e1; e2; e3 ]

(* ------------------------------------------------------------------ *)
(* E4/E5: unison stabilization complexity.                              *)
(* ------------------------------------------------------------------ *)

let e4_e5 profile =
  let families = [ Workload.ring; Workload.path; Workload.sparse_random ] in
  let cells =
    grid ~profile (cells_of families profile.sizes)
      ~f:(fun ((family : Workload.family), n) ->
        let graph = family.Workload.build ~seed:1 ~n in
        let diam = Metrics.diameter graph in
        let agg =
          sweep_cell ~seeds:profile.seeds ~run:(fun ~daemon ~seed ->
              Runner.unison_composed ~graph ~daemon ~seed ())
        in
        (family.Workload.family_name, n, diam, agg))
  in
  let e4 =
    Table.make
      ~title:"E4  U∘SDR stabilizes within O(D·n²) moves (Thm 6)"
      ~headers:
        [ "family"; "n"; "D"; "max moves"; "mean moves"; "workload p50";
          "workload p90"; "D·n²"; "max/(D·n²)"; "ok" ]
      ~notes:
        [ "the ratio staying bounded (≲ 1) across sizes is the O(D·n²) shape;";
          "actual runs sit far below the worst case;";
          "workload p50/p90: worst-case percentiles of the per-process move \
           counts — close percentiles mean the moves spread evenly instead \
           of piling onto few processes" ]
      (List.map
         (fun (family, n, diam, agg) ->
           let bound = diam * n * n in
           [ family; Table.cell_int n; Table.cell_int diam;
             Table.cell_int agg.max_moves;
             Table.cell_float (mean_moves agg);
             Table.cell_float agg.max_wl_p50;
             Table.cell_float agg.max_wl_p90;
             Table.cell_int bound;
             Table.cell_float (float_of_int agg.max_moves /. float_of_int bound);
             Table.cell_bool (agg.all_ok && agg.max_moves <= bound) ])
         cells)
  in
  let e5 =
    Table.make ~title:"E5  U∘SDR stabilizes within 3n rounds (Thm 7)"
      ~headers:[ "family"; "n"; "max rounds"; "bound 3n"; "ok" ]
      (List.map
         (fun (family, n, _, agg) ->
           [ family; Table.cell_int n; Table.cell_int agg.max_rounds;
             Table.cell_int (3 * n);
             Table.cell_bool (agg.all_ok && agg.max_rounds <= 3 * n) ])
         cells)
  in
  [ e4; e5 ]

(* ------------------------------------------------------------------ *)
(* E6: baseline comparison.                                             *)
(* ------------------------------------------------------------------ *)

let e6 profile =
  let families = [ Workload.ring; Workload.path; Workload.sparse_random ] in
  let rows =
    grid ~profile (cells_of families profile.sizes)
      ~f:(fun ((family : Workload.family), n) ->
            let graph = family.Workload.build ~seed:1 ~n in
            let ours = new_agg () and tail = new_agg () and mu = new_agg () in
            List.iter
              (fun daemon_name ->
                for seed = 1 to profile.seeds do
                  add ours
                    (Runner.unison_composed ~graph
                       ~daemon:(Runner.daemon_by_name daemon_name) ~seed ());
                  add tail
                    (Runner.tail_unison ~graph
                       ~daemon:(Runner.daemon_by_name daemon_name) ~seed ());
                  add mu
                    (Runner.min_unison ~graph
                       ~daemon:(Runner.daemon_by_name daemon_name) ~seed ())
                done)
              [ "synchronous"; "central-random"; "distributed-random";
                "locally-central" ];
            let ratio = mean_moves tail /. mean_moves ours in
            [ family.Workload.family_name; Table.cell_int n;
              Table.cell_float (mean_moves ours);
              Table.cell_float (mean_moves tail);
              Table.cell_float ratio;
              Table.cell_float (mean_moves mu);
              Table.cell_int mu.max_rounds;
              Table.cell_bool (ours.all_ok && tail.all_ok && mu.all_ok) ])
  in
  Table.make
    ~title:
      "E6  moves to stabilization: U∘SDR vs tail-unison [11] and min-unison \
       [20] baselines (§5.2-5.3)"
    ~headers:
      [ "family"; "n"; "U∘SDR mean moves"; "tail[11] mean moves";
        "tail/ours"; "min[20] mean moves"; "min[20] max rounds"; "ok" ]
    ~notes:
      [ "same graphs, seeds and daemons for all systems;";
        "the paper predicts the SDR-based unison beats [11] in moves \
         (O(D·n²) vs O(D·n³+α·n²));";
        "[20] needs K > n² and its worst case is schedule-crafted; on random \
         configurations its mean moves are low while its round count shows \
         the O(D·n) behaviour the paper cites" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: bare U correctness from γ_init.                                  *)
(* ------------------------------------------------------------------ *)

let e7 profile =
  let rows =
    grid ~profile
      (cells_of [ Workload.ring; Workload.star; Workload.sparse_random ]
         profile.sizes)
      ~f:(fun ((family : Workload.family), n) ->
        let graph = family.Workload.build ~seed:1 ~n in
        let agg = new_agg () in
        List.iter
          (fun daemon_name ->
            for seed = 1 to profile.seeds do
              add agg
                (Runner.unison_bare
                   ~steps:(profile.bare_steps_factor * n)
                   ~graph
                   ~daemon:(Runner.daemon_by_name daemon_name)
                   ~seed ())
            done)
          [ "synchronous"; "round-robin"; "distributed-random" ];
        [ family.Workload.family_name; Table.cell_int n;
          Table.cell_int (profile.bare_steps_factor * n);
          Table.cell_bool agg.all_ok ])
  in
  Table.make
    ~title:"E7  bare U from γ_init: safety holds, all clocks advance (Thm 5)"
    ~headers:[ "family"; "n"; "steps"; "ok" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8: bare FGA from γ_init.                                            *)
(* ------------------------------------------------------------------ *)

let fga_specs =
  [ Spec.dominating_set; Spec.global_offensive; Spec.global_defensive;
    Spec.global_powerful; Spec.k_tuple_domination 2 ]

let e8 profile =
  let cells =
    List.concat_map
      (fun (family, n) -> List.map (fun spec -> (family, n, spec)) fga_specs)
      (cells_of fga_families profile.fga_sizes)
  in
  let rows =
    List.filter_map Fun.id
      (grid ~profile cells ~f:(fun ((family : Workload.family), n, spec) ->
           let graph = family.Workload.build ~seed:1 ~n in
           if not (Spec.feasible spec graph) then None
           else begin
             let agg =
               sweep_cell ~seeds:profile.seeds ~run:(fun ~daemon ~seed ->
                   Runner.fga_bare ~spec ~graph ~daemon ~seed ())
             in
             Some
               [ spec.Spec.spec_name; family.Workload.family_name;
                 Table.cell_int n;
                 Table.cell_int agg.max_rounds;
                 Table.cell_int ((5 * n) + 4);
                 Table.cell_bool
                   (agg.all_ok && agg.max_rounds <= (5 * n) + 4) ]
           end))
  in
  Table.make
    ~title:
      "E8  bare FGA from γ_init: 1-minimal alliance within 5n+4 rounds (Cor 12) \
       and Lemma 25 per-process moves"
    ~headers:[ "spec"; "family"; "n"; "max rounds"; "bound 5n+4"; "ok" ]
    ~notes:[ "'ok' includes termination, 1-minimality and the Lemma 25 move bound" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9/E10: FGA ∘ SDR silent self-stabilization.                         *)
(* ------------------------------------------------------------------ *)

let e9_e10 profile =
  let specs =
    [ Spec.dominating_set; Spec.global_defensive; Spec.global_powerful ]
  in
  let cell_list =
    List.concat_map
      (fun (family, n) -> List.map (fun spec -> (family, n, spec)) specs)
      (cells_of fga_families profile.fga_sizes)
  in
  let cells =
    List.filter_map Fun.id
      (grid ~profile cell_list
         ~f:(fun ((family : Workload.family), n, spec) ->
           let graph = family.Workload.build ~seed:1 ~n in
           if not (Spec.feasible spec graph) then None
           else begin
             let agg =
               sweep_cell ~seeds:profile.seeds ~run:(fun ~daemon ~seed ->
                   Runner.fga_composed ~spec ~graph ~daemon ~seed ())
             in
             Some
               (spec.Spec.spec_name, family.Workload.family_name, n, graph,
                agg)
           end))
  in
  let e9 =
    Table.make
      ~title:
        "E9  FGA∘SDR from arbitrary configurations: silent within 8n+4 rounds \
         (Thm 14) and O(Δ·n·m) moves (Thm 13)"
      ~headers:
        [ "spec"; "family"; "n"; "max rounds"; "bound 8n+4"; "max moves";
          "Δ·n·m"; "max/(Δ·n·m)"; "ok" ]
      (List.map
         (fun (spec, family, n, graph, agg) ->
           let bound =
             Graph.max_degree graph * Graph.n graph * Graph.m graph
           in
           [ spec; family; Table.cell_int n; Table.cell_int agg.max_rounds;
             Table.cell_int ((8 * n) + 4);
             Table.cell_int agg.max_moves;
             Table.cell_int bound;
             Table.cell_float
               (float_of_int agg.max_moves /. float_of_int (max 1 bound));
             Table.cell_bool
               (agg.all_ok
               && agg.max_rounds <= (8 * n) + 4
               && agg.max_moves <= 16 * bound) ])
         cells)
  in
  let e10 =
    Table.make
      ~title:
        "E10  every terminal configuration of FGA∘SDR is a 1-minimal \
         (f,g)-alliance (Thm 11)"
      ~headers:[ "spec"; "family"; "n"; "runs"; "ok" ]
      (List.map
         (fun (spec, family, n, _graph, agg) ->
           [ spec; family; Table.cell_int n; Table.cell_int agg.runs;
             Table.cell_bool agg.all_ok ])
         cells)
  in
  [ e9; e10 ]

(* ------------------------------------------------------------------ *)
(* E11: daemon ablation.                                                *)
(* ------------------------------------------------------------------ *)

let e11 profile =
  let n = List.fold_left max 8 profile.fga_sizes in
  let graph = Workload.sparse_random.Workload.build ~seed:3 ~n in
  let daemon_names =
    [ "synchronous"; "central-random"; "central-first"; "round-robin";
      "distributed-random"; "locally-central"; "adversarial"; "starve" ]
  in
  let rows =
    List.concat
      (grid ~profile daemon_names ~f:(fun daemon_name ->
           let uni = new_agg () and fga = new_agg () in
           for seed = 1 to profile.seeds do
             add uni
               (Runner.unison_composed ~graph
                  ~daemon:(Runner.daemon_by_name daemon_name) ~seed ());
             add fga
               (Runner.fga_composed ~spec:Spec.dominating_set ~graph
                  ~daemon:(Runner.daemon_by_name daemon_name) ~seed ())
           done;
           [ [ daemon_name; "U∘SDR"; Table.cell_int uni.max_rounds;
               Table.cell_float (mean_moves uni); Table.cell_bool uni.all_ok ];
             [ daemon_name; "FGA∘SDR"; Table.cell_int fga.max_rounds;
               Table.cell_float (mean_moves fga); Table.cell_bool fga.all_ok ]
           ]))
  in
  Table.make
    ~title:
      (Printf.sprintf
         "E11  daemon ablation on sparse-random n=%d (all are unfair-daemon \
          instances, so every bound must hold)"
         n)
    ~headers:[ "daemon"; "system"; "max rounds"; "mean moves"; "ok" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12: Property 1, exhaustively on small graphs.                       *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let graphs = Workload.small_connected_graphs ~max_n:5 in
  let specs =
    [ Spec.dominating_set; Spec.global_offensive; Spec.global_defensive;
      Spec.global_powerful;
      (* (0,2): ∅ is an alliance, yet any triangle is 1-minimal — the
         classical witness that 1-minimal does not imply minimal. *)
      Spec.custom ~name:"(0,2)-alliance" ~f:0 ~g:2 ]
  in
  let rows =
    List.map
      (fun spec ->
        let graphs_used = ref 0 in
        let minimal_total = ref 0 in
        let one_minimal_total = ref 0 in
        let p11_ok = ref true in
        let p12_applicable = ref 0 in
        let p12_ok = ref true in
        let non_minimal_one_minimal = ref 0 in
        List.iter
          (fun g ->
            if Spec.feasible spec g then begin
              incr graphs_used;
              let minimal = Brute.all_minimal g spec in
              let one_minimal = Brute.all_one_minimal g spec in
              minimal_total := !minimal_total + List.length minimal;
              one_minimal_total := !one_minimal_total + List.length one_minimal;
              (* Property 1.1: minimal ⟹ 1-minimal. *)
              List.iter
                (fun mask ->
                  if not (List.mem mask one_minimal) then p11_ok := false)
                minimal;
              if Spec.f_geq_g spec g then begin
                incr p12_applicable;
                (* Property 1.2: f ≥ g ⟹ (1-minimal ⟹ minimal). *)
                List.iter
                  (fun mask ->
                    if not (List.mem mask minimal) then p12_ok := false)
                  one_minimal
              end
              else
                List.iter
                  (fun mask ->
                    if not (List.mem mask minimal) then
                      incr non_minimal_one_minimal)
                  one_minimal
            end)
          graphs;
        [ spec.Spec.spec_name; Table.cell_int !graphs_used;
          Table.cell_int !minimal_total; Table.cell_int !one_minimal_total;
          Table.cell_int !non_minimal_one_minimal;
          Table.cell_bool (!p11_ok && (!p12_applicable = 0 || !p12_ok)) ])
      specs
  in
  Table.make
    ~title:
      "E12  Property 1 (Dourado et al.) on all labeled connected graphs, n ≤ 5"
    ~headers:
      [ "spec"; "graphs"; "minimal sets"; "1-minimal sets";
        "1-min ∧ ¬min (g>f only)"; "ok" ]
    ~notes:
      [ "minimal ⟹ 1-minimal always; with f ≥ g the converse holds too;";
        "the strictly positive fourth column for defensive/powerful shows why \
         1-minimality is the right target without restrictions on f, g" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13: generality — coloring and MIS through SDR.                      *)
(* ------------------------------------------------------------------ *)

let e13 profile =
  let rows =
    List.concat
      (grid ~profile
         (cells_of
            [ Workload.ring; Workload.star; Workload.sparse_random ]
            profile.fga_sizes)
         ~f:(fun ((family : Workload.family), n) ->
            let graph = family.Workload.build ~seed:1 ~n in
            let col =
              sweep_cell ~seeds:profile.seeds ~run:(fun ~daemon ~seed ->
                  Runner.coloring_composed ~graph ~daemon ~seed ())
            in
            let mis =
              sweep_cell ~seeds:profile.seeds ~run:(fun ~daemon ~seed ->
                  Runner.mis_composed ~graph ~daemon ~seed ())
            in
            let mat =
              sweep_cell ~seeds:profile.seeds ~run:(fun ~daemon ~seed ->
                  Runner.matching_composed ~graph ~daemon ~seed ())
            in
            [ [ "coloring∘SDR"; family.Workload.family_name; Table.cell_int n;
                Table.cell_int col.max_rounds; Table.cell_bool col.all_ok ];
              [ "MIS∘SDR"; family.Workload.family_name; Table.cell_int n;
                Table.cell_int mis.max_rounds; Table.cell_bool mis.all_ok ];
              [ "matching∘SDR"; family.Workload.family_name; Table.cell_int n;
                Table.cell_int mat.max_rounds; Table.cell_bool mat.all_ok ] ]))
  in
  Table.make
    ~title:
      "E13  generality (§1.1): static inputs become silent self-stabilizing \
       under SDR (coloring, MIS, maximal matching)"
    ~headers:[ "system"; "family"; "n"; "max rounds"; "ok" ]
    rows

(* ------------------------------------------------------------------ *)
(* E14: cooperative resets stay partial under small fault bursts.       *)
(* ------------------------------------------------------------------ *)

let e14 profile =
  let n = List.fold_left max 16 profile.sizes in
  let graph = Workload.grid.Workload.build ~seed:1 ~n in
  let n = Ssreset_graph.Graph.n graph in
  let module M = Ssreset_mis.Mis.Make (struct
    let graph = graph
    let ids = None
  end) in
  let gen = M.Composed.generator ~inner:M.gen ~max_d:n in
  let daemon () = Runner.daemon_by_name "distributed-random" in
  let rng = Random.State.make [| 2718 |] in
  (* converge once, then inject bursts of growing size *)
  let stabilize cfg =
    Ssreset_sim.Engine.run ~rng ~max_steps:5_000_000
      ~algorithm:M.Composed.algorithm ~graph ~daemon:(daemon ()) cfg
  in
  let base = stabilize (Ssreset_sim.Fault.arbitrary rng gen graph) in
  let rows =
    List.map
      (fun burst ->
        let moves = ref [] and touched = ref [] and ok = ref true in
        for _ = 1 to 3 * profile.seeds do
          let faulty =
            Ssreset_sim.Fault.corrupt rng gen ~k:burst
              base.Ssreset_sim.Engine.final
          in
          let r = stabilize faulty in
          ok :=
            !ok
            && r.Ssreset_sim.Engine.outcome = Ssreset_sim.Engine.Terminal
            && M.is_mis
                 (M.independent_set_of_composed r.Ssreset_sim.Engine.final);
          moves := r.Ssreset_sim.Engine.moves :: !moves;
          touched :=
            Array.fold_left
              (fun acc c -> if c > 0 then acc + 1 else acc)
              0 r.Ssreset_sim.Engine.moves_per_process
            :: !touched
        done;
        let mean l =
          float_of_int (List.fold_left ( + ) 0 l)
          /. float_of_int (List.length l)
        in
        [ Table.cell_int burst; Table.cell_float (mean !moves);
          Table.cell_float (mean !touched); Table.cell_int n;
          Table.cell_bool !ok ])
      [ 0; 1; 2; 4; n / 4; n / 2; n ]
  in
  Table.make
    ~title:
      (Printf.sprintf
         "E14  recovery from transient fault bursts (MIS∘SDR on grid n=%d): \
          concurrent resets cooperate into one wave"
         n)
    ~headers:
      [ "burst size"; "mean moves"; "mean processes touched"; "n"; "ok" ]
    ~notes:
      [ "burst 0 confirms legitimate configurations are silent (0 moves);";
        "recovery cost is flat in the burst size: the resets started by the \
         simultaneous fault sites coordinate into a single wave instead of \
         multiplying (a corruption that stays locally consistent costs \
         almost nothing, cf. examples/fault_recovery.ml)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E15: reset architecture — cooperative multi-initiator (SDR) versus   *)
(* mono-initiator tree waves (AGR, Arora-Gouda style).                  *)
(* ------------------------------------------------------------------ *)

let e15 profile =
  let fair_daemons =
    [ "synchronous"; "central-random"; "round-robin"; "distributed-random";
      "locally-central" ]
  in
  let rows =
    grid ~profile
      (cells_of [ Workload.ring; Workload.star; Workload.sparse_random ]
         profile.sizes)
      ~f:(fun ((family : Workload.family), n) ->
            let graph = family.Workload.build ~seed:1 ~n in
            let sdr = new_agg () and agr = new_agg () in
            List.iter
              (fun daemon_name ->
                for seed = 1 to profile.seeds do
                  add sdr
                    (Runner.unison_composed ~graph
                       ~daemon:(Runner.daemon_by_name daemon_name) ~seed ());
                  add agr
                    (Runner.unison_agr ~graph
                       ~daemon:(Runner.daemon_by_name daemon_name) ~seed ())
                done)
              fair_daemons;
            (* under the unfair central-first daemon SDR still stabilizes
               while the mono-initiator architecture can livelock (a
               bounded step budget stands in for "forever") *)
            let unfair_sdr =
              Runner.unison_composed ~graph
                ~daemon:(Runner.daemon_by_name "central-first") ~seed:1 ()
            in
            let unfair_agr =
              Runner.unison_agr ~max_steps:200_000 ~graph
                ~daemon:(Runner.daemon_by_name "central-first") ~seed:1 ()
            in
            [ family.Workload.family_name; Table.cell_int n;
              Table.cell_int sdr.max_rounds; Table.cell_int agr.max_rounds;
              Table.cell_float (mean_moves sdr);
              Table.cell_float (mean_moves agr);
              (if unfair_sdr.Runner.result_ok then "stabilizes" else "FAIL");
              (if unfair_agr.Runner.outcome_ok then "stabilizes"
               else "livelocks");
              Table.cell_bool
                (sdr.all_ok && agr.all_ok && unfair_sdr.Runner.result_ok) ])
  in
  Table.make
    ~title:
      "E15  reset architectures on unison: cooperative multi-initiator (SDR) \
       vs mono-initiator tree waves (AGR, Arora-Gouda style, §1-1.2)"
    ~headers:
      [ "family"; "n"; "SDR max rounds"; "AGR max rounds"; "SDR mean moves";
        "AGR mean moves"; "SDR@central-first"; "AGR@central-first"; "ok" ]
    ~notes:
      [ "fair daemons: both stabilize, SDR in fewer rounds (3n bound vs \
         tree-depth-coupled waves);";
        "unfair daemon (central-first): SDR keeps its bounds — AGR needs \
         weak fairness (as Arora-Gouda assume) and can livelock, the \
         motivation for cooperative resets (§1)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E16: parameter ablation — the unison period K and the tail length α. *)
(* ------------------------------------------------------------------ *)

let e16 profile =
  let n = List.fold_left max 16 profile.sizes in
  let graph = Workload.ring.Workload.build ~seed:1 ~n in
  let daemons = [ "synchronous"; "central-random"; "distributed-random" ] in
  let measure_unison k =
    let agg = new_agg () in
    let module U = Ssreset_unison.Unison.Make (struct
      let k = k
    end) in
    let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:n in
    List.iter
      (fun daemon_name ->
        for seed = 1 to profile.seeds do
          let cfg =
            Ssreset_sim.Fault.arbitrary
              (Random.State.make [| seed; k |])
              gen graph
          in
          let r =
            Ssreset_sim.Engine.run
              ~rng:(Random.State.make [| seed |])
              ~max_steps:5_000_000
              ~stop:(U.Composed.is_normal graph)
              ~algorithm:U.Composed.algorithm ~graph
              ~daemon:(Runner.daemon_by_name daemon_name) cfg
          in
          agg.runs <- agg.runs + 1;
          agg.all_ok <-
            agg.all_ok
            && r.Ssreset_sim.Engine.outcome = Ssreset_sim.Engine.Stabilized;
          agg.max_rounds <- max agg.max_rounds r.Ssreset_sim.Engine.rounds;
          agg.sum_moves <- agg.sum_moves + r.Ssreset_sim.Engine.moves
        done)
      daemons;
    agg
  in
  let measure_tail alpha =
    let agg = new_agg () in
    let module T = Ssreset_unison.Tail_unison.Make (struct
      let k = (2 * n) + 2
      let alpha = alpha
    end) in
    List.iter
      (fun daemon_name ->
        for seed = 1 to profile.seeds do
          let cfg =
            Ssreset_sim.Fault.arbitrary
              (Random.State.make [| seed; alpha |])
              T.clock_gen graph
          in
          let r =
            Ssreset_sim.Engine.run
              ~rng:(Random.State.make [| seed |])
              ~max_steps:5_000_000
              ~stop:(T.is_legitimate graph)
              ~algorithm:T.algorithm ~graph
              ~daemon:(Runner.daemon_by_name daemon_name) cfg
          in
          agg.runs <- agg.runs + 1;
          agg.all_ok <-
            agg.all_ok
            && r.Ssreset_sim.Engine.outcome = Ssreset_sim.Engine.Stabilized;
          agg.max_rounds <- max agg.max_rounds r.Ssreset_sim.Engine.rounds;
          agg.sum_moves <- agg.sum_moves + r.Ssreset_sim.Engine.moves
        done)
      daemons;
    agg
  in
  let rows =
    grid ~profile
      [ `U ("K = n+1", n + 1); `U ("K = 2n+2", (2 * n) + 2);
        `U ("K = n²+1", (n * n) + 1);
        `T ("α = n/2", n / 2); `T ("α = n", n); `T ("α = 2n", 2 * n) ]
      ~f:(fun cell ->
        let system, label, agg =
          match cell with
          | `U (label, k) -> ("U∘SDR", label, measure_unison k)
          | `T (label, alpha) -> ("tail-unison", label, measure_tail alpha)
        in
        [ system; label; Table.cell_int agg.max_rounds;
          Table.cell_float (mean_moves agg); Table.cell_bool agg.all_ok ])
  in
  Table.make
    ~title:
      (Printf.sprintf
         "E16  parameter ablation on ring n=%d: unison period K (theory: any \
          K > n works) and baseline tail length α (costs moves linearly)"
         n)
    ~headers:[ "system"; "parameter"; "max rounds"; "mean moves"; "ok" ]
    ~notes:
      [ "the 3n-round bound of U∘SDR is independent of K, so all K rows must \
         look alike;";
        "the tail baseline pays ~α extra moves per resetting process, part \
         of its O(D·n³ + α·n²) move complexity" ]
    rows

let all_lazy profile =
  [ ("E1-E3", fun () -> e1_e2_e3 profile);
    ("E4-E5", fun () -> e4_e5 profile);
    ("E6", fun () -> [ e6 profile ]);
    ("E7", fun () -> [ e7 profile ]);
    ("E8", fun () -> [ e8 profile ]);
    ("E9-E10", fun () -> e9_e10 profile);
    ("E11", fun () -> [ e11 profile ]);
    ("E12", fun () -> [ e12 () ]);
    ("E13", fun () -> [ e13 profile ]);
    ("E14", fun () -> [ e14 profile ]);
    ("E15", fun () -> [ e15 profile ]);
    ("E16", fun () -> [ e16 profile ]) ]

let all profile =
  List.map (fun (id, tables) -> (id, tables ())) (all_lazy profile)

(** Plain-text tables for the experiment reports. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

val make :
  title:string -> headers:string list -> ?notes:string list ->
  string list list -> t

val render : t -> string
(** Fixed-width rendering with a title line, a header rule and the notes. *)

val print : t -> unit
(** [render] to stdout. *)

val to_csv : t -> string
(** RFC 4180-style CSV: header line then data rows; cells containing commas,
    quotes or newlines are quoted, quotes doubled.  Title and notes are not
    part of the data and are omitted. *)

val to_json : t -> Ssreset_obs.Json.t
(** [{"title": ..., "headers": [...], "rows": [[...]], "notes": [...]}] —
    cells stay strings, exactly as rendered. *)

val cell_int : int -> string
val cell_float : float -> string
val cell_bool : bool -> string
(** ["ok"] / ["FAIL"]. *)

val all_ok : t -> col:int -> bool
(** Does every row show ["ok"] in the given 0-based column?  Used by the
    bench harness to summarize pass/fail per experiment. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~headers ?(notes = []) rows =
  List.iter
    (fun row ->
      if List.length row <> List.length headers then
        invalid_arg
          (Printf.sprintf "Table.make (%s): row width %d, expected %d" title
             (List.length row) (List.length headers)))
    rows;
  { title; headers; rows; notes }

let render t =
  let cols = List.length t.headers in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure t.headers;
  List.iter measure t.rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let add_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  add_row t.headers;
  Buffer.add_string buf
    (String.make (Array.fold_left ( + ) (2 * (cols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter add_row t.rows;
  List.iter
    (fun note ->
      Buffer.add_string buf "  note: ";
      Buffer.add_string buf note;
      Buffer.add_char buf '\n')
    t.notes;
  Buffer.contents buf

let print t = print_string (render t)

let csv_cell cell =
  if
    String.exists
      (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r')
      cell
  then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let to_csv t =
  let buf = Buffer.create 1024 in
  let add_row row =
    Buffer.add_string buf (String.concat "," (List.map csv_cell row));
    Buffer.add_char buf '\n'
  in
  add_row t.headers;
  List.iter add_row t.rows;
  Buffer.contents buf

let to_json t =
  let module Json = Ssreset_obs.Json in
  let strings l = Json.List (List.map (fun s -> Json.String s) l) in
  Json.Obj
    [ ("title", Json.String t.title);
      ("headers", strings t.headers);
      ("rows", Json.List (List.map strings t.rows));
      ("notes", strings t.notes) ]

let cell_int = string_of_int
let cell_float f = Printf.sprintf "%.2f" f
let cell_bool b = if b then "ok" else "FAIL"

let all_ok t ~col =
  List.for_all
    (fun row -> match List.nth_opt row col with
      | Some "ok" -> true
      | _ -> false)
    t.rows

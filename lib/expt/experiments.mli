(** The experiment suite — one entry per item of the per-experiment index in
    DESIGN.md.  The paper is a theory paper, so each "table" validates one
    proven bound or correctness theorem empirically; the [ok] column of each
    table reports whether the bound/property held on every sampled run. *)

type profile = {
  sizes : int list;  (** network sizes for the sweeps *)
  fga_sizes : int list;  (** smaller sizes for the costlier FGA sweeps *)
  seeds : int;  (** random repetitions per cell *)
  bare_steps_factor : int;  (** step budget per process for liveness runs *)
  jobs : int;
      (** grid-cell parallelism: the (family × size × spec/daemon) cells of
          each sweep run on up to [jobs] OCaml domains via
          {!Ssreset_sim.Pool}.  Every cell owns its RNG seeds, and cell
          results are collected in input order, so tables are byte-identical
          for any [jobs] value; [jobs <= 1] stays fully sequential. *)
}

val quick : profile
(** Small sweep (< 1 min total) used by [bench --quick] and CI. *)

val full : profile
(** The default bench profile. *)

val e1_e2_e3 : profile -> Table.t list
(** Convergence of I ∘ SDR to a normal configuration:
    E1 rounds ≤ 3n (Corollary 5), E2 per-process SDR moves ≤ 3n+3
    (Corollary 4), E3 segments ≤ n+1 and alive-root monotonicity
    (Remarks 4–5).  Runs both U ∘ SDR and FGA ∘ SDR. *)

val e4_e5 : profile -> Table.t list
(** U ∘ SDR stabilization: E4 moves vs the O(D·n²) shape (Theorem 6),
    E5 rounds ≤ 3n (Theorem 7). *)

val e6 : profile -> Table.t
(** Move-count comparison of U ∘ SDR against the tail-unison baseline on
    identical (graph, seed, daemon) triples (§5.3 claim). *)

val e7 : profile -> Table.t
(** Bare U from γ_init: safety never violated, every process increments
    (Theorem 5). *)

val e8 : profile -> Table.t
(** Bare FGA from γ_init: terminal, 1-minimal, rounds ≤ 5n+4 (Corollary 12)
    and the per-process move bound of Lemma 25. *)

val e9_e10 : profile -> Table.t list
(** FGA ∘ SDR from arbitrary configurations: silence (termination),
    E9 rounds ≤ 8n+4 (Theorem 14) and moves vs the O(Δ·n·m) shape
    (Theorem 13), E10 terminal configuration is a 1-minimal alliance
    (Theorem 11). *)

val e11 : profile -> Table.t
(** Daemon ablation: rounds/moves of U ∘ SDR and FGA ∘ SDR under each
    daemon of the zoo on a fixed graph. *)

val e12 : unit -> Table.t
(** Property 1 of Dourado et al., checked exhaustively on every labeled
    connected graph with up to 5 processes, plus cross-checking FGA's output
    against the brute-force 1-minimal enumeration. *)

val e13 : profile -> Table.t
(** Generality: coloring ∘ SDR and MIS ∘ SDR are silent self-stabilizing
    (terminate with correct outputs from arbitrary configurations). *)

val e14 : profile -> Table.t
(** Recovery cost as a function of transient-fault burst size: legitimate
    configurations are silent, and small bursts recover with few moves —
    the cooperative resets stay partial. *)

val e15 : profile -> Table.t
(** Reset-architecture comparison on identical workloads: SDR (cooperative,
    multi-initiator) versus an Arora-Gouda-style mono-initiator tree-wave
    reset.  Under fair daemons both stabilize (SDR in fewer rounds); under
    the unfair central-first daemon SDR keeps its bounds while the
    mono-initiator design livelocks — the paper's §1 motivation. *)

val e16 : profile -> Table.t
(** Parameter ablation: U ∘ SDR with K ∈ {n+1, 2n+2, n²+1} (the bounds are
    K-independent for any K > n) and the tail baseline with α ∈
    {n/2, n, 2n} (moves grow with α, part of its O(D·n³+α·n²) complexity). *)

val all : profile -> (string * Table.t list) list
(** Every experiment, in order, tagged with its id. *)

val all_lazy : profile -> (string * (unit -> Table.t list)) list
(** Like {!all} but each experiment's tables are computed only when forced —
    the bench harness uses this so filtered runs skip unrequested
    experiments entirely and per-experiment wall-clock can be measured. *)

(** One-shot measured runs of every system, with the observers needed by
    the experiments (per-process SDR move counts, segment counting,
    alive-root monotonicity) and optional JSONL telemetry.

    Every runner accepts [?sink]: when given, the run streams one
    {!Ssreset_obs.Sink.round_record} per completed round and a final
    {!Ssreset_obs.Sink.summary} (with per-rule move counters and a
    {!Ssreset_obs.Metrics} snapshot) into it.  The caller writes the
    manifest — it knows the graph family and CLI context; the runner does
    not.  Without a sink no telemetry code runs at all.

    Every runner also accepts [?scheduler], forwarded to
    {!Ssreset_sim.Engine.run}: [`Full] rescan vs the default [`Incremental]
    dirty-set scheduler.  The choice affects wall-clock only — results are
    bit-identical.  Likewise [?prof], forwarded to the engine: an attached
    {!Ssreset_obs.Prof} profiler collects phase/rule timings, scheduler and
    GC counters, and streaming windows, without changing any result.

    With a sink attached, composed runs additionally install online
    {!Ssreset_obs.Monitor}s: the 3n round bound and D·n² move bound for
    U∘SDR (8n+4 rounds for FGA∘SDR) and the alive-root monotonicity of
    Remark 4 — any violation emits an [anomaly] record the moment it is
    observed, and the summary carries the anomaly count.  Passing
    [~trace_steps:true] (requires a sink) additionally streams one [init]
    record plus one wave-tagged [step] record per engine step — the
    [ssreset-trace-v1] schema consumed by {!Ssreset_obs.Tracefile} and the
    [ssreset trace] CLI.  Bare runs trace steps without wave tags and
    install no monitors. *)

type obs = {
  outcome_ok : bool;
      (** the run ended the way the theory predicts (stabilized for unison,
          terminal for the silent systems, step budget not exhausted) *)
  result_ok : bool;
      (** problem-specific output check: normal configuration reached,
          1-minimal alliance, proper coloring, MIS, safety… *)
  rounds : int;
  moves : int;
  steps : int;
  sdr_moves : int;  (** moves of SDR rules only (0 for bare runs) *)
  max_proc_moves : int;
  max_proc_sdr_moves : int;  (** per-process maximum of SDR moves *)
  workload_p50 : float;
      (** median of the per-process move counts (numpy-style linear
          interpolation, {!Ssreset_sim.Stats.percentile}) *)
  workload_p90 : float;  (** 90th percentile of per-process move counts *)
  moves_per_rule : (string * int) list;
      (** per-rule move counts in the engine's rule order — also in the JSON
          observation, so classic and flat runs compare field-for-field *)
  segments : int option;  (** [None] for bare runs, where it is not measured *)
  ar_monotone : bool option;
      (** alive-root sets only ever shrink (Remark 4); [None] for bare runs,
          where there are no alive roots to watch *)
  wall_s : float;  (** wall-clock seconds of the engine run *)
}

val obs_json : obs -> Ssreset_obs.Json.t
(** Machine-readable rendering of an observation (unmeasured fields are
    [null]); includes a derived [steps_per_s]. *)

val unison_composed :
  ?max_steps:int ->
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs
(** U ∘ SDR with K = 2n+2 from an arbitrary configuration, run until the
    first normal configuration. *)

val unison_bare :
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  steps:int ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs
(** U alone from γ_init for a fixed number of steps; [result_ok] = no safety
    violation and every process incremented at least once (liveness proxy —
    use a generous step budget). *)

val tail_unison :
  ?max_steps:int ->
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs
(** The baseline with K = 2n+2, α = n, from an arbitrary configuration, run
    until legitimate. *)

val unison_agr :
  ?max_steps:int ->
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs
(** U composed with the mono-initiator AGR reset baseline (root = process
    0), run until the first normal configuration.  AGR needs a weakly fair
    daemon (see {!Ssreset_agreset.Agreset}); under unfair schedules such as
    ["central-first"] it can livelock, which experiment E15 demonstrates
    deliberately (a [Step_limit] outcome then yields [outcome_ok = false]). *)

val min_unison :
  ?max_steps:int ->
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs
(** The Couvreur-style baseline with K = n²+1, from an arbitrary
    configuration, run until legitimate. *)

val fga_bare :
  ?max_steps:int ->
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  spec:Ssreset_alliance.Spec.t ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs
(** FGA from γ_init until terminal; [result_ok] = 1-minimal alliance and the
    per-process move bound of Lemma 25 (8δΔ + 18δ + 24) holds. *)

val fga_composed :
  ?max_steps:int ->
  ?stop_at_normal:bool ->
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  spec:Ssreset_alliance.Spec.t ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs
(** FGA ∘ SDR from an arbitrary configuration until terminal (silence), or
    until the first normal configuration when [stop_at_normal] is set. *)

val coloring_composed :
  ?max_steps:int ->
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs

val mis_composed :
  ?max_steps:int ->
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs

val matching_composed :
  ?max_steps:int ->
  ?scheduler:Ssreset_sim.Engine.scheduler ->
  ?prof:Ssreset_obs.Prof.t ->
  ?sink:Ssreset_obs.Sink.t ->
  ?trace_steps:bool ->
  graph:Ssreset_graph.Graph.t ->
  daemon:Ssreset_sim.Daemon.t ->
  seed:int ->
  unit ->
  obs

val daemon_by_name : string -> Ssreset_sim.Daemon.t
(** Fresh daemon from {!Ssreset_sim.Daemon.registry} — the single
    name → daemon table shared with the CLI.
    @raise Invalid_argument on unknown names, listing the valid ones. *)

val experiment_daemons : unit -> Ssreset_sim.Daemon.t list
(** The pool used by the sweeps: synchronous, central-random,
    distributed-random (0.3 and 0.8), locally-central, round-robin and an
    adversarial-rule daemon preferring input moves over resets.  Named
    entries come from {!Ssreset_sim.Daemon.registry}. *)

(* Benchmark harness.

   Usage: main.exe [--quick] [--no-timing] [--jobs N] [--out FILE]
                   [EXPERIMENT-ID ...]

   Without ids, regenerates every experiment table of the paper reproduction
   (E1..E16, see DESIGN.md and EXPERIMENTS.md) followed by the checker
   throughput sections (configs/s over the registry; check-v2 footprint
   views/s and symmetry-reduced orbits/s; check-v3 SMT obligation
   compilation and symbolic-differential rates), the engine scheduler
   throughput section and the Bechamel wall-clock suite (B1).  Exit status
   is non-zero if any table reports a violated bound.

   [--jobs N] fans the grid cells of each experiment across N OCaml domains
   (default: the profile's setting, 1).  Tables and the results file are
   byte-identical for any N — parallelism only changes wall-clock.

   Besides the text tables, the harness always writes a machine-readable
   results file (default BENCH_results.json): per-experiment wall-clock,
   pass/fail, the tables themselves, and the margin of every proved bound
   (measured / bound, extracted from "bound …" column pairs and from
   pre-computed ratio columns such as "max/(D·n²)"). *)

module Expt = Ssreset_expt
module Table = Ssreset_expt.Table
module Json = Ssreset_obs.Json

let available =
  [ "E1-E3"; "E4-E5"; "E6"; "E7"; "E8"; "E9-E10"; "E11"; "E12"; "E13"; "E14"; "E15"; "E16" ]

let parse_args () =
  let quick = ref false in
  let timing = ref true in
  let out = ref "BENCH_results.json" in
  let jobs = ref None in
  let ids = ref [] in
  let i = ref 1 in
  let argc = Array.length Sys.argv in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--quick" -> quick := true
    | "--full" -> quick := false
    | "--no-timing" -> timing := false
    | "--out" when !i + 1 < argc ->
        incr i;
        out := Sys.argv.(!i)
    | "--jobs" when !i + 1 < argc ->
        incr i;
        (match int_of_string_opt Sys.argv.(!i) with
        | Some j when j >= 1 -> jobs := Some j
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n"
              Sys.argv.(!i);
            exit 2)
    | "--help" | "-h" ->
        Printf.printf
          "usage: %s [--quick] [--no-timing] [--jobs N] [--out FILE] \
           [EXPERIMENT-ID ...]\n\
           experiments: %s\n"
          Sys.argv.(0)
          (String.concat " " available);
        exit 0
    | id when List.mem id available -> ids := id :: !ids
    | other ->
        Printf.eprintf "unknown argument %S (try --help)\n" other;
        exit 2);
    incr i
  done;
  (!quick, !timing, !out, !jobs, List.rev !ids)

(* A table passes when its last column is all "ok". *)
let table_ok table =
  let cols = List.length table.Table.headers in
  match List.nth_opt table.Table.headers (cols - 1) with
  | Some "ok" -> Table.all_ok table ~col:(cols - 1)
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Bound margins.                                                      *)
(*                                                                     *)
(* Two shapes of bound reporting appear in the tables:                 *)
(*   …; "max rounds"; "bound 3n"; …   — a measured column followed by  *)
(*       its bound column: margin = measured / bound, per row;         *)
(*   …; "max/(D·n²)"; …               — a pre-computed ratio column.   *)
(* Either way we record the worst (largest) ratio over the rows; a     *)
(* margin ≤ 1 means the proved bound held with room to spare.          *)
(* ------------------------------------------------------------------ *)

let is_bound_header h = String.length h > 6 && String.sub h 0 6 = "bound "
let is_ratio_header h =
  (* e.g. "max/(D·n²)", "max/(Δ·n·m)", "tail/ours" *)
  String.contains h '/'

let cell_float row i =
  match List.nth_opt row i with
  | Some cell -> float_of_string_opt cell
  | None -> None

let margins_of_table (t : Table.t) =
  let headers = Array.of_list t.Table.headers in
  let worst f =
    List.fold_left
      (fun acc row -> match f row with
        | Some r when not (Float.is_nan r) -> Float.max acc r
        | _ -> acc)
      neg_infinity t.Table.rows
  in
  let margins = ref [] in
  Array.iteri
    (fun i h ->
      if is_bound_header h && i > 0 then begin
        let ratio row =
          match (cell_float row (i - 1), cell_float row i) with
          | Some measured, Some bound when bound > 0. ->
              Some (measured /. bound)
          | _ -> None
        in
        let r = worst ratio in
        if r > neg_infinity then
          margins :=
            Json.Obj
              [ ("measured", Json.String headers.(i - 1));
                ("bound", Json.String h);
                ("max_ratio", Json.Float r) ]
            :: !margins
      end
      else if is_ratio_header h then begin
        let r = worst (fun row -> cell_float row i) in
        if r > neg_infinity then
          margins :=
            Json.Obj
              [ ("ratio", Json.String h); ("max_ratio", Json.Float r) ]
            :: !margins
      end)
    headers;
  List.rev !margins

let run_experiments ~profile ~ids =
  let failures = ref 0 in
  let records = ref [] in
  let wanted (id, _) = ids = [] || List.mem id ids in
  let selected = List.filter wanted (Expt.Experiments.all_lazy profile) in
  List.iter
    (fun (id, force_tables) ->
      Printf.printf "== %s ==\n%!" id;
      let t0 = Unix.gettimeofday () in
      let tables = force_tables () in
      let ok = ref true in
      List.iter
        (fun table ->
          Table.print table;
          if not (table_ok table) then begin
            incr failures;
            ok := false;
            Printf.printf "  *** BOUND VIOLATED in this table ***\n"
          end;
          print_newline ())
        tables;
      let wall_s = Unix.gettimeofday () -. t0 in
      records :=
        Json.Obj
          [ ("id", Json.String id);
            ("ok", Json.Bool !ok);
            ("wall_s", Json.Float wall_s);
            ("domains", Json.Int profile.Expt.Experiments.jobs);
            ("margins",
             Json.List (List.concat_map margins_of_table tables));
            ("tables", Json.List (List.map Table.to_json tables)) ]
        :: !records)
    selected;
  (!failures, List.rev !records)

(* ------------------------------------------------------------------ *)
(* Engine scheduler throughput: full per-step rescan vs the dirty-set  *)
(* incremental scheduler, on a U∘SDR ring under the central-random     *)
(* daemon (one mover per step — the worst case for a full rescan, and  *)
(* the common case under central daemons).  Both runs execute exactly  *)
(* the same step sequence (same seed, same table semantics), so the    *)
(* steps/s ratio isolates the scheduling cost.                         *)
(* ------------------------------------------------------------------ *)

let run_engine_bench ~quick =
  Printf.printf "== engine: scheduler throughput, U∘SDR ring, central-random \
                 daemon ==\n%!";
  let sizes = [ 64; 256; 1024 ] in
  let records =
    List.map
      (fun n ->
        let graph = Ssreset_graph.Gen.ring n in
        let module U = Ssreset_unison.Unison.Make (struct
          let k = (2 * n) + 2
        end) in
        let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:(2 * n) in
        let cfg0 =
          Ssreset_sim.Fault.arbitrary (Random.State.make [| 3; n |]) gen graph
        in
        let max_steps = if quick then 2_000 else 20_000 in
        let measure scheduler =
          Ssreset_sim.Engine.run ~seed:5 ~max_steps ~scheduler
            ~algorithm:U.Composed.algorithm ~graph
            ~daemon:Ssreset_sim.Daemon.central_random (Array.copy cfg0)
        in
        let full = measure `Full in
        let inc = measure `Incremental in
        (* Bit-identity cross-check — the two schedulers must agree on
           everything but wall-clock. *)
        if
          full.Ssreset_sim.Engine.steps <> inc.Ssreset_sim.Engine.steps
          || full.Ssreset_sim.Engine.moves <> inc.Ssreset_sim.Engine.moves
          || full.Ssreset_sim.Engine.rounds <> inc.Ssreset_sim.Engine.rounds
          || full.Ssreset_sim.Engine.final <> inc.Ssreset_sim.Engine.final
        then failwith "engine bench: schedulers diverged";
        let rate (r : _ Ssreset_sim.Engine.result) =
          if r.wall_s > 0. then float_of_int r.steps /. r.wall_s else 0.
        in
        let full_rate = rate full and inc_rate = rate inc in
        let speedup = if full_rate > 0. then inc_rate /. full_rate else 0. in
        Printf.printf
          "  n=%-5d %7d steps   full %10.0f steps/s   incremental %10.0f \
           steps/s   speedup %5.1fx\n\
           %!"
          n full.Ssreset_sim.Engine.steps full_rate inc_rate speedup;
        Json.Obj
          [ ("n", Json.Int n);
            ("daemon", Json.String "central-random");
            ("steps", Json.Int full.Ssreset_sim.Engine.steps);
            ("full_steps_per_s", Json.Float full_rate);
            ("incremental_steps_per_s", Json.Float inc_rate);
            ("speedup", Json.Float speedup) ])
      sizes
  in
  print_newline ();
  records

(* ------------------------------------------------------------------ *)
(* B1: Bechamel wall-clock suite.                                       *)
(* ------------------------------------------------------------------ *)

let bechamel_tests ~quick =
  let open Bechamel in
  let n = if quick then 24 else 48 in
  let graph = Ssreset_graph.Gen.ring n in
  let er_graph =
    Ssreset_graph.Gen.erdos_renyi (Random.State.make [| 11 |]) n 0.15
  in
  let stabilize_unison g () =
    let obs =
      Expt.Runner.unison_composed ~graph:g
        ~daemon:(Ssreset_sim.Daemon.distributed_random 0.5)
        ~seed:7 ()
    in
    assert obs.Expt.Runner.result_ok
  in
  let stabilize_fga g () =
    let obs =
      Expt.Runner.fga_composed ~spec:Ssreset_alliance.Spec.dominating_set
        ~graph:g
        ~daemon:(Ssreset_sim.Daemon.distributed_random 0.5)
        ~seed:7 ()
    in
    assert obs.Expt.Runner.result_ok
  in
  let stabilize_tail g () =
    let obs =
      Expt.Runner.tail_unison ~graph:g
        ~daemon:(Ssreset_sim.Daemon.distributed_random 0.5)
        ~seed:7 ()
    in
    assert obs.Expt.Runner.result_ok
  in
  let engine_step =
    (* One synchronous step of U∘SDR from a fixed arbitrary configuration:
       the engine's hot path (guard evaluation over all processes). *)
    let module U = Ssreset_unison.Unison.Make (struct
      let k = (2 * n) + 2
    end) in
    let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:(2 * n) in
    let cfg =
      Ssreset_sim.Fault.arbitrary (Random.State.make [| 3 |]) gen graph
    in
    let rng = Random.State.make [| 4 |] in
    fun () ->
      ignore
        (Ssreset_sim.Engine.step ~rng ~algorithm:U.Composed.algorithm ~graph
           ~daemon:Ssreset_sim.Daemon.synchronous ~step_index:0 cfg)
  in
  [ Test.make ~name:(Printf.sprintf "engine-step/unison-sdr-ring%d" n)
      (Staged.stage engine_step);
    Test.make ~name:(Printf.sprintf "stabilize/unison-sdr-ring%d" n)
      (Staged.stage (stabilize_unison graph));
    Test.make ~name:(Printf.sprintf "stabilize/unison-sdr-er%d" n)
      (Staged.stage (stabilize_unison er_graph));
    Test.make ~name:(Printf.sprintf "stabilize/fga-sdr-er%d" n)
      (Staged.stage (stabilize_fga er_graph));
    Test.make ~name:(Printf.sprintf "stabilize/tail-unison-ring%d" n)
      (Staged.stage (stabilize_tail graph)) ]

let run_bechamel ~quick =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "== B1 wall-clock (Bechamel, OLS on monotonic clock) ==\n%!";
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = ref [] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg instances elt in
          let estimate = Analyze.one ols Instance.monotonic_clock result in
          let ns =
            match Analyze.OLS.estimates estimate with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "  %-36s %14.0f ns/run\n%!" (Test.Elt.name elt) ns;
          results :=
            Json.Obj
              [ ("name", Json.String (Test.Elt.name elt));
                ("ns_per_run", Json.Float ns) ]
            :: !results)
        (Test.elements test))
    (bechamel_tests ~quick);
  List.rev !results

(* ------------------------------------------------------------------ *)
(* Model-checker throughput: lint + exhaustive verification over the   *)
(* whole registry, reporting states explored per second.               *)
(* ------------------------------------------------------------------ *)

module CRegistry = Ssreset_check.Registry
module CReport = Ssreset_check.Report
module CModel = Ssreset_check.Model

let run_check ~quick =
  let mode = if quick then `Quick else `Full in
  Printf.printf "== check: lint + exhaustive small-model verification ==\n%!";
  let failures = ref 0 in
  let records =
    List.map
      (fun (e : CRegistry.entry) ->
        let t0 = Unix.gettimeofday () in
        let r = CRegistry.run ~mode e in
        let wall_s = Unix.gettimeofday () -. t0 in
        let sum f =
          List.fold_left
            (fun acc (m : CReport.model_item) ->
              acc + f m.CReport.result.CModel.stats)
            0 r.CReport.models
        in
        let configs = sum (fun s -> s.CModel.configs) in
        let transitions = sum (fun s -> s.CModel.transitions) in
        let ok = CReport.entry_ok r in
        if not ok then incr failures;
        let per_s =
          if wall_s > 0. then float_of_int configs /. wall_s else 0.
        in
        Printf.printf
          "  %-14s %2d graphs %9d configs %10d transitions %6.2fs %10.0f \
           configs/s  %s\n\
           %!"
          r.CReport.name
          (List.length r.CReport.models)
          configs transitions wall_s per_s
          (if ok then "ok" else "VIOLATIONS");
        Json.Obj
          [ ("name", Json.String r.CReport.name);
            ("ok", Json.Bool ok);
            ("graphs", Json.Int (List.length r.CReport.models));
            ("lint_views", Json.Int r.CReport.lint_views);
            ("configs", Json.Int configs);
            ("transitions", Json.Int transitions);
            ("wall_s", Json.Float wall_s);
            ("configs_per_s", Json.Float per_s) ])
      CRegistry.entries
  in
  print_newline ();
  (!failures, records)

(* ------------------------------------------------------------------ *)
(* check-v2 throughput: the two new static passes.                     *)
(*   footprint — probing views per second over every registry entry    *)
(*     (composed targets where the entry declares one);                *)
(*   symmetry  — orbit representatives explored per second on the      *)
(*     most symmetric graph family, where the quotient is deepest      *)
(*     (|Aut(Kn)| = n!).                                               *)
(* ------------------------------------------------------------------ *)

module CFootprint = Ssreset_check.Footprint

let run_check_v2 ~quick =
  Printf.printf "== check-v2: footprint probing + symmetry-reduced \
                 exploration ==\n%!";
  let footprint =
    List.map
      (fun (e : CRegistry.entry) ->
        let g = Ssreset_graph.Gen.path (max 3 e.CRegistry.min_n) in
        let t0 = Unix.gettimeofday () in
        let fp = CFootprint.analyze (CRegistry.footprint_target e g) in
        let wall_s = Unix.gettimeofday () -. t0 in
        let per_s =
          if wall_s > 0. then float_of_int fp.CFootprint.views /. wall_s
          else 0.
        in
        Printf.printf
          "  footprint %-14s %8d views %6.2fs %10.0f views/s  %s\n%!"
          e.CRegistry.name fp.CFootprint.views wall_s per_s
          (if fp.CFootprint.findings = [] then "clean" else "FINDINGS");
        Json.Obj
          [ ("name", Json.String e.CRegistry.name);
            ("composed", Json.Bool fp.CFootprint.composed);
            ("views", Json.Int fp.CFootprint.views);
            ("wall_s", Json.Float wall_s);
            ("views_per_s", Json.Float per_s) ])
      CRegistry.entries
  in
  let symmetry =
    let n = if quick then 4 else 5 in
    let e =
      List.find (fun e -> e.CRegistry.name = "tail-unison") CRegistry.entries
    in
    let g = Ssreset_graph.Gen.complete n in
    let inst = e.CRegistry.instance g in
    let options = { CModel.default_options with CModel.symmetry = true } in
    let t0 = Unix.gettimeofday () in
    let r = CModel.check ~options inst in
    let wall_s = Unix.gettimeofday () -. t0 in
    let orbits = r.CModel.stats.CModel.configs in
    let per_s = if wall_s > 0. then float_of_int orbits /. wall_s else 0. in
    Printf.printf
      "  symmetry  tail-unison K%d %8d orbits (|Aut| = %d) %6.2fs %10.0f \
       orbits/s  %s\n\
       %!"
      n orbits
      (Option.value ~default:1 r.CModel.automorphisms)
      wall_s per_s
      (if r.CModel.violations = [] && r.CModel.aborted = None then "ok"
       else "DIRTY");
    [ Json.Obj
        [ ("instance", Json.String (Printf.sprintf "tail-unison K%d" n));
          ("orbits", Json.Int orbits);
          ("automorphisms",
           Json.Int (Option.value ~default:1 r.CModel.automorphisms));
          ("transitions", Json.Int r.CModel.stats.CModel.transitions);
          ("wall_s", Json.Float wall_s);
          ("orbits_per_s", Json.Float per_s) ] ]
  in
  print_newline ();
  Json.Obj [ ("footprint", Json.List footprint);
             ("symmetry", Json.List symmetry) ]

(* ------------------------------------------------------------------ *)
(* trace-v1: observability overhead.  The same U∘SDR stabilization     *)
(* three ways — no sink, sink with online bound monitors, sink with    *)
(* monitors plus wave-tagged step records — reporting engine steps/s   *)
(* for each and the event rate of the full trace.  The gate holds the  *)
(* monitors-off rate to the committed baseline: observability must     *)
(* stay pay-for-what-you-use.                                          *)
(* ------------------------------------------------------------------ *)

let run_trace_bench ~quick =
  Printf.printf
    "== trace-v1: monitor + step-trace overhead, U∘SDR ring ==\n%!";
  let n = if quick then 128 else 512 in
  let graph = Ssreset_graph.Gen.ring n in
  (* Central-random: one mover per step, so the same stabilization takes
     thousands of steps — enough work for a stable steps/s estimate (the
     synchronous run finishes in ~20 big steps, far below timer noise). *)
  let run ?sink ?(trace_steps = false) () =
    Expt.Runner.unison_composed ?sink ~trace_steps ~graph
      ~daemon:Ssreset_sim.Daemon.central_random ~seed:11 ()
  in
  let rate (o : Expt.Runner.obs) =
    if o.Expt.Runner.wall_s > 0. then
      float_of_int o.Expt.Runner.steps /. o.Expt.Runner.wall_s
    else 0.
  in
  (* Best of 3: stabilization is deterministic per seed, so the runs only
     differ by scheduler noise and the fastest is the least noisy. *)
  let best_of f =
    let best = ref 0. in
    for _ = 1 to 3 do
      best := Float.max !best (rate (f ()))
    done;
    !best
  in
  let steps = (run ()).Expt.Runner.steps in
  let off = best_of (fun () -> run ()) in
  let null = open_out Filename.null in
  let on =
    best_of (fun () -> run ~sink:(Ssreset_obs.Sink.of_channel null) ())
  in
  close_out null;
  let tmp = Filename.temp_file "ssreset-trace" ".jsonl" in
  let traced =
    let sink = Ssreset_obs.Sink.create tmp in
    let o = run ~sink ~trace_steps:true () in
    Ssreset_obs.Sink.close sink;
    o
  in
  let events =
    let ic = open_in tmp in
    let k = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr k
       done
     with End_of_file -> ());
    close_in ic;
    !k
  in
  Sys.remove tmp;
  let traced_rate = rate traced in
  let events_per_s =
    if traced.Expt.Runner.wall_s > 0. then
      float_of_int events /. traced.Expt.Runner.wall_s
    else 0.
  in
  let overhead off on = if off > 0. then 100. *. (1. -. (on /. off)) else 0. in
  Printf.printf
    "  n=%-5d %7d steps   off %10.0f steps/s   monitors %10.0f steps/s \
     (%.1f%%)   +step-trace %10.0f steps/s (%.1f%%)   %d events %10.0f \
     events/s\n\n\
     %!"
    n steps off on (overhead off on) traced_rate
    (overhead off traced_rate)
    events events_per_s;
  [ Json.Obj
      [ ("n", Json.Int n);
        ("steps", Json.Int steps);
        ("monitors_off_steps_per_s", Json.Float off);
        ("monitors_on_steps_per_s", Json.Float on);
        ("monitor_overhead_pct", Json.Float (overhead off on));
        ("trace_steps_per_s", Json.Float traced_rate);
        ("trace_events", Json.Int events);
        ("trace_events_per_s", Json.Float events_per_s) ] ]

(* ------------------------------------------------------------------ *)
(* prof: engine profiling overhead.  The same U∘SDR stabilization with *)
(* and without an attached Prof (no sink): prof-on pays the lap clock  *)
(* reads and instrument bumps per step, prof-off must pay nothing.     *)
(* The gate holds the prof-off rate to the committed baseline and caps *)
(* the measured overhead.                                              *)
(* ------------------------------------------------------------------ *)

let run_prof_bench ~quick =
  Printf.printf "== prof: engine profiling overhead, U∘SDR ring ==\n%!";
  let n = if quick then 128 else 512 in
  let graph = Ssreset_graph.Gen.ring n in
  (* Central-random, as in the trace bench: one mover per step gives
     enough steps for a stable steps/s estimate. *)
  let run ?prof () =
    Expt.Runner.unison_composed ?prof ~graph
      ~daemon:Ssreset_sim.Daemon.central_random ~seed:11 ()
  in
  let rate (o : Expt.Runner.obs) =
    if o.Expt.Runner.wall_s > 0. then
      float_of_int o.Expt.Runner.steps /. o.Expt.Runner.wall_s
    else 0.
  in
  let best_of f =
    let best = ref 0. in
    for _ = 1 to 3 do
      best := Float.max !best (rate (f ()))
    done;
    !best
  in
  let steps = (run ()).Expt.Runner.steps in
  let off = best_of (fun () -> run ()) in
  let on = best_of (fun () -> run ~prof:(Ssreset_obs.Prof.create ()) ()) in
  (* One instrumented run to report where the time goes. *)
  let p = Ssreset_obs.Prof.create () in
  ignore (run ~prof:p ());
  let phase_ns name =
    Ssreset_obs.Prof.timer_total_ns (Ssreset_obs.Prof.timer p ("phase." ^ name))
  in
  let phases =
    [ "scan"; "select"; "apply"; "refresh"; "neutralize"; "callbacks";
      "stop" ]
  in
  let overhead = if off > 0. then 100. *. (1. -. (on /. off)) else 0. in
  Printf.printf
    "  n=%-5d %7d steps   prof-off %10.0f steps/s   prof-on %10.0f steps/s \
     (%.1f%% overhead)\n"
    n steps off on overhead;
  Printf.printf "  attribution:";
  List.iter
    (fun name -> Printf.printf "  %s %.2fms" name (float_of_int (phase_ns name) /. 1e6))
    phases;
  Printf.printf "\n\n%!";
  [ Json.Obj
      ([ ("n", Json.Int n);
         ("steps", Json.Int steps);
         ("prof_off_steps_per_s", Json.Float off);
         ("prof_on_steps_per_s", Json.Float on);
         ("prof_overhead_pct", Json.Float overhead) ]
      @ List.map
          (fun name -> ("phase_" ^ name ^ "_ns", Json.Int (phase_ns name)))
          phases) ]

(* ------------------------------------------------------------------ *)
(* smt: check-v4 throughput.  Four rates the gate holds to baseline:   *)
(* obligation compilation (symbolic spec → SMT-LIB scripts, all four   *)
(* topology families, re-parsed and linted — the full emission         *)
(* pipeline minus the disk) in obligations/s; the ranking family alone *)
(* (rank + comp.* composition obligations, the v4 global-convergence   *)
(* measures) in obligations/s; the symbolic-IR differential (views +   *)
(* daemon steps cross-checked against the OCaml rules) in views/s; and *)
(* the same differential over the four SDR input-layer IRs added in v4 *)
(* (coloring, MIS, matching, FGA), one views/s figure each.            *)
(* ------------------------------------------------------------------ *)

module CSym = Ssreset_check.Sym
module CObligation = Ssreset_check.Obligation
module CSmt = Ssreset_check.Smt

let run_smt_bench ~quick =
  Printf.printf "== smt: check-v4 obligation compilation + symbolic \
                 differential ==\n%!";
  let specs =
    List.filter_map
      (fun (e : CRegistry.entry) ->
        Option.map (fun s -> (e.CRegistry.name, s)) e.CRegistry.smt_spec)
      CRegistry.entries
  in
  let reps = if quick then 20 else 100 in
  let t0 = Unix.gettimeofday () in
  let per_rep = ref 0 in
  for _ = 1 to reps do
    per_rep := 0;
    List.iter
      (fun (name, spec) ->
        let obs = CObligation.compile_all ~algo:name spec in
        List.iter
          (fun (ob : CObligation.t) ->
            match
              CSmt.parse_string (CSmt.to_string ob.CObligation.ob_script)
            with
            | Error msg ->
                Printf.printf "  COMPILE FAILURE %s: %s\n%!"
                  (CObligation.filename ob) msg;
                exit 1
            | Ok cmds ->
                if CSmt.lint_script cmds <> [] then begin
                  Printf.printf "  LINT FAILURE %s\n%!"
                    (CObligation.filename ob);
                  exit 1
                end)
          obs;
        per_rep := !per_rep + List.length obs)
      specs
  done;
  let compile_wall = Unix.gettimeofday () -. t0 in
  let total_obs = reps * !per_rep in
  let obs_per_s =
    if compile_wall > 0. then float_of_int total_obs /. compile_wall else 0.
  in
  Printf.printf
    "  compile   %3d specs ×%4d reps %8d obligations %6.2fs %10.0f \
     obligations/s\n%!"
    (List.length specs) reps total_obs compile_wall obs_per_s;
  (* ranking family alone: rank obligations from every spec that carries a
     sp_rank, plus the comp.* composition family from every comp_spec —
     the v4 global-convergence measures the z3 CI job certifies. *)
  let comp_specs =
    List.filter_map
      (fun (e : CRegistry.entry) ->
        Option.map (fun s -> (e.CRegistry.name, s)) e.CRegistry.comp_spec)
      CRegistry.entries
  in
  let t0 = Unix.gettimeofday () in
  let rank_per_rep = ref 0 in
  for _ = 1 to reps do
    rank_per_rep := 0;
    List.iter
      (fun (name, spec) ->
        let obs =
          List.filter
            (fun (ob : CObligation.t) ->
              match ob.CObligation.ob_kind with
              | CObligation.Rank _ -> true
              | _ -> false)
            (CObligation.compile_all ~algo:name spec)
        in
        rank_per_rep := !rank_per_rep + List.length obs)
      specs;
    List.iter
      (fun (name, spec) ->
        rank_per_rep :=
          !rank_per_rep
          + List.length (CObligation.compile_composition_all ~algo:name spec))
      comp_specs
  done;
  let rank_wall = Unix.gettimeofday () -. t0 in
  let total_rank = reps * !rank_per_rep in
  let rank_per_s =
    if rank_wall > 0. then float_of_int total_rank /. rank_wall else 0.
  in
  Printf.printf
    "  ranking   %3d specs ×%4d reps %8d obligations %6.2fs %10.0f \
     obligations/s\n%!"
    (List.length specs + List.length comp_specs)
    reps total_rank rank_wall rank_per_s;
  let diff_n = if quick then 4 else 5 in
  let e =
    List.find (fun e -> e.CRegistry.name = "tail-unison") CRegistry.entries
  in
  let inst = Option.get e.CRegistry.sym (Ssreset_graph.Gen.ring diff_n) in
  let t0 = Unix.gettimeofday () in
  let d = CSym.check inst in
  let diff_wall = Unix.gettimeofday () -. t0 in
  let probes = d.CSym.views + d.CSym.steps in
  let views_per_s =
    if diff_wall > 0. then float_of_int probes /. diff_wall else 0.
  in
  Printf.printf
    "  diff      %-16s ring%-2d %8d views %6d steps %6.2fs %10.0f \
     views/s  %s\n%!"
    "tail-unison" diff_n d.CSym.views d.CSym.steps diff_wall views_per_s
    (if CSym.diff_ok d then "agrees" else "MISMATCH");
  (* the four SDR input-layer IRs added in v4, one differential each *)
  let inputs =
    List.map
      (fun nm ->
        let e =
          List.find (fun e -> e.CRegistry.name = nm) CRegistry.entries
        in
        let inst =
          Option.get e.CRegistry.sym (Ssreset_graph.Gen.ring diff_n)
        in
        let t0 = Unix.gettimeofday () in
        let di = CSym.check inst in
        let wall = Unix.gettimeofday () -. t0 in
        let probes = di.CSym.views + di.CSym.steps in
        let vps = if wall > 0. then float_of_int probes /. wall else 0. in
        Printf.printf
          "  diff      %-16s ring%-2d %8d views %6d steps %6.2fs %10.0f \
           views/s  %s\n%!"
          nm diff_n di.CSym.views di.CSym.steps wall vps
          (if CSym.diff_ok di then "agrees" else "MISMATCH");
        Json.Obj
          [ ("algo", Json.String nm);
            ("views", Json.Int di.CSym.views);
            ("steps", Json.Int di.CSym.steps);
            ("ok", Json.Bool (CSym.diff_ok di));
            ("wall_s", Json.Float wall);
            ("views_per_s", Json.Float vps) ])
      [ "coloring-sdr"; "mis-sdr"; "matching-sdr"; "fga-sdr" ]
  in
  print_newline ();
  Json.Obj
    [ ( "compile",
        Json.Obj
          [ ("specs", Json.Int (List.length specs));
            ("reps", Json.Int reps);
            ("obligations", Json.Int total_obs);
            ("wall_s", Json.Float compile_wall);
            ("obligations_per_s", Json.Float obs_per_s) ] );
      ( "differential",
        Json.Obj
          [ ("instance", Json.String (Printf.sprintf "tail-unison ring%d" diff_n));
            ("views", Json.Int d.CSym.views);
            ("steps", Json.Int d.CSym.steps);
            ("daemons", Json.Int d.CSym.daemons);
            ("ok", Json.Bool (CSym.diff_ok d));
            ("wall_s", Json.Float diff_wall);
            ("views_per_s", Json.Float views_per_s) ] );
      ( "ranking",
        Json.Obj
          [ ("specs", Json.Int (List.length specs + List.length comp_specs));
            ("reps", Json.Int reps);
            ("obligations", Json.Int total_rank);
            ("wall_s", Json.Float rank_wall);
            ("obligations_per_s", Json.Float rank_per_s) ] );
      ("differential_inputs", Json.List inputs) ]

(* ------------------------------------------------------------------ *)
(* engine_flat: the IR-compiled flat data path against the incremental *)
(* scheduler — same U∘SDR ring workload, same seed, same daemon, and a *)
(* bit-identity cross-check (steps/moves/rounds and the final encoded  *)
(* state of every process must agree), so the steps/s ratio isolates   *)
(* the execution substrate.  A second block measures the scale-tier    *)
(* workload the CI scale-smoke job pins: a streamed ring (CSR built    *)
(* without ever materializing adjacency lists), legitimate ground      *)
(* state with 5%% of the nodes perturbed, run to stabilization         *)
(* sequentially and with partitioned domain-parallel stepping — whose  *)
(* digests must be byte-identical for every domain count.              *)
(* ------------------------------------------------------------------ *)

module Flat = Ssreset_flat.Flat
module FlatProgs = Ssreset_flat.Progs
module Csr = Ssreset_graph.Csr

let flat_value_lists_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (f1, v1) (f2, v2) ->
         String.equal f1 f2 && CSym.value_equal v1 v2)
       a b

let run_flat_bench ~quick =
  Printf.printf
    "== engine_flat: IR-compiled flat engine vs incremental scheduler, \
     U∘SDR ring, central-random daemon ==\n%!";
  let sizes = [ 64; 256; 1024 ] in
  let head_to_head =
    List.map
      (fun n ->
        let graph = Ssreset_graph.Gen.ring n in
        let inst = CRegistry.unison_sdr_composed_sym graph in
        let module I = (val inst : CSym.INSTANCE) in
        let seed_rng = Random.State.make [| 3; n |] in
        (* The U∘SDR domain is node-independent (status × clock × distance,
           ~3·K·n states at n = 1024) — materialize it once, not per node. *)
        let dom = Array.of_list (I.domain 0) in
        let cfg0 =
          Array.init n (fun _ ->
              dom.(Random.State.int seed_rng (Array.length dom)))
        in
        let max_steps = if quick then 2_000 else 20_000 in
        let inc =
          Ssreset_sim.Engine.run ~seed:5 ~max_steps ~scheduler:`Incremental
            ~algorithm:I.algorithm ~graph
            ~daemon:Ssreset_sim.Daemon.central_random (Array.copy cfg0)
        in
        let prog =
          Flat.compile ~csr:(Csr.of_graph graph) ~params:I.param_values
            I.spec
        in
        Array.iteri (fun u s -> Flat.load prog u (I.encode s)) cfg0;
        let flat =
          Flat.run ~seed:5 ~max_steps ~stop_on_legitimate:false
            ~daemon:Flat.Central_random prog
        in
        (* Bit-identity cross-check — flat must replay the incremental
           run exactly, not just end up somewhere legitimate. *)
        if
          inc.Ssreset_sim.Engine.steps <> flat.Flat.steps
          || inc.Ssreset_sim.Engine.moves <> flat.Flat.moves
          || inc.Ssreset_sim.Engine.rounds <> flat.Flat.rounds
        then failwith "engine_flat bench: counters diverged";
        Array.iteri
          (fun u s ->
            if not (flat_value_lists_equal (I.encode s) (Flat.read prog u))
            then
              failwith
                (Printf.sprintf
                   "engine_flat bench: final state diverged at process %d" u))
          inc.Ssreset_sim.Engine.final;
        let inc_rate =
          if inc.Ssreset_sim.Engine.wall_s > 0. then
            float_of_int inc.Ssreset_sim.Engine.steps
            /. inc.Ssreset_sim.Engine.wall_s
          else 0.
        in
        let flat_rate =
          if flat.Flat.wall_s > 0. then
            float_of_int flat.Flat.steps /. flat.Flat.wall_s
          else 0.
        in
        let speedup = if inc_rate > 0. then flat_rate /. inc_rate else 0. in
        Printf.printf
          "  n=%-5d %7d steps   incremental %10.0f steps/s   flat %10.0f \
           steps/s   speedup %5.1fx\n\
           %!"
          n inc.Ssreset_sim.Engine.steps inc_rate flat_rate speedup;
        Json.Obj
          [ ("n", Json.Int n);
            ("daemon", Json.String "central-random");
            ("steps", Json.Int flat.Flat.steps);
            ("incremental_steps_per_s", Json.Float inc_rate);
            ("flat_steps_per_s", Json.Float flat_rate);
            ("speedup", Json.Float speedup) ])
      sizes
  in
  let scale =
    let n = if quick then 20_000 else 100_000 in
    let k = n / 20 in
    let entry = Option.get (FlatProgs.find "unison-sdr") in
    let digest0 = ref None in
    List.map
      (fun parts ->
        let prog = FlatProgs.build entry (Csr.ring n) in
        FlatProgs.init_ground prog;
        FlatProgs.perturb prog ~rng:(Random.State.make [| 0xF1A7; 1 |]) k;
        let r =
          if parts = 1 then Flat.run ~daemon:Flat.Synchronous prog
          else Flat.run_partitioned ~parts prog
        in
        let digest = FlatProgs.digest prog r in
        (match !digest0 with
        | None -> digest0 := Some digest
        | Some d ->
            if not (String.equal d digest) then
              failwith
                (Printf.sprintf
                   "engine_flat bench: digest diverged at parts=%d" parts));
        let rate =
          if r.Flat.wall_s > 0. then
            float_of_int r.Flat.steps /. r.Flat.wall_s
          else 0.
        in
        let moves_rate =
          if r.Flat.wall_s > 0. then
            float_of_int r.Flat.moves /. r.Flat.wall_s
          else 0.
        in
        Printf.printf
          "  scale n=%-7d perturb=%-6d parts=%d %6d steps %9d moves \
           %6.2fs %8.0f steps/s %10.0f moves/s\n\
           %!"
          n k parts r.Flat.steps r.Flat.moves r.Flat.wall_s rate moves_rate;
        Json.Obj
          [ ("n", Json.Int n);
            ("perturb", Json.Int k);
            ("parts", Json.Int parts);
            ("steps", Json.Int r.Flat.steps);
            ("moves", Json.Int r.Flat.moves);
            ("digest", Json.String digest);
            ("steps_per_s", Json.Float rate);
            ("moves_per_s", Json.Float moves_rate) ])
      [ 1; 2 ]
  in
  print_newline ();
  Json.Obj
    [ ("head_to_head", Json.List head_to_head);
      ("scale", Json.List scale) ]

(* ------------------------------------------------------------------ *)
(* flat_obs: observability overhead on the flat data path.  The same  *)
(* scale-tier workload as engine_flat.scale (streamed U∘SDR ring,     *)
(* perturbed ground state, synchronous daemon) run once with no prof  *)
(* and once with a windowless Prof attached.  The digests must be     *)
(* byte-identical — instrumentation is pay-as-you-go — and the gate   *)
(* holds the prof-off rate to baseline while capping the measured     *)
(* prof-on overhead.                                                  *)
(* ------------------------------------------------------------------ *)

let run_flat_obs_bench ~quick =
  Printf.printf
    "== flat_obs: flat-engine profiling overhead, streamed U∘SDR ring, \
     synchronous daemon ==\n%!";
  let n = if quick then 20_000 else 100_000 in
  let k = n / 20 in
  let entry = Option.get (FlatProgs.find "unison-sdr") in
  let run ?prof () =
    let prog = FlatProgs.build entry (Csr.ring n) in
    FlatProgs.init_ground prog;
    FlatProgs.perturb prog ~rng:(Random.State.make [| 0xF1A7; 1 |]) k;
    let r = Flat.run ~daemon:Flat.Synchronous ?prof prog in
    (r, FlatProgs.digest prog r)
  in
  let rate (r : Flat.result) =
    if r.Flat.wall_s > 0. then float_of_int r.Flat.steps /. r.Flat.wall_s
    else 0.
  in
  let best_of f =
    let best = ref 0. in
    let digest = ref "" in
    for _ = 1 to 3 do
      let r, d = f () in
      digest := d;
      best := Float.max !best (rate r)
    done;
    (!best, !digest)
  in
  let steps = (fst (run ())).Flat.steps in
  let off, digest_off = best_of (fun () -> run ()) in
  let on, digest_on =
    best_of (fun () -> run ~prof:(Ssreset_obs.Prof.create ()) ())
  in
  (* Pay-as-you-go means bit-identical, not just statistically close. *)
  if not (String.equal digest_off digest_on) then
    failwith "flat_obs bench: digest diverged between prof-off and prof-on";
  let overhead = if off > 0. then 100. *. (1. -. (on /. off)) else 0. in
  Printf.printf
    "  n=%-7d %6d steps   prof-off %10.0f steps/s   prof-on %10.0f \
     steps/s (%.1f%% overhead)\n\n\
     %!"
    n steps off on overhead;
  [ Json.Obj
      [ ("n", Json.Int n);
        ("perturb", Json.Int k);
        ("steps", Json.Int steps);
        ("digest", Json.String digest_off);
        ("prof_off_steps_per_s", Json.Float off);
        ("prof_on_steps_per_s", Json.Float on);
        ("prof_overhead_pct", Json.Float overhead) ] ]

let () =
  let quick, timing, out, jobs, ids = parse_args () in
  let profile =
    if quick then Expt.Experiments.quick else Expt.Experiments.full
  in
  let profile =
    match jobs with
    | Some jobs -> { profile with Expt.Experiments.jobs }
    | None -> profile
  in
  Printf.printf
    "Self-Stabilizing Distributed Cooperative Reset — experiment harness (%s \
     profile, %d domain%s)\n\n%!"
    (if quick then "quick" else "full")
    profile.Expt.Experiments.jobs
    (if profile.Expt.Experiments.jobs = 1 then "" else "s");
  let t0 = Unix.gettimeofday () in
  let failures, experiments = run_experiments ~profile ~ids in
  let check_failures, check_records =
    if ids = [] then run_check ~quick else (0, [])
  in
  let failures = failures + check_failures in
  let check_v2 =
    if ids = [] then run_check_v2 ~quick
    else Json.Obj [ ("footprint", Json.List []); ("symmetry", Json.List []) ]
  in
  let engine = if ids = [] then run_engine_bench ~quick else [] in
  let engine_flat =
    if ids = [] then run_flat_bench ~quick
    else
      Json.Obj
        [ ("head_to_head", Json.List []); ("scale", Json.List []) ]
  in
  let flat_obs = if ids = [] then run_flat_obs_bench ~quick else [] in
  let trace_v1 = if ids = [] then run_trace_bench ~quick else [] in
  let prof_bench = if ids = [] then run_prof_bench ~quick else [] in
  let smt_bench =
    if ids = [] then run_smt_bench ~quick
    else Json.Obj [ ("compile", Json.Null); ("differential", Json.Null) ]
  in
  let timings =
    if timing && ids = [] then run_bechamel ~quick else []
  in
  let results =
    Json.Obj
      [ ("schema", Json.Int Ssreset_obs.Sink.schema_version);
        ("profile", Json.String (if quick then "quick" else "full"));
        ("git", Json.String (Ssreset_obs.Sink.git_describe ()));
        ("domains", Json.Int profile.Expt.Experiments.jobs);
        ("failures", Json.Int failures);
        ("wall_s", Json.Float (Unix.gettimeofday () -. t0));
        ("experiments", Json.List experiments);
        ("engine", Json.List engine);
        ("engine_flat", engine_flat);
        ("flat_obs", Json.List flat_obs);
        ("trace_v1", Json.List trace_v1);
        ("prof", Json.List prof_bench);
        ("check", Json.List check_records);
        ("check_v2", check_v2);
        ("smt", smt_bench);
        ("timing", Json.List timings) ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string_hum results);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nresults written to %s\n" out;
  if failures > 0 then begin
    Printf.printf "%d table(s) with violated bounds\n" failures;
    exit 1
  end
  else Printf.printf "all experiment tables pass\n"

(* ssreset — command-line driver for the reproduction.

   Subcommands run one system on one network under one daemon and print the
   stabilization statistics; `experiments` regenerates the full table suite
   (same as bench/main.exe). *)

open Cmdliner

module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Metrics = Ssreset_graph.Metrics
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Spec = Ssreset_alliance.Spec
module Runner = Ssreset_expt.Runner
module Workload = Ssreset_expt.Workload

(* ---------------------------- common options ---------------------------- *)

let family_conv =
  let families =
    [ ("ring", Workload.ring); ("path", Workload.path); ("star", Workload.star);
      ("complete", Workload.complete); ("grid", Workload.grid);
      ("binary-tree", Workload.binary_tree); ("random-tree", Workload.random_tree);
      ("sparse-random", Workload.sparse_random); ("lollipop", Workload.lollipop);
      ("er", Workload.erdos_renyi 0.2) ]
  in
  let parse s =
    match List.assoc_opt s families with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown family %S (one of: %s)" s
               (String.concat ", " (List.map fst families))))
  in
  let print ppf (f : Workload.family) =
    Format.pp_print_string ppf f.Workload.family_name
  in
  Arg.conv (parse, print)

let family =
  Arg.(
    value
    & opt family_conv Workload.ring
    & info [ "g"; "family" ] ~docv:"FAMILY"
        ~doc:"Graph family (ring, path, star, complete, grid, binary-tree, \
              random-tree, sparse-random, lollipop, er).")

let size =
  Arg.(
    value & opt int 16
    & info [ "n"; "size" ] ~docv:"N" ~doc:"Number of processes.")

let seed =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let daemon_name =
  Arg.(
    value & opt string "distributed-random"
    & info [ "d"; "daemon" ] ~docv:"DAEMON"
        ~doc:"Daemon: synchronous, central-random, central-first, \
              central-last, round-robin, distributed-random, \
              locally-central, adversarial, starve.")

let spec_conv =
  let parse s =
    match s with
    | "dominating-set" -> Ok Spec.dominating_set
    | "global-offensive" -> Ok Spec.global_offensive
    | "global-defensive" -> Ok Spec.global_defensive
    | "global-powerful" -> Ok Spec.global_powerful
    | s -> (
        match String.index_opt s ',' with
        | Some i -> (
            try
              let f = int_of_string (String.sub s 0 i) in
              let g = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
              Ok (Spec.custom ~name:(Printf.sprintf "(%d,%d)" f g) ~f ~g)
            with _ -> Error (`Msg "expected F,G with integer F and G"))
        | None ->
            Error
              (`Msg
                "unknown spec (named instance or F,G for constant functions)"))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s.Spec.spec_name)

let spec =
  Arg.(
    value
    & opt spec_conv Spec.dominating_set
    & info [ "spec" ] ~docv:"SPEC"
        ~doc:"Alliance instance: dominating-set, global-offensive, \
              global-defensive, global-powerful, or F,G constants.")

let report name (obs : Runner.obs) =
  Fmt.pr "%s@." name;
  Fmt.pr "  outcome ok:        %b@." obs.Runner.outcome_ok;
  Fmt.pr "  result ok:         %b@." obs.Runner.result_ok;
  Fmt.pr "  rounds:            %d@." obs.Runner.rounds;
  Fmt.pr "  steps:             %d@." obs.Runner.steps;
  Fmt.pr "  moves:             %d@." obs.Runner.moves;
  if obs.Runner.sdr_moves > 0 || obs.Runner.segments > 1 then begin
    Fmt.pr "  SDR moves:         %d@." obs.Runner.sdr_moves;
    Fmt.pr "  max SDR moves/proc:%d@." obs.Runner.max_proc_sdr_moves;
    Fmt.pr "  segments:          %d@." obs.Runner.segments
  end;
  if obs.Runner.outcome_ok && obs.Runner.result_ok then 0 else 1

let build family n seed =
  let g = family.Workload.build ~seed ~n in
  Fmt.pr "network: %s (%s)@." (Metrics.summary g) family.Workload.family_name;
  g

(* ------------------------------ subcommands ----------------------------- *)

let unison_cmd =
  let run family n seed daemon_name =
    let graph = build family n seed in
    let daemon = Runner.daemon_by_name daemon_name in
    report "U∘SDR from an arbitrary configuration (stop at first normal)"
      (Runner.unison_composed ~graph ~daemon ~seed ())
  in
  Cmd.v
    (Cmd.info "unison"
       ~doc:"Self-stabilizing unison (U∘SDR) from an arbitrary configuration.")
    Term.(const run $ family $ size $ seed $ daemon_name)

let tail_cmd =
  let run family n seed daemon_name =
    let graph = build family n seed in
    let daemon = Runner.daemon_by_name daemon_name in
    report "tail-unison baseline from an arbitrary configuration"
      (Runner.tail_unison ~graph ~daemon ~seed ())
  in
  Cmd.v
    (Cmd.info "tail-unison" ~doc:"Baseline unison with reset tails ([11]).")
    Term.(const run $ family $ size $ seed $ daemon_name)

let alliance_cmd =
  let run family n seed daemon_name spec bare =
    let graph = build family n seed in
    if not (Spec.feasible spec graph) then begin
      Fmt.epr "spec %s infeasible on this network@." spec.Spec.spec_name;
      2
    end
    else begin
      let daemon = Runner.daemon_by_name daemon_name in
      if bare then
        report
          (Printf.sprintf "FGA(%s) from γ_init (non self-stabilizing run)"
             spec.Spec.spec_name)
          (Runner.fga_bare ~spec ~graph ~daemon ~seed ())
      else
        report
          (Printf.sprintf "FGA(%s)∘SDR from an arbitrary configuration"
             spec.Spec.spec_name)
          (Runner.fga_composed ~spec ~graph ~daemon ~seed ())
    end
  in
  let bare =
    Arg.(value & flag & info [ "bare" ] ~doc:"Run FGA alone from γ_init.")
  in
  Cmd.v
    (Cmd.info "alliance"
       ~doc:"Silent self-stabilizing 1-minimal (f,g)-alliance (FGA∘SDR).")
    Term.(const run $ family $ size $ seed $ daemon_name $ spec $ bare)

let agr_unison_cmd =
  let run family n seed daemon_name =
    let graph = build family n seed in
    let daemon = Runner.daemon_by_name daemon_name in
    report
      "U∘AGR (mono-initiator reset baseline; needs a weakly fair daemon)"
      (Runner.unison_agr ~graph ~daemon ~seed ())
  in
  Cmd.v
    (Cmd.info "agr-unison"
       ~doc:
         "Unison over the mono-initiator Arora-Gouda-style reset baseline. \
          Livelocks under unfair daemons such as central-first — that is \
          the point of experiment E15.")
    Term.(const run $ family $ size $ seed $ daemon_name)

let matching_cmd =
  let run family n seed daemon_name =
    let graph = build family n seed in
    let daemon = Runner.daemon_by_name daemon_name in
    report "matching∘SDR from an arbitrary configuration"
      (Runner.matching_composed ~graph ~daemon ~seed ())
  in
  Cmd.v
    (Cmd.info "matching" ~doc:"Silent self-stabilizing maximal matching.")
    Term.(const run $ family $ size $ seed $ daemon_name)

let coloring_cmd =
  let run family n seed daemon_name =
    let graph = build family n seed in
    let daemon = Runner.daemon_by_name daemon_name in
    report "coloring∘SDR from an arbitrary configuration"
      (Runner.coloring_composed ~graph ~daemon ~seed ())
  in
  Cmd.v
    (Cmd.info "coloring" ~doc:"Silent self-stabilizing (Δ+1)-coloring.")
    Term.(const run $ family $ size $ seed $ daemon_name)

let mis_cmd =
  let run family n seed daemon_name =
    let graph = build family n seed in
    let daemon = Runner.daemon_by_name daemon_name in
    report "MIS∘SDR from an arbitrary configuration"
      (Runner.mis_composed ~graph ~daemon ~seed ())
  in
  Cmd.v
    (Cmd.info "mis" ~doc:"Silent self-stabilizing maximal independent set.")
    Term.(const run $ family $ size $ seed $ daemon_name)

let graph_cmd =
  let run family n seed dot =
    let g = family.Workload.build ~seed ~n in
    if dot then print_string (Graph.to_dot g)
    else begin
      Fmt.pr "%a@." Graph.pp g;
      Fmt.pr "diameter: %d  radius: %d  cyclomatic: %d  bipartite: %b@."
        (Metrics.diameter g) (Metrics.radius g) (Metrics.cyclomatic_number g)
        (Metrics.is_bipartite g);
      (match Metrics.girth g with
      | Some girth -> Fmt.pr "girth: %d@." girth
      | None -> Fmt.pr "girth: - (forest)@.");
      Fmt.pr "degrees: %a@."
        Fmt.(list ~sep:(any " ") (pair ~sep:(any "x") int int))
        (List.map (fun (d, c) -> (c, d)) (Metrics.degree_histogram g))
    end;
    0
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz.") in
  Cmd.v
    (Cmd.info "graph" ~doc:"Inspect a generated network.")
    Term.(const run $ family $ size $ seed $ dot)

let experiments_cmd =
  let run quick ids =
    let profile =
      if quick then Ssreset_expt.Experiments.quick
      else Ssreset_expt.Experiments.full
    in
    let failures = ref 0 in
    List.iter
      (fun (id, tables) ->
        if ids = [] || List.mem id ids then begin
          Fmt.pr "== %s ==@." id;
          List.iter
            (fun t ->
              Ssreset_expt.Table.print t;
              print_newline ())
            tables
        end)
      (Ssreset_expt.Experiments.all profile);
    !failures
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Small sweep.") in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the experiment tables.")
    Term.(const run $ quick $ ids)

let () =
  let doc =
    "self-stabilizing distributed cooperative reset (Devismes & Johnen, \
     ICDCS 2019) — reproduction"
  in
  let info = Cmd.info "ssreset" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ unison_cmd; tail_cmd; agr_unison_cmd; alliance_cmd; coloring_cmd;
            mis_cmd; matching_cmd; graph_cmd; experiments_cmd ]))

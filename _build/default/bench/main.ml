(* Benchmark harness.

   Usage: main.exe [--quick] [--no-timing] [EXPERIMENT-ID ...]

   Without ids, regenerates every experiment table of the paper reproduction
   (E1..E13, see DESIGN.md and EXPERIMENTS.md) followed by the Bechamel
   wall-clock suite (B1).  Exit status is non-zero if any table reports a
   violated bound. *)

module Expt = Ssreset_expt
module Table = Ssreset_expt.Table

let available =
  [ "E1-E3"; "E4-E5"; "E6"; "E7"; "E8"; "E9-E10"; "E11"; "E12"; "E13"; "E14"; "E15"; "E16" ]

let parse_args () =
  let quick = ref false in
  let timing = ref true in
  let ids = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | "--full" -> quick := false
        | "--no-timing" -> timing := false
        | "--help" | "-h" ->
            Printf.printf
              "usage: %s [--quick] [--no-timing] [EXPERIMENT-ID ...]\n\
               experiments: %s\n"
              Sys.argv.(0)
              (String.concat " " available);
            exit 0
        | id when List.mem id available -> ids := id :: !ids
        | other ->
            Printf.eprintf "unknown argument %S (try --help)\n" other;
            exit 2)
    Sys.argv;
  (!quick, !timing, List.rev !ids)

(* A table passes when its last column is all "ok". *)
let table_ok table =
  let cols = List.length table.Table.headers in
  match List.nth_opt table.Table.headers (cols - 1) with
  | Some "ok" -> Table.all_ok table ~col:(cols - 1)
  | _ -> true

let run_experiments ~profile ~ids =
  let failures = ref 0 in
  let wanted (id, _) = ids = [] || List.mem id ids in
  let selected = List.filter wanted (Expt.Experiments.all profile) in
  List.iter
    (fun (id, tables) ->
      Printf.printf "== %s ==\n%!" id;
      List.iter
        (fun table ->
          Table.print table;
          if not (table_ok table) then begin
            incr failures;
            Printf.printf "  *** BOUND VIOLATED in this table ***\n"
          end;
          print_newline ())
        tables)
    selected;
  !failures

(* ------------------------------------------------------------------ *)
(* B1: Bechamel wall-clock suite.                                       *)
(* ------------------------------------------------------------------ *)

let bechamel_tests ~quick =
  let open Bechamel in
  let n = if quick then 24 else 48 in
  let graph = Ssreset_graph.Gen.ring n in
  let er_graph =
    Ssreset_graph.Gen.erdos_renyi (Random.State.make [| 11 |]) n 0.15
  in
  let stabilize_unison g () =
    let obs =
      Expt.Runner.unison_composed ~graph:g
        ~daemon:(Ssreset_sim.Daemon.distributed_random 0.5)
        ~seed:7 ()
    in
    assert obs.Expt.Runner.result_ok
  in
  let stabilize_fga g () =
    let obs =
      Expt.Runner.fga_composed ~spec:Ssreset_alliance.Spec.dominating_set
        ~graph:g
        ~daemon:(Ssreset_sim.Daemon.distributed_random 0.5)
        ~seed:7 ()
    in
    assert obs.Expt.Runner.result_ok
  in
  let stabilize_tail g () =
    let obs =
      Expt.Runner.tail_unison ~graph:g
        ~daemon:(Ssreset_sim.Daemon.distributed_random 0.5)
        ~seed:7 ()
    in
    assert obs.Expt.Runner.result_ok
  in
  let engine_step =
    (* One synchronous step of U∘SDR from a fixed arbitrary configuration:
       the engine's hot path (guard evaluation over all processes). *)
    let module U = Ssreset_unison.Unison.Make (struct
      let k = (2 * n) + 2
    end) in
    let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:(2 * n) in
    let cfg =
      Ssreset_sim.Fault.arbitrary (Random.State.make [| 3 |]) gen graph
    in
    let rng = Random.State.make [| 4 |] in
    fun () ->
      ignore
        (Ssreset_sim.Engine.step ~rng ~algorithm:U.Composed.algorithm ~graph
           ~daemon:Ssreset_sim.Daemon.synchronous ~step_index:0 cfg)
  in
  [ Test.make ~name:(Printf.sprintf "engine-step/unison-sdr-ring%d" n)
      (Staged.stage engine_step);
    Test.make ~name:(Printf.sprintf "stabilize/unison-sdr-ring%d" n)
      (Staged.stage (stabilize_unison graph));
    Test.make ~name:(Printf.sprintf "stabilize/unison-sdr-er%d" n)
      (Staged.stage (stabilize_unison er_graph));
    Test.make ~name:(Printf.sprintf "stabilize/fga-sdr-er%d" n)
      (Staged.stage (stabilize_fga er_graph));
    Test.make ~name:(Printf.sprintf "stabilize/tail-unison-ring%d" n)
      (Staged.stage (stabilize_tail graph)) ]

let run_bechamel ~quick =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "== B1 wall-clock (Bechamel, OLS on monotonic clock) ==\n%!";
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg instances elt in
          let estimate = Analyze.one ols Instance.monotonic_clock result in
          let ns =
            match Analyze.OLS.estimates estimate with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "  %-36s %14.0f ns/run\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    (bechamel_tests ~quick)

let () =
  let quick, timing, ids = parse_args () in
  let profile =
    if quick then Expt.Experiments.quick else Expt.Experiments.full
  in
  Printf.printf
    "Self-Stabilizing Distributed Cooperative Reset — experiment harness (%s \
     profile)\n\n%!"
    (if quick then "quick" else "full");
  let failures = run_experiments ~profile ~ids in
  if timing && ids = [] then run_bechamel ~quick;
  if failures > 0 then begin
    Printf.printf "\n%d table(s) with violated bounds\n" failures;
    exit 1
  end
  else Printf.printf "\nall experiment tables pass\n"

lib/mis/mis.ml: Array Fmt List Random Ssreset_core Ssreset_graph Ssreset_sim

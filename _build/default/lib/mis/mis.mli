(** Maximal independent set as an SDR input algorithm.

    Fourth instantiation of the reset-based method (generality, §1.1).
    Identified networks; each process is [Undecided], [In] or [Out].  An
    undecided process joins the set when it has no [In] neighbor and every
    undecided neighbor has a smaller identifier; it leaves (becomes [Out])
    as soon as a neighbor is [In].  Locally checkable: [In] forbids [In]
    neighbors, [Out] requires an [In] neighbor, [Undecided] is always
    locally consistent.  Composed with SDR this yields a silent
    self-stabilizing MIS. *)

module Sdr = Ssreset_core.Sdr

type membership = Undecided | In | Out

type state = {
  id : int;  (** constant *)
  m : membership;
}

val pp_state : state Fmt.t
val rule_join : string
(** ["MIS-join"]. *)

val rule_out : string
(** ["MIS-out"]. *)

module Make (P : sig
  val graph : Ssreset_graph.Graph.t
  val ids : int array option
end) : sig
  module Input : Sdr.INPUT with type state = state
  module Composed : Sdr.S with type inner = state

  val bare : state Ssreset_sim.Algorithm.t
  val gamma_init : unit -> state array
  val gen : state Ssreset_sim.Fault.generator

  val independent_set : state array -> bool array
  val independent_set_of_composed : state Sdr.state array -> bool array

  val is_mis : bool array -> bool
  (** Independent (no edge inside) and maximal (every outside process has a
      neighbor inside). *)
end

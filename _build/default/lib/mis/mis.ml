module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph
module Sdr = Ssreset_core.Sdr

type membership = Undecided | In | Out

type state = {
  id : int;
  m : membership;
}

let pp_state ppf s =
  Fmt.pf ppf "{id=%d;%s}" s.id
    (match s.m with Undecided -> "?" | In -> "in" | Out -> "out")

let rule_join = "MIS-join"
let rule_out = "MIS-out"

let p_icorrect (v : state Algorithm.view) =
  match v.Algorithm.state.m with
  | Undecided -> true
  | In -> Array.for_all (fun s -> s.m <> In) v.Algorithm.nbrs
  | Out -> Array.exists (fun s -> s.m = In) v.Algorithm.nbrs

let rules =
  [ { Algorithm.rule_name = rule_join;
      guard =
        (fun v ->
          let self = v.Algorithm.state in
          p_icorrect v
          && self.m = Undecided
          && Array.for_all
               (fun s -> s.m = Out || (s.m = Undecided && s.id < self.id))
               v.Algorithm.nbrs);
      action = (fun v -> { v.Algorithm.state with m = In }) };
    { Algorithm.rule_name = rule_out;
      guard =
        (fun v ->
          p_icorrect v
          && v.Algorithm.state.m = Undecided
          && Array.exists (fun s -> s.m = In) v.Algorithm.nbrs);
      action = (fun v -> { v.Algorithm.state with m = Out }) } ]

module Make (P : sig
  val graph : Graph.t
  val ids : int array option
end) =
struct
  let graph = P.graph

  let ids =
    match P.ids with
    | None -> Array.init (Graph.n graph) (fun u -> u)
    | Some ids ->
        if Array.length ids <> Graph.n graph then
          invalid_arg "Mis.Make: ids length mismatch";
        ids

  module Input = struct
    type nonrec state = state

    let name = "mis"
    let equal (a : state) b = a = b
    let pp = pp_state
    let p_icorrect = p_icorrect
    let p_reset s = s.m = Undecided
    let reset s = { s with m = Undecided }
    let rules = rules
  end

  module Composed = Sdr.Make (Input)

  let bare : state Algorithm.t =
    { Algorithm.name = "mis-bare"; rules; equal = Input.equal; pp = pp_state }

  let gamma_init () =
    Array.init (Graph.n graph) (fun u -> { id = ids.(u); m = Undecided })

  let gen rng u =
    let m =
      match Random.State.int rng 3 with 0 -> Undecided | 1 -> In | _ -> Out
    in
    { id = ids.(u); m }

  let independent_set cfg = Array.map (fun s -> s.m = In) cfg

  let independent_set_of_composed cfg =
    Array.map (fun s -> s.Sdr.inner.m = In) cfg

  let is_mis set =
    List.for_all (fun (u, v) -> not (set.(u) && set.(v))) (Graph.edges graph)
    && Array.for_all
         (fun u ->
           set.(u) || Graph.exists_neighbor graph u ~f:(fun v -> set.(v)))
         (Array.init (Graph.n graph) (fun u -> u))
end

lib/unison/checker.ml: Array List Ssreset_graph String Unison

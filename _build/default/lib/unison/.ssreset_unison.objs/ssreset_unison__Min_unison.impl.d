lib/unison/min_unison.ml: Array Fmt List Random Ssreset_graph Ssreset_sim

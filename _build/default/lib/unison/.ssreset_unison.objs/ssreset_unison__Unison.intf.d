lib/unison/unison.mli: Ssreset_core Ssreset_graph Ssreset_sim

lib/unison/checker.mli: Ssreset_core Ssreset_graph

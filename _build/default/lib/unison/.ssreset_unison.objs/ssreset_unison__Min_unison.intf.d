lib/unison/min_unison.mli: Ssreset_graph Ssreset_sim

lib/unison/tail_unison.mli: Ssreset_graph Ssreset_sim

lib/unison/unison.ml: Array Fmt Random Ssreset_core Ssreset_graph Ssreset_sim

module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph

type clock = int

let rule_tick = "MU-tick"
let rule_zero = "MU-zero"

module Make (P : sig
  val k : int
end) =
struct
  let k = P.k
  let () = if k < 4 then invalid_arg "Min_unison.Make: need K >= 4"

  let ring_ok a b = b = a || b = (a + 1) mod k || b = (a + k - 1) mod k

  let tick =
    { Algorithm.rule_name = rule_tick;
      guard =
        (fun v ->
          let c = v.Algorithm.state in
          Array.for_all (fun b -> b = c || b = (c + 1) mod k) v.Algorithm.nbrs);
      action = (fun v -> (v.Algorithm.state + 1) mod k) }

  let zero =
    { Algorithm.rule_name = rule_zero;
      guard =
        (fun v ->
          let c = v.Algorithm.state in
          c <> 0
          && Array.exists (fun b -> not (ring_ok c b)) v.Algorithm.nbrs);
      action = (fun _ -> 0) }

  let algorithm : clock Algorithm.t =
    { Algorithm.name = "min-unison";
      rules = [ zero; tick ];
      equal = (fun (a : clock) b -> a = b);
      pp = Fmt.int }

  let gamma_init g = Array.make (Graph.n g) 0
  let clock_gen rng _u = Random.State.int rng k

  let is_legitimate g cfg =
    List.for_all (fun (u, v) -> ring_ok cfg.(u) cfg.(v)) (Graph.edges g)
end

module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph
module Sdr = Ssreset_core.Sdr

type clock = int

let rule_inc = "U-inc"

module Make (P : sig
  val k : int
end) =
struct
  let k = P.k
  let () = if k < 2 then invalid_arg "Unison.Make: need K >= 2"

  (* P_Ok(u,v) of Algorithm 2: v's clock is within one increment of u's. *)
  let p_ok cu cv = cv = cu || cv = (cu + 1) mod k || cv = (cu + k - 1) mod k

  (* P_Up(u) of Algorithm 2: every neighbor is at u's value or one ahead. *)
  let p_up (v : clock Algorithm.view) =
    let cu = v.Algorithm.state in
    Array.for_all (fun cv -> cv = cu || cv = (cu + 1) mod k) v.Algorithm.nbrs

  module Input = struct
    type state = clock

    let name = "unison"
    let equal (a : clock) b = a = b
    let pp = Fmt.int

    let p_icorrect (v : clock Algorithm.view) =
      Array.for_all (p_ok v.Algorithm.state) v.Algorithm.nbrs

    let p_reset c = c = 0
    let reset _ = 0

    let rules =
      [ { Algorithm.rule_name = rule_inc;
          guard = p_up;
          action = (fun v -> (v.Algorithm.state + 1) mod k) } ]
  end

  module Composed = Sdr.Make (Input)

  let bare : clock Algorithm.t =
    { Algorithm.name = "unison-bare";
      rules = Input.rules;
      equal = Input.equal;
      pp = Input.pp }

  let gamma_init g = Array.make (Graph.n g) 0
  let clock_gen rng _u = Random.State.int rng k
end

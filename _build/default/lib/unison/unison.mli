(** Algorithm U — asynchronous unison (Algorithm 2 of the paper).

    Each process holds a periodic clock [c ∈ {0..K-1}], [K > n].  A process
    increments (mod K) when every neighbor is at its value or one increment
    ahead.  U alone is a correct {e non}-self-stabilizing unison from the
    pre-defined initial configuration (Theorem 5); composed with SDR it is
    self-stabilizing with stabilization time ≤ 3n rounds (Theorem 7) and
    O(D·n²) moves (Theorem 6). *)

module Sdr = Ssreset_core.Sdr

type clock = int
(** Clock value in [0..K-1]. *)

val rule_inc : string
(** Name of U's increment rule, ["U-inc"]. *)

module Make (P : sig
  val k : int
  (** The period; must satisfy [K > n] for the network it is used on. *)
end) : sig
  val k : int

  module Input : Sdr.INPUT with type state = clock
  (** U as an SDR input algorithm: [P_ICorrect] = all neighbors within one
      increment; [P_reset] = clock is 0; the single rule {!rule_inc}. *)

  module Composed : Sdr.S with type inner = clock
  (** [U ∘ SDR] and its observers. *)

  val bare : clock Ssreset_sim.Algorithm.t
  (** U alone, for runs from the pre-defined initial configuration
      (Theorem 5 experiments).  Same single rule, no SDR gate. *)

  val gamma_init : Ssreset_graph.Graph.t -> clock array
  (** The pre-defined initial configuration: every clock at 0. *)

  val clock_gen : clock Ssreset_sim.Fault.generator
  (** Arbitrary clock in [0..K-1] (fault injection). *)
end

(** Baseline: self-stabilizing unison with reset tails, in the style of
    Boulinier, Petit & Villain (PODC 2004) — the comparator of §5.3.

    Clocks live in [{-α .. K-1}]: nonnegative values are the periodic ring,
    negative values form a linear {e tail} used as a distributed reset
    ramp.  A ring process that observes an incompatible neighbor resets to
    [-α]; tail processes climb back towards the ring in a convergecast
    fashion (a process climbs when it is a local minimum), and may enter the
    ring only when every ring neighbor sits at 0 or 1.

    The pseudo-code of the original paper is not part of the reproduced
    text, so this module is a documented reconstruction (see DESIGN.md):
    the test suite validates that it is a self-stabilizing unison
    (stabilization from thousands of arbitrary configurations, safety and
    liveness after stabilization), and the benchmarks compare its move
    complexity against [U ∘ SDR] — the paper's claim being that the
    SDR-based solution stabilizes in fewer moves (O(D·n²) versus
    O(D·n³ + α·n²)). *)

type clock = int
(** Value in [{-α .. K-1}]; negative = tail. *)

val rule_tick : string
(** ["TU-tick"]: the normal increment on the ring. *)

val rule_climb : string
(** ["TU-climb"]: climbing the tail towards the ring. *)

val rule_reset : string
(** ["TU-reset"]: joining the tail upon local inconsistency. *)

module Make (P : sig
  val k : int
  (** Ring period; use [K > n]. *)

  val alpha : int
  (** Tail length; use [α ≥ n]. *)
end) : sig
  val k : int
  val alpha : int

  val algorithm : clock Ssreset_sim.Algorithm.t

  val gamma_init : Ssreset_graph.Graph.t -> clock array
  (** All clocks at 0. *)

  val clock_gen : clock Ssreset_sim.Fault.generator
  (** Arbitrary clock in [{-α .. K-1}]. *)

  val is_legitimate : Ssreset_graph.Graph.t -> clock array -> bool
  (** Every clock on the ring and every neighbor pair within one increment
      (ring distance ≤ 1).  This set is closed and from it the behavior is
      exactly the unison specification. *)

  val compatible : clock -> clock -> bool
  (** The local compatibility relation used by the reset guard. *)
end

(** Baseline: self-stabilizing unison in the style of Couvreur, Francez &
    Gouda (ICDCS 1992) — reference [20] of the paper.

    A single clock per process with a large period K > n²: a process
    increments when every neighbor is at its value or one ahead (exactly
    rule U), and {e resets to 0} as soon as some neighbor is incompatible
    (more than one increment away, modulo K).  The paper notes (§5.2,
    following Boulinier's parametric analysis) that this solution works
    under the distributed unfair daemon with a stabilization time of
    O(D·n) rounds.  As with the tail baseline, the original pseudo-code is
    not part of the reproduced text; this reconstruction is validated by
    stabilization tests and serves as a second comparison point for E6. *)

type clock = int

val rule_tick : string
(** ["MU-tick"]. *)

val rule_zero : string
(** ["MU-zero"]: reset to 0 on local incompatibility. *)

module Make (P : sig
  val k : int
  (** Use [K > n²]. *)
end) : sig
  val k : int

  val algorithm : clock Ssreset_sim.Algorithm.t
  val gamma_init : Ssreset_graph.Graph.t -> clock array
  val clock_gen : clock Ssreset_sim.Fault.generator

  val is_legitimate : Ssreset_graph.Graph.t -> clock array -> bool
  (** Every neighbor pair within one increment (ring distance ≤ 1). *)
end

module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph

type clock = int

let rule_tick = "TU-tick"
let rule_climb = "TU-climb"
let rule_reset = "TU-reset"

module Make (P : sig
  val k : int
  val alpha : int
end) =
struct
  let k = P.k
  let alpha = P.alpha

  let () =
    if k < 4 then invalid_arg "Tail_unison.Make: need K >= 4";
    if alpha < 1 then invalid_arg "Tail_unison.Make: need alpha >= 1"

  let ring_ok a b = b = a || b = (a + 1) mod k || b = (a + k - 1) mod k

  (* Compatibility as seen by a ring process [a >= 0]:
     - ring neighbor: within one increment (mod K);
     - tail neighbor: tolerated only while [a <= 1], i.e. while the
       neighbor can still catch up without [a] having run ahead. *)
  let compatible a b =
    if a >= 0 && b >= 0 then ring_ok a b
    else if a >= 0 then a <= 1
    else if b >= 0 then b <= 1
    else true

  let tick =
    { Algorithm.rule_name = rule_tick;
      guard =
        (fun v ->
          let c = v.Algorithm.state in
          c >= 0
          && Array.for_all
               (fun b -> b = c || b = (c + 1) mod k)
               v.Algorithm.nbrs);
      action = (fun v -> (v.Algorithm.state + 1) mod k) }

  let climb =
    { Algorithm.rule_name = rule_climb;
      guard =
        (fun v ->
          let c = v.Algorithm.state in
          c < 0
          && Array.for_all (fun b -> b >= c) v.Algorithm.nbrs
          && (c < -1 || Array.for_all (fun b -> b <= 1) v.Algorithm.nbrs));
      action = (fun v -> v.Algorithm.state + 1) }

  let reset =
    { Algorithm.rule_name = rule_reset;
      guard =
        (fun v ->
          let c = v.Algorithm.state in
          c >= 0
          && Array.exists (fun b -> not (compatible c b)) v.Algorithm.nbrs);
      action = (fun _ -> -alpha) }

  let algorithm : clock Algorithm.t =
    { Algorithm.name = "tail-unison";
      rules = [ reset; climb; tick ];
      equal = (fun (a : clock) b -> a = b);
      pp = Fmt.int }

  let gamma_init g = Array.make (Graph.n g) 0
  let clock_gen rng _u = Random.State.int rng (k + alpha) - alpha

  let is_legitimate g cfg =
    Array.for_all (fun c -> c >= 0) cfg
    && List.for_all
         (fun (u, v) -> ring_ok cfg.(u) cfg.(v))
         (Graph.edges g)
end

module Graph = Ssreset_graph.Graph

let safety_ok ~k g cfg =
  List.for_all
    (fun (u, v) ->
      let a = cfg.(u) and b = cfg.(v) in
      b = a || b = (a + 1) mod k || b = (a + k - 1) mod k)
    (Graph.edges g)

type monitor = {
  k : int;
  graph : Graph.t;
  increments : int array;
  mutable violations : int;
}

let create_monitor ~k g =
  { k; graph = g; increments = Array.make (Graph.n g) 0; violations = 0 }

let count_increments m moved =
  List.iter
    (fun (u, name) ->
      if String.equal name Unison.rule_inc then
        m.increments.(u) <- m.increments.(u) + 1)
    moved

let observe_bare m ~step:_ ~moved cfg =
  count_increments m moved;
  if not (safety_ok ~k:m.k m.graph cfg) then m.violations <- m.violations + 1

let observe_composed m ~step:_ ~moved _cfg = count_increments m moved

let increments m = m.increments
let safety_violations m = m.violations
let min_increments m = Array.fold_left min max_int m.increments

(** Safety and liveness monitors for the unison specification (§5.1).

    - Safety: the clocks of any two neighbors differ by at most one
      increment at every instant.
    - Liveness: every process increments its clock infinitely often
      (checked on finite runs as "every process incremented at least a
      threshold number of times"). *)

val safety_ok : k:int -> Ssreset_graph.Graph.t -> int array -> bool
(** Do all neighbor pairs satisfy [P_Ok] (ring distance ≤ 1 mod K)? *)

type monitor

val create_monitor : k:int -> Ssreset_graph.Graph.t -> monitor

val observe_bare :
  monitor -> step:int -> moved:(int * string) list -> int array -> unit
(** Observer for runs of bare U (configurations are clock arrays). *)

val observe_composed :
  monitor ->
  step:int ->
  moved:(int * string) list ->
  'a Ssreset_core.Sdr.state array ->
  unit
(** Observer for runs of [U ∘ SDR]; counts only ["U-inc"] moves and ignores
    safety while SDR is still resetting (safety is only specified from
    legitimate configurations). *)

val increments : monitor -> int array
(** Per-process count of clock increments observed. *)

val safety_violations : monitor -> int
(** Number of steps after which some neighbor pair violated [P_Ok]
    (only counted by {!observe_bare}). *)

val min_increments : monitor -> int
(** The smallest per-process increment count — liveness proxy. *)

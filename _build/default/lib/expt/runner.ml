module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Graph = Ssreset_graph.Graph
module Sdr = Ssreset_core.Sdr

type obs = {
  outcome_ok : bool;
  result_ok : bool;
  rounds : int;
  moves : int;
  steps : int;
  sdr_moves : int;
  max_proc_moves : int;
  max_proc_sdr_moves : int;
  segments : int;
  ar_monotone : bool;
}

let max_int_array = Array.fold_left max 0

let is_sdr_rule name =
  String.length name >= 4 && String.equal (String.sub name 0 4) "SDR-"

(* Observers shared by all composed runs: per-process SDR move counts,
   segment counting, and the subset check of Remark 4 (alive-root sets only
   shrink). *)
let composed_observers (type s) (module C : Sdr.S with type inner = s) graph
    cfg0 =
  let per_proc_sdr = Array.make (Graph.n graph) 0 in
  let segments = C.Segments.create graph cfg0 in
  let last_roots = ref (C.alive_roots graph cfg0) in
  let monotone = ref true in
  let observer ~step ~moved cfg =
    List.iter
      (fun (u, name) ->
        if is_sdr_rule name then per_proc_sdr.(u) <- per_proc_sdr.(u) + 1)
      moved;
    C.Segments.observer segments ~step ~moved cfg;
    let roots = C.alive_roots graph cfg in
    if not (List.for_all (fun u -> List.mem u !last_roots) roots) then
      monotone := false;
    last_roots := roots
  in
  let finish (result : _ Engine.result) ~outcome_ok ~result_ok =
    { outcome_ok;
      result_ok;
      rounds = result.Engine.rounds;
      moves = result.Engine.moves;
      steps = result.Engine.steps;
      sdr_moves =
        Engine.moves_of_rules result.Engine.moves_per_rule ~prefixes:[ "SDR-" ];
      max_proc_moves = max_int_array result.Engine.moves_per_process;
      max_proc_sdr_moves = max_int_array per_proc_sdr;
      segments = C.Segments.count segments;
      ar_monotone = !monotone }
  in
  (observer, finish)

let bare_obs (result : _ Engine.result) ~outcome_ok ~result_ok =
  { outcome_ok;
    result_ok;
    rounds = result.Engine.rounds;
    moves = result.Engine.moves;
    steps = result.Engine.steps;
    sdr_moves = 0;
    max_proc_moves = max_int_array result.Engine.moves_per_process;
    max_proc_sdr_moves = 0;
    segments = 1;
    ar_monotone = true }

let rngs seed = (Random.State.make [| seed; 17 |], Random.State.make [| seed; 91 |])

let unison_composed ?(max_steps = 20_000_000) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module U = Ssreset_unison.Unison.Make (struct
    let k = (2 * n) + 2
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let observer, finish =
    composed_observers (module U.Composed) graph cfg
  in
  let result =
    Engine.run ~rng:run_rng ~max_steps ~observer
      ~stop:(U.Composed.is_normal graph)
      ~algorithm:U.Composed.algorithm ~graph ~daemon cfg
  in
  let stabilized = result.Engine.outcome = Engine.Stabilized in
  finish result ~outcome_ok:stabilized
    ~result_ok:(stabilized && U.Composed.is_normal graph result.Engine.final)

let unison_bare ~steps ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module U = Ssreset_unison.Unison.Make (struct
    let k = (2 * n) + 2
  end) in
  let _, run_rng = rngs seed in
  let monitor = Ssreset_unison.Checker.create_monitor ~k:U.k graph in
  let counter = ref 0 in
  let observer ~step ~moved cfg =
    incr counter;
    Ssreset_unison.Checker.observe_bare monitor ~step ~moved cfg
  in
  let result =
    Engine.run ~rng:run_rng ~max_steps:steps ~observer
      ~algorithm:U.bare ~graph ~daemon (U.gamma_init graph)
  in
  (* U never terminates from γ_init (Lemma 18), so exhausting the step
     budget is the expected outcome here. *)
  let outcome_ok = result.Engine.outcome = Engine.Step_limit in
  let result_ok =
    Ssreset_unison.Checker.safety_violations monitor = 0
    && Ssreset_unison.Checker.min_increments monitor > 0
  in
  bare_obs result ~outcome_ok ~result_ok

let tail_unison ?(max_steps = 50_000_000) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module T = Ssreset_unison.Tail_unison.Make (struct
    let k = (2 * n) + 2
    let alpha = n
  end) in
  let cfg_rng, run_rng = rngs seed in
  let cfg = Fault.arbitrary cfg_rng T.clock_gen graph in
  let result =
    Engine.run ~rng:run_rng ~max_steps
      ~stop:(T.is_legitimate graph)
      ~algorithm:T.algorithm ~graph ~daemon cfg
  in
  let stabilized = result.Engine.outcome = Engine.Stabilized in
  bare_obs result ~outcome_ok:stabilized
    ~result_ok:(stabilized && T.is_legitimate graph result.Engine.final)

let unison_agr ?(max_steps = 2_000_000) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module U = Ssreset_unison.Unison.Make (struct
    let k = (2 * n) + 2
  end) in
  let module A =
    Ssreset_agreset.Agreset.Make
      (U.Input)
      (struct
        let graph = graph
        let root = 0
      end)
  in
  let cfg_rng, run_rng = rngs seed in
  let gen = A.generator ~inner:U.clock_gen in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let result =
    Engine.run ~rng:run_rng ~max_steps
      ~stop:(A.is_normal graph)
      ~algorithm:A.algorithm ~graph ~daemon cfg
  in
  let stabilized = result.Engine.outcome = Engine.Stabilized in
  bare_obs result ~outcome_ok:stabilized
    ~result_ok:(stabilized && A.is_normal graph result.Engine.final)

let min_unison ?(max_steps = 50_000_000) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module M = Ssreset_unison.Min_unison.Make (struct
    let k = (n * n) + 1
  end) in
  let cfg_rng, run_rng = rngs seed in
  let cfg = Fault.arbitrary cfg_rng M.clock_gen graph in
  let result =
    Engine.run ~rng:run_rng ~max_steps
      ~stop:(M.is_legitimate graph)
      ~algorithm:M.algorithm ~graph ~daemon cfg
  in
  let stabilized = result.Engine.outcome = Engine.Stabilized in
  bare_obs result ~outcome_ok:stabilized
    ~result_ok:(stabilized && M.is_legitimate graph result.Engine.final)

let lemma25_bound graph u =
  let deg = Graph.degree graph u in
  let delta = Graph.max_degree graph in
  (8 * deg * delta) + (18 * deg) + 24

let fga_bare ?(max_steps = 20_000_000) ~spec ~graph ~daemon ~seed () =
  let module F = Ssreset_alliance.Fga.Make (struct
    let graph = graph
    let spec = spec
    let ids = None
  end) in
  let _, run_rng = rngs seed in
  let result =
    Engine.run ~rng:run_rng ~max_steps ~algorithm:F.bare ~graph ~daemon
      (F.gamma_init ())
  in
  let terminal = result.Engine.outcome = Engine.Terminal in
  let moves_ok =
    Array.for_all
      (fun u -> result.Engine.moves_per_process.(u) <= lemma25_bound graph u)
      (Array.init (Graph.n graph) (fun u -> u))
  in
  bare_obs result ~outcome_ok:terminal
    ~result_ok:
      (terminal && moves_ok
      && Ssreset_alliance.Checker.is_one_minimal graph spec
           (F.alliance result.Engine.final))

let fga_composed ?(max_steps = 50_000_000) ?(stop_at_normal = false) ~spec
    ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module F = Ssreset_alliance.Fga.Make (struct
    let graph = graph
    let spec = spec
    let ids = None
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = F.Composed.generator ~inner:F.gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let observer, finish = composed_observers (module F.Composed) graph cfg in
  let stop =
    if stop_at_normal then F.Composed.is_normal graph else fun _ -> false
  in
  let result =
    Engine.run ~rng:run_rng ~max_steps ~observer ~stop
      ~algorithm:F.Composed.algorithm ~graph ~daemon cfg
  in
  if stop_at_normal then
    let stabilized = result.Engine.outcome = Engine.Stabilized in
    finish result ~outcome_ok:stabilized
      ~result_ok:(stabilized && F.Composed.is_normal graph result.Engine.final)
  else
    let terminal = result.Engine.outcome = Engine.Terminal in
    finish result ~outcome_ok:terminal
      ~result_ok:
        (terminal
        && Ssreset_alliance.Checker.is_one_minimal graph spec
             (F.alliance_of_composed result.Engine.final))

let coloring_composed ?(max_steps = 20_000_000) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module C = Ssreset_coloring.Coloring.Make (struct
    let graph = graph
    let ids = None
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = C.Composed.generator ~inner:C.gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let observer, finish = composed_observers (module C.Composed) graph cfg in
  let result =
    Engine.run ~rng:run_rng ~max_steps ~observer
      ~algorithm:C.Composed.algorithm ~graph ~daemon cfg
  in
  let terminal = result.Engine.outcome = Engine.Terminal in
  finish result ~outcome_ok:terminal
    ~result_ok:
      (terminal
      && C.is_proper (C.coloring_of_composed result.Engine.final))

let mis_composed ?(max_steps = 20_000_000) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module M = Ssreset_mis.Mis.Make (struct
    let graph = graph
    let ids = None
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = M.Composed.generator ~inner:M.gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let observer, finish = composed_observers (module M.Composed) graph cfg in
  let result =
    Engine.run ~rng:run_rng ~max_steps ~observer
      ~algorithm:M.Composed.algorithm ~graph ~daemon cfg
  in
  let terminal = result.Engine.outcome = Engine.Terminal in
  finish result ~outcome_ok:terminal
    ~result_ok:
      (terminal
      && M.is_mis (M.independent_set_of_composed result.Engine.final))

let matching_composed ?(max_steps = 20_000_000) ~graph ~daemon ~seed () =
  let n = Graph.n graph in
  let module M = Ssreset_matching.Matching.Make (struct
    let graph = graph
    let ids = None
  end) in
  let cfg_rng, run_rng = rngs seed in
  let gen = M.Composed.generator ~inner:M.gen ~max_d:(2 * n) in
  let cfg = Fault.arbitrary cfg_rng gen graph in
  let observer, finish = composed_observers (module M.Composed) graph cfg in
  let result =
    Engine.run ~rng:run_rng ~max_steps ~observer
      ~algorithm:M.Composed.algorithm ~graph ~daemon cfg
  in
  let terminal = result.Engine.outcome = Engine.Terminal in
  finish result ~outcome_ok:terminal
    ~result_ok:
      (terminal
      && M.is_maximal_matching (M.matching_of_composed result.Engine.final))

let daemon_by_name = function
  | "synchronous" -> Daemon.synchronous
  | "central-random" -> Daemon.central_random
  | "central-first" -> Daemon.central_first
  | "central-last" -> Daemon.central_last
  | "round-robin" -> Daemon.round_robin ()
  | "distributed-random" -> Daemon.distributed_random 0.5
  | "locally-central" -> Daemon.locally_central_random
  | "adversarial" ->
      Daemon.adversarial_rule
        ~prefer:[ "U-inc"; "FGA-Clr"; "FGA-P1"; "FGA-P2"; "FGA-Q" ]
  | "starve" -> Daemon.starve 0
  | name -> invalid_arg ("unknown daemon: " ^ name)

let experiment_daemons () =
  [ Daemon.synchronous;
    Daemon.central_random;
    Daemon.distributed_random 0.3;
    Daemon.distributed_random 0.8;
    Daemon.locally_central_random;
    Daemon.round_robin ();
    Daemon.adversarial_rule
      ~prefer:[ "U-inc"; "FGA-Clr"; "FGA-P1"; "FGA-P2"; "FGA-Q" ] ]

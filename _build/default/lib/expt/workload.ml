module Gen = Ssreset_graph.Gen
module Graph = Ssreset_graph.Graph

type family = {
  family_name : string;
  build : seed:int -> n:int -> Graph.t;
}

let deterministic name f = { family_name = name; build = (fun ~seed:_ ~n -> f n) }

let ring = deterministic "ring" Gen.ring
let path = deterministic "path" Gen.path
let star = deterministic "star" Gen.star
let complete = deterministic "complete" Gen.complete

let grid =
  deterministic "grid" (fun n ->
      let w = max 2 (int_of_float (sqrt (float_of_int n))) in
      let h = max 2 ((n + w - 1) / w) in
      Gen.grid w h)

let binary_tree = deterministic "binary-tree" Gen.binary_tree

let random_tree =
  { family_name = "random-tree";
    build = (fun ~seed ~n -> Gen.random_tree (Random.State.make [| seed |]) n) }

let erdos_renyi p =
  { family_name = Printf.sprintf "er(p=%.2f)" p;
    build =
      (fun ~seed ~n -> Gen.erdos_renyi (Random.State.make [| seed |]) n p) }

let sparse_random =
  { family_name = "sparse-random";
    build =
      (fun ~seed ~n ->
        let m = min (2 * n) (n * (n - 1) / 2) in
        Gen.random_connected (Random.State.make [| seed |]) n m) }

let lollipop =
  deterministic "lollipop" (fun n ->
      let k = max 3 (n / 2) in
      Gen.lollipop k (max 1 (n - k)))

let standard =
  [ ring; path; star; complete; grid; binary_tree; sparse_random; lollipop ]

let small_connected_graphs ~max_n =
  if max_n > 6 then invalid_arg "small_connected_graphs: max_n too large";
  let graphs = ref [] in
  for n = 2 to max_n do
    let pairs = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        pairs := (u, v) :: !pairs
      done
    done;
    let pairs = Array.of_list (List.rev !pairs) in
    let total = Array.length pairs in
    for mask = 0 to (1 lsl total) - 1 do
      let edges = ref [] in
      Array.iteri
        (fun i e -> if mask land (1 lsl i) <> 0 then edges := e :: !edges)
        pairs;
      if List.length !edges >= n - 1 then begin
        let g = Graph.make ~n ~edges:!edges in
        if Graph.is_connected g then graphs := g :: !graphs
      end
    done
  done;
  List.rev !graphs

lib/expt/runner.ml: Array List Random Ssreset_agreset Ssreset_alliance Ssreset_coloring Ssreset_core Ssreset_graph Ssreset_matching Ssreset_mis Ssreset_sim Ssreset_unison String

lib/expt/runner.mli: Ssreset_alliance Ssreset_graph Ssreset_sim

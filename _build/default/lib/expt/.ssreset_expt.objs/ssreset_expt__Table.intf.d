lib/expt/table.mli:

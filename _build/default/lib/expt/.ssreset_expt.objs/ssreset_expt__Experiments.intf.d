lib/expt/experiments.mli: Table

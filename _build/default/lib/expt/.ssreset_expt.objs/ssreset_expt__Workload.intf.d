lib/expt/workload.mli: Ssreset_graph

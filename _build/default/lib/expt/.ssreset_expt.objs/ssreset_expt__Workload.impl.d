lib/expt/workload.ml: Array List Printf Random Ssreset_graph

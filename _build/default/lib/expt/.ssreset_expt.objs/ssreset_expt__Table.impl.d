lib/expt/table.ml: Array Buffer List Printf String

lib/expt/experiments.ml: Array List Printf Random Runner Ssreset_alliance Ssreset_graph Ssreset_mis Ssreset_sim Ssreset_unison Table Workload

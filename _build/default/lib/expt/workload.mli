(** Workload generation: parameterized graph families for the sweeps. *)

type family = {
  family_name : string;
  build : seed:int -> n:int -> Ssreset_graph.Graph.t;
      (** builds a connected graph with ≈ [n] processes (exact for most
          families; grids round to the nearest full rectangle) *)
}

val ring : family
val path : family
val star : family
val complete : family
val grid : family
(** Near-square grid. *)

val binary_tree : family
val random_tree : family
val erdos_renyi : float -> family
(** Fixed edge probability. *)

val sparse_random : family
(** Connected random graph with m = 2n edges. *)

val lollipop : family
(** Clique of n/2 plus a path of n/2: high Δ and high D at once. *)

val standard : family list
(** The families used by the default sweeps: ring, path, star, complete,
    grid, binary tree, sparse random, lollipop. *)

val small_connected_graphs : max_n:int -> Ssreset_graph.Graph.t list
(** Every connected simple graph on 2..max_n vertices, one representative
    per edge-set (not deduplicated by isomorphism).  Exponential in n(n-1)/2
    — intended for [max_n ≤ 5]; used by the brute-force experiments. *)

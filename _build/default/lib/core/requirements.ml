module Algorithm = Ssreset_sim.Algorithm
module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Fault = Ssreset_sim.Fault
module Graph = Ssreset_graph.Graph

type violation = {
  requirement : string;
  detail : string;
}

let pp_violation ppf v = Fmt.pf ppf "requirement %s: %s" v.requirement v.detail

let check (type s) (module I : Sdr.INPUT with type state = s)
    ~(gen : s Fault.generator) ~graphs ~seed ~trials =
  let violations = ref [] in
  let report requirement fmt =
    Format.kasprintf
      (fun detail -> violations := { requirement; detail } :: !violations)
      fmt
  in
  let bare : s Algorithm.t =
    { Algorithm.name = I.name; rules = I.rules; equal = I.equal; pp = I.pp }
  in
  let rng = Random.State.make [| seed |] in
  List.iter
    (fun g ->
      for trial = 1 to trials do
        let cfg = Fault.arbitrary rng gen g in
        (* 2e: reset always reaches a p_reset state. *)
        Array.iteri
          (fun u s ->
            if not (I.p_reset (I.reset s)) then
              report "2e" "trial %d: reset of process %d state %a misses P_reset"
                trial u I.pp s)
          cfg;
        (* 2d: all-reset closed neighborhoods are locally correct. *)
        let reset_cfg = Array.map I.reset cfg in
        Array.iteri
          (fun u _ ->
            let v = Algorithm.view g reset_cfg u in
            if not (I.p_icorrect v) then
              report "2d" "trial %d: all-reset neighborhood of %d not P_ICorrect"
                trial u)
          reset_cfg;
        (* 2c: input rules are disabled on locally incorrect views. *)
        Array.iteri
          (fun u _ ->
            let v = Algorithm.view g cfg u in
            if not (I.p_icorrect v) then
              List.iter
                (fun (r : s Algorithm.rule) ->
                  if r.Algorithm.guard v then
                    report "2c"
                      "trial %d: rule %s enabled at %d while not P_ICorrect"
                      trial r.Algorithm.rule_name u)
                I.rules)
          cfg;
        (* 2a: p_icorrect is closed by steps of the bare input algorithm.
           Walk a short random execution and check every step. *)
        let correct_before = Array.make (Graph.n g) false in
        let record_correct cfg =
          Array.iteri
            (fun u _ ->
              correct_before.(u) <- I.p_icorrect (Algorithm.view g cfg u))
            cfg
        in
        record_correct cfg;
        let current = ref cfg in
        (try
           for step_index = 0 to 20 do
             match
               Engine.step ~rng ~algorithm:bare ~graph:g
                 ~daemon:(Daemon.distributed_random 0.5) ~step_index !current
             with
             | None -> raise Exit
             | Some (next, _) ->
                 Array.iteri
                   (fun u _ ->
                     if
                       correct_before.(u)
                       && not (I.p_icorrect (Algorithm.view g next u))
                     then
                       report "2a"
                         "trial %d: P_ICorrect(%d) not closed at step %d" trial
                         u step_index)
                   next;
                 record_correct next;
                 current := next
           done
         with Exit -> ())
      done)
    graphs;
  List.rev !violations

lib/core/requirements.mli: Fmt Sdr Ssreset_graph Ssreset_sim

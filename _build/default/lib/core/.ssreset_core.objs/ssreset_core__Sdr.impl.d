lib/core/sdr.ml: Array Fmt List Random Ssreset_graph Ssreset_sim

lib/core/sdr.mli: Fmt Ssreset_graph Ssreset_sim

lib/core/requirements.ml: Array Fmt Format List Random Sdr Ssreset_graph Ssreset_sim

lib/agreset/agreset.mli: Ssreset_core Ssreset_graph Ssreset_sim

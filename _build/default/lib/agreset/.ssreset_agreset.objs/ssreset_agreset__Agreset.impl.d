lib/agreset/agreset.ml: Array Fmt List Random Seq Ssreset_core Ssreset_graph Ssreset_sim

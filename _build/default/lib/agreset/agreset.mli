(** AGR — a mono-initiator reset baseline in the style of Arora & Gouda
    ("Distributed reset", IEEE ToC 1994), for comparison with SDR.

    The paper positions SDR against {e centralized / mono-initiator} resets
    (§1, related work): there, a single initiator (here: a distinguished
    root in an identified network) restarts the application with a global
    wave running over a self-stabilizing spanning tree.  This module
    implements that architecture as a transformer over the same
    {!Ssreset_core.Sdr.INPUT} interface SDR uses, so the two reset designs
    can be compared on identical applications, networks and schedules
    (experiment E15):

    - {b tree layer}: BFS distances towards the root with explicit parent
      pointers, self-stabilizing by relaxation (rule ["AGR-tree"]);
    - {b request layer}: a process detecting [¬P_ICorrect] raises a request
      bit that convergecasts to the root along the tree;
    - {b wave layer}: the root answers with a broadcast (status [B]) that
      resets the input algorithm top-down, acknowledged bottom-up
      (status [F]), then popped back to normal ([N]) top-down.  Garbled
      wave states left by faults collapse against the parent's state.

    Architectural contrast with SDR: resets here are always {e global}
    (the wave covers the whole tree) and must travel to the root first,
    whereas SDR starts repairs at every detector and coordinates them.
    The Arora–Gouda original differs in details (it elects the root, works
    in read/write atomicity and uses diffusing-computation session numbers);
    this reconstruction keeps the mono-initiator tree-wave architecture,
    which is the property under comparison, and is validated by the same
    stabilization tests as the other systems.

    {b Daemon requirement.}  Like the original (which the paper cites as
    "assuming a distributed weakly fair daemon", §1.2), this architecture
    needs {e weak fairness}: the root can stay enabled across whole
    start/feedback cycles while its waves run over a not-yet-repaired tree,
    so an unfair scheduler (e.g. {!Ssreset_sim.Daemon.central_first}) can
    serve the root and its first child forever and starve the tree repair —
    a genuine livelock, reproduced as a test and as part of experiment E15.
    This is precisely the weakness SDR eliminates: all of the paper's
    bounds hold under the unfair daemon.  Use AGR under the fair(-ish)
    daemons: synchronous, round-robin, central-random, distributed-random,
    locally-central. *)

module Sdr = Ssreset_core.Sdr

type wave = N  (** normal *)
          | B  (** broadcast: resetting, waiting for the subtree *)
          | F  (** feedback: subtree done, waiting for the root to pop *)

type 'inner state = {
  id : int;  (** constant *)
  dist : int;  (** BFS layer towards the root, capped at n *)
  parent : int option;  (** id of the chosen parent (None at the root) *)
  wst : wave;
  req : bool;  (** a reset request is pending in this subtree *)
  inner : 'inner;
}

module Make
    (I : Sdr.INPUT) (P : sig
      val graph : Ssreset_graph.Graph.t
      val root : int
      (** index of the initiator process *)
    end) : sig
  type nonrec state = I.state state

  val algorithm : state Ssreset_sim.Algorithm.t

  val lift : I.state array -> state array
  (** Wrap with the correct tree and a quiescent wave layer. *)

  val inner_config : state array -> I.state array

  val generator :
    inner:I.state Ssreset_sim.Fault.generator ->
    state Ssreset_sim.Fault.generator
  (** Arbitrary state: random dist/parent/wave/request, inner from the
      input generator; [id] preserved. *)

  val is_normal : Ssreset_graph.Graph.t -> state array -> bool
  (** Tree correct, wave layer quiescent ([N], no request) and the input
      algorithm locally correct everywhere — the analogue of SDR's normal
      configurations. *)

  val tree_ok : state Ssreset_sim.Algorithm.view -> bool
end

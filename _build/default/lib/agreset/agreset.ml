module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph
module Metrics = Ssreset_graph.Metrics
module Sdr = Ssreset_core.Sdr

type wave = N | B | F

type 'inner state = {
  id : int;
  dist : int;
  parent : int option;
  wst : wave;
  req : bool;
  inner : 'inner;
}

module Make
    (I : Sdr.INPUT) (P : sig
      val graph : Graph.t
      val root : int
    end) =
struct
  type nonrec state = I.state state

  let graph = P.graph
  let n = Graph.n graph
  let root_id = P.root

  let () =
    if P.root < 0 || P.root >= n then invalid_arg "Agreset.Make: bad root"

  (* ----------------------------- tree layer ---------------------------- *)

  (* Best (dist, parent) from the current neighborhood: 1 + the minimum
     neighbor distance (capped at n, in which case the parent is dropped),
     ties broken towards the smallest parent id. *)
  let best_tree (v : state Algorithm.view) =
    let self = v.Algorithm.state in
    if self.id = root_id then (0, None)
    else begin
      let min_dist =
        Array.fold_left (fun acc s -> min acc s.dist) (n - 1) v.Algorithm.nbrs
      in
      let dist = min (min_dist + 1) n in
      let parent =
        if dist >= n then None
        else
          Array.fold_left
            (fun acc s ->
              if s.dist = dist - 1 then
                match acc with
                | Some b when b <= s.id -> acc
                | _ -> Some s.id
              else acc)
            None v.Algorithm.nbrs
      in
      (dist, parent)
    end

  let tree_ok (v : state Algorithm.view) =
    let self = v.Algorithm.state in
    best_tree v = (self.dist, self.parent)

  let parent_state (v : state Algorithm.view) =
    match v.Algorithm.state.parent with
    | None -> None
    | Some pid -> Array.find_opt (fun s -> s.id = pid) v.Algorithm.nbrs

  let children (v : state Algorithm.view) =
    let self = v.Algorithm.state in
    Array.to_list
      (Array.of_seq
         (Seq.filter
            (fun s -> s.parent = Some self.id)
            (Array.to_seq v.Algorithm.nbrs)))

  let inner_view (v : state Algorithm.view) : I.state Algorithm.view =
    { Algorithm.state = v.Algorithm.state.inner;
      nbrs = Array.map (fun s -> s.inner) v.Algorithm.nbrs }

  let app_ok v = I.p_icorrect (inner_view v)
  let is_root (v : state Algorithm.view) = v.Algorithm.state.id = root_id

  (* ------------------------------- rules ------------------------------- *)

  let rule_tree =
    { Algorithm.rule_name = "AGR-tree";
      guard = (fun v -> not (tree_ok v));
      action =
        (fun v ->
          let dist, parent = best_tree v in
          { v.Algorithm.state with dist; parent }) }

  (* Garbled wave states (left by faults or by tree re-parenting) collapse
     against the parent: a broadcast without a broadcasting parent aborts,
     a feedback without a parent pops. *)
  let rule_abort =
    { Algorithm.rule_name = "AGR-abort";
      guard =
        (fun v ->
          tree_ok v
          && (not (is_root v))
          && v.Algorithm.state.wst = B
          &&
          match parent_state v with
          | None -> true
          | Some p -> p.wst = N);
      action = (fun v -> { v.Algorithm.state with wst = N }) }

  let rule_root_f =
    { Algorithm.rule_name = "AGR-root-F";
      guard = (fun v -> tree_ok v && is_root v && v.Algorithm.state.wst = F);
      action = (fun v -> { v.Algorithm.state with wst = N }) }

  let rule_pop =
    { Algorithm.rule_name = "AGR-pop";
      guard =
        (fun v ->
          tree_ok v
          && (not (is_root v))
          && v.Algorithm.state.wst = F
          &&
          match parent_state v with
          | None -> true
          | Some p -> p.wst = N);
      action = (fun v -> { v.Algorithm.state with wst = N }) }

  (* Feedback also clears the request bit: the subtree has just been reset,
     so every request it carried is served.  Clearing anywhere else races
     with the next broadcast (requests clear bottom-up while quiet windows
     open top-down) and livelocks the root into restarting forever. *)
  let rule_feedback =
    { Algorithm.rule_name = "AGR-feedback";
      guard =
        (fun v ->
          tree_ok v
          && v.Algorithm.state.wst = B
          && List.for_all (fun c -> c.wst = F) (children v)
          &&
          if is_root v then
            (* The root must wait for an actual subtree: with zero children
               (a still-broken tree) its wave would complete trivially and
               restart forever — an unfair daemon could then starve the tree
               repair (livelock observed under the central-first daemon). *)
            children v <> [] || n = 1
          else match parent_state v with Some p -> p.wst = B | None -> false);
      action =
        (fun v ->
          { v.Algorithm.state with
            wst = (if is_root v then N else F);
            req = false }) }

  (* The root may only open a wave once its children are quiet again ([N]);
     a child still in a stale [F] would count as instantly acknowledged and
     the root would spin start/feedback forever while an unfair daemon
     starves everyone else. *)
  let rule_start =
    { Algorithm.rule_name = "AGR-start";
      guard =
        (fun v ->
          tree_ok v && is_root v
          && v.Algorithm.state.wst = N
          && List.for_all (fun c -> c.wst = N) (children v)
          && (v.Algorithm.state.req || not (app_ok v)));
      action =
        (fun v ->
          { v.Algorithm.state with
            wst = B;
            inner = I.reset v.Algorithm.state.inner }) }

  let rule_join =
    { Algorithm.rule_name = "AGR-join";
      guard =
        (fun v ->
          tree_ok v
          && (not (is_root v))
          && v.Algorithm.state.wst = N
          && (match parent_state v with Some p -> p.wst = B | None -> false));
      action =
        (fun v ->
          { v.Algorithm.state with
            wst = B;
            inner = I.reset v.Algorithm.state.inner }) }

  let rule_req_raise =
    { Algorithm.rule_name = "AGR-req";
      guard =
        (fun v ->
          tree_ok v
          && (not v.Algorithm.state.req)
          && ((not (app_ok v)) || List.exists (fun c -> c.req) (children v)));
      action = (fun v -> { v.Algorithm.state with req = true }) }

  (* The input algorithm runs only in calm neighborhoods, mirroring SDR's
     P_Clean gate. *)
  let calm (v : state Algorithm.view) =
    let quiet (s : state) = s.wst = N && not s.req in
    quiet v.Algorithm.state && Array.for_all quiet v.Algorithm.nbrs

  let lift_rule (r : I.state Algorithm.rule) : state Algorithm.rule =
    { Algorithm.rule_name = r.Algorithm.rule_name;
      guard = (fun v -> tree_ok v && calm v && r.Algorithm.guard (inner_view v));
      action =
        (fun v ->
          { v.Algorithm.state with
            inner = r.Algorithm.action (inner_view v) }) }

  let equal_state a b =
    a.id = b.id && a.dist = b.dist && a.parent = b.parent && a.wst = b.wst
    && a.req = b.req && I.equal a.inner b.inner

  let pp_state ppf s =
    Fmt.pf ppf "{%d:d%d%s%s/%a}" s.id s.dist
      (match s.wst with N -> "" | B -> ":B" | F -> ":F")
      (if s.req then "!" else "")
      I.pp s.inner

  let algorithm : state Algorithm.t =
    { Algorithm.name = I.name ^ "∘AGR";
      rules =
        [ rule_tree; rule_abort; rule_root_f; rule_pop; rule_feedback;
          rule_start; rule_join; rule_req_raise ]
        @ List.map lift_rule I.rules;
      equal = equal_state;
      pp = pp_state }

  (* --------------------------- configurations -------------------------- *)

  let bfs = Metrics.bfs_distances graph P.root

  let correct_tree u =
    if u = P.root then (0, None)
    else begin
      let d = bfs.(u) in
      let parent =
        Graph.fold_neighbors graph u ~init:None ~f:(fun acc w ->
            if bfs.(w) = d - 1 then
              match acc with Some b when b <= w -> acc | _ -> Some w
            else acc)
      in
      (d, parent)
    end

  let lift inner_cfg =
    Array.mapi
      (fun u inner ->
        let dist, parent = correct_tree u in
        { id = u; dist; parent; wst = N; req = false; inner })
      inner_cfg

  let inner_config cfg = Array.map (fun s -> s.inner) cfg

  let generator ~inner rng u =
    let parent =
      let nbrs = Graph.neighbors graph u in
      match Random.State.int rng (Array.length nbrs + 1) with
      | 0 -> None
      | i -> Some nbrs.(i - 1)
    in
    { id = u;
      dist = Random.State.int rng (n + 1);
      parent;
      wst = (match Random.State.int rng 3 with 0 -> N | 1 -> B | _ -> F);
      req = Random.State.bool rng;
      inner = inner rng u }

  let is_normal g cfg =
    Algorithm.for_all_views g cfg ~f:(fun _ v ->
        tree_ok v
        && v.Algorithm.state.wst = N
        && (not v.Algorithm.state.req)
        && app_ok v)
end

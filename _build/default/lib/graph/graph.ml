type t = {
  size : int;
  adj : int array array;
  edge_count : int;
}

exception Invalid_graph of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_graph s)) fmt

let make ~n ~edges =
  if n <= 0 then invalid "graph must have at least one process, got n=%d" n;
  let seen = Hashtbl.create (2 * List.length edges) in
  let buckets = Array.make n [] in
  let add_edge (u, v) =
    if u = v then invalid "self-loop on process %d" u;
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid "edge (%d,%d) out of range [0,%d)" u v n;
    let key = (min u v, max u v) in
    if Hashtbl.mem seen key then invalid "duplicate edge (%d,%d)" u v;
    Hashtbl.add seen key ();
    buckets.(u) <- v :: buckets.(u);
    buckets.(v) <- u :: buckets.(v)
  in
  List.iter add_edge edges;
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort compare a;
        a)
      buckets
  in
  { size = n; adj; edge_count = Hashtbl.length seen }

let n g = g.size
let m g = g.edge_count
let neighbors g u = g.adj.(u)
let degree g u = Array.length g.adj.(u)

let max_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let min_degree g =
  Array.fold_left (fun acc a -> min acc (Array.length a)) max_int g.adj

let has_edge g u v =
  (* Binary search in the sorted adjacency array of [u]. *)
  let a = g.adj.(u) in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length a)

let edges g =
  let acc = ref [] in
  for u = g.size - 1 downto 0 do
    let a = g.adj.(u) in
    for i = Array.length a - 1 downto 0 do
      if u < a.(i) then acc := (u, a.(i)) :: !acc
    done
  done;
  !acc

let label_of g u v =
  let a = g.adj.(u) in
  let rec search lo hi =
    if lo >= hi then raise Not_found
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then mid
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length a)

let fold_neighbors g u ~init ~f = Array.fold_left f init g.adj.(u)
let exists_neighbor g u ~f = Array.exists f g.adj.(u)
let for_all_neighbors g u ~f = Array.for_all f g.adj.(u)

let is_connected g =
  let visited = Array.make g.size false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  visited.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if not visited.(v) then begin
          visited.(v) <- true;
          incr count;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  !count = g.size

let pp ppf g =
  Fmt.pf ppf "graph(n=%d, m=%d)" g.size g.edge_count;
  Array.iteri
    (fun u a ->
      Fmt.pf ppf "@.  %d: %a" u Fmt.(array ~sep:(any " ") int) a)
    g.adj

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph G {\n";
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

lib/graph/graph.ml: Array Buffer Fmt Format Hashtbl List Printf Queue

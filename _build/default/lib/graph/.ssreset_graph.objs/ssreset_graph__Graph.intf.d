lib/graph/graph.mli: Fmt

lib/graph/gen.ml: Array Format Graph Hashtbl List Random

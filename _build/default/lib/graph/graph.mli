(** Simple undirected graphs used as communication networks.

    Processes are numbered [0 .. n-1].  A graph is immutable once built.
    Neighbor arrays are sorted in increasing order; the index of a neighbor
    inside [neighbors g u] is the {e local label} of that neighbor at [u]
    (the "indirect naming" of the computational model, §2.2 of the paper). *)

type t
(** A simple undirected graph. *)

exception Invalid_graph of string
(** Raised by {!make} on self-loops, duplicate edges or out-of-range
    endpoints. *)

val make : n:int -> edges:(int * int) list -> t
(** [make ~n ~edges] builds the graph with vertex set [0..n-1] and the given
    undirected edge list.  Edges may be given in either orientation.
    @raise Invalid_graph on self-loops, duplicates or endpoints outside
    [0..n-1]. *)

val n : t -> int
(** Number of processes. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** [neighbors g u] is the sorted array of [u]'s neighbors.  The returned
    array is owned by the graph and must not be mutated. *)

val degree : t -> int -> int
(** [degree g u] is the number of neighbors of [u]. *)

val max_degree : t -> int
(** Δ, the maximum degree. *)

val min_degree : t -> int
(** The minimum degree. *)

val has_edge : t -> int -> int -> bool
(** [has_edge g u v] tests adjacency in O(log δ). *)

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], sorted. *)

val label_of : t -> int -> int -> int
(** [label_of g u v] is the local label (index in [neighbors g u]) of
    neighbor [v] at [u].
    @raise Not_found if [v] is not a neighbor of [u]. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over the neighbors of a process. *)

val exists_neighbor : t -> int -> f:(int -> bool) -> bool
(** Does some neighbor satisfy [f]? *)

val for_all_neighbors : t -> int -> f:(int -> bool) -> bool
(** Do all neighbors satisfy [f]? *)

val is_connected : t -> bool
(** Is the graph connected?  (The model assumes connected networks; graph
    generators guarantee it, but arbitrary [make] inputs may not.) *)

val pp : t Fmt.t
(** Prints ["graph(n=…, m=…)"] followed by the adjacency lists. *)

val to_dot : t -> string
(** Graphviz rendering, for debugging and examples. *)

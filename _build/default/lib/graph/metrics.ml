let bfs_distances g src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let eccentricity g u =
  Array.fold_left max 0 (bfs_distances g u)

let diameter g =
  let best = ref 0 in
  for u = 0 to Graph.n g - 1 do
    best := max !best (eccentricity g u)
  done;
  !best

let radius g =
  let best = ref max_int in
  for u = 0 to Graph.n g - 1 do
    best := min !best (eccentricity g u)
  done;
  !best

let average_degree g = 2.0 *. float_of_int (Graph.m g) /. float_of_int (Graph.n g)
let cyclomatic_number g = Graph.m g - Graph.n g + 1

(* Shortest cycle through [src]: BFS recording parents; a non-tree edge
   (u,v) with u,v both reached closes a cycle of length
   dist(u)+dist(v)+1 — taking the minimum over all BFS roots gives the
   girth for unweighted graphs. *)
let shortest_cycle_through g src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  let best = ref max_int in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end
        else if parent.(u) <> v && parent.(v) <> u then
          (* Cross or back edge: closes a cycle through the BFS tree. *)
          best := min !best (dist.(u) + dist.(v) + 1))
      (Graph.neighbors g u)
  done;
  !best

let girth g =
  if Graph.m g < Graph.n g then
    if Graph.is_connected g then None
    else begin
      (* Disconnected with few edges can still contain a cycle; fall through
         to the generic scan below. *)
      let best = ref max_int in
      for u = 0 to Graph.n g - 1 do
        best := min !best (shortest_cycle_through g u)
      done;
      if !best = max_int then None else Some !best
    end
  else begin
    let best = ref max_int in
    for u = 0 to Graph.n g - 1 do
      best := min !best (shortest_cycle_through g u)
    done;
    if !best = max_int then None else Some !best
  end

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for u = 0 to Graph.n g - 1 do
    let d = Graph.degree g u in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort compare

let is_tree g = Graph.is_connected g && Graph.m g = Graph.n g - 1

let is_bipartite g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  for src = 0 to n - 1 do
    if color.(src) = -1 then begin
      color.(src) <- 0;
      let queue = Queue.create () in
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Array.iter
          (fun v ->
            if color.(v) = -1 then begin
              color.(v) <- 1 - color.(u);
              Queue.add v queue
            end
            else if color.(v) = color.(u) then ok := false)
          (Graph.neighbors g u)
      done
    end
  done;
  !ok

let summary g =
  Printf.sprintf "n=%d m=%d maxdeg=%d D=%d" (Graph.n g) (Graph.m g)
    (Graph.max_degree g)
    (if Graph.is_connected g then diameter g else -1)

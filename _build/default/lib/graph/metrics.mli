(** Graph metrics used by the experiments and the complexity bounds.

    The paper's bounds are expressed in n (processes), m (edges), Δ (max
    degree) and D (diameter); these are computed here. *)

val bfs_distances : Graph.t -> int -> int array
(** [bfs_distances g src] gives the hop distance from [src] to every
    process ([max_int] for unreachable processes of a disconnected graph). *)

val eccentricity : Graph.t -> int -> int
(** Maximum distance from a process to any other. *)

val diameter : Graph.t -> int
(** D, the maximum eccentricity.  O(n·(n+m)). *)

val radius : Graph.t -> int
(** Minimum eccentricity. *)

val average_degree : Graph.t -> float
(** 2m/n. *)

val cyclomatic_number : Graph.t -> int
(** m - n + 1 for a connected graph: the number of independent cycles.
    (The baseline unison's period constraint involves the cyclomatic
    characteristic; this is the standard upper-bound proxy we report.) *)

val girth : Graph.t -> int option
(** Length of a shortest cycle, [None] for forests.  O(n·(n+m)). *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, how many processes)] pairs, sorted by degree. *)

val is_tree : Graph.t -> bool
(** Connected and m = n - 1. *)

val is_bipartite : Graph.t -> bool
(** 2-colorability test by BFS. *)

val summary : Graph.t -> string
(** One-line "n=… m=… Δ=… D=…" summary used in experiment tables. *)

module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph
module Sdr = Ssreset_core.Sdr

type state = {
  id : int;
  color : int option;
}

let pp_state ppf s =
  Fmt.pf ppf "{id=%d;col=%a}" s.id Fmt.(option ~none:(any "⊥") int) s.color

let rule_pick = "COL-pick"

(* Smallest color not used by a defined neighbor; at most δ_u since there
   are δ_u neighbors. *)
let mex (v : state Algorithm.view) =
  let used = Array.make (Array.length v.Algorithm.nbrs + 1) false in
  Array.iter
    (fun s ->
      match s.color with
      | Some c when c < Array.length used -> used.(c) <- true
      | _ -> ())
    v.Algorithm.nbrs;
  let rec first c = if used.(c) then first (c + 1) else c in
  first 0

let p_icorrect (v : state Algorithm.view) =
  match v.Algorithm.state.color with
  | None -> true
  | Some c ->
      c >= 0
      && c <= Array.length v.Algorithm.nbrs
      && Array.for_all (fun s -> s.color <> Some c) v.Algorithm.nbrs

let guard_pick (v : state Algorithm.view) =
  let self = v.Algorithm.state in
  p_icorrect v
  && self.color = None
  && Array.for_all
       (fun s -> s.color <> None || s.id < self.id)
       v.Algorithm.nbrs

let rules =
  [ { Algorithm.rule_name = rule_pick;
      guard = guard_pick;
      action = (fun v -> { v.Algorithm.state with color = Some (mex v) }) } ]

module Make (P : sig
  val graph : Graph.t
  val ids : int array option
end) =
struct
  let graph = P.graph

  let ids =
    match P.ids with
    | None -> Array.init (Graph.n graph) (fun u -> u)
    | Some ids ->
        if Array.length ids <> Graph.n graph then
          invalid_arg "Coloring.Make: ids length mismatch";
        ids

  module Input = struct
    type nonrec state = state

    let name = "coloring"
    let equal (a : state) b = a = b
    let pp = pp_state
    let p_icorrect = p_icorrect
    let p_reset s = s.color = None
    let reset s = { s with color = None }
    let rules = rules
  end

  module Composed = Sdr.Make (Input)

  let bare : state Algorithm.t =
    { Algorithm.name = "coloring-bare";
      rules;
      equal = Input.equal;
      pp = pp_state }

  let gamma_init () =
    Array.init (Graph.n graph) (fun u -> { id = ids.(u); color = None })

  let gen rng u =
    let color =
      match Random.State.int rng (Graph.degree graph u + 2) with
      | 0 -> None
      | c -> Some (c - 1)
    in
    { id = ids.(u); color }

  let coloring cfg = Array.map (fun s -> s.color) cfg
  let coloring_of_composed cfg = Array.map (fun s -> s.Sdr.inner.color) cfg

  let is_proper colors =
    Array.for_all Option.is_some colors
    && Array.for_all
         (fun u ->
           match colors.(u) with
           | Some c -> c >= 0 && c <= Graph.degree graph u
           | None -> false)
         (Array.init (Graph.n graph) (fun u -> u))
    && List.for_all
         (fun (u, v) -> colors.(u) <> colors.(v))
         (Graph.edges graph)
end

(** Greedy (Δ+1)-coloring as an SDR input algorithm.

    A third instantiation supporting the paper's generality claim (§1.1):
    any locally checkable, locally resettable algorithm self-stabilizes when
    composed with SDR, and static specifications become {e silent}.

    The input algorithm works on identified networks: an uncolored process
    whose uncolored neighbors all have smaller identifiers picks the
    smallest color unused in its neighborhood (hence ≤ δ_u, so at most
    Δ+1 colors overall).  This is locally checkable (a defined color is
    correct iff it differs from every defined neighbor color and fits the
    domain) and resets to "uncolored". *)

module Sdr = Ssreset_core.Sdr

type state = {
  id : int;  (** constant *)
  color : int option;  (** [None] = not yet colored *)
}

val pp_state : state Fmt.t
val rule_pick : string
(** ["COL-pick"]. *)

module Make (P : sig
  val graph : Ssreset_graph.Graph.t

  val ids : int array option
  (** [None] = identity. *)
end) : sig
  module Input : Sdr.INPUT with type state = state
  module Composed : Sdr.S with type inner = state

  val bare : state Ssreset_sim.Algorithm.t
  val gamma_init : unit -> state array
  val gen : state Ssreset_sim.Fault.generator
  (** Arbitrary color in [{⊥} ∪ {0..δ_u}]. *)

  val coloring : state array -> int option array
  val coloring_of_composed : state Sdr.state array -> int option array

  val is_proper : int option array -> bool
  (** All colors defined, within [0..δ_u], and no monochromatic edge. *)
end

lib/coloring/coloring.ml: Array Fmt List Option Random Ssreset_core Ssreset_graph Ssreset_sim

lib/coloring/coloring.mli: Fmt Ssreset_core Ssreset_graph Ssreset_sim

module Graph = Ssreset_graph.Graph

type t = {
  spec_name : string;
  f : Graph.t -> int -> int;
  g : Graph.t -> int -> int;
}

let const k = fun _ _ -> k
let half_up graph u = (Graph.degree graph u + 1 + 1) / 2
let half_down graph u = (Graph.degree graph u + 1) / 2

let dominating_set = { spec_name = "dominating-set"; f = const 1; g = const 0 }

let k_domination k =
  { spec_name = Printf.sprintf "%d-domination" k; f = const k; g = const 0 }

let k_tuple_domination k =
  if k < 1 then invalid_arg "k_tuple_domination: need k >= 1";
  { spec_name = Printf.sprintf "%d-tuple-domination" k;
    f = const k;
    g = const (k - 1) }

let global_offensive =
  { spec_name = "global-offensive"; f = half_up; g = const 0 }

let global_defensive =
  { spec_name = "global-defensive"; f = const 1; g = half_up }

let global_powerful =
  { spec_name = "global-powerful"; f = half_up; g = half_down }

let custom ~name ~f ~g =
  if f < 0 || g < 0 then invalid_arg "Spec.custom: need f, g >= 0";
  { spec_name = name; f = const f; g = const g }

let feasible spec graph =
  let ok u =
    Graph.degree graph u >= max (spec.f graph u) (spec.g graph u)
  in
  let rec loop u = u >= Graph.n graph || (ok u && loop (u + 1)) in
  loop 0

let f_geq_g spec graph =
  let rec loop u =
    u >= Graph.n graph || (spec.f graph u >= spec.g graph u && loop (u + 1))
  in
  loop 0

let all_named ~max_k =
  let ks = List.init max_k (fun i -> i + 1) in
  [ dominating_set; global_offensive; global_defensive; global_powerful ]
  @ List.map k_domination ks
  @ List.map k_tuple_domination ks

lib/alliance/brute.mli: Spec Ssreset_graph

lib/alliance/fga.ml: Array Fmt Printf Random Spec Ssreset_core Ssreset_graph Ssreset_sim

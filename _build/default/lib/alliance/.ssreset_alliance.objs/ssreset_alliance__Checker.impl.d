lib/alliance/checker.ml: Array List Spec Ssreset_graph

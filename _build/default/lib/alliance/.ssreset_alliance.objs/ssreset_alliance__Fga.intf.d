lib/alliance/fga.mli: Fmt Spec Ssreset_core Ssreset_graph Ssreset_sim

lib/alliance/spec.ml: List Printf Ssreset_graph

lib/alliance/spec.mli: Ssreset_graph

lib/alliance/checker.mli: Spec Ssreset_graph

lib/alliance/brute.ml: Array Spec Ssreset_graph Sys

(** Algorithm FGA — 1-minimal (f,g)-alliance (Algorithm 3 of the paper).

    Works on identified networks where δ_u ≥ max(f(u), g(u)).  Starting from
    the pre-defined initial configuration (everybody in the alliance), FGA
    shrinks the alliance until it is 1-minimal; removals are locally central
    thanks to the pointer handshake (a process leaves only with the full
    approval of its whole closed neighborhood).  FGA alone terminates in
    O(Δ·m) moves (Theorem 9) and 5n+4 rounds from a clean configuration
    (Theorem 10); composed with SDR it is a {e silent} self-stabilizing
    1-minimal (f,g)-alliance algorithm stabilizing in O(Δ·n·m) moves
    (Theorem 13) and 8n+4 rounds (Theorem 14). *)

module Sdr = Ssreset_core.Sdr

type state = {
  id : int;  (** unique identifier — constant from the system *)
  f_u : int;  (** f(u) — constant *)
  g_u : int;  (** g(u) — constant *)
  col : bool;  (** alliance membership — the output *)
  scr : int;  (** score in {-1,0,1}: slack of the local constraint *)
  can_q : bool;  (** whether u believes it can quit the alliance *)
  ptr : int option;
      (** approval pointer: the id of the member of N[u] that u approves
          for leaving, or [None] (⊥) *)
}

val pp_state : state Fmt.t
val equal_state : state -> state -> bool

val rule_clr : string
(** ["FGA-Clr"]: leave the alliance. *)

val rule_p1 : string
(** ["FGA-P1"]: first half of a pointer switch (to ⊥). *)

val rule_p2 : string
(** ["FGA-P2"]: second half of a pointer switch (to the best candidate). *)

val rule_q : string
(** ["FGA-Q"]: refresh score and can-quit after a neighborhood change. *)

module Make (P : sig
  val graph : Ssreset_graph.Graph.t
  val spec : Spec.t

  val ids : int array option
  (** Identifier assignment; [None] = identity.  Must be injective. *)
end) : sig
  module Input : Sdr.INPUT with type state = state
  module Composed : Sdr.S with type inner = state

  val bare : state Ssreset_sim.Algorithm.t
  (** FGA alone, for runs from γ_init (Theorems 9 and 10). *)

  val bare_printed : state Ssreset_sim.Algorithm.t
  (** FGA with the macros {e exactly as printed} in the paper.  When
      g(u) > f(u) is possible, this variant can terminate at a
      non-1-minimal alliance: the printed [bestPtr] returns ⊥ whenever
      scr_u ≤ 0, so a member m with #InAll(m) = g(m) can never approve
      itself even when A \ {m} is still an alliance.  Kept for the
      regression test documenting the discrepancy (see DESIGN.md). *)

  val gamma_init : unit -> state array
  (** Everybody in the alliance: col = true, scr = 1, canQ = true, ptr = ⊥. *)

  val gen : state Ssreset_sim.Fault.generator
  (** Domain-respecting arbitrary state: constants (id, f, g) are preserved;
      col, scr, canQ arbitrary; ptr drawn from N[u] ∪ {⊥}. *)

  val alliance : state array -> bool array
  (** The output col vector of a bare configuration. *)

  val alliance_of_composed : state Sdr.state array -> bool array
end

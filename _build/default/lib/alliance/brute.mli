(** Exact brute-force reference for small graphs (n ≤ ~20).

    Enumerates subsets as bitmasks.  Used by tests and by experiment E12 to
    cross-check Property 1 (Dourado et al.): every minimal alliance is
    1-minimal, and when f ≥ g everywhere every 1-minimal alliance is
    minimal. *)

val is_alliance_mask : Ssreset_graph.Graph.t -> Spec.t -> int -> bool
(** Subset given as a bitmask over processes. *)

val is_minimal_mask : Ssreset_graph.Graph.t -> Spec.t -> int -> bool
(** An alliance no proper subset of which is an alliance.  Exponential in
    the set size — only for small n. *)

val is_one_minimal_mask : Ssreset_graph.Graph.t -> Spec.t -> int -> bool

val all_one_minimal : Ssreset_graph.Graph.t -> Spec.t -> int list
(** All 1-minimal alliances (bitmasks).  2^n enumeration. *)

val all_minimal : Ssreset_graph.Graph.t -> Spec.t -> int list

val minimum_size : Ssreset_graph.Graph.t -> Spec.t -> int option
(** Cardinality of a minimum alliance, [None] if none exists. *)

val mask_of_set : bool array -> int
val set_of_mask : n:int -> int -> bool array

(** (f,g)-alliance problem instances (§6.1).

    Given non-negative functions f and g on nodes, a set A is an
    (f,g)-alliance iff every node outside A has ≥ f(u) neighbors in A and
    every node inside A has ≥ g(u) neighbors in A.  The six named instances
    below are the classical special cases listed in the paper. *)

type t = {
  spec_name : string;
  f : Ssreset_graph.Graph.t -> int -> int;
  g : Ssreset_graph.Graph.t -> int -> int;
}

val dominating_set : t
(** (1,0)-alliance. *)

val k_domination : int -> t
(** (k,0)-alliance. *)

val k_tuple_domination : int -> t
(** (k,k-1)-alliance. *)

val global_offensive : t
(** f(u) = ⌈(δ_u+1)/2⌉, g = 0. *)

val global_defensive : t
(** f = 1, g(u) = ⌈(δ_u+1)/2⌉. *)

val global_powerful : t
(** f(u) = ⌈(δ_u+1)/2⌉, g(u) = ⌈δ_u/2⌉. *)

val custom : name:string -> f:int -> g:int -> t
(** Constant functions. *)

val feasible : t -> Ssreset_graph.Graph.t -> bool
(** The paper's assumption: δ_u ≥ max(f(u), g(u)) for every u (guarantees a
    solution exists — V itself is an alliance). *)

val f_geq_g : t -> Ssreset_graph.Graph.t -> bool
(** Does f(u) ≥ g(u) hold everywhere?  (Property 1.2: then 1-minimal
    implies minimal.) *)

val all_named : max_k:int -> t list
(** The six instances (k-variants for k in [1..max_k]). *)

module Graph = Ssreset_graph.Graph

let mask_of_set set =
  let mask = ref 0 in
  Array.iteri (fun u b -> if b then mask := !mask lor (1 lsl u)) set;
  !mask

let set_of_mask ~n mask = Array.init n (fun u -> mask land (1 lsl u) <> 0)

let is_alliance_mask g spec mask =
  let n = Graph.n g in
  if n > Sys.int_size - 2 then invalid_arg "Brute: graph too large";
  let in_set u = mask land (1 lsl u) <> 0 in
  let ok u =
    let count =
      Graph.fold_neighbors g u ~init:0 ~f:(fun acc v ->
          if in_set v then acc + 1 else acc)
    in
    count >= if in_set u then spec.Spec.g g u else spec.Spec.f g u
  in
  let rec loop u = u >= n || (ok u && loop (u + 1)) in
  loop 0

let proper_submasks_are_not_alliances g spec mask =
  (* Enumerate all proper submasks of [mask] with the standard
     (s-1) land mask trick. *)
  let rec loop s =
    if s = 0 then not (is_alliance_mask g spec 0)
    else
      (not (is_alliance_mask g spec s)) && loop ((s - 1) land mask)
  in
  mask = 0 || loop ((mask - 1) land mask)

let is_minimal_mask g spec mask =
  is_alliance_mask g spec mask && proper_submasks_are_not_alliances g spec mask

let is_one_minimal_mask g spec mask =
  is_alliance_mask g spec mask
  && begin
       let rec loop u =
         u >= Graph.n g
         || ((mask land (1 lsl u) = 0
             || not (is_alliance_mask g spec (mask lxor (1 lsl u))))
            && loop (u + 1))
       in
       loop 0
     end

let all_satisfying pred g spec =
  let n = Graph.n g in
  if n > 22 then invalid_arg "Brute: graph too large for enumeration";
  let acc = ref [] in
  for mask = (1 lsl n) - 1 downto 0 do
    if pred g spec mask then acc := mask :: !acc
  done;
  !acc

let all_one_minimal g spec = all_satisfying is_one_minimal_mask g spec
let all_minimal g spec = all_satisfying is_minimal_mask g spec

let minimum_size g spec =
  let n = Graph.n g in
  if n > 22 then invalid_arg "Brute: graph too large for enumeration";
  let best = ref None in
  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go mask 0
  in
  for mask = 0 to (1 lsl n) - 1 do
    if is_alliance_mask g spec mask then
      let size = popcount mask in
      match !best with
      | Some b when b <= size -> ()
      | _ -> best := Some size
  done;
  !best

module Graph = Ssreset_graph.Graph

let count_in g set u =
  Graph.fold_neighbors g u ~init:0 ~f:(fun acc v ->
      if set.(v) then acc + 1 else acc)

let node_ok g spec set u =
  let need =
    if set.(u) then spec.Spec.g g u else spec.Spec.f g u
  in
  count_in g set u >= need

let is_alliance g spec set =
  let rec loop u = u >= Graph.n g || (node_ok g spec set u && loop (u + 1)) in
  loop 0

let is_one_minimal g spec set =
  is_alliance g spec set
  && begin
       let breaks u =
         set.(u)
         &&
         (set.(u) <- false;
          let still = is_alliance g spec set in
          set.(u) <- true;
          not still)
       in
       let rec loop u =
         u >= Graph.n g || (((not set.(u)) || breaks u) && loop (u + 1))
       in
       loop 0
     end

let size set = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 set

let members set =
  let acc = ref [] in
  Array.iteri (fun u b -> if b then acc := u :: !acc) set;
  List.rev !acc
